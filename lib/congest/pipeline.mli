(** Analytic round counts for standard pipelined schedules.

    These are the textbook pipelining lemmas (Peleg, ch. 3–4) that the
    paper invokes implicitly every time it says "this takes O(√n) time
    since there are O(√n) items":

    - broadcasting [k] items from the root of a tree of depth [d]
      completes in [d + k] rounds (item [i] crosses depth [j] at round
      [i + j]);
    - upcasting [k] distinct items to the root completes in [d + k]
      rounds with the send-smallest-unsent rule;
    - a convergecast in which every node forwards at most [l] items to
      its parent (max per-edge load [l]) completes in [d + l] rounds;
    - exchanging [k] items over a single edge takes [k] rounds (one item
      per direction per round).

    The distributed min-cut phases call these with quantities measured
    from the live execution (actual depths, item counts, and edge
    loads), so the resulting costs are schedules of this run, not
    formulas about a hypothetical one.  The real message-level programs
    in {!Primitives} implement the same schedules and are tested to match
    these counts.

    Round counts from this module become [Scheduled] spans in the
    {!Cost} tree (wrap them with {!Cost.scheduled}); counts measured on
    {!Network} become [Executed] spans, and published bounds become
    [Charged] spans — experiment A2 compares the first two kinds
    phase-by-phase. *)

val broadcast : depth:int -> items:int -> int

val upcast : depth:int -> items:int -> int

val convergecast : depth:int -> max_edge_load:int -> int

val exchange : items:int -> int

val local : int -> int
(** Rounds of purely local computation bundled with neighbors exchange
    (identity; named for readability at call sites). *)
