(** The seed CONGEST driver, kept as the golden baseline.

    Semantically identical to {!Network.run}/{!Network.run_bounded} but
    implemented the pre-overhaul way: list mailboxes sorted per node per
    round, a fresh [Hashtbl] of directed-edge word counters every round,
    and per-run neighbor hash tables.  It exists for two reasons:

    - the equivalence tests diff its full audits against the flat-array
      driver's on the replay workloads, pinning the rewrite to the seed
      semantics bit for bit;
    - the [sim] bench reports the rounds/sec ratio between the two, so
      the hot-path trajectory stays measurable PR over PR.

    Do not use it in pipelines — it is the slow path by construction. *)

val run :
  ?cfg:Config.t ->
  words:('msg -> int) ->
  Mincut_graph.Graph.t ->
  ('state, 'msg) Network.program ->
  'state array * Network.audit
(** Reference counterpart of {!Network.run}. *)

val run_bounded :
  ?cfg:Config.t ->
  words:('msg -> int) ->
  rounds:int ->
  Mincut_graph.Graph.t ->
  ('state, 'msg) Network.program ->
  'state array * Network.audit
(** Reference counterpart of {!Network.run_bounded}. *)
