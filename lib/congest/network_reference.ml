(* The seed (pre-CSR) driver, preserved verbatim as a baseline: list
   mailboxes with a per-node inbox sort, a per-round Hashtbl for the
   directed-edge word counters, and per-run neighbor hash tables.  The
   flat-array driver in [Network] must stay bit-identical to this one —
   [test_congest] diffs full audits on the lint workloads, and the [sim]
   bench reports the rounds/sec ratio between the two. *)

module Graph = Mincut_graph.Graph

let violate ?sender ?receiver ?words ?budget kind ~round =
  raise
    (Network.Model_violation
       { Network.kind; round; sender; receiver; words; budget })

let neighbor_sets g =
  Array.init (Graph.n g) (fun v ->
      let tbl = Hashtbl.create (Graph.degree g v) in
      Array.iter (fun (u, _) -> Hashtbl.replace tbl u ()) (Graph.adj g v);
      tbl)

let drive ?(cfg = Config.default) ~words ~stop g (prog : _ Network.program) =
  let n = Graph.n g in
  let neighbors = neighbor_sets g in
  let states = Array.init n prog.Network.initial in
  let inboxes : (int * _) list array = Array.make n [] in
  let pending = ref false in
  let total_messages = ref 0 in
  let total_words = ref 0 in
  let per_round = ref [] in
  let max_words = ref 0 in
  let max_edge_words = ref 0 in
  (* per-run channel loads, for the true max_edge_load *)
  let edge_loads : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_traffic_round = ref (-1) in
  let round = ref 0 in
  let all_halted () =
    let rec go v = v >= n || (prog.Network.halted states.(v) && go (v + 1)) in
    go 0
  in
  while not (stop ~round:!round ~all_halted:(all_halted () && not !pending)) do
    if !round >= cfg.Config.max_rounds then
      violate Network.Watchdog ~round:!round ~budget:cfg.Config.max_rounds;
    let next : (int * _) list array = Array.make n [] in
    (* words in flight per directed edge this round; doubles as the
       duplicate-send registry *)
    let edge_words : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    let sent_count = ref 0 in
    pending := false;
    for v = 0 to n - 1 do
      if not (prog.Network.halted states.(v)) then begin
        let inbox = List.sort (fun (a, _) (b, _) -> Int.compare a b) inboxes.(v) in
        let state', outs = prog.Network.step ~node:v ~round:!round ~inbox states.(v) in
        states.(v) <- state';
        List.iter
          (fun (dst, payload) ->
            if not (Hashtbl.mem neighbors.(v) dst) then
              violate Network.Non_neighbor_send ~round:!round ~sender:v ~receiver:dst;
            if Hashtbl.mem edge_words (v, dst) then
              violate Network.Duplicate_send ~round:!round ~sender:v ~receiver:dst;
            let w = words payload in
            if w > cfg.Config.words_per_message then
              violate Network.Oversized_message ~round:!round ~sender:v ~receiver:dst
                ~words:w ~budget:cfg.Config.words_per_message;
            let load =
              w + (match Hashtbl.find_opt edge_words (v, dst) with
                  | Some prior -> prior
                  | None -> 0)
            in
            Hashtbl.replace edge_words (v, dst) load;
            (match cfg.Config.strict_edge_words with
            | Some cap when load > cap ->
                violate Network.Edge_overload ~round:!round ~sender:v ~receiver:dst
                  ~words:load ~budget:cap
            | _ -> ());
            incr total_messages;
            incr sent_count;
            total_words := !total_words + w;
            max_words := max !max_words w;
            max_edge_words := max !max_edge_words load;
            Hashtbl.replace edge_loads (v, dst)
              (1 + (match Hashtbl.find_opt edge_loads (v, dst) with
                   | Some c -> c
                   | None -> 0));
            last_traffic_round := !round;
            next.(dst) <- (v, payload) :: next.(dst);
            pending := true)
          outs
      end
    done;
    Array.blit next 0 inboxes 0 n;
    per_round := !sent_count :: !per_round;
    incr round
  done;
  let max_edge_load = Hashtbl.fold (fun _ c acc -> max c acc) edge_loads 0 in
  let audit =
    {
      Network.rounds = !round;
      total_messages = !total_messages;
      total_words = !total_words;
      max_words = !max_words;
      max_edge_load;
      max_edge_words = !max_edge_words;
      messages_per_round = Array.of_list (List.rev !per_round);
    }
  in
  (states, audit, !last_traffic_round)

let run ?cfg ~words g prog =
  let states, audit, _ =
    drive ?cfg ~words ~stop:(fun ~round:_ ~all_halted -> all_halted) g prog
  in
  (states, audit)

let run_bounded ?cfg ~words ~rounds g prog =
  let states, audit, last_traffic =
    drive ?cfg ~words ~stop:(fun ~round ~all_halted:_ -> round >= rounds) g prog
  in
  (* effective completion time: the delivery round of the last message *)
  (states, { audit with Network.rounds = (if last_traffic < 0 then 0 else last_traffic + 2) })
