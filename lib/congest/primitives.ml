module Tree = Mincut_graph.Tree
module Graph = Mincut_graph.Graph

(* Neighbors without multiplicity: the engine models one channel per
   node pair, so flooding primitives address each neighbor once even in
   multigraphs (conservative for round counts). *)
let distinct_neighbors g v =
  List.sort_uniq Int.compare (Array.to_list (Array.map fst (Graph.adj g v)))

let min_edge_between g u v =
  let best = ref (-1) in
  Array.iter
    (fun (x, id) -> if x = v && (!best = -1 || id < !best) then best := id)
    (Graph.adj g u);
  if !best = -1 then invalid_arg "Primitives: no edge between claimed neighbors";
  !best

(* ------------------------------------------------------------------ *)
(* BFS tree by synchronous flooding                                    *)
(* ------------------------------------------------------------------ *)

type bfs_state = { dist : int; parent : int; done_ : bool }

let bfs_program g ~root : (bfs_state, int) Network.program =
  {
    initial = (fun v -> { dist = (if v = root then 0 else -1); parent = -1; done_ = v = -1 });
    step =
      (fun ~node ~round ~inbox st ->
        if st.dist = 0 && round = 0 then
          (* the root announces itself and is done *)
          ( { st with done_ = true },
            List.map (fun u -> (u, 0)) (distinct_neighbors g node) )
        else if st.dist = -1 then
          match inbox with
          | [] -> (st, [])
          | first :: rest ->
              (* all offers this round carry the same distance; adopt
                 the smallest sender id (an explicit fold, so the choice
                 holds under any delivery order, not just the engine's
                 sorted inboxes) and flood onward immediately *)
              let p, d =
                List.fold_left
                  (fun (bp, bd) (p, d) -> if p < bp then (p, d) else (bp, bd))
                  first rest
              in
              ( { dist = d + 1; parent = p; done_ = true },
                List.map (fun u -> (u, d + 1)) (distinct_neighbors g node) )
        else (st, []))
      ;
    halted = (fun st -> st.done_);
  }

let bfs_tree_audited ?cfg g ~root =
  let n = Graph.n g in
  let prog = bfs_program g ~root in
  let states, audit = Network.run ?cfg ~words:(fun _ -> 1) g prog in
  let parent = Array.map (fun st -> st.parent) states in
  let parent_edge =
    Array.mapi (fun v st -> if st.parent = -1 then -1 else min_edge_between g v st.parent) states
  in
  if Array.exists (fun st -> st.dist = -1) states then
    invalid_arg "Primitives.bfs_tree: disconnected graph";
  let tree = Tree.of_parents ~graph_n:n ~root ~parent ~parent_edge in
  (tree, Cost.executed ~audit "bfs-tree (real)" audit.Network.rounds, audit)

let bfs_tree ?cfg g ~root =
  let tree, cost, _ = bfs_tree_audited ?cfg g ~root in
  (tree, cost)

(* ------------------------------------------------------------------ *)
(* Convergecast of one aggregate                                       *)
(* ------------------------------------------------------------------ *)

type cc_state = { remaining : int; acc : int; sent : bool }

let convergecast_sum_audited ?cfg g ~tree ~values =
  let root = tree.Tree.root in
  let prog : (cc_state, int) Network.program =
    {
      initial =
        (fun v ->
          {
            remaining = Array.length tree.Tree.children.(v);
            acc = values.(v);
            sent = false;
          });
      step =
        (fun ~node ~round:_ ~inbox st ->
          let acc = List.fold_left (fun a (_, x) -> a + x) st.acc inbox in
          let remaining = st.remaining - List.length inbox in
          if remaining = 0 && not st.sent then
            if node = root then ({ remaining; acc; sent = true }, [])
            else ({ remaining; acc; sent = true }, [ (tree.Tree.parent.(node), acc) ])
          else ({ st with remaining; acc }, []))
        ;
      halted = (fun st -> st.sent);
    }
  in
  let states, audit = Network.run ?cfg ~words:(fun _ -> 2) g prog in
  (states.(root).acc, Cost.executed ~audit "convergecast (real)" audit.Network.rounds, audit)

let convergecast_sum ?cfg g ~tree ~values =
  let v, cost, _ = convergecast_sum_audited ?cfg g ~tree ~values in
  (v, cost)

(* ------------------------------------------------------------------ *)
(* Pipelined broadcast of k items                                      *)
(* ------------------------------------------------------------------ *)

(* State carries the node id so [halted] can distinguish the root (which
   halts after sending) from everyone else (halting after receiving). *)
type bc_state = { me : int; got : int list; (* reversed *) next_to_send : int }

let broadcast_items_audited ?cfg g ~tree ~items =
  let k = Array.length items in
  let root = tree.Tree.root in
  let children v = tree.Tree.children.(v) in
  let prog : (bc_state, int) Network.program =
    {
      initial = (fun v -> { me = v; got = []; next_to_send = 0 });
      step =
        (fun ~node ~round:_ ~inbox st ->
          if node = root then begin
            (* send one item per round to every child, in order *)
            let i = st.next_to_send in
            if i >= k then (st, [])
            else
              ( { st with next_to_send = i + 1 },
                Array.to_list (Array.map (fun c -> (c, items.(i))) (children node)) )
          end
          else
            match inbox with
            | [] -> (st, [])
            | (_, item) :: _ ->
                (* single in-order stream from the parent: store & forward *)
                ( { st with got = item :: st.got },
                  Array.to_list (Array.map (fun c -> (c, item)) (children node)) ))
        ;
      halted =
        (fun st ->
          k = 0
          || if st.me = root then st.next_to_send >= k else List.length st.got >= k);
    }
  in
  let states, audit = Network.run ?cfg ~words:(fun _ -> 1) g prog in
  let per_node = Array.map (fun st -> Array.of_list (List.rev st.got)) states in
  per_node.(root) <- Array.copy items;
  (per_node, Cost.executed ~audit "pipelined broadcast (real)" audit.Network.rounds, audit)

let broadcast_items ?cfg g ~tree ~items =
  let per_node, cost, _ = broadcast_items_audited ?cfg g ~tree ~items in
  (per_node, cost)

(* ------------------------------------------------------------------ *)
(* Pipelined upcast of distinct items                                  *)
(* ------------------------------------------------------------------ *)

(* Canonical sets (strictly-increasing lists, [Mincut_util.Intset])
   rather than [Set.Make]: the sanitizer byte-compares marshalled
   states, and AVL shapes depend on insertion order while these do
   not. *)
module ISet = Mincut_util.Intset

type up_state = { known : ISet.t; sent_up : ISet.t }

let upcast_distinct_audited ?cfg g ~tree ~initial =
  let root = tree.Tree.root in
  let all = Array.fold_left (fun acc l -> List.fold_left (fun a x -> ISet.add x a) acc l) ISet.empty initial in
  let k = ISet.cardinal all in
  let height = Tree.height tree in
  let prog : (up_state, int) Network.program =
    {
      initial = (fun v -> { known = ISet.of_list initial.(v); sent_up = ISet.empty });
      step =
        (fun ~node ~round:_ ~inbox st ->
          let known = List.fold_left (fun a (_, x) -> ISet.add x a) st.known inbox in
          if node = root then ({ st with known }, [])
          else
            let unsent = ISet.diff known st.sent_up in
            match ISet.min_elt_opt unsent with
            | None -> ({ st with known }, [])
            | Some item ->
                ( { known; sent_up = ISet.add item st.sent_up },
                  [ (tree.Tree.parent.(node), item) ] ))
        ;
      halted = (fun _ -> false);
    }
  in
  let bound = height + k + 2 in
  let states, audit = Network.run_bounded ?cfg ~words:(fun _ -> 1) ~rounds:bound g prog in
  let got = states.(root).known in
  if not (ISet.equal got all) then failwith "Primitives.upcast_distinct: incomplete upcast";
  (ISet.elements got, Cost.executed ~audit "pipelined upcast (real)" audit.Network.rounds, audit)

let upcast_distinct ?cfg g ~tree ~initial =
  let items, cost, _ = upcast_distinct_audited ?cfg g ~tree ~initial in
  (items, cost)

(* ------------------------------------------------------------------ *)
(* Flooding a maximum (leader election)                                *)
(* ------------------------------------------------------------------ *)

type fm_state = { best : int; fresh : bool }

let flood_max ?cfg g ~values =
  let tree0, _ = bfs_tree ?cfg g ~root:0 in
  let bound = (2 * Tree.height tree0) + 2 in
  let prog : (fm_state, int) Network.program =
    {
      initial = (fun v -> { best = values.(v); fresh = true });
      step =
        (fun ~node ~round:_ ~inbox st ->
          let best = List.fold_left (fun a (_, x) -> max a x) st.best inbox in
          if best > st.best || st.fresh then
            ( { best; fresh = false },
              List.map (fun u -> (u, best)) (distinct_neighbors g node) )
          else ({ st with best }, []))
        ;
      halted = (fun _ -> false);
    }
  in
  let states, audit = Network.run_bounded ?cfg ~words:(fun _ -> 1) ~rounds:bound g prog in
  (Array.map (fun st -> st.best) states, Cost.executed ~audit "flood-max (real)" audit.Network.rounds)

(* ------------------------------------------------------------------ *)
(* Flood with echo (termination detection at the root)                 *)
(* ------------------------------------------------------------------ *)

type fe_state = {
  dist : int;
  parent : int;
  flooded : bool;
  expecting : int;  (* children acks outstanding; -1 = unknown yet *)
  acked : bool;
}

(* Two real sub-programs keep the logic simple and the cost honest:
   first the flood (building the BFS tree), then the echo (an ack wave
   up the freshly built tree).  A production implementation interleaves
   them; the round total is the same 2·ecc + O(1). *)
let flood_echo ?cfg g ~root =
  let tree, c_flood = bfs_tree ?cfg g ~root in
  let n = Graph.n g in
  let prog : (fe_state, int) Network.program =
    {
      initial =
        (fun v ->
          {
            dist = tree.Tree.depth.(v);
            parent = tree.Tree.parent.(v);
            flooded = true;
            expecting = Array.length tree.Tree.children.(v);
            acked = false;
          });
      step =
        (fun ~node ~round:_ ~inbox st ->
          let expecting = st.expecting - List.length inbox in
          if expecting = 0 && not st.acked then
            if node = root then ({ st with expecting; acked = true }, [])
            else ({ st with expecting; acked = true }, [ (st.parent, 1) ])
          else ({ st with expecting }, []))
        ;
      halted = (fun st -> st.acked);
    }
  in
  ignore n;
  let _, audit = Network.run ?cfg ~words:(fun _ -> 1) g prog in
  (tree, Cost.( ++ ) c_flood (Cost.executed ~audit "echo (real)" audit.Network.rounds))
