(** Synchronous CONGEST execution engine.

    Runs a per-node program in synchronous rounds over a {!Mincut_graph.Graph.t}
    topology: messages sent in round [r] are delivered at the start of
    round [r+1], and the engine enforces the model's discipline —
    messages may only be addressed to neighbors, at most one message per
    (sender, receiver) pair per round, and each payload must fit the
    configured word budget.  Violations raise {!Model_violation}
    immediately: an algorithm that breaks the model is a bug, not a
    statistic.  Each violation carries full provenance — the kind, the
    offending round, the sender/receiver when applicable, and the
    measured words against the violated budget — so the conformance
    auditor ([mincut_lint]) and the tests can assert {e which} rule
    broke and where.

    The audit of a run (message totals, maximum payload, rounds) feeds
    experiment T5. *)

type violation_kind =
  | Oversized_message  (** payload exceeded [words_per_message] *)
  | Non_neighbor_send  (** destination is not adjacent to the sender *)
  | Duplicate_send     (** second message on one (sender, receiver) pair
                           in one round *)
  | Edge_overload      (** strict mode: aggregate words on one directed
                           edge in one round exceeded the cap *)
  | Order_dependence   (** sanitize mode: a step's outcome changed under
                           a permuted inbox delivery order *)
  | Watchdog           (** the configured round limit was reached *)

type violation = {
  kind : violation_kind;
  round : int;            (** round in which the rule broke *)
  sender : int option;    (** offending sender ([None] for watchdog) *)
  receiver : int option;  (** intended receiver ([None] for watchdog) *)
  words : int option;     (** measured words, for budget violations *)
  budget : int option;    (** the violated limit: word budget, edge cap,
                              or round limit *)
}

exception Model_violation of violation

val kind_name : violation_kind -> string
(** Stable kebab-case identifier, e.g. ["oversized-message"] — the spelling
    used in JSON conformance reports. *)

val violation_message : violation -> string
(** Human-readable one-line rendering (also installed as the
    [Printexc] printer for {!Model_violation}). *)

type ('state, 'msg) program = {
  initial : int -> 'state;
      (** [initial v] — local state of node [v] before round 0.  A node
          initially knows only its own id and its incident edges (the
          engine cannot enforce that discipline; programs are written to
          respect it and reviewed against the paper's steps). *)
  step :
    node:int -> round:int -> inbox:(int * 'msg) list -> 'state -> 'state * (int * 'msg) list;
      (** One synchronous round: consume the messages delivered this
          round (as [(sender, payload)], sorted by sender) and return the
          new state plus outgoing [(neighbor, payload)] messages. *)
  halted : 'state -> bool;
      (** Halted nodes no longer step; messages sent to them are
          dropped.  The engine stops when every node has halted. *)
}

type audit = {
  rounds : int;             (** rounds executed *)
  total_messages : int;
  total_words : int;
  max_words : int;          (** largest single payload observed *)
  max_edge_load : int;      (** max messages carried by a single
                                directed edge over the whole run — the
                                per-channel congestion the pipelined
                                primitives are designed to bound (within
                                one round it is always <= 1, since a
                                second send on a channel raises
                                {!Duplicate_send}) *)
  max_edge_words : int;     (** max aggregate words crossing one directed
                                edge in one round — the quantity the
                                strict mode ({!Config.strict}) caps *)
  messages_per_round : int array;
      (** congestion profile: how many messages were in flight in each
          executed round (length = rounds) *)
}

type ('state, 'msg) probe =
  node:int ->
  round:int ->
  inbox:(int * 'msg) list ->
  'state ->
  (int * 'msg) list ->
  unit
(** Instrumentation callback: invoked once per executed step with the
    delivered inbox, the {e post-step} state, and the outbox, before
    any model-discipline checks run on the outbox.  The sanitizer's
    footprint/word-growth tracker hooks in here; the callback must not
    mutate the network (it only observes). *)

val run :
  ?cfg:Config.t ->
  ?probe:('state, 'msg) probe ->
  words:('msg -> int) ->
  Mincut_graph.Graph.t ->
  ('state, 'msg) program ->
  'state array * audit
(** Run until all nodes halt.  Raises [Model_violation] if the watchdog
    round limit is reached.  With [cfg.sanitize] set, every step whose
    inbox holds ≥ 2 messages is additionally re-executed under a
    reversed and a deterministically shuffled inbox; any divergence in
    marshalled state, outbox multiset, or halted flag raises
    [Model_violation] with kind {!Order_dependence} carrying the node
    and round. *)

val run_bounded :
  ?cfg:Config.t ->
  ?probe:('state, 'msg) probe ->
  words:('msg -> int) ->
  rounds:int ->
  Mincut_graph.Graph.t ->
  ('state, 'msg) program ->
  'state array * audit
(** Run exactly [rounds] rounds (halted nodes stop stepping early); the
    audit's [rounds] field reports the last round in which any message
    was in flight (+1), i.e. the effective completion time. *)
