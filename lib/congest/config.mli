(** CONGEST model parameters.

    In the CONGEST model [Pel00] every node sends, per synchronous round,
    at most one message of O(log n) bits along each incident edge.  We
    count message payloads in {e words}, where one word holds one node
    id / weight / counter (i.e., Θ(log n) bits), and enforce a per-message
    word budget.  The default budget of 4 words is the usual constant
    slack that CONGEST algorithm descriptions assume when they say a
    message carries "an edge and two fragment IDs". *)

type t = {
  words_per_message : int;  (** payload budget per message *)
  max_rounds : int;         (** engine watchdog; exceeded = failure *)
  strict_edge_words : int option;
      (** strict conformance mode: when [Some cap], the engine
          additionally bounds the {e aggregate} words crossing each
          directed edge in each round by [cap].  With one word standing
          for Θ(log n) bits ({!bits_per_word}), a constant cap is
          exactly the model's "O(log n) bits per edge per round"
          discipline stated per edge rather than per message, so it
          stays violated-or-not even under future relaxations of the
          one-message-per-edge rule. *)
  sanitize : bool;
      (** shadow-execution mode: the engine re-runs every step whose
          inbox holds ≥ 2 messages with adversarially permuted inbox
          orders and byte-compares the resulting state and outbox
          against the primary execution.  A divergence raises
          {!Network.Model_violation} with kind [Order_dependence] —
          the program's behaviour depends on a delivery order the
          CONGEST model does not promise (the engine's sorted inboxes
          are a convenience, not a model guarantee).  Requires node
          states and payloads to be marshalable plain data with
          canonical representations (see [Mincut_util.Intset]). *)
}

val default : t
(** 4 words, 2_000_000 rounds, lenient (per-message budget only). *)

val with_budget : int -> t

val strict : ?budget:int -> t -> t
(** [strict t] enables the per-edge-per-round aggregate word cap;
    [budget] overrides the cap (default [t.words_per_message]).
    Raises [Invalid_argument] on a non-positive budget. *)

val sanitized : t -> t
(** [sanitized t] enables shadow-execution order-dependence checking. *)

val bits_per_word : n:int -> int
(** ⌈log₂ n⌉ + 1, the "O(log n) bits" a word stands for; used by the
    audit report (experiment T5). *)
