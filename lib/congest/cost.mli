(** Round-cost accounting as a provenance-tagged span tree.

    Every phase of the distributed algorithms returns a [Cost.t]: the
    number of synchronous rounds it needed, structured as a tree of
    {e spans} so the phase hierarchy of the paper (Section 2, Steps 1–5)
    survives into the accounting.  Each span carries a label, its round
    count, the provenance of that count, its sub-spans, and — for spans
    measured on the engine — the full {!Network.audit} of the run.

    The three provenances (DESIGN.md §2 and §10):
    - {!Executed} — a real message-passing program ran on {!Network} and
      the rounds were measured;
    - {!Scheduled} — an analytic pipelining schedule ({!Pipeline})
      evaluated on quantities measured from this very execution (real
      depths, item counts, per-edge loads);
    - {!Charged} — a published bound (e.g. the Kutten–Peleg MST round
      bound) charged without executing the subroutine.

    The derived flat view ({!breakdown}) recovers the historical
    [(label, rounds) list]: the leaves in execution order.  Group spans
    are structural only, so wrapping steps under phases never changes
    the flat view or the total. *)

type provenance =
  | Executed   (** measured on a real engine run *)
  | Scheduled  (** Pipeline formula on measured quantities *)
  | Charged    (** published bound, not executed *)

type span = {
  label : string;
  rounds : int;  (** total rounds of this span, including children *)
  provenance : provenance;
  children : span list;  (** sub-spans in execution order *)
  audit : Network.audit option;
      (** the engine audit, when this span was measured on {!Network} *)
}

type t = {
  rounds : int;  (** total rounds = sum of top-level span rounds *)
  spans : span list;  (** in execution order *)
}

val zero : t

val executed : ?audit:Network.audit -> string -> int -> t
(** A leaf measured on a real engine run; [audit] attaches the run's
    full engine audit.  Raises [Invalid_argument] on a negative round
    count (an explicit raise, so the check survives [-noassert]). *)

val scheduled : string -> int -> t
(** A leaf computed by an analytic {!Pipeline} schedule. *)

val charged : string -> int -> t
(** A leaf charged at a published bound. *)

val step : string -> int -> t
(** Generic leaf, equivalent to {!scheduled}; kept for callers building
    costs outside the three-provenance discipline. *)

val group : ?provenance:provenance -> string -> t -> t
(** [group label t] wraps [t]'s spans as children of a single new span;
    rounds and the flat {!breakdown} are unchanged.  When [provenance]
    is omitted it is derived from the children: any [Executed] leaf
    makes the group [Executed], else any [Scheduled] leaf makes it
    [Scheduled], else [Charged]. *)

val ( ++ ) : t -> t -> t
(** Sequential composition: rounds add, span forests concatenate. *)

val par : t -> t -> t
(** Parallel composition (executions that share rounds): max of rounds.
    The slower side's spans are kept; the faster side's are preserved
    under a zero-round ["(overlapped)"] marker span, so the leaf-sum
    invariant [rounds = sum of non-overlapped leaf rounds] holds. *)

val sum : t list -> t

val breakdown : t -> (string * int) list
(** Derived flat view: the leaves in execution order, labels prefixed
    with ["(overlapped) "] under {!par} markers.  This is the historical
    [(string * int) list] breakdown; grouping never changes it. *)

val provenance_name : provenance -> string
(** ["executed"] / ["scheduled"] / ["charged"] — the stable spelling
    used in JSON and in {!pp}'s provenance column. *)

val provenance_of_name : string -> provenance option
val provenance_equal : provenance -> provenance -> bool

val equal : t -> t -> bool
(** Deep structural equality: labels, rounds, provenance, children and
    attached audits all compared — the relation the replay conformance
    pass ([mincut_lint]) diffs against. *)

val pp : Format.formatter -> t -> unit
(** Tree rendering: a [total rounds: n] header, then one row per span
    with the round count, a provenance column and two-space indentation
    per tree level. *)

val to_table_rows : t -> (string * int) list
(** Flat {!breakdown} plus a trailing [("total", rounds)] row. *)

val to_json : t -> Mincut_util.Json.t
(** Spans serialize with [label]/[rounds]/[provenance] and, when
    present, [children] and [audit] members. *)

val of_json : Mincut_util.Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t)] reconstructs a tree
    {!equal} to [t]. *)
