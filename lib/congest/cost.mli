(** Round-cost accounting.

    Every phase of the distributed algorithms returns a [Cost.t]: the
    number of synchronous rounds it needed, broken down by named step so
    the benchmark harness can report where time goes (and so tests can
    assert each step is within its paper bound).

    Costs come from two sources, and the breakdown label records which:
    - steps executed as real message-passing programs on {!Network}
      report their measured round count;
    - steps executed at the data level with analytic schedules (pipelined
      broadcast/convergecast — see {!Pipeline}) report the schedule
      length computed from measured quantities of this very execution
      (real depths, real item counts, real per-edge loads). *)

type t = {
  rounds : int;
  breakdown : (string * int) list;  (** in execution order *)
}

val zero : t

val step : string -> int -> t
(** A single named step.  Raises [Invalid_argument] on a negative round
    count (an explicit raise, so the check survives [-noassert]). *)

val ( ++ ) : t -> t -> t
(** Sequential composition: rounds add, breakdowns concatenate. *)

val par : t -> t -> t
(** Parallel composition (steps that share rounds): max of rounds; the
    breakdown keeps both, tagging the absorbed one. *)

val sum : t list -> t

val pp : Format.formatter -> t -> unit

val to_table_rows : t -> (string * int) list
(** Breakdown plus a total row. *)
