(** Real message-level CONGEST building blocks.

    Each primitive runs an actual per-node program on {!Network} and
    returns both its result and the measured round cost.  They are the
    communication substrate the paper's algorithm stands on:

    - {!bfs_tree} — the global BFS tree (all global aggregation and
      broadcast in the paper runs over it; its depth is ≤ D);
    - {!broadcast_items} — pipelined broadcast of [k] words from the
      root to every node ([depth + k] rounds);
    - {!upcast_distinct} — pipelined collection of [k] distinct words at
      the root ([≤ depth + k] rounds);
    - {!convergecast_sum} — one aggregate up the tree ([depth + 1]);
    - {!flood_max} — leader election / max-id agreement by flooding.

    All of them work on an arbitrary rooted {!Mincut_graph.Tree.t} whose edges exist
    in the communication graph — in particular on each Kutten–Peleg
    fragment in parallel (fragments are vertex-disjoint subtrees, so a
    single engine run executes all of them simultaneously, which is
    exactly how the paper argues its "within each fragment" steps). *)

module Tree = Mincut_graph.Tree
module Graph = Mincut_graph.Graph

val bfs_tree : ?cfg:Config.t -> Graph.t -> root:int -> Tree.t * Cost.t
(** Synchronous flooding; requires a connected graph. *)

val convergecast_sum :
  ?cfg:Config.t -> Graph.t -> tree:Tree.t -> values:int array -> int * Cost.t
(** Sum of [values] at the root of [tree]. *)

val broadcast_items :
  ?cfg:Config.t -> Graph.t -> tree:Tree.t -> items:int array -> int array array * Cost.t
(** Every node ends up with all [items] (returned per node, in order).
    Pipelined: one item per tree edge per round. *)

val upcast_distinct :
  ?cfg:Config.t -> Graph.t -> tree:Tree.t -> initial:int list array -> int list * Cost.t
(** Each node starts holding a set of words; the union (deduplicated)
    reaches the root, which returns it sorted.  Pipelined
    send-smallest-unsent. *)

val flood_max : ?cfg:Config.t -> Graph.t -> values:int array -> int array * Cost.t
(** Every node learns [max values] (e.g. leader election on ids);
    runs for (hop-eccentricity) rounds via echo-free flooding with a
    known-diameter bound derived from the BFS tree. *)

val flood_echo : ?cfg:Config.t -> Graph.t -> root:int -> Tree.t * Cost.t
(** BFS flooding {e with echo}: after joining, every node acknowledges
    up the BFS tree once its whole subtree has, so at termination the
    {e root knows} the flood is complete (2·ecc + O(1) rounds).  This is
    the textbook termination-detection primitive that lets a phase-based
    algorithm (like the paper's Steps 1–5) start each phase globally:
    each step's completion is echoed to the root, which floods the
    start-of-next-phase signal.  Its cost is the +O(D) per phase that
    the paper's constants absorb (see DESIGN.md §2). *)

(** Audited variants: identical behaviour, but additionally return the
    engine's {!Network.audit} (message totals, max payload) — the data
    of experiment T5. *)

val bfs_tree_audited :
  ?cfg:Config.t -> Graph.t -> root:int -> Tree.t * Cost.t * Network.audit

type bfs_state = { dist : int; parent : int; done_ : bool }

val bfs_program : Graph.t -> root:int -> (bfs_state, int) Network.program
(** The raw per-node flooding program behind {!bfs_tree} (payloads are
    one word each).  Exposed so harnesses can drive the {e same}
    workload through alternative engines — e.g. the benchmark compares
    {!Network.run} against {!Network_reference.run} on it. *)

val convergecast_sum_audited :
  ?cfg:Config.t -> Graph.t -> tree:Tree.t -> values:int array -> int * Cost.t * Network.audit

val broadcast_items_audited :
  ?cfg:Config.t ->
  Graph.t ->
  tree:Tree.t ->
  items:int array ->
  int array array * Cost.t * Network.audit

val upcast_distinct_audited :
  ?cfg:Config.t ->
  Graph.t ->
  tree:Tree.t ->
  initial:int list array ->
  int list * Cost.t * Network.audit
