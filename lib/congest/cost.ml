type t = { rounds : int; breakdown : (string * int) list }

let zero = { rounds = 0; breakdown = [] }

let step name rounds =
  (* explicit raise, not [assert]: the invariant must survive
     [-noassert] / release builds *)
  if rounds < 0 then
    invalid_arg (Printf.sprintf "Cost.step %S: negative rounds %d" name rounds);
  { rounds; breakdown = [ (name, rounds) ] }

let ( ++ ) a b = { rounds = a.rounds + b.rounds; breakdown = a.breakdown @ b.breakdown }

let par a b =
  let winner, loser = if a.rounds >= b.rounds then (a, b) else (b, a) in
  {
    rounds = winner.rounds;
    breakdown =
      winner.breakdown
      @ List.map (fun (name, r) -> ("(overlapped) " ^ name, r)) loser.breakdown;
  }

(* one concat over the whole chain: folding [(++)] would rebuild the
   accumulated breakdown at every step, quadratic on long chains *)
let sum costs =
  {
    rounds = List.fold_left (fun acc c -> acc + c.rounds) 0 costs;
    breakdown = List.concat_map (fun c -> c.breakdown) costs;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>total rounds: %d" t.rounds;
  List.iter (fun (name, r) -> Format.fprintf fmt "@ %6d  %s" r name) t.breakdown;
  Format.fprintf fmt "@]"

let to_table_rows t = t.breakdown @ [ ("total", t.rounds) ]
