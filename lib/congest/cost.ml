module Json = Mincut_util.Json

type provenance = Executed | Scheduled | Charged

type span = {
  label : string;
  rounds : int;
  provenance : provenance;
  children : span list;
  audit : Network.audit option;
}

type t = { rounds : int; spans : span list }

let provenance_name = function
  | Executed -> "executed"
  | Scheduled -> "scheduled"
  | Charged -> "charged"

let provenance_of_name = function
  | "executed" -> Some Executed
  | "scheduled" -> Some Scheduled
  | "charged" -> Some Charged
  | _ -> None

let provenance_equal a b =
  match (a, b) with
  | Executed, Executed | Scheduled, Scheduled | Charged, Charged -> true
  | (Executed | Scheduled | Charged), _ -> false

let zero = { rounds = 0; spans = [] }

let leaf ?audit provenance label rounds =
  (* explicit raise, not [assert]: the invariant must survive
     [-noassert] / release builds *)
  if rounds < 0 then
    invalid_arg (Printf.sprintf "Cost: %S: negative rounds %d" label rounds);
  { rounds; spans = [ { label; rounds; provenance; children = []; audit } ] }

let executed ?audit label rounds = leaf ?audit Executed label rounds
let scheduled label rounds = leaf Scheduled label rounds
let charged label rounds = leaf Charged label rounds

(* generic leaf kept for callers that build costs outside the
   three-provenance discipline (tests, ad-hoc accounting) *)
let step label rounds = scheduled label rounds

(* Dominant provenance of a forest: a phase that ran any real program is
   [Executed]; otherwise an analytic schedule dominates a published
   bound.  Used when a group span is not tagged explicitly. *)
let dominant spans =
  let rec scan best = function
    | [] -> best
    | s :: rest ->
        if provenance_equal best Executed then Executed
        else
          let best =
            match (s.provenance, best) with
            | Executed, _ -> Executed
            | Scheduled, Charged -> Scheduled
            | _ -> best
          in
          scan (scan best s.children) rest
  in
  scan Charged spans

let group ?provenance label t =
  let provenance =
    match provenance with
    | Some p -> p
    | None -> if t.spans = [] then Scheduled else dominant t.spans
  in
  {
    rounds = t.rounds;
    spans = [ { label; rounds = t.rounds; provenance; children = t.spans; audit = None } ];
  }

let ( ++ ) a b = { rounds = a.rounds + b.rounds; spans = a.spans @ b.spans }

let overlapped_label = "(overlapped)"

let par a b =
  let winner, loser = if a.rounds >= b.rounds then (a, b) else (b, a) in
  if loser.spans = [] then winner
  else
    {
      rounds = winner.rounds;
      spans =
        winner.spans
        @ [
            {
              label = overlapped_label;
              (* rounds 0: the loser shares the winner's rounds, so the
                 marker must not contribute to any leaf-sum *)
              rounds = 0;
              provenance = dominant loser.spans;
              children = loser.spans;
              audit = None;
            };
          ];
    }

(* one concat over the whole chain: folding [(++)] would rebuild the
   accumulated forest at every step, quadratic on long chains *)
let sum costs =
  {
    rounds = List.fold_left (fun acc c -> acc + c.rounds) 0 costs;
    spans = List.concat_map (fun c -> c.spans) costs;
  }

let is_overlapped (s : span) = s.rounds = 0 && String.equal s.label overlapped_label

(* Derived flat view: the leaves in execution order.  Group spans are
   structural only, so a tree built by wrapping the seed's flat steps
   flattens back to the seed's exact breakdown; overlapped subtrees keep
   the historical "(overlapped) " prefix. *)
let breakdown t =
  let rec of_span prefix s =
    match s.children with
    | [] -> [ (prefix ^ s.label, s.rounds) ]
    | kids ->
        let prefix = if is_overlapped s then "(overlapped) " ^ prefix else prefix in
        List.concat_map (of_span prefix) kids
  in
  List.concat_map (of_span "") t.spans

let audit_equal (a : Network.audit) (b : Network.audit) =
  a.Network.rounds = b.Network.rounds
  && a.Network.total_messages = b.Network.total_messages
  && a.Network.total_words = b.Network.total_words
  && a.Network.max_words = b.Network.max_words
  && a.Network.max_edge_load = b.Network.max_edge_load
  && a.Network.max_edge_words = b.Network.max_edge_words
  && Array.length a.Network.messages_per_round
     = Array.length b.Network.messages_per_round
  && Array.for_all2 Int.equal a.Network.messages_per_round
       b.Network.messages_per_round

let rec span_equal a b =
  String.equal a.label b.label
  && a.rounds = b.rounds
  && provenance_equal a.provenance b.provenance
  && Option.equal audit_equal a.audit b.audit
  && List.equal span_equal a.children b.children

let equal a b = a.rounds = b.rounds && List.equal span_equal a.spans b.spans

let pp fmt t =
  Format.fprintf fmt "@[<v>total rounds: %d" t.rounds;
  let rec emit depth (s : span) =
    Format.fprintf fmt "@ %6d  %-9s  %s%s" s.rounds
      (provenance_name s.provenance)
      (String.make (2 * depth) ' ')
      s.label;
    List.iter (emit (depth + 1)) s.children
  in
  List.iter (emit 0) t.spans;
  Format.fprintf fmt "@]"

let to_table_rows t = breakdown t @ [ ("total", t.rounds) ]

(* ---- JSON ---------------------------------------------------------- *)

let audit_to_json (a : Network.audit) =
  Json.Obj
    [
      ("rounds", Json.Int a.Network.rounds);
      ("total_messages", Json.Int a.Network.total_messages);
      ("total_words", Json.Int a.Network.total_words);
      ("max_words", Json.Int a.Network.max_words);
      ("max_edge_load", Json.Int a.Network.max_edge_load);
      ("max_edge_words", Json.Int a.Network.max_edge_words);
      ( "messages_per_round",
        Json.List
          (Array.to_list
             (Array.map (fun x -> Json.Int x) a.Network.messages_per_round)) );
    ]

let rec span_to_json s =
  Json.Obj
    (List.concat
       [
         [
           ("label", Json.String s.label);
           ("rounds", Json.Int s.rounds);
           ("provenance", Json.String (provenance_name s.provenance));
         ];
         (if s.children = [] then []
          else [ ("children", Json.List (List.map span_to_json s.children)) ]);
         (match s.audit with
         | None -> []
         | Some a -> [ ("audit", audit_to_json a) ]);
       ])

let to_json t =
  Json.Obj
    [
      ("rounds", Json.Int t.rounds);
      ("spans", Json.List (List.map span_to_json t.spans));
    ]

let ( let* ) r f = Result.bind r f
let require what = function Some v -> Ok v | None -> Error ("Cost.of_json: " ^ what)

let audit_of_json j =
  let int_field name =
    require (name ^ " int") (Option.bind (Json.member name j) Json.to_int)
  in
  let* rounds = int_field "rounds" in
  let* total_messages = int_field "total_messages" in
  let* total_words = int_field "total_words" in
  let* max_words = int_field "max_words" in
  let* max_edge_load = int_field "max_edge_load" in
  let* max_edge_words = int_field "max_edge_words" in
  let* profile =
    require "messages_per_round list"
      (Option.bind (Json.member "messages_per_round" j) Json.to_list)
  in
  let* profile =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* x = require "messages_per_round entry" (Json.to_int x) in
        Ok (x :: acc))
      (Ok []) profile
  in
  Ok
    {
      Network.rounds;
      total_messages;
      total_words;
      max_words;
      max_edge_load;
      max_edge_words;
      messages_per_round = Array.of_list (List.rev profile);
    }

let rec span_of_json j =
  let* label =
    require "span label" (Option.bind (Json.member "label" j) Json.to_str)
  in
  let* rounds =
    require "span rounds" (Option.bind (Json.member "rounds" j) Json.to_int)
  in
  let* prov_name =
    require "span provenance" (Option.bind (Json.member "provenance" j) Json.to_str)
  in
  let* provenance =
    require ("unknown provenance " ^ prov_name) (provenance_of_name prov_name)
  in
  let* children =
    match Json.member "children" j with
    | None -> Ok []
    | Some cj ->
        let* kids = require "children list" (Json.to_list cj) in
        spans_of_json kids
  in
  let* audit =
    match Json.member "audit" j with
    | None -> Ok None
    | Some aj ->
        let* a = audit_of_json aj in
        Ok (Some a)
  in
  Ok { label; rounds; provenance; children; audit }

and spans_of_json js =
  let* spans =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* s = span_of_json j in
        Ok (s :: acc))
      (Ok []) js
  in
  Ok (List.rev spans)

let of_json j =
  let* rounds = require "rounds" (Option.bind (Json.member "rounds" j) Json.to_int) in
  let* spans = require "spans list" (Option.bind (Json.member "spans" j) Json.to_list) in
  let* spans = spans_of_json spans in
  Ok { rounds; spans }
