type t = {
  words_per_message : int;
  max_rounds : int;
  strict_edge_words : int option;
  sanitize : bool;
}

let default =
  {
    words_per_message = 4;
    max_rounds = 2_000_000;
    strict_edge_words = None;
    sanitize = false;
  }

let with_budget words = { default with words_per_message = words }

let strict ?budget t =
  let cap = match budget with Some b -> b | None -> t.words_per_message in
  if cap <= 0 then invalid_arg "Config.strict: budget must be positive";
  { t with strict_edge_words = Some cap }

let sanitized t = { t with sanitize = true }

let bits_per_word ~n =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 (max 1 (n - 1)) + 1
