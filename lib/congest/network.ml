module Graph = Mincut_graph.Graph

type violation_kind =
  | Oversized_message
  | Non_neighbor_send
  | Duplicate_send
  | Edge_overload
  | Order_dependence
  | Watchdog

type violation = {
  kind : violation_kind;
  round : int;
  sender : int option;
  receiver : int option;
  words : int option;
  budget : int option;
}

exception Model_violation of violation

let kind_name = function
  | Oversized_message -> "oversized-message"
  | Non_neighbor_send -> "non-neighbor-send"
  | Duplicate_send -> "duplicate-send"
  | Edge_overload -> "edge-overload"
  | Order_dependence -> "order-dependence"
  | Watchdog -> "watchdog"

let violation_message v =
  let endpoint = function Some x -> string_of_int x | None -> "-" in
  match v.kind with
  | Oversized_message ->
      Printf.sprintf "round %d: node %s message of %s words to %s exceeds budget %s"
        v.round (endpoint v.sender)
        (endpoint v.words) (endpoint v.receiver) (endpoint v.budget)
  | Non_neighbor_send ->
      Printf.sprintf "round %d: node %s sent to non-neighbor %s" v.round
        (endpoint v.sender) (endpoint v.receiver)
  | Duplicate_send ->
      Printf.sprintf "round %d: node %s sent twice to %s" v.round
        (endpoint v.sender) (endpoint v.receiver)
  | Edge_overload ->
      Printf.sprintf
        "round %d: edge %s->%s carried %s words, over the strict per-edge cap %s"
        v.round (endpoint v.sender) (endpoint v.receiver) (endpoint v.words)
        (endpoint v.budget)
  | Order_dependence ->
      Printf.sprintf
        "round %d: node %s diverged under a permuted inbox order \
         (state/outbox depends on delivery order)"
        v.round (endpoint v.sender)
  | Watchdog ->
      Printf.sprintf "watchdog: exceeded %s rounds" (endpoint v.budget)

let () =
  Printexc.register_printer (function
    | Model_violation v -> Some ("Model_violation: " ^ violation_message v)
    | _ -> None)

let violate ?sender ?receiver ?words ?budget kind ~round =
  raise (Model_violation { kind; round; sender; receiver; words; budget })

type ('state, 'msg) program = {
  initial : int -> 'state;
  step :
    node:int -> round:int -> inbox:(int * 'msg) list -> 'state -> 'state * (int * 'msg) list;
  halted : 'state -> bool;
}

type ('state, 'msg) probe =
  node:int ->
  round:int ->
  inbox:(int * 'msg) list ->
  'state ->
  (int * 'msg) list ->
  unit

type audit = {
  rounds : int;
  total_messages : int;
  total_words : int;
  max_words : int;
  max_edge_load : int;
  max_edge_words : int;
  messages_per_round : int array;
}

(* Deterministic Fisher-Yates driven by an inline 48-bit LCG, seeded
   per (node, round) so the adversarial permutation the sanitizer tries
   is reproducible and differs across steps.  The engine must not
   consume any global randomness: two runs of the same program must
   permute identically. *)
let shuffle ~seed xs =
  let a = Array.of_list xs in
  let state = ref ((seed * 2654435761) land max_int) in
  let next () =
    state := ((!state * 25214903917) + 11) land max_int;
    !state
  in
  for i = Array.length a - 1 downto 1 do
    let j = next () mod (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* Shadow execution: re-run one step with adversarially permuted inbox
   orders and demand a byte-identical outcome.  States are compared by
   Marshal image (hence the canonical-representation requirement
   documented on [Config.sanitize]); outboxes are compared as multisets
   by sorting on (destination, payload bytes); the halted predicate is
   compared directly since it gates future stepping. *)
let shadow_check ~prog ~node ~round ~inbox st state' outs =
  let canon outs =
    List.sort
      (fun (d, p) (d', p') ->
        let c = Int.compare d d' in
        if c <> 0 then c else String.compare p p')
      (List.map (fun (d, p) -> (d, Marshal.to_string p [])) outs)
  in
  let base_state = Marshal.to_string state' [] in
  let base_outs = canon outs in
  let base_halted = prog.halted state' in
  let replay inbox' =
    let s2, o2 = prog.step ~node ~round ~inbox:inbox' st in
    if
      (not (String.equal (Marshal.to_string s2 []) base_state))
      || (not (List.equal (fun (d, p) (d', p') -> d = d' && String.equal p p')
                 (canon o2) base_outs))
      || not (Bool.equal (prog.halted s2) base_halted)
    then violate Order_dependence ~round ~sender:node
  in
  replay (List.rev inbox);
  replay (shuffle ~seed:((node * 1_000_003) + round) inbox)

(* Per-domain scratch for [drive]'s monomorphic round structures.

   A solve is hundreds of [drive] calls over small graphs, so the
   per-call [Array.make]s of the slot registries dominated the driver's
   minor-heap traffic.  The int/bool scratch is domain-local (each pool
   worker reuses its own across calls; no sharing, no locks) and
   versioned so reuse needs no per-call refill:

   - [stamp]/[slot_of] are token-versioned, and [token] is monotone
     across calls, so stale stamps from earlier drives can never equal
     a fresh token.
   - [sent_round] stores [epoch + r]; [epoch] advances past every stamp
     the previous call wrote (see [finally]), so stale entries can never
     collide with the current call's duplicate check.  Zero-initialized
     growth is safe because [epoch] starts at 1.
   - [slot_load] accumulates genuine per-run totals, so it alone is
     [Array.fill]ed (no allocation) on entry.
   - [counts] is a growable per-round message-count buffer replacing
     the old cons-per-round list.

   The polymorphic structures (states, double-buffered mailboxes) and
   the message payloads still allocate per call — they carry the 'msg
   type and cannot be cached monomorphically. *)
type scratch = {
  mutable sent_round : int array;  (* per slot: epoch-stamped last-send round *)
  mutable slot_load : int array;   (* per slot: messages over the whole run *)
  mutable stamp : int array;       (* per node: sender-row token *)
  mutable slot_of : int array;     (* per node: sender's CSR slot towards it *)
  mutable halted : bool array;     (* per node: monotone halt flags *)
  mutable counts : int array;      (* per round: messages sent *)
  mutable token : int;             (* monotone across calls; >= 1 in use *)
  mutable epoch : int;             (* monotone across calls; >= 1 *)
  mutable in_use : bool;           (* re-entrant drive gets fresh scratch *)
}

let fresh_scratch () =
  {
    sent_round = [||];
    slot_load = [||];
    stamp = [||];
    slot_of = [||];
    halted = [||];
    counts = [||];
    token = 0;
    epoch = 1;
    in_use = false;
  }

let scratch_key : scratch Domain.DLS.key = Domain.DLS.new_key fresh_scratch

let grown_int a len = Array.make (max len (2 * Array.length a)) 0

(* Shared driver.  [stop] decides termination given (round, all_halted,
   traffic_pending).

   Hot-path layout: every per-round structure is a flat array indexed
   by the graph's CSR slots — reused across calls through the
   domain-local [scratch] — so a round allocates nothing beyond the
   message payloads themselves, and a whole run allocates little
   beyond states and mailboxes.

   - Mailboxes are double-buffered list arrays.  Senders are stepped in
     descending node order, so consing onto the destination's next-round
     buffer yields an inbox already in ascending sender order — the
     per-node sort of the seed driver disappears.  (Step calls within a
     round are independent, so the processing order is unobservable
     except through delivery order, which this preserves.)
   - The duplicate-send registry and per-directed-edge word counters are
     arrays indexed by CSR slot; storing the epoch-stamped round of the
     last send makes entries self-invalidating, so there is no per-round
     (or even per-call) reset at all ("dirty list" of size zero).
   - Neighbor membership and directed-slot lookup are answered by
     stamping the sender's CSR row into two scratch arrays (token-
     versioned, so stamps too need no reset): O(deg) per *sending* node
     per round, then O(1) per message.
   - Message validation and delivery run in [deliver], one closure per
     call rather than one per stepped node per round. *)
let drive ?(cfg = Config.default) ?probe ~words ~stop g prog =
  let n = Graph.n g in
  let off = Graph.csr_offsets g in
  let nbr = Graph.csr_neighbors g in
  let slots = Array.length nbr in
  let sc0 = Domain.DLS.get scratch_key in
  let sc = if sc0.in_use then fresh_scratch () else sc0 in
  sc.in_use <- true;
  if Array.length sc.sent_round < slots then begin
    sc.sent_round <- grown_int sc.sent_round slots;
    sc.slot_load <- grown_int sc.slot_load slots
  end;
  if Array.length sc.stamp < n then begin
    sc.stamp <- grown_int sc.stamp n;
    sc.slot_of <- grown_int sc.slot_of n;
    sc.halted <- Array.make (max n (2 * Array.length sc.halted)) false
  end;
  if Array.length sc.counts = 0 then sc.counts <- Array.make 64 0;
  let epoch = sc.epoch in
  let sent_round = sc.sent_round in
  let slot_load = sc.slot_load in
  Array.fill slot_load 0 slots 0;
  let stamp = sc.stamp in
  let slot_of = sc.slot_of in
  let halted = sc.halted in
  let states = Array.init n prog.initial in
  let cur : (int * _) list array = Array.make n [] in
  let next : (int * _) list array = Array.make n [] in
  (* halted is a pure function of the node state, and halted nodes never
     step, so the flag set is monotone: track it incrementally instead
     of rescanning all states every round *)
  let live = ref 0 in
  for v = 0 to n - 1 do
    let h = prog.halted states.(v) in
    halted.(v) <- h;
    if not h then incr live
  done;
  let pending = ref false in
  let total_messages = ref 0 in
  let total_words = ref 0 in
  let sent_count = ref 0 in
  let max_words = ref 0 in
  let max_edge_words = ref 0 in
  let last_traffic_round = ref (-1) in
  let round = ref 0 in
  let note_round_count r c =
    if r >= Array.length sc.counts then begin
      let bigger = Array.make (2 * Array.length sc.counts) 0 in
      Array.blit sc.counts 0 bigger 0 (Array.length sc.counts);
      sc.counts <- bigger
    end;
    sc.counts.(r) <- c
  in
  let rec deliver v r t outs =
    match outs with
    | [] -> ()
    | (dst, payload) :: rest ->
        if dst < 0 || dst >= n || stamp.(dst) <> t then
          violate Non_neighbor_send ~round:r ~sender:v ~receiver:dst;
        let s = slot_of.(dst) in
        if sent_round.(s) = epoch + r then
          violate Duplicate_send ~round:r ~sender:v ~receiver:dst;
        let w = words payload in
        if w > cfg.Config.words_per_message then
          violate Oversized_message ~round:r ~sender:v ~receiver:dst ~words:w
            ~budget:cfg.Config.words_per_message;
        (* one message per channel per round (the duplicate check
           above), so the per-round aggregate load on a directed
           edge is exactly this payload *)
        (match cfg.Config.strict_edge_words with
        | Some cap when w > cap ->
            violate Edge_overload ~round:r ~sender:v ~receiver:dst ~words:w
              ~budget:cap
        | _ -> ());
        sent_round.(s) <- epoch + r;
        slot_load.(s) <- slot_load.(s) + 1;
        incr total_messages;
        incr sent_count;
        total_words := !total_words + w;
        if w > !max_words then max_words := w;
        if w > !max_edge_words then max_edge_words := w;
        last_traffic_round := r;
        next.(dst) <- (v, payload) :: next.(dst);
        pending := true;
        deliver v r t rest
  in
  Fun.protect
    ~finally:(fun () ->
      (* advance past every sent_round stamp this call wrote, even on a
         violation escape, and hand the scratch back *)
      sc.epoch <- epoch + !round + 2;
      sc.in_use <- false)
  @@ fun () ->
  while not (stop ~round:!round ~all_halted:(!live = 0 && not !pending)) do
    if !round >= cfg.Config.max_rounds then
      violate Watchdog ~round:!round ~budget:cfg.Config.max_rounds;
    let r = !round in
    sent_count := 0;
    pending := false;
    for v = n - 1 downto 0 do
      if not halted.(v) then begin
        let inbox = cur.(v) in
        let st0 = states.(v) in
        let state', outs = prog.step ~node:v ~round:r ~inbox st0 in
        if cfg.Config.sanitize then begin
          match inbox with
          | [] | [ _ ] -> ()
          | _ -> shadow_check ~prog ~node:v ~round:r ~inbox st0 state' outs
        end;
        (match probe with
        | None -> ()
        | Some f -> f ~node:v ~round:r ~inbox state' outs);
        states.(v) <- state';
        if prog.halted state' then begin
          halted.(v) <- true;
          decr live
        end;
        match outs with
        | [] -> ()
        | outs ->
            sc.token <- sc.token + 1;
            let t = sc.token in
            for s = off.(v) to off.(v + 1) - 1 do
              let u = nbr.(s) in
              if stamp.(u) <> t then begin
                stamp.(u) <- t;
                slot_of.(u) <- s
              end
            done;
            deliver v r t outs
      end
    done;
    (* swap buffers: next already holds ascending-sender inboxes *)
    for v = 0 to n - 1 do
      cur.(v) <- next.(v);
      next.(v) <- []
    done;
    note_round_count r !sent_count;
    incr round
  done;
  let max_edge_load = ref 0 in
  for s = 0 to slots - 1 do
    if slot_load.(s) > !max_edge_load then max_edge_load := slot_load.(s)
  done;
  let audit =
    {
      rounds = !round;
      total_messages = !total_messages;
      total_words = !total_words;
      max_words = !max_words;
      max_edge_load = !max_edge_load;
      max_edge_words = !max_edge_words;
      messages_per_round = Array.sub sc.counts 0 !round;
    }
  in
  (states, audit, !last_traffic_round)

let run ?cfg ?probe ~words g prog =
  let states, audit, _ =
    drive ?cfg ?probe ~words
      ~stop:(fun ~round:_ ~all_halted -> all_halted)
      g prog
  in
  (states, audit)

let run_bounded ?cfg ?probe ~words ~rounds g prog =
  let states, audit, last_traffic =
    drive ?cfg ?probe ~words
      ~stop:(fun ~round ~all_halted:_ -> round >= rounds)
      g prog
  in
  (* effective completion time: the delivery round of the last message *)
  (states, { audit with rounds = (if last_traffic < 0 then 0 else last_traffic + 2) })
