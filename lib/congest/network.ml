module Graph = Mincut_graph.Graph

type violation_kind =
  | Oversized_message
  | Non_neighbor_send
  | Duplicate_send
  | Edge_overload
  | Watchdog

type violation = {
  kind : violation_kind;
  round : int;
  sender : int option;
  receiver : int option;
  words : int option;
  budget : int option;
}

exception Model_violation of violation

let kind_name = function
  | Oversized_message -> "oversized-message"
  | Non_neighbor_send -> "non-neighbor-send"
  | Duplicate_send -> "duplicate-send"
  | Edge_overload -> "edge-overload"
  | Watchdog -> "watchdog"

let violation_message v =
  let endpoint = function Some x -> string_of_int x | None -> "-" in
  match v.kind with
  | Oversized_message ->
      Printf.sprintf "round %d: node %s message of %s words to %s exceeds budget %s"
        v.round (endpoint v.sender)
        (endpoint v.words) (endpoint v.receiver) (endpoint v.budget)
  | Non_neighbor_send ->
      Printf.sprintf "round %d: node %s sent to non-neighbor %s" v.round
        (endpoint v.sender) (endpoint v.receiver)
  | Duplicate_send ->
      Printf.sprintf "round %d: node %s sent twice to %s" v.round
        (endpoint v.sender) (endpoint v.receiver)
  | Edge_overload ->
      Printf.sprintf
        "round %d: edge %s->%s carried %s words, over the strict per-edge cap %s"
        v.round (endpoint v.sender) (endpoint v.receiver) (endpoint v.words)
        (endpoint v.budget)
  | Watchdog ->
      Printf.sprintf "watchdog: exceeded %s rounds" (endpoint v.budget)

let () =
  Printexc.register_printer (function
    | Model_violation v -> Some ("Model_violation: " ^ violation_message v)
    | _ -> None)

let violate ?sender ?receiver ?words ?budget kind ~round =
  raise (Model_violation { kind; round; sender; receiver; words; budget })

type ('state, 'msg) program = {
  initial : int -> 'state;
  step :
    node:int -> round:int -> inbox:(int * 'msg) list -> 'state -> 'state * (int * 'msg) list;
  halted : 'state -> bool;
}

type audit = {
  rounds : int;
  total_messages : int;
  total_words : int;
  max_words : int;
  max_edge_load : int;
  max_edge_words : int;
  messages_per_round : int array;
}

type 'msg mailbox = (int * 'msg) list array

let neighbor_sets g =
  Array.init (Graph.n g) (fun v ->
      let tbl = Hashtbl.create (Graph.degree g v) in
      Array.iter (fun (u, _) -> Hashtbl.replace tbl u ()) (Graph.adj g v);
      tbl)

(* Shared driver.  [stop] decides termination given (round, all_halted,
   traffic_pending). *)
let drive ?(cfg = Config.default) ~words ~stop g prog =
  let n = Graph.n g in
  let neighbors = neighbor_sets g in
  let states = Array.init n prog.initial in
  let inboxes : _ mailbox = Array.make n [] in
  let pending = ref false in
  let total_messages = ref 0 in
  let total_words = ref 0 in
  let per_round = ref [] in
  let max_words = ref 0 in
  let max_edge_words = ref 0 in
  let last_traffic_round = ref (-1) in
  let round = ref 0 in
  let all_halted () =
    let rec go v = v >= n || (prog.halted states.(v) && go (v + 1)) in
    go 0
  in
  while not (stop ~round:!round ~all_halted:(all_halted () && not !pending)) do
    if !round >= cfg.Config.max_rounds then
      violate Watchdog ~round:!round ~budget:cfg.Config.max_rounds;
    let next : _ mailbox = Array.make n [] in
    (* words in flight per directed edge this round; doubles as the
       duplicate-send registry *)
    let edge_words : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    let sent_count = ref 0 in
    pending := false;
    for v = 0 to n - 1 do
      if not (prog.halted states.(v)) then begin
        let inbox = List.sort (fun (a, _) (b, _) -> Int.compare a b) inboxes.(v) in
        let state', outs = prog.step ~node:v ~round:!round ~inbox states.(v) in
        states.(v) <- state';
        List.iter
          (fun (dst, payload) ->
            if not (Hashtbl.mem neighbors.(v) dst) then
              violate Non_neighbor_send ~round:!round ~sender:v ~receiver:dst;
            if Hashtbl.mem edge_words (v, dst) then
              violate Duplicate_send ~round:!round ~sender:v ~receiver:dst;
            let w = words payload in
            if w > cfg.Config.words_per_message then
              violate Oversized_message ~round:!round ~sender:v ~receiver:dst
                ~words:w ~budget:cfg.Config.words_per_message;
            let load =
              w + (match Hashtbl.find_opt edge_words (v, dst) with
                  | Some prior -> prior
                  | None -> 0)
            in
            Hashtbl.replace edge_words (v, dst) load;
            (match cfg.Config.strict_edge_words with
            | Some cap when load > cap ->
                violate Edge_overload ~round:!round ~sender:v ~receiver:dst
                  ~words:load ~budget:cap
            | _ -> ());
            incr total_messages;
            incr sent_count;
            total_words := !total_words + w;
            max_words := max !max_words w;
            max_edge_words := max !max_edge_words load;
            last_traffic_round := !round;
            next.(dst) <- (v, payload) :: next.(dst);
            pending := true)
          outs
      end
    done;
    Array.blit next 0 inboxes 0 n;
    per_round := !sent_count :: !per_round;
    incr round
  done;
  let audit =
    {
      rounds = !round;
      total_messages = !total_messages;
      total_words = !total_words;
      max_words = !max_words;
      max_edge_load = (if !total_messages > 0 then 1 else 0);
      max_edge_words = !max_edge_words;
      messages_per_round = Array.of_list (List.rev !per_round);
    }
  in
  (states, audit, !last_traffic_round)

let run ?cfg ~words g prog =
  let states, audit, _ =
    drive ?cfg ~words ~stop:(fun ~round:_ ~all_halted -> all_halted) g prog
  in
  (states, audit)

let run_bounded ?cfg ~words ~rounds g prog =
  let states, audit, last_traffic =
    drive ?cfg ~words ~stop:(fun ~round ~all_halted:_ -> round >= rounds) g prog
  in
  (* effective completion time: the delivery round of the last message *)
  (states, { audit with rounds = (if last_traffic < 0 then 0 else last_traffic + 2) })
