module Graph = Mincut_graph.Graph

type violation_kind =
  | Oversized_message
  | Non_neighbor_send
  | Duplicate_send
  | Edge_overload
  | Order_dependence
  | Watchdog

type violation = {
  kind : violation_kind;
  round : int;
  sender : int option;
  receiver : int option;
  words : int option;
  budget : int option;
}

exception Model_violation of violation

let kind_name = function
  | Oversized_message -> "oversized-message"
  | Non_neighbor_send -> "non-neighbor-send"
  | Duplicate_send -> "duplicate-send"
  | Edge_overload -> "edge-overload"
  | Order_dependence -> "order-dependence"
  | Watchdog -> "watchdog"

let violation_message v =
  let endpoint = function Some x -> string_of_int x | None -> "-" in
  match v.kind with
  | Oversized_message ->
      Printf.sprintf "round %d: node %s message of %s words to %s exceeds budget %s"
        v.round (endpoint v.sender)
        (endpoint v.words) (endpoint v.receiver) (endpoint v.budget)
  | Non_neighbor_send ->
      Printf.sprintf "round %d: node %s sent to non-neighbor %s" v.round
        (endpoint v.sender) (endpoint v.receiver)
  | Duplicate_send ->
      Printf.sprintf "round %d: node %s sent twice to %s" v.round
        (endpoint v.sender) (endpoint v.receiver)
  | Edge_overload ->
      Printf.sprintf
        "round %d: edge %s->%s carried %s words, over the strict per-edge cap %s"
        v.round (endpoint v.sender) (endpoint v.receiver) (endpoint v.words)
        (endpoint v.budget)
  | Order_dependence ->
      Printf.sprintf
        "round %d: node %s diverged under a permuted inbox order \
         (state/outbox depends on delivery order)"
        v.round (endpoint v.sender)
  | Watchdog ->
      Printf.sprintf "watchdog: exceeded %s rounds" (endpoint v.budget)

let () =
  Printexc.register_printer (function
    | Model_violation v -> Some ("Model_violation: " ^ violation_message v)
    | _ -> None)

let violate ?sender ?receiver ?words ?budget kind ~round =
  raise (Model_violation { kind; round; sender; receiver; words; budget })

type ('state, 'msg) program = {
  initial : int -> 'state;
  step :
    node:int -> round:int -> inbox:(int * 'msg) list -> 'state -> 'state * (int * 'msg) list;
  halted : 'state -> bool;
}

type ('state, 'msg) probe =
  node:int ->
  round:int ->
  inbox:(int * 'msg) list ->
  'state ->
  (int * 'msg) list ->
  unit

type audit = {
  rounds : int;
  total_messages : int;
  total_words : int;
  max_words : int;
  max_edge_load : int;
  max_edge_words : int;
  messages_per_round : int array;
}

(* Deterministic Fisher-Yates driven by an inline 48-bit LCG, seeded
   per (node, round) so the adversarial permutation the sanitizer tries
   is reproducible and differs across steps.  The engine must not
   consume any global randomness: two runs of the same program must
   permute identically. *)
let shuffle ~seed xs =
  let a = Array.of_list xs in
  let state = ref ((seed * 2654435761) land max_int) in
  let next () =
    state := ((!state * 25214903917) + 11) land max_int;
    !state
  in
  for i = Array.length a - 1 downto 1 do
    let j = next () mod (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* Shadow execution: re-run one step with adversarially permuted inbox
   orders and demand a byte-identical outcome.  States are compared by
   Marshal image (hence the canonical-representation requirement
   documented on [Config.sanitize]); outboxes are compared as multisets
   by sorting on (destination, payload bytes); the halted predicate is
   compared directly since it gates future stepping. *)
let shadow_check ~prog ~node ~round ~inbox st state' outs =
  let canon outs =
    List.sort
      (fun (d, p) (d', p') ->
        let c = Int.compare d d' in
        if c <> 0 then c else String.compare p p')
      (List.map (fun (d, p) -> (d, Marshal.to_string p [])) outs)
  in
  let base_state = Marshal.to_string state' [] in
  let base_outs = canon outs in
  let base_halted = prog.halted state' in
  let replay inbox' =
    let s2, o2 = prog.step ~node ~round ~inbox:inbox' st in
    if
      (not (String.equal (Marshal.to_string s2 []) base_state))
      || (not (List.equal (fun (d, p) (d', p') -> d = d' && String.equal p p')
                 (canon o2) base_outs))
      || not (Bool.equal (prog.halted s2) base_halted)
    then violate Order_dependence ~round ~sender:node
  in
  replay (List.rev inbox);
  replay (shuffle ~seed:((node * 1_000_003) + round) inbox)

(* Shared driver.  [stop] decides termination given (round, all_halted,
   traffic_pending).

   Hot-path layout: every per-round structure is a flat array allocated
   once per [drive] and indexed by the graph's CSR slots, so a round
   allocates nothing beyond the message payloads themselves.

   - Mailboxes are double-buffered list arrays.  Senders are stepped in
     descending node order, so consing onto the destination's next-round
     buffer yields an inbox already in ascending sender order — the
     per-node sort of the seed driver disappears.  (Step calls within a
     round are independent, so the processing order is unobservable
     except through delivery order, which this preserves.)
   - The duplicate-send registry and per-directed-edge word counters are
     arrays indexed by CSR slot; storing the round number of the last
     send makes entries self-invalidating, so there is no per-round
     reset at all ("dirty list" of size zero).
   - Neighbor membership and directed-slot lookup are answered by
     stamping the sender's CSR row into two scratch arrays (token-
     versioned, so stamps too need no reset): O(deg) per *sending* node
     per round, then O(1) per message. *)
let drive ?(cfg = Config.default) ?probe ~words ~stop g prog =
  let n = Graph.n g in
  let off = Graph.csr_offsets g in
  let nbr = Graph.csr_neighbors g in
  let slots = Array.length nbr in
  let states = Array.init n prog.initial in
  let cur : (int * _) list array = Array.make n [] in
  let next : (int * _) list array = Array.make n [] in
  (* round of the last message on each directed slot (-1 = never): the
     duplicate-send registry *)
  let sent_round = Array.make slots (-1) in
  (* messages carried by each directed slot over the whole run *)
  let slot_load = Array.make slots 0 in
  (* sender stamps: stamp.(u) = token marks slot_of.(u) as the current
     sender's first CSR slot towards u *)
  let stamp = Array.make n 0 in
  let slot_of = Array.make n 0 in
  let token = ref 0 in
  (* halted is a pure function of the node state, and halted nodes never
     step, so the flag set is monotone: track it incrementally instead
     of rescanning all states every round *)
  let halted = Array.init n (fun v -> prog.halted states.(v)) in
  let live = ref 0 in
  Array.iter (fun h -> if not h then incr live) halted;
  let pending = ref false in
  let total_messages = ref 0 in
  let total_words = ref 0 in
  let per_round = ref [] in
  let max_words = ref 0 in
  let max_edge_words = ref 0 in
  let last_traffic_round = ref (-1) in
  let round = ref 0 in
  while not (stop ~round:!round ~all_halted:(!live = 0 && not !pending)) do
    if !round >= cfg.Config.max_rounds then
      violate Watchdog ~round:!round ~budget:cfg.Config.max_rounds;
    let r = !round in
    let sent_count = ref 0 in
    pending := false;
    for v = n - 1 downto 0 do
      if not halted.(v) then begin
        let inbox = cur.(v) in
        let st0 = states.(v) in
        let state', outs = prog.step ~node:v ~round:r ~inbox st0 in
        if cfg.Config.sanitize then begin
          match inbox with
          | [] | [ _ ] -> ()
          | _ -> shadow_check ~prog ~node:v ~round:r ~inbox st0 state' outs
        end;
        (match probe with
        | None -> ()
        | Some f -> f ~node:v ~round:r ~inbox state' outs);
        states.(v) <- state';
        if prog.halted state' then begin
          halted.(v) <- true;
          decr live
        end;
        match outs with
        | [] -> ()
        | outs ->
            incr token;
            let t = !token in
            for s = off.(v) to off.(v + 1) - 1 do
              let u = nbr.(s) in
              if stamp.(u) <> t then begin
                stamp.(u) <- t;
                slot_of.(u) <- s
              end
            done;
            List.iter
              (fun (dst, payload) ->
                if dst < 0 || dst >= n || stamp.(dst) <> t then
                  violate Non_neighbor_send ~round:r ~sender:v ~receiver:dst;
                let s = slot_of.(dst) in
                if sent_round.(s) = r then
                  violate Duplicate_send ~round:r ~sender:v ~receiver:dst;
                let w = words payload in
                if w > cfg.Config.words_per_message then
                  violate Oversized_message ~round:r ~sender:v ~receiver:dst
                    ~words:w ~budget:cfg.Config.words_per_message;
                (* one message per channel per round (the duplicate check
                   above), so the per-round aggregate load on a directed
                   edge is exactly this payload *)
                (match cfg.Config.strict_edge_words with
                | Some cap when w > cap ->
                    violate Edge_overload ~round:r ~sender:v ~receiver:dst
                      ~words:w ~budget:cap
                | _ -> ());
                sent_round.(s) <- r;
                slot_load.(s) <- slot_load.(s) + 1;
                incr total_messages;
                incr sent_count;
                total_words := !total_words + w;
                if w > !max_words then max_words := w;
                if w > !max_edge_words then max_edge_words := w;
                last_traffic_round := r;
                next.(dst) <- (v, payload) :: next.(dst);
                pending := true)
              outs
      end
    done;
    (* swap buffers: next already holds ascending-sender inboxes *)
    for v = 0 to n - 1 do
      cur.(v) <- next.(v);
      next.(v) <- []
    done;
    per_round := !sent_count :: !per_round;
    incr round
  done;
  let max_edge_load = Array.fold_left max 0 slot_load in
  let audit =
    {
      rounds = !round;
      total_messages = !total_messages;
      total_words = !total_words;
      max_words = !max_words;
      max_edge_load;
      max_edge_words = !max_edge_words;
      messages_per_round = Array.of_list (List.rev !per_round);
    }
  in
  (states, audit, !last_traffic_round)

let run ?cfg ?probe ~words g prog =
  let states, audit, _ =
    drive ?cfg ?probe ~words
      ~stop:(fun ~round:_ ~all_halted -> all_halted)
      g prog
  in
  (states, audit)

let run_bounded ?cfg ?probe ~words ~rounds g prog =
  let states, audit, last_traffic =
    drive ?cfg ?probe ~words
      ~stop:(fun ~round ~all_halted:_ -> round >= rounds)
      g prog
  in
  (* effective completion time: the delivery round of the last message *)
  (states, { audit with rounds = (if last_traffic < 0 then 0 else last_traffic + 2) })
