(** Empirical asymptotic fitter: does the measured cost actually grow
    like the claimed envelope?

    The paper's headline is Õ(√n + D) rounds with O(log n)-bit
    messages.  Unit tests pin exact round counts at fixed sizes; this
    analyzer checks the {e shape}: it runs the audited primitives and
    the one-respecting-cut algorithm over a seeded supercritical-gnp
    ladder (n = 2^k, diameter O(log n)) and, for each quantity, fits
    the measured value against its envelope.  The fit passes when the
    measured/envelope ratio stays flat across the ladder — within a
    multiplicative [slack] — so super-envelope growth (e.g. a primitive
    regressing to Θ(n) or payloads growing past c·log n) fails with a
    per-quantity report, while engine constants cancel out. *)

type point = { n : int; measured : float; envelope : float }

type fit = {
  quantity : string;
  envelope_name : string;  (** e.g. ["sqrt n + D"] *)
  points : point list;
  min_ratio : float;       (** min measured/envelope over the ladder *)
  max_ratio : float;
  ok : bool;               (** max_ratio ≤ slack · min_ratio *)
}

type report = { slack : float; fits : fit list; ok : bool }

val supercritical : seed:int -> int -> Mincut_graph.Graph.t
(** Seeded connected G(n, 8·ln n / n): the diameter-O(log n) family
    every n-sweep uses ([bench/workloads] delegates here). *)

val default_slack : float
(** 2.5 — wide enough for small-n noise, tight enough that one extra
    √n factor across a 16→128 ladder blows through it. *)

val run :
  ?params:Mincut_core.Params.t ->
  ?quick:bool ->
  ?slack:float ->
  ?seed:int ->
  unit ->
  report
(** Fits four quantities: BFS rounds vs D+2, a √n-item upcast vs
    √n + D, one-respecting-cut rounds vs √n·log* n + D, and its max
    engine-audited payload vs log₂ n.  [quick] drops the largest ladder
    point (n = 128) for CI. *)

val to_json : report -> Mincut_util.Json.t

val describe : report -> string list
(** One line per fit, pass or fail. *)

(** {1 The large-n store ladder}

    The engine ladder tops out at n = 128 and lives in the
    supercritical-gnp (D = O(log n)) regime.  The chunked-store ladder
    covers the opposite corner: seeded √n × √n tori — D = Θ(√n), the
    regime where the paper's √n and D terms meet — streamed through
    {!Mincut_store.Bulk_loader} at sizes up to n > 10⁵ and traversed
    chunk-at-a-time under an eviction-forcing byte budget.  Measured
    quantities (chunked BFS rounds, the pipelined √n-item upcast, the
    fragment decomposition) fit against their envelopes directly; the
    full Theorem 2.1 pass, which cannot execute at that scale, enters as
    {!Mincut_core.Params.one_respect_charged_rounds} over the measured
    fragment geometry. *)

type store_sample = {
  st_n : int;  (** actual node count (rows · cols of the torus) *)
  st_dir : string;  (** store directory (reused as a cache across runs) *)
  st_chunk_bits : int;
  st_num_chunks : int;
  st_total_bytes : int;  (** resident footprint if fully loaded *)
  st_budget : int;  (** residency budget the sample ran under *)
  st_bfs_rounds : int;
  st_bfs_envelope : int;
  st_upcast_rounds : int;
  st_upcast_envelope : int;
  st_or_rounds : int;
  st_or_envelope : int;
  st_fragments : int;
  st_fragment_bound : int;  (** KP count contract: n/⌈√n⌉ + 1 *)
  st_frag_height : int;
  st_frag_height_envelope : int;  (** KP height contract: ⌈√n⌉ *)
  st_stats : Mincut_store.Residency.stats;
}

val default_scratch : string
(** ["_store"] — the gitignored scratch directory. *)

val store_ladder : quick:bool -> int list
(** Requested sizes: [256; 1024] quick, [4096; 32768; 131072] full
    (actual node counts are the nearest squares, ≥ the request). *)

val store_sample :
  ?params:Mincut_core.Params.t ->
  ?scratch:string ->
  ?chunk_bits:int ->
  ?instruments:Mincut_store.Residency.instruments ->
  seed:int ->
  int ->
  (store_sample, string) result
(** Build (or reuse — the content is deterministic per seed and
    geometry) the torus store for one ladder size, then measure every
    quantity under a budget of a quarter of the working set, so every
    whole-graph pass evicts. *)

val store_samples :
  ?params:Mincut_core.Params.t ->
  ?quick:bool ->
  ?seed:int ->
  ?scratch:string ->
  unit ->
  (store_sample list, string) result
(** The whole ladder; first failure aborts with its message. *)

val fit_store : ?slack:float -> store_sample list -> report
(** Four fits: chunked BFS vs D+2, the √n-item upcast vs √n + D, the
    charged Theorem 2.1 schedule vs √n·log* n + D, and the fragment
    height vs its ⌈√n⌉ target.  (The fragment {e count} sits anywhere
    below its bound depending on tree shape, so it is checked against
    the KP contract inside {!store_sample} — via
    [Fragments.check_invariants] — rather than fitted.) *)

val store_sample_to_json : store_sample -> Mincut_util.Json.t
