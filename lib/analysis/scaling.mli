(** Empirical asymptotic fitter: does the measured cost actually grow
    like the claimed envelope?

    The paper's headline is Õ(√n + D) rounds with O(log n)-bit
    messages.  Unit tests pin exact round counts at fixed sizes; this
    analyzer checks the {e shape}: it runs the audited primitives and
    the one-respecting-cut algorithm over a seeded supercritical-gnp
    ladder (n = 2^k, diameter O(log n)) and, for each quantity, fits
    the measured value against its envelope.  The fit passes when the
    measured/envelope ratio stays flat across the ladder — within a
    multiplicative [slack] — so super-envelope growth (e.g. a primitive
    regressing to Θ(n) or payloads growing past c·log n) fails with a
    per-quantity report, while engine constants cancel out. *)

type point = { n : int; measured : float; envelope : float }

type fit = {
  quantity : string;
  envelope_name : string;  (** e.g. ["sqrt n + D"] *)
  points : point list;
  min_ratio : float;       (** min measured/envelope over the ladder *)
  max_ratio : float;
  ok : bool;               (** max_ratio ≤ slack · min_ratio *)
}

type report = { slack : float; fits : fit list; ok : bool }

val supercritical : seed:int -> int -> Mincut_graph.Graph.t
(** Seeded connected G(n, 8·ln n / n): the diameter-O(log n) family
    every n-sweep uses ([bench/workloads] delegates here). *)

val default_slack : float
(** 2.5 — wide enough for small-n noise, tight enough that one extra
    √n factor across a 16→128 ladder blows through it. *)

val run :
  ?params:Mincut_core.Params.t ->
  ?quick:bool ->
  ?slack:float ->
  ?seed:int ->
  unit ->
  report
(** Fits four quantities: BFS rounds vs D+2, a √n-item upcast vs
    √n + D, one-respecting-cut rounds vs √n·log* n + D, and its max
    engine-audited payload vs log₂ n.  [quick] drops the largest ladder
    point (n = 128) for CI. *)

val to_json : report -> Mincut_util.Json.t

val describe : report -> string list
(** One line per fit, pass or fail. *)
