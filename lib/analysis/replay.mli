(** Deterministic-replay checking.

    The repo's reproducibility claim is that a simulation is a pure
    function of (graph, seed, parameters): every rerun must produce a
    bit-identical result {e and} a bit-identical execution — same round
    count, same per-round message counts, same words on the wire.
    Hidden nondeterminism (ambient [Random] state, hash-order iteration
    leaking into message order, wall-clock reads) shows up as an audit
    diff long before it corrupts a cut value, so the checker runs a
    program twice and diffs the full {!Mincut_congest.Network.audit}.

    The combinators are generic (any ['a] with an explicit differ), so
    [mincut_lint] also replays whole pipelines and diffs their
    summaries. *)

type 'a outcome = ('a, string list) result
(** [Ok value] when both runs agreed ([value] is the first run's);
    [Error diffs] listing every field that disagreed. *)

val diff_audits :
  Mincut_congest.Network.audit -> Mincut_congest.Network.audit -> string list
(** Field-by-field differences (rounds, message totals, words, per-round
    profile), empty when identical. *)

val check : run:(unit -> 'a) -> diff:('a -> 'a -> string list) -> 'a outcome
(** Evaluate [run] twice and diff the results. *)

val check_program :
  ?cfg:Mincut_congest.Config.t ->
  words:('msg -> int) ->
  Mincut_graph.Graph.t ->
  ('state, 'msg) Mincut_congest.Network.program ->
  Mincut_congest.Network.audit outcome
(** Run a CONGEST program twice via {!Mincut_congest.Network.run} and
    diff the audits. *)

val diff_named : name:string -> equal:('a -> 'a -> bool) -> 'a -> 'a -> string list
(** Helper for building composite differs: [[]] when equal, a one-entry
    ["name differs"] list otherwise. *)
