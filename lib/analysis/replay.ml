module Network = Mincut_congest.Network

type 'a outcome = ('a, string list) result

let diff_named ~name ~equal a b = if equal a b then [] else [ name ^ " differs" ]

let diff_int name a b =
  if Int.equal a b then [] else [ Printf.sprintf "%s: %d vs %d" name a b ]

let diff_audits (a : Network.audit) (b : Network.audit) =
  List.concat
    [
      diff_int "rounds" a.Network.rounds b.Network.rounds;
      diff_int "total_messages" a.Network.total_messages b.Network.total_messages;
      diff_int "total_words" a.Network.total_words b.Network.total_words;
      diff_int "max_words" a.Network.max_words b.Network.max_words;
      diff_int "max_edge_load" a.Network.max_edge_load b.Network.max_edge_load;
      diff_int "max_edge_words" a.Network.max_edge_words b.Network.max_edge_words;
      (let pa = a.Network.messages_per_round and pb = b.Network.messages_per_round in
       if Array.length pa <> Array.length pb then
         [
           Printf.sprintf "messages_per_round: %d rounds vs %d" (Array.length pa)
             (Array.length pb);
         ]
       else
         let diffs = ref [] in
         Array.iteri
           (fun r va ->
             if not (Int.equal va pb.(r)) then
               diffs :=
                 Printf.sprintf "messages_per_round[%d]: %d vs %d" r va pb.(r)
                 :: !diffs)
           pa;
         List.rev !diffs);
    ]

let check ~run ~diff =
  let first = run () in
  let second = run () in
  match diff first second with [] -> Ok first | diffs -> Error diffs

let check_program ?cfg ~words g prog =
  check
    ~run:(fun () -> snd (Network.run ?cfg ~words g prog))
    ~diff:diff_audits
