module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Generators = Mincut_graph.Generators
module Config = Mincut_congest.Config
module Network = Mincut_congest.Network
module Cost = Mincut_congest.Cost
module Primitives = Mincut_congest.Primitives
module Params = Mincut_core.Params
module One_respect = Mincut_core.One_respect
module Api = Mincut_core.Api
module Rng = Mincut_util.Rng
module Json = Mincut_util.Json

type check = { name : string; ok : bool; details : string list }

type report = { checks : check list; ok : bool }

type defect = Order | Span | Payload

let defect_name = function
  | Order -> "order"
  | Span -> "span"
  | Payload -> "payload"

let defect_of_name = function
  | "order" -> Some Order
  | "span" -> Some Span
  | "payload" -> Some Payload
  | _ -> None

(* Same certification workloads as the replay harness: two regular
   lattices plus a seeded random graph. *)
let workloads () =
  [
    ("torus4", Generators.torus 4 4);
    ("grid5", Generators.grid 5 5);
    ("gnp24", Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3);
  ]

(* ---- sanitize: shipped primitives under permuted delivery ---------- *)

(* Run every shipped primitive with [Config.sanitize] set: each step
   with a multi-message inbox is re-executed under adversarial inbox
   orders inside the engine, so an order-dependent program raises. *)
let sanitize_primitive_checks () =
  let cfg = Config.sanitized Config.default in
  let one (gname, g) =
    let n = Graph.n g in
    let tree = Tree.bfs_tree g ~root:0 in
    let values = Array.init n (fun v -> (v * 7 mod 31) + 1) in
    let items = Array.init n (fun v -> if v mod 3 = 0 then v else -1) in
    let items = Array.of_list (List.filter (fun x -> x >= 0) (Array.to_list items)) in
    let initial = Array.init n (fun v -> if v mod 4 = 0 then [ v ] else []) in
    let progs =
      [
        ("bfs_tree", fun () -> ignore (Primitives.bfs_tree ~cfg g ~root:0));
        ( "convergecast_sum",
          fun () -> ignore (Primitives.convergecast_sum ~cfg g ~tree ~values) );
        ( "broadcast_items",
          fun () -> ignore (Primitives.broadcast_items ~cfg g ~tree ~items) );
        ( "upcast_distinct",
          fun () -> ignore (Primitives.upcast_distinct ~cfg g ~tree ~initial) );
        ("flood_max", fun () -> ignore (Primitives.flood_max ~cfg g ~values));
        ("flood_echo", fun () -> ignore (Primitives.flood_echo ~cfg g ~root:0));
      ]
    in
    List.filter_map
      (fun (pname, f) ->
        match f () with
        | () -> None
        | exception Network.Model_violation v ->
            Some
              (Printf.sprintf "%s on %s: %s" pname gname
                 (Network.violation_message v)))
      progs
  in
  let details = List.concat_map one (workloads ()) in
  {
    name = "sanitize: primitives under permuted inboxes";
    ok = details = [];
    details;
  }

(* The probe-instrumented path: payload and state-footprint tracking on
   the raw BFS program (payloads are single words). *)
let sanitize_bfs_check () =
  let one (gname, g) =
    let r = Sanitize.run ~words:(fun _ -> 1) g (Primitives.bfs_program g ~root:0) in
    List.map (fun line -> gname ^ ": " ^ line) (Sanitize.describe r)
  in
  let details = List.concat_map one (workloads ()) in
  { name = "sanitize: bfs program payload tracking"; ok = details = []; details }

(* ---- costcheck: span-tree laws over full runs ---------------------- *)

let costcheck_summary_checks () =
  let one (gname, g) =
    let s = Api.min_cut g in
    List.map
      (fun e -> gname ^ ": " ^ Costcheck.describe e)
      (Costcheck.check_tree s.Api.cost)
  in
  let details = List.concat_map one (workloads ()) in
  { name = "costcheck: Api.min_cut span trees"; ok = details = []; details }

let costcheck_one_respect_checks () =
  let one (gname, g) =
    let tree = Tree.bfs_tree g ~root:0 in
    (* both parameter modes: real primitives exercise the executed-audit
       law, fast mode the full scheduled-formula table *)
    List.concat_map
      (fun (pname, params) ->
        let r = One_respect.run ~params g tree in
        List.map
          (fun e -> Printf.sprintf "%s (%s): %s" gname pname (Costcheck.describe e))
          (Costcheck.check_one_respect ~params r))
      [ ("real", Params.default); ("fast", Params.fast) ]
  in
  let details = List.concat_map one (workloads ()) in
  {
    name = "costcheck: one-respect formula laws";
    ok = details = [];
    details;
  }

(* ---- scaling ------------------------------------------------------- *)

let scaling_check ~quick ~slack =
  let r = Scaling.run ~quick ?slack () in
  {
    name = "scaling: asymptotic envelope fits";
    ok = r.Scaling.ok;
    details = Scaling.describe r;
  }

(* The chunked-store ladder: same fitter, opposite regime (torus,
   D = Θ(√n)) at sizes the engine can't execute.  Besides the envelope
   fits, each point must actually have exercised eviction — a ladder
   that fit everything while resident defeats its own purpose. *)
let store_scaling_check ~quick ~slack =
  let name = "scaling: large-n store ladder" in
  match Scaling.store_samples ~quick () with
  | Error e -> { name; ok = false; details = [ e ] }
  | Ok samples ->
      let r = Scaling.fit_store ?slack samples in
      let starving =
        List.filter_map
          (fun (s : Scaling.store_sample) ->
            if s.Scaling.st_stats.Mincut_store.Residency.evictions > 0 then None
            else
              Some
                (Printf.sprintf
                   "n=%d: no evictions under a quarter-working-set budget"
                   s.Scaling.st_n))
          samples
      in
      {
        name;
        ok = r.Scaling.ok && starving = [];
        details = Scaling.describe r @ starving;
      }

(* ---- seeded defects ------------------------------------------------ *)

(* A deliberately order-dependent program: round-1 state is the inbox's
   sender sequence verbatim, so any permutation of delivery changes the
   marshalled state.  The sanitizer must catch it with (node, round). *)
let order_dependent_program g =
  Network.
    {
      initial = (fun _ -> []);
      step =
        (fun ~node ~round ~inbox st ->
          if round = 0 then
            ( st,
              Array.to_list
                (Array.map (fun (u, _) -> (u, node)) (Graph.adj g node)) )
          else (List.map fst inbox, []));
      halted = (fun st -> st <> []);
    }

let inject_order () =
  let g = Generators.torus 4 4 in
  let r = Sanitize.run ~words:(fun _ -> 1) g (order_dependent_program g) in
  let details =
    match r.Sanitize.order_dependence with
    | Some (node, round) ->
        [
          Printf.sprintf
            "caught: order dependence at node %d, round %d (defect injected \
             on purpose — this check fails to prove the catch)"
            node round;
        ]
    | None -> [ "MISSED: the sanitizer did not catch the order dependence" ]
  in
  (* the check fails either way: ok would require a clean report *)
  { name = "inject: order-dependent program"; ok = r.Sanitize.ok; details }

(* Mis-tag an Executed span: bump the first executed leaf's rounds so it
   disagrees with its engine audit.  Costcheck must reject the tree. *)
let rec bump_first_executed (s : Cost.span) =
  match s.Cost.children with
  | [] ->
      if Cost.provenance_equal s.Cost.provenance Cost.Executed then
        Some { s with Cost.rounds = s.Cost.rounds + 1 }
      else None
  | kids -> (
      match bump_in_list kids with
      | None -> None
      | Some kids' -> Some { s with Cost.children = kids' })

and bump_in_list = function
  | [] -> None
  | s :: rest -> (
      match bump_first_executed s with
      | Some s' -> Some (s' :: rest)
      | None -> (
          match bump_in_list rest with
          | Some rest' -> Some (s :: rest')
          | None -> None))

let inject_span () =
  let g = Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3 in
  let tree = Tree.bfs_tree g ~root:0 in
  let r = One_respect.run ~params:Params.default g tree in
  match bump_in_list r.One_respect.cost.Cost.spans with
  | None ->
      {
        name = "inject: mis-tagged executed span";
        ok = false;
        details = [ "no executed leaf found to tamper with" ];
      }
  | Some spans ->
      let tampered = { r.One_respect.cost with Cost.spans } in
      let errors = Costcheck.check_tree tampered in
      let details =
        match errors with
        | [] -> [ "MISSED: costcheck accepted a mis-tagged executed span" ]
        | es ->
            List.map
              (fun e -> "caught (defect injected on purpose): " ^ Costcheck.describe e)
              es
      in
      { name = "inject: mis-tagged executed span"; ok = errors = []; details }

(* A primitive "patched" to ship Θ(√n)-word payloads: legal under a
   permissive engine budget, but far beyond the c·log n scaling the
   model grants — the payload tracker must flag it. *)
let fat_payload_program g =
  let n = Graph.n g in
  let payload = List.init (Params.sqrt_target ~n) (fun i -> i) in
  Network.
    {
      initial = (fun _ -> false);
      step =
        (fun ~node ~round:_ ~inbox:_ sent ->
          if sent then (sent, [])
          else
            ( true,
              Array.to_list
                (Array.map (fun (u, _) -> (u, payload)) (Graph.adj g node)) ));
      halted = (fun sent -> sent);
    }

let inject_payload () =
  let n = 64 in
  let g = Generators.gnp_connected ~rng:(Rng.create 7) n 0.2 in
  (* permissive engine budget so the oversized-message rule stays out of
     the way: the *scaling* limit is what must catch this *)
  let cfg = Config.with_budget 64 in
  let limit = Sanitize.ceil_log2 n in
  let r = Sanitize.run ~cfg ~limit ~words:List.length g (fat_payload_program g) in
  let details =
    match r.Sanitize.flags with
    | [] -> [ "MISSED: no payload flag for a sqrt(n)-word message" ]
    | f :: _ ->
        [
          Printf.sprintf
            "caught: node %d round %d sent %d words against a %d-word log-n \
             limit (defect injected on purpose)"
            f.Sanitize.node f.Sanitize.round f.Sanitize.words f.Sanitize.limit;
        ]
  in
  { name = "inject: sqrt(n)-word payloads"; ok = r.Sanitize.ok; details }

(* ---- driver -------------------------------------------------------- *)

let run ?(quick = false) ?slack ?inject ?(extra = fun () -> []) () =
  let checks =
    match inject with
    | Some Order -> [ inject_order () ]
    | Some Span -> [ inject_span () ]
    | Some Payload -> [ inject_payload () ]
    | None ->
        [
          sanitize_primitive_checks ();
          sanitize_bfs_check ();
          costcheck_summary_checks ();
          costcheck_one_respect_checks ();
          scaling_check ~quick ~slack;
          store_scaling_check ~quick ~slack;
        ]
        @ extra ()
  in
  { checks; ok = List.for_all (fun (c : check) -> c.ok) checks }

let check_to_json c =
  Json.Obj
    [
      ("name", Json.String c.name);
      ("ok", Json.Bool c.ok);
      ("details", Json.List (List.map (fun d -> Json.String d) c.details));
    ]

let to_json r =
  Json.Obj
    [
      ("checks", Json.List (List.map check_to_json r.checks));
      ("ok", Json.Bool r.ok);
    ]
