type t = { lname : string; lorder : int; mutex : Mutex.t }

type violation_kind = Reentrancy | Order_inversion

type violation = {
  kind : violation_kind;
  domain : int;
  acquiring : string;
  acquiring_order : int;
  held : (string * int) list;
}

exception Lock_violation of violation

let create ~name ~order () = { lname = name; lorder = order; mutex = Mutex.create () }

let name t = t.lname

let order t = t.lorder

(* held-lock stack of the current domain, innermost first *)
let held_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

(* the violation registry is deliberately a plain mutex: it is not part
   of the checked order (it nests under arbitrary checked locks and is
   always a leaf) *)
let registry_mutex = Mutex.create ()

let registry : violation list ref = ref []

let raise_on_inversion = ref false

let set_raise_on_inversion b = raise_on_inversion := b

let violation_message v =
  Printf.sprintf "domain %d: %s acquiring %s(rank %d) while holding [%s]" v.domain
    (match v.kind with
    | Reentrancy -> "re-entrant"
    | Order_inversion -> "rank inversion")
    v.acquiring v.acquiring_order
    (String.concat "; "
       (List.map (fun (n, o) -> Printf.sprintf "%s(rank %d)" n o) v.held))

let () =
  Printexc.register_printer (function
    | Lock_violation v -> Some ("Lock_violation: " ^ violation_message v)
    | _ -> None)

let record v =
  Mutex.lock registry_mutex;
  registry := v :: !registry;
  Mutex.unlock registry_mutex

let violations () =
  Mutex.lock registry_mutex;
  let vs = List.rev !registry in
  Mutex.unlock registry_mutex;
  vs

let reset () =
  Mutex.lock registry_mutex;
  registry := [];
  Mutex.unlock registry_mutex

let with_lock t f =
  let held = Domain.DLS.get held_key in
  let snapshot () = List.map (fun l -> (l.lname, l.lorder)) !held in
  let make kind =
    {
      kind;
      domain = (Domain.self () :> int);
      acquiring = t.lname;
      acquiring_order = t.lorder;
      held = snapshot ();
    }
  in
  if List.memq t !held then begin
    let v = make Reentrancy in
    record v;
    raise (Lock_violation v)
  end;
  if List.exists (fun l -> l.lorder >= t.lorder) !held then begin
    let v = make Order_inversion in
    record v;
    if !raise_on_inversion then raise (Lock_violation v)
  end;
  Mutex.lock t.mutex;
  held := t :: !held;
  Fun.protect
    ~finally:(fun () ->
      held := List.filter (fun l -> not (l == t)) !held;
      Mutex.unlock t.mutex)
    f
