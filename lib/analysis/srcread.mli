(** Parsetree front end for the AST analysis tier.

    Parses every [.ml] under the requested roots with the compiler's own
    parser ([compiler-libs.common]) and assigns each compilation unit
    the qualified module path its wrapped dune library gives it
    ([lib/congest/primitives.ml] → ["Mincut_congest.Primitives"]), so
    the downstream call-graph resolution can match cross-library
    references.  [.mli] files are out of scope — the token tier
    ([Lint]) remains the fallback that covers them. *)

type source = {
  file : string;
  modpath : string;
  ast : Parsetree.structure;
}

type error = { efile : string; eline : int; ecol : int; reason : string }

val parse_string : file:string -> string -> (source, error) result
(** Parse one in-memory source.  Errors carry 1-based line and 0-based
    column of the failure, matching {!Lint.finding} conventions. *)

val parse_file : string -> (source, error) result

val load_paths : string list -> source list * error list
(** Walk files and directories (skipping [_build] and dotdirs), parse
    every [.ml], and partition into parsed sources (sorted by file) and
    parse errors. *)

val modpath_of_file : string -> string

val lc : Location.t -> int * int
(** [loc_start] of a location as (1-based line, 0-based column). *)

val flatten : Longident.t -> string list
(** Like [Longident.flatten] but total: functor applications keep the
    functor path instead of raising. *)

val name_of : Longident.t -> string
(** Dotted rendering of {!flatten}. *)

val strip_stdlib : string -> string

val has_suffix : suffix:string -> string -> bool
(** [has_suffix ~suffix:"Pool.map" "Mincut_parallel.Pool.map"] is true:
    equality or a ["."]-preceded dotted-path suffix. *)
