(** Static domain-race checker ([domain-race]).

    Whole-repo complement to the runtime {!Lockcheck}: flags top-level
    mutable state ([ref]/[Hashtbl]/array/buffer globals) whose accessor
    functions are reachable from a [Pool.map]/[Pool.map_reduce] task
    closure without passing (lexically) through [Lockcheck.with_lock],
    unless the global is an [Atomic] or [Domain.DLS] cell.  Findings
    land on the access site and carry the spawn-to-access witness
    chain.  Deliberately conservative: locks taken further up the call
    chain still flag — allowlist those with a justification. *)

val check : Callgraph.t -> Lint.finding list
