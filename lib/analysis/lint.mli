(** Source lint: determinism and CONGEST-model hazards.

    A token-level scanner over OCaml sources (comments and string
    literals stripped, so prose never trips a rule) that flags
    constructs which would silently break the repo's reproducibility
    guarantees:

    - {b poly-compare}: bare polymorphic [compare] / [Stdlib.compare].
      On [Graph.t], message types, or anything containing functions or
      abstract ids, structural comparison is at best
      representation-dependent and at worst raises — use the typed
      [Int.compare] / [Float.compare] / [List.compare] family.
    - {b poly-equal}: [Stdlib.( = )] passed as a first-class function
      (e.g. [List.mem ( = )] style) — same hazard as poly-compare.
    - {b hashtbl-hash}: [Hashtbl.hash] — its output varies across OCaml
      versions and flambda settings, which would break the FNV-1a
      cache-key guarantees of [Mincut_util.Hash].
    - {b unseeded-random}: any [Random.*] use.  All randomness must flow
      through the splittable, seeded [Mincut_util.Rng].
    - {b obj-magic}: [Obj.magic] and friends.
    - {b catchall-exn}: [try ... with _ ->] — swallows [Out_of_memory],
      [Stack_overflow] and every programming error alike; match the
      exceptions actually thrown.
    - {b bare-mutex}: direct [Mutex.create] outside [Lockcheck] — an
      unranked lock is invisible to the deadlock-order checker; the two
      legitimate sites (inside [Lockcheck] itself) are allowlisted.
    - {b float-equal}: [( = )] against a float literal in comparison
      position (bindings and record initializers are exempt) — use
      [Float.equal] or an epsilon test.
    - {b list-nth}: [List.nth] — O(n) per access, quadratic in loops.

    Findings can be suppressed via an allowlist file (see
    {!Allow.load}): one [rule path[:line]] entry per line, [#] comments.
    Output is available as both a human report and machine-readable
    JSON ([Mincut_util.Json]). *)

type finding = {
  file : string;
  line : int;   (** 1-based *)
  col : int;    (** 0-based byte column of the offending token *)
  rule : string;
  message : string;
}

val rules : (string * string) list
(** [(rule-id, one-line description)] for every rule the scanner knows. *)

val ast_subsumed : string list
(** Rules also implemented (scope-aware) by the AST tier ({!Astlint});
    currently all of them.  The token scanner stays the fallback for
    [.mli] files and sources the compiler's parser rejects. *)

val scan_source : file:string -> string -> finding list
(** Scan a source buffer ([file] is only used to label findings). *)

val scan_file : string -> finding list
(** Read and scan one [.ml]/[.mli] file. *)

val scan_paths : string list -> finding list
(** Scan files and directories (recursively; [.ml] and [.mli] only,
    skipping [_build] and dot-directories), findings sorted by
    file/line/col. *)

val compare_findings : finding -> finding -> int
(** Order by file, then line, then column. *)

(** Allowlist: suppressing accepted findings. *)
module Allow : sig
  type t

  val empty : t

  val load : ?known:(string -> bool) -> string -> (t, string) result
  (** Parse an allowlist file.  Each non-comment line is
      [rule path] or [rule path:line]; [path] matches a finding whose
      file path equals it or ends with ["/" ^ path].  [known] validates
      rule names (defaults to the token {!rules}); the AST tier passes
      its own rule set. *)

  val of_lines : ?known:(string -> bool) -> string list -> (t, string) result

  val filter : t -> finding list -> finding list
  (** Drop allowlisted findings. *)

  val unused : t -> finding list -> string list
  (** Entries that matched nothing — stale suppressions worth deleting. *)
end

val to_json : finding list -> Mincut_util.Json.t
(** [{ "findings": [ {file, line, col, rule, message} ], "count": n }] *)

val pp_findings : Format.formatter -> finding list -> unit
(** Human-readable [file:line:col: rule: message] lines. *)
