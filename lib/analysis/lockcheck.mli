(** Lock-order registry: runtime lock-discipline checking.

    The serving layer ([lib/serve]) shares a scheduler, a result cache
    and a metrics registry between domains.  Deadlock freedom there
    rests on a global discipline: every lock has a rank, and a domain
    may only acquire a lock of {e strictly higher} rank than any lock it
    already holds.  This module wraps [Mutex.t] so that discipline is
    {e checked on every acquisition}, not just asserted in a comment:

    - {b re-entrancy}: acquiring a lock the current domain already holds
      would deadlock on OCaml's non-reentrant [Mutex.t]; it is recorded
      and raised immediately rather than hanging the test suite;
    - {b order inversion}: acquiring a lock whose rank is ≤ the rank of
      any currently-held lock is recorded (and optionally raised) — two
      domains doing this with two locks is the classic AB/BA deadlock.

    Held-lock stacks live in domain-local storage, so checking is
    per-domain and lock acquisition stays uncontended apart from the
    wrapped mutex itself.  Violations accumulate in a global registry
    that tests drain with {!violations} / {!reset}. *)

type t
(** A ranked, named mutex. *)

type violation_kind = Reentrancy | Order_inversion

type violation = {
  kind : violation_kind;
  domain : int;                (** acquiring domain's id *)
  acquiring : string;          (** lock being acquired *)
  acquiring_order : int;
  held : (string * int) list;  (** (name, rank) held, innermost first *)
}

exception Lock_violation of violation

val create : name:string -> order:int -> unit -> t
(** Register a lock.  [order] is its rank in the global acquisition
    order; the serving layer uses scheduler = 10, cache = 20,
    metrics = 30/31. *)

val name : t -> string
val order : t -> int

val with_lock : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception).  Re-entrant acquisition
    raises {!Lock_violation} (always — proceeding would deadlock);
    rank inversions are recorded, and raised only under
    {!set_raise_on_inversion}. *)

val violation_message : violation -> string

val violations : unit -> violation list
(** Violations recorded since the last {!reset}, oldest first. *)

val reset : unit -> unit

val set_raise_on_inversion : bool -> unit
(** Default [false]: inversions are recorded but execution continues
    (the stress tests assert the registry stays empty). *)
