(* Effect-class inference over the call graph.

   Every def gets a class in the four-point lattice

     Pure < Det_stateful < Global_mutable < Clock_random_io

   intrinsically from its body (externals table, global accesses,
   mutation syntax), then propagated as a max over resolved callees to a
   fixpoint.  The enforced rule: everything reachable from a CONGEST
   step handler — the program-literal defs plus all of
   [lib/congest/primitives.ml] and [lib/congest/pipeline.ml] — must sit
   in the two deterministic classes.  This is the static complement of
   the runtime [Sanitize] pass: the sanitizer proves the shipped runs it
   saw were order-independent; this proves no reachable code *can*
   consult a clock, ambient randomness, I/O, or unsynchronized global
   state, on any path, run or not.

   Externals (unresolved names) classify by table, defaulting to [Pure]:
   the table must therefore name every impure corner of the stdlib the
   repo could plausibly touch, and a def whose inference is genuinely
   too coarse can carry [[@mincut.effect "<class>"]] to pin its class
   (annotated defs do not inherit from callees). *)

type cls = Pure | Det_stateful | Global_mutable | Clock_random_io

let rank = function
  | Pure -> 0
  | Det_stateful -> 1
  | Global_mutable -> 2
  | Clock_random_io -> 3

let cls_name = function
  | Pure -> "pure"
  | Det_stateful -> "deterministic-stateful"
  | Global_mutable -> "global-mutable"
  | Clock_random_io -> "clock-random-io"

let cls_of_name = function
  | "pure" -> Some Pure
  | "deterministic-stateful" -> Some Det_stateful
  | "global-mutable" -> Some Global_mutable
  | "clock-random-io" -> Some Clock_random_io
  | _ -> None

let max_cls a b = if rank a >= rank b then a else b

let deterministic c = rank c <= rank Det_stateful

(* ---- intrinsic classification ------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* exact names in the worst class *)
let io_exact =
  [
    "Sys.time"; "Sys.getenv"; "Sys.getenv_opt"; "Sys.command";
    "Hashtbl.hash"; "Hashtbl.seeded_hash"; "Hashtbl.randomize";
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "prerr_string"; "prerr_endline";
    "prerr_newline"; "read_line"; "read_int"; "read_int_opt";
    "input_line"; "input_value"; "input_char"; "input_byte";
    "really_input_string"; "open_in"; "open_in_bin"; "open_out";
    "open_out_bin"; "close_in"; "close_out"; "output_string";
    "output_char"; "output_byte"; "output_value"; "flush"; "flush_all";
    "stdin"; "stdout"; "stderr"; "exit"; "at_exit";
    "Printf.printf"; "Printf.eprintf"; "Printf.fprintf";
    "Format.printf"; "Format.eprintf"; "Format.fprintf";
    "Format.print_string"; "Format.print_newline"; "Format.print_flush";
    "Filename.temp_file"; "Filename.open_temp_file";
    "Printexc.print_backtrace"; "Printexc.get_callstack";
  ]

let io_prefix =
  [ "Unix."; "Gc."; "Thread."; "Event."; "In_channel."; "Out_channel."; "Sys.Signal" ]

let shared_prefix = [ "Mutex."; "Condition."; "Semaphore." ]

let stateful_exact =
  [ ":="; "!"; "incr"; "decr"; "ref" ]

let stateful_prefix =
  [
    "Hashtbl."; "Bytes."; "Buffer."; "Queue."; "Stack."; "Atomic.";
    "Weak."; "Domain.DLS."; "Random.State.";
  ]

let stateful_array =
  [ "Array.set"; "Array.fill"; "Array.blit"; "Array.sort"; "Array.unsafe_set" ]

(* classification of one unresolved (external) name; callers strip
   [Stdlib.] before asking *)
let classify_external name =
  if List.mem name io_exact then Clock_random_io
  else if has_prefix ~prefix:"Random.State." name then Det_stateful
  else if name = "Random" || has_prefix ~prefix:"Random." name then
    Clock_random_io
  else if has_prefix ~prefix:"Domain.DLS." name then Det_stateful
  else if has_prefix ~prefix:"Domain." name then Clock_random_io
  else if List.exists (fun p -> has_prefix ~prefix:p name) io_prefix then
    Clock_random_io
  else if List.exists (fun p -> has_prefix ~prefix:p name) shared_prefix then
    Global_mutable
  else if
    List.mem name stateful_exact
    || List.mem name stateful_array
    || List.exists (fun p -> has_prefix ~prefix:p name) stateful_prefix
  then Det_stateful
  else Pure

type culprit = {
  cname : string;  (** offending name (external, or global id) *)
  cfile : string;
  cline : int;
  ccol : int;
  creason : string;
}

type info = { cls : cls; culprit : culprit option }

let intrinsic cg (d : Callgraph.def) =
  let cls = ref (if d.Callgraph.mutates then Det_stateful else Pure) in
  let culprit = ref None in
  let bump c (r : Callgraph.refsite) reason name =
    if rank c > rank !cls then begin
      cls := c;
      culprit :=
        Some
          {
            cname = name;
            cfile = d.Callgraph.file;
            cline = r.Callgraph.rline;
            ccol = r.Callgraph.rcol;
            creason = reason;
          }
    end
  in
  List.iter
    (fun (r : Callgraph.refsite) ->
      match Callgraph.resolve cg ~from:d r.Callgraph.name with
      | Some id -> (
          match Callgraph.find_global cg id with
          | Some g -> (
              match g.Callgraph.gkind with
              | Callgraph.Atomic | Callgraph.Dls ->
                  bump Det_stateful r "synchronized global" id
              | _ ->
                  bump Global_mutable r
                    (Printf.sprintf "top-level %s"
                       (Callgraph.global_kind_name g.Callgraph.gkind))
                    id)
          | None -> () (* def→def edges contribute during propagation *))
      | None ->
          let c = classify_external r.Callgraph.name in
          if rank c > rank Pure then
            bump c r (cls_name c) r.Callgraph.name)
    d.Callgraph.refs;
  { cls = !cls; culprit = !culprit }

(* ---- propagation ------------------------------------------------------- *)

let classify cg =
  let info : (string, info) Hashtbl.t = Hashtbl.create 512 in
  let defs = Callgraph.defs_in_order cg in
  List.iter
    (fun (d : Callgraph.def) ->
      let i =
        match Option.bind d.Callgraph.effect_annot cls_of_name with
        | Some c -> { cls = c; culprit = None }
        | None -> intrinsic cg d
      in
      Hashtbl.replace info d.Callgraph.id i)
    defs;
  let annotated (d : Callgraph.def) =
    match Option.bind d.Callgraph.effect_annot cls_of_name with
    | Some _ -> true
    | None -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : Callgraph.def) ->
        if not (annotated d) then
          List.iter
            (fun (callee, (r : Callgraph.refsite)) ->
              match Hashtbl.find_opt info callee with
              | Some ci when rank ci.cls > rank (Hashtbl.find info d.Callgraph.id).cls
                ->
                  Hashtbl.replace info d.Callgraph.id
                    {
                      cls = ci.cls;
                      culprit =
                        Some
                          {
                            cname = callee;
                            cfile = d.Callgraph.file;
                            cline = r.Callgraph.rline;
                            ccol = r.Callgraph.rcol;
                            creason = "via call";
                          };
                    };
                  changed := true
              | _ -> ())
            (Callgraph.callees cg d))
      defs
  done;
  info

(* ---- the step-handler rule --------------------------------------------- *)

let is_congest_core (d : Callgraph.def) =
  let f = d.Callgraph.file in
  let suffix s =
    String.length f >= String.length s
    && String.sub f (String.length f - String.length s) (String.length s) = s
  in
  suffix "lib/congest/primitives.ml" || suffix "lib/congest/pipeline.ml"

let roots cg =
  List.filter_map
    (fun (d : Callgraph.def) ->
      if d.Callgraph.programs <> [] || is_congest_core d then
        Some d.Callgraph.id
      else None)
    (Callgraph.defs_in_order cg)

(* walk from a bad root to the nearest def whose own intrinsic (or
   annotation) carries the bad class, so the finding lands on the
   offending reference, not on the handler *)
let witness cg info root =
  let bad c = not (deterministic c) in
  let visited = Hashtbl.create 64 in
  let rec hunt chain id =
    if Hashtbl.mem visited id then None
    else begin
      Hashtbl.replace visited id ();
      match (Callgraph.find_def cg id, Hashtbl.find_opt info id) with
      | Some d, Some i when bad i.cls -> (
          match i.culprit with
          | Some c when c.creason <> "via call" ->
              Some (List.rev (id :: chain), i.cls, c)
          | _ ->
              (* class came from a callee; follow the worst edge *)
              let next =
                List.filter
                  (fun (callee, _) ->
                    match Hashtbl.find_opt info callee with
                    | Some ci -> bad ci.cls
                    | None -> false)
                  (Callgraph.callees cg d)
              in
              List.find_map (fun (callee, _) -> hunt (id :: chain) callee) next
          )
      | _ -> None
    end
  in
  hunt [] root

let check cg =
  let info = classify cg in
  let findings = ref [] in
  (* invalid annotations are findings too: a typo must not silently
     disable enforcement *)
  List.iter
    (fun (d : Callgraph.def) ->
      match d.Callgraph.effect_annot with
      | Some s when cls_of_name s = None ->
          findings :=
            {
              Lint.file = d.Callgraph.file;
              line = d.Callgraph.line;
              col = 0;
              rule = "step-effect";
              message =
                Printf.sprintf
                  "unknown [@mincut.effect %S]; expected pure, \
                   deterministic-stateful, global-mutable or clock-random-io"
                  s;
            }
            :: !findings
      | _ -> ())
    (Callgraph.defs_in_order cg);
  List.iter
    (fun root ->
      match Hashtbl.find_opt info root with
      | Some i when not (deterministic i.cls) -> (
          match witness cg info root with
          | Some (chain, cls, c) ->
              findings :=
                {
                  Lint.file = c.cfile;
                  line = c.cline;
                  col = c.ccol;
                  rule = "step-effect";
                  message =
                    Printf.sprintf
                      "step handler %s reaches %s (%s, %s): %s" root c.cname
                      (cls_name cls) c.creason
                      (String.concat " -> " chain);
                }
                :: !findings
          | None ->
              let d = Option.get (Callgraph.find_def cg root) in
              findings :=
                {
                  Lint.file = d.Callgraph.file;
                  line = d.Callgraph.line;
                  col = 0;
                  rule = "step-effect";
                  message =
                    Printf.sprintf "step handler %s classified %s" root
                      (cls_name i.cls);
                }
                :: !findings)
      | _ -> ())
    (roots cg);
  List.rev !findings
