(** Resource-safety bracket analysis (rule [resource-leak]).

    Every descriptor acquisition ([open_in*]/[open_out*],
    [Unix.openfile]/[socket]/[accept], [Filename.open_temp_file]) must
    be let-bound and either bracketed — a bound name appears in the
    [~finally] of a [Fun.protect] in the binding's continuation — or
    ownership-transferred into a longer-lived structure ([<-], [:=],
    [Hashtbl.add]/[replace]) whose owner releases it.  Unbound
    acquisitions are always findings.  Findings land at the acquisition
    site; defs reachable from an {!Exnflow} boundary root carry the
    witness chain from the root. *)

type summary = {
  acquisitions_checked : int;
  bracketed : int;  (** released on all paths (bracket or transfer) *)
}

val check : Callgraph.t -> summary * Lint.finding list
