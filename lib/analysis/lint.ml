module Json = Mincut_util.Json

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let rules =
  [
    ("poly-compare", "bare polymorphic compare; use Int.compare & co.");
    ("poly-equal", "polymorphic ( = ) as a first-class function");
    ("hashtbl-hash", "Hashtbl.hash varies across OCaml versions");
    ("unseeded-random", "Random.* bypasses the seeded Mincut_util.Rng");
    ("obj-magic", "Obj.* defeats the type system");
    ("catchall-exn", "try ... with _ -> swallows every exception");
    ("bare-mutex", "direct Mutex.create outside Lockcheck bypasses rank checking");
    ("float-equal", "( = ) on floats; use Float.equal or an epsilon test");
    ("list-nth", "List.nth is O(n) per access; index an array instead");
  ]

(* Every token rule is also implemented — scope-aware — by the AST tier
   ([Astlint.hazards]); this scanner is demoted to the fallback that
   still covers [.mli] files and sources the compiler's parser rejects.
   [Astlint.agreement] holds the two implementations to the same answers
   on parseable [.ml] files. *)
let ast_subsumed = List.map fst rules

(* ---- lexer ------------------------------------------------------------ *)

(* Just enough of OCaml's lexical structure to walk real sources safely:
   nested comments (which themselves lex string literals), ordinary and
   {id|...|id} quoted strings, char literals vs. type variables.  Tokens
   are dotted longidents (keywords included) and operator runs. *)

type token = {
  text : string;
  tline : int;
  tcol : int;
  is_ident : bool;
  is_float : bool;
}

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek c i = if c.pos + i < String.length c.src then Some c.src.[c.pos + i] else None

let advance c =
  (match peek c 0 with
  | Some '\n' ->
      c.line <- c.line + 1;
      c.col <- 0
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.pos <- c.pos + 1

let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident_char ch = is_ident_start ch || (ch >= '0' && ch <= '9') || ch = '\''

let is_op_char ch = String.contains "!$%&*+-/:<=>?@^|~." ch

let is_digit ch = ch >= '0' && ch <= '9'

let skip_escape c =
  (* after the backslash *)
  match peek c 0 with
  | Some ('0' .. '9') ->
      advance c;
      advance c;
      advance c
  | Some ('x' | 'o') ->
      advance c;
      advance c;
      advance c
  | Some _ -> advance c
  | None -> ()

let rec skip_string c =
  (* called past the opening quote *)
  match peek c 0 with
  | None -> ()
  | Some '"' -> advance c
  | Some '\\' ->
      advance c;
      skip_escape c;
      skip_string c
  | Some _ ->
      advance c;
      skip_string c

let skip_quoted_string c =
  (* called at '{'; returns true if a {id|...|id} literal was consumed *)
  let start = c.pos in
  let rec delim i =
    match peek c i with
    | Some ('a' .. 'z' | '_') -> delim (i + 1)
    | Some '|' -> Some i
    | _ -> None
  in
  match delim 1 with
  | None -> false
  | Some bar ->
      let id = String.sub c.src (start + 1) (bar - 1) in
      let closing = "|" ^ id ^ "}" in
      let m = String.length closing in
      for _ = 0 to bar do
        advance c
      done;
      let rec hunt () =
        if c.pos + m > String.length c.src then ()
        else if String.sub c.src c.pos m = closing then
          for _ = 1 to m do
            advance c
          done
        else begin
          advance c;
          hunt ()
        end
      in
      hunt ();
      true

let rec skip_comment c depth =
  (* called past an opening "(*" *)
  if depth = 0 then ()
  else
    match (peek c 0, peek c 1) with
    | None, _ -> ()
    | Some '(', Some '*' ->
        advance c;
        advance c;
        skip_comment c (depth + 1)
    | Some '*', Some ')' ->
        advance c;
        advance c;
        skip_comment c (depth - 1)
    | Some '"', _ ->
        (* comments lex string literals: "*)" inside one doesn't close *)
        advance c;
        skip_string c;
        skip_comment c depth
    | Some _, _ ->
        advance c;
        skip_comment c depth

(* Number literals, just precisely enough to tell floats from ints for
   the float-equal rule: decimal/hex/octal/binary ints with
   underscores, and floats with a dot and/or a decimal exponent.  The
   returned flag is "this is a float literal". *)
let lex_number c =
  let start = c.pos in
  let radix_prefix =
    match (peek c 0, peek c 1) with
    | Some '0', Some ('x' | 'X' | 'o' | 'O' | 'b' | 'B') -> true
    | _ -> false
  in
  let hex =
    match (peek c 0, peek c 1) with
    | Some '0', Some ('x' | 'X') -> true
    | _ -> false
  in
  if radix_prefix then begin
    advance c;
    advance c
  end;
  let digit ch =
    is_digit ch || ch = '_'
    || (hex && ((ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')))
  in
  let saw_dot = ref false and saw_exp = ref false in
  let continue = ref true in
  while !continue do
    match peek c 0 with
    | Some ch when digit ch -> advance c
    | Some '.' when (not !saw_dot) && (not !saw_exp) && not radix_prefix ->
        saw_dot := true;
        advance c
    | Some ('e' | 'E') when (not hex) && not !saw_exp -> (
        match peek c 1 with
        | Some d when is_digit d ->
            saw_exp := true;
            advance c;
            advance c
        | Some ('+' | '-') -> (
            match peek c 2 with
            | Some d when is_digit d ->
                saw_exp := true;
                advance c;
                advance c;
                advance c
            | _ -> continue := false)
        | _ -> continue := false)
    | _ -> continue := false
  done;
  (String.sub c.src start (c.pos - start), !saw_dot || !saw_exp)

let char_literal_ahead c =
  (* at a single quote: distinguish 'x' / '\n' from the type variable 'a *)
  match peek c 1 with
  | Some '\\' -> true
  | Some _ -> ( match peek c 2 with Some '\'' -> true | _ -> false)
  | None -> false

let tokenize src =
  let c = { src; pos = 0; line = 1; col = 0 } in
  let out = ref [] in
  let emit ?(is_float = false) text tline tcol is_ident =
    out := { text; tline; tcol; is_ident; is_float } :: !out
  in
  let len = String.length src in
  while c.pos < len do
    match (peek c 0, peek c 1) with
    | Some '(', Some '*' ->
        advance c;
        advance c;
        skip_comment c 1
    | Some '"', _ ->
        advance c;
        skip_string c
    | Some '{', _ when skip_quoted_string c -> ()
    | Some '\'', _ when char_literal_ahead c ->
        advance c;
        (match peek c 0 with
        | Some '\\' ->
            advance c;
            skip_escape c
        | _ -> advance c);
        (match peek c 0 with Some '\'' -> advance c | _ -> ())
    | Some ch, _ when is_digit ch ->
        let tline = c.line and tcol = c.col in
        let text, is_float = lex_number c in
        emit ~is_float text tline tcol false
    | Some ch, _ when is_ident_start ch ->
        let tline = c.line and tcol = c.col in
        let start = c.pos in
        let continue = ref true in
        while !continue do
          (match peek c 0 with
          | Some ch when is_ident_char ch -> advance c
          | Some '.' -> (
              (* extend a longident across dots: [Mod.sub.name] *)
              match peek c 1 with
              | Some ch2 when is_ident_start ch2 ->
                  advance c;
                  advance c
              | _ -> continue := false)
          | _ -> continue := false)
        done;
        emit (String.sub src start (c.pos - start)) tline tcol true
    | Some ch, _ when is_op_char ch ->
        let tline = c.line and tcol = c.col in
        let start = c.pos in
        while (match peek c 0 with Some ch -> is_op_char ch | None -> false) do
          advance c
        done;
        emit (String.sub src start (c.pos - start)) tline tcol false
    | Some (('(' | ')' | '[' | ']' | '{' | '}' | ',' | ';') as ch), _ ->
        emit (String.make 1 ch) c.line c.col false;
        advance c
    | Some _, _ -> advance c
    | None, _ -> ()
  done;
  Array.of_list (List.rev !out)

(* ---- rules ------------------------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let strip_stdlib s =
  if has_prefix ~prefix:"Stdlib." s then
    String.sub s 7 (String.length s - 7)
  else s

let scan_source ~file src =
  let toks = tokenize src in
  let n = Array.length toks in
  let findings = ref [] in
  let report t rule message =
    findings := { file; line = t.tline; col = t.tcol; rule; message } :: !findings
  in
  let text i = if i >= 0 && i < n then toks.(i).text else "" in
  let is_float i = i >= 0 && i < n && toks.(i).is_float in
  (* [lhs = float] is also how let-bindings, record fields and optional
     argument defaults spell initialization; only comparison positions
     should fire float-equal.  The one-token lookbehind alone missed
     bindings with parameters ([let f () = 2.5], [let rec scale x =
     0.5]), so when it is inconclusive we scan left across the
     parameter tokens for the introducing [let]/[and], stopping cold at
     anything that can only occur in expression position. *)
  let expression_stopper = function
    | "if" | "then" | "else" | "match" | "with" | "try" | "begin" | "end"
    | "do" | "done" | "while" | "for" | "fun" | "function" | "in" | "when"
    | "->" | "<-" | ";" | "," | "=" | "{" | "}" | "[" | "]" ->
        true
    | _ -> false
  in
  let binding_context i =
    match text (i - 2) with
    | "let" | "and" | "with" | "{" | ";" | "," | ":" | "<-" -> true
    | "(" when text (i - 3) = "?" -> true
    | _ ->
        let rec scan j =
          if j < 0 then false
          else
            let tj = text j in
            if tj = "let" || tj = "and" then true
            else if expression_stopper tj then false
            else if
              tj = "rec" || tj = "(" || tj = ")" || tj = "~" || tj = "?"
              || tj = ":" || tj = "_"
              || (j < n && toks.(j).is_ident)
            then scan (j - 1)
            else false
        in
        scan (i - 1)
  in
  (* nearest enclosing [try]/[match]-ish construct, for catchall-exn *)
  let construct_stack = ref [] in
  for i = 0 to n - 1 do
    let t = toks.(i) in
    if t.is_ident then begin
      let name = strip_stdlib t.text in
      (match t.text with
      | "try" | "match" -> construct_stack := t.text :: !construct_stack
      | "with" -> (
          match !construct_stack with
          | top :: rest ->
              construct_stack := rest;
              if top = "try" && text (i + 1) = "_"
                 && (text (i + 2) = "->" || text (i + 2) = "when") then
                report t "catchall-exn"
                  "catch-all exception handler; match the exceptions this \
                   expression actually raises"
          | [] -> ())
      | _ -> ());
      if name = "compare"
         && text (i - 1) <> "let" && text (i - 1) <> "and"
         && text (i - 1) <> "~" && text (i + 1) <> ":"
      then
        report t "poly-compare"
          "polymorphic compare is representation-dependent; use Int.compare, \
           Float.compare, String.compare or a typed comparator";
      if name = "Hashtbl.hash" || name = "Hashtbl.seeded_hash" then
        report t "hashtbl-hash"
          "Hashtbl.hash output varies across OCaml versions; use the FNV-1a \
           Mincut_util.Hash for anything persisted or compared across runs";
      if name = "Random" || has_prefix ~prefix:"Random." name then
        report t "unseeded-random"
          "ambient Random state breaks deterministic replay; draw from a \
           seeded Mincut_util.Rng passed in explicitly";
      (* dotted uses only: a bare [Obj] is a legitimate constructor name
         (e.g. [Json.Obj]) *)
      if has_prefix ~prefix:"Obj." name then
        report t "obj-magic" "Obj.* defeats the type system; find a typed way";
      if name = "Mutex.create" then
        report t "bare-mutex"
          "direct Mutex.create bypasses the ranked Lockcheck discipline; \
           create locks with Lockcheck.create ~name ~order";
      if name = "List.nth" then
        report t "list-nth"
          "List.nth is O(n) per access and O(n^2) in loops; use an array or \
           fold the list once"
    end
    else if t.text = "=" && text (i - 1) = "(" && text (i + 1) = ")" then
      report t "poly-equal"
        "polymorphic equality as a function value; use a typed equal"
    else if
      t.text = "="
      && (is_float (i - 1) || is_float (i + 1))
      && not (binding_context i)
    then
      report t "float-equal"
        "( = ) on a float literal; use Float.equal, or compare against an \
         epsilon when values are computed"
  done;
  List.rev !findings

let scan_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  scan_source ~file:path src

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (String.length entry > 0 && entry.[0] = '.') then acc
        else walk acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if is_source path then path :: acc
  else acc

let scan_paths paths =
  let files = List.fold_left walk [] paths in
  files
  |> List.sort String.compare
  |> List.concat_map scan_file
  |> List.sort compare_findings

(* ---- allowlist -------------------------------------------------------- *)

module Allow = struct
  type entry = { rule : string; path : string; line_no : int option; raw : string }

  type t = entry list

  let empty = []

  let default_known rule = List.exists (fun (r, _) -> r = rule) rules

  let parse_entry ~known lineno raw =
    let body =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    match
      String.split_on_char ' ' (String.trim body)
      |> List.filter (fun s -> s <> "")
    with
    | [] -> Ok None
    | [ rule; target ] ->
        if not (known rule) then
          Error (Printf.sprintf "line %d: unknown rule %S" lineno rule)
        else
          let path, line_no =
            match String.rindex_opt target ':' with
            | Some i -> (
                let p = String.sub target 0 i in
                let l = String.sub target (i + 1) (String.length target - i - 1) in
                match int_of_string_opt l with
                | Some l -> (p, Some l)
                | None -> (target, None))
            | None -> (target, None)
          in
          Ok (Some { rule; path; line_no; raw = String.trim body })
    | _ -> Error (Printf.sprintf "line %d: expected 'rule path[:line]'" lineno)

  let of_lines ?(known = default_known) lines =
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | l :: rest -> (
          match parse_entry ~known lineno l with
          | Error _ as e -> e
          | Ok None -> go acc (lineno + 1) rest
          | Ok (Some e) -> go (e :: acc) (lineno + 1) rest)
    in
    go [] 1 lines

  let load ?known path =
    match In_channel.with_open_text path In_channel.input_lines with
    | exception Sys_error e -> Error e
    | lines -> of_lines ?known lines

  let path_matches ~entry_path ~file =
    file = entry_path
    || (let suffix = "/" ^ entry_path in
        String.length file > String.length suffix
        && String.sub file (String.length file - String.length suffix)
             (String.length suffix)
           = suffix)

  let matches (e : entry) (f : finding) =
    e.rule = f.rule
    && path_matches ~entry_path:e.path ~file:f.file
    && match e.line_no with None -> true | Some l -> l = f.line

  let filter t findings =
    List.filter (fun f -> not (List.exists (fun e -> matches e f) t)) findings

  let unused t findings =
    t
    |> List.filter (fun e -> not (List.exists (fun f -> matches e f) findings))
    |> List.map (fun e -> e.raw)
end

(* ---- output ----------------------------------------------------------- *)

let to_json findings =
  Json.Obj
    [
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("file", Json.String f.file);
                   ("line", Json.Int f.line);
                   ("col", Json.Int f.col);
                   ("rule", Json.String f.rule);
                   ("message", Json.String f.message);
                 ])
             findings) );
      ("count", Json.Int (List.length findings));
    ]

let pp_findings fmt findings =
  List.iter
    (fun f ->
      Format.fprintf fmt "%s:%d:%d: %s: %s@." f.file f.line f.col f.rule f.message)
    findings
