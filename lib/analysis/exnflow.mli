(** Interprocedural may-raise inference and boundary policies.

    Every def gets a raise set — the exception constructors its body
    may let escape, ["?"] standing for one the analysis cannot name —
    inferred structurally ([raise]/[failwith]/[assert], a curated
    raising-externals table, resolved callee sets) with [try]/[match
    ... with exception] handlers subtracting what they match, and
    propagated to a fixpoint.  [[@mincut.raises "A,B"]] pins a def's
    complete set ([""] pins empty); pinned defs neither infer nor
    inherit.  The implicit [Invalid_argument] of bounds checks is
    deliberately out of scope (the protocol fuzz test is the dynamic
    complement).

    The enforced boundary policies (rule [exn-escape]):
    [serve-total] — [Server.handle_command]/[Server.run] raise nothing;
    [pool-no-leak] — the pool's domain bodies raise nothing;
    [store-typed] — [Store_error] never escapes [lib/store].
    [[@mincut.boundary "<policy>"]] adds a root; unknown policy names
    are findings.  Findings land at the intrinsic raise site with a
    call-chain witness, in the style of {!Effects}. *)

val external_raises : string -> string list
(** Exceptions one unresolved ([Stdlib.]-stripped) name may raise,
    per the curated table; [[]] for anything unlisted. *)

val policy_names : string list

val policy_roots : Callgraph.t -> (string * string list) list
(** Roots of the empty-set policies, in deterministic def order. *)

type summary = {
  defs_raising : int;  (** defs with a non-empty inferred raise set *)
  policies : (string * int) list;  (** policy -> enforced root/def count *)
}

val check : Callgraph.t -> summary * Lint.finding list
