(** Span-tree invariant verifier for {!Mincut_congest.Cost} trees.

    The cost tree is the repo's accounting artifact: every round the
    algorithms claim is a span tagged with where the number came from
    ([Executed] | [Scheduled] | [Charged]).  This analyzer re-derives
    the laws the tree must satisfy and reports every breach:

    - {b executed-audit}: an [Executed] leaf carries an engine audit and
      its rounds equal the audit's rounds;
    - {b audit-provenance}: only executed leaves carry audits;
    - {b leaf-sum}: a group span's rounds equal its children's sum
      (except the zero-round ["(overlapped)"] marker under [Cost.par]);
    - {b audit-profile}: an audit's per-round congestion profile sums to
      its message total;
    - {b total}: the tree total equals the top-level span sum;
    - {b formula} (one-respect only): every [Scheduled]/[Charged] leaf
      of the Theorem 2.1 tree equals its published closed form,
      recomputed from {!Mincut_core.One_respect.stats} and
      {!Mincut_core.Params}. *)

type error = {
  path : string;    (** "group / subgroup / leaf" span path *)
  law : string;     (** which invariant broke *)
  detail : string;  (** numbers involved *)
}

val check_tree : Mincut_congest.Cost.t -> error list
(** Structural laws only; applies to any cost tree in the repo. *)

val check_one_respect :
  ?params:Mincut_core.Params.t ->
  Mincut_core.One_respect.result ->
  error list
(** {!check_tree} plus the formula laws over the result's own measured
    stats.  [params] must be the parameters the run used (they feed the
    KP-bound formula).  Also fails with a single {b formula-coverage}
    error when fewer than an expected floor of leaves match the label
    table — so a silent renaming of spans cannot make the formula check
    vacuous. *)

val describe : error -> string

val to_json : error list -> Mincut_util.Json.t
