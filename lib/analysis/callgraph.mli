(** Approximate intra-repo call graph over parsed sources.

    Defs are top-level (and nested-module top-level) value bindings,
    keyed by qualified id ["Mincut_congest.Primitives.bfs_program"].
    Each def carries every value identifier its body references (with
    position and two context bits: inside a [Pool.map]/[Pool.map_reduce]
    task argument, inside a [Lockcheck.with_lock] argument), its CONGEST
    program literals (records with both [initial] and [step] fields),
    and an optional [[@mincut.effect "<class>"]] override.  Top-level
    mutable-state makers ([ref], [Hashtbl.create], ...) also register as
    globals for {!Domcheck}.

    Resolution is name-based and approximate: aliases are expanded,
    unqualified names climb the enclosing module path, and qualified
    names match by exact id, then by unique dotted suffix (or unique
    within the caller's library).  Unresolved names are externals,
    classified by {!Effects}. *)

type global_kind = Ref | Table | Array_cell | Buffer | Atomic | Dls

val global_kind_name : global_kind -> string

type global = { gid : string; gkind : global_kind; gfile : string; gline : int }

type refsite = {
  name : string;
  rline : int;
  rcol : int;
  in_task : bool;  (** inside a [Pool.map]/[Pool.map_reduce] argument *)
  guarded : bool;  (** inside a [Lockcheck.with_lock] argument *)
}

type def = {
  id : string;
  file : string;
  line : int;
  arity : int;  (** leading syntactic parameters; 0 for plain values *)
  refs : refsite list;
  mutates : bool;  (** body contains a [<-] field/element write *)
  programs : (int * Parsetree.expression) list;
      (** CONGEST program literals: (line, [step] field body) *)
  effect_annot : string option;
  raises_annot : string option;
      (** [[@mincut.raises "A,B"]] pin: the complete raise set of the
          binding, overriding inference; [""] pins the empty set. *)
  boundary_annot : string option;
      (** [[@mincut.boundary "<policy>"]]: the binding is a root of the
          named {!Exnflow} boundary policy. *)
  body : Parsetree.expression;
}

type t

val build : Srcread.source list -> t

val find_def : t -> string -> def option
val find_global : t -> string -> global option
val defs_in_order : t -> def list
(** All defs in (file, line) collection order — deterministic output. *)

val resolve : t -> from:def -> string -> string option
(** Resolve a referenced name to a def or global id, or [None] for
    externals/locals. *)

val callees : t -> def -> (string * refsite) list
(** Resolved def→def edges with the reference site of each. *)

val reachable : t -> roots:string list -> (string, string list) Hashtbl.t
(** BFS closure; each reached id maps to a witness chain (root first,
    the id itself last). *)
