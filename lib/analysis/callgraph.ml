(* Approximate intra-repo call graph over parsed sources.

   One pass over each [Srcread.source] collects, per top-level (or
   nested-module top-level) value binding:

   - every value identifier referenced in the body, with position and
     two context bits: [in_task] (the reference occurs inside an
     argument of a [Pool.map]/[Pool.map_reduce] application — it may run
     on another domain) and [guarded] (the reference occurs inside an
     argument of [Lockcheck.with_lock]);
   - whether the body mutates through [<-] (array/field/instance set);
   - CONGEST program literals: record expressions carrying both an
     [initial] and a [step] field, with the [step] payload kept for
     [Allocheck] and marking the binding as a drive-callback root for
     [Effects];
   - an optional [[@mincut.effect "<class>"]] annotation overriding
     effect inference where it is too coarse.

   Top-level [ref]/[Hashtbl.create]/[Array.make]/... bindings are
   additionally registered as mutable globals for [Domcheck];
   [Atomic.make] and [Domain.DLS.new_key] register as the safe kinds.

   Resolution is name-based and deliberately approximate: module
   aliases ([module T = Mincut_graph.Tree], including [let module])
   are expanded, unqualified names resolve against the enclosing
   module path, and qualified names resolve by exact id then by
   dotted-suffix match (unique, or unique within the caller's library).
   Anything unresolved is an external, classified by [Effects]'s
   intrinsic table. *)

type global_kind = Ref | Table | Array_cell | Buffer | Atomic | Dls

let global_kind_name = function
  | Ref -> "ref"
  | Table -> "hashtbl"
  | Array_cell -> "array"
  | Buffer -> "buffer"
  | Atomic -> "atomic"
  | Dls -> "domain-local"

type global = { gid : string; gkind : global_kind; gfile : string; gline : int }

type refsite = {
  name : string;  (* alias-expanded, Stdlib-stripped dotted path *)
  rline : int;
  rcol : int;
  in_task : bool;
  guarded : bool;
}

type def = {
  id : string;
  file : string;
  line : int;
  arity : int;
  refs : refsite list;  (* in source order *)
  mutates : bool;
  programs : (int * Parsetree.expression) list;  (* (line, step field body) *)
  effect_annot : string option;
  raises_annot : string option;  (* [[@mincut.raises "A,B"]]; "" pins empty *)
  boundary_annot : string option;  (* [[@mincut.boundary "<policy>"]] *)
  body : Parsetree.expression;  (* for downstream walks (Allocheck) *)
}

type t = {
  defs : (string, def) Hashtbl.t;
  order : string list;  (* ids in (file, line) order *)
  globals : (string, global) Hashtbl.t;
  index : (string, string list) Hashtbl.t;  (* dotted suffix -> candidate ids *)
}

(* ---- per-file collection ----------------------------------------------- *)

let split_path = String.split_on_char '.'

(* the string payload of a [[@<attr> "<s>"]] annotation, if present *)
let string_attr attr (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> attr then None
      else
        match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            Some s
        | _ -> None)
    attrs

let effect_attr = string_attr "mincut.effect"

let rec arity_of (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> 1 + arity_of body
  | Pexp_newtype (_, body) -> arity_of body
  | Pexp_function _ -> 1
  | Pexp_constraint (e, _) -> arity_of e
  | _ -> 0

let rec head_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Srcread.name_of txt)
  | Pexp_constraint (e, _) -> head_name e
  | _ -> None

let pool_spawns = [ "Pool.map"; "Pool.map_reduce" ]

let is_pool_spawn name =
  List.exists (fun s -> Srcread.has_suffix ~suffix:s name) pool_spawns

let is_guard name =
  Srcread.has_suffix ~suffix:"Lockcheck.with_lock" name || name = "with_lock"

let global_makers =
  [
    ("ref", Ref);
    ("Hashtbl.create", Table);
    ("Array.make", Array_cell);
    ("Array.init", Array_cell);
    ("Array.create_float", Array_cell);
    ("Bytes.create", Array_cell);
    ("Bytes.make", Array_cell);
    ("Buffer.create", Buffer);
    ("Queue.create", Buffer);
    ("Stack.create", Buffer);
    ("Atomic.make", Atomic);
    ("Domain.DLS.new_key", Dls);
  ]

(* the head constructor of a top-level binding body, looking through
   type constraints — [let r : int ref = ref 0] still registers *)
let rec global_of_expr (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> global_of_expr e
  | Pexp_apply (f, _) -> (
      match head_name f with
      | Some name ->
          let name = Srcread.strip_stdlib name in
          List.find_map
            (fun (maker, kind) ->
              if name = maker || Srcread.has_suffix ~suffix:maker name then
                Some kind
              else None)
            global_makers
      | None -> None)
  | _ -> None

(* collect everything inside one binding body *)
let scan_body ~aliases (body : Parsetree.expression) =
  let refs = ref [] in
  let mutates = ref false in
  let programs = ref [] in
  let in_task = ref false in
  let guarded = ref false in
  let expand name =
    let name = Srcread.strip_stdlib name in
    match split_path name with
    | first :: rest when Hashtbl.mem aliases first ->
        String.concat "." (Hashtbl.find aliases first :: rest)
    | _ -> name
  in
  let record name loc =
    let rline, rcol = Srcread.lc loc in
    refs :=
      { name = expand name; rline; rcol; in_task = !in_task; guarded = !guarded }
      :: !refs
  in
  let rec expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> record (Srcread.name_of txt) loc
    | Pexp_setfield _ | Pexp_setinstvar _ ->
        mutates := true;
        Ast_iterator.default_iterator.expr it e
    | Pexp_letmodule
        ({ txt = Some alias; _ }, { pmod_desc = Pmod_ident { txt; _ }; _ }, body)
      ->
        Hashtbl.replace aliases alias (expand (Srcread.name_of txt));
        it.expr it body
    | Pexp_record (fields, base) ->
        let label (l : Longident.t Asttypes.loc) =
          match List.rev (Srcread.flatten l.txt) with
          | last :: _ -> last
          | [] -> ""
        in
        let labels = List.map (fun (l, _) -> label l) fields in
        if List.mem "initial" labels && List.mem "step" labels then begin
          let line, _ = Srcread.lc e.pexp_loc in
          List.iter
            (fun (l, payload) ->
              if label l = "step" then programs := (line, payload) :: !programs)
            fields
        end;
        Option.iter (it.expr it) base;
        List.iter (fun (_, payload) -> it.expr it payload) fields
    | Pexp_apply (f, args) -> (
        match head_name f with
        | Some name when is_guard (expand name) ->
            expr it f;
            let saved = !guarded in
            guarded := true;
            List.iter (fun (_, a) -> expr it a) args;
            guarded := saved
        | Some name when is_pool_spawn (expand name) ->
            expr it f;
            let saved = !in_task in
            in_task := true;
            List.iter (fun (_, a) -> expr it a) args;
            in_task := saved
        | _ -> Ast_iterator.default_iterator.expr it e)
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  (List.rev !refs, !mutates, List.rev !programs)

let binding_names (p : Parsetree.pattern) =
  let names = ref [] in
  let pat (it : Ast_iterator.iterator) (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> names := txt :: !names
    | _ -> Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  pat it p;
  List.rev !names

let collect_source (s : Srcread.source) ~add_def ~add_global =
  let aliases : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let rec structure path (items : Parsetree.structure) =
    List.iter (item path) items
  and item path (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let line, _ = Srcread.lc vb.pvb_loc in
            let name =
              match binding_names vb.pvb_pat with
              | n :: _ -> n
              | [] -> Printf.sprintf "_init_line%d" line
            in
            let id = String.concat "." (path @ [ name ]) in
            let refs, mutates, programs = scan_body ~aliases vb.pvb_expr in
            let def =
              {
                id;
                file = s.Srcread.file;
                line;
                arity = arity_of vb.pvb_expr;
                refs;
                mutates;
                programs;
                effect_annot = effect_attr vb.pvb_attributes;
                raises_annot = string_attr "mincut.raises" vb.pvb_attributes;
                boundary_annot = string_attr "mincut.boundary" vb.pvb_attributes;
                body = vb.pvb_expr;
              }
            in
            add_def def;
            match global_of_expr vb.pvb_expr with
            | Some gkind ->
                add_global
                  { gid = id; gkind; gfile = s.Srcread.file; gline = line }
            | None -> ())
          vbs
    | Pstr_module mb -> module_binding path mb
    | Pstr_recmodule mbs -> List.iter (module_binding path) mbs
    | _ -> ()
  and module_binding path (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | None -> ()
    | Some name -> (
        match mb.pmb_expr.pmod_desc with
        | Pmod_structure items -> structure (path @ [ name ]) items
        | Pmod_ident { txt; _ } ->
            Hashtbl.replace aliases name
              (Srcread.strip_stdlib (Srcread.name_of txt))
        | _ -> ())
  in
  structure (split_path s.Srcread.modpath) s.Srcread.ast

(* ---- graph assembly ---------------------------------------------------- *)

(* every dotted suffix with >= 2 components indexes the id, so
   "Primitives.bfs_program" finds "Mincut_congest.Primitives.bfs_program" *)
let index_id index id =
  let parts = split_path id in
  let n = List.length parts in
  let rec suffixes i parts =
    match parts with
    | [] | [ _ ] -> ()
    | _ :: rest ->
        if i > 0 then begin
          let key = String.concat "." parts in
          let prev = Option.value ~default:[] (Hashtbl.find_opt index key) in
          if not (List.mem id prev) then Hashtbl.replace index key (id :: prev)
        end;
        suffixes (i + 1) rest
  in
  ignore n;
  suffixes 0 parts

let build sources =
  let defs = Hashtbl.create 512 in
  let globals = Hashtbl.create 32 in
  let index = Hashtbl.create 1024 in
  let order = ref [] in
  List.iter
    (fun s ->
      collect_source s
        ~add_def:(fun d ->
          if not (Hashtbl.mem defs d.id) then begin
            Hashtbl.replace defs d.id d;
            index_id index d.id;
            order := d.id :: !order
          end)
        ~add_global:(fun g ->
          if not (Hashtbl.mem globals g.gid) then
            Hashtbl.replace globals g.gid g))
    sources;
  { defs; order = List.rev !order; globals; index }

let find_def t id = Hashtbl.find_opt t.defs id

let find_global t id = Hashtbl.find_opt t.globals id

let known t id = Hashtbl.mem t.defs id || Hashtbl.mem t.globals id

(* resolve one referenced name from inside [from] *)
let resolve t ~(from : def) name =
  if String.contains name '.' then
    if known t name then Some name
    else
      match Hashtbl.find_opt t.index name with
      | Some [ id ] -> Some id
      | Some (_ :: _ as ids) -> (
          (* ambiguous suffix: accept only a unique candidate within the
             caller's own library prefix *)
          let lib id = List.hd (split_path id) in
          let mine = lib from.id in
          match List.filter (fun id -> lib id = mine) ids with
          | [ id ] -> Some id
          | _ -> None)
      | _ -> None
  else
    (* unqualified: climb the enclosing module path *)
    let rec climb parts =
      match parts with
      | [] -> None
      | _ ->
          let candidate = String.concat "." (parts @ [ name ]) in
          if known t candidate then Some candidate
          else climb (List.rev (List.tl (List.rev parts)))
    in
    climb (List.rev (List.tl (List.rev (split_path from.id))))

(* resolved def-to-def edges, with the reference site of each *)
let callees t (d : def) =
  List.filter_map
    (fun r ->
      match resolve t ~from:d r.name with
      | Some id when Hashtbl.mem t.defs id && id <> d.id -> Some (id, r)
      | _ -> None)
    d.refs

(* BFS from [roots]; each reached id maps to its witness chain
   (root first, the id itself last) *)
let reachable t ~roots =
  let chains : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if Hashtbl.mem t.defs r && not (Hashtbl.mem chains r) then begin
        Hashtbl.replace chains r [ r ];
        Queue.add r queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let chain = Hashtbl.find chains id in
    match find_def t id with
    | None -> ()
    | Some d ->
        List.iter
          (fun (callee, _) ->
            if not (Hashtbl.mem chains callee) then begin
              Hashtbl.replace chains callee (chain @ [ callee ]);
              Queue.add callee queue
            end)
          (callees t d)
  done;
  chains

let defs_in_order t =
  List.filter_map (fun id -> find_def t id) t.order
