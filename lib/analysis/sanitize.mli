(** Shadow-execution sanitizer: adversarial order-dependence and
    payload-growth checking for CONGEST programs.

    The engine's sorted inbox delivery is an implementation convenience,
    not a model guarantee: a correct CONGEST program must compute the
    same states and messages under {e any} delivery order.  This
    analyzer drives a program through {!Mincut_congest.Network.run} with
    [Config.sanitize] set — every step with ≥ 2 inbox messages is
    re-executed under reversed and deterministically shuffled inboxes
    and byte-compared — and simultaneously hooks the engine's probe
    callback to track per-message word counts and per-node state
    footprints across rounds, flagging payloads that drift beyond the
    word budget's c·log n scaling. *)

type flag = {
  node : int;
  round : int;
  words : int;  (** measured payload words *)
  limit : int;  (** the c·log n limit it exceeded *)
}

type report = {
  order_dependence : (int * int) option;
      (** [(node, round)] provenance of the first divergence under a
          permuted inbox, when one was caught *)
  violation : string option;
      (** any other model violation the run raised (rendered) *)
  max_payload_words : int;  (** largest payload observed by the probe *)
  max_state_bytes : int;    (** largest marshalled node state *)
  payload_limit : int;      (** the scaling limit applied *)
  flags : flag list;        (** payloads beyond [payload_limit] *)
  ok : bool;                (** no divergence, no violation, no flags *)
}

val ceil_log2 : int -> int
(** ⌈log₂ n⌉, floored at 1 — the model's words-per-message scale. *)

val default_limit : int -> int
(** [default_limit n] — the payload scaling limit in words:
    [max Config.default.words_per_message ⌈log₂ n⌉]. *)

val run :
  ?cfg:Mincut_congest.Config.t ->
  ?limit:int ->
  words:('msg -> int) ->
  Mincut_graph.Graph.t ->
  ('state, 'msg) Mincut_congest.Network.program ->
  report
(** Run the program to completion under sanitize mode and the tracking
    probe.  Never raises on model violations — they are folded into the
    report.  [limit] overrides the payload scaling limit ([cfg]'s word
    budget still bounds each message unless raised by the caller). *)

val to_json : report -> Mincut_util.Json.t

val describe : report -> string list
(** Human-readable one-line findings (empty when [ok]). *)
