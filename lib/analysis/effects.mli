(** Effect-class inference: the static complement of {!Sanitize}.

    Every def gets a class in the lattice [Pure < Det_stateful <
    Global_mutable < Clock_random_io], intrinsically from its body
    (externals table, global accesses, mutation syntax) and propagated
    as a max over resolved callees to a fixpoint.  The enforced rule
    ([step-effect]): everything reachable from a CONGEST step handler —
    program-literal defs plus all of [lib/congest/primitives.ml] and
    [lib/congest/pipeline.ml] — must sit in the two deterministic
    classes.  [[@mincut.effect "<class>"]] pins a def's class where
    inference is too coarse; annotated defs do not inherit from
    callees, and unknown annotation strings are themselves findings. *)

type cls = Pure | Det_stateful | Global_mutable | Clock_random_io

val rank : cls -> int
val cls_name : cls -> string
val cls_of_name : string -> cls option
val max_cls : cls -> cls -> cls
val deterministic : cls -> bool

val classify_external : string -> cls
(** Table classification of one unresolved ([Stdlib.]-stripped) name;
    defaults to [Pure]. *)

type culprit = {
  cname : string;
  cfile : string;
  cline : int;
  ccol : int;
  creason : string;
}

type info = { cls : cls; culprit : culprit option }

val classify : Callgraph.t -> (string, info) Hashtbl.t
(** Fixpoint classification of every def. *)

val roots : Callgraph.t -> string list
(** The enforced roots, in deterministic order. *)

val check : Callgraph.t -> Lint.finding list
(** [step-effect] findings: each non-deterministic root reported at the
    nearest offending reference with its witness call chain. *)
