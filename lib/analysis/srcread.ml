(* Parsetree front end for the AST analysis tier.

   The token lexer in [Lint] sees spelling; this module gives the other
   analyzers ([Callgraph], [Effects], [Allocheck], [Domcheck]) real
   syntax: every [.ml] under the requested roots is parsed with the
   compiler's own parser ([compiler-libs.common]), so scope, calls,
   record literals and attributes are visible.  Interfaces ([.mli]) are
   deliberately out of scope — they declare no behaviour — which is one
   of the two reasons the token tier survives as a fallback (the other
   is bootstrapping on sources that do not parse). *)

type source = {
  file : string;  (** path as given on the command line *)
  modpath : string;
      (** qualified module path, e.g. ["Mincut_congest.Primitives"]:
          library wrapper (derived from the [lib/<dir>] layout) plus the
          capitalized basename; bare basename outside [lib/] *)
  ast : Parsetree.structure;
}

type error = { efile : string; eline : int; ecol : int; reason : string }

(* ---- locations and longidents ----------------------------------------- *)

let lc (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* [Longident.flatten] is fatal on functor applications; this one just
   keeps the functor path, which is the right approximation here. *)
let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (l, _) -> flatten l

let name_of lid = String.concat "." (flatten lid)

let strip_stdlib name =
  if String.length name > 7 && String.sub name 0 7 = "Stdlib." then
    String.sub name 7 (String.length name - 7)
  else name

let has_suffix ~suffix name =
  name = suffix
  || (let sl = String.length suffix and nl = String.length name in
      nl > sl + 1 && String.sub name (nl - sl - 1) (sl + 1) = "." ^ suffix)

(* ---- module paths ------------------------------------------------------ *)

let capitalize_basename file =
  Filename.basename file |> Filename.remove_extension |> String.capitalize_ascii

(* lib/<dir>/foo.ml lives in wrapped library Mincut_<dir>, so its
   compilation unit is addressable as Mincut_<dir>.Foo — match that so
   cross-library references resolve.  Anything else (bin/, injected
   sources) is addressed by its bare module name. *)
let modpath_of_file file =
  let base = capitalize_basename file in
  let parts = String.split_on_char '/' file in
  let rec wrapper = function
    | "lib" :: dir :: _ :: _ -> Some ("Mincut_" ^ dir)
    | _ :: rest -> wrapper rest
    | [] -> None
  in
  match wrapper parts with Some w -> w ^ "." ^ base | None -> base

(* ---- parsing ----------------------------------------------------------- *)

let parse_string ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok { file; modpath = modpath_of_file file; ast }
  | exception Syntaxerr.Error err ->
      let eline, ecol = lc (Syntaxerr.location_of_error err) in
      Error { efile = file; eline; ecol; reason = "syntax error" }
  | exception e ->
      let eline, ecol =
        match Location.error_of_exn e with
        | Some (`Ok err) -> lc err.Location.main.Location.loc
        | _ -> (1, 0)
      in
      Error { efile = file; eline; ecol; reason = Printexc.to_string e }

let parse_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~file:path src

(* same traversal policy as the token tier: skip _build and dotdirs *)
let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (String.length entry > 0 && entry.[0] = '.') then
          acc
        else walk acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let load_paths paths =
  let files = List.fold_left walk [] paths |> List.sort String.compare in
  List.fold_left
    (fun (sources, errors) file ->
      match parse_file file with
      | Ok s -> (s :: sources, errors)
      | Error e -> (sources, e :: errors))
    ([], []) files
  |> fun (sources, errors) -> (List.rev sources, List.rev errors)
