(* Interprocedural may-raise inference ("exnflow") over the call graph.

   Every def gets a *raise set*: the exception constructors its body may
   let escape, where "?" stands for an exception the analysis cannot
   name (a re-raise of a caught value, [raise] used as a first-class
   function).  The set is computed by a structural walk of the body —

   - [raise (C _)] / [failwith] / [invalid_arg] / [assert] contribute
     their constructor;
   - a curated table names the raising corners of the stdlib the repo
     touches ([Hashtbl.find] -> [Not_found], [open_*] -> [Sys_error],
     [Unix.*] -> [Unix_error], ...);
   - resolved intra-repo calls contribute the callee's current set;
   - [try ... with] and [match ... with exception] *subtract*: an
     unguarded handler pattern removes the constructors it matches from
     the protected expression's set (a catch-all removes everything,
     including "?"); handler guards catch nothing, conservatively —

   and propagated to a fixpoint over a reverse-dependency worklist.
   Typed-error returns ([result]) subtract for free: they are not
   exceptions.  [[@mincut.raises "A,B"]] pins a def's complete set
   (the empty string pins the empty set) where inference is too coarse
   or an invariant is discharged elsewhere — pinned defs neither infer
   nor inherit.  Each set element carries the site it was first seen at
   and the callee it was inherited through, so a finding can descend
   [ocall] links to the intrinsic raise site and report an exact
   file:line:col witness chain, in the style of [Effects].

   Deliberately out of scope: the implicit [Invalid_argument] of bounds
   checks ([Array.get], [String.sub], ...) — tabulating those would
   drown every numeric kernel in noise.  The protocol fuzz test is the
   dynamic complement on the one boundary where malformed input is
   adversarial.

   Boundary policies (rule [exn-escape]):

   - [serve-total]: [Server.handle_command] and [Server.run] must have
     an empty raise set — every exception reachable from the dispatch
     is caught and converted to a protocol ERR line.  The transports
     ([run_stdio]/[run_socket]) are excluded: a transport failure
     terminates the acceptor, it does not answer a request.
   - [pool-no-leak]: the pool's domain bodies ([Pool.helper_serve],
     [Pool.run_participant], [Pool.ensure_helpers]) must be empty —
     an exception escaping a worker domain kills it silently; task
     exceptions must travel the [Ok]/[Error] capture + caller-side
     [collect] re-raise path instead.
   - [store-typed]: [Chunked_graph.Store_error] must not appear in the
     raise set of any def outside [lib/store]: the typed [Chunk_io]
     errors are consumed or converted before crossing into serve.

   [[@mincut.boundary "<policy>"]] adds a def as a root of the named
   policy; unknown policy names are findings themselves. *)

module Smap = Map.Make (String)

type origin = {
  ofile : string;
  oline : int;
  ocol : int;
  via : string;  (* what raised: "raise Foo", an external name, "assert" *)
  ocall : string option;  (* callee def id the exception came through *)
}

type raises = origin Smap.t

(* ---- the raising-externals table --------------------------------------- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let raising_exact =
  [
    ("raise", [ "?" ]);
    ("raise_notrace", [ "?" ]);
    ("Printexc.raise_with_backtrace", [ "?" ]);
    ("failwith", [ "Failure" ]);
    ("invalid_arg", [ "Invalid_argument" ]);
    ("Hashtbl.find", [ "Not_found" ]);
    ("List.hd", [ "Failure" ]);
    ("List.tl", [ "Failure" ]);
    ("List.nth", [ "Failure" ]);
    ("List.find", [ "Not_found" ]);
    ("List.assoc", [ "Not_found" ]);
    ("Option.get", [ "Invalid_argument" ]);
    ("int_of_string", [ "Failure" ]);
    ("float_of_string", [ "Failure" ]);
    ("bool_of_string", [ "Invalid_argument" ]);
    ("input_line", [ "End_of_file" ]);
    ("input_char", [ "End_of_file" ]);
    ("input_byte", [ "End_of_file" ]);
    ("really_input", [ "End_of_file" ]);
    ("really_input_string", [ "End_of_file" ]);
    ("input_value", [ "Failure" ]);
    ("Marshal.from_channel", [ "Failure" ]);
    ("Marshal.from_string", [ "Failure" ]);
    ("open_in", [ "Sys_error" ]);
    ("open_in_bin", [ "Sys_error" ]);
    ("open_in_gen", [ "Sys_error" ]);
    ("open_out", [ "Sys_error" ]);
    ("open_out_bin", [ "Sys_error" ]);
    ("open_out_gen", [ "Sys_error" ]);
    ("close_in", [ "Sys_error" ]);
    ("close_out", [ "Sys_error" ]);
    ("Sys.rename", [ "Sys_error" ]);
    ("Sys.remove", [ "Sys_error" ]);
    ("Sys.readdir", [ "Sys_error" ]);
    ("Sys.is_directory", [ "Sys_error" ]);
    ("Sys.getcwd", [ "Sys_error" ]);
    ("Sys.mkdir", [ "Sys_error" ]);
    ("Queue.pop", [ "Empty" ]);
    ("Queue.take", [ "Empty" ]);
    ("Queue.peek", [ "Empty" ]);
    ("Stack.pop", [ "Empty" ]);
    ("Stack.top", [ "Empty" ]);
  ]

(* Unix syscalls raise [Unix_error]; the handful of pure accessors the
   repo leans on do not *)
let unix_safe =
  [
    "Unix.gettimeofday"; "Unix.time"; "Unix.getpid";
    "Unix.string_of_inet_addr"; "Unix.error_message";
  ]

let external_raises name =
  match List.assoc_opt name raising_exact with
  | Some exns -> exns
  | None ->
      if
        has_prefix ~prefix:"Unix." name
        && (not (List.mem name unix_safe))
        && not (has_prefix ~prefix:"Unix.PF_" name
               || has_prefix ~prefix:"Unix.SOCK_" name
               || has_prefix ~prefix:"Unix.SO_" name)
      then [ "Unix_error" ]
      else []

(* ---- structural raise-set of one body ---------------------------------- *)

let union a b = Smap.union (fun _ o _ -> Some o) a b

type catches = All | Names of string list

let join_catches a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Names xs, Names ys -> Names (xs @ ys)

(* what one handler pattern catches; unknown shapes catch nothing *)
let rec pat_catches (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> All
  | Ppat_alias (p, _) -> pat_catches p
  | Ppat_or (a, b) -> join_catches (pat_catches a) (pat_catches b)
  | Ppat_constraint (p, _) -> pat_catches p
  | Ppat_construct ({ txt; _ }, _) -> (
      match List.rev (Srcread.flatten txt) with
      | last :: _ -> Names [ last ]
      | [] -> Names [])
  | _ -> Names []

(* the [exception p] sub-patterns of a match case *)
let rec exc_subpats (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_exception sub -> [ sub ]
  | Ppat_or (a, b) -> exc_subpats a @ exc_subpats b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> exc_subpats p
  | _ -> []

let subtract set = function
  | All -> Smap.empty
  | Names ns -> Smap.filter (fun k _ -> not (List.mem k ns)) set

let rec head_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Srcread.name_of txt)
  | Pexp_constraint (e, _) -> head_name e
  | _ -> None

let last_component name =
  match List.rev (String.split_on_char '.' name) with
  | last :: _ -> last
  | [] -> name

(* the raise set of [d]'s body given the current [table] of callee sets *)
let body_raises cg table (d : Callgraph.def) =
  let refmap = Hashtbl.create 64 in
  List.iter
    (fun (r : Callgraph.refsite) ->
      Hashtbl.replace refmap (r.Callgraph.rline, r.Callgraph.rcol) r)
    d.Callgraph.refs;
  let site loc via ocall =
    let oline, ocol = Srcread.lc loc in
    { ofile = d.Callgraph.file; oline; ocol; via; ocall }
  in
  let of_name name loc =
    match Callgraph.resolve cg ~from:d name with
    | Some id when id <> d.Callgraph.id && Callgraph.find_def cg id <> None -> (
        match Hashtbl.find_opt table id with
        | Some s ->
            Smap.map (fun _ -> site loc ("call to " ^ id) (Some id)) s
        | None -> Smap.empty)
    | Some _ -> Smap.empty (* a global, or self-recursion *)
    | None ->
        List.fold_left
          (fun acc exn -> union acc (Smap.singleton exn (site loc name None)))
          Smap.empty (external_raises name)
  in
  let rec go (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let line, col = Srcread.lc loc in
        let name =
          match Hashtbl.find_opt refmap (line, col) with
          | Some (r : Callgraph.refsite) -> r.Callgraph.name
          | None -> Srcread.strip_stdlib (Srcread.name_of txt)
        in
        of_name name loc
    | Pexp_apply (f, args) -> (
        let argsets () =
          List.fold_left (fun acc (_, a) -> union acc (go a)) Smap.empty args
        in
        match Option.map Srcread.strip_stdlib (head_name f) with
        | Some ("raise" | "raise_notrace") -> (
            match args with
            | [ (_, a) ] -> (
                match a.pexp_desc with
                | Pexp_construct ({ txt; _ }, payload) ->
                    let exn = last_component (Srcread.name_of txt) in
                    let payload_set =
                      match payload with Some p -> go p | None -> Smap.empty
                    in
                    union
                      (Smap.singleton exn
                         (site a.pexp_loc ("raise " ^ exn) None))
                      payload_set
                | _ ->
                    union
                      (Smap.singleton "?" (site e.pexp_loc "re-raise" None))
                      (go a))
            | _ ->
                union
                  (Smap.singleton "?" (site e.pexp_loc "re-raise" None))
                  (argsets ()))
        | _ -> union (go f) (argsets ()))
    | Pexp_try (body, cases) ->
        let caught =
          List.fold_left
            (fun acc (c : Parsetree.case) ->
              if c.pc_guard <> None then acc
              else join_catches acc (pat_catches c.pc_lhs))
            (Names []) cases
        in
        union
          (subtract (go body) caught)
          (cases_raises cases)
    | Pexp_match (scrut, cases) ->
        let caught =
          List.fold_left
            (fun acc (c : Parsetree.case) ->
              if c.pc_guard <> None then acc
              else
                List.fold_left
                  (fun acc p -> join_catches acc (pat_catches p))
                  acc
                  (exc_subpats c.pc_lhs))
            (Names []) cases
        in
        union
          (subtract (go scrut) caught)
          (cases_raises cases)
    | Pexp_assert _ ->
        (* even [assert false]: compiled out only under -noassert, which
           the repo does not use *)
        union
          (Smap.singleton "Assert_failure" (site e.pexp_loc "assert" None))
          (children e)
    | _ -> children e
  and cases_raises cases =
    List.fold_left
      (fun acc (c : Parsetree.case) ->
        let acc =
          match c.pc_guard with Some g -> union acc (go g) | None -> acc
        in
        union acc (go c.pc_rhs))
      Smap.empty cases
  and children e =
    (* union over immediate sub-expressions, one level down *)
    let acc = ref Smap.empty in
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> acc := union !acc (go child));
      }
    in
    Ast_iterator.default_iterator.expr it e;
    !acc
  in
  go d.Callgraph.body

(* ---- fixpoint ----------------------------------------------------------- *)

let pin_of (d : Callgraph.def) annot =
  String.split_on_char ',' annot
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.fold_left
       (fun acc exn ->
         Smap.add exn
           {
             ofile = d.Callgraph.file;
             oline = d.Callgraph.line;
             ocol = 0;
             via = "pinned [@mincut.raises]";
             ocall = None;
           }
           acc)
       Smap.empty

let analyze cg =
  let table : (string, raises) Hashtbl.t = Hashtbl.create 512 in
  let defs = Callgraph.defs_in_order cg in
  List.iter
    (fun (d : Callgraph.def) ->
      let init =
        match d.Callgraph.raises_annot with
        | Some annot -> pin_of d annot
        | None -> Smap.empty
      in
      Hashtbl.replace table d.Callgraph.id init)
    defs;
  (* reverse edges: recompute a caller when a callee's set grows *)
  let callers : (string, string list) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun (d : Callgraph.def) ->
      List.iter
        (fun (callee, _) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt callers callee) in
          if not (List.mem d.Callgraph.id prev) then
            Hashtbl.replace callers callee (d.Callgraph.id :: prev))
        (Callgraph.callees cg d))
    defs;
  let queue = Queue.create () in
  let queued = Hashtbl.create 512 in
  let push id =
    if not (Hashtbl.mem queued id) then begin
      Hashtbl.replace queued id ();
      Queue.add id queue
    end
  in
  List.iter (fun (d : Callgraph.def) -> push d.Callgraph.id) defs;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    Hashtbl.remove queued id;
    match Callgraph.find_def cg id with
    | Some d when d.Callgraph.raises_annot = None ->
        let s = body_raises cg table d in
        let old = Hashtbl.find table id in
        if not (Smap.equal (fun _ _ -> true) old s) then begin
          Hashtbl.replace table id s;
          List.iter push (Option.value ~default:[] (Hashtbl.find_opt callers id))
        end
    | _ -> ()
  done;
  table

(* descend [ocall] links to the intrinsic raise site *)
let witness table root exn =
  let rec go acc id =
    match Option.bind (Hashtbl.find_opt table id) (Smap.find_opt exn) with
    | None -> None
    | Some o -> (
        match o.ocall with
        | Some callee when not (List.mem callee (id :: acc)) -> (
            match go (id :: acc) callee with
            | Some r -> Some r
            | None -> Some (List.rev (id :: acc), o))
        | _ -> Some (List.rev (id :: acc), o))
  in
  go [] root

(* ---- boundary policies -------------------------------------------------- *)

let policy_names = [ "serve-total"; "pool-no-leak"; "store-typed" ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let in_dir dir (d : Callgraph.def) = contains ~sub:dir d.Callgraph.file

let suffix_roots =
  [
    ("serve-total", "lib/serve", [ "Server.handle_command"; "Server.run" ]);
    ( "pool-no-leak",
      "lib/parallel",
      [ "Pool.helper_serve"; "Pool.run_participant"; "Pool.ensure_helpers" ] );
  ]

(* roots of the empty-set policies, in deterministic def order *)
let policy_roots cg =
  let roots = List.map (fun p -> (p, ref [])) [ "serve-total"; "pool-no-leak" ] in
  List.iter
    (fun (d : Callgraph.def) ->
      List.iter
        (fun (policy, dir, suffixes) ->
          if
            in_dir dir d
            && List.exists
                 (fun s -> Srcread.has_suffix ~suffix:s d.Callgraph.id)
                 suffixes
          then
            let cell = List.assoc policy roots in
            cell := d.Callgraph.id :: !cell)
        suffix_roots;
      match d.Callgraph.boundary_annot with
      | Some p when List.mem_assoc p roots ->
          let cell = List.assoc p roots in
          cell := d.Callgraph.id :: !cell
      | _ -> ())
    (Callgraph.defs_in_order cg);
  List.map (fun (p, cell) -> (p, List.rev !cell)) roots

type summary = {
  defs_raising : int;  (** defs with a non-empty inferred raise set *)
  policies : (string * int) list;  (** policy -> enforced root/def count *)
}

let exn_display = function "?" -> "an unnamed exception" | e -> e

let check cg =
  let table = analyze cg in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* a typo'd policy name must not silently disable enforcement *)
  List.iter
    (fun (d : Callgraph.def) ->
      match d.Callgraph.boundary_annot with
      | Some p when not (List.mem p policy_names) ->
          add
            {
              Lint.file = d.Callgraph.file;
              line = d.Callgraph.line;
              col = 0;
              rule = "exn-escape";
              message =
                Printf.sprintf
                  "unknown [@mincut.boundary %S]; expected %s" p
                  (String.concat ", " policy_names);
            }
      | _ -> ())
    (Callgraph.defs_in_order cg);
  let roots = policy_roots cg in
  (* empty-set policies: every exception a root can leak is a finding,
     reported at the intrinsic raise site with its call-chain witness *)
  List.iter
    (fun (policy, ids) ->
      List.iter
        (fun root ->
          match Hashtbl.find_opt table root with
          | None -> ()
          | Some set ->
              Smap.iter
                (fun exn _ ->
                  match witness table root exn with
                  | None -> ()
                  | Some (chain, o) ->
                      add
                        {
                          Lint.file = o.ofile;
                          line = o.oline;
                          col = o.ocol;
                          rule = "exn-escape";
                          message =
                            Printf.sprintf
                              "boundary %s: %s may raise %s (%s): %s" policy
                              root (exn_display exn) o.via
                              (String.concat " -> " chain);
                        })
                set)
        ids)
    roots;
  (* store-typed: report the defs where [Store_error] crosses out of
     lib/store (direct raise, or inherited from a store def); callers
     further up inherit through those and are not re-reported *)
  let store_typed = ref 0 in
  List.iter
    (fun (d : Callgraph.def) ->
      if not (in_dir "lib/store" d) then begin
        incr store_typed;
        match
          Option.bind
            (Hashtbl.find_opt table d.Callgraph.id)
            (Smap.find_opt "Store_error")
        with
        | Some o
          when (match o.ocall with
               | None -> true
               | Some callee -> (
                   match Callgraph.find_def cg callee with
                   | Some cd -> in_dir "lib/store" cd
                   | None -> false)) ->
            let chain, o =
              match witness table d.Callgraph.id "Store_error" with
              | Some w -> w
              | None -> ([ d.Callgraph.id ], o)
            in
            add
              {
                Lint.file = o.ofile;
                line = o.oline;
                col = o.ocol;
                rule = "exn-escape";
                message =
                  Printf.sprintf
                    "boundary store-typed: %s lets Store_error escape the \
                     store layer (%s): %s"
                    d.Callgraph.id o.via
                    (String.concat " -> " chain);
              }
        | _ -> ()
      end)
    (Callgraph.defs_in_order cg);
  let defs_raising =
    Hashtbl.fold
      (fun _ s acc -> if Smap.is_empty s then acc else acc + 1)
      table 0
  in
  let summary =
    {
      defs_raising;
      policies =
        List.map (fun (p, ids) -> (p, List.length ids)) roots
        @ [ ("store-typed", !store_typed) ];
    }
  in
  (summary, List.rev !findings)
