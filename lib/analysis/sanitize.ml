module Network = Mincut_congest.Network
module Config = Mincut_congest.Config
module Graph = Mincut_graph.Graph
module Json = Mincut_util.Json

type flag = { node : int; round : int; words : int; limit : int }

type report = {
  order_dependence : (int * int) option;
  violation : string option;
  max_payload_words : int;
  max_state_bytes : int;
  payload_limit : int;
  flags : flag list;
  ok : bool;
}

let ceil_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  max 1 (go 0 (max 1 n))

(* The word budget's c·log n scaling, stated in words: one word stands
   for Θ(log n) bits (Config.bits_per_word), so a model-conforming
   payload is O(1) words and certainly at most ~log₂ n words once n is
   past the tiny regime.  The floor at the default per-message budget
   keeps small graphs from flagging legitimate constant payloads. *)
let default_limit n = max Config.default.Config.words_per_message (ceil_log2 n)

let run ?(cfg = Config.default) ?limit ~words g prog =
  let n = Graph.n g in
  let payload_limit = match limit with Some l -> l | None -> default_limit n in
  let max_payload = ref 0 in
  let max_state = ref 0 in
  let flags = ref [] in
  let probe ~node ~round ~inbox:_ state outbox =
    let state_bytes = Bytes.length (Marshal.to_bytes state []) in
    if state_bytes > !max_state then max_state := state_bytes;
    List.iter
      (fun (_, payload) ->
        let w = words payload in
        if w > !max_payload then max_payload := w;
        if w > payload_limit then
          flags := { node; round; words = w; limit = payload_limit } :: !flags)
      outbox
  in
  let cfg = Config.sanitized cfg in
  let finish order violation =
    let flags = List.rev !flags in
    {
      order_dependence = order;
      violation;
      max_payload_words = !max_payload;
      max_state_bytes = !max_state;
      payload_limit;
      flags;
      ok = Option.is_none order && Option.is_none violation && flags = [];
    }
  in
  match Network.run ~cfg ~probe ~words g prog with
  | _states, _audit -> finish None None
  | exception Network.Model_violation v -> (
      match (v.Network.kind, v.Network.sender) with
      | Network.Order_dependence, Some node ->
          finish (Some (node, v.Network.round)) None
      | _ -> finish None (Some (Network.violation_message v)))

let flag_to_json f =
  Json.Obj
    [
      ("node", Json.Int f.node);
      ("round", Json.Int f.round);
      ("words", Json.Int f.words);
      ("limit", Json.Int f.limit);
    ]

let to_json r =
  Json.Obj
    [
      ( "order_dependence",
        match r.order_dependence with
        | None -> Json.Null
        | Some (node, round) ->
            Json.Obj [ ("node", Json.Int node); ("round", Json.Int round) ] );
      ( "violation",
        match r.violation with None -> Json.Null | Some m -> Json.String m );
      ("max_payload_words", Json.Int r.max_payload_words);
      ("max_state_bytes", Json.Int r.max_state_bytes);
      ("payload_limit", Json.Int r.payload_limit);
      ("flags", Json.List (List.map flag_to_json r.flags));
      ("ok", Json.Bool r.ok);
    ]

let describe r =
  let flags =
    List.map
      (fun f ->
        Printf.sprintf "node %d round %d sent %d words (limit %d)" f.node
          f.round f.words f.limit)
      r.flags
  in
  let order =
    match r.order_dependence with
    | None -> []
    | Some (node, round) ->
        [ Printf.sprintf "order-dependence at node %d, round %d" node round ]
  in
  let violation = match r.violation with None -> [] | Some m -> [ m ] in
  order @ violation @ flags
