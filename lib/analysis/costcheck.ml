module Cost = Mincut_congest.Cost
module Network = Mincut_congest.Network
module Pipeline = Mincut_congest.Pipeline
module One_respect = Mincut_core.One_respect
module Params = Mincut_core.Params
module Json = Mincut_util.Json

type error = { path : string; law : string; detail : string }

let err path law detail = { path; law; detail }

let describe e = Printf.sprintf "%s: [%s] %s" e.path e.law e.detail

let to_json errors =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("path", Json.String e.path);
             ("law", Json.String e.law);
             ("detail", Json.String e.detail);
           ])
       errors)

let overlapped_label = "(overlapped)"

(* ---- structural laws ------------------------------------------------- *)

(* The invariants every well-formed span tree satisfies, whatever
   algorithm produced it:
   - executed-audit: an [Executed] leaf was measured on the engine, so
     it must carry the run's audit and agree with its round count;
   - audit-provenance: only executed leaves may carry audits;
   - leaf-sum: a group span's rounds are exactly its children's sum,
     except the zero-round "(overlapped)" marker under [Cost.par];
   - audit-profile: within an audit, the per-round congestion profile
     must sum to the message total;
   - total: the tree total is the sum of the top-level spans. *)
let check_tree (t : Cost.t) =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let check_audit path (a : Network.audit) =
    let profile_sum = Array.fold_left ( + ) 0 a.Network.messages_per_round in
    if profile_sum <> a.Network.total_messages then
      add
        (err path "audit-profile"
           (Printf.sprintf "messages_per_round sums to %d, total_messages is %d"
              profile_sum a.Network.total_messages));
    if a.Network.total_words < a.Network.max_words then
      add
        (err path "audit-words"
           (Printf.sprintf "total_words %d < max_words %d" a.Network.total_words
              a.Network.max_words))
  in
  let rec walk prefix (s : Cost.span) =
    let path = if prefix = "" then s.Cost.label else prefix ^ " / " ^ s.Cost.label in
    if s.Cost.rounds < 0 then
      add (err path "non-negative" (Printf.sprintf "rounds %d" s.Cost.rounds));
    Option.iter (check_audit path) s.Cost.audit;
    match s.Cost.children with
    | [] -> (
        match (s.Cost.provenance, s.Cost.audit) with
        | Cost.Executed, None ->
            add (err path "executed-audit" "executed leaf carries no engine audit")
        | Cost.Executed, Some a ->
            if a.Network.rounds <> s.Cost.rounds then
              add
                (err path "executed-audit"
                   (Printf.sprintf "span rounds %d <> audit rounds %d"
                      s.Cost.rounds a.Network.rounds))
        | (Cost.Scheduled | Cost.Charged), Some _ ->
            add
              (err path "audit-provenance"
                 "non-executed leaf carries an engine audit")
        | (Cost.Scheduled | Cost.Charged), None -> ())
    | kids ->
        if Option.is_some s.Cost.audit then
          add (err path "audit-provenance" "group span carries an audit");
        let sum =
          List.fold_left (fun acc (k : Cost.span) -> acc + k.Cost.rounds) 0 kids
        in
        let overlapped =
          s.Cost.rounds = 0 && String.equal s.Cost.label overlapped_label
        in
        if (not overlapped) && sum <> s.Cost.rounds then
          add
            (err path "leaf-sum"
               (Printf.sprintf "children sum to %d, span has %d" sum
                  s.Cost.rounds));
        List.iter (walk path) kids
  in
  List.iter (walk "") t.Cost.spans;
  let top =
    List.fold_left (fun acc (s : Cost.span) -> acc + s.Cost.rounds) 0 t.Cost.spans
  in
  if top <> t.Cost.rounds then
    add
      (err "(root)" "total"
         (Printf.sprintf "top-level spans sum to %d, tree total is %d" top
            t.Cost.rounds));
  List.rev !errors

(* ---- one-respect formula laws ---------------------------------------- *)

(* Every scheduled/charged leaf of the Theorem 2.1 tree is a published
   closed form over quantities measured from this very execution
   (One_respect.stats) plus Params.  Recompute each and compare. *)
let expected_leaves ~params (s : One_respect.stats) =
  let hb = s.One_respect.bfs_height in
  let maxh = s.One_respect.max_fragment_height in
  let k = s.One_respect.fragment_count in
  let n = s.One_respect.n in
  let cc = Pipeline.convergecast in
  let bc = Pipeline.broadcast in
  let up = Pipeline.upcast in
  [
    ( "bfs-tree (scheduled)", Cost.Scheduled, hb + 1 );
    ( "step1: KP partition (charged at KP bound)",
      Cost.Charged,
      Params.kp_partition_rounds params ~n ~diameter:hb );
    ( "step1: fragment id agreement",
      Cost.Scheduled,
      cc ~depth:maxh ~max_edge_load:1 + bc ~depth:maxh ~items:1 );
    ( "step1: broadcast T_F (k-1 inter-fragment edges)",
      Cost.Scheduled,
      let items = max 0 (k - 1) in
      up ~depth:hb ~items + bc ~depth:hb ~items );
    ( "step2: upcast child-fragment lists (F computation)",
      Cost.Scheduled,
      cc ~depth:maxh ~max_edge_load:s.One_respect.max_child_frag_load );
    ( "step2: downcast ancestor ids (A computation)",
      Cost.Scheduled,
      cc ~depth:(2 * maxh) ~max_edge_load:s.One_respect.max_ancestor_items );
    ( "step2: downcast parent-fragment extension (scheduled)",
      Cost.Scheduled,
      maxh + 1 );
    ( "step2: downcast F(u) for ancestors",
      Cost.Scheduled,
      cc ~depth:(2 * maxh) ~max_edge_load:s.One_respect.max_f_items );
    ( "step3: within-fragment delta sums",
      Cost.Scheduled,
      cc ~depth:maxh ~max_edge_load:1 );
    ( "step3: broadcast delta(F_i) for all fragments",
      Cost.Scheduled,
      up ~depth:hb ~items:k + bc ~depth:hb ~items:k );
    ( "step4: local merging-node detection", Cost.Scheduled, 1 );
    ( "step4: broadcast merging nodes and T'F edges",
      Cost.Scheduled,
      let items =
        s.One_respect.merging_count + max 0 (s.One_respect.tf_prime_size - 1)
      in
      up ~depth:hb ~items + bc ~depth:hb ~items );
    ( "step5: per-edge LCA (1 frag exchange + list exchanges)",
      Cost.Scheduled,
      1 + Pipeline.exchange ~items:s.One_respect.max_lca_exchange );
    ( "step5: count type-(i) messages over BFS tree",
      Cost.Scheduled,
      let m = max 1 s.One_respect.case2_lca_count in
      cc ~depth:hb ~max_edge_load:m + bc ~depth:hb ~items:m );
    ( "step5: count type-(ii) messages within fragments",
      Cost.Scheduled,
      cc ~depth:maxh ~max_edge_load:(maxh + 1) );
    ( "step5: rho_down aggregation (delta_down machinery)",
      Cost.Scheduled,
      cc ~depth:maxh ~max_edge_load:1 + up ~depth:hb ~items:k
      + bc ~depth:hb ~items:k );
    ( "finish: global min convergecast + broadcast",
      Cost.Scheduled,
      cc ~depth:hb ~max_edge_load:1 + bc ~depth:hb ~items:1 );
  ]

(* A label-table check can silently go vacuous if the producer renames
   its spans; demand a healthy number of matches.  A run (either
   parameter mode) carries at least this many formula leaves. *)
let min_formula_matches = 10

let check_one_respect ?(params = Params.default) (r : One_respect.result) =
  let table = expected_leaves ~params r.One_respect.stats in
  let errors = ref [] in
  let matched = ref 0 in
  let rec walk prefix (s : Cost.span) =
    let path = if prefix = "" then s.Cost.label else prefix ^ " / " ^ s.Cost.label in
    match s.Cost.children with
    | [] -> (
        match
          List.find_opt (fun (l, _, _) -> String.equal l s.Cost.label) table
        with
        | None -> ()
        | Some (_, prov, rounds) ->
            incr matched;
            if not (Cost.provenance_equal prov s.Cost.provenance) then
              errors :=
                err path "formula-provenance"
                  (Printf.sprintf "expected %s, tree has %s"
                     (Cost.provenance_name prov)
                     (Cost.provenance_name s.Cost.provenance))
                :: !errors;
            if rounds <> s.Cost.rounds then
              errors :=
                err path "formula"
                  (Printf.sprintf
                     "recomputed closed form gives %d rounds, tree has %d"
                     rounds s.Cost.rounds)
                :: !errors)
    | kids -> List.iter (walk path) kids
  in
  List.iter (walk "") r.One_respect.cost.Cost.spans;
  let coverage =
    if !matched >= min_formula_matches then []
    else
      [
        err "(root)" "formula-coverage"
          (Printf.sprintf
             "only %d formula leaves matched the label table (need >= %d); \
              labels drifted?"
             !matched min_formula_matches);
      ]
  in
  check_tree r.One_respect.cost @ List.rev !errors @ coverage
