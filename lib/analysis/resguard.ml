(* Resource-safety bracket analysis ("resguard").

   A *acquisition* is an application of a descriptor-creating external
   ([open_in*]/[open_out*], [Unix.openfile]/[Unix.socket]/[Unix.accept],
   [Filename.open_temp_file]).  If any expression between the
   acquisition and the release raises, a straight-line
   [let fd = acquire ... in use; release fd] leaks the descriptor — on
   a long-lived server that is a slow death by EMFILE.  The rule
   ([resource-leak]): every acquisition must be let-bound and either

   - *bracketed*: some bound name appears in the [~finally] argument of
     a [Fun.protect] in the binding's continuation (this also covers
     [Lockcheck.with_lock], which brackets through [Fun.protect]
     internally), or
   - *ownership-transferred*: some bound name is stored into a longer-
     lived structure ([<-] on a field or array cell, [:=],
     [Hashtbl.add]/[replace]) whose owner is responsible for the
     release — the store's [Bulk_loader] writes its group channels into
     [t.channels] and closes them in [finalize].

   [In_channel.with_open_*]/[Out_channel.with_open_*] acquire nothing
   visible and are inherently safe.  An acquisition that is not
   let-bound at all (e.g. [parse (open_in f)]) can never be released on
   a raising path and is always a finding.  Findings land at the
   acquisition site, named with the enclosing def; when the def is
   reachable from a serve/pool boundary root the witness call chain
   from the root is appended. *)

let acquisitions =
  [
    "open_in"; "open_in_bin"; "open_in_gen"; "open_out"; "open_out_bin";
    "open_out_gen"; "Unix.openfile"; "Unix.socket"; "Unix.accept";
    "Filename.open_temp_file";
  ]

let transfer_heads =
  [ "Array.set"; "Array.unsafe_set"; ":="; "Hashtbl.add"; "Hashtbl.replace" ]

let rec head_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Srcread.name_of txt)
  | Pexp_constraint (e, _) -> head_name e
  | _ -> None

let rec unconstrained (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> unconstrained e
  | _ -> e

let acquisition_of (e : Parsetree.expression) =
  match (unconstrained e).pexp_desc with
  | Pexp_apply (f, _) ->
      Option.bind (head_name f) (fun name ->
          let name = Srcread.strip_stdlib name in
          List.find_opt
            (fun a -> name = a || Srcread.has_suffix ~suffix:a name)
            acquisitions)
  | _ -> None

let binding_names (p : Parsetree.pattern) =
  let names = ref [] in
  let pat (it : Ast_iterator.iterator) (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> names := txt :: !names
    | _ -> Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  pat it p;
  List.rev !names

let mentions var (e : Parsetree.expression) =
  let found = ref false in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } when n = var -> found := true
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  expr it e;
  !found

(* does [scope] bracket or take ownership of [var]? *)
let released var (scope : Parsetree.expression) =
  let safe = ref false in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match Option.map Srcread.strip_stdlib (head_name f) with
        | Some name
          when name = "Fun.protect"
               || Srcread.has_suffix ~suffix:"Fun.protect" name ->
            List.iter
              (fun (label, (a : Parsetree.expression)) ->
                match label with
                | Asttypes.Labelled "finally" when mentions var a -> safe := true
                | _ -> ())
              args
        | Some name
          when List.exists
                 (fun t -> name = t || Srcread.has_suffix ~suffix:t name)
                 transfer_heads ->
            if List.exists (fun (_, a) -> mentions var a) args then safe := true
        | _ -> ())
    | Pexp_setfield (_, _, rhs) -> if mentions var rhs then safe := true
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  expr it scope;
  !safe

type summary = {
  acquisitions_checked : int;
  bracketed : int;  (** released on all paths (bracket or transfer) *)
}

let check cg =
  let findings = ref [] in
  let checked = ref 0 and ok = ref 0 in
  (* witness chains from the exception-boundary roots, so a leak on a
     serve/pool path names the path that reaches it *)
  let roots = List.concat_map snd (Exnflow.policy_roots cg) in
  let chains = Callgraph.reachable cg ~roots in
  List.iter
    (fun (d : Callgraph.def) ->
      (* acquisition sites that appear as a let-binding's rhs; anything
         acquired outside a binding cannot be bracketed at all *)
      let bound = Hashtbl.create 8 in
      let note_leak loc what detail =
        let line, col = Srcread.lc loc in
        let chain =
          match Hashtbl.find_opt chains d.Callgraph.id with
          | Some c when List.length c > 1 ->
              Printf.sprintf " (reached from %s)" (String.concat " -> " c)
          | _ -> ""
        in
        findings :=
          {
            Lint.file = d.Callgraph.file;
            line;
            col;
            rule = "resource-leak";
            message =
              Printf.sprintf "%s acquired in %s %s%s" what d.Callgraph.id
                detail chain;
          }
          :: !findings
      in
      let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
        (match e.pexp_desc with
        | Pexp_let (_, vbs, cont) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match acquisition_of vb.pvb_expr with
                | None -> ()
                | Some what ->
                    Hashtbl.replace bound (unconstrained vb.pvb_expr).pexp_loc
                      ();
                    incr checked;
                    let vars = binding_names vb.pvb_pat in
                    if List.exists (fun v -> released v cont) vars then incr ok
                    else
                      note_leak vb.pvb_expr.pexp_loc what
                        "is not released on all paths (no [Fun.protect \
                         ~finally] bracket or ownership transfer in scope)")
              vbs
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
      in
      let it = { Ast_iterator.default_iterator with expr } in
      (* first pass registers let-bound sites, second flags bare ones *)
      it.expr it d.Callgraph.body;
      let bare (it : Ast_iterator.iterator) (e : Parsetree.expression) =
        (match
           match e.pexp_desc with
           | Pexp_apply _ -> acquisition_of e
           | _ -> None
         with
        | Some what when not (Hashtbl.mem bound e.pexp_loc) ->
            incr checked;
            note_leak e.pexp_loc what
              "is consumed without a binding and can never be released on a \
               raising path"
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
      in
      let it2 = { Ast_iterator.default_iterator with expr = bare } in
      it2.expr it2 d.Callgraph.body)
    (Callgraph.defs_in_order cg);
  ({ acquisitions_checked = !checked; bracketed = !ok }, List.rev !findings)
