(* Static domain-race checker.

   [Lockcheck] verifies lock discipline on the acquisitions that
   actually happen in a run; this pass gives the complementary
   whole-repo guarantee: no top-level [ref]/[Hashtbl]/array/buffer
   state is *reachable at all* from a [Mincut_parallel.Pool] task
   closure except through a [Lockcheck.with_lock] region or an
   [Atomic]/[Domain.DLS] cell.

   Task roots are approximated syntactically: every identifier
   referenced inside an argument of a [Pool.map]/[Pool.map_reduce]
   application may execute on a worker domain, and so may everything
   reachable from it through the call graph.  Any access to an
   unsynchronized global from that closure is a [domain-race] finding,
   reported at the access site with the spawn-to-access witness chain.
   The check is conservative in both directions it can be: accesses
   lexically inside [with_lock] arguments count as guarded even though
   a callee could leak, and accesses guarded by a lock taken further up
   the call chain still flag (allowlist them with a justification). *)

let unsafe_kind = function
  | Callgraph.Atomic | Callgraph.Dls -> false
  | Callgraph.Ref | Callgraph.Table | Callgraph.Array_cell | Callgraph.Buffer ->
      true

(* (spawning def, task-root def) pairs plus direct in-task global
   accesses *)
let spawn_sites cg =
  let roots = ref [] in
  let direct = ref [] in
  List.iter
    (fun (d : Callgraph.def) ->
      List.iter
        (fun (r : Callgraph.refsite) ->
          if r.Callgraph.in_task then
            match Callgraph.resolve cg ~from:d r.Callgraph.name with
            | Some id when Callgraph.find_def cg id <> None ->
                if not (List.exists (fun (_, i) -> i = id) !roots) then
                  roots := (d.Callgraph.id, id) :: !roots
            | Some id when Callgraph.find_global cg id <> None ->
                direct := (d, r, id) :: !direct
            | _ -> ())
        d.Callgraph.refs)
    (Callgraph.defs_in_order cg);
  (List.rev !roots, List.rev !direct)

let finding ~(d : Callgraph.def) ~(r : Callgraph.refsite)
    ~(g : Callgraph.global) ~chain =
  {
    Lint.file = d.Callgraph.file;
    line = r.Callgraph.rline;
    col = r.Callgraph.rcol;
    rule = "domain-race";
    message =
      Printf.sprintf
        "global %s (%s, defined at %s:%d) accessed from a Pool task without \
         Lockcheck.with_lock or Atomic: %s"
        g.Callgraph.gid
        (Callgraph.global_kind_name g.Callgraph.gkind)
        g.Callgraph.gfile g.Callgraph.gline (String.concat " -> " chain);
  }

let check cg =
  let spawns, direct = spawn_sites cg in
  let findings = ref [] in
  let seen = Hashtbl.create 64 in
  let report ~d ~r ~g ~chain =
    let key = (d.Callgraph.id, g.Callgraph.gid) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      findings := finding ~d ~r ~g ~chain :: !findings
    end
  in
  (* direct accesses inside the task closure itself *)
  List.iter
    (fun ((d : Callgraph.def), (r : Callgraph.refsite), gid) ->
      match Callgraph.find_global cg gid with
      | Some g when unsafe_kind g.Callgraph.gkind && not r.Callgraph.guarded ->
          report ~d ~r ~g
            ~chain:[ d.Callgraph.id ^ " (task closure)"; gid ]
      | _ -> ())
    direct;
  (* everything reachable from resolved task roots *)
  let chains =
    Callgraph.reachable cg ~roots:(List.map snd spawns)
  in
  let spawner_of root =
    match List.find_opt (fun (_, i) -> i = root) spawns with
    | Some (s, _) -> s
    | None -> root
  in
  List.iter
    (fun (d : Callgraph.def) ->
      match Hashtbl.find_opt chains d.Callgraph.id with
      | None -> ()
      | Some chain ->
          List.iter
            (fun (r : Callgraph.refsite) ->
              if not r.Callgraph.guarded then
                match Callgraph.resolve cg ~from:d r.Callgraph.name with
                | Some gid -> (
                    match Callgraph.find_global cg gid with
                    | Some g when unsafe_kind g.Callgraph.gkind ->
                        let root = List.hd chain in
                        report ~d ~r ~g
                          ~chain:
                            ((spawner_of root ^ " (spawn)") :: chain @ [ gid ])
                    | _ -> ())
                | None -> ())
            d.Callgraph.refs)
    (Callgraph.defs_in_order cg);
  List.rev !findings
