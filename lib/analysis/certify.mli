(** The CONGEST-model certifier: one driver over the three analyzers.

    [run] certifies the shipped tree end to end:
    - {!Sanitize} — every shipped primitive re-executed under permuted
      inbox orders on three workloads, plus probe-tracked payload and
      state footprints on the raw BFS program;
    - {!Costcheck} — span-tree laws over full [Api.min_cut] summaries
      and the one-respect formula table, in both parameter modes;
    - {!Scaling} — asymptotic envelope fits over the gnp ladder.

    [inject] seeds one deliberate defect instead and runs only the
    analyzer that must catch it — the report then {e fails}, proving
    the certifier is live.  The three defects: an inbox-order-dependent
    toy program, a mis-tagged [Executed] span whose rounds disagree
    with its engine audit, and a primitive patched to send
    Θ(√n)-word payloads under a permissive engine budget. *)

type check = {
  name : string;
  ok : bool;
  details : string list;  (** failure lines; empty when [ok] *)
}

type report = { checks : check list; ok : bool }

type defect = Order | Span | Payload

val defect_name : defect -> string
val defect_of_name : string -> defect option

val run :
  ?quick:bool ->
  ?slack:float ->
  ?inject:defect ->
  ?extra:(unit -> check list) ->
  unit ->
  report
(** [quick] shrinks the scaling ladder (drops n = 128) for CI;
    [slack] overrides {!Scaling.default_slack}.  [extra] appends
    caller-supplied checks to a normal (non-inject) run — the hook by
    which layers {e above} this library (the serve layer certifies
    delta/compact equivalence through it) join the certification report
    without inverting the serve → analysis dependency. *)

val to_json : report -> Mincut_util.Json.t
