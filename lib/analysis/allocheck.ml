(* Hot-path allocation lint.

   The allocation diet on the drive loop (ROADMAP item 5) is tracked
   dynamically as [minor_words_per_run] in BENCH_sim.json; this pass
   makes it a gated budget instead of a bench aspiration by counting
   *syntactic allocation sites* in the two places the per-round cost
   lives: the round loop inside [Network.drive], and every CONGEST step
   handler (the [step] field of each program literal).

   A site is anything that must allocate each time the enclosing code
   runs: closures, tuples, records, list conses, array/lazy literals,
   partial applications of known defs, and [Printf]/[Format] calls that
   are not on an error path (an allocation feeding [failwith]/
   [invalid_arg]/[raise] costs nothing in steady state).  Counts are
   static, so a site inside a per-neighbor [List.map] is one site — the
   budget bounds code shape, not dynamic allocation volume; the bench
   metric stays the ground truth the budgets are calibrated against. *)

type site_kind =
  | Closure
  | Tuple
  | Record
  | Cons
  | Array_lit
  | Lazy_block
  | Partial
  | Printf_call

let site_kind_name = function
  | Closure -> "closure"
  | Tuple -> "tuple"
  | Record -> "record"
  | Cons -> "cons"
  | Array_lit -> "array"
  | Lazy_block -> "lazy"
  | Partial -> "partial-application"
  | Printf_call -> "printf"

type site = { skind : site_kind; sline : int; scol : int }

type target = {
  tid : string;  (** e.g. ["Mincut_congest.Network.drive/round-loop"] *)
  tfile : string;
  tline : int;
  budget : int;
  sites : site list;
}

(* Calibrated against the shipped tree with ~25% headroom (see the
   per-target counts in the --json report next to these budgets, and
   minor_words_per_run in BENCH_sim.json for the dynamic ground truth).
   Raising one is a reviewed decision, exactly like raising a bench
   gate. *)
(* worst shipped step handler: 14 sites (Primitives.bfs_program);
   Network.drive's round loop: 4 *)
let default_step_budget = 18
let default_loop_budget = 8

let raising_heads = [ "failwith"; "invalid_arg"; "raise"; "raise_notrace" ]

let is_raising name =
  List.mem name raising_heads || Srcread.has_suffix ~suffix:"violate" name

let is_printf name =
  let p = Srcread.strip_stdlib name in
  let pre s =
    String.length p >= String.length s && String.sub p 0 (String.length s) = s
  in
  pre "Printf." || pre "Format."

(* count sites inside [e]; [skip_head_lambda] drops the leading funs of
   a handler (the handler closure itself is allocated once, not per
   round) *)
let count_sites ~cg ~(from : Callgraph.def) ~skip_head_lambda e =
  let sites = ref [] in
  let in_error = ref false in
  let add skind loc =
    let sline, scol = Srcread.lc loc in
    sites := { skind; sline; scol } :: !sites
  in
  let resolve_arity name =
    match Callgraph.resolve cg ~from name with
    | Some id -> (
        match Callgraph.find_def cg id with
        | Some d when d.Callgraph.arity > 0 -> Some d.Callgraph.arity
        | _ -> None)
    | None -> None
  in
  let rec expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ ->
        add Closure e.pexp_loc;
        Ast_iterator.default_iterator.expr it e
    | Pexp_tuple _ ->
        add Tuple e.pexp_loc;
        Ast_iterator.default_iterator.expr it e
    | Pexp_record _ ->
        add Record e.pexp_loc;
        Ast_iterator.default_iterator.expr it e
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, arg) -> (
        add Cons e.pexp_loc;
        (* the (head, tail) pair inside a cons cell is part of the cons
           block, not a second allocation *)
        match arg with
        | Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ->
            expr it hd;
            expr it tl
        | Some a -> expr it a
        | None -> ())
    | Pexp_array _ ->
        add Array_lit e.pexp_loc;
        Ast_iterator.default_iterator.expr it e
    | Pexp_lazy _ ->
        add Lazy_block e.pexp_loc;
        Ast_iterator.default_iterator.expr it e
    | Pexp_apply (f, args) -> (
        let head =
          match f.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ } ->
              Some (Srcread.strip_stdlib (Srcread.name_of txt))
          | _ -> None
        in
        match head with
        | Some name when is_raising name ->
            let saved = !in_error in
            in_error := true;
            List.iter (fun (_, a) -> expr it a) args;
            in_error := saved
        | Some name ->
            if is_printf name && not !in_error then add Printf_call e.pexp_loc;
            (match resolve_arity name with
            | Some arity when List.length args < arity ->
                add Partial e.pexp_loc
            | _ -> ());
            List.iter (fun (_, a) -> expr it a) args
        | None -> Ast_iterator.default_iterator.expr it e)
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  let rec strip (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) when skip_head_lambda -> strip body
    | Pexp_newtype (_, body) when skip_head_lambda -> strip body
    | _ -> e
  in
  it.expr it (strip e);
  List.rev !sites

(* while-loop bodies of one def, innermost not double-counted: each
   top-most while is one target *)
let while_loops (d : Callgraph.def) =
  let loops = ref [] in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_while (_, body) -> loops := (e.Parsetree.pexp_loc, body) :: !loops
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it d.Callgraph.body;
  List.rev !loops

let by_kind sites =
  List.fold_left
    (fun acc s ->
      let k = site_kind_name s.skind in
      match List.assoc_opt k acc with
      | Some n -> (k, n + 1) :: List.remove_assoc k acc
      | None -> acc @ [ (k, 1) ])
    [] sites

let targets ?(budgets = []) cg =
  let budget_for tid default =
    match List.assoc_opt tid budgets with Some b -> b | None -> default
  in
  List.concat_map
    (fun (d : Callgraph.def) ->
      let steps =
        List.mapi
          (fun i (line, step) ->
            let tid =
              if i = 0 then d.Callgraph.id ^ ".step"
              else Printf.sprintf "%s.step#%d" d.Callgraph.id (i + 1)
            in
            {
              tid;
              tfile = d.Callgraph.file;
              tline = line;
              budget = budget_for tid default_step_budget;
              sites =
                count_sites ~cg ~from:d ~skip_head_lambda:true step;
            })
          d.Callgraph.programs
      in
      let loops =
        if Srcread.has_suffix ~suffix:"Network.drive" d.Callgraph.id then
          List.mapi
            (fun i (loc, body) ->
              let tid =
                if i = 0 then d.Callgraph.id ^ "/round-loop"
                else Printf.sprintf "%s/round-loop#%d" d.Callgraph.id (i + 1)
              in
              let tline, _ = Srcread.lc loc in
              {
                tid;
                tfile = d.Callgraph.file;
                tline;
                budget = budget_for tid default_loop_budget;
                sites = count_sites ~cg ~from:d ~skip_head_lambda:false body;
              })
            (while_loops d)
        else []
      in
      steps @ loops)
    (Callgraph.defs_in_order cg)

let check ?budgets cg =
  let ts = targets ?budgets cg in
  let findings =
    List.filter_map
      (fun t ->
        let n = List.length t.sites in
        if n <= t.budget then None
        else
          Some
            {
              Lint.file = t.tfile;
              line = t.tline;
              col = 0;
              rule = "alloc-budget";
              message =
                Printf.sprintf
                  "%s: %d allocation sites over budget %d (%s); every site \
                   here runs per round — shrink it or re-calibrate against \
                   minor_words_per_run"
                  t.tid n t.budget
                  (String.concat ", "
                     (List.map
                        (fun (k, c) -> Printf.sprintf "%s %d" k c)
                        (by_kind t.sites)));
            })
      ts
  in
  (ts, findings)
