(** AST analysis tier: the [mincut_lint ast] engine.

    Orchestrates the Parsetree analyzers over one shared parse and call
    graph: scope-aware ports of every token rule ({!hazards}),
    {!Effects.check} ([step-effect]), {!Allocheck.check}
    ([alloc-budget]), {!Domcheck.check} ([domain-race]),
    {!Exnflow.check} ([exn-escape]) and {!Resguard.check}
    ([resource-leak]), plus [parse-error] findings for sources only the
    token fallback covers.
    {!agreement} pins the token and AST implementations of the shared
    rules to the same (rule, line) answers on parseable sources, and
    {!inject_seeds} carries self-contained defective modules CI injects
    to prove each analyzer still fires. *)

val rules : (string * string) list
(** Token rules plus the AST-only rules; the rule vocabulary of the
    [ast] allowlist. *)

val known_rule : string -> bool

val hazards : Srcread.source -> Lint.finding list
(** Scope-aware ports of the token rules over one parsed source. *)

type disagreement = { tier : string; drule : string; dline : int }
(** A (rule, line) finding present in exactly one tier; [tier] names
    the tier that has it ("token" or "ast"). *)

val agreement : file:string -> string -> disagreement list
(** Compare both tiers on one source buffer.  Empty on agreement and on
    unparseable sources (where the token tier is alone by design). *)

type report = {
  files : string list;
  parse_errors : Srcread.error list;
  hazard_findings : Lint.finding list;
  effect_findings : Lint.finding list;
  effect_classes : (string * int) list;  (** census: class name → defs *)
  alloc_targets : Allocheck.target list;
  alloc_findings : Lint.finding list;
  race_findings : Lint.finding list;
  exn_summary : Exnflow.summary;
  exn_findings : Lint.finding list;
  resource_summary : Resguard.summary;
  resource_findings : Lint.finding list;
}

val analyze :
  ?budgets:(string * int) list ->
  Srcread.source list * Srcread.error list ->
  report

val run : ?budgets:(string * int) list -> string list -> report
(** Parse every [.ml] under the paths and analyze. *)

val findings : report -> Lint.finding list
(** All findings including [parse-error], sorted by file/line/col. *)

val to_json : report -> Mincut_util.Json.t

val inject_seeds : (string * (string * string * string)) list
(** [seed → (pseudo-file, source, expected rule)] for the CI defect
    injections: ["nondet"], ["alloc"], ["race"], ["exnleak"],
    ["fdleak"]. *)

val expected_rule : string -> string option

val run_inject :
  ?budgets:(string * int) list ->
  seed:string ->
  string list ->
  (report * string, string) result
(** Analyze the paths with the seed's pseudo-module appended; returns
    the report and the rule the seed must trigger. *)
