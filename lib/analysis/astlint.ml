(* AST analysis tier: orchestrates the Parsetree analyzers.

   Three layers on top of [Srcread]/[Callgraph]:

   - [hazards]: scope-aware re-implementations of every token rule in
     [Lint.rules].  Working on real syntax removes the lexical
     guesswork — a [let f () = 2.5] binding cannot be mistaken for a
     comparison, a punned [~compare] label is not a bare compare — while
     [agreement] pins both tiers to the same answers on parseable
     sources so neither can drift.
   - the whole-repo analyzers: [Effects.check] (step-effect),
     [Allocheck.check] (alloc-budget), [Domcheck.check] (domain-race),
     [Exnflow.check] (exn-escape), [Resguard.check] (resource-leak),
     all sharing one call graph.
   - [inject_seeds]: self-contained defective pseudo-modules (nondet /
     alloc / race / exnleak / fdleak), parsed and appended to the real
     sources so CI can prove each analyzer still bites.  A checker that
     cannot fail is not checking anything. *)

module Json = Mincut_util.Json

let rules =
  Lint.rules
  @ [
      ( "parse-error",
        "source rejected by the compiler's parser; the token tier is the \
         only coverage it gets" );
      ( "step-effect",
        "code reachable from a CONGEST step handler leaves the \
         deterministic effect classes" );
      ( "alloc-budget",
        "allocation sites in Network.drive's round loop or a step handler \
         exceed the calibrated budget" );
      ( "domain-race",
        "top-level mutable state reachable from a Pool task without \
         Lockcheck.with_lock or Atomic" );
      ( "exn-escape",
        "an exception can cross a declared boundary: escape the serve \
         dispatch or a pool domain body, or carry Store_error out of the \
         store layer" );
      ( "resource-leak",
        "a descriptor acquisition with no Fun.protect bracket or ownership \
         transfer on some path" );
    ]

let known_rule r = List.exists (fun (name, _) -> name = r) rules

(* ---- AST ports of the token rules -------------------------------------- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* the token lexer never sees [x = -2.5] as a float comparison (the
   minus lexes as its own operator token); mirror that so [agreement]
   stays exact.  Negated-literal comparisons are rare enough that the
   token fallback's blind spot is an acceptable shared baseline. *)
let positive_float_lit (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) ->
      String.length s > 0 && s.[0] <> '-'
  | _ -> false

let hazards (s : Srcread.source) =
  let findings = ref [] in
  let report loc rule message =
    let line, col = Srcread.lc loc in
    findings := { Lint.file = s.Srcread.file; line; col; rule; message } :: !findings
  in
  let ident_rules name loc =
    if name = "compare" then
      report loc "poly-compare"
        "polymorphic compare is representation-dependent; use Int.compare, \
         Float.compare, String.compare or a typed comparator";
    if name = "Hashtbl.hash" || name = "Hashtbl.seeded_hash" then
      report loc "hashtbl-hash"
        "Hashtbl.hash output varies across OCaml versions; use the FNV-1a \
         Mincut_util.Hash for anything persisted or compared across runs";
    if name = "Random" || has_prefix ~prefix:"Random." name then
      report loc "unseeded-random"
        "ambient Random state breaks deterministic replay; draw from a \
         seeded Mincut_util.Rng passed in explicitly";
    if has_prefix ~prefix:"Obj." name then
      report loc "obj-magic" "Obj.* defeats the type system; find a typed way";
    if name = "Mutex.create" then
      report loc "bare-mutex"
        "direct Mutex.create bypasses the ranked Lockcheck discipline; \
         create locks with Lockcheck.create ~name ~order";
    if name = "List.nth" then
      report loc "list-nth"
        "List.nth is O(n) per access and O(n^2) in loops; use an array or \
         fold the list once";
    if name = "=" then
      report loc "poly-equal"
        "polymorphic equality as a function value; use a typed equal"
  in
  (* [( = ) 3.0 x] is a first-class use (poly-equal) while [x = 3.0] is
     a comparison (float-equal); the Parsetree spells both as the same
     application, but only in prefix position does the operator start
     before its first argument *)
  let prefix_position (f : Parsetree.expression) args =
    match args with
    | (_, (a : Parsetree.expression)) :: _ ->
        f.pexp_loc.Location.loc_start.Lexing.pos_cnum
        < a.pexp_loc.Location.loc_start.Lexing.pos_cnum
    | [] -> true
  in
  let punned (label, (a : Parsetree.expression)) =
    match (label, a.pexp_desc) with
    | ( (Asttypes.Labelled l | Asttypes.Optional l),
        Pexp_ident { txt = Longident.Lident l'; _ } ) ->
        l = l'
    | _ -> false
  in
  let rec expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        ident_rules (Srcread.strip_stdlib (Srcread.name_of txt)) loc
    | Pexp_constraint
        ({ pexp_desc = Pexp_ident { txt = Longident.Lident "compare"; _ }; _ }, _)
      ->
        (* [(compare : t -> t -> int)] names the typed comparator being
           ascribed, exactly the case the token tier exempts via its
           trailing-colon check *)
        ()
    | Pexp_apply (f, args) -> (
        let visit_args () =
          List.iter
            (fun ((_, a) as arg) -> if not (punned arg) then expr it a)
            args
        in
        match f.pexp_desc with
        | Pexp_ident { txt; loc }
          when Srcread.strip_stdlib (Srcread.name_of txt) = "=" ->
            (if prefix_position f args then
               report loc "poly-equal"
                 "polymorphic equality as a function value; use a typed equal"
             else if List.exists (fun (_, a) -> positive_float_lit a) args then
               report loc "float-equal"
                 "( = ) on a float literal; use Float.equal, or compare \
                  against an epsilon when values are computed");
            visit_args ()
        | _ ->
            expr it f;
            visit_args ())
    | Pexp_try (body, cases) ->
        (match cases with
        | { pc_lhs = { ppat_desc = Ppat_any; ppat_loc; _ }; _ } :: _ ->
            report ppat_loc "catchall-exn"
              "catch-all exception handler; match the exceptions this \
               expression actually raises"
        | _ -> ());
        expr it body;
        List.iter (fun (c : Parsetree.case) -> case it c) cases
    | _ -> Ast_iterator.default_iterator.expr it e
  and case it (c : Parsetree.case) =
    Option.iter (expr it) c.pc_guard;
    expr it c.pc_rhs
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it s.Srcread.ast;
  List.rev !findings

(* ---- token/AST agreement ------------------------------------------------ *)

type disagreement = { tier : string; drule : string; dline : int }

(* (rule, line) sets of the two tiers on one parseable source; an entry
   present in exactly one tier is a drift bug in whichever tier is
   wrong.  Unparseable sources make no claim: the token tier is alone
   there by design. *)
let agreement ~file src =
  match Srcread.parse_string ~file src with
  | Error _ -> []
  | Ok parsed ->
      let compare_keys (r1, l1) (r2, l2) =
        match String.compare r1 r2 with 0 -> Int.compare l1 l2 | c -> c
      in
      let keyset fs =
        List.filter_map
          (fun (f : Lint.finding) ->
            if List.mem f.Lint.rule Lint.ast_subsumed then
              Some (f.Lint.rule, f.Lint.line)
            else None)
          fs
        |> List.sort_uniq compare_keys
      in
      let token = keyset (Lint.scan_source ~file src) in
      let ast = keyset (hazards parsed) in
      List.filter_map
        (fun (r, l) ->
          if List.mem (r, l) ast then None
          else Some { tier = "token"; drule = r; dline = l })
        token
      @ List.filter_map
          (fun (r, l) ->
            if List.mem (r, l) token then None
            else Some { tier = "ast"; drule = r; dline = l })
          ast

(* ---- whole-repo report -------------------------------------------------- *)

type report = {
  files : string list;
  parse_errors : Srcread.error list;
  hazard_findings : Lint.finding list;
  effect_findings : Lint.finding list;
  effect_classes : (string * int) list;
  alloc_targets : Allocheck.target list;
  alloc_findings : Lint.finding list;
  race_findings : Lint.finding list;
  exn_summary : Exnflow.summary;
  exn_findings : Lint.finding list;
  resource_summary : Resguard.summary;
  resource_findings : Lint.finding list;
}

let effect_census cg =
  let info = Effects.classify cg in
  let count c =
    List.length
      (List.filter
         (fun (d : Callgraph.def) ->
           match Hashtbl.find_opt info d.Callgraph.id with
           | Some (i : Effects.info) -> i.Effects.cls = c
           | None -> false)
         (Callgraph.defs_in_order cg))
  in
  List.map
    (fun c -> (Effects.cls_name c, count c))
    [ Effects.Pure; Effects.Det_stateful; Effects.Global_mutable;
      Effects.Clock_random_io ]

let analyze ?budgets (sources, parse_errors) =
  let cg = Callgraph.build sources in
  let alloc_targets, alloc_findings = Allocheck.check ?budgets cg in
  let exn_summary, exn_findings = Exnflow.check cg in
  let resource_summary, resource_findings = Resguard.check cg in
  {
    files = List.map (fun (s : Srcread.source) -> s.Srcread.file) sources;
    parse_errors;
    hazard_findings =
      List.concat_map hazards sources |> List.sort Lint.compare_findings;
    effect_findings = Effects.check cg;
    effect_classes = effect_census cg;
    alloc_targets;
    alloc_findings;
    race_findings = Domcheck.check cg;
    exn_summary;
    exn_findings;
    resource_summary;
    resource_findings;
  }

let run ?budgets paths = analyze ?budgets (Srcread.load_paths paths)

let findings r =
  let of_error (e : Srcread.error) =
    {
      Lint.file = e.Srcread.efile;
      line = e.Srcread.eline;
      col = e.Srcread.ecol;
      rule = "parse-error";
      message =
        Printf.sprintf
          "%s; only the token-tier fallback covers this file until it parses"
          e.Srcread.reason;
    }
  in
  List.map of_error r.parse_errors
  @ r.hazard_findings @ r.effect_findings @ r.alloc_findings @ r.race_findings
  @ r.exn_findings @ r.resource_findings
  |> List.sort Lint.compare_findings

let to_json r =
  let target_json (t : Allocheck.target) =
    Json.Obj
      [
        ("id", Json.String t.Allocheck.tid);
        ("file", Json.String t.Allocheck.tfile);
        ("line", Json.Int t.Allocheck.tline);
        ("budget", Json.Int t.Allocheck.budget);
        ("sites", Json.Int (List.length t.Allocheck.sites));
        ( "by_kind",
          Json.Obj
            (List.map
               (fun (k, n) -> (k, Json.Int n))
               (Allocheck.by_kind t.Allocheck.sites)) );
      ]
  in
  Json.Obj
    [
      ("tier", Json.String "ast");
      ("files", Json.Int (List.length r.files));
      ( "parse_errors",
        Json.List
          (List.map
             (fun (e : Srcread.error) ->
               Json.Obj
                 [
                   ("file", Json.String e.Srcread.efile);
                   ("line", Json.Int e.Srcread.eline);
                   ("reason", Json.String e.Srcread.reason);
                 ])
             r.parse_errors) );
      ( "effect_classes",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.effect_classes) );
      ("alloc_targets", Json.List (List.map target_json r.alloc_targets));
      ( "exn_boundaries",
        Json.Obj
          (("defs_raising", Json.Int r.exn_summary.Exnflow.defs_raising)
          :: List.map
               (fun (p, n) -> (p, Json.Int n))
               r.exn_summary.Exnflow.policies) );
      ( "resource_safety",
        Json.Obj
          [
            ( "acquisitions",
              Json.Int r.resource_summary.Resguard.acquisitions_checked );
            ("bracketed", Json.Int r.resource_summary.Resguard.bracketed);
          ] );
      ( "findings",
        match Lint.to_json (findings r) with
        | Json.Obj fields ->
            Option.value ~default:Json.Null (List.assoc_opt "findings" fields)
        | _ -> Json.Null );
      ("count", Json.Int (List.length (findings r)));
    ]

(* ---- seeded defects ----------------------------------------------------- *)

(* Each seed is a self-contained module that parses cleanly, triggers
   exactly one analyzer, and touches nothing else in the repo.  CI runs
   every seed: an analyzer that stops firing on its seed has rotted. *)

let nondet_seed =
  {|
let bad_clock_program =
  {
    initial = (fun _node -> 0);
    step = (fun state _inbox -> int_of_float (Unix.gettimeofday ()) + state);
  }
|}

let alloc_seed =
  {|
let hungry_program =
  {
    initial = (fun _node -> []);
    step =
      (fun state _inbox ->
        let pairs =
          [
            (1, 1); (2, 2); (3, 3); (4, 4); (5, 5); (6, 6); (7, 7); (8, 8);
            (9, 9); (10, 10); (11, 11); (12, 12); (13, 13); (14, 14);
            (15, 15); (16, 16); (17, 17); (18, 18); (19, 19); (20, 20);
            (21, 21);
          ]
        in
        pairs :: state);
  }
|}

let race_seed =
  {|
let hits = ref 0

let record_hit x = hits := !hits + x

let tally xs = Mincut_parallel.Pool.map (fun x -> record_hit x) xs
|}

let exnleak_seed =
  {|
let risky_lookup table key = Hashtbl.find table key

let dispatch table key = risky_lookup table key [@@mincut.boundary "serve-total"]
|}

let fdleak_seed =
  {|
let slurp path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  body
|}

let inject_seeds =
  [
    ("nondet", ("inject_nondet.ml", nondet_seed, "step-effect"));
    ("alloc", ("inject_alloc.ml", alloc_seed, "alloc-budget"));
    ("race", ("inject_race.ml", race_seed, "domain-race"));
    ("exnleak", ("inject_exnleak.ml", exnleak_seed, "exn-escape"));
    ("fdleak", ("inject_fdleak.ml", fdleak_seed, "resource-leak"));
  ]

let expected_rule seed =
  Option.map (fun (_, _, rule) -> rule) (List.assoc_opt seed inject_seeds)

let run_inject ?budgets ~seed paths =
  match List.assoc_opt seed inject_seeds with
  | None -> Error (Printf.sprintf "unknown inject seed %S" seed)
  | Some (file, src, rule) -> (
      match Srcread.parse_string ~file src with
      | Error e ->
          Error (Printf.sprintf "inject seed %s does not parse: %s" seed
                   e.Srcread.reason)
      | Ok parsed ->
          let sources, errors = Srcread.load_paths paths in
          Ok (analyze ?budgets (sources @ [ parsed ], errors), rule))
