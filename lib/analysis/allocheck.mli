(** Hot-path allocation lint ([alloc-budget]).

    Counts syntactic allocation sites — closures, tuples, records, list
    conses, array/lazy literals, partial applications of known defs,
    and non-error-path [Printf]/[Format] calls — in the two places the
    per-round cost lives: the round loop(s) inside [Network.drive] and
    every CONGEST step handler (program-literal [step] fields).  Each
    target has a budget (calibrated with headroom against the shipped
    tree; [minor_words_per_run] in BENCH_sim.json is the dynamic ground
    truth) and going over is a finding. *)

type site_kind =
  | Closure
  | Tuple
  | Record
  | Cons
  | Array_lit
  | Lazy_block
  | Partial
  | Printf_call

val site_kind_name : site_kind -> string

type site = { skind : site_kind; sline : int; scol : int }

type target = {
  tid : string;
  tfile : string;
  tline : int;
  budget : int;
  sites : site list;
}

val default_step_budget : int
val default_loop_budget : int

val by_kind : site list -> (string * int) list
(** Site counts keyed by kind name, first-seen order. *)

val targets : ?budgets:(string * int) list -> Callgraph.t -> target list
(** All budget targets with their counted sites; [budgets] overrides
    per-target id. *)

val check :
  ?budgets:(string * int) list -> Callgraph.t -> target list * Lint.finding list
(** Targets plus one finding per over-budget target. *)
