module Tree = Mincut_graph.Tree
module Generators = Mincut_graph.Generators
module Primitives = Mincut_congest.Primitives
module Network = Mincut_congest.Network
module Cost = Mincut_congest.Cost
module One_respect = Mincut_core.One_respect
module Params = Mincut_core.Params
module Rng = Mincut_util.Rng
module Json = Mincut_util.Json

type point = { n : int; measured : float; envelope : float }

type fit = {
  quantity : string;
  envelope_name : string;
  points : point list;
  min_ratio : float;
  max_ratio : float;
  ok : bool;
}

type report = { slack : float; fits : fit list; ok : bool }

(* Supercritical Erdős–Rényi: p = 8·ln n / n keeps the graph connected
   w.h.p. with diameter O(log n) — the family every n-sweep in the repo
   uses, because the √n term must dominate the D term for the fits to
   mean anything.  Seeded per point so ladders are reproducible. *)
let supercritical ~seed n =
  let rng = Rng.create seed in
  let p = 8.0 *. log (float_of_int n) /. float_of_int n in
  Generators.gnp_connected ~rng n (Float.min 1.0 p)

let ladder ~quick = if quick then [ 16; 32; 64 ] else [ 16; 32; 64; 128 ]

let default_slack = 2.5

let log2f n = log (float_of_int (max 2 n)) /. log 2.0

(* Largest max_words over every engine audit hanging off the tree: the
   measured per-message payload, in words. *)
let max_audit_words (t : Cost.t) =
  let best = ref 0 in
  let rec walk (s : Cost.span) =
    (match s.Cost.audit with
    | Some a -> if a.Network.max_words > !best then best := a.Network.max_words
    | None -> ());
    List.iter walk s.Cost.children
  in
  List.iter walk t.Cost.spans;
  !best

(* One ladder point: everything measured off a single seeded graph. *)
type sample = {
  s_n : int;
  bfs_rounds : int;
  bfs_envelope : int;      (* height + 2 *)
  upcast_rounds : int;
  upcast_envelope : int;   (* height + ⌈√n⌉ items *)
  or_rounds : int;
  or_envelope : int;       (* ⌈√n⌉·log* n + height *)
  or_words : int;          (* max payload over the run's engine audits *)
}

let sample ~params ~seed n =
  let g = supercritical ~seed:(seed + n) n in
  let root = 0 in
  let tree, _cost, bfs_audit = Primitives.bfs_tree_audited g ~root in
  let h = Tree.height tree in
  let k = Params.sqrt_target ~n in
  let initial = Array.make n [] in
  for v = 0 to k - 1 do
    initial.(v) <- [ v ]
  done;
  let _items, _ucost, up_audit =
    Primitives.upcast_distinct_audited g ~tree ~initial
  in
  let r = One_respect.run ~params g tree in
  {
    s_n = n;
    bfs_rounds = bfs_audit.Network.rounds;
    bfs_envelope = h + 2;
    upcast_rounds = up_audit.Network.rounds;
    upcast_envelope = h + k;
    or_rounds = r.One_respect.cost.Cost.rounds;
    or_envelope = (k * Params.log_star n) + h;
    or_words = max_audit_words r.One_respect.cost;
  }

let fit ~slack ~quantity ~envelope_name points =
  let ratios =
    List.map (fun p -> p.measured /. Float.max 1.0 p.envelope) points
  in
  let min_ratio = List.fold_left Float.min infinity ratios in
  let max_ratio = List.fold_left Float.max 0.0 ratios in
  (* The growth law holds when the measured/envelope ratio is flat
     across the ladder — within a multiplicative [slack].  An absolute
     threshold would bake in engine constants; a ratio-of-ratios test
     only asserts the *shape*. *)
  let ok = max_ratio <= slack *. min_ratio in
  { quantity; envelope_name; points; min_ratio; max_ratio; ok }

let run ?(params = Params.default) ?(quick = false) ?(slack = default_slack)
    ?(seed = 9000) () =
  let samples = List.map (sample ~params ~seed) (ladder ~quick) in
  let pts f g =
    List.map
      (fun s ->
        { n = s.s_n; measured = float_of_int (f s); envelope = g s })
      samples
  in
  let fits =
    [
      fit ~slack ~quantity:"bfs rounds" ~envelope_name:"D + 2"
        (pts (fun s -> s.bfs_rounds) (fun s -> float_of_int s.bfs_envelope));
      fit ~slack ~quantity:"upcast rounds (sqrt n items)"
        ~envelope_name:"sqrt n + D"
        (pts (fun s -> s.upcast_rounds) (fun s -> float_of_int s.upcast_envelope));
      fit ~slack ~quantity:"one-respect rounds"
        ~envelope_name:"sqrt n * log* n + D"
        (pts (fun s -> s.or_rounds) (fun s -> float_of_int s.or_envelope));
      fit ~slack ~quantity:"one-respect payload words" ~envelope_name:"log2 n"
        (pts (fun s -> s.or_words) (fun s -> log2f s.s_n));
    ]
  in
  { slack; fits; ok = List.for_all (fun (f : fit) -> f.ok) fits }

let point_to_json p =
  Json.Obj
    [
      ("n", Json.Int p.n);
      ("measured", Json.Float p.measured);
      ("envelope", Json.Float p.envelope);
    ]

let fit_to_json f =
  Json.Obj
    [
      ("quantity", Json.String f.quantity);
      ("envelope", Json.String f.envelope_name);
      ("points", Json.List (List.map point_to_json f.points));
      ("min_ratio", Json.Float f.min_ratio);
      ("max_ratio", Json.Float f.max_ratio);
      ("ok", Json.Bool f.ok);
    ]

let to_json r =
  Json.Obj
    [
      ("slack", Json.Float r.slack);
      ("fits", Json.List (List.map fit_to_json r.fits));
      ("ok", Json.Bool r.ok);
    ]

let describe r =
  List.map
    (fun (f : fit) ->
      Printf.sprintf "%s %s vs %s: ratio %.2f..%.2f over %s (slack %.1f)"
        (if f.ok then "ok  " else "FAIL")
        f.quantity f.envelope_name f.min_ratio f.max_ratio
        (String.concat ","
           (List.map (fun p -> string_of_int p.n) f.points))
        r.slack)
    r.fits
