module Tree = Mincut_graph.Tree
module Generators = Mincut_graph.Generators
module Edge_stream = Mincut_graph.Edge_stream
module Primitives = Mincut_congest.Primitives
module Network = Mincut_congest.Network
module Cost = Mincut_congest.Cost
module One_respect = Mincut_core.One_respect
module Params = Mincut_core.Params
module Fragments = Mincut_mst.Fragments
module Store = Mincut_store
module Rng = Mincut_util.Rng
module Json = Mincut_util.Json

type point = { n : int; measured : float; envelope : float }

type fit = {
  quantity : string;
  envelope_name : string;
  points : point list;
  min_ratio : float;
  max_ratio : float;
  ok : bool;
}

type report = { slack : float; fits : fit list; ok : bool }

(* Supercritical Erdős–Rényi: p = 8·ln n / n keeps the graph connected
   w.h.p. with diameter O(log n) — the family every n-sweep in the repo
   uses, because the √n term must dominate the D term for the fits to
   mean anything.  Seeded per point so ladders are reproducible. *)
let supercritical ~seed n =
  let rng = Rng.create seed in
  let p = 8.0 *. log (float_of_int n) /. float_of_int n in
  Generators.gnp_connected ~rng n (Float.min 1.0 p)

let ladder ~quick = if quick then [ 16; 32; 64 ] else [ 16; 32; 64; 128 ]

let default_slack = 2.5

let log2f n = log (float_of_int (max 2 n)) /. log 2.0

(* Largest max_words over every engine audit hanging off the tree: the
   measured per-message payload, in words. *)
let max_audit_words (t : Cost.t) =
  let best = ref 0 in
  let rec walk (s : Cost.span) =
    (match s.Cost.audit with
    | Some a -> if a.Network.max_words > !best then best := a.Network.max_words
    | None -> ());
    List.iter walk s.Cost.children
  in
  List.iter walk t.Cost.spans;
  !best

(* One ladder point: everything measured off a single seeded graph. *)
type sample = {
  s_n : int;
  bfs_rounds : int;
  bfs_envelope : int;      (* height + 2 *)
  upcast_rounds : int;
  upcast_envelope : int;   (* height + ⌈√n⌉ items *)
  or_rounds : int;
  or_envelope : int;       (* ⌈√n⌉·log* n + height *)
  or_words : int;          (* max payload over the run's engine audits *)
}

let sample ~params ~seed n =
  let g = supercritical ~seed:(seed + n) n in
  let root = 0 in
  let tree, _cost, bfs_audit = Primitives.bfs_tree_audited g ~root in
  let h = Tree.height tree in
  let k = Params.sqrt_target ~n in
  let initial = Array.make n [] in
  for v = 0 to k - 1 do
    initial.(v) <- [ v ]
  done;
  let _items, _ucost, up_audit =
    Primitives.upcast_distinct_audited g ~tree ~initial
  in
  let r = One_respect.run ~params g tree in
  {
    s_n = n;
    bfs_rounds = bfs_audit.Network.rounds;
    bfs_envelope = h + 2;
    upcast_rounds = up_audit.Network.rounds;
    upcast_envelope = h + k;
    or_rounds = r.One_respect.cost.Cost.rounds;
    or_envelope = (k * Params.log_star n) + h;
    or_words = max_audit_words r.One_respect.cost;
  }

let fit ~slack ~quantity ~envelope_name points =
  let ratios =
    List.map (fun p -> p.measured /. Float.max 1.0 p.envelope) points
  in
  let min_ratio = List.fold_left Float.min infinity ratios in
  let max_ratio = List.fold_left Float.max 0.0 ratios in
  (* The growth law holds when the measured/envelope ratio is flat
     across the ladder — within a multiplicative [slack].  An absolute
     threshold would bake in engine constants; a ratio-of-ratios test
     only asserts the *shape*. *)
  let ok = max_ratio <= slack *. min_ratio in
  { quantity; envelope_name; points; min_ratio; max_ratio; ok }

let run ?(params = Params.default) ?(quick = false) ?(slack = default_slack)
    ?(seed = 9000) () =
  let samples = List.map (sample ~params ~seed) (ladder ~quick) in
  let pts f g =
    List.map
      (fun s ->
        { n = s.s_n; measured = float_of_int (f s); envelope = g s })
      samples
  in
  let fits =
    [
      fit ~slack ~quantity:"bfs rounds" ~envelope_name:"D + 2"
        (pts (fun s -> s.bfs_rounds) (fun s -> float_of_int s.bfs_envelope));
      fit ~slack ~quantity:"upcast rounds (sqrt n items)"
        ~envelope_name:"sqrt n + D"
        (pts (fun s -> s.upcast_rounds) (fun s -> float_of_int s.upcast_envelope));
      fit ~slack ~quantity:"one-respect rounds"
        ~envelope_name:"sqrt n * log* n + D"
        (pts (fun s -> s.or_rounds) (fun s -> float_of_int s.or_envelope));
      fit ~slack ~quantity:"one-respect payload words" ~envelope_name:"log2 n"
        (pts (fun s -> s.or_words) (fun s -> log2f s.s_n));
    ]
  in
  { slack; fits; ok = List.for_all (fun (f : fit) -> f.ok) fits }

(* ---- the large-n store ladder -------------------------------------- *)

(* The in-memory ladder runs the engine at n ≤ 128, the supercritical
   (diameter O(log n)) regime.  The store ladder covers the opposite
   regime — tori, where D = Θ(√n) — at sizes the engine cannot touch,
   by measuring what still runs chunk-at-a-time (BFS, the pipelined
   upcast simulation, the fragment decomposition) and charging the
   Theorem 2.1 schedule over the measured fragment geometry. *)

type store_sample = {
  st_n : int;  (** actual node count, rows · cols *)
  st_dir : string;
  st_chunk_bits : int;
  st_num_chunks : int;
  st_total_bytes : int;
  st_budget : int;
  st_bfs_rounds : int;
  st_bfs_envelope : int;  (** D + 2 — the torus diameter is known *)
  st_upcast_rounds : int;
  st_upcast_envelope : int;  (** ⌈√n⌉ + D *)
  st_or_rounds : int;  (** charged Theorem 2.1 schedule *)
  st_or_envelope : int;  (** ⌈√n⌉·log* n + D *)
  st_fragments : int;
  st_fragment_bound : int;  (** n / ⌈√n⌉ + 1, the KP count contract *)
  st_frag_height : int;
  st_frag_height_envelope : int;  (** ⌈√n⌉, the KP height contract *)
  st_stats : Store.Residency.stats;
}

let default_scratch = "_store"

let store_ladder ~quick = if quick then [ 256; 1024 ] else [ 4096; 32768; 131072 ]

let isqrt_ceil n = int_of_float (ceil (sqrt (float_of_int (max 1 n))))

(* Deterministic per (dims, seed, bits), so a directory whose manifest
   matches is byte-for-byte what a rebuild would produce — safe to
   reuse as a cache, and a half-overwritten rebuild converges. *)
let ensure_store ~scratch ~seed ~bits ~rows ~cols () =
  let n = rows * cols in
  let dir =
    Filename.concat scratch (Printf.sprintf "torus_%dx%d_b%d_s%d" rows cols bits seed)
  in
  match Store.Chunk_io.read_manifest ~dir with
  | Ok m when m.Store.Chunk_io.n = n && m.Store.Chunk_io.chunk_bits = bits ->
      Ok (dir, m)
  | Ok _ | Error _ -> (
      match Store.Bulk_loader.create ~dir ~n ~chunk_bits:bits () with
      | Error e -> Error e
      | Ok bl ->
          let rng = Rng.create (seed + (31 * n)) in
          Edge_stream.torus ~rows ~cols
            ~weight:(fun () -> 1 + Rng.int rng 4)
            ~emit:(fun u v w -> Store.Bulk_loader.add_edge bl ~u ~v ~w);
          Result.map (fun m -> (dir, m)) (Store.Bulk_loader.finalize bl))

let store_sample ?(params = Params.default) ?(scratch = default_scratch)
    ?chunk_bits ?instruments ~seed n =
  let side = isqrt_ceil (max 9 n) in
  let rows = side and cols = side in
  let n = rows * cols in
  let bits =
    match chunk_bits with Some b -> b | None -> Store.Chunk.default_bits ~n
  in
  match ensure_store ~scratch ~seed ~bits ~rows ~cols () with
  | Error e -> Error e
  | Ok (dir, manifest) -> (
      let total = Store.Chunked_graph.manifest_bytes manifest in
      (* a quarter of the working set: every whole-graph pass must evict *)
      let budget = max 1 (total / 4) in
      match Store.Chunked_graph.open_store ?instruments ~dir ~budget () with
      | Error e -> Error e
      (* the residency loader faults chunks lazily, so [Store_error] is
         the store's to raise and this layer's to consume (the exnflow
         store-typed boundary) *)
      | exception Store.Chunked_graph.Store_error e -> Error e
      | Ok cg -> (
          match
            let b = Store.Traverse.bfs cg ~root:0 in
            let k = Params.sqrt_target ~n in
            let up =
              Store.Traverse.upcast_rounds ~parent:b.Store.Traverse.parent
                ~root:0
                ~sources:(List.init (min k n) (fun i -> i))
            in
            let tree =
              Tree.of_parents ~graph_n:n ~root:0 ~parent:b.Store.Traverse.parent
                ~parent_edge:(Array.make n (-1))
            in
            let fr = Fragments.partition tree ~target:k in
            (match Fragments.check_invariants fr with
            | Ok _ -> ()
            | Error e ->
                invalid_arg ("fragment decomposition broke the KP contract: " ^ e));
            let frags = Fragments.count fr in
            let ecc = b.Store.Traverse.ecc in
            (* the torus is vertex-transitive: ecc from any root is D *)
            let diameter = ecc in
            {
              st_n = n;
              st_dir = dir;
              st_chunk_bits = bits;
              st_num_chunks = Store.Chunked_graph.num_chunks cg;
              st_total_bytes = total;
              st_budget = budget;
              st_bfs_rounds = b.Store.Traverse.rounds;
              st_bfs_envelope = diameter + 2;
              st_upcast_rounds = up;
              st_upcast_envelope = k + diameter;
              st_or_rounds =
                Params.one_respect_charged_rounds params ~n ~height:ecc
                  ~fragments:frags ~max_frag_height:(Fragments.max_height fr);
              st_or_envelope = (k * Params.log_star n) + diameter;
              st_fragments = frags;
              st_fragment_bound = (n / k) + 1;
              st_frag_height = Fragments.max_height fr;
              st_frag_height_envelope = k;
              st_stats = Store.Chunked_graph.stats cg;
            }
          with
          | s -> Ok s
          | exception Store.Chunked_graph.Store_error e -> Error e
          | exception Invalid_argument e -> Error e))

let store_samples ?params ?(quick = false) ?(seed = 9000) ?scratch () =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        match store_sample ?params ?scratch ~seed n with
        | Ok s -> go (s :: acc) rest
        | Error e -> Error (Printf.sprintf "store ladder n=%d: %s" n e))
  in
  go [] (store_ladder ~quick)

let fit_store ?(slack = default_slack) samples =
  let pts f g =
    List.map
      (fun s -> { n = s.st_n; measured = float_of_int (f s); envelope = g s })
      samples
  in
  let fits =
    [
      fit ~slack ~quantity:"store bfs rounds" ~envelope_name:"D + 2"
        (pts (fun s -> s.st_bfs_rounds) (fun s -> float_of_int s.st_bfs_envelope));
      fit ~slack ~quantity:"store upcast rounds (sqrt n items)"
        ~envelope_name:"sqrt n + D"
        (pts
           (fun s -> s.st_upcast_rounds)
           (fun s -> float_of_int s.st_upcast_envelope));
      fit ~slack ~quantity:"store one-respect charged rounds"
        ~envelope_name:"sqrt n * log* n + D"
        (pts (fun s -> s.st_or_rounds) (fun s -> float_of_int s.st_or_envelope));
      (* fragment COUNT varies freely below its bound (a height-√n tree
         needs only O(1) fragments of height √n), so the count is held
         to the KP contract inside [store_sample]; the flat quantity is
         the fragment height against its ⌈√n⌉ target *)
      fit ~slack ~quantity:"store fragment height" ~envelope_name:"sqrt n"
        (pts
           (fun s -> s.st_frag_height)
           (fun s -> float_of_int s.st_frag_height_envelope));
    ]
  in
  { slack; fits; ok = List.for_all (fun (f : fit) -> f.ok) fits }

let store_sample_to_json s =
  let st = s.st_stats in
  Json.Obj
    [
      ("n", Json.Int s.st_n);
      ("dir", Json.String s.st_dir);
      ("chunk_bits", Json.Int s.st_chunk_bits);
      ("num_chunks", Json.Int s.st_num_chunks);
      ("total_bytes", Json.Int s.st_total_bytes);
      ("budget_bytes", Json.Int s.st_budget);
      ("bfs_rounds", Json.Int s.st_bfs_rounds);
      ("bfs_envelope", Json.Int s.st_bfs_envelope);
      ("upcast_rounds", Json.Int s.st_upcast_rounds);
      ("upcast_envelope", Json.Int s.st_upcast_envelope);
      ("one_respect_charged_rounds", Json.Int s.st_or_rounds);
      ("one_respect_envelope", Json.Int s.st_or_envelope);
      ("fragments", Json.Int s.st_fragments);
      ("fragment_count_bound", Json.Int s.st_fragment_bound);
      ("fragment_height", Json.Int s.st_frag_height);
      ("fragment_height_envelope", Json.Int s.st_frag_height_envelope);
      ( "store",
        Json.Obj
          [
            ("hits", Json.Int st.Store.Residency.hits);
            ("misses", Json.Int st.Store.Residency.misses);
            ("evictions", Json.Int st.Store.Residency.evictions);
            ("resident_chunks", Json.Int st.Store.Residency.resident);
            ("bytes_resident", Json.Int st.Store.Residency.bytes_resident);
            ("budget_bytes", Json.Int st.Store.Residency.budget);
          ] );
    ]

let point_to_json p =
  Json.Obj
    [
      ("n", Json.Int p.n);
      ("measured", Json.Float p.measured);
      ("envelope", Json.Float p.envelope);
    ]

let fit_to_json f =
  Json.Obj
    [
      ("quantity", Json.String f.quantity);
      ("envelope", Json.String f.envelope_name);
      ("points", Json.List (List.map point_to_json f.points));
      ("min_ratio", Json.Float f.min_ratio);
      ("max_ratio", Json.Float f.max_ratio);
      ("ok", Json.Bool f.ok);
    ]

let to_json r =
  Json.Obj
    [
      ("slack", Json.Float r.slack);
      ("fits", Json.List (List.map fit_to_json r.fits));
      ("ok", Json.Bool r.ok);
    ]

let describe r =
  List.map
    (fun (f : fit) ->
      Printf.sprintf "%s %s vs %s: ratio %.2f..%.2f over %s (slack %.1f)"
        (if f.ok then "ok  " else "FAIL")
        f.quantity f.envelope_name f.min_ratio f.max_ratio
        (String.concat ","
           (List.map (fun p -> string_of_int p.n) f.points))
        r.slack)
    r.fits
