(** Weighted undirected multigraphs with integer weights.

    This is the substrate every other library builds on.  Nodes are the
    integers [0 .. n-1]; edges carry a positive integer weight, which the
    min-cut algorithms treat as a capacity (equivalently, a multiplicity
    of parallel unit edges — the view Karger's sampling lemma takes).

    The structure is immutable after construction: adjacency is stored as
    an array of [(neighbor, edge_id)] pairs per node, so algorithms can
    identify edges uniquely even in the presence of parallel edges. *)

type edge = private { id : int; u : int; v : int; w : int }
(** An undirected edge.  Construction normalizes [u < v]; [w >= 1].
    [id] is the index of the edge in [edges]. *)

type t
(** An immutable weighted undirected multigraph. *)

val create : n:int -> (int * int * int) list -> t
(** [create ~n edges] builds a graph on nodes [0 .. n-1] from
    [(u, v, w)] triples.  Raises [Invalid_argument] on out-of-range
    endpoints, self loops, or non-positive weights.  Parallel edges are
    kept (multigraph semantics). *)

val of_array : n:int -> (int * int * int) array -> t
(** Array-input variant of [create]. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val edge : t -> int -> edge
(** [edge g id] fetches an edge by index; [0 <= id < m g]. *)

val edges : t -> edge array
(** All edges.  Do not mutate. *)

val weight : t -> int -> int
(** Weight of edge [id]. *)

val endpoints : t -> int -> int * int
(** [(u, v)] with [u < v]. *)

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g id x] is the endpoint of edge [id] that is not [x].
    Raises [Invalid_argument] if [x] is not an endpoint. *)

val adj : t -> int -> (int * int) array
(** [adj g v] lists [(neighbor, edge_id)] pairs incident to [v].  Do not
    mutate. *)

val degree : t -> int -> int
(** Number of incident edges (with multiplicity). *)

val weighted_degree : t -> int -> int
(** [δ(v)]: sum of weights of incident edges — the quantity in Karger's
    lemma. *)

(** {2 Flat CSR adjacency index}

    A compressed-sparse-row view of the adjacency built once at
    construction: node [v]'s directed slots are
    [csr_offsets g .(v) .. csr_offsets g .(v+1) - 1]; slot [s] is the
    directed edge [v -> csr_neighbors g .(s)] carried by undirected edge
    [csr_edge_ids g .(s)].  Slots are sorted by (neighbor, edge id)
    within each node.  The CONGEST simulator indexes its
    per-directed-edge counters by slot, so its hot loop touches only
    these flat arrays. *)

val csr_offsets : t -> int array
(** Length [n + 1]; do not mutate. *)

val csr_neighbors : t -> int array
(** Length [2m] (one slot per edge direction); do not mutate. *)

val csr_edge_ids : t -> int array
(** Length [2m]; [csr_edge_ids g .(s)] is the undirected edge realizing
    slot [s].  Do not mutate. *)

val csr_slot : t -> int -> int -> int
(** [csr_slot g u v] is the first slot of the directed channel [u -> v]
    (the minimum-id parallel edge), or [-1] when [v] is not adjacent to
    [u].  Binary search over [u]'s sorted slot range, O(log deg). *)

val total_weight : t -> int
(** Sum of all edge weights. *)

val iter_edges : (edge -> unit) -> t -> unit

val fold_edges : ('a -> edge -> 'a) -> 'a -> t -> 'a

val sub_by_edges : t -> keep:(edge -> bool) -> t
(** Subgraph on the same node set containing exactly the edges selected
    by [keep] (edge ids are renumbered). *)

val reweight : t -> f:(edge -> int) -> t
(** Same topology with new weights [f e] (edges with [f e <= 0] are
    dropped).  [f] is evaluated exactly once per edge, in edge-id order
    — callers thread RNG draws through it. *)

val cut_value : t -> in_cut:(int -> bool) -> int
(** [cut_value g ~in_cut] is [C(X)] for [X = { v | in_cut v }]: the total
    weight of edges with exactly one endpoint in [X].  This is the
    defining quantity of the paper (Section 1). *)

val cut_of_bitset : t -> Mincut_util.Bitset.t -> int
(** [cut_value] specialized to a bitset side. *)

val equal_structure : t -> t -> bool
(** Same node count and identical (u, v, w) edge multiset. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: node/edge counts and the edge list for small graphs. *)
