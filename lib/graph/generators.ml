module Rng = Mincut_util.Rng

type weights = { wmin : int; wmax : int }

let unit_weights = { wmin = 1; wmax = 1 }

let draw_weight ?weights ?rng () =
  match (weights, rng) with
  | None, _ -> 1
  | Some { wmin; wmax }, _ when wmin = wmax -> wmin
  | Some { wmin; wmax }, Some rng -> Rng.int_in rng wmin wmax
  | Some _, None -> invalid_arg "Generators: weight range requires an rng"

let path ?weights ?rng n =
  assert (n >= 1);
  Graph.create ~n
    (List.init (n - 1) (fun i -> (i, i + 1, draw_weight ?weights ?rng ())))

let ring ?weights ?rng n =
  assert (n >= 3);
  Graph.create ~n
    (List.init n (fun i -> (i, (i + 1) mod n, draw_weight ?weights ?rng ())))

let complete ?weights ?rng n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v, draw_weight ?weights ?rng ()) :: !acc
    done
  done;
  Graph.create ~n !acc

let grid rows cols =
  assert (rows >= 1 && cols >= 1);
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (id r c, id r (c + 1), 1) :: !acc;
      if r + 1 < rows then acc := (id r c, id (r + 1) c, 1) :: !acc
    done
  done;
  Graph.create ~n:(rows * cols) !acc

let torus rows cols =
  assert (rows >= 3 && cols >= 3);
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      acc := (id r c, id r ((c + 1) mod cols), 1) :: !acc;
      acc := (id r c, id ((r + 1) mod rows) c, 1) :: !acc
    done
  done;
  Graph.create ~n:(rows * cols) !acc

let hypercube d =
  assert (d >= 1 && d <= 20);
  let n = 1 lsl d in
  let acc = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then acc := (v, u, 1) :: !acc
    done
  done;
  Graph.create ~n !acc

let wheel n =
  assert (n >= 4);
  let rim = n - 1 in
  let acc = ref [] in
  for i = 1 to rim do
    acc := (0, i, 1) :: !acc;
    acc := (i, (i mod rim) + 1, 1) :: !acc
  done;
  Graph.create ~n !acc

let caterpillar spine legs =
  assert (spine >= 1 && legs >= 0);
  let acc = ref [] in
  let next = ref spine in
  for i = 0 to spine - 1 do
    if i + 1 < spine then acc := (i, i + 1, 1) :: !acc;
    for _ = 1 to legs do
      acc := (i, !next, 1) :: !acc;
      incr next
    done
  done;
  Graph.create ~n:!next !acc

let clique_edges ~offset k =
  let acc = ref [] in
  for u = 0 to k - 1 do
    for v = u + 1 to k - 1 do
      acc := (offset + u, offset + v, 1) :: !acc
    done
  done;
  !acc

let barbell k =
  assert (k >= 2);
  let edges = clique_edges ~offset:0 k @ clique_edges ~offset:k k in
  Graph.create ~n:(2 * k) ((k - 1, k, 1) :: edges)

let gnp ~rng ?weights n p =
  assert (n >= 1 && p >= 0.0 && p <= 1.0);
  (* Collect the streamed edge sequence; prepending keeps the edge-id
     order (and hence every seeded replay) identical to the historical
     in-place loop this function used before Edge_stream existed. *)
  let acc = ref [] in
  Edge_stream.gnp ~rng ~n ~p
    ~weight:(fun () -> draw_weight ?weights ~rng ())
    ~emit:(fun u v w -> acc := (u, v, w) :: !acc);
  Graph.create ~n !acc

let gnp_connected ~rng ?weights n p =
  let rec go tries =
    if tries = 0 then failwith "Generators.gnp_connected: p too small to connect";
    let g = gnp ~rng ?weights n p in
    if Bfs.is_connected g then g else go (tries - 1)
  in
  go 100

let random_tree ~rng ?weights n =
  assert (n >= 1);
  Graph.create ~n
    (List.init (n - 1) (fun i ->
         let v = i + 1 in
         (Rng.int rng v, v, draw_weight ?weights ~rng ())))

let random_regular ~rng ?weights n d =
  if n * d mod 2 <> 0 || d >= n || d < 1 then
    invalid_arg "Generators.random_regular: need n*d even and 1 <= d < n";
  let attempt () =
    let stubs = Array.init (n * d) (fun i -> i / d) in
    Rng.shuffle rng stubs;
    let seen = Hashtbl.create (n * d) in
    let acc = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        acc := (u, v, draw_weight ?weights ~rng ()) :: !acc
      end;
      i := !i + 2
    done;
    if !ok then Some (Graph.create ~n !acc) else None
  in
  let rec go tries =
    if tries = 0 then failwith "Generators.random_regular: too many collisions"
    else match attempt () with Some g -> g | None -> go (tries - 1)
  in
  go 1000

let planted_cut ~rng ?weights ~n ~cut_edges ~p_in () =
  assert (n >= 4 && cut_edges >= 1);
  let half = n / 2 in
  let size_b = n - half in
  let connect_half ~offset ~size =
    (* dense half plus a Hamiltonian path to guarantee connectivity *)
    let g = gnp ~rng ?weights size p_in in
    let inner =
      Graph.fold_edges
        (fun acc e -> (offset + e.Graph.u, offset + e.Graph.v, e.Graph.w) :: acc)
        [] g
    in
    let spine =
      List.init (size - 1) (fun i ->
          (offset + i, offset + i + 1, draw_weight ?weights ~rng ()))
    in
    (* drop duplicate spine edges already present: multigraph is fine for
       our algorithms, but keeping it simple we just allow parallels *)
    inner @ spine
  in
  let cross =
    List.init cut_edges (fun _ -> (Rng.int rng half, half + Rng.int rng size_b, 1))
  in
  Graph.create ~n (connect_half ~offset:0 ~size:half @ connect_half ~offset:half ~size:size_b @ cross)

let path_of_cliques ~clique ~length =
  assert (clique >= 3 && length >= 1);
  let acc = ref [] in
  for i = 0 to length - 1 do
    acc := clique_edges ~offset:(i * clique) clique @ !acc;
    if i + 1 < length then begin
      (* two parallel links between consecutive cliques: λ = 2 *)
      acc := ((i * clique) + clique - 1, (i + 1) * clique, 1) :: !acc;
      acc := ((i * clique) + clique - 2, ((i + 1) * clique) + 1, 1) :: !acc
    end
  done;
  Graph.create ~n:(clique * length) !acc

let spider ~legs ~leg_length =
  assert (legs >= 1 && leg_length >= 1);
  let n = (legs * leg_length) + 1 in
  let acc = ref [] in
  for l = 0 to legs - 1 do
    let base = 1 + (l * leg_length) in
    acc := (0, base, 1) :: !acc;
    for i = 0 to leg_length - 2 do
      acc := (base + i, base + i + 1, 1) :: !acc
    done
  done;
  Graph.create ~n !acc

let dumbbell k bridge_nodes =
  assert (k >= 2 && bridge_nodes >= 0);
  let n = (2 * k) + bridge_nodes in
  let left = clique_edges ~offset:0 k in
  let right = clique_edges ~offset:(k + bridge_nodes) k in
  let chain =
    List.init (bridge_nodes + 1) (fun i -> (k - 1 + i, k + i, 1))
  in
  Graph.create ~n (left @ right @ chain)

let family_names =
  [ "path"; "ring"; "complete"; "grid"; "torus"; "hypercube"; "wheel"; "barbell";
    "spider"; "cliques-path"; "random-tree"; "regular"; "gnp"; "planted" ]

let by_name ~rng ?weights ~name ~size () =
  match name with
  | "path" -> Ok (path ?weights ~rng size)
  | "ring" -> Ok (ring ?weights ~rng size)
  | "complete" -> Ok (complete ?weights ~rng size)
  | "grid" -> Ok (grid size size)
  | "torus" -> Ok (torus size size)
  | "hypercube" -> Ok (hypercube size)
  | "wheel" -> Ok (wheel size)
  | "barbell" -> Ok (barbell size)
  | "spider" -> Ok (spider ~legs:size ~leg_length:(4 * size))
  | "cliques-path" -> Ok (path_of_cliques ~clique:8 ~length:size)
  | "random-tree" -> Ok (random_tree ~rng ?weights size)
  | "regular" -> Ok (random_regular ~rng ?weights size 4)
  | "gnp" ->
      let p = 8.0 *. log (float_of_int size) /. float_of_int size in
      Ok (gnp_connected ~rng ?weights size (Float.min 1.0 p))
  | "planted" -> Ok (planted_cut ~rng ?weights ~n:size ~cut_edges:3 ~p_in:0.4 ())
  | other -> Error (Printf.sprintf "unknown family %S" other)

(* ------------------------------------------------------------------ *)
(* Seeded delta streams: reproducible edge churn over a base graph    *)
(* ------------------------------------------------------------------ *)

type delta_mix = {
  p_add : int;
  p_remove : int;
  p_reweight : int;
  p_merge : int;
  p_split : int;
}

let default_delta_mix =
  { p_add = 35; p_remove = 8; p_reweight = 49; p_merge = 4; p_split = 4 }

let delta_stream ~rng ?(mix = default_delta_mix) ?(wmax = 4) ~base ops =
  if wmax < 1 then invalid_arg "delta_stream: wmax must be >= 1";
  let total =
    mix.p_add + mix.p_remove + mix.p_reweight + mix.p_merge + mix.p_split
  in
  if
    total <= 0 || mix.p_add < 0 || mix.p_remove < 0 || mix.p_reweight < 0
    || mix.p_merge < 0 || mix.p_split < 0
  then invalid_arg "delta_stream: mix weights must be >= 0 with a positive sum";
  let h = Handle.of_graph base in
  let out = ref [] in
  let emit op =
    match Handle.apply h op with
    | Ok _ ->
        out := op :: !out;
        true
    | Error _ -> false
  in
  let try_add () =
    (* a uniform absent pair, by rejection; on a near-complete graph the
       attempts run out and the step degrades to nothing *)
    let n = Handle.n h in
    let rec attempt k =
      if k = 0 then false
      else
        let u = Mincut_util.Rng.int rng n and v = Mincut_util.Rng.int rng n in
        if u = v || Handle.channel_weight h u v > 0 then attempt (k - 1)
        else
          emit
            (Delta.Add_edge
               { u = min u v; v = max u v; w = 1 + Mincut_util.Rng.int rng wmax })
    in
    attempt 32
  in
  let pick_channel () =
    let chans = Handle.channel_array h in
    if Array.length chans = 0 then None
    else Some (Mincut_util.Rng.choose rng chans)
  in
  let try_reweight () =
    match pick_channel () with
    | None -> false
    | Some (u, v, w) ->
        let w' = 1 + Mincut_util.Rng.int rng wmax in
        (* never a no-op: nudge off the current weight *)
        let w' = if w' = w then (if w >= wmax then max 1 (w - 1) else w + 1) else w' in
        if w' = w then false else emit (Delta.Reweight { u; v; w = w' })
  in
  let try_remove () =
    (* connectivity-preserving: only non-bridge channels are candidates,
       and a density floor keeps the stream from thinning the graph to a
       tree (where every removal would disconnect) *)
    if Handle.channels h <= Handle.n h then false
    else
      let g = Handle.current h in
      let is_bridge = Array.make (max 1 (Graph.m g)) false in
      List.iter (fun id -> is_bridge.(id) <- true) (Bridge.bridges g);
      let cands =
        Graph.fold_edges
          (fun acc e ->
            if is_bridge.(e.Graph.id) then acc else (e.Graph.u, e.Graph.v) :: acc)
          [] g
      in
      match cands with
      | [] -> false
      | _ :: _ ->
          let u, v = Mincut_util.Rng.choose rng (Array.of_list cands) in
          emit (Delta.Remove_edge { u; v })
  in
  let try_merge () =
    (* contracting a channel keeps the graph connected and n >= 4 *)
    if Handle.n h <= 4 then false
    else
      match pick_channel () with
      | None -> false
      | Some (u, v, _) -> emit (Delta.Merge_nodes { u; v })
  in
  let try_split () =
    let n = Handle.n h in
    let g = Handle.current h in
    let rec attempt k =
      if k = 0 then false
      else
        let v = Mincut_util.Rng.int rng n in
        if Graph.degree g v = 0 then attempt (k - 1)
        else
          let moved =
            Array.to_list (Graph.adj g v)
            |> List.filter_map (fun (x, _) ->
                   if Mincut_util.Rng.bool rng then Some x else None)
          in
          emit
            (Delta.Split_node
               { v; w = 1 + Mincut_util.Rng.int rng wmax; moved })
    in
    attempt 8
  in
  let step () =
    let r = Mincut_util.Rng.int rng total in
    let ok =
      if r < mix.p_add then try_add ()
      else if r < mix.p_add + mix.p_remove then try_remove ()
      else if r < mix.p_add + mix.p_remove + mix.p_reweight then try_reweight ()
      else if r < mix.p_add + mix.p_remove + mix.p_reweight + mix.p_merge then
        try_merge ()
      else try_split ()
    in
    (* a step whose drawn kind is impossible right now degrades to an
       add, so churn keeps flowing on small or thinned-out graphs *)
    if not ok then ignore (try_add ())
  in
  for _ = 1 to ops do
    step ()
  done;
  List.rev !out
