(** Graph families used by tests, examples, and the benchmark harness.

    Each experiment of EXPERIMENTS.md names one of these families:
    - [gnp] (supercritical) for the n-sweep of Theorem 2.1 (T2, F1);
    - [path_of_cliques] to scale the diameter [D] independently (T3);
    - [planted_cut] to control the min-cut value [λ] exactly (T4, F3, F4);
    - the deterministic families (ring, grid, torus, hypercube, complete,
      barbell, wheel, caterpillar) for unit tests with known answers.

    All randomized generators take an explicit RNG and optional weight
    bounds; weights default to 1 (unweighted). *)

type weights = { wmin : int; wmax : int }

val unit_weights : weights
(** [{ wmin = 1; wmax = 1 }]. *)

val path : ?weights:weights -> ?rng:Mincut_util.Rng.t -> int -> Graph.t
(** Path on [n] nodes; λ = wmin for unit weights. *)

val ring : ?weights:weights -> ?rng:Mincut_util.Rng.t -> int -> Graph.t
(** Cycle on [n >= 3] nodes; λ = 2 for unit weights. *)

val complete : ?weights:weights -> ?rng:Mincut_util.Rng.t -> int -> Graph.t
(** K_n; λ = n-1 for unit weights. *)

val grid : int -> int -> Graph.t
(** [rows × cols] grid, unit weights; λ = min rows cols >= 2 ? 2 : 1. *)

val torus : int -> int -> Graph.t
(** Wrap-around grid (both dims >= 3), unit weights; λ = 4. *)

val hypercube : int -> Graph.t
(** d-dimensional hypercube, unit weights; λ = d. *)

val wheel : int -> Graph.t
(** Hub + cycle of [n-1 >= 3] rim nodes, unit weights; λ = 3. *)

val caterpillar : int -> int -> Graph.t
(** Spine of the given length with [legs] leaves per spine node
    (unit weights; λ = 1).  A stress test for skewed trees. *)

val barbell : int -> Graph.t
(** Two K_k cliques joined by one edge; λ = 1.  The classic worst case
    for naive local algorithms. *)

val gnp : rng:Mincut_util.Rng.t -> ?weights:weights -> int -> float -> Graph.t
(** Erdős–Rényi G(n, p) via geometric skipping (O(n + m) expected). *)

val gnp_connected : rng:Mincut_util.Rng.t -> ?weights:weights -> int -> float -> Graph.t
(** [gnp] resampled until connected (raises after 100 failures — use
    supercritical [p]). *)

val random_tree : rng:Mincut_util.Rng.t -> ?weights:weights -> int -> Graph.t
(** Uniform random recursive tree (node i attaches to a uniform earlier
    node). *)

val random_regular : rng:Mincut_util.Rng.t -> ?weights:weights -> int -> int -> Graph.t
(** Configuration-model d-regular simple graph (resampled on collisions);
    requires [n*d] even and [d < n].  Expander-like for d >= 3. *)

val planted_cut :
  rng:Mincut_util.Rng.t ->
  ?weights:weights ->
  n:int ->
  cut_edges:int ->
  p_in:float ->
  unit ->
  Graph.t
(** Two G(n/2, p_in) halves (each made connected) joined by exactly
    [cut_edges] unit-weight cross edges.  For sufficiently dense halves
    the min cut is exactly [cut_edges] — the λ-controlled family. *)

val path_of_cliques : clique:int -> length:int -> Graph.t
(** [length] cliques K_clique arranged in a path, adjacent cliques joined
    by 2 edges (so λ = 2 but internal cuts are large); diameter grows
    linearly with [length], n = clique·length.  The D-controlled
    family. *)

val spider : legs:int -> leg_length:int -> Graph.t
(** A hub with [legs] paths of [leg_length] nodes each (unit weights;
    λ = 1, n = legs·leg_length + 1).  Deep {e and} branching: the
    canonical topology for fragment {e merging nodes} (paper, Step 4 /
    Figure 1).  *)

val dumbbell : int -> int -> Graph.t
(** Two K_k cliques joined by a path of the given number of bridge nodes
    (λ = 1, diameter ≈ path length). *)

val family_names : string list
(** The families [by_name] understands. *)

val by_name :
  rng:Mincut_util.Rng.t ->
  ?weights:weights ->
  name:string ->
  size:int ->
  unit ->
  (Graph.t, string) result
(** One-string factory shared by the CLI, the benchmarks, and tests:
    ["ring"], ["grid"] (size = side), ["hypercube"] (size = dimension),
    ["gnp"] (supercritical p), ["planted"] (3 cross edges), etc.
    [Error] carries a message naming the unknown family. *)

(** {2 Delta streams} *)

type delta_mix = {
  p_add : int;
  p_remove : int;
  p_reweight : int;
  p_merge : int;
  p_split : int;
}
(** Relative draw weights for the five {!Delta.op} kinds. *)

val default_delta_mix : delta_mix
(** [35 / 8 / 49 / 4 / 4] (add / remove / reweight / merge / split):
    insert-heavy churn with a steady trickle of certificate-invalidating
    structural updates — the regime the incremental service is built
    for. *)

val delta_stream :
  rng:Mincut_util.Rng.t ->
  ?mix:delta_mix ->
  ?wmax:int ->
  base:Graph.t ->
  int ->
  Delta.op list
(** [delta_stream ~rng ~base ops] draws a reproducible update stream of
    (at most) [ops] deltas over an evolving copy of [base]: every op is
    valid at its position when replayed in order from [base], and the
    graph stays connected throughout (removals avoid bridges, merges
    contract channels, splits keep a bridge of weight [1..wmax]).
    Weights are drawn in [1..wmax] (default 4).  Equal seeds yield equal
    streams — bench, tests and qcheck share this one source.  A drawn
    kind that is impossible at its position (e.g. a removal when every
    channel is a bridge) degrades to an add, so a step can very rarely
    produce nothing; hence "at most". *)
