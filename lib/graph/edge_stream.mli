(** Streaming graph generators: emit edges one at a time, never
    materializing the edge list.

    The in-memory generators in {!Generators} build a [(u, v, w) list]
    and hand it to [Graph.create] — fine up to the n ≈ 10²–10³ graphs
    the solvers run on, hopeless for the 10⁵–10⁷-node scale ladder the
    chunked store ingests.  This module produces the same seeded edge
    sequences through an [emit] callback, so a bulk loader can bucket
    edges straight into chunk files with O(1) memory per edge.

    {!Generators.gnp} delegates here, so a streamed G(n, p) and a
    materialized one built from the same [Rng.t] state contain exactly
    the same edges in the same order. *)

val gnp :
  rng:Mincut_util.Rng.t ->
  n:int ->
  p:float ->
  weight:(unit -> int) ->
  emit:(int -> int -> int -> unit) ->
  unit
(** Erdős–Rényi G(n, p) by geometric skips over the C(n,2) implicit pair
    enumeration: O(m) expected time and O(1) memory.  [emit u v w] is
    called once per sampled edge with [u < v] and [w = weight ()]
    (callers thread weight draws through the same rng; [weight] is
    evaluated exactly once per emitted edge, after the skip draw).
    Requires [n >= 1] and [0 <= p <= 1]. *)

val torus :
  rows:int -> cols:int -> weight:(unit -> int) -> emit:(int -> int -> int -> unit) -> unit
(** The [rows × cols] torus lattice (each node linked to its right and
    down neighbor, wrapping), emitted row-major.  Requires both
    dimensions ≥ 3, as in {!Generators.torus}. *)
