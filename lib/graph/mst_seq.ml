let kruskal_by g ~cmp =
  let es = Array.copy (Graph.edges g) in
  Array.sort cmp es;
  let uf = Union_find.create (Graph.n g) in
  let acc = ref [] in
  Array.iter
    (fun (e : Graph.edge) -> if Union_find.union uf e.u e.v then acc := e.id :: !acc)
    es;
  List.rev !acc

let weight_order (a : Graph.edge) (b : Graph.edge) =
  match Int.compare a.w b.w with 0 -> Int.compare a.id b.id | c -> c

let kruskal g = kruskal_by g ~cmp:weight_order

let prim g =
  let n = Graph.n g in
  if n = 0 then []
  else begin
    let in_tree = Array.make n false in
    let acc = ref [] in
    let heap =
      Mincut_util.Heap.create ~cmp:(fun (w1, id1, _) (w2, id2, _) ->
          match Int.compare w1 w2 with 0 -> Int.compare id1 id2 | c -> c)
    in
    let visit v =
      in_tree.(v) <- true;
      Array.iter
        (fun (u, id) ->
          if not in_tree.(u) then Mincut_util.Heap.push heap (Graph.weight g id, id, u))
        (Graph.adj g v)
    in
    visit 0;
    let count = ref 1 in
    while !count < n do
      match Mincut_util.Heap.pop heap with
      | None -> invalid_arg "Mst_seq.prim: disconnected graph"
      | Some (_, id, u) ->
          if not in_tree.(u) then begin
            acc := id :: !acc;
            incr count;
            visit u
          end
    done;
    List.rev !acc
  end

let boruvka g =
  let n = Graph.n g in
  let uf = Union_find.create n in
  let acc = ref [] in
  let progress = ref true in
  while Union_find.count uf > 1 && !progress do
    progress := false;
    (* cheapest outgoing edge per component, ties by edge id *)
    let best = Hashtbl.create 16 in
    Graph.iter_edges
      (fun e ->
        let ru = Union_find.find uf e.u and rv = Union_find.find uf e.v in
        if ru <> rv then begin
          let better r =
            match Hashtbl.find_opt best r with
            | None -> true
            | Some (w, id) -> e.w < w || (e.w = w && e.id < id)
          in
          if better ru then Hashtbl.replace best ru (e.w, e.id);
          if better rv then Hashtbl.replace best rv (e.w, e.id)
        end)
      g;
    Hashtbl.iter
      (fun _ (_, id) ->
        let u, v = Graph.endpoints g id in
        if Union_find.union uf u v then begin
          acc := id :: !acc;
          progress := true
        end)
      best
  done;
  List.rev !acc

let tree_weight g ids = List.fold_left (fun acc id -> acc + Graph.weight g id) 0 ids

let is_spanning_tree g ids =
  let n = Graph.n g in
  List.length ids = n - 1
  &&
  let uf = Union_find.create n in
  List.for_all
    (fun id ->
      let u, v = Graph.endpoints g id in
      Union_find.union uf u v)
    ids
