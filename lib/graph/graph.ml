type edge = { id : int; u : int; v : int; w : int }

type t = {
  n : int;
  edges : edge array;
  adj : (int * int) array array;
  wdeg : int array;  (* cached weighted degrees *)
  (* CSR-style flat adjacency index: node [v]'s directed slots are
     [csr_off.(v) .. csr_off.(v+1) - 1]; slot [s] is the directed edge
     [v -> csr_nbr.(s)] realized by undirected edge [csr_eid.(s)].
     Slots are sorted by (neighbor, edge id) within each node, so the
     first slot of a channel is its minimum-id parallel edge.  The
     simulator indexes per-directed-edge counters by slot. *)
  csr_off : int array;
  csr_nbr : int array;
  csr_eid : int array;
}

let validate ~n (u, v, w) =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph.create: endpoint out of range (%d,%d), n=%d" u v n);
  if u = v then invalid_arg "Graph.create: self loop";
  if w <= 0 then invalid_arg "Graph.create: non-positive weight"

(* Core constructor over already-normalized edge records (u < v, ids
   [0 .. len-1]): every derived structure is built with flat array
   passes, no intermediate lists. *)
let build ~n edges =
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iter
    (fun e ->
      adj.(e.u).(fill.(e.u)) <- (e.v, e.id);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, e.id);
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  let wdeg = Array.make n 0 in
  Array.iter
    (fun e ->
      wdeg.(e.u) <- wdeg.(e.u) + e.w;
      wdeg.(e.v) <- wdeg.(e.v) + e.w)
    edges;
  let csr_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    csr_off.(v + 1) <- csr_off.(v) + deg.(v)
  done;
  let slots = csr_off.(n) in
  let csr_nbr = Array.make slots 0 in
  let csr_eid = Array.make slots 0 in
  for v = 0 to n - 1 do
    (* adjacency pairs are (neighbor, edge id); sorting them as pairs of
       ints orders slots by neighbor with parallel edges by ascending id *)
    let row = Array.copy adj.(v) in
    Array.sort
      (fun (a, ai) (b, bi) ->
        match Int.compare a b with 0 -> Int.compare ai bi | c -> c)
      row;
    Array.iteri
      (fun i (u, id) ->
        csr_nbr.(csr_off.(v) + i) <- u;
        csr_eid.(csr_off.(v) + i) <- id)
      row
  done;
  { n; edges; adj; wdeg; csr_off; csr_nbr; csr_eid }

let of_array ~n triples =
  Array.iter (validate ~n) triples;
  let edges =
    Array.mapi
      (fun id (u, v, w) -> if u < v then { id; u; v; w } else { id; u = v; v = u; w })
      triples
  in
  build ~n edges

let create ~n triples = of_array ~n (Array.of_list triples)

let n g = g.n

let m g = Array.length g.edges

let edge g id =
  if id < 0 || id >= m g then invalid_arg "Graph.edge: bad id";
  g.edges.(id)

let edges g = g.edges

let weight g id = (edge g id).w

let endpoints g id =
  let e = edge g id in
  (e.u, e.v)

let other_endpoint g id x =
  let e = edge g id in
  if e.u = x then e.v
  else if e.v = x then e.u
  else invalid_arg "Graph.other_endpoint: not an endpoint"

let adj g v = g.adj.(v)

let degree g v = Array.length g.adj.(v)

let weighted_degree g v = g.wdeg.(v)

let csr_offsets g = g.csr_off

let csr_neighbors g = g.csr_nbr

let csr_edge_ids g = g.csr_eid

let csr_slot g u v =
  if u < 0 || u >= g.n then invalid_arg "Graph.csr_slot: bad node";
  let lo = ref g.csr_off.(u) and hi = ref (g.csr_off.(u + 1) - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = g.csr_nbr.(mid) in
    if x < v then lo := mid + 1
    else if x > v then hi := mid - 1
    else begin
      (* remember the match and keep searching left for the first slot *)
      found := mid;
      hi := mid - 1
    end
  done;
  !found

let total_weight g = Array.fold_left (fun acc e -> acc + e.w) 0 g.edges

let iter_edges f g = Array.iter f g.edges

let fold_edges f init g = Array.fold_left f init g.edges

(* Filtered/reweighted copies renumber ids with flat array passes — no
   list round-trip, no re-validation (the source edges are already
   normalized).  [f] runs exactly once per edge, in id order: callers
   thread RNG draws through it (skeleton sampling), so evaluation count
   and order are part of the contract. *)
let filter_map_edges g ~f =
  let weights = Array.map f g.edges in
  let count = ref 0 in
  Array.iter (fun w -> if w > 0 then incr count) weights;
  let out = Array.make !count { id = 0; u = 0; v = 0; w = 0 } in
  let i = ref 0 in
  Array.iteri
    (fun id w ->
      if w > 0 then begin
        let e = g.edges.(id) in
        out.(!i) <- { id = !i; u = e.u; v = e.v; w };
        incr i
      end)
    weights;
  build ~n:g.n out

let sub_by_edges g ~keep = filter_map_edges g ~f:(fun e -> if keep e then e.w else 0)

let reweight g ~f = filter_map_edges g ~f

let cut_value g ~in_cut =
  Array.fold_left
    (fun acc e -> if in_cut e.u <> in_cut e.v then acc + e.w else acc)
    0 g.edges

let cut_of_bitset g side = cut_value g ~in_cut:(Mincut_util.Bitset.mem side)

let compare_triple (a1, a2, a3) (b1, b2, b3) =
  match Int.compare a1 b1 with
  | 0 -> ( match Int.compare a2 b2 with 0 -> Int.compare a3 b3 | c -> c)
  | c -> c

let equal_triple (a1, a2, a3) (b1, b2, b3) =
  Int.equal a1 b1 && Int.equal a2 b2 && Int.equal a3 b3

let canon_edges g =
  let l = Array.to_list (Array.map (fun e -> (e.u, e.v, e.w)) g.edges) in
  List.sort compare_triple l

let equal_structure a b =
  a.n = b.n && List.equal equal_triple (canon_edges a) (canon_edges b)

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" g.n (m g);
  if m g <= 40 then
    iter_edges (fun e -> Format.fprintf fmt "@ %d-%d:%d" e.u e.v e.w) g
