type edge = { id : int; u : int; v : int; w : int }

type t = {
  n : int;
  edges : edge array;
  adj : (int * int) array array;
  wdeg : int array;  (* cached weighted degrees *)
}

let validate ~n (u, v, w) =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph.create: endpoint out of range (%d,%d), n=%d" u v n);
  if u = v then invalid_arg "Graph.create: self loop";
  if w <= 0 then invalid_arg "Graph.create: non-positive weight"

let of_array ~n triples =
  Array.iter (validate ~n) triples;
  let edges =
    Array.mapi
      (fun id (u, v, w) -> if u < v then { id; u; v; w } else { id; u = v; v = u; w })
      triples
  in
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iter
    (fun e ->
      adj.(e.u).(fill.(e.u)) <- (e.v, e.id);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, e.id);
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  let wdeg = Array.make n 0 in
  Array.iter
    (fun e ->
      wdeg.(e.u) <- wdeg.(e.u) + e.w;
      wdeg.(e.v) <- wdeg.(e.v) + e.w)
    edges;
  { n; edges; adj; wdeg }

let create ~n triples = of_array ~n (Array.of_list triples)

let n g = g.n

let m g = Array.length g.edges

let edge g id =
  if id < 0 || id >= m g then invalid_arg "Graph.edge: bad id";
  g.edges.(id)

let edges g = g.edges

let weight g id = (edge g id).w

let endpoints g id =
  let e = edge g id in
  (e.u, e.v)

let other_endpoint g id x =
  let e = edge g id in
  if e.u = x then e.v
  else if e.v = x then e.u
  else invalid_arg "Graph.other_endpoint: not an endpoint"

let adj g v = g.adj.(v)

let degree g v = Array.length g.adj.(v)

let weighted_degree g v = g.wdeg.(v)

let total_weight g = Array.fold_left (fun acc e -> acc + e.w) 0 g.edges

let iter_edges f g = Array.iter f g.edges

let fold_edges f init g = Array.fold_left f init g.edges

let sub_by_edges g ~keep =
  let triples =
    Array.of_list
      (List.filter_map
         (fun e -> if keep e then Some (e.u, e.v, e.w) else None)
         (Array.to_list g.edges))
  in
  of_array ~n:g.n triples

let reweight g ~f =
  let triples =
    Array.of_list
      (List.filter_map
         (fun e ->
           let w = f e in
           if w > 0 then Some (e.u, e.v, w) else None)
         (Array.to_list g.edges))
  in
  of_array ~n:g.n triples

let cut_value g ~in_cut =
  Array.fold_left
    (fun acc e -> if in_cut e.u <> in_cut e.v then acc + e.w else acc)
    0 g.edges

let cut_of_bitset g side = cut_value g ~in_cut:(Mincut_util.Bitset.mem side)

let compare_triple (a1, a2, a3) (b1, b2, b3) =
  match Int.compare a1 b1 with
  | 0 -> ( match Int.compare a2 b2 with 0 -> Int.compare a3 b3 | c -> c)
  | c -> c

let canon_edges g =
  let l = Array.to_list (Array.map (fun e -> (e.u, e.v, e.w)) g.edges) in
  List.sort compare_triple l

let equal_structure a b = a.n = b.n && canon_edges a = canon_edges b

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" g.n (m g);
  if m g <= 40 then
    iter_edges (fun e -> Format.fprintf fmt "@ %d-%d:%d" e.u e.v e.w) g
