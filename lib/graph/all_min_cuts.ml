module Bitset = Mincut_util.Bitset

type t = { value : int; sides : Bitset.t list }

let canonical _g side =
  let s = Bitset.copy side in
  if Bitset.mem s 0 then Bitset.complement_inplace s;
  s

let exhaustive g =
  let n = Graph.n g in
  if n < 2 || n > 24 then invalid_arg "All_min_cuts.exhaustive: need 2 <= n <= 24";
  if not (Bfs.is_connected g) then invalid_arg "All_min_cuts.exhaustive: disconnected";
  let best = ref max_int in
  let sides = ref [] in
  let masks = 1 lsl (n - 1) in
  for mask = 1 to masks - 1 do
    let in_cut v = v > 0 && (mask lsr (v - 1)) land 1 = 1 in
    let value = Graph.cut_value g ~in_cut in
    if value < !best then begin
      best := value;
      sides := [ mask ]
    end
    else if value = !best then sides := mask :: !sides
  done;
  let to_bitset mask =
    let s = Bitset.create n in
    for v = 1 to n - 1 do
      if (mask lsr (v - 1)) land 1 = 1 then Bitset.add s v
    done;
    s
  in
  { value = !best; sides = List.rev_map to_bitset !sides }

let count_exhaustive g = List.length (exhaustive g).sides

let randomized ~rng ?trials g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "All_min_cuts.randomized: need n >= 2";
  if not (Bfs.is_connected g) then invalid_arg "All_min_cuts.randomized: disconnected";
  let trials =
    match trials with
    | Some t -> t
    | None ->
        let l = log (float_of_int n) in
        max 20 (int_of_float (30.0 *. l *. l))
  in
  let best = ref max_int in
  let seen = Hashtbl.create 16 in
  for _ = 1 to trials do
    let r = Karger.karger_stein ~rng ~trials:1 g in
    if r.Karger.value < !best then begin
      best := r.Karger.value;
      Hashtbl.reset seen
    end;
    if r.Karger.value = !best then begin
      let side = canonical g r.Karger.side in
      let key = Bitset.to_list side in
      if not (Hashtbl.mem seen key) then Hashtbl.replace seen key side
    end
  done;
  { value = !best; sides = Hashtbl.fold (fun _ s acc -> s :: acc) seen [] }
