module Hash = Mincut_util.Hash

type change = { cu : int; cv : int; before : int; after : int }
type outcome = { version : int; changes : change list; renumbered : bool }

(* channel key: endpoints packed into one int (u < v < 2^31) *)
let ck u v = (u lsl 31) lor v
let ck_u k = k lsr 31
let ck_v k = k land 0x7FFF_FFFF

type t = {
  mutable base : Graph.t;
  channels : (int, int) Hashtbl.t;
  mutable log_rev : Delta.op list;
  mutable version : int;
  mutable n : int;
  mutable nchan : int;
  mutable wsum : int;
  mutable acc : int64;  (* sum over channels of [contribution] *)
  mutable memo : Graph.t option;
}

let contribution u v w =
  let h = Hash.create () in
  Hash.add_int h u;
  Hash.add_int h v;
  Hash.add_int h w;
  Hash.value h

let digest_of ~n ~nchan ~wsum ~acc =
  let h = Hash.create () in
  Hash.add_int h n;
  Hash.add_int h nchan;
  Hash.add_int h wsum;
  Hash.add_int64 h acc;
  Hash.value h

let digest t = digest_of ~n:t.n ~nchan:t.nchan ~wsum:t.wsum ~acc:t.acc

(* the one mutation primitive: set channel {u,v} (u < v) to [w]
   (0 = remove), keeping the channel count, weight sum and rolling
   digest accumulator in sync *)
let set_channel t u v w =
  let key = ck u v in
  let before =
    match Hashtbl.find_opt t.channels key with Some x -> x | None -> 0
  in
  if before <> 0 then begin
    t.acc <- Int64.sub t.acc (contribution u v before);
    t.nchan <- t.nchan - 1;
    t.wsum <- t.wsum - before;
    Hashtbl.remove t.channels key
  end;
  if w <> 0 then begin
    t.acc <- Int64.add t.acc (contribution u v w);
    t.nchan <- t.nchan + 1;
    t.wsum <- t.wsum + w;
    Hashtbl.replace t.channels key w
  end;
  { cu = u; cv = v; before; after = w }

let channel_weight t a b =
  let u = min a b and v = max a b in
  match Hashtbl.find_opt t.channels (ck u v) with Some w -> w | None -> 0

let channel_array t =
  let arr = Array.make t.nchan (0, 0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun key w ->
      arr.(!i) <- (ck_u key, ck_v key, w);
      incr i)
    t.channels;
  (* canonical order: channels are unique per (u, v), so endpoint order
     is a total order *)
  Array.sort
    (fun (u1, v1, _) (u2, v2, _) ->
      match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
    arr;
  arr

let materialize t = Graph.of_array ~n:t.n (channel_array t)

let current t =
  match t.memo with
  | Some g -> g
  | None ->
      let g = materialize t in
      t.memo <- Some g;
      g

let of_graph g =
  let t =
    {
      base = g;  (* replaced below by the aggregated representative *)
      channels = Hashtbl.create (max 16 (Graph.m g));
      log_rev = [];
      version = 0;
      n = Graph.n g;
      nchan = 0;
      wsum = 0;
      acc = 0L;
      memo = None;
    }
  in
  Graph.iter_edges
    (fun e ->
      let w0 = channel_weight t e.Graph.u e.Graph.v in
      ignore (set_channel t e.Graph.u e.Graph.v (w0 + e.Graph.w)))
    g;
  t.base <- current t;
  t

let multiset_hash g = digest (of_graph g)

let compact t =
  let g = current t in
  t.base <- g;
  t.log_rev <- [];
  g

let base t = t.base
let log t = List.rev t.log_rev
let version t = t.version
let n t = t.n
let channels t = t.nchan
let total_weight t = t.wsum

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let check_node t name x =
  if x < 0 || x >= t.n then
    Error (Printf.sprintf "%s=%d out of range (n=%d)" name x t.n)
  else Ok ()

let check_pair t u v =
  let* () = check_node t "u" u in
  let* () = check_node t "v" v in
  if u = v then Error (Printf.sprintf "self loop %d-%d" u v) else Ok ()

(* all channels incident to node [x], as (other endpoint, weight) *)
let incident t x =
  Hashtbl.fold
    (fun key w acc ->
      let u = ck_u key and v = ck_v key in
      if u = x then (v, w) :: acc else if v = x then (u, w) :: acc else acc)
    t.channels []

(* move every channel of [from] onto [onto] (merging weights); [from]
   must have none left afterwards.  Used by merge (onto <> from's
   neighbors handled by caller) and by the renumbering step. *)
let move_node_channels t ~from ~onto =
  List.iter
    (fun (x, w) ->
      ignore (set_channel t (min from x) (max from x) 0);
      if x <> onto then
        let prev = channel_weight t onto x in
        ignore (set_channel t (min onto x) (max onto x) (prev + w)))
    (incident t from)

let apply_checked t op =
  match op with
  | Delta.Add_edge { u; v; w } ->
      let* () = check_pair t u v in
      if w < 1 then Error (Printf.sprintf "add weight %d < 1" w)
      else
        let u, v = (min u v, max u v) in
        Ok ([ set_channel t u v (channel_weight t u v + w) ], false)
  | Delta.Remove_edge { u; v } ->
      let* () = check_pair t u v in
      let u, v = (min u v, max u v) in
      if channel_weight t u v = 0 then
        Error (Printf.sprintf "no channel %d-%d to remove" u v)
      else Ok ([ set_channel t u v 0 ], false)
  | Delta.Reweight { u; v; w } ->
      let* () = check_pair t u v in
      if w < 1 then
        Error (Printf.sprintf "reweight to %d < 1 (use remove)" w)
      else
        let u, v = (min u v, max u v) in
        let before = channel_weight t u v in
        if before = 0 then
          Error (Printf.sprintf "no channel %d-%d to reweight" u v)
        else if before = w then Ok ([], false)
        else Ok ([ set_channel t u v w ], false)
  | Delta.Merge_nodes { u; v } ->
      let* () = check_pair t u v in
      if t.n <= 2 then Error "merge would leave fewer than 2 nodes"
      else begin
        (* contract v into u: v's channels re-attach to u (the {u,v}
           channel becomes a self loop and is dropped by the guard in
           move_node_channels), then the last node fills v's slot *)
        move_node_channels t ~from:v ~onto:u;
        let last = t.n - 1 in
        if v <> last then move_node_channels t ~from:last ~onto:v;
        t.n <- t.n - 1;
        Ok ([], true)
      end
  | Delta.Split_node { v; w; moved } ->
      let* () = check_node t "v" v in
      if w < 1 then Error (Printf.sprintf "split bridge weight %d < 1" w)
      else
        let rec dup = function
          | [] -> false
          | x :: rest -> List.exists (Int.equal x) rest || dup rest
        in
        if dup moved then Error "split: duplicate node in moved list"
        else
          let* () =
            List.fold_left
              (fun acc x ->
                let* () = acc in
                let* () = check_node t "moved" x in
                if x = v then Error "split: moved list contains v itself"
                else if channel_weight t v x = 0 then
                  Error (Printf.sprintf "split: no channel %d-%d to move" v x)
                else Ok ())
              (Ok ()) moved
          in
          let fresh = t.n in
          t.n <- t.n + 1;
          List.iter
            (fun x ->
              let wx = channel_weight t v x in
              ignore (set_channel t (min v x) (max v x) 0);
              ignore (set_channel t (min x fresh) (max x fresh) wx))
            moved;
          ignore (set_channel t (min v fresh) (max v fresh) w);
          Ok ([], true)

let apply t op =
  match apply_checked t op with
  | Error _ as e -> e
  | Ok ([], false) -> Ok { version = t.version; changes = []; renumbered = false }
  | Ok (changes, renumbered) ->
      t.version <- t.version + 1;
      t.log_rev <- op :: t.log_rev;
      t.memo <- None;
      Ok { version = t.version; changes; renumbered }
