(** Versioned graph handles: a base snapshot plus an append-only
    {!Delta} log, with an O(1)-per-channel-touch {e rolling} structural
    digest.

    The handle works on the channel view of the graph (parallel edges
    aggregated per node pair — cut-preserving, see {!Delta}); {!of_graph}
    takes that quotient once, so a multigraph and its aggregation open
    identical sessions.  {!current} materializes the canonical
    representative of the live version — channels sorted by endpoints —
    and memoizes it until the next delta; {!compact} rebases the
    snapshot onto that representative and clears the log without
    changing the version, the digest, or anything a solver can observe.

    {b The rolling digest.} The plain cache digest
    ({!Mincut_serve.Graph_key.structural_hash}) is FNV-1a over the
    {e sorted} edge list — order-dependent by construction, so a
    one-channel change would force a full O(m log m) rehash.  The handle
    instead maintains a {e commutative multiset} digest: the mod-2⁶⁴ sum
    of one FNV-1a hash per channel triple, wrapped together with the
    node/channel/weight counts.  Addition commutes, so applying a delta
    only adds/subtracts the touched channels' contributions —
    O(|delta|), never O(m) — and the rolled value equals the
    from-scratch {!multiset_hash} of the compacted graph (a tested
    invariant). *)

type t

type change = {
  cu : int;  (** channel endpoint, [cu < cv] *)
  cv : int;
  before : int;  (** weight before the delta; 0 = channel absent *)
  after : int;  (** weight after; 0 = channel removed *)
}

type outcome = {
  version : int;  (** version after this delta *)
  changes : change list;
      (** channel-level effects, for the incremental certificate; empty
          when [renumbered] (the certificate rebuilds anyway) *)
  renumbered : bool;
      (** a merge/split changed the node-id space: every per-node
          structure derived from the previous version is stale *)
}

val of_graph : Graph.t -> t
(** Open a handle at version 0 on the channel aggregation of [g]. *)

val apply : t -> Delta.op -> (outcome, string) result
(** Apply one delta.  [Error] (malformed endpoints, absent channel, …)
    leaves the handle untouched.  A no-op reweight (same weight)
    succeeds with [changes = []] and does not bump the version. *)

val current : t -> Graph.t
(** The live version's canonical representative (channels sorted by
    endpoints).  Memoized; O(m log m) after a delta, O(1) until the
    next one. *)

val compact : t -> Graph.t
(** Rebase the snapshot onto {!current} and clear the log.  Returns the
    new base.  Observationally invisible: version, digest and
    {!current} are unchanged. *)

val base : t -> Graph.t
val log : t -> Delta.op list
(** Deltas applied since the last {!compact} (or {!of_graph}), oldest
    first. *)

val version : t -> int
val n : t -> int
val channels : t -> int
(** Number of live channels (= edges of {!current}). *)

val total_weight : t -> int
val channel_weight : t -> int -> int -> int
(** Weight of the channel between two nodes, 0 when absent.  Endpoint
    order is irrelevant. *)

val channel_array : t -> (int * int * int) array
(** All channels as sorted [(u, v, w)] triples (a fresh array). *)

val digest : t -> int64
(** The rolled commutative multiset digest of the live version. *)

val multiset_hash : Graph.t -> int64
(** From-scratch digest of a graph's channel aggregation — what
    {!digest} must equal after any delta sequence reaching the same
    structure. *)
