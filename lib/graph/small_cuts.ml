
(* A bridge in the weighted sense must carry weight 1: an edge of weight
   w >= 2 stands for w parallel unit edges, and removing one of them
   leaves the rest. *)
let bridges g =
  List.filter (fun id -> Graph.weight g id = 1) (Bridge.bridges g)

(* Every 2-cut contains at least one edge of any fixed spanning tree
   (removing two non-tree edges leaves the tree intact), so it suffices
   to scan tree edges e and collect the bridges of G − e.  O(n·(n+m)). *)
let cut_pairs g =
  if not (Bfs.is_connected g) then []
  else begin
    let tree_ids = Mst_seq.kruskal g in
    let acc = ref [] in
    List.iter
      (fun e ->
        if Graph.weight g e = 1 then begin
          (* sub_by_edges renumbers; filter preserves order, so the i-th
             kept edge's original id is the i-th kept id *)
          let kept =
            Array.of_list
              (List.filter (fun id -> id <> e)
                 (List.init (Graph.m g) (fun i -> i)))
          in
          let without = Graph.sub_by_edges g ~keep:(fun e' -> e'.Graph.id <> e) in
          List.iter
            (fun f' ->
              let f = kept.(f') in
              if Graph.weight g f = 1 then
                acc := (min e f, max e f) :: !acc)
            (Bridge.bridges without)
        end)
      tree_ids;
    let pairs =
      List.sort_uniq
        (fun (a1, a2) (b1, b2) ->
          match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
        !acc
    in
    (* pairs that include a bridge of G are 1-cuts plus a spectator; keep
       only genuine 2-cuts *)
    let bs = bridges g in
    List.filter (fun (e, f) -> not (List.mem e bs || List.mem f bs)) pairs
  end

(* a weight-2 topological bridge is by itself a cut of value 2 *)
let heavy_bridges g =
  List.filter (fun id -> Graph.weight g id = 2) (Bridge.bridges g)

let edge_connectivity_le2 g =
  if not (Bfs.is_connected g) then Some 0
  else if bridges g <> [] then Some 1
  else if heavy_bridges g <> [] || cut_pairs g <> [] then Some 2
  else None

let cut_pair_side g (e, f) =
  let without = Graph.sub_by_edges g ~keep:(fun e' -> e'.Graph.id <> e && e'.Graph.id <> f) in
  let u, _ = Graph.endpoints g e in
  Bfs.component_of without u
