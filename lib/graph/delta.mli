(** Graph update operations — the vocabulary of the versioned handle.

    A delta mutates the {e channel view} of a graph: parallel edges are
    aggregated into one channel per unordered node pair, so a delta
    addresses an edge by its endpoints alone.  This is cut-preserving
    (every cut sees the summed weight either way) and is the natural
    unit of the update streams the chunked-graph exemplar serves.

    Deltas also travel as text: one op per line in update-stream files
    (`mincut delta --stream FILE`) and as the tail of the serve
    protocol's [DELTA] verb.  {!parse} and {!to_line} are inverses on
    the canonical rendering. *)

type op =
  | Add_edge of { u : int; v : int; w : int }
      (** Add [w >= 1] to the channel [{u,v}], creating it if absent. *)
  | Remove_edge of { u : int; v : int }
      (** Delete the channel [{u,v}] entirely (must exist). *)
  | Reweight of { u : int; v : int; w : int }
      (** Set the channel [{u,v}] (must exist) to weight [w >= 1]. *)
  | Merge_nodes of { u : int; v : int }
      (** Contract [v] into [u]: [v]'s channels move to [u] (weights of
          now-parallel channels sum), the [{u,v}] channel becomes a self
          loop and is dropped.  The node-id space shrinks by one: the
          previous last node is renumbered to fill [v]'s slot. *)
  | Split_node of { v : int; w : int; moved : int list }
      (** Detach a new node (id = previous node count) from [v]: every
          channel [{v,x}] with [x] in [moved] is re-attached to the new
          node, and a fresh channel of weight [w >= 1] joins [v] to it —
          so a connected graph stays connected. *)

val pp : Format.formatter -> op -> unit

val to_line : op -> string
(** Canonical one-line rendering:
    [add u v w] / [remove u v] / [reweight u v w] / [merge u v] /
    [split v w x1,x2,...] (a lone [-] for an empty [moved] list). *)

val parse : string -> (op, string) result
(** Parse one line ([#] starts a comment; blank lines are an error —
    callers skip them).  Accepts exactly the {!to_line} grammar. *)

val parse_tokens : string list -> (op, string) result
(** {!parse} on pre-split whitespace tokens (the serve protocol's
    [DELTA <name> <tokens...>] tail). *)

val read_stream : string -> (op list, string) result
(** Parse an update-stream file: one op per line, [#] comments and
    blank lines ignored.  The error names the offending line. *)
