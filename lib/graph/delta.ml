type op =
  | Add_edge of { u : int; v : int; w : int }
  | Remove_edge of { u : int; v : int }
  | Reweight of { u : int; v : int; w : int }
  | Merge_nodes of { u : int; v : int }
  | Split_node of { v : int; w : int; moved : int list }

let to_line = function
  | Add_edge { u; v; w } -> Printf.sprintf "add %d %d %d" u v w
  | Remove_edge { u; v } -> Printf.sprintf "remove %d %d" u v
  | Reweight { u; v; w } -> Printf.sprintf "reweight %d %d %d" u v w
  | Merge_nodes { u; v } -> Printf.sprintf "merge %d %d" u v
  | Split_node { v; w; moved } ->
      Printf.sprintf "split %d %d %s" v w
        (match moved with
        | [] -> "-"
        | xs -> String.concat "," (List.map string_of_int xs))

let pp fmt op = Format.pp_print_string fmt (to_line op)

let int_tok name s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let parse_moved s =
  if s = "-" then Ok []
  else
    let parts = String.split_on_char ',' s |> List.filter (fun p -> p <> "") in
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* x = int_tok "split moved node" p in
        Ok (x :: acc))
      (Ok []) parts
    |> Result.map List.rev

let parse_tokens toks =
  match List.map String.lowercase_ascii toks with
  | [ "add"; u; v; w ] ->
      let* u = int_tok "u" u in
      let* v = int_tok "v" v in
      let* w = int_tok "w" w in
      Ok (Add_edge { u; v; w })
  | [ "remove"; u; v ] ->
      let* u = int_tok "u" u in
      let* v = int_tok "v" v in
      Ok (Remove_edge { u; v })
  | [ "reweight"; u; v; w ] ->
      let* u = int_tok "u" u in
      let* v = int_tok "v" v in
      let* w = int_tok "w" w in
      Ok (Reweight { u; v; w })
  | [ "merge"; u; v ] ->
      let* u = int_tok "u" u in
      let* v = int_tok "v" v in
      Ok (Merge_nodes { u; v })
  | [ "split"; v; w; moved ] ->
      let* v = int_tok "v" v in
      let* w = int_tok "w" w in
      let* moved = parse_moved moved in
      Ok (Split_node { v; w; moved })
  | [ "split"; v; w ] ->
      let* v = int_tok "v" v in
      let* w = int_tok "w" w in
      Ok (Split_node { v; w; moved = [] })
  | verb :: _ ->
      Error
        (Printf.sprintf
           "unknown or malformed delta op %S (expected add/remove/reweight/merge/split)"
           verb)
  | [] -> Error "empty delta op"

let parse line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  parse_tokens (String.split_on_char ' ' line |> List.filter (fun s -> s <> ""))

let read_stream path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines ->
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            let body =
              match String.index_opt line '#' with
              | Some i -> String.sub line 0 i
              | None -> line
            in
            if String.trim body = "" then go (lineno + 1) acc rest
            else
              match parse body with
              | Ok op -> go (lineno + 1) (op :: acc) rest
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      go 1 [] lines
