type scan = { order : int array; edge_low : int array }

let scan g =
  let n = Graph.n g in
  let r = Array.make n 0 in
  let scanned = Array.make n false in
  let edge_low = Array.make (Graph.m g) 0 in
  let order = Array.make n (-1) in
  (* lazy max-heap of (key, vertex) *)
  let heap =
    Mincut_util.Heap.create ~cmp:(fun (k1, v1) (k2, v2) ->
        match Int.compare k2 k1 with 0 -> Int.compare v1 v2 | c -> c)
  in
  for v = 0 to n - 1 do
    Mincut_util.Heap.push heap (0, v)
  done;
  let idx = ref 0 in
  let rec pop () =
    match Mincut_util.Heap.pop heap with
    | None -> None
    | Some (key, v) ->
        if scanned.(v) || key <> r.(v) then pop () (* stale entry *) else Some v
  in
  let rec drain () =
    match pop () with
    | None -> ()
    | Some u ->
        scanned.(u) <- true;
        order.(!idx) <- u;
        incr idx;
        Array.iter
          (fun (v, id) ->
            if not scanned.(v) then begin
              edge_low.(id) <- r.(v) + 1;
              r.(v) <- r.(v) + Graph.weight g id;
              Mincut_util.Heap.push heap (r.(v), v)
            end)
          (Graph.adj g u);
        drain ()
  in
  drain ();
  { order; edge_low }

let certificate g ~k =
  let { edge_low; _ } = scan g in
  Graph.reweight g ~f:(fun e -> min e.w (k - edge_low.(e.id) + 1))

let contract_above g ~k =
  let { edge_low; _ } = scan g in
  let n = Graph.n g in
  let uf = Union_find.create n in
  Graph.iter_edges
    (fun e -> if edge_low.(e.id) > k then ignore (Union_find.union uf e.u e.v))
    g;
  (* renumber representatives densely *)
  let map = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let rv = Union_find.find uf v in
    if map.(rv) = -1 then begin
      map.(rv) <- !next;
      incr next
    end;
    map.(v) <- map.(rv)
  done;
  let triples = ref [] in
  Graph.iter_edges
    (fun e ->
      let u = map.(e.u) and v = map.(e.v) in
      if u <> v then triples := (u, v, e.w) :: !triples)
    g;
  (Graph.create ~n:!next !triples, map)
