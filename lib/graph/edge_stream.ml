module Rng = Mincut_util.Rng

let gnp ~rng ~n ~p ~weight ~emit =
  if n < 1 || p < 0.0 || p > 1.0 then invalid_arg "Edge_stream.gnp: bad n or p";
  if p > 0.0 then begin
    (* Enumerate the C(n,2) potential edges implicitly and jump between
       successes with geometric skips; identical draw order to the
       materializing [Generators.gnp]. *)
    let total = n * (n - 1) / 2 in
    let pos = ref (-1) in
    let unrank k =
      (* invert k = u*n - u*(u+1)/2 + (v - u - 1); linear scan per row kept
         amortized O(1) by carrying the row start *)
      let rec find u start =
        let row = n - 1 - u in
        if k < start + row then (u, u + 1 + (k - start)) else find (u + 1) (start + row)
      in
      find 0 0
    in
    let continue = ref true in
    while !continue do
      let skip = if p >= 1.0 then 0 else Rng.geometric rng p in
      pos := !pos + 1 + skip;
      if !pos >= total then continue := false
      else begin
        let u, v = unrank !pos in
        emit u v (weight ())
      end
    done
  end

let torus ~rows ~cols ~weight ~emit =
  if rows < 3 || cols < 3 then invalid_arg "Edge_stream.torus: need rows, cols >= 3";
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      emit (id r c) (id r ((c + 1) mod cols)) (weight ());
      emit (id r c) (id ((r + 1) mod rows) c) (weight ())
    done
  done
