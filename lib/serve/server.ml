module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Handle = Mincut_graph.Handle
module Rng = Mincut_util.Rng
module Hash = Mincut_util.Hash
module Api = Mincut_core.Api
module Incremental = Mincut_core.Incremental

type io = {
  read_line : unit -> string option;
  write_line : string -> unit;
}

let io_of_channels ic oc =
  {
    read_line = (fun () -> In_channel.input_line ic);
    write_line =
      (fun s ->
        Out_channel.output_string oc s;
        Out_channel.output_char oc '\n';
        Out_channel.flush oc);
  }

type exit_reason = Quit | Shutdown | Eof

type session = {
  service : Service.t;
  io : io;
  named : (string, Graph.t) Hashtbl.t;
  tickets : (Scheduler.ticket, unit) Hashtbl.t;  (* outstanding SUBMITs *)
}

let err session fmt = Printf.ksprintf (fun s -> session.io.write_line ("ERR " ^ s)) fmt

(* Read the m edge lines following a GRAPH header.  On a malformed edge
   the remaining announced lines are still consumed, so the client and
   server never disagree about where the edge list ends. *)
let read_graph_def session ~name ~n ~m =
  let triples = Array.make m (0, 0, 0) in
  let rec read i =
    if i = m then Ok ()
    else
      match session.io.read_line () with
      | None -> Error "end of input inside GRAPH edge list"
      | Some line -> (
          let bad () =
            let e = Error (Printf.sprintf "edge %d: expected 'u v w'" i) in
            (* drain the rest of the announced payload *)
            let rec drain j =
              if j < m then
                match session.io.read_line () with
                | None -> ()
                | Some _ -> drain (j + 1)
            in
            drain (i + 1);
            e
          in
          match
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          with
          | [ u; v; w ] -> (
              match
                (int_of_string_opt u, int_of_string_opt v, int_of_string_opt w)
              with
              | Some u, Some v, Some w ->
                  triples.(i) <- (u, v, w);
                  read (i + 1)
              | _ -> bad ())
          | _ -> bad ())
  in
  match read 0 with
  | Error e -> Error e
  | Ok () -> (
      match Graph.of_array ~n triples with
      | g ->
          Hashtbl.replace session.named name g;
          Ok g
      | exception Invalid_argument msg -> Error msg)

let resolve_source session (src : Protocol.source) =
  match src with
  | Protocol.Named name -> (
      match Hashtbl.find_opt session.named name with
      | Some g -> Ok g
      | None -> Error (Printf.sprintf "unknown graph %S (register with GRAPH)" name))
  | Protocol.Family { family; size; gseed; weight_max } ->
      let rng = Rng.create gseed in
      let weights =
        if weight_max <= 1 then None
        else Some { Generators.wmin = 1; wmax = weight_max }
      in
      Generators.by_name ~rng ?weights ~name:family ~size ()
  | Protocol.Session name -> (
      (* a session source outside SOLVE means "the session's current
         graph", snapshotted now *)
      match Service.find_session session.service name with
      | Ok s -> Ok (Api.session_graph s)
      | Error _ as e -> e)

let request_of_args session (a : Protocol.solve_args) =
  match resolve_source session a.Protocol.source with
  | Error e -> Error e
  | Ok g ->
      let deadline =
        Option.map
          (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0))
          a.Protocol.deadline_ms
      in
      Ok
        (Request.make ~algorithm:a.Protocol.algorithm ~seed:a.Protocol.seed
           ?trees:a.Protocol.trees ~priority:a.Protocol.priority ?deadline g)

let handle_command session cmd =
  let io = session.io in
  match cmd with
  | Protocol.Nop -> None
  | Protocol.Ping ->
      io.write_line "PONG";
      None
  | Protocol.Help ->
      List.iter io.write_line Protocol.help_lines;
      None
  | Protocol.Quit ->
      io.write_line "BYE";
      Some Quit
  | Protocol.Shutdown ->
      io.write_line "BYE";
      Some Shutdown
  | Protocol.Stats ->
      (match
         "STATS "
         ^ Json.to_string (Metrics.to_json (Service.snapshot session.service))
       with
      | line -> io.write_line line
      | exception e -> err session "stats failed: %s" (Printexc.to_string e));
      None
  | Protocol.Graph_def { name; n; m } ->
      (match read_graph_def session ~name ~n ~m with
      | Ok g ->
          io.write_line
            (Printf.sprintf "OK graph %s n=%d m=%d hash=%s" name (Graph.n g)
               (Graph.m g)
               (Mincut_util.Hash.to_hex (Graph_key.structural_hash g)))
      | Error e -> err session "GRAPH %s: %s" name e);
      None
  | Protocol.Solve ({ source = Protocol.Session sname; _ } as args) ->
      (match
         Service.session_solve session.service sname
           ~algorithm:args.Protocol.algorithm ~seed:args.Protocol.seed
           ~trees:args.Protocol.trees
       with
      | Ok resp -> io.write_line ("OK " ^ Protocol.format_response resp)
      | Error e -> err session "%s" e
      | exception e -> err session "solve failed: %s" (Printexc.to_string e));
      None
  | Protocol.Solve args ->
      (match request_of_args session args with
      | Error e -> err session "%s" e
      | exception e -> err session "solve failed: %s" (Printexc.to_string e)
      | Ok req -> (
          match Service.solve session.service req with
          | resp -> io.write_line ("OK " ^ Protocol.format_response resp)
          | exception e -> err session "solve failed: %s" (Printexc.to_string e)));
      None
  | Protocol.Estimate { esource; eseed; etrials } ->
      (match resolve_source session esource with
      | Error e -> err session "%s" e
      | exception e -> err session "estimate failed: %s" (Printexc.to_string e)
      | Ok g -> (
          match Service.estimate session.service ~seed:eseed ?trials:etrials g with
          | r, elapsed_ms ->
              io.write_line ("OK " ^ Protocol.format_estimate ~elapsed_ms r)
          | exception e -> err session "estimate failed: %s" (Printexc.to_string e)));
      None
  | Protocol.Submit args ->
      (match request_of_args session args with
      | Error e -> err session "%s" e
      | exception e -> err session "submit failed: %s" (Printexc.to_string e)
      | Ok req -> (
          match Service.submit session.service req with
          | ticket ->
              Hashtbl.replace session.tickets ticket ();
              io.write_line (Printf.sprintf "QUEUED %d" ticket)
          | exception e ->
              err session "submit failed: %s" (Printexc.to_string e)));
      None
  | Protocol.Session_open { sname; ssource } ->
      (match resolve_source session ssource with
      | Error e -> err session "SESSION %s: %s" sname e
      | exception e ->
          err session "SESSION %s: %s" sname (Printexc.to_string e)
      | Ok g -> (
          match
            let s = Service.session_open session.service sname g in
            let h = Api.session_handle s in
            Printf.sprintf "OK session %s n=%d channels=%d lambda=%d hash=%s"
              sname (Handle.n h) (Handle.channels h) (Api.session_lambda s)
              (Hash.to_hex (Handle.digest h))
          with
          | line -> io.write_line line
          | exception e ->
              err session "SESSION %s: %s" sname (Printexc.to_string e)));
      None
  | Protocol.Delta_op { sname; dop } ->
      (match Service.session_delta session.service sname dop with
      | Error e -> err session "DELTA %s: %s" sname e
      | exception e -> err session "DELTA %s: %s" sname (Printexc.to_string e)
      | Ok (s, outcome, answer) ->
          let h = Api.session_handle s in
          io.write_line
            (Printf.sprintf
               "OK delta %s version=%d lambda=%d mode=%s n=%d channels=%d hash=%s"
               sname outcome.Handle.version answer.Api.lambda
               (Incremental.mode_name answer.Api.mode)
               (Handle.n h) (Handle.channels h)
               (Hash.to_hex (Handle.digest h))));
      None
  | Protocol.Compact sname ->
      (match Service.session_compact session.service sname with
      | Error e -> err session "COMPACT %s: %s" sname e
      | exception e -> err session "COMPACT %s: %s" sname (Printexc.to_string e)
      | Ok s ->
          let h = Api.session_handle s in
          io.write_line
            (Printf.sprintf "OK compact %s version=%d channels=%d hash=%s" sname
               (Handle.version h) (Handle.channels h)
               (Hash.to_hex (Handle.digest h))));
      None
  | Protocol.Flush ->
      (match Service.flush session.service with
      | { Service.answered; shed } ->
          List.iter
            (fun ticket ->
              Hashtbl.remove session.tickets ticket;
              io.write_line (Printf.sprintf "SHED %d" ticket))
            shed;
          List.iter
            (fun (ticket, resp) ->
              Hashtbl.remove session.tickets ticket;
              io.write_line
                (Printf.sprintf "RESULT %d %s" ticket (Protocol.format_response resp)))
            answered;
          io.write_line (Printf.sprintf "DONE %d" (List.length answered))
      | exception e -> err session "flush failed: %s" (Printexc.to_string e));
      None

let run service io =
  let session =
    { service; io; named = Hashtbl.create 8; tickets = Hashtbl.create 8 }
  in
  let rec loop () =
    match io.read_line () with
    | None -> Eof
    | Some line -> (
        match Protocol.parse line with
        | Error e ->
            err session "%s" e;
            loop ()
        | Ok cmd -> (
            match handle_command session cmd with
            | Some reason -> reason
            | None -> loop ()))
  in
  loop ()

let run_stdio service = ignore (run service (io_of_channels stdin stdout))

let run_socket service ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let client, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        let reason =
          Fun.protect
            ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
            (fun () -> run service (io_of_channels ic oc))
        in
        match reason with Shutdown -> () | Quit | Eof -> accept_loop ()
      in
      accept_loop ())
