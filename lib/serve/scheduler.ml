module Lockcheck = Mincut_analysis.Lockcheck

type ticket = int

type entry = { ticket : ticket; request : Request.t; key : string }

type t = {
  key_of : Request.t -> string;
  lock : Lockcheck.t;  (* rank 10: acquired before the cache's (20) *)
  mutable next_ticket : int;
  mutable entries : entry list;  (* reverse submission order *)
}

let create ~key () =
  {
    key_of = key;
    lock = Lockcheck.create ~name:"serve.scheduler" ~order:10 ();
    next_ticket = 0;
    entries = [];
  }

let submit t request =
  Lockcheck.with_lock t.lock (fun () ->
      let ticket = t.next_ticket in
      t.next_ticket <- ticket + 1;
      t.entries <- { ticket; request; key = t.key_of request } :: t.entries;
      ticket)

let pending t = Lockcheck.with_lock t.lock (fun () -> List.length t.entries)

let depth t =
  Lockcheck.with_lock t.lock (fun () ->
      let keys = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace keys e.key ()) t.entries;
      Hashtbl.length keys)

let drain t =
  let entries =
    Lockcheck.with_lock t.lock (fun () ->
        let entries = List.rev t.entries in
        t.entries <- [];
        entries)
  in
  (* group by key, keeping submission order within each group; pure
     post-processing on the drained snapshot, outside the lock *)
  let groups : (string, entry list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt groups e.key with
      | Some cell -> cell := e :: !cell
      | None ->
          Hashtbl.add groups e.key (ref [ e ]);
          order := e.key :: !order)
    entries;
  let batches =
    List.rev_map
      (fun key ->
        let members = List.rev !(Hashtbl.find groups key) in
        (* representative: best member under the scheduling order *)
        let best =
          List.fold_left
            (fun acc e ->
              if Request.compare_order (e.ticket, e.request) acc < 0 then
                (e.ticket, e.request)
              else acc)
            (let e = List.hd members in
             (e.ticket, e.request))
            (List.tl members)
        in
        (best, List.map (fun e -> (e.ticket, e.request)) members))
      !order
  in
  batches
  |> List.sort (fun (a, _) (b, _) -> Request.compare_order a b)
  |> List.map (fun ((_, request), members) -> (members, request))
