(** Solve requests and responses — the unit of work the service accepts.

    A request pairs a graph with the algorithm selection that
    [Mincut_core.Api.min_cut] takes, plus scheduling attributes:
    [priority] (higher runs first) and an optional [deadline] (an
    absolute [Unix.gettimeofday]-style timestamp; earlier deadlines run
    first within a priority class, and completions past their deadline
    are counted in the metrics but still answered). *)

type t = {
  graph : Mincut_graph.Graph.t;
  algorithm : Mincut_core.Api.algorithm;
  seed : int;
  trees : int option;
  priority : int;
  deadline : float option;
}

val make :
  ?algorithm:Mincut_core.Api.algorithm ->
  ?seed:int ->
  ?trees:int ->
  ?priority:int ->
  ?deadline:float ->
  Mincut_graph.Graph.t ->
  t
(** Defaults mirror [Api.min_cut]: exact algorithm, seed 0, packing
    budget from params, priority 0, no deadline. *)

type response = {
  summary : Mincut_core.Api.summary;
  cached : bool;       (** answered from the result cache *)
  key : string;        (** content-addressed cache key *)
  elapsed_ms : float;  (** service-side wall time for this answer *)
}

val compare_order : (int * t) -> (int * t) -> int
(** Scheduling order on [(sequence, request)] pairs: priority descending,
    then deadline ascending (absent = +∞), then submission sequence —
    a total order, so batches are deterministic. *)
