(** Front-end loops speaking {!Protocol} over abstract line IO.

    The core loop {!run} is IO-agnostic (a [read_line]/[write_line]
    pair), so tests drive it with in-memory scripts and the CLI wraps
    stdio or a Unix-domain socket around the very same code path. *)

type io = {
  read_line : unit -> string option;  (** [None] = end of stream *)
  write_line : string -> unit;        (** must append its own newline *)
}

val io_of_channels : in_channel -> out_channel -> io
(** Flushes the output channel after every line so interactive clients
    see responses immediately. *)

type exit_reason = Quit | Shutdown | Eof

val run : Service.t -> io -> exit_reason
(** Serve one session until [QUIT], [SHUTDOWN] or end of input.
    Per-request solver errors (bad family name, disconnected graph, …)
    are reported as [ERR] lines and never abort the session.  Named
    graphs registered with [GRAPH] live for the session. *)

val run_stdio : Service.t -> unit
(** [run] over stdin/stdout. *)

val run_socket : Service.t -> path:string -> unit
(** Listen on a Unix-domain socket at [path] (unlinking a stale one),
    serving clients one at a time — the service is single-domain by
    design; concurrency lives in the worker pool, not in client
    multiplexing — until a client sends [SHUTDOWN].  Removes the socket
    file on exit. *)
