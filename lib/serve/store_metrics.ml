let instruments m =
  let hits = Metrics.counter m "store.chunk_hits" in
  let misses = Metrics.counter m "store.chunk_misses" in
  let evictions = Metrics.counter m "store.chunk_evictions" in
  let resident = Metrics.gauge m "store.bytes_resident" in
  {
    Mincut_store.Residency.on_hit = (fun () -> Metrics.incr hits);
    on_miss = (fun () -> Metrics.incr misses);
    on_eviction = (fun () -> Metrics.incr evictions);
    on_bytes_resident = (fun b -> Metrics.set resident (float_of_int b));
  }
