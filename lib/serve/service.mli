(** The solver service: one long-lived value owning the result cache,
    the request scheduler, the worker pool and the metrics registry.

    Two entry points:

    - {!solve}: synchronous — answer one request now, through the cache.
    - {!submit} + {!flush}: batched — accumulate requests, then drain
      them as coalesced batches; distinct batches run concurrently on
      the worker pool, duplicates are answered from the one solve.

    {b Semantics.} Every request is answered as if by
    [Api.min_cut ~params ~algorithm ~seed ?trees (canonical graph)],
    where the canonical graph is {!Graph_key.canonicalize} of the
    submitted one.  Fixing the canonical representative makes the full
    summary a pure function of the cache key, so a cache hit is
    bit-identical — value, side, rounds, breakdown — to what a fresh
    solve of the same request would return, and memoization can never
    change the CONGEST round accounting a client observes: the cached
    [rounds] {e is} the charge of the simulation that produced the
    entry, replayed verbatim.

    The service itself is single-domain (confine a [t] to one domain);
    only the pure per-batch solves inside {!flush} run on other domains,
    each on its own graph copy. *)

type config = {
  params : Mincut_core.Params.t;  (** round-accounting regime for all solves *)
  cache_entries : int;            (** LRU bound: resident entries *)
  cache_cost : int;               (** LRU bound: total cost in words *)
  workers : int;                  (** worker pool width; 1 = sequential *)
}

val default_config : config
(** [Params.fast], 4096 entries, 16M words, pool default width. *)

type t

val create : ?config:config -> unit -> t

val config : t -> config

val key_of_request : t -> Request.t -> string
(** The content-addressed cache key this service assigns (algorithm,
    seed, trees, params and structural graph digest). *)

val solve : t -> Request.t -> Request.response

val estimate :
  t ->
  ?seed:int ->
  ?trials:int ->
  Mincut_graph.Graph.t ->
  Mincut_core.Sample_estimate.result * float
(** The cheap tier: {!Mincut_core.Api.estimate} on the canonicalized
    graph — an [O(log n)]-factor bracket on λ from the geometric
    sampling ladder, never a full solve.  Returns the result and the
    wall-clock milliseconds spent.  Charged to the [estimates_served] /
    [rounds_estimate] counters and the [estimate_ms] histogram, keeping
    solve round-accounting untouched; results are not cached (a ladder
    re-run is cheaper than a summary-cache entry). *)

val submit : t -> Request.t -> Scheduler.ticket

val pending : t -> int

type flush_result = {
  answered : (Scheduler.ticket * Request.response) list;
      (** in ticket order *)
  shed : Scheduler.ticket list;
      (** tickets whose deadline had already passed at drain time and
          whose answer was not in the cache — dropped {e before} any
          solve ran (a cache hit is free, so expired tickets that hit
          are answered anyway).  Counted by [requests_shed]. *)
}

val flush : t -> flush_result
(** Drain and answer everything pending.  [cached] is true for
    responses answered from an entry that existed before this flush;
    members of a freshly solved batch (including coalesced duplicates)
    report [cached = false] and the duplicates are counted by the
    [requests_coalesced] counter.  Queued work whose deadline expired
    before its solve started is shed, never solved. *)

(** {2 Incremental sessions}

    Named mutable graph sessions ({!Mincut_core.Api.session}: versioned
    handle + live NI certificate), owned by the service so every client
    of a shared server sees the same evolving graphs.  Session solves go
    through the {e same} summary cache as one-shot solves, but under
    {!Graph_key.versioned_key} — the handle's rolled digest — so a delta
    chain returning to a previously seen structure hits the entry cached
    at the earlier version, and compaction (digest-preserving) never
    invalidates anything.

    Counters: [deltas_applied]; [incremental_hits] (answers that needed
    no full solve: tier-1/2 delta answers, anchored summaries,
    version-chain cache hits); [full_resolves] (tier-3 delta answers:
    certificate rebuilt); [sessions_open] gauge. *)

val session_open : t -> string -> Mincut_graph.Graph.t -> Mincut_core.Api.session
(** Open (or replace) the named session at version 0 of the graph,
    solving λ eagerly.  Uses the service's configured [params]. *)

val find_session : t -> string -> (Mincut_core.Api.session, string) result

val session_delta :
  t ->
  string ->
  Mincut_graph.Delta.op ->
  ( Mincut_core.Api.session
    * Mincut_graph.Handle.outcome
    * Mincut_core.Api.delta_answer,
    string )
  result
(** Apply one delta to the named session and answer λ through the
    cheapest valid tier.  [Error] (unknown session or rejected delta)
    changes nothing. *)

val session_compact : t -> string -> (Mincut_core.Api.session, string) result
(** Rebase the named session's handle; observationally invisible
    (version, digest, certificate, anchors all survive). *)

val session_solve :
  t ->
  string ->
  algorithm:Mincut_core.Api.algorithm ->
  seed:int ->
  trees:int option ->
  (Request.response, string) result
(** Full summary of the named session's live version.  [cached] is true
    when no solve ran: a version-chain cache hit or an anchored summary
    (the certificate proved the previous answer still optimal).  Misses
    solve with [lambda_upper] seeded from the certificate's exact λ and
    populate the cache under the live version's key. *)

val metrics : t -> Metrics.t

val snapshot : t -> Metrics.snapshot
(** Metrics snapshot with cache/queue gauges refreshed first. *)

val cache_length : t -> int
val cache_hits : t -> int
val cache_misses : t -> int
