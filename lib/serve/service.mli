(** The solver service: one long-lived value owning the result cache,
    the request scheduler, the worker pool and the metrics registry.

    Two entry points:

    - {!solve}: synchronous — answer one request now, through the cache.
    - {!submit} + {!flush}: batched — accumulate requests, then drain
      them as coalesced batches; distinct batches run concurrently on
      the worker pool, duplicates are answered from the one solve.

    {b Semantics.} Every request is answered as if by
    [Api.min_cut ~params ~algorithm ~seed ?trees (canonical graph)],
    where the canonical graph is {!Graph_key.canonicalize} of the
    submitted one.  Fixing the canonical representative makes the full
    summary a pure function of the cache key, so a cache hit is
    bit-identical — value, side, rounds, breakdown — to what a fresh
    solve of the same request would return, and memoization can never
    change the CONGEST round accounting a client observes: the cached
    [rounds] {e is} the charge of the simulation that produced the
    entry, replayed verbatim.

    The service itself is single-domain (confine a [t] to one domain);
    only the pure per-batch solves inside {!flush} run on other domains,
    each on its own graph copy. *)

type config = {
  params : Mincut_core.Params.t;  (** round-accounting regime for all solves *)
  cache_entries : int;            (** LRU bound: resident entries *)
  cache_cost : int;               (** LRU bound: total cost in words *)
  workers : int;                  (** worker pool width; 1 = sequential *)
}

val default_config : config
(** [Params.fast], 4096 entries, 16M words, pool default width. *)

type t

val create : ?config:config -> unit -> t

val config : t -> config

val key_of_request : t -> Request.t -> string
(** The content-addressed cache key this service assigns (algorithm,
    seed, trees, params and structural graph digest). *)

val solve : t -> Request.t -> Request.response

val estimate :
  t ->
  ?seed:int ->
  ?trials:int ->
  Mincut_graph.Graph.t ->
  Mincut_core.Sample_estimate.result * float
(** The cheap tier: {!Mincut_core.Api.estimate} on the canonicalized
    graph — an [O(log n)]-factor bracket on λ from the geometric
    sampling ladder, never a full solve.  Returns the result and the
    wall-clock milliseconds spent.  Charged to the [estimates_served] /
    [rounds_estimate] counters and the [estimate_ms] histogram, keeping
    solve round-accounting untouched; results are not cached (a ladder
    re-run is cheaper than a summary-cache entry). *)

val submit : t -> Request.t -> Scheduler.ticket

val pending : t -> int

val flush : t -> (Scheduler.ticket * Request.response) list
(** Drain and answer everything pending, in ticket order.  [cached] is
    true for responses answered from an entry that existed before this
    flush; members of a freshly solved batch (including coalesced
    duplicates) report [cached = false] and the duplicates are counted
    by the [requests_coalesced] counter. *)

val metrics : t -> Metrics.t

val snapshot : t -> Metrics.snapshot
(** Metrics snapshot with cache/queue gauges refreshed first. *)

val cache_length : t -> int
val cache_hits : t -> int
val cache_misses : t -> int
