(** Bounded content-addressed cache with LRU eviction.

    Maps string keys (see {!Graph_key}) to values, evicting the least
    recently used entries when either bound is exceeded:

    - [max_entries]: number of resident entries;
    - [max_cost]: total of a caller-supplied per-value cost (the serving
      layer charges roughly the summary's footprint in words, so a cache
      of huge cut sides cannot grow without bound even when the entry
      count is small).

    Lookup, insert and eviction are O(1) (hash table + intrusive
    doubly-linked recency list).  Every operation holds the cache's
    rank-20 {!Mincut_analysis.Lockcheck} mutex (above the scheduler's
    rank 10, below metrics' rank 30 in the serving layer's lock order),
    so concurrent domains may share one cache and the lock-discipline
    checker audits every acquisition at test time. *)

type 'v t

val create : ?max_entries:int -> ?max_cost:int -> cost:('v -> int) -> unit -> 'v t
(** [create ~cost ()] makes an empty cache.  Defaults: [max_entries] 4096,
    [max_cost] 16_777_216 (16M cost units).  A single value costlier than
    [max_cost] is admitted alone and evicted at the next insert.
    Raises [Invalid_argument] if a bound is not positive. *)

val find : 'v t -> string -> 'v option
(** [find t k] returns the cached value and marks it most recently used.
    Increments the hit or miss counter. *)

val peek : 'v t -> string -> 'v option
(** Like [find] but touches neither recency order nor counters (for
    introspection and tests). *)

val add : 'v t -> string -> 'v -> unit
(** Insert or replace, making the entry most recently used, then evict
    from the LRU end until both bounds hold. *)

val mem : 'v t -> string -> bool
val length : 'v t -> int

val total_cost : 'v t -> int
(** Sum of [cost v] over resident values. *)

val hits : 'v t -> int
val misses : 'v t -> int
val evictions : 'v t -> int
val clear : 'v t -> unit

val keys_mru_first : 'v t -> string list
(** Resident keys from most to least recently used (test hook for
    asserting eviction order). *)
