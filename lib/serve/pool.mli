(** Worker pool: data-parallel map over OCaml 5 domains.

    [map] fans an array of independent jobs over [workers] domains and
    returns results in input order.  Jobs must be self-contained — the
    service hands each worker its own graph copy and derives RNG state
    from the per-request seed, so nothing mutable is shared; the pool
    itself shares only an atomic next-job counter and the (disjointly
    indexed) result slots.

    With [workers = 1] (or single-element inputs) no domain is spawned
    and the map degrades to a plain sequential loop — the fallback for
    runtimes or deployments where spawning domains is undesirable.
    Domains are spawned per [map] call and joined before it returns;
    at service batch granularity (many CONGEST simulations per call)
    spawn cost is noise. *)

type t

val create : ?workers:int -> unit -> t
(** Default worker count: [Domain.recommended_domain_count], capped at 8
    (the simulator is memory-bandwidth-hungry; more domains than memory
    channels buys nothing).  Values < 1 are clamped to 1. *)

val workers : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f jobs] applies [f] to every job.  If any application raises,
    the remaining jobs still run, every domain is joined, and the first
    (lowest-index) exception is re-raised in the calling domain. *)
