(** Re-export of the shared parallel runtime's pool.

    The implementation lives in {!Mincut_parallel.Pool} (promoted out of
    the serving layer so the exact/approx pipelines can fan their
    per-tree DP instances and per-skeleton trials over the same
    domains).  This alias preserves the historical [Mincut_serve.Pool]
    path; [Mincut_serve.Pool.t] {e is} [Mincut_parallel.Pool.t]. *)

include module type of struct
  include Mincut_parallel.Pool
end
