(* The worker pool was promoted to the shared parallel runtime so the
   core pipelines can fan out too; this alias keeps the historical
   [Mincut_serve.Pool] path (and its type equalities) working. *)
include Mincut_parallel.Pool
