(** Request scheduler: priority/deadline ordering plus coalescing.

    Submissions accumulate in a pending set; draining produces
    {e batches}.  A batch is all pending requests that share one cache
    key (same structural graph, algorithm, seed, …): the service solves
    the representative once and answers every ticket in the batch — the
    "batching identical-family workloads" the serving layer promises, and
    the reason a flood of duplicate queries costs one CONGEST simulation.

    Batches come out in scheduling order of their {e best} member
    (priority descending, deadline ascending, submission order; see
    {!Request.compare_order}), so a duplicate of an urgent request cannot
    be delayed by having first been submitted with low priority.

    The scheduler never runs anything itself; it is a pure queueing
    structure driven by {!Service}.  Its mutable state is guarded by the
    serving layer's rank-10 {!Mincut_analysis.Lockcheck} mutex — first
    in the scheduler < cache < metrics lock order — so submissions may
    arrive from any domain. *)

type ticket = int
(** Handle identifying one submission within this scheduler. *)

type t

val create : key:(Request.t -> string) -> unit -> t
(** [key] assigns each request its coalescing class — the service passes
    its cache-key function. *)

val submit : t -> Request.t -> ticket
(** Enqueue; tickets are dense and increasing in submission order. *)

val pending : t -> int
(** Number of undrained tickets. *)

val depth : t -> int
(** Number of distinct batches currently pending (≤ [pending t]). *)

val drain : t -> ((ticket * Request.t) list * Request.t) list
(** Remove and return all pending work as coalesced batches in
    scheduling order.  Each batch lists its members in submission order
    (each ticket with the request it was submitted with — members keep
    their own deadlines, which is what lets the service shed expired
    tickets individually) together with the representative request (the
    best-ordered member).  The scheduler is empty afterwards. *)
