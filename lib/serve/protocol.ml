module Api = Mincut_core.Api
module Delta = Mincut_graph.Delta

type source =
  | Named of string
  | Family of { family : string; size : int; gseed : int; weight_max : int }
  | Session of string

type solve_args = {
  source : source;
  algorithm : Api.algorithm;
  seed : int;
  trees : int option;
  priority : int;
  deadline_ms : float option;
}

type estimate_args = { esource : source; eseed : int; etrials : int option }

type command =
  | Graph_def of { name : string; n : int; m : int }
  | Solve of solve_args
  | Submit of solve_args
  | Estimate of estimate_args
  | Session_open of { sname : string; ssource : source }
  | Delta_op of { sname : string; dop : Delta.op }
  | Compact of string
  | Flush
  | Stats
  | Ping
  | Help
  | Quit
  | Shutdown
  | Nop

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let kv_args toks =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      match String.index_opt tok '=' with
      | Some i ->
          let k = String.sub tok 0 i in
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          Ok ((String.lowercase_ascii k, v) :: acc)
      | None -> Error (Printf.sprintf "expected key=value, got %S" tok))
    (Ok []) toks

let int_arg args key default =
  match List.assoc_opt key args with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "%s: expected an integer, got %S" key v))

let float_arg args key =
  match List.assoc_opt key args with
  | None -> Ok None
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "%s: expected a number, got %S" key v))

let parse_source args =
  match
    ( List.assoc_opt "graph" args,
      List.assoc_opt "family" args,
      List.assoc_opt "session" args )
  with
  | Some name, None, None -> Ok (Named name)
  | None, Some family, None ->
      let* size = int_arg args "size" 64 in
      let* gseed = int_arg args "gseed" 0 in
      let* weight_max = int_arg args "wmax" 1 in
      Ok (Family { family; size; gseed; weight_max })
  | None, None, Some name -> Ok (Session name)
  | None, None, None ->
      Error "missing graph source: graph=<name>, family=<fam> or session=<name>"
  | _ -> Error "give exactly one of graph=, family= or session="

let parse_solve_args toks =
  let* args = kv_args toks in
  let* source = parse_source args in
  let* epsilon =
    let* e = float_arg args "epsilon" in
    Ok (Option.value e ~default:0.5)
  in
  let* algorithm =
    match Option.map String.lowercase_ascii (List.assoc_opt "algo" args) with
    | None | Some "exact" -> Ok Api.Exact_small_lambda
    | Some "exact2" -> Ok Api.Exact_two_respect
    | Some "approx" -> Ok (Api.Approx epsilon)
    | Some "gk" -> Ok (Api.Ghaffari_kuhn epsilon)
    | Some "su" -> Ok (Api.Su epsilon)
    | Some other -> Error (Printf.sprintf "unknown algorithm %S" other)
  in
  let* seed = int_arg args "seed" 0 in
  let* trees =
    match List.assoc_opt "trees" args with
    | None -> Ok None
    | Some v -> (
        match int_of_string_opt v with
        | Some i -> Ok (Some i)
        | None -> Error (Printf.sprintf "trees: expected an integer, got %S" v))
  in
  let* priority = int_arg args "priority" 0 in
  let* deadline_ms = float_arg args "deadline-ms" in
  Ok { source; algorithm; seed; trees; priority; deadline_ms }

let parse_estimate_args toks =
  let* args = kv_args toks in
  let* esource = parse_source args in
  let* eseed = int_arg args "seed" 0 in
  let* etrials =
    match List.assoc_opt "trials" args with
    | None -> Ok None
    | Some v -> (
        match int_of_string_opt v with
        | Some i when i >= 1 -> Ok (Some i)
        | _ -> Error (Printf.sprintf "trials: expected a positive integer, got %S" v))
  in
  Ok { esource; eseed; etrials }

let parse line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match tokens line with
  | [] -> Ok Nop
  | verb :: rest -> (
      match String.uppercase_ascii verb with
      | "GRAPH" -> (
          match rest with
          | [ name; n; m ] -> (
              match (int_of_string_opt n, int_of_string_opt m) with
              | Some n, Some m when n >= 2 && m >= 0 -> Ok (Graph_def { name; n; m })
              | _ -> Error "GRAPH: bad <n> or <m>")
          | _ -> Error "usage: GRAPH <name> <n> <m>")
      | "SOLVE" ->
          let* args = parse_solve_args rest in
          Ok (Solve args)
      | "SUBMIT" ->
          let* args = parse_solve_args rest in
          Ok (Submit args)
      | "ESTIMATE" ->
          let* args = parse_estimate_args rest in
          Ok (Estimate args)
      | "SESSION" -> (
          match rest with
          | name :: srcs ->
              let* args = kv_args srcs in
              let* ssource = parse_source args in
              Ok (Session_open { sname = name; ssource })
          | [] -> Error "usage: SESSION <name> graph=<g>|family=<fam> [...]")
      | "DELTA" -> (
          match rest with
          | name :: optoks ->
              let* dop = Delta.parse_tokens optoks in
              Ok (Delta_op { sname = name; dop })
          | [] -> Error "usage: DELTA <name> add|remove|reweight|merge|split ...")
      | "COMPACT" -> (
          match rest with
          | [ name ] -> Ok (Compact name)
          | _ -> Error "usage: COMPACT <name>")
      | "FLUSH" -> Ok Flush
      | "STATS" -> Ok Stats
      | "PING" -> Ok Ping
      | "HELP" -> Ok Help
      | "QUIT" -> Ok Quit
      | "SHUTDOWN" -> Ok Shutdown
      | other -> Error (Printf.sprintf "unknown verb %S (try HELP)" other))

let format_response (r : Request.response) =
  Printf.sprintf "value=%d rounds=%d cached=%b ms=%.3f key=%s"
    r.Request.summary.Api.value r.Request.summary.Api.rounds r.Request.cached
    r.Request.elapsed_ms r.Request.key

let format_estimate ~elapsed_ms (r : Mincut_core.Sample_estimate.result) =
  Printf.sprintf
    "estimate=%d lower=%d upper=%d level=%d trials=%d rounds=%d saturated=%b \
     ms=%.3f"
    r.Mincut_core.Sample_estimate.estimate r.Mincut_core.Sample_estimate.lower
    r.Mincut_core.Sample_estimate.upper r.Mincut_core.Sample_estimate.level
    r.Mincut_core.Sample_estimate.trials_per_level
    r.Mincut_core.Sample_estimate.cost.Mincut_congest.Cost.rounds
    r.Mincut_core.Sample_estimate.saturated elapsed_ms

let help_lines =
  [
    "GRAPH <name> <n> <m>   register a graph; next m lines: u v w";
    "SOLVE graph=<name>|family=<fam>|session=<s> [size= gseed= wmax=] [algo=exact|exact2|approx|gk|su] [epsilon=] [seed=] [trees=]";
    "SUBMIT <solve args> [priority=] [deadline-ms=]   -> QUEUED <ticket>";
    "ESTIMATE graph=<name>|family=<fam>|session=<s> [size= gseed= wmax=] [seed=] [trials=]   sampling-ladder bracket on λ";
    "SESSION <name> graph=<g>|family=<fam> [...]   open a mutable versioned session";
    "DELTA <name> add u v w | remove u v | reweight u v w | merge u v | split v w x1,..   apply one delta, answer λ incrementally";
    "COMPACT <name>         rebase the session's snapshot (observationally invisible)";
    "FLUSH                  run pending batches -> SHED/RESULT lines + DONE";
    "STATS                  one-line JSON metrics snapshot";
    "PING | HELP | QUIT | SHUTDOWN";
  ]
