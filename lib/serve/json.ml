(* Compatibility re-export: the JSON implementation moved to
   [Mincut_util.Json] so layers below the serving stack (notably
   [Mincut_analysis]) can emit machine-readable reports without
   depending on [mincut_serve]. *)

include Mincut_util.Json
