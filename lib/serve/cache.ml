module Lockcheck = Mincut_analysis.Lockcheck

(* Hash table of intrusive doubly-linked nodes; [head] is most recently
   used, [tail] least.  The sentinel-free list is managed by hand; every
   resident node is reachable from the table, so no cycles leak.

   Thread safety: every public operation holds the cache's rank-20
   checked mutex; the list/table manipulation helpers below are only
   reachable from inside it. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable cost : int;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type 'v t = {
  table : (string, 'v node) Hashtbl.t;
  cost_of : 'v -> int;
  max_entries : int;
  max_cost : int;
  lock : Lockcheck.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable total_cost : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_entries = 4096) ?(max_cost = 16_777_216) ~cost () =
  if max_entries <= 0 then invalid_arg "Cache.create: max_entries must be positive";
  if max_cost <= 0 then invalid_arg "Cache.create: max_cost must be positive";
  {
    table = Hashtbl.create 64;
    cost_of = cost;
    max_entries;
    max_cost;
    lock = Lockcheck.create ~name:"serve.cache" ~order:20 ();
    head = None;
    tail = None;
    total_cost = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let find t k =
  Lockcheck.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some node ->
          t.hits <- t.hits + 1;
          touch t node;
          Some node.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let peek t k =
  Lockcheck.with_lock t.lock (fun () ->
      Option.map (fun n -> n.value) (Hashtbl.find_opt t.table k))

let evict_one t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.total_cost <- t.total_cost - node.cost;
      t.evictions <- t.evictions + 1

(* evict until both bounds hold; a lone over-cost entry is kept (and
   evicted at the next insert) so a single huge result still caches *)
let rec enforce_bounds t =
  if
    Hashtbl.length t.table > t.max_entries
    || (t.total_cost > t.max_cost && Hashtbl.length t.table > 1)
  then begin
    evict_one t;
    enforce_bounds t
  end

let add t k v =
  Lockcheck.with_lock t.lock (fun () ->
      let cost = t.cost_of v in
      (match Hashtbl.find_opt t.table k with
      | Some node ->
          t.total_cost <- t.total_cost - node.cost + cost;
          node.value <- v;
          node.cost <- cost;
          touch t node
      | None ->
          let node = { key = k; value = v; cost; prev = None; next = None } in
          Hashtbl.add t.table k node;
          push_front t node;
          t.total_cost <- t.total_cost + cost);
      enforce_bounds t)

let mem t k = Lockcheck.with_lock t.lock (fun () -> Hashtbl.mem t.table k)
let length t = Lockcheck.with_lock t.lock (fun () -> Hashtbl.length t.table)
let total_cost t = Lockcheck.with_lock t.lock (fun () -> t.total_cost)
let hits t = Lockcheck.with_lock t.lock (fun () -> t.hits)
let misses t = Lockcheck.with_lock t.lock (fun () -> t.misses)
let evictions t = Lockcheck.with_lock t.lock (fun () -> t.evictions)

let clear t =
  Lockcheck.with_lock t.lock (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      t.total_cost <- 0)

let keys_mru_first t =
  Lockcheck.with_lock t.lock (fun () ->
      let rec walk acc = function
        | None -> List.rev acc
        | Some node -> walk (node.key :: acc) node.next
      in
      walk [] t.head)
