module Bitset = Mincut_util.Bitset
module Api = Mincut_core.Api
module Incremental = Mincut_core.Incremental
module Params = Mincut_core.Params
module Cost = Mincut_congest.Cost

type config = {
  params : Params.t;
  cache_entries : int;
  cache_cost : int;
  workers : int;
}

let default_config =
  {
    params = Params.fast;
    cache_entries = 4096;
    cache_cost = 16_777_216;
    workers = Pool.workers (Pool.create ());
  }

type t = {
  cfg : config;
  cache : Api.summary Cache.t;
  scheduler : Scheduler.t;
  pool : Pool.t;
  sessions : (string, Api.session) Hashtbl.t;
  metrics : Metrics.t;
  (* instruments, resolved once *)
  submitted : Metrics.counter;
  completed : Metrics.counter;
  cache_hit : Metrics.counter;
  cache_miss : Metrics.counter;
  coalesced : Metrics.counter;
  batches : Metrics.counter;
  rounds_charged : Metrics.counter;
  deadline_missed : Metrics.counter;
  requests_shed : Metrics.counter;
  deltas_applied : Metrics.counter;
  incremental_hits : Metrics.counter;
  full_resolves : Metrics.counter;
  estimates : Metrics.counter;
  estimate_rounds : Metrics.counter;
  estimate_ms : Metrics.histogram;
  cold_ms : Metrics.histogram;
  warm_ms : Metrics.histogram;
  q_depth : Metrics.gauge;
  g_entries : Metrics.gauge;
  g_cost : Metrics.gauge;
  g_sessions : Metrics.gauge;
}

(* approximate resident footprint of a summary, in words: the side
   bitset dominates, plus the span tree, its derived flat view and
   fixed fields *)
let rec span_words (sp : Cost.span) =
  6 + List.fold_left (fun acc c -> acc + span_words c) 0 sp.Cost.children

let summary_cost (s : Api.summary) =
  8
  + ((Bitset.capacity s.Api.side + 63) / 64)
  + (2 * List.length s.Api.breakdown)
  + List.fold_left (fun acc sp -> acc + span_words sp) 0 s.Api.cost.Cost.spans

(* per-phase round accounting: one counter per top-level span of the
   solved summary, resolved by name on first use so the set of phases
   need not be known up front *)
let metric_slug label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '_')
    label

let note_phase_rounds metrics (s : Api.summary) =
  List.iter
    (fun (sp : Cost.span) ->
      Metrics.incr ~by:sp.Cost.rounds
        (Metrics.counter metrics ("rounds_phase_" ^ metric_slug sp.Cost.label)))
    s.Api.cost.Cost.spans

let key_of cfg (r : Request.t) =
  Graph_key.key ~algorithm:r.Request.algorithm ~seed:r.Request.seed
    ~trees:r.Request.trees ~params:cfg.params r.Request.graph

let create ?(config = default_config) () =
  let cfg = config in
  let metrics = Metrics.create () in
  {
    cfg;
    cache =
      Cache.create ~max_entries:cfg.cache_entries ~max_cost:cfg.cache_cost
        ~cost:summary_cost ();
    scheduler = Scheduler.create ~key:(key_of cfg) ();
    pool = Pool.create ~workers:cfg.workers ();
    sessions = Hashtbl.create 8;
    metrics;
    submitted = Metrics.counter metrics "requests_submitted";
    completed = Metrics.counter metrics "requests_completed";
    cache_hit = Metrics.counter metrics "cache_hits";
    cache_miss = Metrics.counter metrics "cache_misses";
    coalesced = Metrics.counter metrics "requests_coalesced";
    batches = Metrics.counter metrics "batches_solved";
    rounds_charged = Metrics.counter metrics "rounds_charged";
    deadline_missed = Metrics.counter metrics "deadlines_missed";
    requests_shed = Metrics.counter metrics "requests_shed";
    deltas_applied = Metrics.counter metrics "deltas_applied";
    incremental_hits = Metrics.counter metrics "incremental_hits";
    full_resolves = Metrics.counter metrics "full_resolves";
    estimates = Metrics.counter metrics "estimates_served";
    estimate_rounds = Metrics.counter metrics "rounds_estimate";
    estimate_ms = Metrics.histogram metrics "estimate_ms";
    cold_ms = Metrics.histogram metrics "solve_cold_ms";
    warm_ms = Metrics.histogram metrics "solve_warm_ms";
    q_depth = Metrics.gauge metrics "queue_depth";
    g_entries = Metrics.gauge metrics "cache_entries";
    g_cost = Metrics.gauge metrics "cache_cost_words";
    g_sessions = Metrics.gauge metrics "sessions_open";
  }

let config t = t.cfg

let key_of_request t r = key_of t.cfg r

let refresh_gauges t =
  Metrics.set t.g_entries (float_of_int (Cache.length t.cache));
  Metrics.set t.g_cost (float_of_int (Cache.total_cost t.cache));
  Metrics.set t.q_depth (float_of_int (Scheduler.pending t.scheduler))

let run_solve cfg (r : Request.t) =
  Api.min_cut ~params:cfg.params ~algorithm:r.Request.algorithm
    ~seed:r.Request.seed ?trees:r.Request.trees
    (Graph_key.canonicalize r.Request.graph)

let note_completion t (r : Request.t) now =
  Metrics.incr t.completed;
  match r.Request.deadline with
  | Some d when now > d -> Metrics.incr t.deadline_missed
  | _ -> ()

let solve t r =
  Metrics.incr t.submitted;
  let t0 = Unix.gettimeofday () in
  let key = key_of t.cfg r in
  let summary, cached =
    match Cache.find t.cache key with
    | Some s ->
        Metrics.incr t.cache_hit;
        (s, true)
    | None ->
        Metrics.incr t.cache_miss;
        let s = run_solve t.cfg r in
        Cache.add t.cache key s;
        Metrics.incr ~by:s.Api.rounds t.rounds_charged;
        note_phase_rounds t.metrics s;
        (s, false)
  in
  let now = Unix.gettimeofday () in
  let elapsed_ms = (now -. t0) *. 1000.0 in
  Metrics.observe (if cached then t.warm_ms else t.cold_ms) elapsed_ms;
  note_completion t r now;
  refresh_gauges t;
  { Request.summary; cached; key; elapsed_ms }

(* the cheap tier: a sampling-ladder bracket on λ, never a full solve.
   Estimates stay out of the summary cache (they are not Api.summary
   values, and re-running the ladder costs O(log² n) simulated rounds —
   less than a cache probe is worth protecting); their rounds are
   charged to their own counter so solve round-accounting stays pure. *)
let estimate t ?seed ?trials g =
  let t0 = Unix.gettimeofday () in
  let r = Api.estimate ?seed ?trials (Graph_key.canonicalize g) in
  Metrics.incr t.estimates;
  Metrics.incr ~by:r.Mincut_core.Sample_estimate.cost.Cost.rounds
    t.estimate_rounds;
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Metrics.observe t.estimate_ms elapsed_ms;
  (r, elapsed_ms)

let submit t r =
  Metrics.incr t.submitted;
  let ticket = Scheduler.submit t.scheduler r in
  refresh_gauges t;
  ticket

let pending t = Scheduler.pending t.scheduler

type flush_result = {
  answered : (Scheduler.ticket * Request.response) list;
  shed : Scheduler.ticket list;
}

let flush t =
  let batches = Scheduler.drain t.scheduler in
  (* answer what the cache already knows; shed what has already expired
     (a cache hit is free, so those are answered even past deadline —
     shedding only saves solves); collect the rest *)
  let now0 = Unix.gettimeofday () in
  let expired (r : Request.t) =
    match r.Request.deadline with Some d -> now0 > d | None -> false
  in
  let todo = ref [] in
  let answered = ref [] in
  let shed = ref [] in
  List.iter
    (fun (members, (r : Request.t)) ->
      let key = key_of t.cfg r in
      let t0 = Unix.gettimeofday () in
      match Cache.find t.cache key with
      | Some s ->
          let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          Metrics.incr ~by:(List.length members) t.cache_hit;
          List.iter
            (fun (tk, _) -> answered := (tk, r, key, s, true, ms) :: !answered)
            members
      | None ->
          let live, dead =
            List.partition (fun (_, req) -> not (expired req)) members
          in
          List.iter (fun (tk, _) -> shed := tk :: !shed) dead;
          Metrics.incr ~by:(List.length dead) t.requests_shed;
          if live <> [] then begin
            Metrics.incr ~by:(List.length live) t.cache_miss;
            Metrics.incr ~by:(List.length live - 1) t.coalesced;
            todo := (List.map fst live, r, key) :: !todo
          end)
    batches;
  let todo = Array.of_list (List.rev !todo) in
  (* concurrent part: pure solves only, one graph copy per job (the
     canonical rebuild inside [run_solve] is that copy), solve time
     measured inside the worker domain *)
  let solved =
    Pool.map t.pool
      (fun (_, r, _) ->
        let t0 = Unix.gettimeofday () in
        let s = run_solve t.cfg r in
        (s, (Unix.gettimeofday () -. t0) *. 1000.0))
      todo
  in
  Array.iteri
    (fun i (tickets, r, key) ->
      let s, ms = solved.(i) in
      Cache.add t.cache key s;
      Metrics.incr ~by:s.Api.rounds t.rounds_charged;
      note_phase_rounds t.metrics s;
      Metrics.incr t.batches;
      List.iter
        (fun tk -> answered := (tk, r, key, s, false, ms) :: !answered)
        tickets)
    todo;
  let now = Unix.gettimeofday () in
  let responses =
    !answered
    |> List.sort (fun (a, _, _, _, _, _) (b, _, _, _, _, _) -> Int.compare a b)
    |> List.map (fun (tk, r, key, summary, cached, elapsed_ms) ->
           Metrics.observe (if cached then t.warm_ms else t.cold_ms) elapsed_ms;
           note_completion t r now;
           (tk, { Request.summary; cached; key; elapsed_ms }))
  in
  refresh_gauges t;
  { answered = responses; shed = List.sort Int.compare !shed }

(* ---- incremental sessions ------------------------------------------- *)

let session_open t name g =
  let s = Api.open_session ~params:t.cfg.params g in
  Hashtbl.replace t.sessions name s;
  Metrics.set t.g_sessions (float_of_int (Hashtbl.length t.sessions));
  s

let find_session t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "unknown session %S (open with SESSION)" name)

let session_delta t name op =
  match find_session t name with
  | Error _ as e -> e
  | Ok s -> (
      match Api.apply_delta s op with
      | Error _ as e -> e
      | Ok (outcome, answer) ->
          Metrics.incr t.deltas_applied;
          (match answer.Api.mode with
          | Incremental.Reused | Incremental.Cert_solved ->
              Metrics.incr t.incremental_hits
          | Incremental.Resolved -> Metrics.incr t.full_resolves);
          Ok (s, outcome, answer))

let session_compact t name =
  match find_session t name with
  | Error _ as e -> e
  | Ok s ->
      Api.compact_session s;
      Ok s

let session_solve t name ~algorithm ~seed ~trees =
  match find_session t name with
  | Error _ as e -> e
  | Ok s ->
      Metrics.incr t.submitted;
      let t0 = Unix.gettimeofday () in
      let key =
        Graph_key.versioned_key ~algorithm ~seed ~trees ~params:t.cfg.params
          (Api.session_handle s)
      in
      let summary, cached =
        match Cache.find t.cache key with
        | Some sum ->
            (* version-chain hit: some earlier version (possibly of
               another session) had this exact structure and solve
               coordinates *)
            Metrics.incr t.cache_hit;
            Metrics.incr t.incremental_hits;
            (sum, true)
        | None ->
            Metrics.incr t.cache_miss;
            let sum, anchored = Api.min_cut_session ~algorithm ~seed ?trees s in
            Cache.add t.cache key sum;
            if anchored then Metrics.incr t.incremental_hits
            else begin
              Metrics.incr ~by:sum.Api.rounds t.rounds_charged;
              note_phase_rounds t.metrics sum
            end;
            (sum, anchored)
      in
      let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Metrics.observe (if cached then t.warm_ms else t.cold_ms) elapsed_ms;
      Metrics.incr t.completed;
      refresh_gauges t;
      Ok { Request.summary; cached; key; elapsed_ms }

let metrics t = t.metrics

let snapshot t =
  refresh_gauges t;
  Metrics.snapshot t.metrics

let cache_length t = Cache.length t.cache
let cache_hits t = Cache.hits t.cache
let cache_misses t = Cache.misses t.cache
