(** Metrics registry for the serving layer.

    Three instrument kinds, all registered by name on first use:

    - {e counters}: monotone integer totals (requests submitted,
      completed, cache hits/misses, CONGEST rounds charged, …);
    - {e gauges}: instantaneous floats (cache residency, queue depth);
    - {e histograms}: latency-style samples summarized as count / mean /
      quantiles (p50, p90, p99) / max.  Histograms keep an exact count,
      sum and max forever and bound memory by reservoir-sampling the
      stored values past a fixed capacity, with a deterministic RNG so
      runs are reproducible.

    Snapshots are immutable and serializable as single JSON lines, which
    both the [STATS] protocol verb and [mincut_cli stats] consume.

    The registry is safe to record into from any domain: counters and
    gauges are single atomic cells, histograms and the name tables are
    guarded by ranked {!Mincut_analysis.Lockcheck} mutexes (registry =
    rank 30, each histogram = rank 31) so the lock-discipline checker
    audits every acquisition at test time. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or create.  The same name always returns the same instrument. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int

(** {1 Snapshots} *)

type hist_summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

type snapshot = {
  time : float;  (** Unix timestamp at capture *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}
(** All association lists are sorted by name, so snapshots of equal
    registries are structurally equal. *)

val snapshot : t -> snapshot

val to_json : snapshot -> Json.t
val of_json : Json.t -> (snapshot, string) result

val to_json_line : t -> string
(** One-line JSON export of a fresh snapshot (the JSONL exporter appends
    these to a log). *)

val snapshot_of_json_line : string -> (snapshot, string) result

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Pretty terminal rendering (the [mincut_cli stats] view). *)
