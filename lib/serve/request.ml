type t = {
  graph : Mincut_graph.Graph.t;
  algorithm : Mincut_core.Api.algorithm;
  seed : int;
  trees : int option;
  priority : int;
  deadline : float option;
}

let make ?(algorithm = Mincut_core.Api.Exact_small_lambda) ?(seed = 0) ?trees
    ?(priority = 0) ?deadline graph =
  { graph; algorithm; seed; trees; priority; deadline }

type response = {
  summary : Mincut_core.Api.summary;
  cached : bool;
  key : string;
  elapsed_ms : float;
}

let compare_order (seq_a, a) (seq_b, b) =
  let c = Int.compare b.priority a.priority in
  if c <> 0 then c
  else
    let d x = match x.deadline with Some d -> d | None -> infinity in
    let c = Float.compare (d a) (d b) in
    if c <> 0 then c else Int.compare seq_a seq_b
