(** Content addressing for solve requests.

    Two requests hit the same cache slot exactly when they are guaranteed
    to produce bit-identical summaries: same graph {e structure}, same
    algorithm (including ε), same seed, same tree budget, and same
    round-accounting parameters.  The graph part is a {e structural}
    digest — the canonical edge list, i.e. the sorted multiset of
    [(u, v, w)] triples plus the node count — so queries that present the
    same graph with its edges permuted (the common case when clients
    re-serialize adjacency in arbitrary order) still hit.

    Structural hashing is safe precisely because every algorithm behind
    [Mincut_core.Api] is a function of the edge {e multiset}, not of edge
    ids: the deterministic packing's id-based tie-breaking is re-derived
    from the canonical order when a request is admitted (see
    {!canonicalize}), so a permuted presentation first normalizes to the
    same [Graph.t] and then solves identically. *)

val structural_hash : Mincut_graph.Graph.t -> int64
(** FNV-1a digest of [n] followed by the sorted [(u, v, w)] triples.
    Invariant under permutation of the edge list; sensitive to node
    count, weights, and multiplicity. *)

val canonicalize : Mincut_graph.Graph.t -> Mincut_graph.Graph.t
(** The canonical representative of the graph's structure class: same
    node set, edges sorted by [(u, v, w)] and renumbered in that order.
    Solving the canonical graph makes the full summary (value, side,
    rounds, breakdown) a function of the structure alone, which is what
    lets a cache entry answer a permuted re-presentation bit-identically. *)

val params_id : Mincut_core.Params.t -> string
(** Compact stable rendering of every [Params.t] field that can affect a
    summary, so parameter changes never alias cache entries. *)

val algorithm_id : Mincut_core.Api.algorithm -> string
(** Stable short name including ε where applicable ([exact], [exact2],
    [approx:0.5], …).  Unlike [Api.algorithm_name] this is meant for
    keys, not for humans, and will never be reworded. *)

val key :
  algorithm:Mincut_core.Api.algorithm ->
  seed:int ->
  trees:int option ->
  params:Mincut_core.Params.t ->
  Mincut_graph.Graph.t ->
  string
(** The full cache key.  Besides the structural digest it embeds [n],
    [m] and the total weight as plain guards, so even a (cosmically
    unlikely) 64-bit collision cannot pair graphs of different sizes. *)

val versioned_key :
  algorithm:Mincut_core.Api.algorithm ->
  seed:int ->
  trees:int option ->
  params:Mincut_core.Params.t ->
  Mincut_graph.Handle.t ->
  string
(** Cache key for the live version of a {!Mincut_graph.Handle} — same
    coordinates as {!key} but under an ["inc|"] namespace, with the
    handle's O(|delta|)-rolled commutative multiset digest in place of
    the O(m log m) sorted-edge-list hash, and channel count in place of
    [m].  The digest is order-insensitive by construction, so a delta
    chain that returns to a previously seen structure re-derives the
    {e same} key and hits the entry cached at the earlier version (the
    cache's version-chain lookup); compaction changes neither the digest
    nor the counts, so keys survive it. *)
