(** The service's line protocol: one request per line, one (or, for
    [FLUSH] and [GRAPH], a few) response lines per request.

    Verbs (case-insensitive; arguments are [key=value] tokens):

    {v
    GRAPH <name> <n> <m>     register a graph under <name>; the next m
                             lines are "u v w" edges (0-based endpoints)
    SOLVE <args>             solve synchronously through the cache
    SUBMIT <args>            enqueue; answered by the next FLUSH
    ESTIMATE <args>          sampling-ladder λ bracket, no exact solve
    SESSION <name> <source>  open a named mutable versioned session
    DELTA <name> <op>        apply one delta; answers λ incrementally
    COMPACT <name>           rebase the session snapshot (invisible)
    FLUSH                    drain the queue as coalesced batches on the
                             worker pool; SHED line per expired ticket,
                             RESULT line per answered ticket + DONE
    STATS                    one-line JSON metrics snapshot
    PING / HELP / QUIT       liveness, verb list, end of session
    SHUTDOWN                 end of session and stop accepting clients
    v}

    [SOLVE]/[SUBMIT] arguments: a graph source — [graph=<name>] for a
    registered graph, [family=<fam>] with optional [size=] [gseed=]
    [wmax=] for a generator from the workload zoo, or [session=<name>]
    for the live version of an open session — plus [algo=]
    (exact|exact2|approx|gk|su), [epsilon=], [seed=], [trees=], and for
    SUBMIT [priority=] and [deadline-ms=].  [SOLVE session=…] answers
    through the incremental path (anchored summaries and version-chain
    cache); everywhere else a session source just means "that session's
    current graph", snapshotted at parse time.

    [DELTA] ops use the {!Mincut_graph.Delta} grammar: [add u v w],
    [remove u v], [reweight u v w], [merge u v],
    [split v w x1,x2,…] (["-"] = move nothing).

    [ESTIMATE] arguments: a graph source as above, plus [seed=] and
    [trials=] (connectivity tests per ladder level).  It answers from
    the {!Mincut_core.Sample_estimate} geometric sampling ladder — an
    [O(log n)]-factor bracket on λ in [O(log² n)] simulated rounds,
    never a full solve — so it is the cheap "answer now" tier in front
    of [SOLVE].

    Responses: [OK …] / [QUEUED <ticket>] / [SHED <ticket>] /
    [RESULT <ticket> …] / [DONE <count>] / [STATS <json>] / [PONG] /
    [BYE] / [ERR <message>]. *)

type source =
  | Named of string
  | Family of { family : string; size : int; gseed : int; weight_max : int }
  | Session of string  (** an open session's live graph *)

type solve_args = {
  source : source;
  algorithm : Mincut_core.Api.algorithm;
  seed : int;
  trees : int option;
  priority : int;
  deadline_ms : float option;  (** relative; server anchors it at submit time *)
}

type estimate_args = {
  esource : source;
  eseed : int;
  etrials : int option;  (** connectivity tests per ladder level *)
}

type command =
  | Graph_def of { name : string; n : int; m : int }
  | Solve of solve_args
  | Submit of solve_args
  | Estimate of estimate_args
  | Session_open of { sname : string; ssource : source }
  | Delta_op of { sname : string; dop : Mincut_graph.Delta.op }
  | Compact of string
  | Flush
  | Stats
  | Ping
  | Help
  | Quit
  | Shutdown
  | Nop  (** blank line or [#] comment: no response *)

val parse : string -> (command, string) result
(** Parse one request line. *)

val format_response : Request.response -> string
(** The [key=value] tail shared by [OK] and [RESULT] lines:
    [value=… rounds=… cached=… ms=… key=…]. *)

val format_estimate :
  elapsed_ms:float -> Mincut_core.Sample_estimate.result -> string
(** The [key=value] tail of an [ESTIMATE] response:
    [estimate=… lower=… upper=… level=… trials=… rounds=… saturated=… ms=…]. *)

val help_lines : string list
