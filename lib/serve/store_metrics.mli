(** Bridge from the chunked store's residency instruments to the
    serving-layer {!Metrics} registry.

    [Mincut_store] cannot depend on the serving layer, so its residency
    manager exposes a callback record instead of naming the registry;
    this adapter is the one place the two meet.  Counters are monotone
    ([store.chunk_hits] / [store.chunk_misses] / [store.chunk_evictions]);
    residency is the instantaneous [store.bytes_resident] gauge.  One
    registry may instrument several stores — totals aggregate. *)

val instruments : Metrics.t -> Mincut_store.Residency.instruments
(** Get-or-create the four instruments on [m] and wire them up. *)
