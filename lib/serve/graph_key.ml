module Graph = Mincut_graph.Graph
module Handle = Mincut_graph.Handle
module Hash = Mincut_util.Hash
module Api = Mincut_core.Api
module Params = Mincut_core.Params

let canonical_triples g =
  let triples =
    Array.map (fun e -> (e.Graph.u, e.Graph.v, e.Graph.w)) (Graph.edges g)
  in
  (* edges already satisfy u < v, so plain lexicographic order on the
     triples is a canonical form of the multiset *)
  Array.sort
    (fun (u1, v1, w1) (u2, v2, w2) ->
      match Int.compare u1 u2 with
      | 0 -> ( match Int.compare v1 v2 with 0 -> Int.compare w1 w2 | c -> c)
      | c -> c)
    triples;
  triples

let structural_hash g =
  let h = Hash.create () in
  Hash.add_int h (Graph.n g);
  Array.iter
    (fun (u, v, w) ->
      Hash.add_int h u;
      Hash.add_int h v;
      Hash.add_int h w)
    (canonical_triples g);
  Hash.value h

let canonicalize g = Graph.of_array ~n:(Graph.n g) (canonical_triples g)

let params_id (p : Params.t) =
  Printf.sprintf "kp%d:%s:w%d:r%d" p.Params.kp_constant
    (if p.Params.run_real_primitives then "real" else "charged")
    p.Params.congest.Mincut_congest.Config.words_per_message
    p.Params.congest.Mincut_congest.Config.max_rounds

let algorithm_id = function
  | Api.Exact_small_lambda -> "exact"
  | Api.Exact_two_respect -> "exact2"
  | Api.Approx e -> Printf.sprintf "approx:%h" e
  | Api.Ghaffari_kuhn e -> Printf.sprintf "gk:%h" e
  | Api.Su e -> Printf.sprintf "su:%h" e

let key ~algorithm ~seed ~trees ~params g =
  Printf.sprintf "%s|s%d|t%s|%s|n%d|m%d|w%d|%s" (algorithm_id algorithm) seed
    (match trees with None -> "-" | Some t -> string_of_int t)
    (params_id params) (Graph.n g) (Graph.m g) (Graph.total_weight g)
    (Hash.to_hex (structural_hash g))

let versioned_key ~algorithm ~seed ~trees ~params h =
  Printf.sprintf "inc|%s|s%d|t%s|%s|n%d|c%d|w%d|%s" (algorithm_id algorithm)
    seed
    (match trees with None -> "-" | Some t -> string_of_int t)
    (params_id params) (Handle.n h) (Handle.channels h) (Handle.total_weight h)
    (Hash.to_hex (Handle.digest h))
