module Stats = Mincut_util.Stats
module Rng = Mincut_util.Rng
module Lockcheck = Mincut_analysis.Lockcheck

(* Counters and gauges are single atomic cells: domains record them
   without any lock.  Histograms mutate several fields per observation,
   so each carries its own rank-31 checked mutex; the registry tables
   are guarded by a rank-30 mutex (registry before histogram is the
   lock order, as in [snapshot]). *)

type counter = int Atomic.t

type gauge = float Atomic.t

(* Reservoir with exact count/sum/max: quantiles degrade gracefully to
   estimates once [capacity] is exceeded (Vitter's algorithm R). *)
type histogram = {
  hlock : Lockcheck.t;
  mutable n : int;
  mutable sum : float;
  mutable hmax : float;
  samples : float array;
  mutable filled : int;
  rng : Rng.t;
}

let reservoir_capacity = 4096

type t = {
  rlock : Lockcheck.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    rlock = Lockcheck.create ~name:"serve.metrics" ~order:30 ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let get_or_add t table name make =
  Lockcheck.with_lock t.rlock (fun () ->
      match Hashtbl.find_opt table name with
      | Some x -> x
      | None ->
          let x = make () in
          Hashtbl.add table name x;
          x)

let counter t name = get_or_add t t.counters name (fun () -> Atomic.make 0)
let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

let gauge t name = get_or_add t t.gauges name (fun () -> Atomic.make 0.0)
let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram t name =
  get_or_add t t.histograms name (fun () ->
      {
        hlock = Lockcheck.create ~name:("serve.metrics.hist:" ^ name) ~order:31 ();
        n = 0;
        sum = 0.0;
        hmax = neg_infinity;
        samples = Array.make reservoir_capacity 0.0;
        filled = 0;
        rng = Rng.create 0x5EED;
      })

let observe h v =
  Lockcheck.with_lock h.hlock (fun () ->
      h.n <- h.n + 1;
      h.sum <- h.sum +. v;
      if v > h.hmax then h.hmax <- v;
      if h.filled < reservoir_capacity then begin
        h.samples.(h.filled) <- v;
        h.filled <- h.filled + 1
      end
      else
        let j = Rng.int h.rng h.n in
        if j < reservoir_capacity then h.samples.(j) <- v)

let histogram_count h = Lockcheck.with_lock h.hlock (fun () -> h.n)

(* ---- snapshots ------------------------------------------------------- *)

type hist_summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

type snapshot = {
  time : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let summarize_histogram h =
  Lockcheck.with_lock h.hlock (fun () ->
      if h.n = 0 then
        { count = 0; mean = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0; max = 0.0 }
      else
        let xs = Array.sub h.samples 0 h.filled in
        {
          count = h.n;
          mean = h.sum /. float_of_int h.n;
          p50 = Stats.percentile xs 0.5;
          p90 = Stats.percentile xs 0.9;
          p99 = Stats.percentile xs 0.99;
          max = h.hmax;
        })

let sorted_bindings table f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot (reg : t) =
  (* registry (30) before histogram (31): the one nested acquisition in
     the serving layer, and the reason histograms rank above tables *)
  Lockcheck.with_lock reg.rlock (fun () ->
      {
        time = Unix.gettimeofday ();
        counters = sorted_bindings reg.counters Atomic.get;
        gauges = sorted_bindings reg.gauges Atomic.get;
        histograms = sorted_bindings reg.histograms summarize_histogram;
      })

let to_json (s : snapshot) =
  Json.Obj
    [
      ("time", Json.Float s.time);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int h.count);
                     ("mean", Json.Float h.mean);
                     ("p50", Json.Float h.p50);
                     ("p90", Json.Float h.p90);
                     ("p99", Json.Float h.p99);
                     ("max", Json.Float h.max);
                   ] ))
             s.histograms) );
    ]

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let shape what = Error (Printf.sprintf "metrics snapshot: malformed %s" what)

let req what = function Some x -> Ok x | None -> shape what

let of_json j =
  let* time = req "time" (Option.bind (Json.member "time" j) Json.to_float) in
  let* counters = req "counters" (Option.bind (Json.member "counters" j) Json.to_obj) in
  let* gauges = req "gauges" (Option.bind (Json.member "gauges" j) Json.to_obj) in
  let* hists = req "histograms" (Option.bind (Json.member "histograms" j) Json.to_obj) in
  let* counters =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        let* i = req ("counter " ^ k) (Json.to_int v) in
        Ok ((k, i) :: acc))
      (Ok []) counters
  in
  let* gauges =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        let* f = req ("gauge " ^ k) (Json.to_float v) in
        Ok ((k, f) :: acc))
      (Ok []) gauges
  in
  let* histograms =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        let field name = req (k ^ "." ^ name) (Option.bind (Json.member name v) Json.to_float) in
        let* count = req (k ^ ".count") (Option.bind (Json.member "count" v) Json.to_int) in
        let* mean = field "mean" in
        let* p50 = field "p50" in
        let* p90 = field "p90" in
        let* p99 = field "p99" in
        let* max = field "max" in
        Ok ((k, { count; mean; p50; p90; p99; max }) :: acc))
      (Ok []) hists
  in
  Ok
    {
      time;
      counters = List.rev counters;
      gauges = List.rev gauges;
      histograms = List.rev histograms;
    }

let to_json_line t = Json.to_string (to_json (snapshot t))

let snapshot_of_json_line line =
  let* j = Json.of_string line in
  of_json j

let pp_snapshot ppf s =
  let open Format in
  fprintf ppf "@[<v>metrics snapshot";
  if s.time > 0.0 then begin
    let tm = Unix.localtime s.time in
    fprintf ppf " (%04d-%02d-%02d %02d:%02d:%02d)" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  end;
  if s.counters <> [] then begin
    fprintf ppf "@,counters:";
    List.iter (fun (k, v) -> fprintf ppf "@,  %-32s %12d" k v) s.counters
  end;
  if s.gauges <> [] then begin
    fprintf ppf "@,gauges:";
    List.iter (fun (k, v) -> fprintf ppf "@,  %-32s %12.2f" k v) s.gauges
  end;
  if s.histograms <> [] then begin
    fprintf ppf "@,histograms (ms):";
    fprintf ppf "@,  %-24s %8s %9s %9s %9s %9s %9s" "name" "count" "mean" "p50"
      "p90" "p99" "max";
    List.iter
      (fun (k, h) ->
        fprintf ppf "@,  %-24s %8d %9.3f %9.3f %9.3f %9.3f %9.3f" k h.count
          h.mean h.p50 h.p90 h.p99 h.max)
      s.histograms
  end;
  fprintf ppf "@]"
