module Graph = Mincut_graph.Graph
module Mst_seq = Mincut_graph.Mst_seq
module Bfs = Mincut_graph.Bfs
module Cost = Mincut_congest.Cost

type t = { trees : int list array; loads : int array }

(* Compare relative loads u1/w1 vs u2/w2 exactly by cross-multiplying;
   loads stay small (≤ #trees) so there is no overflow risk. *)
let load_order loads (a : Graph.edge) (b : Graph.edge) =
  let la = loads.(a.id) * b.w and lb = loads.(b.id) * a.w in
  match Int.compare la lb with
  | 0 -> (
      match Int.compare a.w b.w with 0 -> Int.compare a.id b.id | c -> c)
  | c -> c

let greedy g ~trees =
  if trees < 1 then invalid_arg "Tree_packing.greedy: need at least one tree";
  if not (Bfs.is_connected g) then invalid_arg "Tree_packing.greedy: disconnected graph";
  let loads = Array.make (Graph.m g) 0 in
  let out = Array.make trees [] in
  for i = 0 to trees - 1 do
    let tree = Mst_seq.kruskal_by g ~cmp:(load_order loads) in
    out.(i) <- tree;
    List.iter (fun id -> loads.(id) <- loads.(id) + 1) tree
  done;
  { trees = out; loads }

let recommended_trees ~n ~lambda_hint =
  let log2n =
    let rec go k = if 1 lsl k >= max 2 n then k else go (k + 1) in
    go 1
  in
  max 8 (min 96 (2 * max 1 lambda_hint * log2n))

let theory_trees ~n ~lambda =
  let l = float_of_int lambda and ln = log (float_of_int (max 2 n)) /. log 2.0 in
  (l ** 7.0) *. (ln ** 3.0)

let crossings g ids ~in_cut =
  List.fold_left
    (fun acc id ->
      let u, v = Graph.endpoints g id in
      if in_cut u <> in_cut v then acc + 1 else acc)
    0 ids

let first_one_respecting g t ~in_cut =
  let k = Array.length t.trees in
  let rec go i =
    if i >= k then None
    else if crossings g t.trees.(i) ~in_cut = 1 then Some i
    else go (i + 1)
  in
  go 0

let load_invariant g t =
  let n = Graph.n g in
  let total = Array.fold_left ( + ) 0 t.loads in
  total = Array.length t.trees * (n - 1)
  && Array.for_all (fun ids -> Mst_seq.is_spanning_tree g ids) t.trees

let distributed_cost ~n:_ ~diameter:_ ~trees ~per_tree_rounds =
  Cost.charged
    (Printf.sprintf "tree packing: %d MSTs at the Kutten-Peleg bound" trees)
    (trees * per_tree_rounds)

(* One greedy pass: repeatedly extract a spanning tree from the residual
   capacities, visiting edges in the per-pass order given by [rank].
   Preferring high residual capacity keeps heavy bundles alive. *)
let disjoint_pass g rank =
  let capacity = Array.map (fun (e : Graph.edge) -> e.w) (Graph.edges g) in
  let residual_spanning () =
    let uf = Mincut_graph.Union_find.create (Graph.n g) in
    let es =
      Array.of_list
        (List.filter
           (fun (e : Graph.edge) -> capacity.(e.id) > 0)
           (Array.to_list (Graph.edges g)))
    in
    Array.sort
      (fun (a : Graph.edge) (b : Graph.edge) ->
        match Int.compare capacity.(b.id) capacity.(a.id) with
        | 0 -> Int.compare rank.(a.id) rank.(b.id)
        | c -> c)
      es;
    let acc = ref [] in
    Array.iter
      (fun (e : Graph.edge) ->
        if Mincut_graph.Union_find.union uf e.u e.v then acc := e.id :: !acc)
      es;
    if List.length !acc = Graph.n g - 1 then Some (List.rev !acc) else None
  in
  let rec go acc =
    match residual_spanning () with
    | None -> List.rev acc
    | Some tree ->
        List.iter (fun id -> capacity.(id) <- capacity.(id) - 1) tree;
        go (tree :: acc)
  in
  go []

(* The single-order greedy can waste connectivity (a star tree isolates
   its hub), so restart it over several deterministic pseudo-random edge
   orders and keep the best packing.  Still a certified lower bound:
   every returned tree is genuinely edge-disjoint and spanning. *)
let disjoint_greedy g =
  if Graph.n g <= 1 then []
  else begin
    let m = Graph.m g in
    let rng = Mincut_util.Rng.create 0x7A33 in
    let best = ref [] in
    for restart = 0 to 19 do
      let rank = Array.init m (fun i -> i) in
      if restart > 0 then Mincut_util.Rng.shuffle rng rank;
      let trees = disjoint_pass g rank in
      if List.length trees > List.length !best then best := trees
    done;
    !best
  end

let disjoint_count g = List.length (disjoint_greedy g)
