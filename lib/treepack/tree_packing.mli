(** Thorup's recursive tree packing [Tho07, Theorem 9].

    Generate trees [T₁, T₂, …] where [Tᵢ] is the minimum spanning tree
    with respect to the {e relative loads} induced by [T₁ … Tᵢ₋₁]: the
    load of edge [e] after [i-1] trees is [uses(e) / w(e)] (weight acts
    as capacity).  Thorup proves that after [Θ(λ⁷ log³ n)] trees at
    least one tree contains {e exactly one} edge of some minimum cut
    ("1-respects" it), which is what reduces min-cut to the paper's
    Section-2 problem.

    The load comparison is done in exact integer arithmetic
    ([u₁·w₂ vs u₂·w₁]) with deterministic (load, weight, id)
    tie-breaking, so a packing is a pure function of the graph — tests
    rely on this.

    The theoretical tree count is astronomically conservative; in
    practice a handful of trees suffices (measured by experiment F3).
    [recommended_trees] provides the practical default, [theory_trees]
    the literal bound for reference. *)

type t = {
  trees : int list array;  (** tree index → edge ids of that spanning tree *)
  loads : int array;       (** edge id → number of packed trees using it *)
}

val greedy : Mincut_graph.Graph.t -> trees:int -> t
(** Pack the given number of trees.  Raises [Invalid_argument] if the
    graph is disconnected or [trees < 1]. *)

val recommended_trees : n:int -> lambda_hint:int -> int
(** Practical default: [max 8 (min 96 (2·λ̂·⌈log₂ n⌉))]. *)

val theory_trees : n:int -> lambda:int -> float
(** The literal [λ⁷·log³ n] figure (as a float — it overflows quickly),
    reported in EXPERIMENTS.md next to what was actually needed. *)

val crossings : Mincut_graph.Graph.t -> int list -> in_cut:(int -> bool) -> int
(** Number of edges of the given tree crossing the cut. *)

val first_one_respecting :
  Mincut_graph.Graph.t -> t -> in_cut:(int -> bool) -> int option
(** Index of the first packed tree that 1-respects the cut, if any —
    the quantity Thorup's theorem bounds (experiment F3). *)

val load_invariant : Mincut_graph.Graph.t -> t -> bool
(** Σ loads = trees·(n−1) and every tree spans — packing sanity. *)

val distributed_cost :
  n:int -> diameter:int -> trees:int -> per_tree_rounds:int -> Mincut_congest.Cost.t
(** Round cost of computing the packing distributedly: [trees]
    sequential MST computations, each charged [per_tree_rounds] (the
    Kutten–Peleg bound from {!Mincut_core.Params}); load bookkeeping is
    local.  Returned as a single [Charged] span — the bound is cited,
    not executed. *)

(** {2 Edge-disjoint packings (Nash–Williams / Tutte)}

    Thorup's packing reuses edges (load-based); the classical
    edge-disjoint packing is the other regime: by Nash–Williams/Tutte a
    graph with min cut λ packs at least ⌈λ/2⌉ edge-disjoint spanning
    trees (treating weight as multiplicity), and trivially at most λ.
    The greedy packing below gives a certified lower bound on tree
    packing number used by tests and the workload tables. *)

val disjoint_greedy : Mincut_graph.Graph.t -> int list list
(** Greedily extract edge-disjoint spanning trees (weight = multiplicity:
    an edge can appear in up to [w] trees).  Returns the edge-id lists of
    the extracted trees; stops when the residual graph is disconnected. *)

val disjoint_count : Mincut_graph.Graph.t -> int
(** Number of trees [disjoint_greedy] extracts; always ≤ λ. *)
