type t = { workers : int }

let create ?workers () =
  let default = min 8 (Domain.recommended_domain_count ()) in
  let w = match workers with Some w -> w | None -> default in
  { workers = max 1 w }

let sequential = { workers = 1 }

let workers t = t.workers

let map t f jobs =
  let n = Array.length jobs in
  if n = 0 then [||]
  else if t.workers = 1 || n = 1 then Array.map f jobs
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f jobs.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned = min (t.workers - 1) (n - 1) in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index was claimed exactly once *))
      results
  end

let map_reduce t ~f ~init ~merge jobs =
  Array.fold_left merge init (map t f jobs)
