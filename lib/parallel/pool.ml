(* Persistent work-stealing domain pool.

   One process-global runtime owns every worker domain; a [t] is just a
   width configuration over it.  Domains are spawned lazily the first
   time a map actually needs them, then parked on a condition variable
   between batches — a serve process or a bench loop pays spawn cost
   once, not per call.  A batch splits the job index range into one
   contiguous deque per participant; owners pop [grain]-sized chunks
   off the front, and a participant that runs dry steals the back half
   of the first non-empty deque in a fixed scan order.  Results land in
   a slot array indexed by job — the steal order decides who computes a
   slot, never what goes into it, which is the whole determinism
   argument (DESIGN.md §14).

   Synchronization is deliberately boring: every mutable runtime field
   is either an [Atomic] counter, confined behind the runtime mutex, or
   a per-deque mutex guarding two ints.  The pool sits below the
   analysis layer in the library graph, so it cannot use the ranked
   [Lockcheck] wrappers — its raw [Mutex.create] sites are the
   allow-listed exception in .mincut-lint-allow / .mincut-ast-allow,
   and all cross-domain hand-off of results happens-before the caller
   reads them via the runtime mutex. *)

type t = { width : int }

let sizing ~recommended = if recommended <= 1 then 1 else min 8 recommended

let recommended_workers () =
  sizing ~recommended:(Domain.recommended_domain_count ())

let create ?workers () =
  let w = match workers with Some w -> w | None -> recommended_workers () in
  { width = max 1 w }

let sequential = { width = 1 }

let workers t = t.width

(* ---- process-global counters (Atomic: safe under Domcheck) ---------- *)

let spawns_ctr = Atomic.make 0
let steals_ctr = Atomic.make 0
let tasks_ctr = Atomic.make 0
let batches_ctr = Atomic.make 0

type stats = { spawns : int; steals : int; tasks : int; batches : int }

let stats () =
  {
    spawns = Atomic.get spawns_ctr;
    steals = Atomic.get steals_ctr;
    tasks = Atomic.get tasks_ctr;
    batches = Atomic.get batches_ctr;
  }

(* Set on worker domains: a nested [map] issued from inside a task runs
   sequentially inline instead of deadlocking on the shared runtime. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* ---- per-participant deques ----------------------------------------- *)

(* A deque is a half-open index range [lo, hi) of jobs.  The owner pops
   chunks from the front; thieves split off the back half.  Two ints
   under a leaf mutex — chunks are whole CONGEST simulations, so
   contention on these locks is noise. *)
type deque = { dq_lock : Mutex.t; mutable lo : int; mutable hi : int }

let take_front d ~grain =
  Mutex.lock d.dq_lock;
  if d.lo >= d.hi then begin
    Mutex.unlock d.dq_lock;
    None
  end
  else begin
    let lo = d.lo in
    let k = min grain (d.hi - lo) in
    d.lo <- lo + k;
    Mutex.unlock d.dq_lock;
    Some (lo, lo + k)
  end

let steal_back d =
  Mutex.lock d.dq_lock;
  let len = d.hi - d.lo in
  if len <= 0 then begin
    Mutex.unlock d.dq_lock;
    None
  end
  else begin
    let k = (len + 1) / 2 in
    let hi = d.hi in
    d.hi <- hi - k;
    Mutex.unlock d.dq_lock;
    Some (hi - k, hi)
  end

(* Only ever called on the thief's own empty deque, and nothing but the
   owner can refill a deque, so overwriting [lo]/[hi] is safe. *)
let adopt d ~lo ~hi =
  Mutex.lock d.dq_lock;
  d.lo <- lo;
  d.hi <- hi;
  Mutex.unlock d.dq_lock

(* ---- batches and the global runtime --------------------------------- *)

type batch = {
  gen : int;             (* generation stamp: a helper joins each batch once *)
  bwidth : int;          (* participants, caller included *)
  grain : int;           (* owner chunk size popped per [take_front] *)
  run : int -> unit;     (* execute job i, store its result slot *)
  deques : deque array;  (* one per participant *)
  mutable joined : int;  (* helpers that picked this batch up *)
  mutable finished : int;  (* helpers done with it *)
}

type runtime = {
  lock : Mutex.t;             (* guards every mutable field below *)
  work_ready : Condition.t;   (* helpers park here between batches *)
  batch_done : Condition.t;   (* the caller waits here for its helpers *)
  submit_lock : Mutex.t;      (* serializes batches across calling domains *)
  mutable batch : batch option;
  mutable generation : int;
  mutable helpers : unit Domain.t list;
  mutable nhelpers : int;
  mutable stop : bool;        (* at_exit: park no more, return instead *)
}

(* Hard cap on helper domains: 16 participants total keeps the shared
   pool far under the OCaml runtime's domain limit no matter how many
   pool values ask for width. *)
let max_helpers = 15

let run_participant b ~me =
  let rec go () =
    match take_front b.deques.(me) ~grain:b.grain with
    | Some (lo, hi) ->
        for i = lo to hi - 1 do
          b.run i
        done;
        go ()
    | None -> hunt 1
  and hunt off =
    (* deterministic victim scan: me+1, me+2, ... — determinism of the
       results does not depend on it, but reproducible scan order keeps
       steal counts stable enough to assert on in tests *)
    if off < b.bwidth then
      match steal_back b.deques.((me + off) mod b.bwidth) with
      | Some (lo, hi) ->
          Atomic.incr steals_ctr;
          adopt b.deques.(me) ~lo ~hi;
          go ()
      | None -> hunt (off + 1)
  in
  go ()

(* Helper domain body.  Invariant: [r.lock] is held on entry to
   [helper_serve] and released before it returns.  A helper joins a
   batch at most once (generation stamp + joined quota), runs its
   participant loop unlocked, then reports in and parks again. *)
let rec helper_serve r last_gen =
  if r.stop then Mutex.unlock r.lock
  else
    match r.batch with
    | Some b when b.gen <> last_gen && b.joined < b.bwidth - 1 ->
        b.joined <- b.joined + 1;
        let me = b.joined in
        let gen = b.gen in
        Mutex.unlock r.lock;
        run_participant b ~me;
        Mutex.lock r.lock;
        b.finished <- b.finished + 1;
        if b.finished >= b.bwidth - 1 then Condition.signal r.batch_done;
        helper_serve r gen
    | _ ->
        Condition.wait r.work_ready r.lock;
        helper_serve r last_gen

let shutdown r =
  Mutex.lock r.lock;
  r.stop <- true;
  Condition.broadcast r.work_ready;
  let hs = r.helpers in
  Mutex.unlock r.lock;
  List.iter Domain.join hs

(* The single mutable anchor: the runtime hides behind one Atomic cell,
   created on first parallel use (never on sequential paths, so 1-core
   hosts and workers=1 deployments allocate no runtime at all). *)
let runtime_cell : runtime option Atomic.t = Atomic.make None

let get_runtime () =
  match Atomic.get runtime_cell with
  | Some r -> r
  | None ->
      let r =
        {
          lock = Mutex.create ();
          work_ready = Condition.create ();
          batch_done = Condition.create ();
          submit_lock = Mutex.create ();
          batch = None;
          generation = 0;
          helpers = [];
          nhelpers = 0;
          stop = false;
        }
      in
      if Atomic.compare_and_set runtime_cell None (Some r) then begin
        (* shut the parked helpers down when the process exits, so test
           and CLI runs terminate instead of leaking blocked domains *)
        at_exit (fun () -> shutdown r);
        r
      end
      else
        (* lost the installation race: the loser's mutexes are garbage *)
        (match Atomic.get runtime_cell with
        | Some r -> r
        | None -> assert false)

let ensure_helpers r wanted =
  let wanted = min wanted max_helpers in
  Mutex.lock r.lock;
  while r.nhelpers < wanted do
    (* capture the installed runtime directly: re-reading [runtime_cell]
       inside the domain body would put an assert on the worker's first
       instruction, and an exception there kills the domain silently *)
    let d =
      Domain.spawn (fun () ->
          Domain.DLS.set in_worker true;
          Mutex.lock r.lock;
          helper_serve r 0)
    in
    Atomic.incr spawns_ctr;
    r.helpers <- d :: r.helpers;
    r.nhelpers <- r.nhelpers + 1
  done;
  Mutex.unlock r.lock

let collect results =
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false (* every job index is claimed exactly once *))
    results

let parallel_map width f jobs =
  let n = Array.length jobs in
  let r = get_runtime () in
  (* one batch at a time on the shared runtime; concurrent callers from
     other domains queue here *)
  Mutex.lock r.submit_lock;
  ensure_helpers r (width - 1);
  let results = Array.make n None in
  let run i =
    Atomic.incr tasks_ctr;
    results.(i) <-
      Some (match f jobs.(i) with v -> Ok v | exception e -> Error e)
  in
  let grain = max 1 (n / (4 * width)) in
  let deques =
    Array.init width (fun k ->
        { dq_lock = Mutex.create (); lo = k * n / width; hi = (k + 1) * n / width })
  in
  Mutex.lock r.lock;
  r.generation <- r.generation + 1;
  let b =
    {
      gen = r.generation;
      bwidth = width;
      grain;
      run;
      deques;
      joined = 0;
      finished = 0;
    }
  in
  r.batch <- Some b;
  Atomic.incr batches_ctr;
  Condition.broadcast r.work_ready;
  Mutex.unlock r.lock;
  run_participant b ~me:0;
  (* helpers only stop once nothing is left to claim, and every claimed
     job is finished by its claimant before it stops — so all helpers
     finished implies every slot is filled *)
  Mutex.lock r.lock;
  while b.finished < b.bwidth - 1 do
    Condition.wait r.batch_done r.lock
  done;
  r.batch <- None;
  Mutex.unlock r.lock;
  Mutex.unlock r.submit_lock;
  collect results

let map t f jobs =
  let n = Array.length jobs in
  if n = 0 then [||]
  else
    let width = min (min t.width n) (max_helpers + 1) in
    if width <= 1 || Domain.DLS.get in_worker then
      Array.map
        (fun j ->
          Atomic.incr tasks_ctr;
          f j)
        jobs
    else parallel_map width f jobs

let map_reduce t ~f ~init ~merge jobs =
  Array.fold_left merge init (map t f jobs)
