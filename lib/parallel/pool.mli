(** Shared deterministic parallel runtime: data-parallel map over a
    persistent pool of OCaml 5 domains with work stealing.

    {b Persistence.}  Worker domains are spawned lazily, once per
    process, and then reused by every subsequent [map] from any pool
    value — a [t] is a lightweight width configuration over one shared
    domain set, so the serving layer, the solver pipelines and the
    benches all draw from the same domains instead of paying
    spawn/join per call.  Idle workers block on a condition variable;
    an [at_exit] hook shuts them down so processes terminate cleanly.

    {b Work stealing.}  A [map] over [n] jobs installs one batch: the
    index range is split into per-participant deques (contiguous chunk
    ranges).  Each participant pops chunks from the front of its own
    deque; a participant that runs dry scans the others in a fixed
    deterministic order and steals the back half of the first
    non-empty deque it finds — chunk-granular splitting, so skewed
    task sizes load-balance instead of serializing behind the largest
    round-robin share.

    {b Determinism.}  [map] returns results in input order — the only
    scheduling-dependent value anywhere is {e which domain} computes
    each slot, never {e what} goes into it.  Combined with the
    repo-wide discipline that jobs share no mutable state (each worker
    gets its own graph copy / RNG derived from explicit seeds), every
    consumer of the pool is bit-identical to its sequential run under
    any steal order: the exact and approx pipelines assert this
    property under qcheck, and the serving cache relies on it.

    With [workers = 1] (or single-element inputs, or on hosts where
    [Domain.recommended_domain_count () = 1]) no domain is ever
    spawned and the map degrades to a plain sequential loop.  A [map]
    issued from inside a worker (nested parallelism) also runs
    sequentially inline rather than deadlocking on the shared pool. *)

type t

val create : ?workers:int -> unit -> t
(** Default worker count: {!recommended_workers}[ ()].  Values < 1 are
    clamped to 1. *)

val sequential : t
(** A pool with one worker: [map sequential] is [Array.map]. *)

val workers : t -> int

val sizing : recommended:int -> int
(** The default-width policy, exposed pure for tests: [1] when
    [recommended <= 1] (a 1-core host gains nothing from domains —
    don't spawn any), otherwise [min 8 recommended] (the simulator is
    memory-bandwidth-hungry; more domains than memory channels buys
    nothing). *)

val recommended_workers : unit -> int
(** [sizing ~recommended:(Domain.recommended_domain_count ())]. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f jobs] applies [f] to every job on the shared domain set
    and returns results in input index order.  If any application
    raises, the remaining jobs still run to completion and the first
    (lowest-index) exception is re-raised in the calling domain. *)

val map_reduce :
  t -> f:('a -> 'b) -> init:'acc -> merge:('acc -> 'b -> 'acc) -> 'a array -> 'acc
(** [map_reduce t ~f ~init ~merge jobs] maps in parallel, then folds the
    results sequentially {e in input index order} in the calling domain
    — the canonical deterministic-merge shape used by the per-tree DP
    fan-out (costs accumulate and ties break exactly as the sequential
    loop did). *)

(** {1 Pool statistics}

    Process-global counters over the shared runtime, for bench
    honesty: a 1-core CI run must show [spawns = 0], and consecutive
    serve solves must grow [tasks] without growing [spawns] (the
    domains persist). *)

type stats = {
  spawns : int;   (** worker domains spawned since process start *)
  steals : int;   (** successful chunk steals across all batches *)
  tasks : int;    (** jobs executed through [map] (any path) *)
  batches : int;  (** parallel batches installed on the shared runtime *)
}

val stats : unit -> stats
