(** Shared deterministic parallel runtime: data-parallel map over OCaml 5
    domains.

    [map] fans an array of independent jobs over [workers] domains and
    returns results in input order — the only scheduling-dependent value
    anywhere is {e which domain} computes each slot, never {e what} goes
    into it.  Combined with the repo-wide discipline that jobs share no
    mutable state (each worker gets its own graph copy / RNG derived
    from explicit seeds), every consumer of the pool is bit-identical to
    its sequential run: the exact and approx pipelines assert this
    property under qcheck, and the serving cache relies on it.

    With [workers = 1] (or single-element inputs) no domain is spawned
    and the map degrades to a plain sequential loop — the fallback for
    runtimes or deployments where spawning domains is undesirable.
    Domains are spawned per [map] call and joined before it returns; at
    the granularity of this repo's jobs (whole CONGEST simulations)
    spawn cost is noise. *)

type t

val create : ?workers:int -> unit -> t
(** Default worker count: [Domain.recommended_domain_count], capped at 8
    (the simulator is memory-bandwidth-hungry; more domains than memory
    channels buys nothing).  Values < 1 are clamped to 1. *)

val sequential : t
(** A pool with one worker: [map sequential] is [Array.map]. *)

val workers : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f jobs] applies [f] to every job.  If any application raises,
    the remaining jobs still run, every domain is joined, and the first
    (lowest-index) exception is re-raised in the calling domain. *)

val map_reduce :
  t -> f:('a -> 'b) -> init:'acc -> merge:('acc -> 'b -> 'acc) -> 'a array -> 'acc
(** [map_reduce t ~f ~init ~merge jobs] maps in parallel, then folds the
    results sequentially {e in input index order} in the calling domain
    — the canonical deterministic-merge shape used by the per-tree DP
    fan-out (costs accumulate and ties break exactly as the sequential
    loop did). *)
