(** Incremental min-cut over a {!Mincut_graph.Handle}: a maintained
    Nagamochi–Ibaraki sparse certificate answers λ after every delta,
    and a full re-solve happens only when the certificate is
    invalidated.

    {b The certificate.} A [k]-jungle: [k] spanning forests built by
    greedy unit placement — each weight unit of a channel goes into the
    lowest-indexed forest where its endpoints are still disconnected,
    and units that fit nowhere are dropped.  The union [H] of the
    forests preserves every cut of value [< k] of the live graph [G]
    exactly and keeps every other cut at [>= k] (any greedy order: a
    dropped unit certifies a full [u]–[v] path in each forest), so
    [λ(G) = λ(H)] with the same optimal sides whenever [λ(G) < k].
    [k] tracks [2λ + 2], capped at one past the minimum weighted degree
    (where saturation is impossible).

    {b The three answer tiers}, cheapest first:

    - {e Reused}: every channel touched since the last anchored answer
      only {e gained} weight and none crosses the anchored min-cut side
      — λ and the side are provably unchanged, O(|delta|).
    - {e Cert_solved}: weight-increase-only deltas, but one crossed the
      side.  The jungle is still a valid certificate (NI certificates
      are closed under edge insertion), so λ is recomputed exactly by a
      sequential Stoer–Wagner pass over the {e sparse} certificate.
    - {e Resolved}: a removal, weight decrease, merge or split (or a
      saturated certificate) invalidated the jungle — full re-solve
      from scratch: rebuild the forests over the compacted graph and
      Stoer–Wagner the fresh certificate.  {!stats} exposes the rate.

    Higher layers ({!Api} sessions, the serve cache) reuse whole
    summaries across versions: {!generation} identifies a maximal run
    of versions over which (λ, side) are proven unchanged, so anything
    derived from a solve at generation [g] may be served verbatim while
    [generation t = g]. *)

type mode = Reused | Cert_solved | Resolved

val mode_name : mode -> string
(** ["reused"] / ["cert"] / ["resolved"] — the wire/CLI rendering. *)

type answer = { lambda : int; mode : mode }

type stats = {
  mutable deltas_applied : int;
  mutable reused : int;  (** tier-1 answers (λ proven unchanged) *)
  mutable cert_solves : int;
      (** tier-2 answers (Stoer–Wagner over the live certificate) *)
  mutable full_resolves : int;
      (** tier-3 answers: certificate rebuilt from the compacted graph *)
  mutable invalidations : int;
      (** certificate invalidation events (every one forces a tier-3
          answer, so this equals [full_resolves] today; kept separate in
          case cheaper recovery paths appear) *)
  mutable forest_placements : int;
      (** weight units placed {e incrementally} (tier 1/2 upkeep);
          rebuild placements are not counted *)
}

val fallback_rate : stats -> float
(** [full_resolves / deltas_applied] (0 when no deltas). *)

type t

val create : Mincut_graph.Graph.t -> t
(** Open at version 0 of the channel aggregation of the graph; builds
    the initial certificate and resolves λ eagerly.  The initial build
    is not counted in {!stats}. *)

val apply : t -> Mincut_graph.Delta.op -> (Mincut_graph.Handle.outcome * answer, string) result
(** Apply one delta and answer λ for the new version through the
    cheapest valid tier.  [Error] leaves every structure untouched. *)

val lambda : t -> int
(** λ of the live version (always resolved — {!apply} is eager). *)

val side : t -> Mincut_util.Bitset.t
(** A side achieving {!lambda} on the live version.  Do not mutate. *)

val generation : t -> int
(** Bumped exactly when the proven (λ, side) run breaks; see above. *)

val handle : t -> Mincut_graph.Handle.t
val graph : t -> Mincut_graph.Graph.t
(** {!Mincut_graph.Handle.current} of the live version. *)

val compact : t -> unit
(** {!Mincut_graph.Handle.compact} the handle.  The certificate, λ, the
    side and {!generation} all survive — compaction is observationally
    invisible, which is what makes delta-then-solve and
    compact-then-solve bit-identical. *)

val stats : t -> stats

val cert_k : t -> int
(** Current certificate degree bound [k] (always [> λ]). *)

val cert_graph : t -> Mincut_graph.Graph.t
(** The maintained certificate [H] as a graph on the live node set —
    for tests: [λ(H) = λ(G)] whenever [λ(G) < k]. *)
