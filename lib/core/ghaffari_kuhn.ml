module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Bfs = Mincut_graph.Bfs
module Nagamochi = Mincut_graph.Nagamochi
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost

type result = {
  value : int;
  side : Bitset.t;
  iterations : int;
  cost : Cost.t;
}

(* Minimum weighted degree of [h] and a node achieving it. *)
let min_degree_node h =
  let best = ref 0 in
  for v = 1 to Graph.n h - 1 do
    if Graph.weighted_degree h v < Graph.weighted_degree h !best then best := v
  done;
  (!best, Graph.weighted_degree h !best)

let run ?(params = Params.default) ~epsilon g =
  if epsilon <= 0.0 then invalid_arg "Ghaffari_kuhn.run: epsilon must be positive";
  let n = Graph.n g in
  if n < 2 then invalid_arg "Ghaffari_kuhn.run: need n >= 2";
  if not (Bfs.is_connected g) then invalid_arg "Ghaffari_kuhn.run: disconnected graph";
  let diameter = Tree.height (Tree.bfs_tree g ~root:0) in
  let iteration_rounds = Params.kp_mst_rounds params ~n ~diameter in
  (* [to_orig.(v)] = representative of v's supernode in the current
     contracted graph; maintained to recover cut sides in G. *)
  let to_cur = Array.init n (fun v -> v) in
  let side_of_cur h target =
    ignore h;
    let side = Bitset.create n in
    for v = 0 to n - 1 do
      if to_cur.(v) = target then Bitset.add side v
    done;
    side
  in
  let best_value = ref max_int in
  let best_side = ref (Bitset.create n) in
  let consider h node =
    let d = Graph.weighted_degree h node in
    if d < !best_value then begin
      best_value := d;
      best_side := side_of_cur h node
    end
  in
  let rec loop h iterations cost =
    if Graph.n h < 2 then (iterations, cost)
    else begin
    let node, delta = min_degree_node h in
    consider h node;
    let cost =
      Cost.( ++ ) cost
        (Cost.charged
           (Printf.sprintf "gk iteration %d (charged at published bound)" (iterations + 1))
           iteration_rounds)
    in
    if Graph.n h <= 2 then (iterations + 1, cost)
    else begin
      (* contract every edge whose NI forest index exceeds δ/(2+ε):
         endpoints of such edges are more connected than any cut below
         the current candidate, so no minimum cut separates them *)
      let t = max 1 (int_of_float (floor (float_of_int delta /. (2.0 +. epsilon)))) in
      let h', map = Nagamochi.contract_above h ~k:t in
      if Graph.n h' = Graph.n h then (iterations + 1, cost)
      else begin
        for v = 0 to n - 1 do
          to_cur.(v) <- map.(to_cur.(v))
        done;
        loop h' (iterations + 1) cost
      end
    end
    end
  in
  let iterations, cost = loop g 0 Cost.zero in
  { value = !best_value; side = !best_side; iterations; cost }
