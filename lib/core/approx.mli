(** (1+ε)-approximate minimum cut in Õ((√n + D)/poly ε) rounds — the
    paper's "standard reduction" from the exact algorithm.

    Karger's sampling lemma ([Tho07, Lemma 7]): sample every unit of
    weight with probability [p = Θ(log n / (ε²·λ))]; w.h.p. every cut of
    the skeleton is within (1±ε/3) of [p] times its value in [G], and in
    particular the skeleton's min cut is [O(log n/ε²)] — small enough
    for the exact poly(λ) algorithm.  The subtree side found in the
    skeleton is then {e evaluated as a cut of the original graph}, so
    the returned value is always a genuine cut value ≥ λ.

    Since [λ] is unknown, the sampling probability is found by downward
    exponential search on a guess [λ̂] (starting from the min-degree
    upper bound): if the skeleton's min cut comes out below the
    concentration threshold the guess was too high and is halved; once
    [p] reaches 1 the algorithm degenerates to the exact one. *)

type result = {
  value : int;                  (** C_G(side) — a real cut of G *)
  side : Mincut_util.Bitset.t;
  p : float;                    (** final sampling probability *)
  skeleton_value : int;         (** min cut found in the skeleton *)
  guesses : int;                (** λ̂ halvings performed *)
  cost : Mincut_congest.Cost.t;
}

val run :
  ?params:Params.t ->
  ?trees:int ->
  ?pool:Mincut_parallel.Pool.t ->
  ?trials:int ->
  rng:Mincut_util.Rng.t ->
  epsilon:float ->
  Mincut_graph.Graph.t ->
  result
(** [trees] is the packing budget used on the skeleton (default 32).
    Requires a connected graph with n ≥ 2 and [epsilon > 0].

    [trials] (default 1) runs that many independent skeleton searches and
    keeps the smallest resulting cut (earliest trial on ties); per-trial
    RNGs are derived from [rng] by [Rng.split] in index order, so the
    result for a given [trials] is bit-identical for any [pool] worker
    count.  With [trials = 1] the caller's [rng] drives the search
    directly (exactly the historical behavior) and [pool] instead
    accelerates the per-tree DP inside each internal exact solve.
    Trials are concurrent executions, so their round costs combine with
    [Cost.par]. *)
