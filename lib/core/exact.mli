(** Exact minimum cut for small λ — the paper's main algorithm.

    Pack trees à la Thorup (each new tree is the MST w.r.t. the loads of
    the previous ones), and for each packed tree run the Section-2
    1-respecting-cut algorithm ({!One_respect}); return the best subtree
    cut found across all trees.  By Thorup's theorem, once enough trees
    are packed ([Θ(λ⁷ log³ n)] in theory, a handful in practice — see
    experiment F3) some tree 1-respects a minimum cut, making the answer
    exactly λ.

    Round cost: [trees] Kutten–Peleg MSTs (charged at the KP bound) plus
    [trees] runs of the Õ(√n + D) Theorem-2.1 pipeline — the paper's
    [Õ((√n + D)·poly(λ))].

    The result is always a genuine cut of the graph (value = C(side)),
    hence always ≥ λ; tests assert equality against Stoer–Wagner on
    suites where the packing budget is adequate. *)

type result = {
  value : int;
  side : Mincut_util.Bitset.t;    (** the best subtree side found *)
  best_tree : int;                 (** index of the winning packed tree *)
  trees_used : int;
  cost : Mincut_congest.Cost.t;
  stats : One_respect.stats;       (** stats of the winning tree's run *)
}

val run :
  ?params:Params.t ->
  ?pool:Mincut_parallel.Pool.t ->
  ?lambda_upper:int ->
  ?trees:int ->
  Mincut_graph.Graph.t ->
  result
(** [trees] defaults to
    [Tree_packing.recommended_trees ~lambda_hint:(min weighted degree)];
    [lambda_upper] (e.g. {!Sample_estimate.result}'s [upper]) tightens
    the hint to [min (min weighted degree) lambda_upper], pruning the
    packing budget before any tree is built.  An explicit [trees]
    overrides both.  Requires n ≥ 2; returns the 0-cut with a component
    side when the graph is disconnected.

    [pool] (default sequential) fans the per-tree 1-respecting DP
    instances over domains; results are merged in tree index order, so
    the outcome — value, side, winning tree, cost breakdown — is
    bit-identical for any worker count. *)

val min_weighted_degree : Mincut_graph.Graph.t -> int
(** The classic [λ ≤ min_v δ(v)] upper bound, used as the packing-budget
    hint. *)
