type t = {
  kp_constant : int;
  congest : Mincut_congest.Config.t;
  run_real_primitives : bool;
}

let default =
  { kp_constant = 1; congest = Mincut_congest.Config.default; run_real_primitives = true }

let fast = { default with run_real_primitives = false }

let log_star n =
  let rec go acc x = if x <= 2 then max 1 acc else go (acc + 1) (int_of_float (log (float_of_int x) /. log 2.0)) in
  go 1 n

let isqrt_ceil n = int_of_float (ceil (sqrt (float_of_int (max 1 n))))

let kp_mst_rounds t ~n ~diameter =
  t.kp_constant * ((isqrt_ceil n * log_star n) + diameter)

let kp_partition_rounds = kp_mst_rounds

let sqrt_target ~n = isqrt_ceil n

(* Sum of One_respect.run's analytic schedules (its fast mode), with the
   run-measured edge loads replaced by their structural maxima: every
   tree-wide pipelined sweep carries at most O(k) items and every
   within-fragment wave at most h+1, so the charge is an upper schedule
   of any actual run over the same fragment geometry. *)
let one_respect_charged_rounds t ~n ~height ~fragments ~max_frag_height =
  let d = height in
  let k = fragments in
  let h = max_frag_height in
  kp_partition_rounds t ~n ~diameter:d
  (* BFS backbone *)
  + (d + 1)
  (* step1: fragment id agreement; broadcast the k-1 T_F edges *)
  + (2 * (h + 1))
  + (2 * (d + k))
  (* step2: child-fragment upcast (≤ k items); ancestor downcast
     (|A(v)| ≤ 2(h+1)); F(u) downcast (≤ k fragments) *)
  + (h + k)
  + ((2 * h) + (2 * (h + 1)))
  + ((2 * h) + k)
  (* step3: within-fragment delta wave; broadcast delta(F_i) *)
  + (h + 1)
  + (2 * (d + k))
  (* step4: local detection; merging nodes + T'_F edges (≤ 2k items) *)
  + 1
  + (2 * (d + (2 * k)))
  (* step5: per-edge LCA exchange (≤ 2(h+1) items); type-(i) counts;
     type-(ii) counts; rho_down via the delta_down machinery *)
  + (1 + (2 * (h + 1)))
  + (2 * (d + k))
  + ((2 * h) + 1)
  + ((h + 1) + (2 * (d + k)))
  (* finish: global min convergecast + broadcast *)
  + (2 * (d + 1))
