module Graph = Mincut_graph.Graph
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost
module Rng = Mincut_util.Rng

type algorithm =
  | Exact_small_lambda
  | Exact_two_respect
  | Approx of float
  | Ghaffari_kuhn of float
  | Su of float

let algorithm_name = function
  | Exact_small_lambda -> "exact (tree packing + 1-respect)"
  | Exact_two_respect -> "exact (tree packing + 2-respect)"
  | Approx e -> Printf.sprintf "(1+%.2f)-approx (skeleton + exact)" e
  | Ghaffari_kuhn e -> Printf.sprintf "(2+%.2f)-approx (Ghaffari-Kuhn)" e
  | Su e -> Printf.sprintf "(1+%.2f)-style (Su)" e

type summary = {
  algorithm : algorithm;
  value : int;
  side : Bitset.t;
  rounds : int;
  cost : Cost.t;
  breakdown : (string * int) list;
}

let of_cost algorithm value side (cost : Cost.t) =
  {
    algorithm;
    value;
    side;
    rounds = cost.Cost.rounds;
    cost;
    breakdown = Cost.breakdown cost;
  }

let estimate ?seed ?trials g = Sample_estimate.run ?seed ?trials g

let min_cut ?(params = Params.default) ?(algorithm = Exact_small_lambda) ?(seed = 0)
    ?lambda_upper ?trees ?(workers = 1) g =
  if workers < 1 then invalid_arg "Api.min_cut: workers must be >= 1";
  let rng = Rng.create seed in
  (* the pool only changes who computes what, never the answer: every
     consumer merges in index order, so workers stays out of any cache
     key a caller might build from the inputs *)
  let pool =
    if workers = 1 then Mincut_parallel.Pool.sequential
    else Mincut_parallel.Pool.create ~workers ()
  in
  match algorithm with
  | Exact_small_lambda ->
      let r = Exact.run ~params ~pool ?lambda_upper ?trees g in
      of_cost algorithm r.Exact.value r.Exact.side r.Exact.cost
  | Exact_two_respect ->
      let r = Two_respect.min_cut ~params ~pool ?trees g in
      of_cost algorithm r.Two_respect.value r.Two_respect.side r.Two_respect.cost
  | Approx epsilon ->
      let r = Approx.run ~params ~pool ?trees ~rng ~epsilon g in
      of_cost algorithm r.Approx.value r.Approx.side r.Approx.cost
  | Ghaffari_kuhn epsilon ->
      let r = Ghaffari_kuhn.run ~params ~epsilon g in
      of_cost algorithm r.Ghaffari_kuhn.value r.Ghaffari_kuhn.side r.Ghaffari_kuhn.cost
  | Su epsilon ->
      let r = Su.run ~params ~rng ~epsilon g in
      of_cost algorithm r.Su.value r.Su.side r.Su.cost

let one_respecting_cut ?(params = Params.default) g tree = One_respect.run ~params g tree

let verify g summary =
  let c = Bitset.cardinal summary.side in
  c >= 1
  && c <= Graph.n g - 1
  && Graph.cut_of_bitset g summary.side = summary.value
