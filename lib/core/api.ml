module Graph = Mincut_graph.Graph
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost
module Rng = Mincut_util.Rng

type algorithm =
  | Exact_small_lambda
  | Exact_two_respect
  | Approx of float
  | Ghaffari_kuhn of float
  | Su of float

let algorithm_name = function
  | Exact_small_lambda -> "exact (tree packing + 1-respect)"
  | Exact_two_respect -> "exact (tree packing + 2-respect)"
  | Approx e -> Printf.sprintf "(1+%.2f)-approx (skeleton + exact)" e
  | Ghaffari_kuhn e -> Printf.sprintf "(2+%.2f)-approx (Ghaffari-Kuhn)" e
  | Su e -> Printf.sprintf "(1+%.2f)-style (Su)" e

type summary = {
  algorithm : algorithm;
  value : int;
  side : Bitset.t;
  rounds : int;
  cost : Cost.t;
  breakdown : (string * int) list;
}

let of_cost algorithm value side (cost : Cost.t) =
  {
    algorithm;
    value;
    side;
    rounds = cost.Cost.rounds;
    cost;
    breakdown = Cost.breakdown cost;
  }

let estimate ?seed ?trials g = Sample_estimate.run ?seed ?trials g

let min_cut ?(params = Params.default) ?(algorithm = Exact_small_lambda) ?(seed = 0)
    ?lambda_upper ?trees ?(workers = 1) g =
  if workers < 1 then invalid_arg "Api.min_cut: workers must be >= 1";
  let rng = Rng.create seed in
  (* the pool only changes who computes what, never the answer: every
     consumer merges in index order, so workers stays out of any cache
     key a caller might build from the inputs *)
  let pool =
    if workers = 1 then Mincut_parallel.Pool.sequential
    else Mincut_parallel.Pool.create ~workers ()
  in
  match algorithm with
  | Exact_small_lambda ->
      let r = Exact.run ~params ~pool ?lambda_upper ?trees g in
      of_cost algorithm r.Exact.value r.Exact.side r.Exact.cost
  | Exact_two_respect ->
      let r = Two_respect.min_cut ~params ~pool ?trees g in
      of_cost algorithm r.Two_respect.value r.Two_respect.side r.Two_respect.cost
  | Approx epsilon ->
      let r = Approx.run ~params ~pool ?trees ~rng ~epsilon g in
      of_cost algorithm r.Approx.value r.Approx.side r.Approx.cost
  | Ghaffari_kuhn epsilon ->
      let r = Ghaffari_kuhn.run ~params ~epsilon g in
      of_cost algorithm r.Ghaffari_kuhn.value r.Ghaffari_kuhn.side r.Ghaffari_kuhn.cost
  | Su epsilon ->
      let r = Su.run ~params ~rng ~epsilon g in
      of_cost algorithm r.Su.value r.Su.side r.Su.cost

let one_respecting_cut ?(params = Params.default) g tree = One_respect.run ~params g tree

let verify g summary =
  let c = Bitset.cardinal summary.side in
  c >= 1
  && c <= Graph.n g - 1
  && Graph.cut_of_bitset g summary.side = summary.value

(* ---- incremental sessions ------------------------------------------- *)

type session = {
  inc : Incremental.t;
  sparams : Params.t;
  (* summaries anchored to the current (λ, side)-stable generation:
     (solve tag, generation, summary).  While the certificate proves
     (λ, side) unchanged, a matching solve is served verbatim. *)
  mutable anchors : (string * int * summary) list;
}

type delta_answer = Incremental.answer = {
  lambda : int;
  mode : Incremental.mode;
}

let open_session ?(params = Params.default) g =
  { inc = Incremental.create g; sparams = params; anchors = [] }

let apply_delta s op = Incremental.apply s.inc op
let session_lambda s = Incremental.lambda s.inc
let session_side s = Incremental.side s.inc
let session_handle s = Incremental.handle s.inc
let session_graph s = Incremental.graph s.inc
let session_stats s = Incremental.stats s.inc

let compact_session s = Incremental.compact s.inc

(* the (algorithm, seed, trees) coordinates of a solve, as a stable
   string — %h renders ε exactly *)
let solve_tag algorithm seed trees =
  let a =
    match algorithm with
    | Exact_small_lambda -> "exact"
    | Exact_two_respect -> "exact2"
    | Approx e -> Printf.sprintf "approx:%h" e
    | Ghaffari_kuhn e -> Printf.sprintf "gk:%h" e
    | Su e -> Printf.sprintf "su:%h" e
  in
  Printf.sprintf "%s|s%d|t%s" a seed
    (match trees with None -> "-" | Some t -> string_of_int t)

let min_cut_session ?(algorithm = Exact_small_lambda) ?(seed = 0) ?trees
    ?(workers = 1) s =
  let tag = solve_tag algorithm seed trees in
  let gen = Incremental.generation s.inc in
  s.anchors <- List.filter (fun (_, g0, _) -> g0 = gen) s.anchors;
  match List.find_opt (fun (t0, _, _) -> String.equal t0 tag) s.anchors with
  | Some (_, _, summary) -> (summary, true)
  | None ->
      (* the live certificate has λ exactly, so the packing budget is
         seeded with the tightest valid [lambda_upper] there is *)
      let lambda = Incremental.lambda s.inc in
      let summary =
        min_cut ~params:s.sparams ~algorithm ~seed
          ~lambda_upper:(max 1 lambda) ?trees ~workers
          (Incremental.graph s.inc)
      in
      s.anchors <- (tag, gen, summary) :: s.anchors;
      (summary, false)
