module Graph = Mincut_graph.Graph
module Bfs = Mincut_graph.Bfs
module Tree = Mincut_graph.Tree
module Rng = Mincut_util.Rng
module Cost = Mincut_congest.Cost

type result = {
  estimate : int;
  lower : int;
  upper : int;
  level : int;
  levels_tried : int;
  trials_per_level : int;
  factor : int;
  saturated : bool;
  cost : Cost.t;
}

(* smallest k with 2^k >= x (x >= 1) *)
let log2_ceil x =
  let rec go k v = if v >= x then k else go (k + 1) (v * 2) in
  go 0 1

(* 2^k capped so it never overflows the int range or exceeds [cap] *)
let pow2_capped k ~cap = if k >= 62 then cap else min (1 lsl k) cap

let run ?(seed = 0) ?trials g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Sample_estimate.run: need n >= 2";
  if not (Bfs.is_connected g) then
    (* λ = 0, detected exactly the way Exact.run does: the BFS-tree
       construction times out in each component *)
    {
      estimate = 0;
      lower = 0;
      upper = 0;
      level = 0;
      levels_tried = 0;
      trials_per_level = 0;
      factor = 1;
      saturated = false;
      cost = Cost.scheduled "sampling ladder (component detection)" n;
    }
  else begin
    let w_total = Graph.total_weight g in
    let log2n = log2_ceil (max 2 n) in
    let trials = match trials with Some t -> max 1 t | None -> max 4 log2n in
    let levels = max 1 (log2_ceil (max 2 w_total)) in
    let rng = Rng.create seed in
    let off = Graph.csr_offsets g in
    let nbr = Graph.csr_neighbors g in
    let eid = Graph.csr_edge_ids g in
    let m = Graph.m g in
    (* per-trial scratch, reused across the whole ladder: the sampled
       edge set, a tag-versioned visited mark, and the BFS queue *)
    let keep = Array.make (max 1 m) false in
    let mark = Array.make n (-1) in
    let queue = Array.make n 0 in
    let trial_connected ~p ~tag =
      Graph.iter_edges
        (fun e -> keep.(e.Graph.id) <- Rng.binomial rng e.Graph.w p > 0)
        g;
      let head = ref 0 in
      let tail = ref 0 in
      mark.(0) <- tag;
      queue.(!tail) <- 0;
      incr tail;
      let seen = ref 1 in
      while !head < !tail do
        let v = queue.(!head) in
        incr head;
        for s = off.(v) to off.(v + 1) - 1 do
          let u = nbr.(s) in
          if mark.(u) <> tag && keep.(eid.(s)) then begin
            mark.(u) <- tag;
            incr seen;
            queue.(!tail) <- u;
            incr tail
          end
        done
      done;
      !seen = n
    in
    let diameter = Tree.height (Tree.bfs_tree g ~root:0) in
    let cost = ref Cost.zero in
    let level = ref levels in
    let saturated = ref true in
    let tag = ref 0 in
    let i = ref 1 in
    while !saturated && !i <= levels do
      let p = Float.ldexp 1.0 (- !i) in
      let disconnected = ref false in
      for _t = 1 to trials do
        incr tag;
        if not (trial_connected ~p ~tag:!tag) then disconnected := true
      done;
      (* each test is a BFS flood from the root over its sampled
         subgraph; the [trials] floods of one level are independent and
         pipeline behind each other on the same tree levels *)
      cost :=
        Cost.( ++ ) !cost
          (Cost.scheduled
             (Printf.sprintf "level %d: %d connectivity tests (p=2^-%d)" !i
                trials !i)
             (diameter + 2 + (trials - 1)));
      if !disconnected then begin
        level := !i;
        saturated := false
      end
      else incr i
    done;
    let levels_tried = if !saturated then levels else !i in
    let factor = max 4 (4 * log2n) in
    let estimate = pow2_capped !level ~cap:w_total in
    let lower = max 1 (estimate / factor) in
    let upper =
      if !saturated then w_total
      else min w_total (pow2_capped (!level + log2_ceil factor) ~cap:w_total)
    in
    {
      estimate;
      lower;
      upper;
      level = !level;
      levels_tried;
      trials_per_level = trials;
      factor;
      saturated = !saturated;
      cost = Cost.group "sampling λ-estimate ladder" !cost;
    }
  end

let tree_budget_hint r =
  if r.estimate > 0 && not r.saturated then Some r.upper else None
