(** Convenience front end over the four algorithms.

    Typical use:
    {[
      let g = Mincut_graph.Generators.gnp_connected ~rng 256 0.05 in
      let r = Mincut_core.Api.min_cut g in
      Printf.printf "λ = %d in %d simulated rounds\n" r.value r.rounds
    ]} *)

type algorithm =
  | Exact_small_lambda          (** the paper's Õ((√n+D)·poly λ) exact algorithm *)
  | Exact_two_respect           (** extension: Karger 2-respecting cuts, far fewer trees *)
  | Approx of float             (** (1+ε): the paper's headline result *)
  | Ghaffari_kuhn of float      (** (2+ε) baseline [DISC 2013] *)
  | Su of float                 (** concurrent (1+ε)-style baseline [SPAA 2014] *)

val algorithm_name : algorithm -> string

type summary = {
  algorithm : algorithm;
  value : int;                       (** cut value found (exact: = λ) *)
  side : Mincut_util.Bitset.t;       (** achieving side X; each node knows
                                         whether it is in X, per the problem
                                         statement *)
  rounds : int;                      (** simulated CONGEST rounds *)
  cost : Mincut_congest.Cost.t;      (** the provenance-tagged span tree
                                         of the whole run *)
  breakdown : (string * int) list;   (** derived flat view of [cost]:
                                         per-step round costs, leaves in
                                         execution order *)
}

val estimate :
  ?seed:int -> ?trials:int -> Mincut_graph.Graph.t -> Sample_estimate.result
(** The geometric edge-sampling λ-estimate ({!Sample_estimate.run}):
    an [O(log n)]-factor bracket on the min cut from [O(log²n)]
    connectivity tests — serve's "approximate answer now, exact later"
    tier, and the packing-budget cap for [lambda_upper] below. *)

val min_cut :
  ?params:Params.t ->
  ?algorithm:algorithm ->
  ?seed:int ->
  ?lambda_upper:int ->
  ?trees:int ->
  ?workers:int ->
  Mincut_graph.Graph.t ->
  summary
(** Run the chosen algorithm (default [Exact_small_lambda]) on a graph
    with n ≥ 2.  [seed] (default 0) drives the randomized algorithms;
    [trees] overrides the packing budget; [lambda_upper] (typically a
    {!Sample_estimate} [upper]) tightens the default budget of the
    [Exact_small_lambda] pipeline without changing its answer.

    [workers] (default 1) fans independent per-tree solves over that
    many domains for the [Exact_small_lambda], [Exact_two_respect] and
    [Approx] pipelines.  Results are merged in deterministic index
    order, so the summary is bit-identical for every worker count —
    [workers] is a throughput knob only and must never enter a cache
    key derived from the inputs. *)

val one_respecting_cut :
  ?params:Params.t -> Mincut_graph.Graph.t -> Mincut_graph.Tree.t -> One_respect.result
(** Direct access to Theorem 2.1 for a caller-supplied spanning tree. *)

val verify : Mincut_graph.Graph.t -> summary -> bool
(** Recompute [C(side)] from the definition and compare with [value] —
    cheap certification of any summary. *)

(** {2 Incremental sessions}

    A session wraps a {!Mincut_graph.Handle} (versioned graph: base
    snapshot + delta log) and an {!Incremental} certificate, and reuses
    whole summaries across versions: while the certificate proves
    (λ, side) unchanged, {!min_cut_session} re-serves the anchored
    summary without solving.  Fresh solves are seeded with
    [?lambda_upper] = the certificate's exact λ — the tightest valid
    packing-budget cap. *)

type session

type delta_answer = Incremental.answer = {
  lambda : int;  (** λ of the new version *)
  mode : Incremental.mode;  (** which tier answered (see {!Incremental}) *)
}

val open_session : ?params:Params.t -> Mincut_graph.Graph.t -> session
(** Open at version 0; builds the initial certificate eagerly.
    [params] is the round-accounting regime for every solve in this
    session (default {!Params.default}). *)

val apply_delta :
  session ->
  Mincut_graph.Delta.op ->
  (Mincut_graph.Handle.outcome * delta_answer, string) result
(** Apply one delta and answer λ for the new version through the
    cheapest valid tier.  [Error] leaves the session untouched. *)

val min_cut_session :
  ?algorithm:algorithm ->
  ?seed:int ->
  ?trees:int ->
  ?workers:int ->
  session ->
  summary * bool
(** Full summary of the live version.  [true] = served from an anchor
    (the certificate proved the previous summary for these solve
    coordinates still optimal — no solve ran).  Compaction never breaks
    anchoring, so delta-then-solve and compact-then-solve answer
    bit-identically. *)

val compact_session : session -> unit
(** Rebase the handle's snapshot; observationally invisible. *)

val session_lambda : session -> int
val session_side : session -> Mincut_util.Bitset.t
val session_handle : session -> Mincut_graph.Handle.t
val session_graph : session -> Mincut_graph.Graph.t
val session_stats : session -> Incremental.stats
