(** Convenience front end over the four algorithms.

    Typical use:
    {[
      let g = Mincut_graph.Generators.gnp_connected ~rng 256 0.05 in
      let r = Mincut_core.Api.min_cut g in
      Printf.printf "λ = %d in %d simulated rounds\n" r.value r.rounds
    ]} *)

type algorithm =
  | Exact_small_lambda          (** the paper's Õ((√n+D)·poly λ) exact algorithm *)
  | Exact_two_respect           (** extension: Karger 2-respecting cuts, far fewer trees *)
  | Approx of float             (** (1+ε): the paper's headline result *)
  | Ghaffari_kuhn of float      (** (2+ε) baseline [DISC 2013] *)
  | Su of float                 (** concurrent (1+ε)-style baseline [SPAA 2014] *)

val algorithm_name : algorithm -> string

type summary = {
  algorithm : algorithm;
  value : int;                       (** cut value found (exact: = λ) *)
  side : Mincut_util.Bitset.t;       (** achieving side X; each node knows
                                         whether it is in X, per the problem
                                         statement *)
  rounds : int;                      (** simulated CONGEST rounds *)
  cost : Mincut_congest.Cost.t;      (** the provenance-tagged span tree
                                         of the whole run *)
  breakdown : (string * int) list;   (** derived flat view of [cost]:
                                         per-step round costs, leaves in
                                         execution order *)
}

val estimate :
  ?seed:int -> ?trials:int -> Mincut_graph.Graph.t -> Sample_estimate.result
(** The geometric edge-sampling λ-estimate ({!Sample_estimate.run}):
    an [O(log n)]-factor bracket on the min cut from [O(log²n)]
    connectivity tests — serve's "approximate answer now, exact later"
    tier, and the packing-budget cap for [lambda_upper] below. *)

val min_cut :
  ?params:Params.t ->
  ?algorithm:algorithm ->
  ?seed:int ->
  ?lambda_upper:int ->
  ?trees:int ->
  ?workers:int ->
  Mincut_graph.Graph.t ->
  summary
(** Run the chosen algorithm (default [Exact_small_lambda]) on a graph
    with n ≥ 2.  [seed] (default 0) drives the randomized algorithms;
    [trees] overrides the packing budget; [lambda_upper] (typically a
    {!Sample_estimate} [upper]) tightens the default budget of the
    [Exact_small_lambda] pipeline without changing its answer.

    [workers] (default 1) fans independent per-tree solves over that
    many domains for the [Exact_small_lambda], [Exact_two_respect] and
    [Approx] pipelines.  Results are merged in deterministic index
    order, so the summary is bit-identical for every worker count —
    [workers] is a throughput knob only and must never enter a cache
    key derived from the inputs. *)

val one_respecting_cut :
  ?params:Params.t -> Mincut_graph.Graph.t -> Mincut_graph.Tree.t -> One_respect.result
(** Direct access to Theorem 2.1 for a caller-supplied spanning tree. *)

val verify : Mincut_graph.Graph.t -> summary -> bool
(** Recompute [C(side)] from the definition and compare with [value] —
    cheap certification of any summary. *)
