module Graph = Mincut_graph.Graph
module Bfs = Mincut_graph.Bfs
module Sampling = Mincut_graph.Sampling
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Cost = Mincut_congest.Cost
module Pool = Mincut_parallel.Pool

type result = {
  value : int;
  side : Bitset.t;
  p : float;
  skeleton_value : int;
  guesses : int;
  cost : Cost.t;
}

(* One full downward-search trial with its own RNG stream. *)
let search_trial ~params ~trees ~pool ~rng ~epsilon g =
  let n = Graph.n g in
  (* skeleton min cut concentrates around p·λ = c·ln n / ε²; treat a
     result below half of that as evidence the guess λ̂ was too high *)
  let threshold =
    0.5 *. 3.0 *. log (float_of_int (max 2 n)) /. (epsilon *. epsilon)
  in
  let rec search lambda_hat guesses cost_acc =
    let p = Sampling.recommended_p ~n ~epsilon ~lambda_estimate:lambda_hat in
    if p >= 1.0 then begin
      (* small min cut: the exact algorithm runs on G itself *)
      let r = Exact.run ~params ~pool ~trees g in
      {
        value = r.Exact.value;
        side = r.Exact.side;
        p = 1.0;
        skeleton_value = r.Exact.value;
        guesses;
        cost = Cost.( ++ ) cost_acc (Cost.group "exact on G (p = 1)" r.Exact.cost);
      }
    end
    else begin
      (* sampling is a zero-round local step: each node flips coins for
         its incident edges *)
      let sk = Sampling.sample ~rng g ~p in
      let skeleton_ok =
        Graph.m sk.Sampling.graph > 0 && Bfs.is_connected sk.Sampling.graph
      in
      if not skeleton_ok then
        (* guess way too high — the skeleton fell apart *)
        search (max 1 (lambda_hat / 2)) (guesses + 1)
          (Cost.( ++ ) cost_acc (Cost.scheduled "skeleton connectivity check" 1))
      else begin
        let r = Exact.run ~params ~pool ~trees sk.Sampling.graph in
        let cost_acc =
          Cost.( ++ ) cost_acc
            (Cost.group
               (Printf.sprintf "exact on skeleton (lambda_hat = %d)" lambda_hat)
               r.Exact.cost)
        in
        if float_of_int r.Exact.value < threshold && lambda_hat > 1 then
          search (max 1 (lambda_hat / 2)) (guesses + 1) cost_acc
        else
          (* evaluate the skeleton's best side on the original graph:
             one exchange along each edge + a global sum, all within the
             machinery already charged *)
          let value = Graph.cut_of_bitset g r.Exact.side in
          {
            value;
            side = r.Exact.side;
            p;
            skeleton_value = r.Exact.value;
            guesses;
            cost = cost_acc;
          }
      end
    end
  in
  search (max 1 (Exact.min_weighted_degree g)) 0 Cost.zero

let run ?(params = Params.default) ?(trees = 32) ?(pool = Pool.sequential)
    ?(trials = 1) ~rng ~epsilon g =
  if epsilon <= 0.0 then invalid_arg "Approx.run: epsilon must be positive";
  if trials < 1 then invalid_arg "Approx.run: trials must be >= 1";
  let n = Graph.n g in
  if n < 2 then invalid_arg "Approx.run: need n >= 2";
  if not (Bfs.is_connected g) then invalid_arg "Approx.run: disconnected graph";
  if trials = 1 then
    (* single trial: the caller's RNG drives the search directly, and
       the pool accelerates the per-tree DP inside each Exact.run *)
    search_trial ~params ~trees ~pool ~rng ~epsilon g
  else begin
    (* independent skeleton trials: split one RNG per trial up front (in
       index order — the derivation must not depend on scheduling), fan
       the whole searches over the pool, and merge in index order.  Each
       trial runs its inner DP sequentially: the parallelism budget is
       spent at the trial level. *)
    let rngs = Array.make trials rng in
    for i = 0 to trials - 1 do
      rngs.(i) <- Rng.split rng
    done;
    let results =
      Pool.map pool
        (fun trial_rng ->
          search_trial ~params ~trees ~pool:Pool.sequential ~rng:trial_rng
            ~epsilon g)
        rngs
    in
    (* trials are concurrent executions over the same network, so the
       round account is the slowest trial (Cost.par); the winner is the
       smallest cut value, earliest trial on ties *)
    let best = ref results.(0) in
    let cost = ref results.(0).cost in
    for i = 1 to trials - 1 do
      cost := Cost.par !cost results.(i).cost;
      if results.(i).value < !best.value then best := results.(i)
    done;
    { !best with cost = !cost }
  end
