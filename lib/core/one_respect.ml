module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Fragments = Mincut_mst.Fragments
module Cost = Mincut_congest.Cost
module Pipeline = Mincut_congest.Pipeline
module Primitives = Mincut_congest.Primitives

type stats = {
  n : int;
  bfs_height : int;
  fragment_count : int;
  max_fragment_height : int;
  merging_count : int;
  tf_prime_size : int;
  lca_case1 : int;
  lca_case2 : int;
  lca_case3 : int;
  max_lca_exchange : int;
  max_child_frag_load : int;
  max_ancestor_items : int;
  max_f_items : int;
  case2_lca_count : int;
}

type result = {
  cuts : int array;
  best_value : int;
  best_node : int;
  cost : Cost.t;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Shared fragment-level analysis                                      *)
(* ------------------------------------------------------------------ *)

type analysis = {
  fr : Fragments.t;
  f_sets : int list array;    (* F(v): fragments fully contained in v↓ *)
  is_merging : bool array;
  in_tfp : bool array;        (* member of T'F *)
  lta : int array;            (* lowest T'F ancestor-or-self *)
  tf_parent : int array;      (* parent within T'F; -1 at the tree root *)
  tf_depth : int array;       (* depth within T'F (T'F members only) *)
  merging_count : int;
  tfp_size : int;
}

let analyze ?target g tree =
  let n = Graph.n g in
  let target = match target with Some t -> t | None -> Params.sqrt_target ~n in
  let fr = Fragments.partition tree ~target in
  let k = Fragments.count fr in
  (* F(v): walk up from each fragment root; every proper ancestor fully
     contains that fragment. *)
  let f_sets = Array.make n [] in
  for j = 0 to k - 1 do
    let rec up v =
      if v <> -1 then begin
        f_sets.(v) <- j :: f_sets.(v);
        up tree.Tree.parent.(v)
      end
    in
    up tree.Tree.parent.(fr.Fragments.roots.(j))
  done;
  (* merging nodes: two children whose subtrees contain whole fragments *)
  let has_frag v =
    f_sets.(v) <> [] || fr.Fragments.roots.(fr.Fragments.frag_of.(v)) = v
  in
  let is_merging = Array.make n false in
  for v = 0 to n - 1 do
    let cnt =
      Array.fold_left
        (fun acc c -> if has_frag c then acc + 1 else acc)
        0 tree.Tree.children.(v)
    in
    is_merging.(v) <- cnt >= 2
  done;
  (* T'F: fragment roots and merging nodes, wired by lowest-ancestor *)
  let in_tfp = Array.make n false in
  Array.iter (fun r -> in_tfp.(r) <- true) fr.Fragments.roots;
  Array.iteri (fun v m -> if m then in_tfp.(v) <- true) is_merging;
  let lta = Array.make n (-1) in
  let tf_parent = Array.make n (-1) in
  let tf_depth = Array.make n 0 in
  Array.iter
    (fun v ->
      let p = tree.Tree.parent.(v) in
      lta.(v) <- (if in_tfp.(v) then v else lta.(p));
      if in_tfp.(v) then begin
        tf_parent.(v) <- (if p = -1 then -1 else lta.(p));
        tf_depth.(v) <- (if tf_parent.(v) = -1 then 0 else tf_depth.(tf_parent.(v)) + 1)
      end)
    tree.Tree.preorder;
  let merging_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 is_merging in
  let tfp_size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_tfp in
  { fr; f_sets; is_merging; in_tfp; lta; tf_parent; tf_depth; merging_count; tfp_size }

(* ------------------------------------------------------------------ *)
(* Step 5 LCA: the paper's three-case computation                      *)
(* ------------------------------------------------------------------ *)

(* Per edge: (lca, case, exchange items). *)
let lca_of_edge tree an x y =
  let fr = an.fr in
  let frag_of = fr.Fragments.frag_of in
  let dif = fr.Fragments.depth_in_frag in
  if frag_of.(x) = frag_of.(y) then begin
    (* Case 1: both endpoints share a fragment; exchange within-fragment
       ancestor lists over the edge. *)
    let seen = Hashtbl.create 16 in
    let rec mark v =
      Hashtbl.replace seen v ();
      if dif.(v) > 0 then mark tree.Tree.parent.(v)
    in
    mark x;
    let rec climb v = if Hashtbl.mem seen v then v else climb tree.Tree.parent.(v) in
    let z = climb y in
    (z, 1, 1 + max dif.(x) dif.(y))
  end
  else begin
    (* Case 3 (either side): the LCA lies inside one endpoint's
       fragment; that endpoint finds it locally from its F(·) knowledge
       of its in-fragment ancestors. *)
    let find_in_fragment v other_root =
      let rec go v =
        if Tree.is_ancestor tree v other_root then Some v
        else if dif.(v) = 0 then None
        else go tree.Tree.parent.(v)
      in
      go v
    in
    let rx = fr.Fragments.roots.(frag_of.(x)) and ry = fr.Fragments.roots.(frag_of.(y)) in
    match find_in_fragment x ry with
    | Some z -> (z, 3, 0)
    | None -> (
        match find_in_fragment y rx with
        | Some z -> (z, 3, 0)
        | None ->
            (* Case 2: the LCA is a merging node above both fragments;
               exchange T'F ancestor chains over the edge. *)
            let chain v =
              let rec go acc v = if v = -1 then acc else go (v :: acc) an.tf_parent.(v) in
              go [] an.lta.(v)  (* root-first *)
            in
            let cx = chain x and cy = chain y in
            let rec deepest_common last cx cy =
              match (cx, cy) with
              | a :: cx', b :: cy' when a = b -> deepest_common a cx' cy'
              | _ -> last
            in
            let z = deepest_common (-1) cx cy in
            assert (z <> -1);
            (z, 2, 1 + max (List.length cx) (List.length cy)))
  end

let lca_by_fragments ?target g tree =
  let an = analyze ?target g tree in
  Array.map (fun (e : Graph.edge) -> lca_of_edge tree an e.u e.v) (Graph.edges g)

(* ------------------------------------------------------------------ *)
(* Real within-fragment convergecast wave                              *)
(* ------------------------------------------------------------------ *)

(* Every node learns the sum of [values] over its within-fragment
   subtree.  All fragments run in parallel on the engine: each node
   forwards one partial sum to its in-fragment parent once all of its
   in-fragment children have reported. *)
type wave_state = { remaining : int; acc : int; sent : bool }

let frag_wave ~cfg g tree (fr : Fragments.t) values =
  let module Network = Mincut_congest.Network in
  let n = Graph.n g in
  let frag_of = fr.Fragments.frag_of in
  let in_frag_parent v =
    let p = tree.Tree.parent.(v) in
    if p <> -1 && frag_of.(p) = frag_of.(v) then p else -1
  in
  let child_count = Array.make n 0 in
  for v = 0 to n - 1 do
    let p = in_frag_parent v in
    if p <> -1 then child_count.(p) <- child_count.(p) + 1
  done;
  let prog : (wave_state, int) Network.program =
    {
      initial = (fun v -> { remaining = child_count.(v); acc = values.(v); sent = false });
      step =
        (fun ~node ~round:_ ~inbox st ->
          let acc = List.fold_left (fun a (_, x) -> a + x) st.acc inbox in
          let remaining = st.remaining - List.length inbox in
          if remaining = 0 && not st.sent then
            let p = in_frag_parent node in
            if p = -1 then ({ remaining; acc; sent = true }, [])
            else ({ remaining; acc; sent = true }, [ (p, acc) ])
          else ({ st with remaining; acc }, []))
        ;
      halted = (fun st -> st.sent);
    }
  in
  let states, audit = Network.run ~cfg ~words:(fun _ -> 2) g prog in
  (Array.map (fun st -> st.acc) states, audit)

(* ------------------------------------------------------------------ *)
(* Real pipelined multi-item upcast within fragments (Step 2a)         *)
(* ------------------------------------------------------------------ *)

(* Each node starts holding the ids of the child fragments attached
   directly below it; every id must flow up to the fragment root, one
   item per tree edge per round (the paper's "upcast the list of child
   fragments ... O(√n) time" schedule, executed for real). *)
(* Canonical sets ([Mincut_util.Intset], strictly-increasing lists):
   the engine's sanitize mode byte-compares marshalled states, so state
   components must have one representation per value — [Set.Make] AVL
   shapes depend on insertion order and would trip it. *)
module ISet = Mincut_util.Intset

type multi_up = { known : ISet.t; sent_up : ISet.t }

let frag_multi_upcast ~cfg g tree (fr : Fragments.t) initial_items =
  let module Network = Mincut_congest.Network in
  let frag_of = fr.Fragments.frag_of in
  let in_frag_parent v =
    let p = tree.Tree.parent.(v) in
    if p <> -1 && frag_of.(p) = frag_of.(v) then p else -1
  in
  let prog : (multi_up, int) Network.program =
    {
      initial = (fun v -> { known = ISet.of_list initial_items.(v); sent_up = ISet.empty });
      step =
        (fun ~node ~round:_ ~inbox st ->
          let known = List.fold_left (fun a (_, x) -> ISet.add x a) st.known inbox in
          let p = in_frag_parent node in
          if p = -1 then ({ st with known }, [])
          else
            let unsent = ISet.diff known st.sent_up in
            match ISet.min_elt_opt unsent with
            | None -> ({ st with known }, [])
            | Some item ->
                ({ known; sent_up = ISet.add item st.sent_up }, [ (p, item) ]))
        ;
      halted = (fun _ -> false);
    }
  in
  let max_items =
    Array.fold_left
      (fun acc ms ->
        max acc
          (List.fold_left (fun a v -> a + List.length initial_items.(v)) 0 ms))
      0 fr.Fragments.members
  in
  let bound = Fragments.max_height fr + max_items + 2 in
  let states, audit =
    Network.run_bounded ~cfg ~words:(fun _ -> 1) ~rounds:(max 1 bound) g prog
  in
  (Array.map (fun st -> st.known) states, audit)

(* ------------------------------------------------------------------ *)
(* Real pipelined ancestor-id downcast within fragments (Step 2b)      *)
(* ------------------------------------------------------------------ *)

(* Every node learns the ids of all its within-fragment ancestors: each
   node floods its own id downward, one item per tree edge per round
   (the same payload may go to several children in one round — distinct
   edges).  The paper's "every node u sends a message containing its ID
   down the tree T" schedule, executed for real. *)
type multi_down = { got : ISet.t; forwarded : ISet.t }

let frag_ancestor_downcast ~cfg g tree (fr : Fragments.t) =
  let module Network = Mincut_congest.Network in
  let n = Graph.n g in
  let frag_of = fr.Fragments.frag_of in
  let in_frag_children v =
    Array.to_list tree.Tree.children.(v)
    |> List.filter (fun c -> frag_of.(c) = frag_of.(v))
  in
  let prog : (multi_down, int) Network.program =
    {
      initial = (fun v -> { got = ISet.add v ISet.empty; forwarded = ISet.empty });
      step =
        (fun ~node ~round:_ ~inbox st ->
          let got = List.fold_left (fun a (_, x) -> ISet.add x a) st.got inbox in
          let pending = ISet.diff got st.forwarded in
          match in_frag_children node with
          | [] -> ({ got; forwarded = got }, [])
          | kids -> (
              match ISet.min_elt_opt pending with
              | None -> ({ st with got }, [])
              | Some item ->
                  ( { got; forwarded = ISet.add item st.forwarded },
                    List.map (fun c -> (c, item)) kids )))
        ;
      halted = (fun _ -> false);
    }
  in
  let maxh = Fragments.max_height fr in
  let bound = (2 * maxh) + 3 in
  let states, audit =
    Network.run_bounded ~cfg ~words:(fun _ -> 1) ~rounds:(max 1 bound) g prog
  in
  (* verify: each node's got = its within-fragment ancestors (incl self) *)
  for v = 0 to n - 1 do
    let rec chain acc u =
      let acc = ISet.add u acc in
      let p = tree.Tree.parent.(u) in
      if p <> -1 && frag_of.(p) = frag_of.(u) then chain acc p else acc
    in
    assert (ISet.equal states.(v).got (chain ISet.empty v))
  done;
  audit

(* ------------------------------------------------------------------ *)
(* The full Theorem 2.1 pipeline                                       *)
(* ------------------------------------------------------------------ *)

let run ?(params = Params.default) ?target g tree =
  let n = Graph.n g in
  if n < 2 then invalid_arg "One_respect.run: need n >= 2";
  let root = tree.Tree.root in
  (* Global BFS tree: the backbone for network-wide aggregation. *)
  let bfs_tree, c_bfs =
    if params.Params.run_real_primitives then
      Primitives.bfs_tree ~cfg:params.Params.congest g ~root
    else
      let t = Tree.bfs_tree g ~root in
      (t, Cost.scheduled "bfs-tree (scheduled)" (Tree.height t + 1))
  in
  let hb = Tree.height bfs_tree in
  let an = analyze ?target g tree in
  let fr = an.fr in
  let k = Fragments.count fr in
  let maxh = Fragments.max_height fr in
  let dif = fr.Fragments.depth_in_frag in

  (* -------- Step 1: partition into fragments; learn ids; build TF --- *)
  let c_partition =
    Cost.charged "step1: KP partition (charged at KP bound)"
      (Params.kp_partition_rounds params ~n ~diameter:hb)
  in
  let c_frag_ids =
    (* min-id convergecast + downcast within each fragment *)
    Cost.scheduled "step1: fragment id agreement"
      (Pipeline.convergecast ~depth:maxh ~max_edge_load:1
      + Pipeline.broadcast ~depth:maxh ~items:1)
  in
  let c_tf =
    (* broadcast the k-1 inter-fragment edges to the whole network *)
    let items = max 0 (k - 1) in
    Cost.scheduled "step1: broadcast T_F (k-1 inter-fragment edges)"
      (Pipeline.upcast ~depth:hb ~items + Pipeline.broadcast ~depth:hb ~items)
  in

  (* -------- Step 2: F(v) and A(v) knowledge ------------------------- *)
  (* (a) upcast child-fragment lists within each fragment: per-edge load
     is the number of child fragments attached strictly below. *)
  let load_a = Array.make n 0 in
  Array.iteri
    (fun j r ->
      let attach = tree.Tree.parent.(r) in
      if attach <> -1 then begin
        ignore j;
        (* the message about this child fragment crosses every edge from
           the attach node up to its fragment root *)
        let rec up v =
          load_a.(v) <- load_a.(v) + 1;
          if dif.(v) > 0 then up tree.Tree.parent.(v)
        in
        up attach
      end)
    fr.Fragments.roots;
  let max_load_a = Array.fold_left max 0 load_a in
  let c_f_up =
    if params.Params.run_real_primitives then begin
      (* execute the upcast for real: seed each attachment node with the
         ids of the child fragments hanging directly below it, pipeline
         them to the fragment roots, and check the roots learned exactly
         their T_F children *)
      let initial_items = Array.make n [] in
      Array.iteri
        (fun j r ->
          let attach = tree.Tree.parent.(r) in
          if attach <> -1 then initial_items.(attach) <- j :: initial_items.(attach))
        fr.Fragments.roots;
      let known, up_audit = frag_multi_upcast ~cfg:params.Params.congest g tree fr initial_items in
      Array.iteri
        (fun i r ->
          let expected = List.sort Int.compare fr.Fragments.frag_children.(i) in
          let got =
            List.filter
              (fun j -> fr.Fragments.frag_parent.(j) = i)
              (ISet.elements known.(r))
          in
          assert (List.sort Int.compare got = expected))
        fr.Fragments.roots;
      Cost.executed ~audit:up_audit "step2: upcast child-fragment lists (real)"
        up_audit.Mincut_congest.Network.rounds
    end
    else
      Cost.scheduled "step2: upcast child-fragment lists (F computation)"
        (Pipeline.convergecast ~depth:maxh ~max_edge_load:max_load_a)
  in
  (* (b) downcast ancestor ids: every node learns A(v) (its ancestors in
     its fragment and the parent fragment); per-edge load = |A(parent)| *)
  let a_size v =
    let fi = fr.Fragments.frag_of.(v) in
    let own = dif.(v) + 1 in
    let parent_part =
      let r = fr.Fragments.roots.(fi) in
      let attach = tree.Tree.parent.(r) in
      if attach = -1 then 0 else dif.(attach) + 1
    in
    own + parent_part
  in
  let max_a = ref 0 in
  for v = 0 to n - 1 do
    max_a := max !max_a (a_size v)
  done;
  let c_a_down =
    if params.Params.run_real_primitives then begin
      (* the within-fragment part runs for real (and is verified); the
         one-fragment extension into the parent fragment follows the
         same schedule and is appended as its own scheduled span, so the
         executed leaf's rounds stay equal to its engine audit's *)
      let down_audit = frag_ancestor_downcast ~cfg:params.Params.congest g tree fr in
      Cost.( ++ )
        (Cost.executed ~audit:down_audit "step2: downcast ancestor ids (real)"
           down_audit.Mincut_congest.Network.rounds)
        (Cost.scheduled "step2: downcast parent-fragment extension (scheduled)"
           (maxh + 1))
    end
    else
      Cost.scheduled "step2: downcast ancestor ids (A computation)"
        (Pipeline.convergecast ~depth:(2 * maxh) ~max_edge_load:!max_a)
  in
  (* (c) each node also learns F(u) for u in A(v): one message per
     fragment below the topmost element of A(v) *)
  let max_f_items =
    Array.fold_left
      (fun acc r -> max acc (List.length an.f_sets.(r)))
      0 fr.Fragments.roots
  in
  let c_f_down =
    Cost.scheduled "step2: downcast F(u) for ancestors"
      (Pipeline.convergecast ~depth:(2 * maxh) ~max_edge_load:max_f_items)
  in

  (* -------- Step 3: delta_down ---------------------------------------- *)
  let delta = Array.init n (Graph.weighted_degree g) in
  (* within-fragment subtree sums (one wave up each fragment) *)
  let frag_subtree_sum values =
    let out = Array.copy values in
    (* reverse preorder: add into the parent while staying in-fragment *)
    for i = n - 1 downto 1 do
      let v = tree.Tree.preorder.(i) in
      let p = tree.Tree.parent.(v) in
      if p <> -1 && fr.Fragments.frag_of.(p) = fr.Fragments.frag_of.(v) then
        out.(p) <- out.(p) + out.(v)
    done;
    out
  in
  let s_delta = frag_subtree_sum delta in
  let c_s_delta =
    if params.Params.run_real_primitives then begin
      (* run the within-fragment wave for real on the engine: every
         fragment converges in parallel (they are vertex-disjoint) *)
      let real, wave_audit = frag_wave ~cfg:params.Params.congest g tree fr delta in
      assert (real = s_delta);
      Cost.executed ~audit:wave_audit "step3: within-fragment delta sums (real)"
        wave_audit.Mincut_congest.Network.rounds
    end
    else
      Cost.scheduled "step3: within-fragment delta sums"
        (Pipeline.convergecast ~depth:maxh ~max_edge_load:1)
  in
  let delta_frag = Array.make k 0 in
  for v = 0 to n - 1 do
    delta_frag.(fr.Fragments.frag_of.(v)) <- delta_frag.(fr.Fragments.frag_of.(v)) + delta.(v)
  done;
  let c_delta_bcast =
    Cost.scheduled "step3: broadcast delta(F_i) for all fragments"
      (Pipeline.upcast ~depth:hb ~items:k + Pipeline.broadcast ~depth:hb ~items:k)
  in
  let delta_down =
    Array.init n (fun v ->
        List.fold_left (fun acc j -> acc + delta_frag.(j)) s_delta.(v) an.f_sets.(v))
  in

  (* -------- Step 4: merging nodes and T'F ---------------------------- *)
  let c_merging =
    Cost.scheduled "step4: local merging-node detection" 1
  in
  let c_tfp =
    let items = an.merging_count + max 0 (an.tfp_size - 1) in
    Cost.scheduled "step4: broadcast merging nodes and T'F edges"
      (Pipeline.upcast ~depth:hb ~items + Pipeline.broadcast ~depth:hb ~items)
  in

  (* -------- Step 5: per-edge LCA and rho_down ------------------------- *)
  let rho = Array.make n 0 in
  let case_counts = [| 0; 0; 0 |] in
  let max_exchange = ref 0 in
  let case2_lcas = Hashtbl.create 64 in
  Graph.iter_edges
    (fun e ->
      let z, case, items = lca_of_edge tree an e.u e.v in
      rho.(z) <- rho.(z) + e.w;
      case_counts.(case - 1) <- case_counts.(case - 1) + 1;
      max_exchange := max !max_exchange items;
      if case = 2 then Hashtbl.replace case2_lcas z ())
    g;
  let c_lca =
    Cost.scheduled "step5: per-edge LCA (1 frag exchange + list exchanges)"
      (1 + Pipeline.exchange ~items:!max_exchange)
  in
  (* type (i): count case-2 messages over the BFS tree *)
  let m2 = Hashtbl.length case2_lcas in
  let c_type1 =
    Cost.scheduled "step5: count type-(i) messages over BFS tree"
      (Pipeline.convergecast ~depth:hb ~max_edge_load:(max 1 m2)
      + Pipeline.broadcast ~depth:hb ~items:(max 1 m2))
  in
  (* type (ii): pipelined within-fragment counting; per-edge load is the
     number of in-fragment ancestors *)
  let c_type2 =
    Cost.scheduled "step5: count type-(ii) messages within fragments"
      (Pipeline.convergecast ~depth:maxh ~max_edge_load:(maxh + 1))
  in
  (* rho_down by the same machinery as delta_down *)
  let s_rho = frag_subtree_sum rho in
  let rho_frag = Array.make k 0 in
  for v = 0 to n - 1 do
    rho_frag.(fr.Fragments.frag_of.(v)) <- rho_frag.(fr.Fragments.frag_of.(v)) + rho.(v)
  done;
  let rho_down =
    Array.init n (fun v ->
        List.fold_left (fun acc j -> acc + rho_frag.(j)) s_rho.(v) an.f_sets.(v))
  in
  let c_rho_down =
    Cost.scheduled "step5: rho_down aggregation (delta_down machinery)"
      (Pipeline.convergecast ~depth:maxh ~max_edge_load:1
      + Pipeline.upcast ~depth:hb ~items:k
      + Pipeline.broadcast ~depth:hb ~items:k)
  in

  (* -------- Finish: Karger's lemma, global minimum ------------------- *)
  let cuts = Array.init n (fun v -> delta_down.(v) - (2 * rho_down.(v))) in
  let best = ref (-1) in
  for v = 0 to n - 1 do
    if v <> root && (!best = -1 || cuts.(v) < cuts.(!best)) then best := v
  done;
  let c_min =
    Cost.scheduled "finish: global min convergecast + broadcast"
      (Pipeline.convergecast ~depth:hb ~max_edge_load:1
      + Pipeline.broadcast ~depth:hb ~items:1)
  in
  (* Exactly five top-level phase spans, matching the paper's Steps 1–5
     (Theorem 2.1).  The global BFS backbone is part of Step 1's setup;
     Karger's-lemma finish (the global minimum) closes Step 5.  Grouping
     is structural: the flat breakdown and the total are unchanged. *)
  let cost =
    Cost.sum
      [
        Cost.group "Step 1: partition into fragments, learn ids, build T_F"
          (Cost.sum [ c_bfs; c_partition; c_frag_ids; c_tf ]);
        Cost.group "Step 2: subtree-fragment knowledge F(v) and A(v)"
          (Cost.sum [ c_f_up; c_a_down; c_f_down ]);
        Cost.group "Step 3: delta_down via fragment aggregation"
          (Cost.sum [ c_s_delta; c_delta_bcast ]);
        Cost.group "Step 4: merging nodes and T'_F"
          (Cost.sum [ c_merging; c_tfp ]);
        Cost.group "Step 5: per-edge LCA, rho_down, global minimum"
          (Cost.sum [ c_lca; c_type1; c_type2; c_rho_down; c_min ]);
      ]
  in
  {
    cuts;
    best_value = cuts.(!best);
    best_node = !best;
    cost;
    stats =
      {
        n;
        bfs_height = hb;
        fragment_count = k;
        max_fragment_height = maxh;
        merging_count = an.merging_count;
        tf_prime_size = an.tfp_size;
        lca_case1 = case_counts.(0);
        lca_case2 = case_counts.(1);
        lca_case3 = case_counts.(2);
        max_lca_exchange = !max_exchange;
        max_child_frag_load = max_load_a;
        max_ancestor_items = !max_a;
        max_f_items;
        case2_lca_count = m2;
      };
  }
