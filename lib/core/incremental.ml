module Graph = Mincut_graph.Graph
module Handle = Mincut_graph.Handle
module Delta = Mincut_graph.Delta
module Union_find = Mincut_graph.Union_find
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Bitset = Mincut_util.Bitset

type mode = Reused | Cert_solved | Resolved

let mode_name = function
  | Reused -> "reused"
  | Cert_solved -> "cert"
  | Resolved -> "resolved"

type answer = { lambda : int; mode : mode }

type stats = {
  mutable deltas_applied : int;
  mutable reused : int;
  mutable cert_solves : int;
  mutable full_resolves : int;
  mutable invalidations : int;
  mutable forest_placements : int;
}

let fallback_rate s =
  if s.deltas_applied = 0 then 0.0
  else float_of_int s.full_resolves /. float_of_int s.deltas_applied

(* channel key packing, same scheme as Handle's (u < v < 2^31) *)
let ck u v = (u lsl 31) lor v
let ck_u k = k lsr 31
let ck_v k = k land 0x7FFF_FFFF

type t = {
  handle : Handle.t;
  stats : stats;
  mutable lam : int;
  mutable side : Bitset.t;
  mutable side_ok : bool;  (* (lam, side) proven for the live version *)
  mutable gen : int;  (* bumps when side_ok transitions to false *)
  mutable cert_ok : bool;
  mutable k : int;
  mutable forests : Union_find.t array;
  cert : (int, int) Hashtbl.t;  (* channel key -> certified weight *)
  mutable lambda_cap : int;  (* upper bound on λ(live); max_int = none *)
}

let handle t = t.handle
let graph t = Handle.current t.handle
let stats t = t.stats
let generation t = t.gen
let cert_k t = t.k
let side t = t.side

let lambda t =
  (* apply is eager, so the live version is always resolved *)
  assert t.side_ok;
  t.lam

let invalidate_side t =
  if t.side_ok then begin
    t.side_ok <- false;
    t.gen <- t.gen + 1
  end

(* greedy jungle placement: each unit goes into the lowest forest where
   the endpoints are still disconnected; units that fit nowhere are
   dropped (their connectivity is already certified k times over) *)
let place_units t ~count_stats u v count =
  let placed = ref 0 in
  let f = ref 0 in
  (try
     for _ = 1 to count do
       while !f < t.k && Union_find.same t.forests.(!f) u v do
         incr f
       done;
       if !f >= t.k then raise Exit;
       ignore (Union_find.union t.forests.(!f) u v);
       incr placed;
       incr f
     done
   with Exit -> ());
  if !placed > 0 then begin
    let key = ck (min u v) (max u v) in
    let prev =
      match Hashtbl.find_opt t.cert key with Some c -> c | None -> 0
    in
    Hashtbl.replace t.cert key (prev + !placed);
    if count_stats then
      t.stats.forest_placements <- t.stats.forest_placements + !placed
  end

let cert_graph t =
  let n = Handle.n t.handle in
  let arr = Array.make (Hashtbl.length t.cert) (0, 0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun key w ->
      arr.(!i) <- (ck_u key, ck_v key, w);
      incr i)
    t.cert;
  Array.sort
    (fun (u1, v1, _) (u2, v2, _) ->
      match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
    arr;
  Graph.of_array ~n arr

let min_weighted_degree g =
  let best = ref max_int in
  for v = 0 to Graph.n g - 1 do
    best := min !best (Graph.weighted_degree g v)
  done;
  !best

(* the disconnected case: λ = 0 and forest 0 (a maximal spanning forest
   of the live graph) knows the components — take node 0's *)
let adopt_disconnected t n =
  let f0 = t.forests.(0) in
  let r0 = Union_find.find f0 0 in
  let s = Bitset.create n in
  for v = 0 to n - 1 do
    if Union_find.find f0 v = r0 then Bitset.add s v
  done;
  t.lam <- 0;
  t.side <- s;
  t.side_ok <- true;
  t.lambda_cap <- 0

let adopt_sw t (r : Stoer_wagner.result) =
  t.lam <- r.Stoer_wagner.value;
  t.side <- r.Stoer_wagner.side;
  t.side_ok <- true;
  t.lambda_cap <- r.Stoer_wagner.value

(* full re-certification of the live graph: greedy jungle with
   k ≈ 2λ + 2 (doubling on saturation, capped at min-wdeg + 1 where
   saturation is impossible), then Stoer–Wagner over the certificate *)
let rebuild t =
  let g = Handle.current t.handle in
  let n = Graph.n g in
  let cap = min_weighted_degree g + 1 in
  let seed_k =
    if t.lambda_cap < max_int then (2 * t.lambda_cap) + 2 else cap
  in
  let rec attempt k =
    let k = max 1 (min k cap) in
    t.k <- k;
    t.forests <- Array.init k (fun _ -> Union_find.create n);
    Hashtbl.reset t.cert;
    Graph.iter_edges
      (fun e ->
        place_units t ~count_stats:false e.Graph.u e.Graph.v (min e.Graph.w k))
      g;
    if Union_find.count t.forests.(0) > 1 then adopt_disconnected t n
    else
      let r = Stoer_wagner.run (cert_graph t) in
      if r.Stoer_wagner.value >= k && k < cap then attempt (2 * k)
      else adopt_sw t r
  in
  attempt (max 2 seed_k);
  t.cert_ok <- true

(* tier 2: the jungle is a valid certificate of the live graph (inserts
   only), but the anchored side is stale — exact λ by Stoer–Wagner over
   the sparse certificate.  A saturated answer (≥ k) means λ outgrew
   the certificate: treat as an invalidation and rebuild. *)
let cert_solve t =
  let n = Handle.n t.handle in
  if Union_find.count t.forests.(0) > 1 then begin
    adopt_disconnected t n;
    t.stats.cert_solves <- t.stats.cert_solves + 1;
    { lambda = t.lam; mode = Cert_solved }
  end
  else
    let r = Stoer_wagner.run (cert_graph t) in
    if r.Stoer_wagner.value >= t.k && t.k < min_weighted_degree (Handle.current t.handle) + 1
    then begin
      t.stats.invalidations <- t.stats.invalidations + 1;
      t.stats.full_resolves <- t.stats.full_resolves + 1;
      rebuild t;
      { lambda = t.lam; mode = Resolved }
    end
    else begin
      adopt_sw t r;
      t.stats.cert_solves <- t.stats.cert_solves + 1;
      { lambda = t.lam; mode = Cert_solved }
    end

let create g =
  let t =
    {
      handle = Handle.of_graph g;
      stats =
        {
          deltas_applied = 0;
          reused = 0;
          cert_solves = 0;
          full_resolves = 0;
          invalidations = 0;
          forest_placements = 0;
        };
      lam = 0;
      side = Bitset.create (Graph.n g);
      side_ok = false;
      gen = 0;
      cert_ok = false;
      k = 0;
      forests = [||];
      cert = Hashtbl.create 64;
      lambda_cap = max_int;
    }
  in
  rebuild t;
  t

let compact t = ignore (Handle.compact t.handle)

let apply t op =
  match Handle.apply t.handle op with
  | Error _ as e -> e
  | Ok outcome ->
      t.stats.deltas_applied <- t.stats.deltas_applied + 1;
      let decreased =
        List.exists
          (fun (c : Handle.change) -> c.Handle.after < c.Handle.before)
          outcome.Handle.changes
      in
      if outcome.Handle.renumbered || decreased then begin
        (* removals, weight decreases, merges and splits invalidate the
           jungle; λ stays bounded above except for merges *)
        invalidate_side t;
        t.cert_ok <- false;
        t.lambda_cap <-
          (match op with
          | Delta.Merge_nodes _ -> max_int
          | Delta.Remove_edge _ | Delta.Reweight _ | Delta.Split_node _
          | Delta.Add_edge _ ->
              t.lam)
      end
      else begin
        (* pure weight increases: the jungle absorbs them (certificates
           are closed under insertion) ... *)
        if t.cert_ok then
          List.iter
            (fun (c : Handle.change) ->
              place_units t ~count_stats:true c.Handle.cu c.Handle.cv
                (min (c.Handle.after - c.Handle.before) t.k))
            outcome.Handle.changes;
        (* ... and λ/side carry over unless an increase crosses the
           anchored side *)
        let crossing =
          List.exists
            (fun (c : Handle.change) ->
              Bitset.mem t.side c.Handle.cu <> Bitset.mem t.side c.Handle.cv)
            outcome.Handle.changes
        in
        if crossing then begin
          let added =
            List.fold_left
              (fun acc (c : Handle.change) ->
                acc + (c.Handle.after - c.Handle.before))
              0 outcome.Handle.changes
          in
          let cap = if t.lambda_cap = max_int then max_int else t.lambda_cap + added in
          invalidate_side t;
          t.lambda_cap <- cap
        end
      end;
      let answer =
        if t.side_ok then begin
          t.stats.reused <- t.stats.reused + 1;
          { lambda = t.lam; mode = Reused }
        end
        else if t.cert_ok then cert_solve t
        else begin
          t.stats.invalidations <- t.stats.invalidations + 1;
          t.stats.full_resolves <- t.stats.full_resolves + 1;
          rebuild t;
          { lambda = t.lam; mode = Resolved }
        end
      in
      Ok (outcome, answer)
