(** The paper's main result (Theorem 2.1): an Õ(√n + D)-round CONGEST
    algorithm computing, for a rooted spanning tree [T] of the network,
    every subtree cut [C(v↓)] — and hence the minimum cut that
    1-respects [T].

    The five steps of Section 2 are implemented at the distributed
    knowledge level: the module computes exactly the per-node knowledge
    the paper's protocol establishes (fragment ids, the fragment tree
    [T_F], the sets [F(v)] and ancestor lists [A(v)], merging nodes and
    [T'_F], per-edge LCAs via the three-case analysis, and the [δ↓]/[ρ↓]
    aggregates), while the round cost of every step is assembled from
    the *measured* schedule parameters of this execution — real fragment
    heights, real item counts for each pipelined broadcast/upcast, real
    per-edge exchange lengths for the LCA step (see {!Mincut_congest.Pipeline}).
    Steps with message-level implementations (the global BFS tree and
    the intra-fragment aggregations) actually run on the CONGEST engine
    when [params.run_real_primitives] is set, and the engine-measured
    rounds are charged for them.

    Notably, the per-edge LCA here is computed by the paper's fragment
    machinery (cases 1–3), NOT by the binary-lifting oracle of the
    sequential reference — the test suite checks the two agree edge by
    edge. *)

type stats = {
  n : int;
  bfs_height : int;           (** height of the global BFS tree (≤ D) *)
  fragment_count : int;       (** k = O(√n) *)
  max_fragment_height : int;  (** O(√n) *)
  merging_count : int;        (** |merging nodes| = O(√n) *)
  tf_prime_size : int;        (** |T'_F| = O(√n) *)
  lca_case1 : int;
  lca_case2 : int;
  lca_case3 : int;            (** how many edges hit each LCA case *)
  max_lca_exchange : int;     (** worst per-edge exchange length (Step 5) *)
  max_child_frag_load : int;  (** Step 2a: max per-edge load of the
                                  child-fragment-list upcast *)
  max_ancestor_items : int;   (** Step 2b: max |A(v)| — ancestor-list
                                  downcast per-edge load *)
  max_f_items : int;          (** Step 2c: max |F(root)| items downcast *)
  case2_lca_count : int;      (** Step 5: distinct case-2 LCA nodes (the
                                  type-(i) message count) *)
}
(** Every scheduled/charged span formula in {!run}'s cost tree is a
    closed form over these measured quantities (plus [Params]) — the
    certifier ([Mincut_analysis.Costcheck]) recomputes each one. *)

type result = {
  cuts : int array;       (** C(v↓) for every node — "at the end of our
                              algorithm every node v knows C(v↓)" *)
  best_value : int;       (** c* = min_{v ≠ root} C(v↓) *)
  best_node : int;
  cost : Mincut_congest.Cost.t;  (** per-step round breakdown *)
  stats : stats;
}

val run :
  ?params:Params.t ->
  ?target:int ->
  Mincut_graph.Graph.t ->
  Mincut_graph.Tree.t ->
  result
(** Requires a connected graph with n ≥ 2 and a spanning tree of it.
    [target] overrides the fragment height threshold (default ⌈√n⌉) —
    exposed for the A1 ablation, which shows why √n is the right
    balance point between fragment-local and global-broadcast work. *)

val lca_by_fragments :
  ?target:int -> Mincut_graph.Graph.t -> Mincut_graph.Tree.t -> (int * int * int) array
(** Exposed for testing: per graph edge, [(lca, case, items)] where
    [case] ∈ {1,2,3} is the Step-5 case that resolved it and [items] the
    exchange length it needed. *)
