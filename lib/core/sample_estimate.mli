(** Geometric edge-sampling connectivity estimator for λ.

    The comm-avoiding ladder (SNIPPETS.md Snippet 3, in the spirit of
    Ghaffari–Kuhn's sampling-based approximation): sample every unit of
    edge weight with probability [p = 2{^-i}] for levels [i = 1, 2, …],
    run [O(log n)] independent connectivity tests per level, and stop at
    the first level where any sampled subgraph disconnects.  By Karger's
    sampling lemma a skeleton stays connected w.h.p. while
    [p·λ ≳ log n], so the first disconnection lands at
    [2{^i} ≈ λ / Θ(log n)]: the point estimate [2{^i}] brackets λ within
    an [O(log n)] factor — computed from [O(log²n)] cheap BFS passes,
    never touching the tree-packing machinery.

    Two uses (ROADMAP item 5):
    - a cheap "approximate answer now, exact later" tier for serve, and
    - [upper] caps the packing budget of the exact pass
      ({!Exact.run}'s [lambda_upper]), pruning trees when the weighted
      degree bound is loose.

    Deterministic: all sampling is drawn from a {!Mincut_util.Rng}
    seeded explicitly; the same seed gives the same ladder, estimate
    and cost on every run. *)

type result = {
  estimate : int;
      (** the point estimate [2{^level}] (capped at the total weight);
          [0] for a disconnected input *)
  lower : int;  (** claimed bracket: [lower <= λ <= upper] *)
  upper : int;
  level : int;
      (** first sampling level with a disconnected trial; equals
          [levels_tried] when the ladder ran out ([saturated]) *)
  levels_tried : int;      (** levels the ladder visited *)
  trials_per_level : int;  (** independent connectivity tests per level *)
  factor : int;            (** the [O(log n)] bracket half-width *)
  saturated : bool;
      (** no level disconnected: λ is at least [2{^levels_tried}]-ish
          and [estimate] is only a floor *)
  cost : Mincut_congest.Cost.t;
      (** scheduled spans, one per visited level: a pipelined flood of
          [trials_per_level] connectivity tests costs
          [D + 2 + trials - 1] rounds *)
}

val run : ?seed:int -> ?trials:int -> Mincut_graph.Graph.t -> result
(** [trials] (default [max 4 ⌈log₂ n⌉]) is the per-level test count;
    more trials tighten the level at which a disconnection is caught.
    Requires n ≥ 2.  A disconnected input short-circuits to the exact
    answer [estimate = lower = upper = 0]. *)

val tree_budget_hint : result -> int option
(** The packing-budget cap this estimate justifies: [Some upper] when
    the ladder found a disconnection, [None] when it saturated or the
    input was disconnected (no useful upper bound). *)
