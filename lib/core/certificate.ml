module Graph = Mincut_graph.Graph
module Bitset = Mincut_util.Bitset
module Network = Mincut_congest.Network
module Primitives = Mincut_congest.Primitives
module Cost = Mincut_congest.Cost

type report = {
  accepted : bool;
  claimed : int;
  recomputed : int;
  rounds : int;
}

let outputs g side = Array.init (Graph.n g) (Bitset.mem side)

(* 1-round neighbor bit exchange, computing each node's local crossing
   weight; runs as a real program. *)
type xch = { phase : int; local_crossing : int }

let local_crossings ~cfg g bits =
  let distinct_neighbors v =
    List.sort_uniq Int.compare (Array.to_list (Array.map fst (Graph.adj g v)))
  in
  let prog : (xch, int) Network.program =
    {
      initial = (fun _ -> { phase = 0; local_crossing = 0 });
      step =
        (fun ~node ~round:_ ~inbox st ->
          match st.phase with
          | 0 ->
              ( { st with phase = 1 },
                List.map
                  (fun u -> (u, if bits.(node) then 1 else 0))
                  (distinct_neighbors node) )
          | _ ->
              (* sum crossing weight towards neighbors with the other bit *)
              let crossing = ref 0 in
              List.iter
                (fun (sender, bit) ->
                  if (bit = 1) <> bits.(node) then
                    Array.iter
                      (fun (u, id) -> if u = sender then crossing := !crossing + Graph.weight g id)
                      (Graph.adj g node))
                inbox;
              ({ phase = 2; local_crossing = !crossing }, []))
        ;
      halted = (fun st -> st.phase >= 2);
    }
  in
  let states, audit = Network.run ~cfg ~words:(fun _ -> 1) g prog in
  (Array.map (fun st -> st.local_crossing) states, audit.Network.rounds)

let certify ?(params = Params.default) g ~value ~side =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Certificate.certify: need n >= 2";
  let cfg = params.Params.congest in
  let bits = outputs g side in
  let crossings, r1 = local_crossings ~cfg g bits in
  let tree, c_bfs = Primitives.bfs_tree ~cfg g ~root:0 in
  let double_total, c_sum = Primitives.convergecast_sum ~cfg g ~tree ~values:crossings in
  let in_count, c_cnt =
    Primitives.convergecast_sum ~cfg g ~tree
      ~values:(Array.map (fun b -> if b then 1 else 0) bits)
  in
  let recomputed = double_total / 2 in
  let accepted = recomputed = value && in_count >= 1 && in_count <= n - 1 in
  {
    accepted;
    claimed = value;
    recomputed;
    rounds = r1 + c_bfs.Cost.rounds + c_sum.Cost.rounds + c_cnt.Cost.rounds;
  }

let certify_summary ?params g (s : Api.summary) =
  certify ?params g ~value:s.Api.value ~side:s.Api.side
