module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Bfs = Mincut_graph.Bfs
module Bitset = Mincut_util.Bitset
module Tree_packing = Mincut_treepack.Tree_packing
module Cost = Mincut_congest.Cost
module Pool = Mincut_parallel.Pool

type result = {
  value : int;
  side : Bitset.t;
  best_tree : int;
  trees_used : int;
  cost : Cost.t;
  stats : One_respect.stats;
}

let min_weighted_degree g =
  let best = ref max_int in
  for v = 0 to Graph.n g - 1 do
    best := min !best (Graph.weighted_degree g v)
  done;
  !best

let run ?(params = Params.default) ?(pool = Pool.sequential) ?lambda_upper
    ?trees g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Exact.run: need n >= 2";
  if not (Bfs.is_connected g) then
    (* a disconnected network has min cut 0; every node detects it from
       the BFS-tree construction timing out in its component *)
    {
      value = 0;
      side = Bfs.component_of g 0;
      best_tree = 0;
      trees_used = 0;
      cost = Cost.scheduled "bfs-tree (component detection)" (Graph.n g);
      stats =
        {
          One_respect.n;
          bfs_height = 0;
          fragment_count = 0;
          max_fragment_height = 0;
          merging_count = 0;
          tf_prime_size = 0;
          lca_case1 = 0;
          lca_case2 = 0;
          lca_case3 = 0;
          max_lca_exchange = 0;
          max_child_frag_load = 0;
          max_ancestor_items = 0;
          max_f_items = 0;
          case2_lca_count = 0;
        };
    }
  else begin
    let trees =
      match trees with
      | Some t -> t
      | None ->
          (* the packing budget scales with the best available upper
             bound on λ: the weighted-degree bound always holds, and a
             sampling-ladder estimate (Sample_estimate) tightens it
             when the degrees are loose *)
          let hint =
            match lambda_upper with
            | Some u -> min (min_weighted_degree g) (max 1 u)
            | None -> min_weighted_degree g
          in
          Tree_packing.recommended_trees ~n ~lambda_hint:hint
    in
    let packing = Tree_packing.greedy g ~trees in
    let diameter = Tree.height (Tree.bfs_tree g ~root:0) in
    (* the network first agrees on a leader (all ids flood; the paper
       assumes unique ids); real in full-fidelity mode *)
    let c_leader =
      if params.Params.run_real_primitives then begin
        let ids = Array.init n (fun v -> v) in
        let learned, c = Mincut_congest.Primitives.flood_max ~cfg:params.Params.congest g ~values:ids in
        assert (Array.for_all (fun x -> x = n - 1) learned);
        (* a single executed leaf (keeping the flood-max audit) so the
           flat breakdown reads the same as the measured primitive *)
        let audit =
          match c.Cost.spans with [ s ] -> s.Cost.audit | _ -> None
        in
        Cost.executed ?audit "leader election (real flood-max)" c.Cost.rounds
      end
      else Cost.scheduled "leader election" ((2 * diameter) + 2)
    in
    let c_pack =
      if params.Params.run_real_primitives then begin
        (* the packing's first tree is the plain MST: run it for real on
           the engine (message-level Borůvka) and check it matches the
           packing's tree 1; the remaining load-reweighted MSTs are
           charged at the Kutten–Peleg bound as the paper prescribes *)
        let d = Mincut_mst.Boruvka_dist.run ~cfg:params.Params.congest g in
        assert (
          List.sort Int.compare d.Mincut_mst.Boruvka_dist.edge_ids
          = List.sort Int.compare packing.Tree_packing.trees.(0));
        Cost.( ++ )
          (Cost.group "tree 1: real distributed Boruvka MST"
             d.Mincut_mst.Boruvka_dist.cost)
          (Tree_packing.distributed_cost ~n ~diameter ~trees:(trees - 1)
             ~per_tree_rounds:(Params.kp_mst_rounds params ~n ~diameter))
      end
      else
        Tree_packing.distributed_cost ~n ~diameter ~trees
          ~per_tree_rounds:(Params.kp_mst_rounds params ~n ~diameter)
    in
    (* the per-tree 1-respecting DP instances are independent (the graph
       is immutable, each job builds its own tree and per-run state), so
       they fan out over the pool; the merge below walks results in tree
       index order, so cost accumulation and the <=-tie-break are
       bit-identical to the sequential loop *)
    let per_tree =
      Pool.map pool
        (fun ids ->
          let tree = Tree.of_edge_ids g ~root:0 ids in
          One_respect.run ~params g tree)
        packing.Tree_packing.trees
    in
    let best = ref None in
    let sweep = ref Cost.zero in
    Array.iteri
      (fun i r ->
        sweep :=
          Cost.( ++ ) !sweep
            (Cost.group
               (Printf.sprintf "tree %d: 1-respecting cut (Theorem 2.1)" (i + 1))
               r.One_respect.cost);
        match !best with
        | Some (v, _, _, _) when v <= r.One_respect.best_value -> ()
        | _ -> best := Some (r.One_respect.best_value, r.One_respect.best_node, i, r))
      per_tree;
    (* one fixed-label parent over the per-tree spans: consumers that
       count rounds per top-level phase (serve metrics, bench profiles)
       must not grow with the packing budget *)
    let cost =
      ref
        (Cost.( ++ )
           (Cost.( ++ ) c_leader c_pack)
           (Cost.group "per-tree 1-respecting cuts" !sweep))
    in
    match !best with
    | None -> assert false
    | Some (value, node, tree_idx, r) ->
        let tree = Tree.of_edge_ids g ~root:0 packing.Tree_packing.trees.(tree_idx) in
        let side = One_respect_seq.side_of tree node in
        {
          value;
          side;
          best_tree = tree_idx;
          trees_used = trees;
          cost = !cost;
          stats = r.One_respect.stats;
        }
  end
