module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Bfs = Mincut_graph.Bfs
module Bitset = Mincut_util.Bitset
module Tree_packing = Mincut_treepack.Tree_packing
module Cost = Mincut_congest.Cost
module Pool = Mincut_parallel.Pool

type kind = One of int | Two of int * int

type result = {
  value : int;
  side : Bitset.t;
  kind : kind;
  cost : Cost.t;
}

(* All-pairs subtree-to-subtree edge weights:
   cross.(v).(w) = E(v↓, w↓), including (twice) edges internal to both.
   Built by seeding the endpoint matrix and running one subtree-sum
   sweep per axis. *)
let cross_matrix g tree =
  let n = Graph.n g in
  let m = Array.make_matrix n n 0 in
  Graph.iter_edges
    (fun e ->
      m.(e.u).(e.v) <- m.(e.u).(e.v) + e.w;
      m.(e.v).(e.u) <- m.(e.v).(e.u) + e.w)
    g;
  (* axis 1: m.(v).(y) becomes the sum over x in v↓ *)
  for i = n - 1 downto 1 do
    let v = tree.Tree.preorder.(i) in
    let p = tree.Tree.parent.(v) in
    let row_v = m.(v) and row_p = m.(p) in
    for y = 0 to n - 1 do
      row_p.(y) <- row_p.(y) + row_v.(y)
    done
  done;
  (* axis 2: m.(v).(w) becomes the sum over y in w↓ *)
  for i = n - 1 downto 1 do
    let w = tree.Tree.preorder.(i) in
    let p = tree.Tree.parent.(w) in
    for v = 0 to n - 1 do
      m.(v).(p) <- m.(v).(p) + m.(v).(w)
    done
  done;
  m

let side_of_kind tree kind =
  let n = tree.Tree.graph_n in
  let side = Bitset.create n in
  (match kind with
  | One v -> List.iter (Bitset.add side) (Tree.subtree_members tree v)
  | Two (v, w) ->
      if Tree.is_ancestor tree v w then begin
        (* v↓ \ w↓ *)
        List.iter (Bitset.add side) (Tree.subtree_members tree v);
        List.iter (Bitset.remove side) (Tree.subtree_members tree w)
      end
      else begin
        List.iter (Bitset.add side) (Tree.subtree_members tree v);
        List.iter (Bitset.add side) (Tree.subtree_members tree w)
      end);
  side

let run ?(params = Params.default) g tree =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Two_respect.run: need n >= 2";
  let root = tree.Tree.root in
  let one = One_respect_seq.run g tree in
  let cuts = one.One_respect_seq.cuts in
  let delta_down = one.One_respect_seq.delta_down in
  let cross = cross_matrix g tree in
  let best_value = ref one.One_respect_seq.best_value in
  let best_kind = ref (One one.One_respect_seq.best_node) in
  for v = 0 to n - 1 do
    if v <> root then
      for w = v + 1 to n - 1 do
        if w <> root then begin
          let candidate =
            if Tree.is_ancestor tree v w then
              Some (cuts.(v) + cuts.(w) - (2 * (delta_down.(w) - cross.(w).(v))), v, w)
            else if Tree.is_ancestor tree w v then
              Some (cuts.(w) + cuts.(v) - (2 * (delta_down.(v) - cross.(v).(w))), w, v)
            else Some (cuts.(v) + cuts.(w) - (2 * cross.(v).(w)), v, w)
          in
          match candidate with
          | Some (c, a, b) when c < !best_value ->
              best_value := c;
              best_kind := Two (a, b)
          | _ -> ()
        end
      done
  done;
  let diameter = Tree.height (Tree.bfs_tree g ~root) in
  let log2n =
    let rec go k = if 1 lsl k >= max 2 n then k else go (k + 1) in
    go 1
  in
  let cost =
    Cost.charged "2-respect sweep (charged at the Mukhopadhyay-Nanongkai bound)"
      (Params.kp_mst_rounds params ~n ~diameter * log2n)
  in
  { value = !best_value; side = side_of_kind tree !best_kind; kind = !best_kind; cost }

let min_cut ?(params = Params.default) ?(pool = Pool.sequential) ?trees g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Two_respect.min_cut: need n >= 2";
  if not (Bfs.is_connected g) then
    {
      value = 0;
      side = Bfs.component_of g 0;
      kind = One 0;
      cost = Cost.scheduled "bfs-tree (component detection)" n;
    }
  else begin
    let trees =
      match trees with
      | Some t -> t
      | None ->
          let log2n =
            let rec go k = if 1 lsl k >= max 2 n then k else go (k + 1) in
            go 1
          in
          max 8 (2 * log2n)
    in
    let packing = Tree_packing.greedy g ~trees in
    let diameter = Tree.height (Tree.bfs_tree g ~root:0) in
    let c_pack =
      Tree_packing.distributed_cost ~n ~diameter ~trees
        ~per_tree_rounds:(Params.kp_mst_rounds params ~n ~diameter)
    in
    (* independent per-tree 2-respect sweeps fan out over the pool; the
       index-ordered merge reproduces the sequential tie-break exactly *)
    let per_tree =
      Pool.map pool
        (fun ids ->
          let tree = Tree.of_edge_ids g ~root:0 ids in
          run ~params g tree)
        packing.Tree_packing.trees
    in
    let best = ref None in
    let sweep = ref Cost.zero in
    Array.iteri
      (fun i r ->
        sweep :=
          Cost.( ++ ) !sweep
            (Cost.group (Printf.sprintf "tree %d: 2-respect sweep" (i + 1)) r.cost);
        match !best with
        | Some b when b.value <= r.value -> ()
        | _ -> best := Some r)
      per_tree;
    (* fixed-label parent: per-phase consumers must not scale with the
       tree budget *)
    let cost =
      Cost.( ++ ) c_pack (Cost.group "per-tree 2-respect sweeps" !sweep)
    in
    match !best with
    | None -> assert false
    | Some b -> { b with cost }
  end
