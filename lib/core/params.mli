(** Tunables shared by the distributed min-cut pipeline.

    All round bounds charged for imported subroutines live here so that
    every "we charge the published bound" substitution of DESIGN.md is
    explicit, in one place, and adjustable by experiments. *)

type t = {
  kp_constant : int;
      (** multiplier for the Kutten–Peleg bound; 1 charges the bare
          [√n·log* n + D] — published analyses hide a constant, which
          benchmark series divide out anyway *)
  congest : Mincut_congest.Config.t;  (** engine discipline parameters *)
  run_real_primitives : bool;
      (** when true (default), steps that have real message-level
          implementations (BFS tree, intra-fragment aggregation) execute
          on the engine and their measured rounds are used; when false,
          their analytic schedules are charged instead (fast mode for
          large parameter sweeps) *)
}

val default : t

val fast : t
(** [run_real_primitives = false]; used by large benchmark sweeps. *)

val log_star : int -> int
(** Iterated logarithm (base 2), ≥ 1 for n ≥ 2. *)

val kp_mst_rounds : t -> n:int -> diameter:int -> int
(** Rounds charged for one Kutten–Peleg MST:
    [kp_constant · (⌈√n⌉·log* n + D)]. *)

val kp_partition_rounds : t -> n:int -> diameter:int -> int
(** Rounds charged for the KP tree partition ([KP98, §3.2]); same form
    as the MST bound (the paper's footnote: the partition falls out of
    the MST computation). *)

val sqrt_target : n:int -> int
(** ⌈√n⌉ — the fragment height threshold of Step 1. *)

val one_respect_charged_rounds :
  t -> n:int -> height:int -> fragments:int -> max_frag_height:int -> int
(** Charged schedule for one full Theorem 2.1 pass over a BFS tree of
    height [height] partitioned into [fragments] fragments of height at
    most [max_frag_height]: the sum of [One_respect.run]'s analytic
    spans (its fast mode) with every run-measured edge load replaced by
    its structural maximum.  This is what scale-ladder sizes charge when
    the graph is too large to execute the pipeline — Θ(√n·log* n + D)
    when the fragment geometry meets the KP contract.  The in-memory
    fast mode is tested to stay under this charge point-for-point. *)
