module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Bfs = Mincut_graph.Bfs
module Bridge = Mincut_graph.Bridge
module Sampling = Mincut_graph.Sampling
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost

type result = {
  value : int;
  side : Bitset.t;
  samples : int;
  cost : Cost.t;
}

(* Side of the bridge: nodes reachable from one endpoint in the skeleton
   with the bridge removed. *)
let bridge_side sk bridge_id =
  let without = Graph.sub_by_edges sk ~keep:(fun e -> e.Graph.id <> bridge_id) in
  let u, _ = Graph.endpoints sk bridge_id in
  Bfs.component_of without u

let run ?(params = Params.default) ?(samples_per_guess = 3) ~rng ~epsilon g =
  if epsilon <= 0.0 then invalid_arg "Su.run: epsilon must be positive";
  let n = Graph.n g in
  if n < 2 then invalid_arg "Su.run: need n >= 2";
  if not (Bfs.is_connected g) then invalid_arg "Su.run: disconnected graph";
  let diameter = Tree.height (Tree.bfs_tree g ~root:0) in
  let thurimella_rounds = Params.kp_mst_rounds params ~n ~diameter in
  let best_value = ref max_int in
  let best_side = ref (Bitset.create n) in
  let consider side =
    let c = Bitset.cardinal side in
    if c >= 1 && c <= n - 1 then begin
      let v = Graph.cut_of_bitset g side in
      if v < !best_value then begin
        best_value := v;
        best_side := side
      end
    end
  in
  (* seed with the min-degree cut so the result is always a valid cut *)
  let mindeg_node = ref 0 in
  for v = 1 to n - 1 do
    if Graph.weighted_degree g v < Graph.weighted_degree g !mindeg_node then mindeg_node := v
  done;
  let seed_side = Bitset.create n in
  Bitset.add seed_side !mindeg_node;
  consider seed_side;
  let samples = ref 0 in
  let cost = ref Cost.zero in
  (* downward search over the min-cut guess; aim the skeleton min cut at
     about 1/epsilon (a handful) so a bridge exists w.h.p. *)
  let rec guess_loop lambda_hat =
    let target = 1.0 /. epsilon in
    let p = Float.min 1.0 (target /. float_of_int lambda_hat) in
    for _ = 1 to samples_per_guess do
      incr samples;
      let sk = (Sampling.sample ~rng g ~p).Sampling.graph in
      cost :=
        Cost.( ++ ) !cost
          (Cost.charged "su: thurimella bridge finding (charged)" thurimella_rounds);
      if not (Bfs.is_connected sk) || Graph.m sk = 0 then begin
        (* skeleton components are themselves cut candidates *)
        if Graph.n sk > 0 then consider (Bfs.component_of sk 0)
      end
      else
        List.iter (fun id -> consider (bridge_side sk id)) (Bridge.bridges sk)
    done;
    if lambda_hat > 1 then guess_loop (lambda_hat / 2)
  in
  guess_loop (max 1 (Graph.weighted_degree g !mindeg_node));
  { value = !best_value; side = !best_side; samples = !samples; cost = !cost }
