(** Minimum cuts that 2-respect a tree — Karger's full machinery, as the
    natural extension of the paper.

    The paper finds cuts crossing a packed tree {e once}; Karger's
    near-linear sequential algorithm [Kar00] also handles cuts crossing
    {e twice}, which slashes the number of trees needed: by Karger's
    packing theorem, a packing of value ≥ λ/2 (a few trees, vs the
    λ⁷ log³ n of Thorup's 1-respect theorem) already contains a tree
    that 2-respects some minimum cut.  Distributedly this is precisely
    the follow-up line that culminated in Mukhopadhyay–Nanongkai
    [STOC 2020], still Õ(√n + D).

    A 2-respecting candidate is determined by two tree nodes v, w
    (≠ root).  With [E(X,Y)] the total weight between node sets:
    - v, w incomparable:  side [v↓ ∪ w↓],
      [C = C(v↓) + C(w↓) − 2·E(v↓, w↓)];
    - w a descendant of v:  side [v↓ \ w↓],
      [C = C(v↓) + C(w↓) − 2·(δ↓(w) − E(w↓, v↓))].

    This module computes all pairwise [E(v↓, w↓)] by two subtree-sum
    sweeps over an n×n matrix (O(n²) time/space — fine at simulator
    scale), takes the min over all 1- and 2-respecting candidates, and
    charges the distributed cost at the published follow-up bound. *)

type kind =
  | One of int          (** best cut crosses the tree once, at v↓ *)
  | Two of int * int    (** best cut is the (v, w) 2-respecting candidate *)

type result = {
  value : int;
  side : Mincut_util.Bitset.t;
  kind : kind;
  cost : Mincut_congest.Cost.t;
}

val run : ?params:Params.t -> Mincut_graph.Graph.t -> Mincut_graph.Tree.t -> result
(** Minimum over all cuts 1- or 2-respecting the tree.  Requires n ≥ 2. *)

val min_cut :
  ?params:Params.t ->
  ?pool:Mincut_parallel.Pool.t ->
  ?trees:int ->
  Mincut_graph.Graph.t ->
  result
(** Exact min cut via packing + 2-respect; [trees] defaults to
    [max 8 (2·⌈log₂ n⌉)] — the Karger-style budget, much smaller than
    the 1-respect default.  [pool] (default sequential) fans the
    per-tree sweeps over domains with an index-ordered merge, so the
    result is bit-identical for any worker count. *)
