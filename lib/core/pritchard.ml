module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Bfs = Mincut_graph.Bfs
module Small_cuts = Mincut_graph.Small_cuts
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost

type verdict =
  | Cut_found of { value : int; side : Bitset.t }
  | Lambda_at_least_3

type result = { verdict : verdict; cost : Cost.t }

let bridge_side g id =
  let without = Graph.sub_by_edges g ~keep:(fun e -> e.Graph.id <> id) in
  let u, _ = Graph.endpoints g id in
  Bfs.component_of without u

let run ?params:_ g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Pritchard.run: need n >= 2";
  if not (Bfs.is_connected g) then
    {
      verdict = Cut_found { value = 0; side = Bfs.component_of g 0 };
      cost = Cost.scheduled "connectivity check (BFS)" n;
    }
  else begin
    let diameter = Tree.height (Tree.bfs_tree g ~root:0) in
    (* cut edges: O(D) rounds [PT]; cut pairs: Õ(D) — charge D·log n *)
    let log2n =
      let rec go k = if 1 lsl k >= max 2 n then k else go (k + 1) in
      go 1
    in
    let c_edges = Cost.charged "pritchard: cut edges (charged O(D))" (max 1 diameter) in
    match Small_cuts.bridges g with
    | id :: _ ->
        { verdict = Cut_found { value = 1; side = bridge_side g id }; cost = c_edges }
    | [] -> (
        let c_pairs =
          Cost.( ++ ) c_edges
            (Cost.charged "pritchard: cut pairs (charged O(D log n))"
               (max 1 (diameter * log2n)))
        in
        match Small_cuts.heavy_bridges g with
        | id :: _ ->
            { verdict = Cut_found { value = 2; side = bridge_side g id }; cost = c_pairs }
        | [] -> (
            match Small_cuts.cut_pairs g with
            | pair :: _ ->
                {
                  verdict = Cut_found { value = 2; side = Small_cuts.cut_pair_side g pair };
                  cost = c_pairs;
                }
            | [] -> { verdict = Lambda_at_least_3; cost = c_pairs }))
  end
