module Hash = Mincut_util.Hash

let max_open_buckets = 64

type t = {
  dir : string;
  n : int;
  bits : int;
  num_chunks : int;
  chunks_per_group : int;
  num_groups : int;
  channels : out_channel option array;  (* opened lazily per group *)
  record : Bytes.t;  (* 12-byte scratch *)
  mutable m : int;
  mutable total_weight : int;
  mutable finalized : bool;
}

let bucket_path t gid = Filename.concat t.dir (Printf.sprintf "bucket_%04d.tmp" gid)

let mkdir_p dir =
  let rec ensure d =
    if not (Sys.file_exists d) then begin
      ensure (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  ensure dir

let create ~dir ~n ?chunk_bits () =
  if n < 1 then Error "Bulk_loader.create: n must be >= 1"
  else begin
    let bits =
      match chunk_bits with Some b -> b | None -> Chunk.default_bits ~n
    in
    if bits < Chunk.min_bits || bits > Chunk.max_bits then
      Error
        (Printf.sprintf "Bulk_loader.create: chunk_bits %d outside %d..%d" bits
           Chunk.min_bits Chunk.max_bits)
    else begin
      match mkdir_p dir with
      | () ->
          let num_chunks = Chunk.num_chunks ~bits ~n in
          let chunks_per_group =
            (num_chunks + max_open_buckets - 1) / max_open_buckets
          in
          let num_groups = (num_chunks + chunks_per_group - 1) / chunks_per_group in
          Ok
            {
              dir;
              n;
              bits;
              num_chunks;
              chunks_per_group;
              num_groups;
              channels = Array.make num_groups None;
              record = Bytes.create 12;
              m = 0;
              total_weight = 0;
              finalized = false;
            }
      | exception Unix.Unix_error (err, _, arg) ->
          Error (Printf.sprintf "Bulk_loader.create: mkdir %s: %s" arg (Unix.error_message err))
      | exception Sys_error msg -> Error ("Bulk_loader.create: " ^ msg)
    end
  end

let chunk_bits t = t.bits

let group_of t cid = cid / t.chunks_per_group

let channel t gid =
  match t.channels.(gid) with
  | Some oc -> oc
  | None ->
      let oc = open_out_bin (bucket_path t gid) in
      t.channels.(gid) <- Some oc;
      oc

let put_record t oc ~src ~dst ~w =
  Bytes.set_int32_le t.record 0 (Int32.of_int src);
  Bytes.set_int32_le t.record 4 (Int32.of_int dst);
  Bytes.set_int32_le t.record 8 (Int32.of_int w);
  output_bytes oc t.record

let add_edge t ~u ~v ~w =
  if t.finalized then invalid_arg "Bulk_loader.add_edge: already finalized";
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg
      (Printf.sprintf "Bulk_loader.add_edge: endpoint out of range (%d,%d), n=%d"
         u v t.n);
  if u = v then invalid_arg "Bulk_loader.add_edge: self loop";
  if w <= 0 then invalid_arg "Bulk_loader.add_edge: non-positive weight";
  if w > 0xFFFFFFFF then invalid_arg "Bulk_loader.add_edge: weight exceeds 32 bits";
  (* one directed record per endpoint's chunk *)
  put_record t (channel t (group_of t (Chunk.chunk_of ~bits:t.bits u))) ~src:u ~dst:v ~w;
  put_record t (channel t (group_of t (Chunk.chunk_of ~bits:t.bits v))) ~src:v ~dst:u ~w;
  t.m <- t.m + 1;
  t.total_weight <- t.total_weight + w

(* Build every chunk of one bucket group from its record file.  Records
   are replayed into per-chunk counting sorts; each CSR row is then
   ordered by (neighbor, weight), the canonical slot order. *)
let build_group t ~hash gid =
  let first_cid = gid * t.chunks_per_group in
  let last_cid = min (t.num_chunks - 1) (first_cid + t.chunks_per_group - 1) in
  let records =
    if Sys.file_exists (bucket_path t gid) then begin
      let ic = open_in_bin (bucket_path t gid) in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    end
    else ""
  in
  let nrec = String.length records / 12 in
  let buf = Bytes.unsafe_of_string records in
  let get i = Int32.to_int (Bytes.get_int32_le buf i) in
  let rec build cid errors =
    if cid > last_cid then errors
    else begin
      let base = cid lsl t.bits in
      let count = Chunk.count_of ~bits:t.bits ~n:t.n ~cid in
      let deg = Array.make count 0 in
      for r = 0 to nrec - 1 do
        let src = get (12 * r) in
        if Chunk.chunk_of ~bits:t.bits src = cid then
          deg.(src - base) <- deg.(src - base) + 1
      done;
      let off = Array.make (count + 1) 0 in
      for i = 0 to count - 1 do
        off.(i + 1) <- off.(i) + deg.(i)
      done;
      let slots = off.(count) in
      let nbr = Array.make slots 0 in
      let wgt = Array.make slots 0 in
      let fill = Array.make count 0 in
      for r = 0 to nrec - 1 do
        let src = get (12 * r) in
        if Chunk.chunk_of ~bits:t.bits src = cid then begin
          let i = src - base in
          let s = off.(i) + fill.(i) in
          nbr.(s) <- get ((12 * r) + 4);
          wgt.(s) <- get ((12 * r) + 8);
          fill.(i) <- fill.(i) + 1
        end
      done;
      (* canonical row order: by neighbor, parallel edges by weight *)
      for i = 0 to count - 1 do
        let lo = off.(i) and hi = off.(i + 1) in
        let row = Array.init (hi - lo) (fun s -> (nbr.(lo + s), wgt.(lo + s))) in
        Array.sort
          (fun (a, aw) (b, bw) ->
            match Int.compare a b with 0 -> Int.compare aw bw | c -> c)
          row;
        Array.iteri
          (fun s (b, bw) ->
            nbr.(lo + s) <- b;
            wgt.(lo + s) <- bw)
          row
      done;
      (* fold the canonical triple stream (u < v ascending) into the hash *)
      for i = 0 to count - 1 do
        let u = base + i in
        for s = off.(i) to off.(i + 1) - 1 do
          if nbr.(s) > u then begin
            Hash.add_int hash u;
            Hash.add_int hash nbr.(s);
            Hash.add_int hash wgt.(s)
          end
        done
      done;
      let chunk = { Chunk.cid; base; count; off; nbr; wgt } in
      match Chunk_io.write ~dir:t.dir chunk with
      | Ok () -> build (cid + 1) errors
      | Error e -> build (cid + 1) (Chunk_io.error_message e :: errors)
    end
  in
  let errors = build first_cid [] in
  (try Sys.remove (bucket_path t gid) with Sys_error _ -> ());
  errors

let finalize t =
  if t.finalized then Error "Bulk_loader.finalize: already finalized"
  else begin
    t.finalized <- true;
    Array.iteri
      (fun gid oc ->
        match oc with
        | Some oc ->
            close_out oc;
            t.channels.(gid) <- None
        | None -> ())
      t.channels;
    let hash = Hash.create () in
    Hash.add_int hash t.n;
    match
      List.concat_map
        (fun gid -> build_group t ~hash gid)
        (List.init t.num_groups (fun g -> g))
    with
    | [] ->
        let manifest =
          {
            Chunk_io.chunk_bits = t.bits;
            n = t.n;
            m = t.m;
            total_weight = t.total_weight;
            num_chunks = t.num_chunks;
            hash = Hash.value hash;
          }
        in
        Result.map_error Chunk_io.error_message
          (Result.map (fun () -> manifest) (Chunk_io.write_manifest ~dir:t.dir manifest))
    | errors -> Error (String.concat "; " errors)
    | exception Sys_error msg -> Error ("Bulk_loader.finalize: " ^ msg)
  end
