module Crc32 = Mincut_util.Crc32
module Json = Mincut_util.Json
module Hash = Mincut_util.Hash

let format_version = 1

let magic = "MCNK"

let header_bytes = 24

type error =
  | Io of string
  | Truncated of { path : string; expected : int; got : int }
  | Bad_magic of { path : string; magic : string }
  | Bad_version of { path : string; version : int }
  | Crc_mismatch of { path : string; stored : int; computed : int }
  | Bad_field of { path : string; field : string }

let error_message = function
  | Io msg -> "store i/o error: " ^ msg
  | Truncated { path; expected; got } ->
      Printf.sprintf "%s: truncated chunk file (expected %d bytes, got %d)" path
        expected got
  | Bad_magic { path; magic } ->
      Printf.sprintf "%s: not a chunk file (magic %S)" path magic
  | Bad_version { path; version } ->
      Printf.sprintf "%s: unsupported chunk format version %d (this build reads %d)"
        path version format_version
  | Crc_mismatch { path; stored; computed } ->
      Printf.sprintf "%s: CRC mismatch (stored %08x, computed %08x) — chunk is corrupt"
        path stored computed
  | Bad_field { path; field } ->
      Printf.sprintf "%s: inconsistent chunk field %s" path field

let chunk_filename ~cid = Printf.sprintf "chunk_%06d.mck" cid

let manifest_filename = "manifest.json"

(* ---- atomic file replacement ----------------------------------------- *)

(* Write the whole content to [path ^ ".tmp"] and rename over [path]:
   rename within one directory is atomic on POSIX, so readers observe
   either the previous file or the complete new one. *)
let replace_file ~path content =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Io msg)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> Ok content
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Io (path ^ ": unexpected end of file"))

(* ---- chunk encoding --------------------------------------------------- *)

let u32_max = 0xFFFFFFFF

let put_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land u32_max

let write ~dir (c : Chunk.t) =
  let slots = Array.length c.Chunk.nbr in
  let payload_words = c.Chunk.count + 1 + (2 * slots) in
  let buf = Bytes.create (header_bytes + (4 * payload_words)) in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_uint16_le buf 4 format_version;
  Bytes.set_uint16_le buf 6 0;
  put_u32 buf 8 c.Chunk.cid;
  put_u32 buf 12 c.Chunk.count;
  put_u32 buf 16 slots;
  let pos = ref header_bytes in
  let put_array a =
    Array.iter
      (fun v ->
        put_u32 buf !pos v;
        pos := !pos + 4)
      a
  in
  put_array c.Chunk.off;
  put_array c.Chunk.nbr;
  put_array c.Chunk.wgt;
  let crc = Crc32.bytes buf ~pos:header_bytes ~len:(4 * payload_words) in
  put_u32 buf 20 crc;
  let field_ok =
    c.Chunk.cid <= u32_max && c.Chunk.count <= u32_max && slots <= u32_max
    && Array.for_all (fun v -> v >= 0 && v <= u32_max) c.Chunk.off
    && Array.for_all (fun v -> v >= 0 && v <= u32_max) c.Chunk.nbr
    && Array.for_all (fun v -> v >= 0 && v <= u32_max) c.Chunk.wgt
  in
  if not field_ok then
    Error (Bad_field { path = chunk_filename ~cid:c.Chunk.cid; field = "32-bit range" })
  else
    replace_file
      ~path:(Filename.concat dir (chunk_filename ~cid:c.Chunk.cid))
      (Bytes.unsafe_to_string buf)

let read ~dir ~bits ~cid =
  let path = Filename.concat dir (chunk_filename ~cid) in
  match read_file path with
  | Error _ as e -> e
  | Ok content ->
      let len = String.length content in
      if len < header_bytes then
        Error (Truncated { path; expected = header_bytes; got = len })
      else begin
        let buf = Bytes.unsafe_of_string content in
        let file_magic = String.sub content 0 4 in
        if not (String.equal file_magic magic) then
          Error (Bad_magic { path; magic = file_magic })
        else begin
          let version = Bytes.get_uint16_le buf 4 in
          if version <> format_version then Error (Bad_version { path; version })
          else begin
            let file_cid = get_u32 buf 8 in
            let count = get_u32 buf 12 in
            let slots = get_u32 buf 16 in
            let stored_crc = get_u32 buf 20 in
            let payload_len = 4 * (count + 1 + (2 * slots)) in
            if len <> header_bytes + payload_len then
              Error (Truncated { path; expected = header_bytes + payload_len; got = len })
            else if file_cid <> cid then Error (Bad_field { path; field = "chunk id" })
            else begin
              let computed = Crc32.bytes buf ~pos:header_bytes ~len:payload_len in
              if computed <> stored_crc then
                Error (Crc_mismatch { path; stored = stored_crc; computed })
              else begin
                let pos = ref header_bytes in
                let take k =
                  Array.init k (fun _ ->
                      let v = get_u32 buf !pos in
                      pos := !pos + 4;
                      v)
                in
                let off = take (count + 1) in
                let nbr = take slots in
                let wgt = take slots in
                if off.(0) <> 0 || off.(count) <> slots then
                  Error (Bad_field { path; field = "offsets" })
                else
                  Ok
                    {
                      Chunk.cid;
                      base = cid lsl bits;
                      count;
                      off;
                      nbr;
                      wgt;
                    }
              end
            end
          end
        end
      end

(* ---- manifest --------------------------------------------------------- *)

type manifest = {
  chunk_bits : int;
  n : int;
  m : int;
  total_weight : int;
  num_chunks : int;
  hash : int64;
}

let write_manifest ~dir (mf : manifest) =
  let json =
    Json.Obj
      [
        ("format_version", Json.Int format_version);
        ("chunk_bits", Json.Int mf.chunk_bits);
        ("n", Json.Int mf.n);
        ("m", Json.Int mf.m);
        ("total_weight", Json.Int mf.total_weight);
        ("num_chunks", Json.Int mf.num_chunks);
        ("hash", Json.String (Hash.to_hex mf.hash));
      ]
  in
  replace_file ~path:(Filename.concat dir manifest_filename) (Json.to_string json ^ "\n")

let read_manifest ~dir =
  let path = Filename.concat dir manifest_filename in
  match read_file path with
  | Error _ as e -> e
  | Ok content -> (
      let field j name = Option.bind (Json.member name j) Json.to_int in
      match Json.of_string (String.trim content) with
      | Error msg -> Error (Bad_field { path; field = "json: " ^ msg })
      | Ok j -> (
          match
            ( field j "format_version",
              field j "chunk_bits",
              field j "n",
              field j "m",
              field j "total_weight",
              field j "num_chunks",
              Option.bind (Option.bind (Json.member "hash" j) Json.to_str)
                Hash.of_hex )
          with
          | Some v, _, _, _, _, _, _ when v <> format_version ->
              Error (Bad_version { path; version = v })
          | ( Some _,
              Some chunk_bits,
              Some n,
              Some m,
              Some total_weight,
              Some num_chunks,
              Some hash ) ->
              Ok { chunk_bits; n; m; total_weight; num_chunks; hash }
          | _ -> Error (Bad_field { path; field = "manifest fields" })))
