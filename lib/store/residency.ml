type instruments = {
  on_hit : unit -> unit;
  on_miss : unit -> unit;
  on_eviction : unit -> unit;
  on_bytes_resident : int -> unit;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  resident : int;
  bytes_resident : int;
  budget : int;
}

(* Intrusive doubly-linked recency list: [head] is most recent, [tail]
   the eviction candidate. *)
type entry = {
  key : int;
  chunk : Chunk.t;
  ebytes : int;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  budget : int;
  load : int -> Chunk.t;
  instruments : instruments option;
  table : (int, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?instruments ~budget ~load () =
  if budget <= 0 then invalid_arg "Residency.create: budget must be positive";
  {
    budget;
    load;
    instruments;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let note t f = match t.instruments with Some i -> f i | None -> ()

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some nx -> nx.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let evict_entry t e =
  unlink t e;
  Hashtbl.remove t.table e.key;
  t.bytes <- t.bytes - e.ebytes;
  t.evictions <- t.evictions + 1;
  note t (fun i -> i.on_eviction ())

(* Shed cold chunks until the budget holds, but never the [keep] entry:
   the chunk being handed to the caller must stay resident. *)
let rec shed t ~keep =
  if t.bytes > t.budget then
    match t.tail with
    | Some e when e.key <> keep ->
        evict_entry t e;
        shed t ~keep
    | Some _ | None -> ()

let get t cid =
  let chunk =
    match Hashtbl.find_opt t.table cid with
    | Some e ->
        t.hits <- t.hits + 1;
        note t (fun i -> i.on_hit ());
        unlink t e;
        push_front t e;
        e.chunk
    | None ->
        t.misses <- t.misses + 1;
        note t (fun i -> i.on_miss ());
        let chunk = t.load cid in
        let e =
          { key = cid; chunk; ebytes = Chunk.bytes chunk; prev = None; next = None }
        in
        Hashtbl.replace t.table cid e;
        push_front t e;
        t.bytes <- t.bytes + e.ebytes;
        shed t ~keep:cid;
        chunk
  in
  note t (fun i -> i.on_bytes_resident t.bytes);
  chunk

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    resident = Hashtbl.length t.table;
    bytes_resident = t.bytes;
    budget = t.budget;
  }

let drop_all t =
  let rec go () =
    match t.tail with
    | Some e ->
        evict_entry t e;
        go ()
    | None -> ()
  in
  go ();
  note t (fun i -> i.on_bytes_resident t.bytes)
