(** Versioned binary on-disk chunk format.

    One file per chunk, [chunk_<cid>.mck], little-endian:

    {v
    offset  size  field
    0       4     magic "MCNK"
    4       2     format version (currently 1)
    6       2     reserved (0)
    8       4     chunk id
    12      4     node count
    16      4     slot count (directed adjacency entries)
    20      4     CRC-32 of the payload
    24      ...   payload: off[count+1], nbr[slots], wgt[slots], u32 each
    v}

    Readers verify magic, version, declared lengths and the CRC before
    any field is trusted, so corruption surfaces as a typed {!error},
    never as a malformed graph.  Writes go to a temp file in the same
    directory and are renamed into place, so a crash mid-write leaves
    either the old chunk or none — no torn file is ever picked up.

    A store directory is described by a [manifest.json] (same
    atomic-rename discipline) carrying the format version, chunk
    geometry, graph totals and the canonical structural hash. *)

val format_version : int

type error =
  | Io of string  (** underlying system error *)
  | Truncated of { path : string; expected : int; got : int }
  | Bad_magic of { path : string; magic : string }
  | Bad_version of { path : string; version : int }
  | Crc_mismatch of { path : string; stored : int; computed : int }
  | Bad_field of { path : string; field : string }
      (** a length or value field is inconsistent with the file *)

val error_message : error -> string

val chunk_filename : cid:int -> string

val write : dir:string -> Chunk.t -> (unit, error) result
(** Serialize atomically into [dir]. *)

val read : dir:string -> bits:int -> cid:int -> (Chunk.t, error) result
(** Load and fully validate chunk [cid] from [dir]; [bits] supplies the
    addressing width so the chunk's [base] can be restored. *)

(** {1 Manifest} *)

type manifest = {
  chunk_bits : int;
  n : int;
  m : int;
  total_weight : int;
  num_chunks : int;
  hash : int64;  (** canonical structural hash, {!Graph_key}-compatible *)
}

val write_manifest : dir:string -> manifest -> (unit, error) result

val read_manifest : dir:string -> (manifest, error) result
