(** Chunk-at-a-time traversal primitives for the scale ladder.

    These reproduce, at store scale, the two round-count behaviours the
    engine measures on in-memory graphs: flooding BFS and the pipelined
    distinct-item upcast.  Frontiers are swept in ascending node order —
    node ids are chunk-major, so each BFS level touches every chunk at
    most once and a budget of a few chunks suffices for locality.

    Round accounting matches [Mincut_congest.Network]: the flooding BFS
    program quiesces [eccentricity + 2] rounds after the root announces
    (last adoption at round ecc, its wasted flood occupies one more
    round, and the empty round after that is the one the driver counts
    before declaring quiescence); the upcast count is the last send
    round + 2, exactly [Network.run_bounded]'s effective completion
    time.  Tests pin both equalities against the real engine on small
    graphs. *)

type bfs = {
  dist : int array;  (** -1 where unreached *)
  parent : int array;  (** -1 at the root and unreached nodes *)
  reached : int;  (** nodes with [dist >= 0] *)
  ecc : int;  (** max distance reached from the root *)
  rounds : int;  (** engine-equivalent flooding rounds *)
}

val bfs : Chunked_graph.t -> root:int -> bfs
(** Level-synchronous BFS faulting chunks through residency. *)

val upcast_rounds : parent:int array -> root:int -> sources:int list -> int
(** Simulate the pipelined distinct-item upcast on the [parent] tree:
    one item sits at each source node (sources need not be distinct —
    every occurrence is its own item), and every round each node
    forwards its smallest unsent known item to its parent.  Returns the
    engine-equivalent round count; 0 when [sources] is empty.  Work is
    O(total forwards) = O(Σ depth(source)), not O(rounds · n). *)
