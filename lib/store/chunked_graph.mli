(** The chunked graph: a [Graph]-shaped read surface over on-disk
    chunks with LRU residency.

    Opens a directory produced by {!Bulk_loader} and answers degree /
    neighbor-iteration / weight queries by faulting the owning chunk in
    through a {!Residency} manager.  Algorithms that sweep
    chunk-at-a-time ([iter_chunks], or any node order that visits
    chunks contiguously — node ids are chunk-major by construction)
    touch each chunk once per pass regardless of the byte budget;
    random access degrades gracefully into hits/misses/evictions, all
    counted.

    The manifest's structural hash uses the same recipe as
    [Mincut_serve.Graph_key.structural_hash], so a chunked graph and
    its in-memory [Graph.t] image address the same cache entries. *)

exception Store_error of string
(** Raised when a chunk fails to load during access (missing file,
    version mismatch, CRC failure, …) with the underlying
    {!Chunk_io.error_message}.  [open_store] itself returns [result];
    the exception covers lazy per-chunk faults only. *)

type t

val open_store :
  ?instruments:Residency.instruments ->
  dir:string ->
  budget:int ->
  unit ->
  (t, string) result
(** Validate the manifest and set up residency with [budget] bytes.
    Chunks load lazily on first touch. *)

val n : t -> int
val m : t -> int
val total_weight : t -> int
val num_chunks : t -> int
val chunk_bits : t -> int

val total_bytes : t -> int
(** Bytes if every chunk were resident at once (exact, from the
    manifest) — the number a budget should undercut to exercise
    eviction. *)

val manifest_bytes : Chunk_io.manifest -> int
(** {!total_bytes} computed from a manifest alone, so a caller can pick
    a budget before opening the store. *)

val structural_hash : t -> int64
(** The manifest's hash (computed once at load time). *)

val compute_structural_hash : t -> int64
(** Recompute by sweeping every chunk — reads and CRC-checks the whole
    store.  Equals {!structural_hash} unless the directory was
    tampered with. *)

val chunk : t -> int -> Chunk.t
(** Chunk by id, faulting it resident.  Raises {!Store_error}. *)

val iter_chunks : t -> f:(Chunk.t -> unit) -> unit
(** Every chunk in ascending id order (one residency pass). *)

val degree : t -> int -> int

val weighted_degree : t -> int -> int

val iter_neighbors : t -> int -> f:(int -> int -> unit) -> unit
(** [f neighbor weight] over node [v]'s slots in canonical order. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val stats : t -> Residency.stats

val drop_resident : t -> unit
(** Cold-start the residency (counters survive). *)

val to_graph : t -> Mincut_graph.Graph.t
(** Materialize as an in-memory graph — O(n + m) memory, for tests and
    for handing sub-ladder-size graphs to the solvers. *)
