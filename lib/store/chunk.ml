type t = {
  cid : int;
  base : int;
  count : int;
  off : int array;
  nbr : int array;
  wgt : int array;
}

let min_bits = 4

let max_bits = 24

let chunk_of ~bits v = v lsr bits

let local_of ~bits v = v land ((1 lsl bits) - 1)

let node_of ~bits ~cid ~local = (cid lsl bits) lor local

let num_chunks ~bits ~n = max 1 ((n + (1 lsl bits) - 1) lsr bits)

let default_bits ~n =
  (* smallest width with at most ~32 chunks *)
  let bits = ref min_bits in
  while num_chunks ~bits:!bits ~n > 32 && !bits < max_bits do
    incr bits
  done;
  !bits

let count_of ~bits ~n ~cid =
  let base = cid lsl bits in
  min (1 lsl bits) (max 0 (n - base))

let degree c ~local = c.off.(local + 1) - c.off.(local)

let iter_neighbors c ~local ~f =
  for s = c.off.(local) to c.off.(local + 1) - 1 do
    f c.nbr.(s) c.wgt.(s)
  done

let bytes c =
  (* three int arrays at 8 bytes per element plus a small fixed header *)
  8 * (Array.length c.off + Array.length c.nbr + Array.length c.wgt + 8)
