(** Node chunks and the packed chunk-id/local-id addressing scheme.

    The chunked store partitions the node set [0 .. n-1] into
    fixed-size, contiguous chunks of [2^bits] nodes: node [v] lives in
    chunk [v lsr bits] at local index [v land (2^bits - 1)].  A global
    node id therefore {e is} the packed address — splitting and
    repacking are single shift/mask operations, and chunk-aligned data
    never needs an indirection table.

    A resident chunk is a CSR slice of the adjacency restricted to its
    node range: local node [i]'s directed slots are
    [off.(i) .. off.(i+1) - 1]; slot [s] names the {e global} neighbor
    id [nbr.(s)] with edge weight [wgt.(s)].  Slots are sorted by
    (neighbor, weight) within each node, which makes per-row binary
    search possible and gives the store a canonical on-disk order (the
    structural hash walks it directly). *)

type t = {
  cid : int;  (** chunk index *)
  base : int;  (** first global node id = [cid lsl bits] *)
  count : int;  (** nodes covered (the last chunk may be short) *)
  off : int array;  (** length [count + 1] *)
  nbr : int array;  (** global neighbor ids, length [off.(count)] *)
  wgt : int array;  (** edge weights, same length as [nbr] *)
}

val min_bits : int
(** 4 — chunks below 16 nodes make the per-chunk header dominate. *)

val max_bits : int
(** 24. *)

val chunk_of : bits:int -> int -> int
(** Chunk index of a global node id. *)

val local_of : bits:int -> int -> int
(** Local index of a global node id inside its chunk. *)

val node_of : bits:int -> cid:int -> local:int -> int
(** Repack a (chunk, local) pair into the global node id. *)

val num_chunks : bits:int -> n:int -> int
(** ⌈n / 2^bits⌉, and at least 1 so the empty graph still has a home. *)

val default_bits : n:int -> int
(** Chunk size aimed at ≈32 chunks per graph (clamped to
    [min_bits .. max_bits]) — wide enough that the residency manager
    has real eviction decisions to make, small enough that one chunk
    never dominates the byte budget.  The √n-fragment decomposition
    groups O(√n)-diameter regions; ≈32 contiguous ranges is the same
    order of locality for the ladder families. *)

val count_of : bits:int -> n:int -> cid:int -> int
(** Number of nodes the chunk covers ([2^bits], short for the last). *)

val degree : t -> local:int -> int

val iter_neighbors : t -> local:int -> f:(int -> int -> unit) -> unit
(** [f neighbor weight] per slot, in slot order. *)

val bytes : t -> int
(** Resident footprint estimate in bytes (the three arrays plus header
    words) — the unit of the residency budget. *)
