(** LRU residency manager: which chunks stay in memory.

    The store keeps at most [budget] bytes of chunks resident.  Every
    access front-moves the chunk in an intrusive doubly-linked recency
    list (O(1)); a miss loads through the [load] callback and then
    evicts from the cold end until the budget holds again.  The chunk
    just returned is never evicted — when a single chunk exceeds the
    whole budget, it stays resident alone, so [bytes_resident] is
    bounded by [max budget (largest single chunk)] and by [budget]
    whenever every chunk fits.

    Recency is a logical order, not wall time, so access traces replay
    deterministically.

    Counters (hits / misses / evictions / bytes resident) are kept
    internally and mirrored through an optional {!instruments} sink —
    the serving layer plugs its [Metrics] registry in there
    ({!Mincut_serve.Store_metrics}) without this library depending on
    it. *)

type instruments = {
  on_hit : unit -> unit;
  on_miss : unit -> unit;
  on_eviction : unit -> unit;
  on_bytes_resident : int -> unit;  (** called after every residency change *)
}

type stats = {
  hits : int;
  misses : int;  (** equals the number of chunk loads *)
  evictions : int;
  resident : int;  (** chunks currently resident *)
  bytes_resident : int;
  budget : int;
}

type t

val create : ?instruments:instruments -> budget:int -> load:(int -> Chunk.t) -> unit -> t
(** [budget] is in bytes and must be positive. *)

val get : t -> int -> Chunk.t
(** Fetch chunk [cid], loading and evicting as needed.  Exceptions from
    [load] propagate (corrupt chunks surface as
    {!Chunked_graph.Store_error}). *)

val stats : t -> stats

val drop_all : t -> unit
(** Evict everything (counted as evictions); counters survive.  Used by
    tests and by sweeps that want a cold start. *)
