module CG = Chunked_graph

type bfs = {
  dist : int array;
  parent : int array;
  reached : int;
  ecc : int;
  rounds : int;
}

let bfs g ~root =
  let n = CG.n g in
  if root < 0 || root >= n then
    invalid_arg (Printf.sprintf "Traverse.bfs: root %d out of range" root);
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  dist.(root) <- 0;
  let reached = ref 1 in
  let ecc = ref 0 in
  let frontier = ref [ root ] in
  let d = ref 0 in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun u ->
        CG.iter_neighbors g u ~f:(fun v _w ->
            if dist.(v) = -1 then begin
              dist.(v) <- !d + 1;
              (* frontier is ascending and first claim wins, so the
                 parent is the minimum-id offerer — the engine's
                 adoption rule *)
              parent.(v) <- u;
              incr reached;
              next := v :: !next
            end))
      !frontier;
    frontier := List.sort Int.compare !next;
    if !frontier <> [] then begin
      incr d;
      ecc := !d
    end
  done;
  (* ecc = 0 means the root flooded nothing: the driver counts a single
     quiet round.  Otherwise last adoption at round ecc, its wasted
     flood at ecc+1, quiescence declared entering ecc+2. *)
  let rounds = if !ecc = 0 then 1 else !ecc + 2 in
  { dist; parent; reached = !reached; ecc = !ecc; rounds }

let insert_sorted xs x =
  let rec ins = function
    | [] -> [ x ]
    | y :: tl -> if x <= y then x :: y :: tl else y :: ins tl
  in
  ins xs

let upcast_rounds ~parent ~root ~sources =
  match sources with
  | [] -> 0
  | _ ->
      let n = Array.length parent in
      let unsent = Array.make n [] in
      let in_active = Array.make n false in
      let active = ref [] in
      let add_item v x =
        if v <> root then begin
          if v < 0 || v >= n then
            invalid_arg "Traverse.upcast_rounds: node out of range";
          unsent.(v) <- insert_sorted unsent.(v) x;
          if not in_active.(v) then begin
            in_active.(v) <- true;
            active := v :: !active
          end
        end
      in
      List.iteri (fun i s -> add_item s i) sources;
      let inbox = ref [] in
      let round = ref 0 in
      let last_send = ref (-1) in
      while !active <> [] || !inbox <> [] do
        (* deliveries from the previous round land before anyone sends:
           the engine's step sees last round's outbox as this round's
           inbox and may forward the item immediately *)
        List.iter (fun (dst, x) -> add_item dst x) !inbox;
        let senders = !active in
        active := [];
        let sends = ref [] in
        List.iter
          (fun v ->
            match unsent.(v) with
            | [] -> in_active.(v) <- false
            | x :: rest ->
                unsent.(v) <- rest;
                let p = parent.(v) in
                if p = -1 then
                  invalid_arg
                    (Printf.sprintf
                       "Traverse.upcast_rounds: node %d cannot reach the root" v);
                sends := (p, x) :: !sends;
                if rest = [] then in_active.(v) <- false
                else active := v :: !active)
          senders;
        if !sends <> [] then last_send := !round;
        inbox := !sends;
        incr round
      done;
      (* Network.run_bounded's effective completion time *)
      if !last_send < 0 then 0 else !last_send + 2
