(** Streaming bulk loader: edges in, chunk files out.

    The loader is the write path of the store.  Feed it [(u, v, w)]
    edges one at a time (typically from {!Mincut_graph.Edge_stream});
    it appends each edge as two 12-byte directed records to on-disk
    bucket files — one bucket per group of consecutive chunks, capped
    at 64 open files — so no edge list is ever materialized in memory.
    [finalize] then builds each chunk's CSR slice from its bucket
    (counting sort by local node, rows sorted by (neighbor, weight)),
    writes the versioned chunk files, folds the canonical structural
    hash (identical recipe to [Graph_key.structural_hash], so warm
    cache keys match in-memory solves), and commits the manifest last.

    Peak memory is one bucket group's records, ≈ 2m / num_groups
    directed entries — the knob that keeps 10⁶⁺-edge loads flat. *)

type t

val create : dir:string -> n:int -> ?chunk_bits:int -> unit -> (t, string) result
(** Start a load into [dir] (created when missing) for nodes
    [0 .. n-1].  [chunk_bits] defaults to {!Chunk.default_bits}.
    Requires [n >= 1]. *)

val chunk_bits : t -> int

val add_edge : t -> u:int -> v:int -> w:int -> unit
(** Raises [Invalid_argument] on out-of-range endpoints, self loops or
    non-positive weights — the same contract as [Graph.create].
    Parallel edges are kept. *)

val finalize : t -> (Chunk_io.manifest, string) result
(** Build and write every chunk plus the manifest; the loader cannot be
    used afterwards.  The manifest write is the commit point: a
    directory without one is an aborted load and [Chunked_graph.open_store]
    refuses it. *)
