module Graph = Mincut_graph.Graph
module Hash = Mincut_util.Hash

exception Store_error of string

type t = {
  dir : string;
  manifest : Chunk_io.manifest;
  residency : Residency.t;
}

let open_store ?instruments ~dir ~budget () =
  match Chunk_io.read_manifest ~dir with
  | Error e -> Error (Chunk_io.error_message e)
  | Ok manifest ->
      let load cid =
        match Chunk_io.read ~dir ~bits:manifest.Chunk_io.chunk_bits ~cid with
        | Ok chunk -> chunk
        | Error e -> raise (Store_error (Chunk_io.error_message e))
      in
      let residency = Residency.create ?instruments ~budget ~load () in
      Ok { dir; manifest; residency }

let n t = t.manifest.Chunk_io.n
let m t = t.manifest.Chunk_io.m
let total_weight t = t.manifest.Chunk_io.total_weight
let num_chunks t = t.manifest.Chunk_io.num_chunks
let chunk_bits t = t.manifest.Chunk_io.chunk_bits

(* Per chunk: off has count+1 cells, plus 6 scalar fields and 2 words of
   block overhead per array; nbr+wgt across all chunks total 4m cells. *)
let manifest_bytes (m : Chunk_io.manifest) =
  8 * (m.Chunk_io.n + (9 * m.Chunk_io.num_chunks) + (4 * m.Chunk_io.m))

let total_bytes t = manifest_bytes t.manifest

let structural_hash t = t.manifest.Chunk_io.hash

let chunk t cid =
  if cid < 0 || cid >= num_chunks t then
    invalid_arg (Printf.sprintf "Chunked_graph.chunk: cid %d out of range" cid);
  Residency.get t.residency cid

let iter_chunks t ~f =
  for cid = 0 to num_chunks t - 1 do
    f (chunk t cid)
  done

let chunk_of_node t v =
  if v < 0 || v >= n t then
    invalid_arg (Printf.sprintf "Chunked_graph: node %d out of range" v);
  let bits = chunk_bits t in
  (chunk t (Chunk.chunk_of ~bits v), Chunk.local_of ~bits v)

let degree t v =
  let c, local = chunk_of_node t v in
  Chunk.degree c ~local

let weighted_degree t v =
  let c, local = chunk_of_node t v in
  let acc = ref 0 in
  Chunk.iter_neighbors c ~local ~f:(fun _ w -> acc := !acc + w);
  !acc

let iter_neighbors t v ~f =
  let c, local = chunk_of_node t v in
  Chunk.iter_neighbors c ~local ~f

let fold_neighbors t v ~init ~f =
  let acc = ref init in
  iter_neighbors t v ~f:(fun u w -> acc := f !acc u w);
  !acc

(* Same recipe as the loader: n, then canonical (u, v, w) triples with
   u < v, ascending — chunk-major node order IS ascending node order. *)
let compute_structural_hash t =
  let h = Hash.create () in
  Hash.add_int h (n t);
  iter_chunks t ~f:(fun c ->
      for i = 0 to c.Chunk.count - 1 do
        let u = c.Chunk.base + i in
        Chunk.iter_neighbors c ~local:i ~f:(fun v w ->
            if v > u then begin
              Hash.add_int h u;
              Hash.add_int h v;
              Hash.add_int h w
            end)
      done);
  Hash.value h

let stats t = Residency.stats t.residency
let drop_resident t = Residency.drop_all t.residency

let to_graph t =
  let edges = ref [] in
  iter_chunks t ~f:(fun c ->
      for i = 0 to c.Chunk.count - 1 do
        let u = c.Chunk.base + i in
        Chunk.iter_neighbors c ~local:i ~f:(fun v w ->
            if v > u then edges := (u, v, w) :: !edges)
      done);
  Graph.create ~n:(n t) !edges
