module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Union_find = Mincut_graph.Union_find
module Network = Mincut_congest.Network
module Cost = Mincut_congest.Cost

type result = { edge_ids : int list; phases : int; cost : Cost.t }

(* One message type for all four per-phase programs. *)
type msg =
  | Frag of int            (* step A: my fragment id *)
  | Cand of int * int      (* step B: best outgoing (weight, edge id); max_int = none *)
  | Decide of int          (* step C: fragment's chosen edge id; -1 = none *)
  | New_frag of int        (* step D: merged fragment id flood *)

let words = function Frag _ -> 1 | Cand _ -> 2 | Decide _ -> 1 | New_frag _ -> 1

let none_cand = (max_int, max_int)

let better (w1, i1) (w2, i2) = if w1 < w2 || (w1 = w2 && i1 < i2) then (w1, i1) else (w2, i2)

let distinct_neighbors g v =
  List.sort_uniq Int.compare (Array.to_list (Array.map fst (Graph.adj g v)))

(* --- step A: 1-round fragment id exchange ------------------------- *)

type exch_state = { round_ : int; heard : (int * int) list }

let exchange_frags ?cfg g frag =
  let prog : (exch_state, msg) Network.program =
    {
      initial = (fun _ -> { round_ = 0; heard = [] });
      step =
        (fun ~node ~round ~inbox st ->
          let heard =
            List.filter_map (fun (s, m) -> match m with Frag f -> Some (s, f) | _ -> None) inbox
            @ st.heard
          in
          if round = 0 then
            ( { round_ = 1; heard },
              List.map (fun u -> (u, Frag frag.(node))) (distinct_neighbors g node) )
          else ({ round_ = 2; heard }, []))
        ;
      halted = (fun st -> st.round_ >= 2);
    }
  in
  let states, audit = Network.run ?cfg ~words g prog in
  let heard = Array.map (fun st -> st.heard) states in
  (heard, Cost.executed ~audit "boruvka: frag exchange (real)" audit.Network.rounds)

(* --- step B: convergecast of the min outgoing edge ----------------- *)

type cc_state = { remaining : int; best : int * int; sent : bool }

let converge_candidates ?cfg g ~parent ~child_count ~local =
  let prog : (cc_state, msg) Network.program =
    {
      initial = (fun v -> { remaining = child_count.(v); best = local.(v); sent = false });
      step =
        (fun ~node ~round:_ ~inbox st ->
          let best =
            List.fold_left
              (fun b (_, m) -> match m with Cand (w, id) -> better b (w, id) | _ -> b)
              st.best inbox
          in
          let remaining = st.remaining - List.length inbox in
          if remaining = 0 && not st.sent then
            if parent.(node) = -1 then ({ remaining; best; sent = true }, [])
            else
              ( { remaining; best; sent = true },
                [ (parent.(node), Cand (fst best, snd best)) ] )
          else ({ st with remaining; best }, []))
        ;
      halted = (fun st -> st.sent);
    }
  in
  let states, audit = Network.run ?cfg ~words g prog in
  (Array.map (fun st -> st.best) states, Cost.executed ~audit "boruvka: candidate convergecast (real)" audit.Network.rounds)

(* --- step C: broadcast the decision down each fragment ------------- *)

type dc_state = { decision : int option; forwarded : bool }

let broadcast_decision ?cfg g ~parent ~children ~leader_decision =
  let prog : (dc_state, msg) Network.program =
    {
      initial =
        (fun v ->
          {
            decision = (if parent.(v) = -1 then Some leader_decision.(v) else None);
            forwarded = false;
          });
      step =
        (fun ~node ~round:_ ~inbox st ->
          match st.decision with
          | Some d when not st.forwarded ->
              ( { st with forwarded = true },
                List.map (fun c -> (c, Decide d)) children.(node) )
          | Some _ -> (st, [])
          | None -> (
              match
                List.find_map (fun (_, m) -> match m with Decide d -> Some d | _ -> None) inbox
              with
              | None -> (st, [])
              | Some d ->
                  ( { decision = Some d; forwarded = true },
                    List.map (fun c -> (c, Decide d)) children.(node) )))
        ;
      halted = (fun st -> st.decision <> None && st.forwarded);
    }
  in
  let states, audit = Network.run ?cfg ~words g prog in
  ( Array.map (fun st -> match st.decision with Some d -> d | None -> -1) states,
    Cost.executed ~audit "boruvka: decision broadcast (real)" audit.Network.rounds )

(* --- step D: flood merged fragment ids, re-orienting the tree ------ *)

type fl_state = {
  adopted : bool;
  flooded : bool;  (* has forwarded the new id onward *)
  frag : int;
  parent : int;
  parent_edge : int;
}

let flood_new_ids ?cfg g ~allowed ~is_leader ~new_id =
  let prog : (fl_state, msg) Network.program =
    {
      initial =
        (fun v ->
          if is_leader.(v) then
            { adopted = true; flooded = false; frag = new_id.(v); parent = -1; parent_edge = -1 }
          else { adopted = false; flooded = false; frag = -1; parent = -1; parent_edge = -1 });
      step =
        (fun ~node ~round:_ ~inbox st ->
          if st.adopted then
            if not st.flooded then
              ( { st with flooded = true },
                List.map (fun (u, _) -> (u, New_frag st.frag)) allowed.(node) )
            else (st, [])
          else
            match
              List.find_map (fun (s, m) -> match m with New_frag f -> Some (s, f) | _ -> None) inbox
            with
            | None -> (st, [])
            | Some (sender, f) ->
                let parent_edge =
                  match List.assoc_opt sender allowed.(node) with
                  | Some id -> id
                  | None -> -1
                in
                let onward =
                  List.filter (fun (u, _) -> u <> sender) allowed.(node)
                  |> List.map (fun (u, _) -> (u, New_frag f))
                in
                ( { adopted = true; flooded = true; frag = f; parent = sender; parent_edge },
                  onward ))
        ;
      halted = (fun st -> st.adopted && st.flooded);
    }
  in
  let states, audit = Network.run ?cfg ~words g prog in
  (states, Cost.executed ~audit "boruvka: merge flood (real)" audit.Network.rounds)

(* --- main loop ------------------------------------------------------ *)

module ISet = Set.Make (Int)

let run ?cfg g =
  let n = Graph.n g in
  let frag = Array.init n (fun v -> v) in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let children = Array.make n [] in
  let mst = ref ISet.empty in
  let cost = ref Cost.zero in
  let phases = ref 0 in
  let distinct_frags () =
    Array.fold_left (fun s f -> ISet.add f s) ISet.empty frag |> ISet.cardinal
  in
  let continue = ref (n > 1) in
  while !continue do
    incr phases;
    (* A: learn neighbor fragments *)
    let heard, c1 = exchange_frags ?cfg g frag in
    (* local candidate per node: cheapest incident edge leaving the
       fragment, under the global (weight, id) order *)
    let frag_of_neighbor = Array.make n [] in
    Array.iteri (fun v h -> frag_of_neighbor.(v) <- h) heard;
    let local = Array.make n none_cand in
    for v = 0 to n - 1 do
      Array.iter
        (fun (u, id) ->
          match List.assoc_opt u frag_of_neighbor.(v) with
          | Some fu when fu <> frag.(v) ->
              local.(v) <- better local.(v) (Graph.weight g id, id)
          | _ -> ())
        (Graph.adj g v)
    done;
    (* B: fragment leaders learn their min outgoing edge *)
    let child_count = Array.map List.length children in
    let best, c2 = converge_candidates ?cfg g ~parent ~child_count ~local in
    let chosen = Hashtbl.create 64 in
    for v = 0 to n - 1 do
      if parent.(v) = -1 && best.(v) <> none_cand then
        Hashtbl.replace chosen frag.(v) (snd best.(v))
    done;
    if Hashtbl.length chosen = 0 then begin
      (* no outgoing edges anywhere: single fragment or disconnected *)
      cost :=
        Cost.( ++ ) !cost
          (Cost.group
             (Printf.sprintf "boruvka phase %d (final probe)" !phases)
             (Cost.( ++ ) c1 c2));
      continue := false
    end
    else begin
      (* C: decision broadcast within each fragment + 1-round handshake
         across each chosen edge *)
      let leader_decision = Array.make n (-1) in
      for v = 0 to n - 1 do
        if parent.(v) = -1 then
          leader_decision.(v) <-
            (match Hashtbl.find_opt chosen frag.(v) with Some id -> id | None -> -1)
      done;
      let _, c3 = broadcast_decision ?cfg g ~parent ~children ~leader_decision in
      let c3 = Cost.( ++ ) c3 (Cost.scheduled "boruvka: merge handshake" 1) in
      (* resolve merges *)
      let uf = Union_find.create n in
      Hashtbl.iter
        (fun _ id ->
          let u, v = Graph.endpoints g id in
          ignore (Union_find.union uf frag.(u) frag.(v));
          mst := ISet.add id !mst)
        chosen;
      (* new fragment id = min old fragment id in the merged component
         (old ids are node ids, each the min member of its fragment) *)
      let new_of_rep = Hashtbl.create 64 in
      for v = 0 to n - 1 do
        let r = Union_find.find uf frag.(v) in
        let cur = try Hashtbl.find new_of_rep r with Not_found -> max_int in
        Hashtbl.replace new_of_rep r (min cur frag.(v))
      done;
      let new_id = Array.make n (-1) in
      let is_leader = Array.make n false in
      for v = 0 to n - 1 do
        new_id.(v) <- Hashtbl.find new_of_rep (Union_find.find uf frag.(v))
      done;
      for v = 0 to n - 1 do
        if new_id.(v) = v then is_leader.(v) <- true
      done;
      (* allowed adjacency for the flood: current fragment tree edges
         plus this phase's merge edges *)
      let allowed = Array.make n [] in
      for v = 0 to n - 1 do
        if parent.(v) <> -1 then allowed.(v) <- (parent.(v), parent_edge.(v)) :: allowed.(v);
        List.iter
          (fun c -> allowed.(v) <- (c, parent_edge.(c)) :: allowed.(v))
          children.(v)
      done;
      Hashtbl.iter
        (fun _ id ->
          let u, v = Graph.endpoints g id in
          allowed.(u) <- (v, id) :: allowed.(u);
          allowed.(v) <- (u, id) :: allowed.(v))
        chosen;
      (* dedupe targets (parallel merge choices may repeat a pair) *)
      Array.iteri
        (fun v l ->
          allowed.(v) <-
            List.sort_uniq
              (fun (a1, a2) (b1, b2) ->
                match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
              l)
        allowed;
      let states, c4 = flood_new_ids ?cfg g ~allowed ~is_leader ~new_id in
      Array.iteri
        (fun v (st : fl_state) ->
          frag.(v) <- st.frag;
          parent.(v) <- st.parent;
          parent_edge.(v) <- st.parent_edge)
        states;
      Array.fill children 0 n [];
      for v = 0 to n - 1 do
        if parent.(v) <> -1 then children.(parent.(v)) <- v :: children.(parent.(v))
      done;
      cost :=
        Cost.( ++ ) !cost
          (Cost.group
             (Printf.sprintf "boruvka phase %d" !phases)
             (Cost.sum [ c1; c2; c3; c4 ]));
      if distinct_frags () <= 1 then continue := false
    end
  done;
  { edge_ids = ISet.elements !mst; phases = !phases; cost = !cost }

let spanning_tree ?cfg g ~root =
  let r = run ?cfg g in
  if List.length r.edge_ids <> Graph.n g - 1 then
    invalid_arg "Boruvka_dist.spanning_tree: disconnected graph";
  (Tree.of_edge_ids g ~root r.edge_ids, r)
