(** Distributed minimum spanning tree (synchronous Borůvka / GHS-style),
    executed as real message-passing programs on the CONGEST engine.

    The paper takes the Õ(√n + D)-round Kutten–Peleg MST as a black box;
    this module provides the repo's *executable* distributed MST so that
    the substrate is real: fragments grow by repeatedly (a) learning
    neighboring fragment ids (1 round), (b) convergecasting the minimum
    outgoing edge to the fragment leader, (c) broadcasting the decision
    and handshaking across the chosen edge, and (d) flooding the merged
    fragment's new id while re-orienting the fragment tree.  All four
    steps are per-node message programs; only the choice of the merged
    fragment's leader (min node id, resolved with a union-find) is an
    orchestration shortcut, which changes leader identity but not the
    communication structure.

    The edge set produced is exactly the sequential Borůvka MST under
    the same (weight, edge id) total order, which tests exploit.

    Worst-case rounds are O(n log n) like classic GHS — when the
    min-cut pipeline needs the Õ(√n + D) figure it charges the
    Kutten–Peleg bound instead (see {!Mincut_core.Params}); the real run
    here serves correctness and the engine audit. *)

type result = {
  edge_ids : int list;      (** MST (or minimum spanning forest) edges *)
  phases : int;             (** Borůvka phases executed (≤ ⌈log₂ n⌉) *)
  cost : Mincut_congest.Cost.t;
      (** measured rounds: one [Executed]-dominated span per Borůvka
          phase, with the four real sub-programs as children *)
}

val run : ?cfg:Mincut_congest.Config.t -> Mincut_graph.Graph.t -> result

val spanning_tree : ?cfg:Mincut_congest.Config.t -> Mincut_graph.Graph.t -> root:int -> Mincut_graph.Tree.t * result
(** [run], then orient the MST at [root].  Raises [Invalid_argument] on
    disconnected graphs. *)
