(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    The chunked graph store guards every on-disk chunk payload with a
    CRC so that torn writes and bit rot surface as a clean versioned
    format error instead of a silently corrupt graph.  FNV
    ({!Mincut_util.Hash}) is kept for content addressing — it is faster
    to stream but has no error-detection guarantees; CRC-32 detects all
    burst errors up to 32 bits, which is the failure mode disks and
    interrupted writes actually produce.

    Digests are returned as non-negative [int]s (fits easily in OCaml's
    63-bit native int). *)

val bytes : Bytes.t -> pos:int -> len:int -> int
(** CRC of [len] bytes of [b] starting at [pos].  Raises
    [Invalid_argument] when the range is out of bounds. *)

val string : string -> int
(** One-shot CRC of every byte of the string. *)
