type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over the top 62 bits keeps the draw unbiased. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else go ()
  in
  go ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then 1e-300 else u in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))

let binomial t n p =
  assert (n >= 0 && p >= 0.0 && p <= 1.0);
  if Float.equal p 0.0 || n = 0 then 0
  else if Float.equal p 1.0 then n
  else if p > 0.5 then n - (let q = 1.0 -. p in
                            (* mirror to keep the skip-sampling loop short *)
                            let rec count acc pos =
                              let pos = pos + 1 + geometric t q in
                              if pos > n then acc else count (acc + 1) pos
                            in
                            count 0 0)
  else
    (* Skip-based counting: expected work O(np). *)
    let rec count acc pos =
      let pos = pos + 1 + geometric t p in
      if pos > n then acc else count (acc + 1) pos
    in
    count 0 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
