(** Canonical integer sets: strictly-increasing duplicate-free lists.

    Unlike [Stdlib.Set] (whose AVL shape depends on insertion order),
    every value here has exactly one in-memory representation, so
    structural equality, [Marshal] images and hashes of containing
    states are insertion-order independent.  The CONGEST sanitizer
    ({!Mincut_congest.Config.sanitize}) relies on this: node states
    built from permuted inboxes must be byte-identical, not merely
    semantically equal.

    Operations are O(cardinal); intended for the small per-node sets
    CONGEST programs carry (pipelined item buffers of O(√n) ids). *)

type t = private int list
(** The [private] view lets consumers pattern-match and iterate
    without being able to construct a non-canonical value. *)

val empty : t

val is_empty : t -> bool

val add : int -> t -> t

val mem : int -> t -> bool

val of_list : int list -> t

val elements : t -> int list
(** Strictly increasing. *)

val cardinal : t -> int

val min_elt_opt : t -> int option

val diff : t -> t -> t
(** [diff a b] — elements of [a] not in [b]. *)

val union : t -> t -> t

val equal : t -> t -> bool

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order. *)
