type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emit ------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* shortest of %.12g / %.17g that round-trips *)
let float_literal f =
  let short = Printf.sprintf "%.12g" f in
  if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ---- parse ----------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* sufficient for the control characters we ourselves emit;
               non-ASCII code points are stored as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec run () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        run ()
    | _ -> ()
  in
  run ();
  let text = String.sub c.s start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        fields []
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  with Parse_error msg -> Error msg

(* ---- accessors ------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_obj = function Obj kvs -> Some kvs | _ -> None
