(* Table-driven CRC-32 over the reflected IEEE polynomial.  The table is
   built once at module initialization; entries are plain ints masked to
   32 bits. *)

let table =
  let t = Array.make 256 0 in
  for i = 0 to 255 do
    let c = ref i in
    for _ = 1 to 8 do
      if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
    done;
    t.(i) <- !c
  done;
  t

let bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes: range out of bounds";
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get b i) in
    crc := table.((!crc lxor byte) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string s = bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
