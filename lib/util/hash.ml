type t = { mutable h : int64 }

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let create () = { h = offset_basis }

let add_byte t b =
  t.h <- Int64.mul (Int64.logxor t.h (Int64.of_int (b land 0xff))) prime

let add_int64 t x =
  for i = 0 to 7 do
    add_byte t (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done

let add_int t x = add_int64 t (Int64.of_int x)

let add_string t s = String.iter (fun c -> add_byte t (Char.code c)) s

let value t = t.h

let to_hex v = Printf.sprintf "%016Lx" v

let of_hex s =
  if String.length s <> 16 then None
  else
    try Some (Int64.of_string ("0x" ^ s)) with Failure _ -> None

let string s =
  let t = create () in
  add_string t s;
  value t
