(* Canonical integer sets as strictly-increasing lists.

   [Stdlib.Set] trees are semantically canonical but not
   representation-canonical: inserting the same elements in different
   orders yields different AVL shapes, so two equal sets can have
   different [Marshal] images.  The CONGEST sanitizer certifies
   order-independence by byte-comparing marshalled node states, which
   requires every state component to have exactly one representation
   per value.  A sorted duplicate-free list is that representation:
   same elements, same bytes, whatever the insertion order. *)

type t = int list

let empty : t = []

let is_empty t = t = []

let rec add x t =
  match t with
  | [] -> [ x ]
  | y :: rest ->
      if x < y then x :: t else if x = y then t else y :: add x rest

let rec mem x = function
  | [] -> false
  | y :: rest -> if x < y then false else x = y || mem x rest

let of_list xs = List.sort_uniq Int.compare xs

let elements t = t

let cardinal = List.length

let min_elt_opt = function [] -> None | x :: _ -> Some x

(* elements of [a] not in [b]; both strictly increasing *)
let diff a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> []
    | _, [] -> a
    | x :: a', y :: b' ->
        if x < y then x :: go a' b
        else if x = y then go a' b'
        else go a b'
  in
  go a b

let union a b =
  let rec go a b =
    match (a, b) with
    | [], t | t, [] -> t
    | x :: a', y :: b' ->
        if x < y then x :: go a' b
        else if x > y then y :: go a b'
        else x :: go a' b'
  in
  go a b

let equal a b = List.equal Int.equal a b

let fold f t acc = List.fold_left (fun acc x -> f x acc) acc t
