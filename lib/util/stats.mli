(** Small descriptive-statistics helpers used by the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p90 : float;
}

val summarize : float array -> summary
(** Summary of a non-empty sample. *)

val mean : float array -> float

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [\[0,1\]], linear interpolation between
    order statistics. *)

val peak_rss_kb : unit -> int option
(** Peak resident set size of this process ([VmHWM] in
    [/proc/self/status]), in kB; [None] where the Linux procfs field is
    unavailable. *)

val linear_fit : (float * float) array -> float * float
(** [linear_fit pts] returns [(slope, intercept)] of the least-squares
    line through the points.  Used to estimate empirical growth exponents
    from log-log series. *)

val growth_exponent : (float * float) array -> float
(** [growth_exponent series] fits [y = c * x^a] on positive data by
    regressing [log y] on [log x] and returns [a]. *)
