(** Streaming 64-bit FNV-1a hashing.

    The serving layer addresses cached results by a structural digest of
    the input graph, so the hash must be (a) deterministic across runs
    and OCaml versions — unlike [Hashtbl.hash], whose output is not
    specified — and (b) cheap to feed incrementally from canonicalized
    data.  FNV-1a over the canonical byte stream satisfies both; 64 bits
    keep the collision probability negligible at any realistic cache
    population (birthday bound ≈ 2⁻³² at four billion distinct keys),
    and cache keys additionally carry [n]/[m] guards. *)

type t
(** Mutable hashing state. *)

val create : unit -> t
(** Fresh state at the FNV-1a offset basis. *)

val add_byte : t -> int -> unit
(** Feed the low 8 bits of the argument. *)

val add_int : t -> int -> unit
(** Feed a native int as 8 little-endian bytes. *)

val add_int64 : t -> int64 -> unit

val add_string : t -> string -> unit
(** Feed every byte of the string (no length prefix; callers that need
    unambiguous framing should [add_int] the length themselves). *)

val value : t -> int64
(** Current digest.  The state remains usable afterwards. *)

val to_hex : int64 -> string
(** 16-character lowercase hex rendering of a digest. *)

val of_hex : string -> int64 option
(** Inverse of [to_hex]; [None] on malformed input. *)

val string : string -> int64
(** One-shot digest of a string. *)
