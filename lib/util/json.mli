(** Minimal JSON values: emit and parse.

    The serving layer exports metrics snapshots as JSON lines and the
    benchmark harness emits BENCH artifacts, but the repo deliberately
    carries no JSON dependency.  This module implements the small subset
    we need: the full value grammar on output, and a strict
    recursive-descent parser sufficient to read back what [to_string]
    produces (numbers, strings with the common escapes, arrays,
    objects, booleans, null). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Floats are printed with enough
    digits to round-trip; NaN/infinity are rendered as [null] since JSON
    cannot represent them. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. *)

(** Accessors used by readers; all are total and return [None] on shape
    mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
