type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let rule =
    "|"
    ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("### " ^ t.title ^ "\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells = Buffer.add_string buf (String.concat "," (List.map csv_escape cells) ^ "\n") in
  row t.columns;
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let csv_dir = ref None

let set_csv_dir d = csv_dir := d

let slug title =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then
        Char.lowercase_ascii c
      else '-')
    (if String.length title > 40 then String.sub title 0 40 else title)

let print t =
  print_string (render t);
  print_newline ();
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (slug t.title ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (to_csv t))

let fmt_float x =
  if Float.is_integer x && abs_float x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let fmt_ratio x = Printf.sprintf "%.3f" x
