type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let mean xs =
  let n = Array.length xs in
  assert (n > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))

let percentile xs q =
  let n = Array.length xs in
  assert (n > 0 && q >= 0.0 && q <= 1.0);
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let summarize xs =
  let n = Array.length xs in
  assert (n > 0);
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = percentile xs 0.5;
    p90 = percentile xs 0.9;
  }

(* VmHWM from /proc/self/status: the process's peak resident set, in
   kB.  Linux-only by construction; anywhere the file or the field is
   missing the caller gets [None] rather than a fake number. *)
let peak_rss_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_lines with
  | exception Sys_error _ -> None
  | lines ->
      List.find_map
        (fun line ->
          let prefix = "VmHWM:" in
          if
            String.length line > String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
          then
            String.sub line (String.length prefix)
              (String.length line - String.length prefix)
            |> String.split_on_char ' '
            |> List.find_map (fun tok ->
                   match int_of_string_opt (String.trim tok) with
                   | Some kb when kb > 0 -> Some kb
                   | _ -> None)
          else None)
        lines

let linear_fit pts =
  let n = float_of_int (Array.length pts) in
  assert (Array.length pts >= 2);
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (n *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then (0.0, sy /. n)
  else
    let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
    (slope, (sy -. (slope *. sx)) /. n)

let growth_exponent series =
  let logged =
    Array.of_list
      (List.filter_map
         (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
         (Array.to_list series))
  in
  if Array.length logged < 2 then 0.0 else fst (linear_fit logged)
