(* The delta layer: versioned handles (apply semantics, rolling
   multiset digest, compaction invisibility), the incremental NI
   certificate (three-tier answering, λ-exactness under arbitrary delta
   sequences), the seeded delta-stream generator, and Api sessions
   (anchored summary reuse across versions). *)

open Test_helpers
module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Delta = Mincut_graph.Delta
module Handle = Mincut_graph.Handle
module Bfs = Mincut_graph.Bfs
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Rng = Mincut_util.Rng
module Bitset = Mincut_util.Bitset
module Api = Mincut_core.Api
module Params = Mincut_core.Params
module Incremental = Mincut_core.Incremental

let check_string = Alcotest.(check string)
let lambda_of g = Stoer_wagner.min_cut_value g

(* ---- delta grammar ---------------------------------------------------- *)

let test_delta_parse_roundtrip () =
  let ops =
    [
      Delta.Add_edge { u = 0; v = 3; w = 2 };
      Delta.Remove_edge { u = 1; v = 2 };
      Delta.Reweight { u = 4; v = 0; w = 7 };
      Delta.Merge_nodes { u = 2; v = 5 };
      Delta.Split_node { v = 1; w = 3; moved = [ 0; 4 ] };
      Delta.Split_node { v = 1; w = 3; moved = [] };
    ]
  in
  List.iter
    (fun op ->
      match Delta.parse (Delta.to_line op) with
      | Ok op' -> check_string "roundtrip" (Delta.to_line op) (Delta.to_line op')
      | Error e -> Alcotest.fail (Delta.to_line op ^ ": " ^ e))
    ops;
  (* comments and blanks parse; garbage does not *)
  check_bool "comment tail" true (Delta.parse "add 1 2 3 # note" = Ok (Delta.Add_edge { u = 1; v = 2; w = 3 }));
  check_bool "bad verb" true (Result.is_error (Delta.parse "frobnicate 1 2"));
  check_bool "bad int" true (Result.is_error (Delta.parse "add 1 x 3"))

(* ---- handle apply semantics ------------------------------------------- *)

let test_handle_apply_semantics () =
  let h = Handle.of_graph (Generators.path 4) in
  check_int "base channels" 3 (Handle.channels h);
  (* add a fresh channel *)
  (match Handle.apply h (Delta.Add_edge { u = 0; v = 2; w = 2 }) with
  | Ok o ->
      check_int "version bumped" 1 o.Handle.version;
      check_bool "not renumbered" false o.Handle.renumbered
  | Error e -> Alcotest.fail e);
  check_int "channel added" 4 (Handle.channels h);
  check_int "channel weight" 2 (Handle.channel_weight h 2 0);
  (* adding onto an existing channel aggregates *)
  (match Handle.apply h (Delta.Add_edge { u = 2; v = 0; w = 3 }) with
  | Ok o ->
      check_bool "one channel-level change" true
        (match o.Handle.changes with
        | [ c ] -> c.Handle.before = 2 && c.Handle.after = 5
        | _ -> false)
  | Error e -> Alcotest.fail e);
  check_int "aggregated" 5 (Handle.channel_weight h 0 2);
  (* errors and no-ops leave everything untouched *)
  let v = Handle.version h and d = Handle.digest h in
  check_bool "remove absent is Error" true
    (Result.is_error (Handle.apply h (Delta.Remove_edge { u = 1; v = 3 })));
  check_bool "self loop is Error" true
    (Result.is_error (Handle.apply h (Delta.Add_edge { u = 1; v = 1; w = 1 })));
  check_bool "out of range is Error" true
    (Result.is_error (Handle.apply h (Delta.Add_edge { u = 0; v = 9; w = 1 })));
  (match Handle.apply h (Delta.Reweight { u = 0; v = 2; w = 5 }) with
  | Ok o -> check_bool "no-op reweight: no changes" true (o.Handle.changes = [])
  | Error e -> Alcotest.fail e);
  check_int "version unchanged" v (Handle.version h);
  check_bool "digest unchanged" true (Int64.equal d (Handle.digest h));
  (* remove and reweight *)
  (match Handle.apply h (Delta.Remove_edge { u = 2; v = 0 }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_int "removed" 0 (Handle.channel_weight h 0 2);
  check_int "back to base channels" 3 (Handle.channels h)

let test_handle_merge_split () =
  let h = Handle.of_graph (Generators.ring 6) in
  (* merge 1 into 0: ring-6 contracts to a 5-node cycle-ish multigraph;
     node 5 is renumbered into slot 1 *)
  (match Handle.apply h (Delta.Merge_nodes { u = 0; v = 1 }) with
  | Ok o -> check_bool "renumbered" true o.Handle.renumbered
  | Error e -> Alcotest.fail e);
  check_int "node count shrank" 5 (Handle.n h);
  check_bool "still connected" true (Bfs.is_connected (Handle.current h));
  let w = Graph.total_weight (Handle.current h) in
  check_int "weight preserved (no {u,v} self loop kept)" (6 - 1) w;
  (* split node 0: move one neighbor to the fresh node *)
  let neighbor =
    match
      List.find_opt
        (fun (x, _) -> x >= 0)
        (List.filter_map
           (fun v ->
             let wv = Handle.channel_weight h 0 v in
             if wv > 0 then Some (v, wv) else None)
           (List.init (Handle.n h) Fun.id))
    with
    | Some (v, _) -> v
    | None -> Alcotest.fail "merge left node 0 isolated"
  in
  (match Handle.apply h (Delta.Split_node { v = 0; w = 2; moved = [ neighbor ] }) with
  | Ok o -> check_bool "split renumbers" true o.Handle.renumbered
  | Error e -> Alcotest.fail e);
  check_int "node count grew" 6 (Handle.n h);
  check_int "bridge weight" 2 (Handle.channel_weight h 0 5);
  check_int "moved channel re-attached" 1 (Handle.channel_weight h 5 neighbor);
  check_int "old channel gone" 0 (Handle.channel_weight h 0 neighbor);
  check_bool "split: duplicate moved is Error" true
    (Result.is_error (Handle.apply h (Delta.Split_node { v = 0; w = 1; moved = [ 1; 1 ] })))

let test_handle_compact_invisible () =
  let h = Handle.of_graph (Generators.torus 3 3) in
  let ops =
    Generators.delta_stream ~rng:(Rng.create 5) ~wmax:3
      ~base:(Generators.torus 3 3) 12
  in
  List.iter (fun op -> ignore (Handle.apply h op)) ops;
  let v = Handle.version h
  and d = Handle.digest h
  and g = Handle.current h in
  check_bool "log non-empty before compact" true (Handle.log h <> []);
  let _ = Handle.compact h in
  check_int "version survives" v (Handle.version h);
  check_bool "digest survives" true (Int64.equal d (Handle.digest h));
  check_bool "current survives" true (Graph.equal_structure g (Handle.current h));
  check_bool "log cleared" true (Handle.log h = []);
  check_bool "base rebased" true (Graph.equal_structure g (Handle.base h))

(* ---- the delta-stream generator --------------------------------------- *)

let test_generator_reproducible_and_valid () =
  let base = Generators.grid 4 4 in
  let gen seed = Generators.delta_stream ~rng:(Rng.create seed) ~wmax:4 ~base 60 in
  check_bool "same seed, same stream" true
    (List.map Delta.to_line (gen 9) = List.map Delta.to_line (gen 9));
  check_bool "different seed, different stream" true
    (List.map Delta.to_line (gen 9) <> List.map Delta.to_line (gen 10));
  (* every generated op applies cleanly and connectivity never breaks *)
  let h = Handle.of_graph base in
  List.iter
    (fun op ->
      (match Handle.apply h op with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Delta.to_line op ^ ": " ^ e));
      check_bool "stays connected" true (Bfs.is_connected (Handle.current h)))
    (gen 9)

(* ---- incremental certificate ------------------------------------------ *)

let test_incremental_lambda_stream () =
  let base = Generators.torus 4 4 in
  let ops = Generators.delta_stream ~rng:(Rng.create 3) ~wmax:3 ~base 120 in
  let s = Api.open_session ~params:Params.fast base in
  check_int "initial λ" (lambda_of base) (Api.session_lambda s);
  List.iter
    (fun op ->
      match Api.apply_delta s op with
      | Error e -> Alcotest.fail (Delta.to_line op ^ ": " ^ e)
      | Ok (_, a) ->
          let live = Api.session_graph s in
          check_int (Delta.to_line op ^ ": λ exact") (lambda_of live) a.Api.lambda;
          check_int
            (Delta.to_line op ^ ": side achieves λ")
            a.Api.lambda
            (Graph.cut_of_bitset live (Api.session_side s)))
    ops;
  let st = Api.session_stats s in
  check_int "every delta answered" (List.length ops)
    (st.Incremental.reused + st.Incremental.cert_solves
    + st.Incremental.full_resolves);
  check_bool "some answers were incremental" true (st.Incremental.reused > 0)

let test_cert_graph_equivalence () =
  List.iter
    (fun (name, g) ->
      let inc = Incremental.create g in
      let cert = Incremental.cert_graph inc in
      check_int (name ^ ": λ(cert) = λ(G)") (lambda_of g) (lambda_of cert);
      check_bool (name ^ ": cert is sparse") true
        (Graph.m cert <= Incremental.cert_k inc * (Graph.n g - 1)))
    (small_connected_graphs ())

(* ---- Api sessions ------------------------------------------------------ *)

let summaries_identical (a : Api.summary) (b : Api.summary) =
  a.Api.value = b.Api.value && a.Api.rounds = b.Api.rounds
  && Bitset.equal a.Api.side b.Api.side
  && a.Api.breakdown = b.Api.breakdown
  && Mincut_congest.Cost.equal a.Api.cost b.Api.cost

let test_session_anchor_reuse () =
  let g = Generators.grid 4 4 in
  let s = Api.open_session ~params:Params.fast g in
  let s0, hit0 = Api.min_cut_session s in
  check_bool "first solve is fresh" false hit0;
  check_int "solve agrees with certificate" (Api.session_lambda s) s0.Api.value;
  (* a weight increase that does not cross the anchored side keeps the
     proof alive: the summary is re-served without solving *)
  let side = Api.session_side s in
  let e =
    match
      List.find_opt
        (fun e -> Bitset.mem side e.Graph.u = Bitset.mem side e.Graph.v)
        (Array.to_list (Graph.edges (Api.session_graph s)))
    with
    | Some e -> e
    | None -> Alcotest.fail "no intra-side edge in a 4x4 grid?"
  in
  (match Api.apply_delta s (Delta.Add_edge { u = e.Graph.u; v = e.Graph.v; w = 1 }) with
  | Ok (_, a) -> check_bool "tier-1 reuse" true (a.Api.mode = Incremental.Reused)
  | Error err -> Alcotest.fail err);
  let s1, hit1 = Api.min_cut_session s in
  check_bool "anchored summary re-served" true hit1;
  check_bool "bit-identical to the anchor" true (summaries_identical s0 s1);
  (* a removal breaks the generation: the next solve is fresh and its
     value matches a from-scratch solve of the live graph *)
  (match Api.apply_delta s (Delta.Remove_edge { u = e.Graph.u; v = e.Graph.v }) with
  | Ok _ -> ()
  | Error err -> Alcotest.fail err);
  let s2, hit2 = Api.min_cut_session s in
  check_bool "generation break forces a solve" false hit2;
  check_int "fresh solve exact" (lambda_of (Api.session_graph s)) s2.Api.value

(* ---- qcheck properties ------------------------------------------------- *)

(* a random evolution: seeded base graph + seeded delta stream *)
let arbitrary_evolution =
  QCheck2.Gen.(
    let* gseed = int_range 0 100_000 in
    let* oseed = int_range 0 100_000 in
    let* n = int_range 4 10 in
    let* k = int_range 1 25 in
    return (gseed, oseed, n, k))

let base_of gseed n = Generators.gnp_connected ~rng:(Rng.create gseed) n 0.6

let ops_of oseed base k =
  Generators.delta_stream ~rng:(Rng.create oseed) ~wmax:3 ~base k

let qcheck_tests =
  [
    qtest ~count:60 "rolling digest = from-scratch hash of compacted graph"
      arbitrary_evolution
      (fun (gseed, oseed, n, k) ->
        let base = base_of gseed n in
        let h = Handle.of_graph base in
        List.iter (fun op -> ignore (Handle.apply h op)) (ops_of oseed base k);
        let rolled = Handle.digest h in
        let compacted = Handle.compact h in
        Int64.equal rolled (Handle.multiset_hash compacted)
        && Int64.equal rolled (Handle.digest h));
    qtest ~count:40 "incremental λ = stoer-wagner from scratch, every version"
      arbitrary_evolution
      (fun (gseed, oseed, n, k) ->
        let base = base_of gseed n in
        let s = Api.open_session ~params:Params.fast base in
        List.for_all
          (fun op ->
            match Api.apply_delta s op with
            | Error _ -> false
            | Ok (_, a) ->
                let live = Api.session_graph s in
                a.Api.lambda = lambda_of live
                && Graph.cut_of_bitset live (Api.session_side s) = a.Api.lambda)
          (ops_of oseed base k));
    qtest ~count:30
      "session solve after deltas = solve of compacted graph (bit-identical)"
      arbitrary_evolution
      (fun (gseed, oseed, n, k) ->
        let base = base_of gseed n in
        (* same evolution twice: delta-only vs compact-every-5; the
           final full summaries must agree bit for bit *)
        let replay compact_every =
          let s = Api.open_session ~params:Params.fast base in
          List.iteri
            (fun i op ->
              ignore (Api.apply_delta s op);
              if compact_every > 0 && i mod compact_every = 4 then
                Api.compact_session s)
            (ops_of oseed base k);
          fst (Api.min_cut_session s)
        in
        summaries_identical (replay 0) (replay 5));
  ]

let suite =
  [
    tc "delta: parse/print roundtrip" test_delta_parse_roundtrip;
    tc "handle: apply semantics" test_handle_apply_semantics;
    tc "handle: merge and split renumbering" test_handle_merge_split;
    tc "handle: compaction is invisible" test_handle_compact_invisible;
    tc "generators: delta stream seeded and valid" test_generator_reproducible_and_valid;
    tc "incremental: λ exact along a 120-op stream" test_incremental_lambda_stream;
    tc "incremental: NI certificate is λ-equivalent" test_cert_graph_equivalence;
    tc "session: anchored summary reuse and generation breaks" test_session_anchor_reuse;
  ]
  @ qcheck_tests
