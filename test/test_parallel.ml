(* The determinism contract of the shared pool: fanning work over
   domains changes throughput, never answers.  Every pipeline that takes
   a pool is checked bit-for-bit against its sequential run. *)

open Test_helpers
module Pool = Mincut_parallel.Pool
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost
module Exact = Mincut_core.Exact
module Approx = Mincut_core.Approx
module Two_respect = Mincut_core.Two_respect
module Api = Mincut_core.Api
module Params = Mincut_core.Params

let pool4 = Pool.create ~workers:4 ()

let equal_cost (a : Cost.t) (b : Cost.t) =
  (* full span-tree equality: labels, rounds, provenance, audits *)
  Cost.equal a b
  && List.equal
       (fun (la, ra) (lb, rb) -> String.equal la lb && ra = rb)
       (Cost.breakdown a) (Cost.breakdown b)

let test_pool_map_order () =
  let jobs = Array.init 100 (fun i -> i) in
  let seq = Pool.map Pool.sequential (fun i -> i * i) jobs in
  let par = Pool.map pool4 (fun i -> i * i) jobs in
  check_bool "results in input order" true (seq = par)

let test_pool_map_reduce_order () =
  let jobs = Array.init 50 (fun i -> i) in
  let r =
    Pool.map_reduce pool4 ~f:(fun i -> i) ~init:[] ~merge:(fun acc x -> x :: acc) jobs
  in
  check_bool "merged in index order" true (List.rev r = List.init 50 Fun.id)

let test_pool_first_exception () =
  let jobs = Array.init 20 (fun i -> i) in
  match Pool.map pool4 (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i) jobs with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> check_bool "lowest-index exception wins" true (msg = "3")

let test_api_rejects_bad_workers () =
  let g = Generators.path 3 in
  check_bool "workers 0 rejected" true
    (try
       ignore (Api.min_cut ~workers:0 g);
       false
     with Invalid_argument _ -> true)

let test_approx_rejects_bad_trials () =
  let g = Generators.path 3 in
  check_bool "trials 0 rejected" true
    (try
       ignore (Approx.run ~trials:0 ~rng:(Rng.create 0) ~epsilon:0.5 g);
       false
     with Invalid_argument _ -> true)

let equal_exact (a : Exact.result) (b : Exact.result) =
  a.Exact.value = b.Exact.value
  && Bitset.equal a.Exact.side b.Exact.side
  && a.Exact.best_tree = b.Exact.best_tree
  && a.Exact.trees_used = b.Exact.trees_used
  && equal_cost a.Exact.cost b.Exact.cost
  && a.Exact.stats = b.Exact.stats

let prop_exact_parallel =
  qtest ~count:25 "exact: workers=4 bit-identical to sequential"
    (arbitrary_connected ~max_n:12 ())
    (fun g ->
      equal_exact
        (Exact.run ~params:Params.fast g)
        (Exact.run ~params:Params.fast ~pool:pool4 g))

let equal_approx (a : Approx.result) (b : Approx.result) =
  a.Approx.value = b.Approx.value
  && Bitset.equal a.Approx.side b.Approx.side
  && a.Approx.p = b.Approx.p
  && a.Approx.skeleton_value = b.Approx.skeleton_value
  && a.Approx.guesses = b.Approx.guesses
  && equal_cost a.Approx.cost b.Approx.cost

let prop_approx_parallel =
  qtest ~count:15 "approx: workers=4 bit-identical (trials 1 and 3)"
    QCheck2.Gen.(pair (arbitrary_connected ~max_n:10 ()) (int_range 0 1_000_000))
    (fun (g, seed) ->
      let run ~pool ~trials =
        Approx.run ~params:Params.fast ~trees:8 ~pool ~trials
          ~rng:(Rng.create seed) ~epsilon:0.8 g
      in
      equal_approx (run ~pool:Pool.sequential ~trials:1) (run ~pool:pool4 ~trials:1)
      && equal_approx (run ~pool:Pool.sequential ~trials:3) (run ~pool:pool4 ~trials:3))

let equal_two_respect (a : Two_respect.result) (b : Two_respect.result) =
  a.Two_respect.value = b.Two_respect.value
  && Bitset.equal a.Two_respect.side b.Two_respect.side
  && a.Two_respect.kind = b.Two_respect.kind
  && equal_cost a.Two_respect.cost b.Two_respect.cost

let prop_two_respect_parallel =
  qtest ~count:20 "two-respect: workers=4 bit-identical to sequential"
    (arbitrary_connected ~max_n:12 ())
    (fun g ->
      equal_two_respect
        (Two_respect.min_cut ~params:Params.fast g)
        (Two_respect.min_cut ~params:Params.fast ~pool:pool4 g))

let prop_api_workers =
  qtest ~count:15 "api: min_cut summaries identical for any worker count"
    QCheck2.Gen.(pair (arbitrary_connected ~max_n:10 ()) (int_range 0 2))
    (fun (g, pick) ->
      let algorithm =
        match pick with
        | 0 -> Api.Exact_small_lambda
        | 1 -> Api.Exact_two_respect
        | _ -> Api.Approx 0.8
      in
      let s = Api.min_cut ~params:Params.fast ~algorithm ~seed:7 g in
      let p = Api.min_cut ~params:Params.fast ~algorithm ~seed:7 ~workers:4 g in
      s.Api.value = p.Api.value
      && Bitset.equal s.Api.side p.Api.side
      && s.Api.rounds = p.Api.rounds
      && s.Api.breakdown = p.Api.breakdown)

let suite =
  [
    tc "pool: map preserves input order" test_pool_map_order;
    tc "pool: map_reduce folds in index order" test_pool_map_reduce_order;
    tc "pool: first exception is re-raised" test_pool_first_exception;
    tc "api: rejects workers < 1" test_api_rejects_bad_workers;
    tc "approx: rejects trials < 1" test_approx_rejects_bad_trials;
    prop_exact_parallel;
    prop_approx_parallel;
    prop_two_respect_parallel;
    prop_api_workers;
  ]
