(* The determinism contract of the shared pool: fanning work over
   domains changes throughput, never answers.  Every pipeline that takes
   a pool is checked bit-for-bit against its sequential run. *)

open Test_helpers
module Pool = Mincut_parallel.Pool
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost
module Exact = Mincut_core.Exact
module Approx = Mincut_core.Approx
module Two_respect = Mincut_core.Two_respect
module Api = Mincut_core.Api
module Params = Mincut_core.Params

let pool2 = Pool.create ~workers:2 ()
let pool4 = Pool.create ~workers:4 ()

let equal_cost (a : Cost.t) (b : Cost.t) =
  (* full span-tree equality: labels, rounds, provenance, audits *)
  Cost.equal a b
  && List.equal
       (fun (la, ra) (lb, rb) -> String.equal la lb && ra = rb)
       (Cost.breakdown a) (Cost.breakdown b)

let test_pool_map_order () =
  let jobs = Array.init 100 (fun i -> i) in
  let seq = Pool.map Pool.sequential (fun i -> i * i) jobs in
  let par = Pool.map pool4 (fun i -> i * i) jobs in
  check_bool "results in input order" true (seq = par)

let test_pool_map_reduce_order () =
  let jobs = Array.init 50 (fun i -> i) in
  let r =
    Pool.map_reduce pool4 ~f:(fun i -> i) ~init:[] ~merge:(fun acc x -> x :: acc) jobs
  in
  check_bool "merged in index order" true (List.rev r = List.init 50 Fun.id)

let test_pool_first_exception () =
  let jobs = Array.init 20 (fun i -> i) in
  match Pool.map pool4 (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i) jobs with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> check_bool "lowest-index exception wins" true (msg = "3")

let test_pool_sizing () =
  (* pure sizing policy: never oversubscribe a 1-core host, cap wide ones *)
  check_int "recommended 0 is sequential" 1 (Pool.sizing ~recommended:0);
  check_int "recommended 1 is sequential" 1 (Pool.sizing ~recommended:1);
  check_int "recommended 2" 2 (Pool.sizing ~recommended:2);
  check_int "recommended 4" 4 (Pool.sizing ~recommended:4);
  check_int "recommended 64 capped at 8" 8 (Pool.sizing ~recommended:64);
  check_int "default pool width follows sizing"
    (Pool.recommended_workers ())
    (Pool.workers (Pool.create ()))

let test_pool_task_accounting () =
  (* every job runs exactly once through the counted entry point,
     parallel or not *)
  let jobs = Array.init 123 Fun.id in
  let t0 = (Pool.stats ()).Pool.tasks in
  ignore (Pool.map pool4 (fun i -> i) jobs);
  let t1 = (Pool.stats ()).Pool.tasks in
  check_int "parallel map counts each job once" 123 (t1 - t0);
  ignore (Pool.map Pool.sequential (fun i -> i) jobs);
  let t2 = (Pool.stats ()).Pool.tasks in
  check_int "sequential map counts each job once" 123 (t2 - t1)

let test_pool_reuse_across_solves () =
  (* the persistent pool spawns its helper domains once; later solves
     push work through the same domains instead of spawning fresh ones *)
  let g = Generators.torus 4 4 in
  ignore (Exact.run ~params:Params.fast ~pool:pool4 g);
  let s1 = Pool.stats () in
  ignore (Exact.run ~params:Params.fast ~pool:pool4 g);
  ignore (Two_respect.min_cut ~params:Params.fast ~pool:pool4 g);
  let s2 = Pool.stats () in
  check_int "no new domains after warmup" 0 (s2.Pool.spawns - s1.Pool.spawns);
  check_bool "task counter advances across solves" true
    (s2.Pool.tasks > s1.Pool.tasks);
  check_bool "batch counter advances across solves" true
    (s2.Pool.batches > s1.Pool.batches)

let prop_skewed_bit_identity =
  (* adversarial task-size skew: a few heavy jobs among many light ones
     exercises chunk splitting and stealing; results must still come
     back in input order at every width *)
  qtest ~count:30 "pool: skewed task sizes identical at workers 1/2/4"
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 200))
    (fun sizes ->
      let jobs = Array.of_list sizes in
      let work n =
        let acc = ref 0 in
        for i = 1 to n * 50 do
          acc := !acc + (i * i mod 97)
        done;
        (n, !acc)
      in
      let seq = Pool.map Pool.sequential work jobs in
      seq = Pool.map pool2 work jobs && seq = Pool.map pool4 work jobs)

let test_api_rejects_bad_workers () =
  let g = Generators.path 3 in
  check_bool "workers 0 rejected" true
    (try
       ignore (Api.min_cut ~workers:0 g);
       false
     with Invalid_argument _ -> true)

let test_approx_rejects_bad_trials () =
  let g = Generators.path 3 in
  check_bool "trials 0 rejected" true
    (try
       ignore (Approx.run ~trials:0 ~rng:(Rng.create 0) ~epsilon:0.5 g);
       false
     with Invalid_argument _ -> true)

let equal_exact (a : Exact.result) (b : Exact.result) =
  a.Exact.value = b.Exact.value
  && Bitset.equal a.Exact.side b.Exact.side
  && a.Exact.best_tree = b.Exact.best_tree
  && a.Exact.trees_used = b.Exact.trees_used
  && equal_cost a.Exact.cost b.Exact.cost
  && a.Exact.stats = b.Exact.stats

let prop_exact_parallel =
  qtest ~count:25 "exact: workers 2 and 4 bit-identical to sequential"
    (arbitrary_connected ~max_n:12 ())
    (fun g ->
      let seq = Exact.run ~params:Params.fast g in
      equal_exact seq (Exact.run ~params:Params.fast ~pool:pool2 g)
      && equal_exact seq (Exact.run ~params:Params.fast ~pool:pool4 g))

let equal_approx (a : Approx.result) (b : Approx.result) =
  a.Approx.value = b.Approx.value
  && Bitset.equal a.Approx.side b.Approx.side
  && a.Approx.p = b.Approx.p
  && a.Approx.skeleton_value = b.Approx.skeleton_value
  && a.Approx.guesses = b.Approx.guesses
  && equal_cost a.Approx.cost b.Approx.cost

let prop_approx_parallel =
  qtest ~count:15 "approx: workers=4 bit-identical (trials 1 and 3)"
    QCheck2.Gen.(pair (arbitrary_connected ~max_n:10 ()) (int_range 0 1_000_000))
    (fun (g, seed) ->
      let run ~pool ~trials =
        Approx.run ~params:Params.fast ~trees:8 ~pool ~trials
          ~rng:(Rng.create seed) ~epsilon:0.8 g
      in
      equal_approx (run ~pool:Pool.sequential ~trials:1) (run ~pool:pool4 ~trials:1)
      && equal_approx (run ~pool:Pool.sequential ~trials:3) (run ~pool:pool4 ~trials:3))

let equal_two_respect (a : Two_respect.result) (b : Two_respect.result) =
  a.Two_respect.value = b.Two_respect.value
  && Bitset.equal a.Two_respect.side b.Two_respect.side
  && a.Two_respect.kind = b.Two_respect.kind
  && equal_cost a.Two_respect.cost b.Two_respect.cost

let prop_two_respect_parallel =
  qtest ~count:20 "two-respect: workers=4 bit-identical to sequential"
    (arbitrary_connected ~max_n:12 ())
    (fun g ->
      equal_two_respect
        (Two_respect.min_cut ~params:Params.fast g)
        (Two_respect.min_cut ~params:Params.fast ~pool:pool4 g))

let prop_api_workers =
  qtest ~count:15 "api: min_cut summaries identical for any worker count"
    QCheck2.Gen.(pair (arbitrary_connected ~max_n:10 ()) (int_range 0 2))
    (fun (g, pick) ->
      let algorithm =
        match pick with
        | 0 -> Api.Exact_small_lambda
        | 1 -> Api.Exact_two_respect
        | _ -> Api.Approx 0.8
      in
      let s = Api.min_cut ~params:Params.fast ~algorithm ~seed:7 g in
      let p = Api.min_cut ~params:Params.fast ~algorithm ~seed:7 ~workers:4 g in
      s.Api.value = p.Api.value
      && Bitset.equal s.Api.side p.Api.side
      && s.Api.rounds = p.Api.rounds
      && s.Api.breakdown = p.Api.breakdown)

let suite =
  [
    tc "pool: map preserves input order" test_pool_map_order;
    tc "pool: map_reduce folds in index order" test_pool_map_reduce_order;
    tc "pool: first exception is re-raised" test_pool_first_exception;
    tc "pool: sizing policy" test_pool_sizing;
    tc "pool: task accounting" test_pool_task_accounting;
    tc "pool: domains reused across solves" test_pool_reuse_across_solves;
    tc "api: rejects workers < 1" test_api_rejects_bad_workers;
    tc "approx: rejects trials < 1" test_approx_rejects_bad_trials;
    prop_skewed_bit_identity;
    prop_exact_parallel;
    prop_approx_parallel;
    prop_two_respect_parallel;
    prop_api_workers;
  ]
