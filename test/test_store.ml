(* Tests for the chunked on-disk graph store: packed addressing, the
   versioned chunk format (CRC / magic / version / truncation), LRU
   residency under a byte budget, bulk-load round-trips with
   Graph_key-compatible structural hashes, and the chunk-at-a-time
   traversals pinned against the real CONGEST engine. *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Edge_stream = Mincut_graph.Edge_stream
module Tree = Mincut_graph.Tree
module Bfs = Mincut_graph.Bfs
module Primitives = Mincut_congest.Primitives
module Network = Mincut_congest.Network
module Rng = Mincut_util.Rng
module Chunk = Mincut_store.Chunk
module Chunk_io = Mincut_store.Chunk_io
module Residency = Mincut_store.Residency
module Bulk_loader = Mincut_store.Bulk_loader
module Chunked_graph = Mincut_store.Chunked_graph
module Traverse = Mincut_store.Traverse
module Graph_key = Mincut_serve.Graph_key
module Metrics = Mincut_serve.Metrics
module Store_metrics = Mincut_serve.Store_metrics
open Test_helpers

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Printf.sprintf "_store_test/d%03d" !dir_counter

let ok_or_fail = function Ok x -> x | Error e -> Alcotest.fail e

(* Bulk-load an in-memory graph into a fresh store directory. *)
let load_graph ?chunk_bits g =
  let dir = fresh_dir () in
  let bl = ok_or_fail (Bulk_loader.create ~dir ~n:(Graph.n g) ?chunk_bits ()) in
  Graph.iter_edges
    (fun e -> Bulk_loader.add_edge bl ~u:e.Graph.u ~v:e.Graph.v ~w:e.Graph.w)
    g;
  let manifest = ok_or_fail (Bulk_loader.finalize bl) in
  (dir, manifest)

let open_unbounded dir =
  ok_or_fail (Chunked_graph.open_store ~dir ~budget:max_int ())

(* ---- addressing ------------------------------------------------------ *)

let test_addressing () =
  List.iter
    (fun bits ->
      List.iter
        (fun v ->
          let cid = Chunk.chunk_of ~bits v in
          let local = Chunk.local_of ~bits v in
          check_int "repack" v (Chunk.node_of ~bits ~cid ~local);
          check_bool "local within chunk" true (local >= 0 && local < 1 lsl bits))
        [ 0; 1; 5; (1 lsl bits) - 1; 1 lsl bits; (3 lsl bits) + 7 ])
    [ Chunk.min_bits; 7; 13; Chunk.max_bits ];
  (* chunk count covers the node range exactly *)
  check_int "num_chunks" 3 (Chunk.num_chunks ~bits:4 ~n:33);
  check_int "last chunk short" 1 (Chunk.count_of ~bits:4 ~n:33 ~cid:2);
  check_int "full chunk" 16 (Chunk.count_of ~bits:4 ~n:33 ~cid:0);
  (* default_bits stays in the legal band and reaches its floor *)
  List.iter
    (fun n ->
      let b = Chunk.default_bits ~n in
      check_bool "bits in band" true (b >= Chunk.min_bits && b <= Chunk.max_bits))
    [ 1; 10; 1000; 131072; 10_000_000 ]

(* ---- bulk load round-trip (qcheck) ----------------------------------- *)

let prop_roundtrip g =
  let dir, manifest = load_graph ~chunk_bits:4 g in
  let cg = open_unbounded dir in
  let g' = Chunked_graph.to_graph cg in
  Graph.equal_structure g g'
  && Chunked_graph.structural_hash cg = Graph_key.structural_hash g
  && Chunked_graph.compute_structural_hash cg = manifest.Chunk_io.hash
  && Chunked_graph.m cg = Graph.m g
  && Array.for_all
       (fun v -> Chunked_graph.weighted_degree cg v = Graph.weighted_degree g v)
       (Array.init (Graph.n g) (fun v -> v))

let test_roundtrip_small_bag () =
  List.iter
    (fun (name, g) -> check_bool name true (prop_roundtrip g))
    (small_connected_graphs ())

(* ---- corruption surfaces as typed errors ----------------------------- *)

let flip_byte path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = Bytes.create len in
  really_input ic buf 0 len;
  close_in ic;
  Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc buf;
  close_out oc

let corrupt_store () =
  let g = Generators.grid 5 5 in
  let dir, _ = load_graph ~chunk_bits:4 g in
  (dir, Filename.concat dir (Chunk_io.chunk_filename ~cid:0))

let test_crc_corruption () =
  let dir, path = corrupt_store () in
  (* a payload byte flip must surface as a CRC mismatch, not bad data *)
  flip_byte path 30;
  (match Chunk_io.read ~dir ~bits:4 ~cid:0 with
  | Error (Chunk_io.Crc_mismatch _) -> ()
  | Error e -> Alcotest.failf "expected Crc_mismatch, got: %s" (Chunk_io.error_message e)
  | Ok _ -> Alcotest.fail "corrupted chunk read back cleanly");
  (* and the lazy-faulting surface turns it into Store_error *)
  let cg = open_unbounded dir in
  match Chunked_graph.degree cg 0 with
  | _ -> Alcotest.fail "Store_error expected"
  | exception Chunked_graph.Store_error msg ->
      check_bool "error message is non-empty" true (String.length msg > 0)

let test_bad_magic_and_version () =
  let dir, path = corrupt_store () in
  flip_byte path 0;
  (match Chunk_io.read ~dir ~bits:4 ~cid:0 with
  | Error (Chunk_io.Bad_magic _) -> ()
  | Error e -> Alcotest.failf "expected Bad_magic, got: %s" (Chunk_io.error_message e)
  | Ok _ -> Alcotest.fail "bad magic read back cleanly");
  let dir2, path2 = corrupt_store () in
  ignore dir2;
  flip_byte path2 4;
  match Chunk_io.read ~dir:dir2 ~bits:4 ~cid:0 with
  | Error (Chunk_io.Bad_version _) -> ()
  | Error e -> Alcotest.failf "expected Bad_version, got: %s" (Chunk_io.error_message e)
  | Ok _ -> Alcotest.fail "bad version read back cleanly"

let test_truncation () =
  let dir, path = corrupt_store () in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = len - 5 in
  let buf = Bytes.create keep in
  really_input ic buf 0 keep;
  close_in ic;
  let oc = open_out_bin path in
  output_bytes oc buf;
  close_out oc;
  match Chunk_io.read ~dir ~bits:4 ~cid:0 with
  | Error (Chunk_io.Truncated _) -> ()
  | Error e -> Alcotest.failf "expected Truncated, got: %s" (Chunk_io.error_message e)
  | Ok _ -> Alcotest.fail "truncated chunk read back cleanly"

let test_open_requires_manifest () =
  (match Chunked_graph.open_store ~dir:"_store_test/never_created" ~budget:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opened a store with no manifest");
  (* an aborted load (no finalize) must refuse to open: the manifest is
     the commit point *)
  let dir = fresh_dir () in
  let bl = ok_or_fail (Bulk_loader.create ~dir ~n:8 ()) in
  Bulk_loader.add_edge bl ~u:0 ~v:1 ~w:1;
  match Chunked_graph.open_store ~dir ~budget:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opened an unfinalized store"

(* ---- residency ------------------------------------------------------- *)

(* Synthetic single-node chunks of a fixed 80-byte footprint make the
   LRU arithmetic exact. *)
let synthetic_chunk cid =
  { Chunk.cid; base = cid; count = 1; off = [| 0; 0 |]; nbr = [||]; wgt = [||] }

let test_lru_eviction_order () =
  let loads = ref [] in
  let r =
    Residency.create ~budget:160
      ~load:(fun cid ->
        loads := cid :: !loads;
        synthetic_chunk cid)
      ()
  in
  let touch cid = ignore (Residency.get r cid) in
  touch 0;
  touch 1;
  touch 0;
  (* 0 is now the most recent of the two residents *)
  touch 2;
  (* over budget: the least recently used (1) must go, not 0 *)
  touch 0;
  let st = Residency.stats r in
  check_int "hits" 2 st.Residency.hits;
  check_int "misses" 3 st.Residency.misses;
  check_int "evictions" 1 st.Residency.evictions;
  check_int "resident" 2 st.Residency.resident;
  touch 1;
  (* 1 was evicted, so this is a reload *)
  check_int "reload of evicted chunk" 4 (Residency.stats r).Residency.misses;
  check_bool "load log" true (!loads = [ 1; 2; 1; 0 ])

let test_single_oversized_chunk_stays () =
  (* a chunk larger than the whole budget must still be returned (and
     counted), never evicted mid-handout *)
  let r = Residency.create ~budget:10 ~load:synthetic_chunk () in
  ignore (Residency.get r 0);
  let st = Residency.stats r in
  check_int "resident" 1 st.Residency.resident;
  check_bool "bytes over budget tolerated for a single chunk" true
    (st.Residency.bytes_resident > st.Residency.budget);
  ignore (Residency.get r 1);
  let st = Residency.stats r in
  check_int "previous evicted" 1 st.Residency.evictions;
  check_int "only the newcomer stays" 1 st.Residency.resident

let prop_eviction_under_budget accesses =
  let g = Generators.grid 12 12 in
  let dir, _ = load_graph ~chunk_bits:4 g in
  let cg = ok_or_fail (Chunked_graph.open_store ~dir ~budget:2048 ()) in
  let chunks = Chunked_graph.num_chunks cg in
  List.for_all
    (fun a ->
      ignore (Chunked_graph.chunk cg (a mod chunks));
      let st = Chunked_graph.stats cg in
      st.Residency.bytes_resident <= st.Residency.budget)
    accesses

let test_drop_resident () =
  let g = Generators.grid 5 5 in
  let dir, _ = load_graph ~chunk_bits:4 g in
  let cg = open_unbounded dir in
  Chunked_graph.iter_chunks cg ~f:(fun _ -> ());
  check_bool "resident after sweep" true
    ((Chunked_graph.stats cg).Residency.resident > 0);
  Chunked_graph.drop_resident cg;
  let st = Chunked_graph.stats cg in
  check_int "cold" 0 st.Residency.resident;
  check_int "no bytes" 0 st.Residency.bytes_resident;
  (* counters survive the drop *)
  check_bool "misses kept" true (st.Residency.misses > 0)

let test_sweep_locality () =
  let g = Generators.grid 6 6 in
  let dir, _ = load_graph ~chunk_bits:4 g in
  let cg = open_unbounded dir in
  let chunks = Chunked_graph.num_chunks cg in
  Chunked_graph.iter_chunks cg ~f:(fun _ -> ());
  let st = Chunked_graph.stats cg in
  check_int "one miss per chunk" chunks st.Residency.misses;
  check_int "no evictions under an unbounded budget" 0 st.Residency.evictions;
  Chunked_graph.iter_chunks cg ~f:(fun _ -> ());
  check_int "second sweep all hits" chunks (Chunked_graph.stats cg).Residency.hits

(* ---- metrics adapter ------------------------------------------------- *)

let test_store_metrics_adapter () =
  let registry = Metrics.create () in
  let instruments = Store_metrics.instruments registry in
  let g = Generators.grid 12 12 in
  let dir, _ = load_graph ~chunk_bits:4 g in
  let cg =
    ok_or_fail (Chunked_graph.open_store ~instruments ~dir ~budget:2048 ())
  in
  Chunked_graph.iter_chunks cg ~f:(fun _ -> ());
  Chunked_graph.iter_chunks cg ~f:(fun _ -> ());
  let st = Chunked_graph.stats cg in
  check_bool "budget forced evictions" true (st.Residency.evictions > 0);
  let snap = Metrics.snapshot registry in
  let counter name = List.assoc name snap.Metrics.counters in
  check_int "hits exported" st.Residency.hits (counter "store.chunk_hits");
  check_int "misses exported" st.Residency.misses (counter "store.chunk_misses");
  check_int "evictions exported" st.Residency.evictions
    (counter "store.chunk_evictions");
  check_bool "residency gauge tracks bytes" true
    (List.assoc "store.bytes_resident" snap.Metrics.gauges
    = float_of_int st.Residency.bytes_resident)

(* ---- streaming generators -------------------------------------------- *)

let test_torus_stream_matches_generator () =
  let acc = ref [] in
  Edge_stream.torus ~rows:4 ~cols:5 ~weight:(fun () -> 1)
    ~emit:(fun u v w -> acc := (u, v, w) :: !acc);
  let g = Graph.create ~n:20 !acc in
  check_bool "torus stream = Generators.torus" true
    (Graph.equal_structure g (Generators.torus 4 5))

let test_gnp_stream_matches_generator () =
  (* same seed, same draws: the materialized generator delegates to the
     stream, so edge id order must match exactly, not just the multiset *)
  let stream_edges =
    let rng = Rng.create 4242 in
    let acc = ref [] in
    Edge_stream.gnp ~rng ~n:30 ~p:0.2
      ~weight:(fun () -> 1)
      ~emit:(fun u v w -> acc := (u, v, w) :: !acc);
    !acc
  in
  let g = Graph.create ~n:30 stream_edges in
  let g' = Generators.gnp ~rng:(Rng.create 4242) 30 0.2 in
  check_bool "same structure" true (Graph.equal_structure g g');
  check_bool "same edge id order" true
    (Array.for_all2
       (fun (a : Graph.edge) (b : Graph.edge) ->
         a.Graph.u = b.Graph.u && a.Graph.v = b.Graph.v && a.Graph.w = b.Graph.w)
       (Graph.edges g) (Graph.edges g'))

(* ---- traversals vs the engine ---------------------------------------- *)

let test_bfs_matches_engine () =
  List.iter
    (fun (name, g) ->
      let dir, _ = load_graph ~chunk_bits:4 g in
      let cg = open_unbounded dir in
      let b = Traverse.bfs cg ~root:0 in
      let tree, _cost, audit = Primitives.bfs_tree_audited g ~root:0 in
      let reference = Bfs.run g ~source:0 in
      check_int (name ^ ": rounds = engine rounds") audit.Network.rounds
        b.Traverse.rounds;
      check_bool (name ^ ": distances") true (b.Traverse.dist = reference.Bfs.dist);
      check_bool (name ^ ": parents = engine min-id adoption") true
        (b.Traverse.parent = tree.Tree.parent);
      check_int (name ^ ": reached") (Graph.n g) b.Traverse.reached)
    (small_connected_graphs ())

let test_upcast_matches_engine () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let tree = Tree.bfs_tree g ~root:0 in
      (* one item everywhere: for n >= 2 some non-root node always
         sends, so the engine's last-traffic round is well-defined *)
      let sources = List.init n (fun v -> v) in
      let initial = Array.make n [] in
      List.iter (fun v -> initial.(v) <- [ v ]) sources;
      let _items, _cost, audit = Primitives.upcast_distinct_audited g ~tree ~initial in
      check_int
        (name ^ ": simulated upcast rounds = engine rounds")
        audit.Network.rounds
        (Traverse.upcast_rounds ~parent:tree.Tree.parent ~root:0 ~sources))
    (small_connected_graphs ())

let test_upcast_edge_cases () =
  check_int "no sources" 0 (Traverse.upcast_rounds ~parent:[| -1 |] ~root:0 ~sources:[]);
  (* items already at the root never travel *)
  check_int "all at root" 0
    (Traverse.upcast_rounds ~parent:[| -1; 0 |] ~root:0 ~sources:[ 0; 0 ])

(* ---- manifest totals ------------------------------------------------- *)

let test_manifest_totals () =
  let g = Generators.gnp_connected ~rng:(Rng.create 5) 40 0.2 in
  let dir, manifest = load_graph g in
  let cg = open_unbounded dir in
  check_int "n" (Graph.n g) (Chunked_graph.n cg);
  check_int "m" (Graph.m g) (Chunked_graph.m cg);
  check_int "total weight" (Graph.total_weight g) (Chunked_graph.total_weight cg);
  check_int "num_chunks recorded" manifest.Chunk_io.num_chunks
    (Chunked_graph.num_chunks cg);
  check_bool "total_bytes from manifest" true
    (Chunked_graph.total_bytes cg = Chunked_graph.manifest_bytes manifest)

let suite =
  [
    tc "store: packed addressing round-trips" test_addressing;
    tc "store: bulk-load round-trip over the small-graph bag"
      test_roundtrip_small_bag;
    qtest ~count:60 "store: qcheck bulk-load round-trip + structural hash"
      (arbitrary_connected ()) prop_roundtrip;
    tc "store: payload byte flip -> Crc_mismatch / Store_error"
      test_crc_corruption;
    tc "store: bad magic and bad version are typed errors"
      test_bad_magic_and_version;
    tc "store: truncated chunk file -> Truncated" test_truncation;
    tc "store: manifest is the commit point" test_open_requires_manifest;
    tc "store: LRU evicts last-used first" test_lru_eviction_order;
    tc "store: oversized single chunk survives its own handout"
      test_single_oversized_chunk_stays;
    qtest ~count:40 "store: resident bytes never exceed the budget"
      QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 1000))
      prop_eviction_under_budget;
    tc "store: drop_resident cold-starts, counters survive" test_drop_resident;
    tc "store: chunk-major sweeps touch each chunk once" test_sweep_locality;
    tc "store: residency counters export through Metrics"
      test_store_metrics_adapter;
    tc "store: torus stream matches the materialized generator"
      test_torus_stream_matches_generator;
    tc "store: gnp stream is bit-identical to Generators.gnp"
      test_gnp_stream_matches_generator;
    tc "store: chunked BFS matches the engine's rounds and tree"
      test_bfs_matches_engine;
    tc "store: pipelined upcast simulation matches the engine"
      test_upcast_matches_engine;
    tc "store: upcast edge cases" test_upcast_edge_cases;
    tc "store: manifest totals match the source graph" test_manifest_totals;
  ]
