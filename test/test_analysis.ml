open Test_helpers
module Lint = Mincut_analysis.Lint
module Replay = Mincut_analysis.Replay
module Lockcheck = Mincut_analysis.Lockcheck
module Json = Mincut_util.Json
module Network = Mincut_congest.Network
module Service = Mincut_serve.Service
module Request = Mincut_serve.Request

(* ---- lint ------------------------------------------------------------- *)

let findings_of src = Lint.scan_source ~file:"fixture.ml" src

let rules_of src = List.map (fun f -> f.Lint.rule) (findings_of src)

let test_lint_flags_hazards () =
  check_bool "hashtbl-hash" true
    (rules_of "let f x = Hashtbl.hash x" = [ "hashtbl-hash" ]);
  check_bool "poly-compare" true
    (rules_of "let c = compare a b" = [ "poly-compare" ]);
  check_bool "qualified poly-compare" true
    (rules_of "let c = Stdlib.compare a b" = [ "poly-compare" ]);
  check_bool "poly-equal section" true
    (rules_of "let mem = List.exists (( = ) x) xs" = [ "poly-equal" ]);
  check_bool "unseeded random" true
    (rules_of "let r = Random.int 5" = [ "unseeded-random" ]);
  check_bool "obj magic" true
    (rules_of "let x = Obj.magic 0" = [ "obj-magic" ]);
  check_bool "catch-all" true
    (rules_of "let x = try f () with _ -> 0" = [ "catchall-exn" ])

let test_lint_positions () =
  match findings_of "let a = 1\nlet f x = Hashtbl.hash x\n" with
  | [ f ] ->
      check_int "line is 1-based" 2 f.Lint.line;
      check_int "col is 0-based" 10 f.Lint.col;
      check_bool "file label" true (f.Lint.file = "fixture.ml")
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

let test_lint_no_false_positives () =
  check_bool "comments don't trip" true
    (findings_of "(* never call Hashtbl.hash or Random.int here *) let x = 1" = []);
  check_bool "strings don't trip" true
    (findings_of {|let s = "Obj.magic compare Random.bool"|} = []);
  check_bool "nested comments" true
    (findings_of "(* outer (* Random.int *) still comment *) let x = 1" = []);
  check_bool "defining compare is fine" true
    (findings_of "let compare a b = Int.compare a b" = []);
  check_bool "typed comparators are fine" true
    (findings_of "let xs = List.sort Int.compare xs" = []);
  check_bool "labelled ~compare is fine" true
    (findings_of "let m = sort ~compare:Int.compare xs" = []);
  check_bool "seeded rng is fine" true
    (findings_of "let r = Mincut_util.Rng.create 7" = []);
  check_bool "match _ is fine" true
    (findings_of "let f x = match x with _ -> 0" = []);
  check_bool "typed handler is fine" true
    (findings_of "let x = try f () with Not_found -> 0" = []);
  check_bool "match inside try keeps its wildcard" true
    (findings_of "let x = try (match g () with _ -> 1) with Not_found -> 0" = [])

let test_lint_json () =
  let findings = findings_of "let f x = Hashtbl.hash x" in
  let j = Lint.to_json findings in
  check_bool "count" true (Json.member "count" j = Some (Json.Int 1));
  match Option.bind (Json.member "findings" j) Json.to_list with
  | Some [ f ] ->
      check_bool "rule field" true
        (Json.member "rule" f = Some (Json.String "hashtbl-hash"));
      check_bool "line field" true (Json.member "line" f = Some (Json.Int 1))
  | _ -> Alcotest.fail "findings array malformed"

let test_lint_allowlist () =
  let findings = findings_of "let f x = Hashtbl.hash x\nlet c = compare a b\n" in
  check_int "two findings" 2 (List.length findings);
  match Lint.Allow.of_lines [ "# accepted"; "hashtbl-hash fixture.ml:1" ] with
  | Error e -> Alcotest.fail e
  | Ok allow ->
      let kept = Lint.Allow.filter allow findings in
      check_bool "hash suppressed, compare kept" true
        (List.map (fun f -> f.Lint.rule) kept = [ "poly-compare" ]);
      check_bool "nothing unused" true (Lint.Allow.unused allow findings = []);
      (match Lint.Allow.of_lines [ "obj-magic elsewhere.ml" ] with
      | Error e -> Alcotest.fail e
      | Ok stale ->
          check_int "stale entry reported" 1
            (List.length (Lint.Allow.unused stale findings)));
      check_bool "bad line rejected" true
        (Result.is_error (Lint.Allow.of_lines [ "only-a-rule" ]))

let test_lint_new_rules () =
  check_bool "bare mutex" true
    (rules_of "let m = Mutex.create ()" = [ "bare-mutex" ]);
  check_bool "list nth" true
    (rules_of "let x = List.nth xs 3" = [ "list-nth" ]);
  check_bool "float equal" true
    (rules_of "let b = x = 1.0" = [ "float-equal" ]);
  check_bool "float equal, literal on the left" true
    (rules_of "let b = 0.5 = y" = [ "float-equal" ]);
  (* binding contexts are not comparisons *)
  check_bool "let binding not flagged" true (rules_of "let slack = 2.5" = []);
  check_bool "record field init not flagged" true
    (rules_of "let r = { slack = 2.5; b = 1 }" = []);
  check_bool "optional arg default not flagged" true
    (rules_of "let f ?(slack = 2.5) () = slack" = []);
  check_bool "Float.equal is the fix, not a finding" true
    (rules_of "let b = Float.equal x 1.0" = []);
  check_bool "int equality untouched" true (rules_of "let b = x = 10" = [])

(* ---- replay ----------------------------------------------------------- *)

let test_replay_deterministic_program () =
  let g = Generators.torus 3 3 in
  (* one full neighbor exchange, then halt *)
  let final : (int * bool, int) Network.program =
    {
      initial = (fun v -> (v, false));
      step =
        (fun ~node ~round ~inbox:_ (v, _) ->
          if round = 0 then
            ( (v, false),
              Array.to_list (Array.map (fun (u, _) -> (u, node)) (Graph.adj g node)) )
          else ((v, true), []));
      halted = (fun (_, done_) -> done_);
    }
  in
  match Replay.check_program ~words:(fun _ -> 1) g final with
  | Ok audit -> check_bool "some traffic" true (audit.Network.total_messages > 0)
  | Error diffs -> Alcotest.failf "unexpected diffs: %s" (String.concat "; " diffs)

let test_replay_catches_nondeterminism () =
  (* a hidden mutable global leaks across runs: the second run sends in a
     different round, so the audits differ *)
  let sneak = ref 0 in
  let g = Generators.path 2 in
  let prog : (bool, int) Network.program =
    {
      initial = (fun _ -> false);
      step =
        (fun ~node ~round ~inbox:_ _ ->
          if node = 0 && round = !sneak then begin
            incr sneak;
            (true, [ (1, 0) ])
          end
          else (round > 2, []));
      halted = (fun b -> b);
    }
  in
  match Replay.check_program ~words:(fun _ -> 1) g prog with
  | Ok _ -> Alcotest.fail "nondeterminism not detected"
  | Error diffs -> check_bool "diffs reported" true (diffs <> [])

let test_replay_diff_audits_fields () =
  let g = Generators.path 3 in
  let _, _, a = Mincut_congest.Primitives.bfs_tree_audited g ~root:0 in
  check_bool "identical audits" true (Replay.diff_audits a a = []);
  let b = { a with Network.rounds = a.Network.rounds + 1; total_words = 0 } in
  let diffs = Replay.diff_audits a b in
  check_bool "rounds diff named" true
    (List.exists (fun d -> String.length d >= 6 && String.sub d 0 6 = "rounds") diffs);
  check_int "two fields differ" 2 (List.length diffs)

(* ---- lockcheck -------------------------------------------------------- *)

let test_lockcheck_ordered_ok () =
  Lockcheck.reset ();
  let a = Lockcheck.create ~name:"t.a" ~order:1 () in
  let b = Lockcheck.create ~name:"t.b" ~order:2 () in
  let r =
    Lockcheck.with_lock a (fun () -> Lockcheck.with_lock b (fun () -> 41) + 1)
  in
  check_int "nested increasing ranks run" 42 r;
  check_bool "no violations" true (Lockcheck.violations () = [])

let test_lockcheck_detects_inversion () =
  Lockcheck.reset ();
  let a = Lockcheck.create ~name:"t.low" ~order:1 () in
  let b = Lockcheck.create ~name:"t.high" ~order:2 () in
  let r =
    Lockcheck.with_lock b (fun () -> Lockcheck.with_lock a (fun () -> 7))
  in
  check_int "execution continues by default" 7 r;
  (match Lockcheck.violations () with
  | [ v ] ->
      check_bool "kind" true (v.Lockcheck.kind = Lockcheck.Order_inversion);
      check_bool "acquiring" true (v.Lockcheck.acquiring = "t.low");
      check_bool "held shows t.high" true
        (List.mem_assoc "t.high" v.Lockcheck.held);
      check_bool "message renders" true
        (String.length (Lockcheck.violation_message v) > 0)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  Lockcheck.reset ();
  Lockcheck.set_raise_on_inversion true;
  Fun.protect
    ~finally:(fun () ->
      Lockcheck.set_raise_on_inversion false;
      Lockcheck.reset ())
    (fun () ->
      check_bool "strict mode raises" true
        (try
           Lockcheck.with_lock b (fun () ->
               Lockcheck.with_lock a (fun () -> ()));
           false
         with Lockcheck.Lock_violation _ -> true))

let test_lockcheck_reentrancy_raises () =
  Lockcheck.reset ();
  let a = Lockcheck.create ~name:"t.reent" ~order:5 () in
  check_bool "re-entrancy raises" true
    (try
       Lockcheck.with_lock a (fun () -> Lockcheck.with_lock a (fun () -> ()));
       false
     with Lockcheck.Lock_violation v -> v.Lockcheck.kind = Lockcheck.Reentrancy);
  check_bool "lock released after violation" true
    (Lockcheck.with_lock a (fun () -> true));
  Lockcheck.reset ()

(* ---- serve under domain stress ---------------------------------------- *)

let test_serve_lock_discipline_under_domains () =
  Lockcheck.reset ();
  let svc = Service.create () in
  let graphs =
    [|
      Generators.ring 6;
      Generators.grid 3 3;
      Generators.complete 5;
      Generators.torus 3 3;
    |]
  in
  let worker i () =
    for k = 0 to 7 do
      let g = graphs.((i + k) mod Array.length graphs) in
      let r = Request.make ~priority:(k mod 3) g in
      if k mod 2 = 0 then ignore (Service.solve svc r)
      else begin
        ignore (Service.submit svc r);
        ignore (Service.flush svc)
      end;
      ignore (Service.snapshot svc)
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  check_bool "no lock-discipline violations under domain stress" true
    (Lockcheck.violations () = []);
  check_bool "service still answers" true
    (let r = Service.solve svc (Request.make graphs.(0)) in
     r.Request.summary.Mincut_core.Api.value > 0);
  Lockcheck.reset ()

let suite =
  [
    tc "lint: flags all hazard classes" test_lint_flags_hazards;
    tc "lint: positions are 1-based lines, 0-based cols" test_lint_positions;
    tc "lint: comments/strings/definitions don't trip" test_lint_no_false_positives;
    tc "lint: JSON report" test_lint_json;
    tc "lint: allowlist filters and reports stale entries" test_lint_allowlist;
    tc "lint: bare-mutex, list-nth, float-equal rules" test_lint_new_rules;
    tc "replay: deterministic program passes" test_replay_deterministic_program;
    tc "replay: hidden global state detected" test_replay_catches_nondeterminism;
    tc "replay: audit differ names fields" test_replay_diff_audits_fields;
    tc "lockcheck: increasing ranks pass" test_lockcheck_ordered_ok;
    tc "lockcheck: inversion recorded and raised in strict mode"
      test_lockcheck_detects_inversion;
    tc "lockcheck: re-entrancy always raises" test_lockcheck_reentrancy_raises;
    tc_slow "serve: lock discipline clean under domain stress"
      test_serve_lock_discipline_under_domains;
  ]
