open Test_helpers
module Network = Mincut_congest.Network
module Config = Mincut_congest.Config
module Cost = Mincut_congest.Cost
module Pipeline = Mincut_congest.Pipeline
module Primitives = Mincut_congest.Primitives
module Diameter = Mincut_graph.Diameter

let words1 _ = 1

(* trivial program: every node sends its id to all neighbors once and
   collects round-1 inbox *)
type hello = { sent : bool; seen : int list; rounds_alive : int }

let hello_program g : (hello, int) Network.program =
  {
    initial = (fun _ -> { sent = false; seen = []; rounds_alive = 0 });
    step =
      (fun ~node ~round:_ ~inbox st ->
        let seen = List.map fst inbox @ st.seen in
        if not st.sent then
          ( { sent = true; seen; rounds_alive = st.rounds_alive + 1 },
            Array.to_list (Array.map (fun (u, _) -> (u, node)) (Graph.adj g node)) )
        else ({ st with seen; rounds_alive = st.rounds_alive + 1 }, []))
      ;
    halted = (fun st -> st.sent && st.rounds_alive >= 2);
  }

let test_engine_delivers_neighbors () =
  let g = Generators.ring 5 in
  let states, audit = Network.run ~words:words1 g (hello_program g) in
  Array.iteri
    (fun v st ->
      let expected = List.sort compare (Array.to_list (Array.map fst (Graph.adj g v))) in
      check_bool
        (Printf.sprintf "node %d heard both neighbors" v)
        true
        (List.sort compare st.seen = expected))
    states;
  check_int "messages = 2m" (2 * Graph.m g) audit.Network.total_messages

(* Run a thunk expected to break the model and hand back the violation
   with its provenance. *)
let expect_violation name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Model_violation, none raised" name
  | exception Network.Model_violation v -> v

let check_opt name expected got =
  check_bool name true (got = expected)

let test_engine_rejects_non_neighbor () =
  let g = Generators.path 3 in
  let prog : (bool, int) Network.program =
    {
      initial = (fun _ -> false);
      step = (fun ~node ~round:_ ~inbox:_ _ -> if node = 0 then (true, [ (2, 0) ]) else (true, []));
      halted = (fun b -> b);
    }
  in
  let v =
    expect_violation "non-neighbor" (fun () -> Network.run ~words:words1 g prog)
  in
  check_bool "kind" true (v.Network.kind = Network.Non_neighbor_send);
  check_int "round" 0 v.Network.round;
  check_opt "sender" (Some 0) v.Network.sender;
  check_opt "receiver" (Some 2) v.Network.receiver;
  check_bool "message names rule" true
    (String.length (Network.violation_message v) > 0
    && Network.kind_name v.Network.kind = "non-neighbor-send")

let test_engine_rejects_duplicate_send () =
  let g = Generators.path 2 in
  let prog : (bool, int) Network.program =
    {
      initial = (fun _ -> false);
      step =
        (fun ~node ~round:_ ~inbox:_ _ ->
          if node = 0 then (true, [ (1, 0); (1, 1) ]) else (true, []));
      halted = (fun b -> b);
    }
  in
  let v =
    expect_violation "duplicate" (fun () -> Network.run ~words:words1 g prog)
  in
  check_bool "kind" true (v.Network.kind = Network.Duplicate_send);
  check_opt "sender" (Some 0) v.Network.sender;
  check_opt "receiver" (Some 1) v.Network.receiver

let test_engine_rejects_oversized () =
  let g = Generators.path 2 in
  let prog : (bool, int) Network.program =
    {
      initial = (fun _ -> false);
      step = (fun ~node ~round:_ ~inbox:_ _ -> if node = 0 then (true, [ (1, 0) ]) else (true, []));
      halted = (fun b -> b);
    }
  in
  let v =
    expect_violation "oversized" (fun () ->
        Network.run ~cfg:(Config.with_budget 2) ~words:(fun _ -> 3) g prog)
  in
  check_bool "kind" true (v.Network.kind = Network.Oversized_message);
  check_opt "measured words" (Some 3) v.Network.words;
  check_opt "violated budget" (Some 2) v.Network.budget;
  check_opt "sender" (Some 0) v.Network.sender

let test_engine_rejects_self_send () =
  let g = Generators.path 3 in
  let prog : (bool, int) Network.program =
    {
      initial = (fun _ -> false);
      step = (fun ~node ~round:_ ~inbox:_ _ -> if node = 1 then (true, [ (1, 0) ]) else (true, []));
      halted = (fun b -> b);
    }
  in
  let v =
    expect_violation "self send" (fun () -> Network.run ~words:words1 g prog)
  in
  check_bool "kind" true (v.Network.kind = Network.Non_neighbor_send);
  check_opt "sender = receiver" v.Network.sender v.Network.receiver

let test_engine_watchdog () =
  let g = Generators.path 2 in
  let prog : (unit, int) Network.program =
    {
      initial = (fun _ -> ());
      step = (fun ~node:_ ~round:_ ~inbox:_ () -> ((), []));
      halted = (fun () -> false);
    }
  in
  let v =
    expect_violation "watchdog" (fun () ->
        Network.run
          ~cfg:{ Config.default with Config.max_rounds = 10 }
          ~words:words1 g prog)
  in
  check_bool "kind" true (v.Network.kind = Network.Watchdog);
  check_opt "no sender" None v.Network.sender;
  check_opt "round limit as budget" (Some 10) v.Network.budget;
  check_int "round" 10 v.Network.round

let test_engine_strict_edge_overload () =
  (* one word per message passes the lenient per-message budget but two
     messages never cross one edge in one round, so the only way to trip
     Edge_overload is a payload that fits words_per_message yet exceeds
     the strict per-edge cap *)
  let g = Generators.path 2 in
  let prog : (bool, int) Network.program =
    {
      initial = (fun _ -> false);
      step = (fun ~node ~round:_ ~inbox:_ _ -> if node = 0 then (true, [ (1, 0) ]) else (true, []));
      halted = (fun b -> b);
    }
  in
  (* lenient run with 3-word payloads is fine under the default budget *)
  let _, audit = Network.run ~words:(fun _ -> 3) g prog in
  check_int "lenient max_edge_words" 3 audit.Network.max_edge_words;
  let v =
    expect_violation "edge overload" (fun () ->
        Network.run
          ~cfg:(Config.strict ~budget:2 Config.default)
          ~words:(fun _ -> 3) g prog)
  in
  check_bool "kind" true (v.Network.kind = Network.Edge_overload);
  check_opt "aggregate words" (Some 3) v.Network.words;
  check_opt "edge cap" (Some 2) v.Network.budget;
  check_opt "sender" (Some 0) v.Network.sender;
  check_opt "receiver" (Some 1) v.Network.receiver

let test_strict_rejects_bad_budget () =
  check_bool "non-positive cap" true
    (try
       ignore (Config.strict ~budget:0 Config.default);
       false
     with Invalid_argument _ -> true)

let test_bfs_tree_real () =
  List.iter
    (fun (name, g) ->
      let tree, cost = Primitives.bfs_tree g ~root:0 in
      let r = Bfs.run g ~source:0 in
      check_bool (name ^ " depths match bfs") true (tree.Tree.depth = r.Bfs.dist);
      let ecc = Array.fold_left max 0 r.Bfs.dist in
      check_bool
        (Printf.sprintf "%s rounds %d ~ ecc %d" name cost.Cost.rounds ecc)
        true
        (cost.Cost.rounds >= ecc && cost.Cost.rounds <= ecc + 3))
    (small_connected_graphs ())

let test_convergecast_sum_real () =
  List.iter
    (fun (name, g) ->
      let tree, _ = Primitives.bfs_tree g ~root:0 in
      let values = Array.init (Graph.n g) (fun v -> v + 1) in
      let total, cost = Primitives.convergecast_sum g ~tree ~values in
      let n = Graph.n g in
      check_int (name ^ " sum") (n * (n + 1) / 2) total;
      check_bool (name ^ " rounds ~ height") true
        (cost.Cost.rounds <= Tree.height tree + 2))
    (small_connected_graphs ())

let test_broadcast_items_real () =
  List.iter
    (fun (name, g) ->
      let tree, _ = Primitives.bfs_tree g ~root:0 in
      let items = Array.init 7 (fun i -> 100 + i) in
      let per_node, cost = Primitives.broadcast_items g ~tree ~items in
      Array.iteri
        (fun v got -> check_bool (Printf.sprintf "%s node %d got all" name v) true (got = items))
        per_node;
      (* pipelining: depth + k, not depth * k *)
      let bound = Pipeline.broadcast ~depth:(Tree.height tree) ~items:7 + 2 in
      check_bool
        (Printf.sprintf "%s rounds %d <= pipeline bound %d" name cost.Cost.rounds bound)
        true (cost.Cost.rounds <= bound))
    (small_connected_graphs ())

let test_broadcast_empty () =
  let g = Generators.path 3 in
  let tree, _ = Primitives.bfs_tree g ~root:0 in
  let _, cost = Primitives.broadcast_items g ~tree ~items:[||] in
  check_int "no items, no rounds" 0 cost.Cost.rounds

let test_upcast_distinct_real () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let tree, _ = Primitives.bfs_tree g ~root:0 in
      (* every node holds its own id; root must collect all *)
      let initial = Array.init n (fun v -> [ v ]) in
      let collected, cost = Primitives.upcast_distinct g ~tree ~initial in
      check_bool (name ^ " collected all ids") true (collected = List.init n (fun i -> i));
      let bound = Pipeline.upcast ~depth:(Tree.height tree) ~items:n + 2 in
      check_bool (name ^ " pipelined") true (cost.Cost.rounds <= bound))
    (small_connected_graphs ())

let test_upcast_with_duplicates () =
  let g = Generators.path 6 in
  let tree, _ = Primitives.bfs_tree g ~root:0 in
  let initial = Array.make 6 [ 42; 7 ] in
  let collected, _ = Primitives.upcast_distinct g ~tree ~initial in
  check_bool "dedup" true (collected = [ 7; 42 ])

let test_flood_max_real () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let values = Array.init n (fun v -> (v * 13) mod 17) in
      let maxv = Array.fold_left max min_int values in
      let learned, _ = Primitives.flood_max g ~values in
      Array.iteri
        (fun v got -> check_int (Printf.sprintf "%s node %d max" name v) maxv got)
        learned)
    (small_connected_graphs ())

let test_engine_deterministic () =
  let g = Generators.gnp_connected ~rng:(Mincut_util.Rng.create 12) 24 0.3 in
  let run () =
    let tree, cost = Primitives.bfs_tree g ~root:0 in
    let total, c2 = Primitives.convergecast_sum g ~tree ~values:(Array.make 24 3) in
    (tree.Tree.parent, cost.Cost.rounds, total, c2.Cost.rounds)
  in
  check_bool "bitwise identical reruns" true (run () = run ())

let test_congestion_profile () =
  let g = Generators.grid 5 5 in
  let _, _, audit = Primitives.bfs_tree_audited g ~root:0 in
  let profile = audit.Network.messages_per_round in
  check_int "profile length = rounds" audit.Network.rounds (Array.length profile);
  check_int "profile sums to total" audit.Network.total_messages
    (Array.fold_left ( + ) 0 profile);
  (* flooding: traffic starts at round 0 and ends before the drain *)
  check_bool "round 0 active" true (profile.(0) > 0);
  check_int "drain round is silent" 0 profile.(Array.length profile - 1)

let test_audited_variants_agree () =
  let g = Generators.torus 4 4 in
  let t1, c1 = Primitives.bfs_tree g ~root:0 in
  let t2, c2, _ = Primitives.bfs_tree_audited g ~root:0 in
  check_bool "same tree" true (t1.Tree.parent = t2.Tree.parent);
  check_int "same rounds" c1.Cost.rounds c2.Cost.rounds

let test_flood_echo () =
  List.iter
    (fun (name, g) ->
      let tree, cost = Primitives.flood_echo g ~root:0 in
      let ecc = Tree.height tree in
      check_bool
        (Printf.sprintf "%s echo rounds %d ~ 2*ecc %d" name cost.Cost.rounds (2 * ecc))
        true
        (cost.Cost.rounds >= ecc && cost.Cost.rounds <= (2 * ecc) + 6);
      check_int (name ^ " echo breakdown") 2 (List.length (Cost.breakdown cost)))
    (small_connected_graphs ())

let test_cost_algebra () =
  let open Cost in
  let a = step "a" 3 ++ step "b" 4 in
  check_int "sequential add" 7 a.rounds;
  check_int "breakdown entries" 2 (List.length (breakdown a));
  let p = par (step "x" 10) (step "y" 3) in
  check_int "parallel max" 10 p.rounds;
  check_int "sum" 17 (sum [ a; p ]).rounds;
  check_int "zero" 0 zero.rounds

let test_pipeline_formulas () =
  check_int "broadcast" 12 (Pipeline.broadcast ~depth:5 ~items:7);
  check_int "broadcast none" 0 (Pipeline.broadcast ~depth:5 ~items:0);
  check_int "upcast" 9 (Pipeline.upcast ~depth:4 ~items:5);
  check_int "convergecast" 6 (Pipeline.convergecast ~depth:5 ~max_edge_load:1);
  check_int "exchange" 4 (Pipeline.exchange ~items:4)

let test_bits_per_word () =
  check_bool "log-ish" true (Config.bits_per_word ~n:1024 >= 10);
  check_bool "monotone" true (Config.bits_per_word ~n:2048 >= Config.bits_per_word ~n:1024)

module Reference = Mincut_congest.Network_reference
module Replay = Mincut_analysis.Replay

let replay_graphs () =
  [
    ("torus4", Generators.torus 4 4);
    ("grid5", Generators.grid 5 5);
    ("gnp24", Generators.gnp_connected ~rng:(Mincut_util.Rng.create 12) 24 0.3);
  ]

let test_max_edge_load_pipelined () =
  (* pipelined broadcast pushes one item per round down every tree edge:
     with 7 items each parent->child channel carries exactly 7 messages
     over the run — the per-channel congestion max_edge_load measures *)
  let g = Generators.path 4 in
  let tree, _ = Primitives.bfs_tree g ~root:0 in
  let items = Array.init 7 (fun i -> 100 + i) in
  let _, _, audit = Primitives.broadcast_items_audited g ~tree ~items in
  check_int "7 messages per channel" 7 audit.Network.max_edge_load;
  check_int "one word per round per channel" 1 audit.Network.max_edge_words

let test_max_edge_load_single_shot () =
  let g = Generators.ring 5 in
  let _, audit = Network.run ~words:words1 g (hello_program g) in
  check_int "hello uses each channel once" 1 audit.Network.max_edge_load

let test_driver_matches_reference () =
  (* the flat-array driver and the preserved seed driver must agree on
     states and on the full audit, workload by workload *)
  List.iter
    (fun (name, g) ->
      let prog = Primitives.bfs_program g ~root:0 in
      let states_a, audit_a = Network.run ~words:words1 g prog in
      let states_b, audit_b = Reference.run ~words:words1 g prog in
      check_bool (name ^ ": audits equal") true
        (Replay.diff_audits audit_a audit_b = []);
      check_bool (name ^ ": states equal") true (states_a = states_b))
    (replay_graphs ())

let test_seed_driver_goldens () =
  (* audits recorded from the pre-rewrite driver on the lint replay
     workloads; any driver change that shifts these numbers is a
     semantics change, not an optimisation *)
  let expect =
    [
      ("torus4", 6, 64, [| 4; 16; 24; 16; 4; 0 |]);
      ("grid5", 10, 80, [| 2; 6; 10; 14; 16; 14; 10; 6; 2; 0 |]);
      ("gnp24", 4, 178, [| 8; 69; 101; 0 |]);
    ]
  in
  List.iter2
    (fun (name, g) (name', rounds, msgs, per_round) ->
      check_bool "tables aligned" true (String.equal name name');
      let _, _, audit = Primitives.bfs_tree_audited g ~root:0 in
      check_int (name ^ " rounds") rounds audit.Network.rounds;
      check_int (name ^ " messages") msgs audit.Network.total_messages;
      check_int (name ^ " words") msgs audit.Network.total_words;
      check_int (name ^ " max payload") 1 audit.Network.max_words;
      check_int (name ^ " max edge load") 1 audit.Network.max_edge_load;
      check_int (name ^ " max edge words") 1 audit.Network.max_edge_words;
      check_bool (name ^ " profile") true
        (audit.Network.messages_per_round = per_round))
    (replay_graphs ()) expect

let test_audit_word_budget_respected () =
  (* all primitives must fit the default 4-word budget *)
  let g = Generators.gnp_connected ~rng:(Mincut_util.Rng.create 2) 20 0.3 in
  let tree, _ = Primitives.bfs_tree g ~root:0 in
  let _, c1 = Primitives.convergecast_sum g ~tree ~values:(Array.make 20 5) in
  let _, c2 = Primitives.broadcast_items g ~tree ~items:[| 1; 2; 3 |] in
  check_bool "ran fine under budget" true (c1.Cost.rounds > 0 && c2.Cost.rounds > 0)

let suite =
  [
    tc "engine: delivers to neighbors" test_engine_delivers_neighbors;
    tc "engine: rejects non-neighbor sends" test_engine_rejects_non_neighbor;
    tc "engine: rejects duplicate sends" test_engine_rejects_duplicate_send;
    tc "engine: rejects oversized messages" test_engine_rejects_oversized;
    tc "engine: rejects self sends" test_engine_rejects_self_send;
    tc "engine: watchdog" test_engine_watchdog;
    tc "engine: strict mode catches edge overload" test_engine_strict_edge_overload;
    tc "config: strict rejects bad budget" test_strict_rejects_bad_budget;
    tc "primitives: bfs tree (real rounds)" test_bfs_tree_real;
    tc "primitives: convergecast sum" test_convergecast_sum_real;
    tc "primitives: pipelined broadcast" test_broadcast_items_real;
    tc "primitives: broadcast of nothing" test_broadcast_empty;
    tc "primitives: pipelined upcast" test_upcast_distinct_real;
    tc "primitives: upcast dedups" test_upcast_with_duplicates;
    tc "primitives: flood max" test_flood_max_real;
    tc "primitives: flood with echo" test_flood_echo;
    tc "engine: deterministic" test_engine_deterministic;
    tc "engine: congestion profile" test_congestion_profile;
    tc "primitives: audited variants agree" test_audited_variants_agree;
    tc "audit: max edge load counts pipelined traffic" test_max_edge_load_pipelined;
    tc "audit: max edge load of one-shot flood" test_max_edge_load_single_shot;
    tc "engine: flat driver matches reference driver" test_driver_matches_reference;
    tc "engine: seed-driver audit goldens" test_seed_driver_goldens;
    tc "cost: algebra" test_cost_algebra;
    tc "pipeline: formulas" test_pipeline_formulas;
    tc "config: bits per word" test_bits_per_word;
    tc "audit: primitives fit word budget" test_audit_word_budget_respected;
  ]
