(* Algebraic laws and serialization round trips of the provenance-tagged
   cost span tree.  Random trees are built only through the public
   constructors, so every law is a statement about the exported algebra:
   [++] is associative with [zero] as identity, [par] commutes on
   rounds, and the total is always the sum of the leaves that bill
   (everything not hidden under an "(overlapped)" marker). *)

open Test_helpers
module Cost = Mincut_congest.Cost
module Primitives = Mincut_congest.Primitives

(* ---- generators ---------------------------------------------------- *)

let gen_label =
  QCheck2.Gen.(
    let* i = int_range 0 9 in
    return (Printf.sprintf "step%d" i))

let gen_leaf =
  QCheck2.Gen.(
    let* label = gen_label in
    let* rounds = int_range 0 20 in
    let* kind = int_range 0 2 in
    return
      (match kind with
      | 0 -> Cost.executed label rounds
      | 1 -> Cost.scheduled label rounds
      | _ -> Cost.charged label rounds))

(* [with_par:false] restricts to sequential composition, where the
   plain leaf-sum invariant must hold with no exclusions *)
let rec gen_cost ~with_par depth =
  QCheck2.Gen.(
    if depth = 0 then gen_leaf
    else
      let* choice = int_range 0 (if with_par then 3 else 2) in
      match choice with
      | 0 -> gen_leaf
      | 1 ->
          let* a = gen_cost ~with_par (depth - 1) in
          let* b = gen_cost ~with_par (depth - 1) in
          return (Cost.( ++ ) a b)
      | 2 ->
          let* label = gen_label in
          let* a = gen_cost ~with_par (depth - 1) in
          return (Cost.group label a)
      | _ ->
          let* a = gen_cost ~with_par (depth - 1) in
          let* b = gen_cost ~with_par (depth - 1) in
          return (Cost.par a b))

let gen_tree = gen_cost ~with_par:true 3
let gen_seq_tree = gen_cost ~with_par:false 3

let gen_pair = QCheck2.Gen.pair gen_tree gen_tree
let gen_triple = QCheck2.Gen.triple gen_tree gen_tree gen_tree

let has_prefix prefix l =
  String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

let billed_rounds t =
  List.fold_left
    (fun acc (label, rounds) ->
      if has_prefix "(overlapped)" label then acc else acc + rounds)
    0 (Cost.breakdown t)

(* ---- qcheck laws --------------------------------------------------- *)

let qcheck_tests =
  [
    qtest "cost: (++) associative" gen_triple (fun (a, b, c) ->
        Cost.(equal (a ++ b ++ c) (a ++ (b ++ c))));
    qtest "cost: zero is identity" gen_tree (fun a ->
        Cost.(equal (zero ++ a) a && equal (a ++ zero) a));
    qtest "cost: par commutes on rounds" gen_pair (fun (a, b) ->
        (Cost.par a b).Cost.rounds = (Cost.par b a).Cost.rounds);
    qtest "cost: par rounds = max" gen_pair (fun (a, b) ->
        (Cost.par a b).Cost.rounds = max a.Cost.rounds b.Cost.rounds);
    qtest "cost: sum = iterated (++)" gen_triple (fun (a, b, c) ->
        Cost.(equal (sum [ a; b; c ]) (a ++ b ++ c)));
    qtest "cost: rounds = sum of leaf rounds (sequential)" gen_seq_tree
      (fun a ->
        a.Cost.rounds
        = List.fold_left (fun acc (_, r) -> acc + r) 0 (Cost.breakdown a));
    qtest "cost: rounds = sum of billed leaves (with par)" gen_tree (fun a ->
        a.Cost.rounds = billed_rounds a);
    qtest "cost: group preserves rounds and flat view" gen_tree (fun a ->
        let g = Cost.group "wrapper" a in
        g.Cost.rounds = a.Cost.rounds
        && Cost.breakdown g = Cost.breakdown a);
    qtest "cost: json round-trips" gen_tree (fun a ->
        match Cost.of_json (Cost.to_json a) with
        | Ok b -> Cost.equal a b
        | Error _ -> false);
    qtest "cost: table rows end with the total" gen_tree (fun a ->
        Cost.to_table_rows a = Cost.breakdown a @ [ ("total", a.Cost.rounds) ]);
  ]

(* ---- unit pins ----------------------------------------------------- *)

let sample () =
  Cost.(
    group "phase A" (executed "bfs (real)" 3 ++ scheduled "upcast" 4)
    ++ charged "kp bound" 5)

let test_table_rows_pinned () =
  let rows = Cost.to_table_rows (sample ()) in
  check_int "row count" 4 (List.length rows);
  check_bool "leaf rows first" true
    (List.filteri (fun i _ -> i < 3) rows
    = [ ("bfs (real)", 3); ("upcast", 4); ("kp bound", 5) ]);
  check_bool "total row last" true (List.nth rows 3 = ("total", 12))

let test_pp_pinned () =
  let rendered = Format.asprintf "%a" Cost.pp (sample ()) in
  let expected =
    String.concat "\n"
      [
        "total rounds: 12";
        "     7  executed   phase A";
        "     3  executed     bfs (real)";
        "     4  scheduled    upcast";
        "     5  charged    kp bound";
      ]
  in
  Alcotest.(check string) "tree render" expected rendered

let test_provenance_names () =
  List.iter
    (fun p ->
      check_bool (Cost.provenance_name p ^ " round-trips") true
        (match Cost.provenance_of_name (Cost.provenance_name p) with
        | Some q -> Cost.provenance_equal p q
        | None -> false))
    [ Cost.Executed; Cost.Scheduled; Cost.Charged ];
  check_bool "unknown name rejected" true (Cost.provenance_of_name "guessed" = None)

let test_negative_rounds_rejected () =
  match Cost.scheduled "oops" (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rounds must raise"

let test_json_keeps_audit () =
  let g = Generators.ring 6 in
  let _, cost, _ = Primitives.bfs_tree_audited g ~root:0 in
  (match cost.Cost.spans with
  | [ s ] -> check_bool "audit attached" true (s.Cost.audit <> None)
  | _ -> Alcotest.fail "expected one executed leaf");
  match Cost.of_json (Cost.to_json cost) with
  | Ok back -> check_bool "audit survives json" true (Cost.equal cost back)
  | Error e -> Alcotest.fail e

let test_par_marks_loser () =
  let p = Cost.(par (scheduled "slow" 10) (scheduled "fast" 3)) in
  check_int "winner rounds" 10 p.Cost.rounds;
  check_bool "loser prefixed in flat view" true
    (List.mem ("(overlapped) fast", 3) (Cost.breakdown p))

let suite =
  [
    tc "cost: table rows pinned" test_table_rows_pinned;
    tc "cost: pp tree render pinned" test_pp_pinned;
    tc "cost: provenance names" test_provenance_names;
    tc "cost: negative rounds rejected" test_negative_rounds_rejected;
    tc "cost: json keeps the audit" test_json_keeps_audit;
    tc "cost: par marks the loser" test_par_marks_loser;
  ]
  @ qcheck_tests
