open Test_helpers
module Fragments = Mincut_mst.Fragments
module Boruvka_dist = Mincut_mst.Boruvka_dist
module Mst_seq = Mincut_graph.Mst_seq
module Cost = Mincut_congest.Cost

let test_boruvka_dist_matches_sequential () =
  List.iter
    (fun (name, g) ->
      let r = Boruvka_dist.run g in
      let seq = Mst_seq.boruvka g in
      check_bool (name ^ " same edge set") true
        (List.sort compare r.Boruvka_dist.edge_ids = List.sort compare seq))
    (small_connected_graphs ())

let test_boruvka_dist_phase_bound () =
  List.iter
    (fun (name, g) ->
      let r = Boruvka_dist.run g in
      let n = Graph.n g in
      let log2n =
        let rec go k = if 1 lsl k >= n then k else go (k + 1) in
        go 0
      in
      check_bool
        (Printf.sprintf "%s phases %d <= log2 n + 1 = %d" name r.Boruvka_dist.phases (log2n + 1))
        true
        (r.Boruvka_dist.phases <= log2n + 1))
    (small_connected_graphs ())

let test_boruvka_dist_spanning_tree () =
  List.iter
    (fun (name, g) ->
      let tree, _ = Boruvka_dist.spanning_tree g ~root:0 in
      check_int (name ^ " spans") (Graph.n g) tree.Tree.size.(0))
    (small_connected_graphs ())

let test_boruvka_dist_single_node () =
  let g = Graph.create ~n:1 [] in
  let r = Boruvka_dist.run g in
  check_int "no edges" 0 (List.length r.Boruvka_dist.edge_ids);
  check_int "no phases" 0 r.Boruvka_dist.phases

let test_boruvka_dist_two_nodes () =
  let g = Graph.create ~n:2 [ (0, 1, 5) ] in
  let r = Boruvka_dist.run g in
  check_bool "single edge chosen" true (r.Boruvka_dist.edge_ids = [ 0 ]);
  check_int "one phase" 1 r.Boruvka_dist.phases

let test_boruvka_dist_disconnected_forest () =
  let g = Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  let r = Boruvka_dist.run g in
  check_int "forest of 2 edges" 2 (List.length r.Boruvka_dist.edge_ids)

let test_boruvka_dist_parallel_edges () =
  let g = Graph.create ~n:2 [ (0, 1, 5); (0, 1, 3) ] in
  let r = Boruvka_dist.run g in
  check_bool "picks the lighter parallel edge" true (r.Boruvka_dist.edge_ids = [ 1 ])

let test_boruvka_tight_word_budget () =
  (* the protocol's largest message is a 2-word candidate: it must run
     unchanged under a words_per_message budget of exactly 2 *)
  let cfg = Mincut_congest.Config.with_budget 2 in
  let g = Generators.gnp_connected ~rng:(Mincut_util.Rng.create 8) 20 0.3 in
  let tight = Boruvka_dist.run ~cfg g in
  let loose = Boruvka_dist.run g in
  check_bool "same MST under tight budget" true
    (tight.Boruvka_dist.edge_ids = loose.Boruvka_dist.edge_ids)

let test_fragments_deep_families () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      List.iter
        (fun target ->
          let f = Fragments.partition tree ~target in
          match Fragments.check_invariants f with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s target %d: %s" name target e)
        [ 1; 2; 5; 16; 1000 ])
    [
      ("cliques-path", Generators.path_of_cliques ~clique:6 ~length:12);
      ("spider", Generators.spider ~legs:5 ~leg_length:15);
      ("path-80", Generators.path 80);
    ]

let test_boruvka_cost_positive () =
  let g = Generators.ring 8 in
  let r = Boruvka_dist.run g in
  check_bool "rounds counted" true (r.Boruvka_dist.cost.Cost.rounds > 0);
  check_bool "breakdown populated" true
    (List.length (Cost.breakdown r.Boruvka_dist.cost) >= 4)

let fragments_of g target =
  let tree = Tree.bfs_tree g ~root:0 in
  Fragments.partition tree ~target

let test_fragments_invariants_families () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let f = fragments_of g (Fragments.default_target ~n) in
      match Fragments.check_invariants f with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    (small_connected_graphs ())

let test_fragments_path_counts () =
  (* path of 16: target 4 => at most 16/4 + 1 = 5 fragments, height <= 4 *)
  let g = Generators.path 16 in
  let f = fragments_of g 4 in
  check_bool "count <= n/target + 1" true (Fragments.count f <= 5);
  check_bool "height <= target" true (Fragments.max_height f <= 4)

let test_fragments_star () =
  (* star: everything is one shallow fragment *)
  let g = Graph.create ~n:6 (List.init 5 (fun i -> (0, i + 1, 1))) in
  let f = fragments_of g 3 in
  check_int "single fragment" 1 (Fragments.count f);
  check_int "height 1" 1 (Fragments.max_height f)

let test_fragments_target_one () =
  let g = Generators.path 5 in
  let f = fragments_of g 1 in
  check_bool "every fragment height <= 1" true (Fragments.max_height f <= 1);
  match Fragments.check_invariants f with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_fragment_tree_structure () =
  let g = Generators.path 16 in
  let f = fragments_of g 4 in
  let k = Fragments.count f in
  check_int "inter-fragment edges = k-1" (k - 1)
    (List.length (Fragments.inter_fragment_edges f));
  (* exactly one fragment has no parent *)
  let top = Array.to_list f.Fragments.frag_parent |> List.filter (fun p -> p = -1) in
  check_int "single top fragment" 1 (List.length top);
  (* root fragment contains the tree root *)
  check_int "root node in top fragment" f.Fragments.frag_of.(0)
    (let rec find i = if f.Fragments.frag_parent.(i) = -1 then i else find (i + 1) in
     find 0)

let test_fragments_ids_are_min_members () =
  let rng = Mincut_util.Rng.create 61 in
  for _ = 1 to 10 do
    let g = Generators.random_tree ~rng 50 in
    let f = fragments_of g 7 in
    Array.iteri
      (fun i ms -> check_int "id is min member" (List.fold_left min max_int ms) f.Fragments.ids.(i))
      f.Fragments.members
  done

let test_fragment_depths_consistent () =
  let rng = Mincut_util.Rng.create 62 in
  let g = Generators.random_tree ~rng 60 in
  let f = fragments_of g 8 in
  (* depth_in_frag of a fragment root is 0; child = parent + 1 in frag *)
  Array.iteri
    (fun i r -> check_int (Printf.sprintf "root depth frag %d" i) 0 f.Fragments.depth_in_frag.(r))
    f.Fragments.roots;
  Array.iteri
    (fun v p ->
      if p <> -1 && f.Fragments.frag_of.(v) = f.Fragments.frag_of.(p) then
        check_int "depth increments" (f.Fragments.depth_in_frag.(p) + 1)
          f.Fragments.depth_in_frag.(v))
    f.Fragments.tree.Tree.parent

let qcheck_tests =
  [
    qtest ~count:50 "distributed = sequential boruvka" (arbitrary_connected ())
      (fun g ->
        let r = Boruvka_dist.run g in
        List.sort compare r.Boruvka_dist.edge_ids = List.sort compare (Mst_seq.boruvka g));
    qtest ~count:50 "fragment invariants on random graphs" (arbitrary_connected ())
      (fun g ->
        let tree = Tree.bfs_tree g ~root:0 in
        let target = Fragments.default_target ~n:(Graph.n g) in
        match Fragments.check_invariants (Fragments.partition tree ~target) with
        | Ok _ -> true
        | Error _ -> false);
    qtest ~count:30 "fragment count scales with target" (arbitrary_connected ())
      (fun g ->
        let tree = Tree.bfs_tree g ~root:0 in
        let f1 = Fragments.partition tree ~target:2 in
        let f2 = Fragments.partition tree ~target:(Graph.n g) in
        Fragments.count f2 <= Fragments.count f1);
  ]

let suite =
  [
    tc "boruvka-dist: matches sequential" test_boruvka_dist_matches_sequential;
    tc "boruvka-dist: phase bound" test_boruvka_dist_phase_bound;
    tc "boruvka-dist: spanning tree" test_boruvka_dist_spanning_tree;
    tc "boruvka-dist: single node" test_boruvka_dist_single_node;
    tc "boruvka-dist: two nodes" test_boruvka_dist_two_nodes;
    tc "boruvka-dist: disconnected forest" test_boruvka_dist_disconnected_forest;
    tc "boruvka-dist: parallel edges" test_boruvka_dist_parallel_edges;
    tc "boruvka-dist: cost accounting" test_boruvka_cost_positive;
    tc "boruvka-dist: tight word budget" test_boruvka_tight_word_budget;
    tc "fragments: deep families, target sweep" test_fragments_deep_families;
    tc "fragments: invariants on families" test_fragments_invariants_families;
    tc "fragments: path counts" test_fragments_path_counts;
    tc "fragments: star" test_fragments_star;
    tc "fragments: target 1" test_fragments_target_one;
    tc "fragments: fragment tree structure" test_fragment_tree_structure;
    tc "fragments: ids are min members" test_fragments_ids_are_min_members;
    tc "fragments: depths consistent" test_fragment_depths_consistent;
  ]
  @ qcheck_tests
