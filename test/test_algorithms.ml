open Test_helpers
module Exact = Mincut_core.Exact
module Approx = Mincut_core.Approx
module Ghaffari_kuhn = Mincut_core.Ghaffari_kuhn
module Su = Mincut_core.Su
module Api = Mincut_core.Api
module Params = Mincut_core.Params
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Cost = Mincut_congest.Cost

let lambda_of g = (Stoer_wagner.run g).Stoer_wagner.value

let known_lambda =
  [
    ("path", Generators.path 8, 1);
    ("ring", Generators.ring 9, 2);
    ("complete6", Generators.complete 6, 5);
    ("grid4x5", Generators.grid 4 5, 2);
    ("torus4x4", Generators.torus 4 4, 4);
    ("hypercube3", Generators.hypercube 3, 3);
    ("wheel8", Generators.wheel 8, 3);
    ("barbell5", Generators.barbell 5, 1);
    ("path-of-cliques", Generators.path_of_cliques ~clique:5 ~length:4, 2);
  ]

(* ---- Exact --------------------------------------------------------- *)

let test_exact_known_families () =
  List.iter
    (fun (name, g, lambda) ->
      let r = Exact.run ~params:Params.fast g in
      check_int (name ^ " exact λ") lambda r.Exact.value;
      check_int (name ^ " side consistent") lambda (Graph.cut_of_bitset g r.Exact.side))
    known_lambda

let test_exact_weighted () =
  let g =
    Graph.create ~n:6
      [
        (0, 1, 10); (1, 2, 10); (0, 2, 10);
        (3, 4, 10); (4, 5, 10); (3, 5, 10);
        (0, 3, 2); (2, 5, 3);
      ]
  in
  check_int "weighted exact" 5 (Exact.run ~params:Params.fast g).Exact.value

let test_exact_small_suite () =
  List.iter
    (fun (name, g) ->
      let r = Exact.run ~params:Params.fast g in
      check_int (name ^ " = stoer-wagner") (lambda_of g) r.Exact.value)
    (small_connected_graphs ())

let test_exact_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  let r = Exact.run g in
  check_int "zero cut" 0 r.Exact.value;
  check_int "component side" 2 (Bitset.cardinal r.Exact.side)

let test_exact_planted_lambda_sweep () =
  let rng = Rng.create 21 in
  List.iter
    (fun k ->
      let g = Generators.planted_cut ~rng ~n:30 ~cut_edges:k ~p_in:0.8 () in
      let r = Exact.run ~params:Params.fast g in
      check_int (Printf.sprintf "planted k=%d" k) (lambda_of g) r.Exact.value)
    [ 1; 2; 3; 4; 5 ]

let test_exact_cost_includes_packing () =
  let g = Generators.grid 5 5 in
  let r = Exact.run ~params:Params.fast ~trees:4 g in
  check_int "trees used" 4 r.Exact.trees_used;
  check_bool "packing charged" true
    (List.exists
       (fun (l, _) -> String.length l >= 12 && String.sub l 0 12 = "tree packing")
       (Cost.breakdown r.Exact.cost))

let test_exact_more_trees_never_worse () =
  let rng = Rng.create 33 in
  for _ = 1 to 5 do
    let g = Generators.gnp_connected ~rng 16 0.4 in
    let v4 = (Exact.run ~params:Params.fast ~trees:4 g).Exact.value in
    let v16 = (Exact.run ~params:Params.fast ~trees:16 g).Exact.value in
    check_bool "monotone improvement" true (v16 <= v4)
  done

(* ---- Approx -------------------------------------------------------- *)

let test_approx_quality_known () =
  let epsilon = 0.5 in
  List.iter
    (fun (name, g, lambda) ->
      let rng = Rng.create 7 in
      let r = Approx.run ~params:Params.fast ~rng ~epsilon g in
      check_bool (name ^ " >= λ") true (r.Approx.value >= lambda);
      check_bool
        (Printf.sprintf "%s approx %d <= (1+ε)λ+1 = %.1f" name r.Approx.value
           ((1.0 +. epsilon) *. float_of_int lambda +. 1.0))
        true
        (float_of_int r.Approx.value <= ((1.0 +. epsilon) *. float_of_int lambda) +. 1.0);
      check_int (name ^ " side consistent") r.Approx.value (Graph.cut_of_bitset g r.Approx.side))
    known_lambda

let test_approx_small_cut_degenerates_to_exact () =
  (* λ=1 forces p=1 (the guard) — the exact path is taken *)
  let g = Generators.barbell 5 in
  let rng = Rng.create 1 in
  let r = Approx.run ~params:Params.fast ~rng ~epsilon:0.3 g in
  check_int "exact on tiny cut" 1 r.Approx.value;
  check_bool "p = 1" true (r.Approx.p = 1.0)

let test_approx_rejects_bad_epsilon () =
  check_bool "epsilon <= 0" true
    (try
       ignore (Approx.run ~rng:(Rng.create 0) ~epsilon:0.0 (Generators.ring 4));
       false
     with Invalid_argument _ -> true)

(* ---- Ghaffari–Kuhn -------------------------------------------------- *)

let test_gk_guarantee_known () =
  let epsilon = 0.5 in
  List.iter
    (fun (name, g, lambda) ->
      let r = Ghaffari_kuhn.run ~epsilon g in
      check_bool (name ^ " >= λ") true (r.Ghaffari_kuhn.value >= lambda);
      check_bool
        (Printf.sprintf "%s gk %d <= (2+ε)λ = %.1f" name r.Ghaffari_kuhn.value
           ((2.0 +. epsilon) *. float_of_int lambda))
        true
        (float_of_int r.Ghaffari_kuhn.value <= (2.0 +. epsilon) *. float_of_int lambda);
      check_int (name ^ " side consistent") r.Ghaffari_kuhn.value
        (Graph.cut_of_bitset g r.Ghaffari_kuhn.side))
    known_lambda

let test_gk_guarantee_random () =
  let rng = Rng.create 43 in
  for _ = 1 to 20 do
    let g = Generators.gnp_connected ~rng 18 0.4 in
    let lambda = lambda_of g in
    let r = Ghaffari_kuhn.run ~epsilon:0.2 g in
    check_bool "within [λ, 2.2λ]" true
      (r.Ghaffari_kuhn.value >= lambda
      && float_of_int r.Ghaffari_kuhn.value <= 2.2 *. float_of_int lambda)
  done

let test_gk_iterations_logarithmic () =
  let rng = Rng.create 44 in
  let g = Generators.gnp_connected ~rng 100 0.2 in
  let r = Ghaffari_kuhn.run ~epsilon:0.5 g in
  check_bool
    (Printf.sprintf "iterations %d small" r.Ghaffari_kuhn.iterations)
    true
    (r.Ghaffari_kuhn.iterations <= 20)

(* ---- Su -------------------------------------------------------------- *)

let test_su_valid_cut_known () =
  List.iter
    (fun (name, g, lambda) ->
      let rng = Rng.create 3 in
      let r = Su.run ~rng ~epsilon:0.5 g in
      check_bool (name ^ " >= λ") true (r.Su.value >= lambda);
      check_int (name ^ " side consistent") r.Su.value (Graph.cut_of_bitset g r.Su.side);
      check_bool (name ^ " sampled") true (r.Su.samples > 0))
    known_lambda

let test_su_finds_bridges_exactly () =
  (* λ = 1 graphs: the bridge side must be found *)
  let rng = Rng.create 5 in
  List.iter
    (fun (name, g) ->
      let r = Su.run ~rng ~epsilon:0.5 g in
      check_int (name ^ " unit cut found") 1 r.Su.value)
    [ ("barbell6", Generators.barbell 6); ("dumbbell5-3", Generators.dumbbell 5 3) ]

let test_su_reasonable_on_random () =
  let rng = Rng.create 47 in
  for _ = 1 to 10 do
    let g = Generators.gnp_connected ~rng 20 0.4 in
    let lambda = lambda_of g in
    let r = Su.run ~rng ~epsilon:0.3 g in
    check_bool
      (Printf.sprintf "su %d within 2λ=%d" r.Su.value (2 * lambda))
      true
      (r.Su.value >= lambda && r.Su.value <= max (2 * lambda) (lambda + 2))
  done

(* ---- Api -------------------------------------------------------------- *)

let test_api_all_algorithms_verify () =
  let g = Generators.torus 4 4 in
  List.iter
    (fun alg ->
      let s = Api.min_cut ~params:Params.fast ~algorithm:alg g in
      check_bool (Api.algorithm_name alg ^ " verifies") true (Api.verify g s);
      check_bool (Api.algorithm_name alg ^ " rounds > 0") true (s.Api.rounds > 0))
    [ Api.Exact_small_lambda; Api.Exact_two_respect; Api.Approx 0.5;
      Api.Ghaffari_kuhn 0.5; Api.Su 0.5 ]

let test_api_default_exact () =
  let g = Generators.ring 8 in
  let s = Api.min_cut ~params:Params.fast g in
  check_int "default exact" 2 s.Api.value

let test_api_seed_determinism () =
  let g = Generators.torus 4 4 in
  let a = Api.min_cut ~params:Params.fast ~algorithm:(Api.Approx 0.4) ~seed:9 g in
  let b = Api.min_cut ~params:Params.fast ~algorithm:(Api.Approx 0.4) ~seed:9 g in
  check_int "same seed same value" a.Api.value b.Api.value;
  check_int "same rounds" a.Api.rounds b.Api.rounds

let test_api_verify_rejects_lies () =
  let g = Generators.ring 6 in
  let s = Api.min_cut ~params:Params.fast g in
  let lie = { s with Api.value = s.Api.value + 1 } in
  check_bool "lie detected" false (Api.verify g lie)

let test_approx_statistical () =
  (* 15 seeds on a planted λ=5 instance: every run must stay within the
     (1+ε) guarantee (+1 additive slack for the w.h.p. statement) *)
  let epsilon = 0.4 in
  let g = Generators.planted_cut ~rng:(Rng.create 77) ~n:96 ~cut_edges:5 ~p_in:0.5 () in
  let lambda = lambda_of g in
  for seed = 1 to 15 do
    let r = Approx.run ~params:Params.fast ~trees:16 ~rng:(Rng.create seed) ~epsilon g in
    check_bool
      (Printf.sprintf "seed %d: %d within (1+ε)λ" seed r.Approx.value)
      true
      (r.Approx.value >= lambda
      && float_of_int r.Approx.value <= ((1.0 +. epsilon) *. float_of_int lambda) +. 1.0)
  done

let test_exact_cost_breakdown_has_leader () =
  let g = Generators.ring 12 in
  let r = Exact.run g in
  check_bool "leader election charged" true
    (List.exists
       (fun (l, _) -> String.length l >= 6 && String.sub l 0 6 = "leader")
       (Cost.breakdown r.Exact.cost))

let qcheck_tests =
  [
    qtest ~count:40 "exact = stoer-wagner (random)" (arbitrary_connected ~max_n:12 ())
      (fun g ->
        (Exact.run ~params:Params.fast g).Exact.value = lambda_of g);
    qtest ~count:30 "three-way agreement: 1-respect = 2-respect = stoer-wagner"
      (arbitrary_connected ~max_n:11 ())
      (fun g ->
        let sw = lambda_of g in
        (Exact.run ~params:Params.fast g).Exact.value = sw
        && (Mincut_core.Two_respect.min_cut ~params:Params.fast g)
             .Mincut_core.Two_respect.value = sw);
    qtest ~count:25 "gk within [λ, (2+ε)λ] (random)" (arbitrary_connected ~max_n:12 ())
      (fun g ->
        let lambda = lambda_of g in
        let r = Ghaffari_kuhn.run ~epsilon:0.3 g in
        r.Ghaffari_kuhn.value >= lambda
        && float_of_int r.Ghaffari_kuhn.value <= 2.3 *. float_of_int lambda);
    qtest ~count:25 "su returns genuine cuts" (arbitrary_connected ~max_n:12 ())
      (fun g ->
        let rng = Rng.create 11 in
        let r = Su.run ~rng ~epsilon:0.5 g in
        Graph.cut_of_bitset g r.Su.side = r.Su.value && r.Su.value >= lambda_of g);
  ]

let suite =
  [
    tc "exact: known families" test_exact_known_families;
    tc "exact: weighted" test_exact_weighted;
    tc "exact: full small suite" test_exact_small_suite;
    tc "exact: disconnected" test_exact_disconnected;
    tc "exact: planted λ sweep" test_exact_planted_lambda_sweep;
    tc "exact: cost includes packing" test_exact_cost_includes_packing;
    tc "exact: more trees never worse" test_exact_more_trees_never_worse;
    tc "approx: quality on known families" test_approx_quality_known;
    tc "approx: degenerates to exact for tiny λ" test_approx_small_cut_degenerates_to_exact;
    tc "approx: rejects bad epsilon" test_approx_rejects_bad_epsilon;
    tc "gk: (2+ε) guarantee on known families" test_gk_guarantee_known;
    tc "gk: guarantee on random graphs" test_gk_guarantee_random;
    tc "gk: few iterations" test_gk_iterations_logarithmic;
    tc "su: valid cuts on known families" test_su_valid_cut_known;
    tc "su: finds bridges exactly" test_su_finds_bridges_exactly;
    tc "su: reasonable on random graphs" test_su_reasonable_on_random;
    tc "api: all algorithms verify" test_api_all_algorithms_verify;
    tc "api: default exact" test_api_default_exact;
    tc "api: seed determinism" test_api_seed_determinism;
    tc "api: verify rejects lies" test_api_verify_rejects_lies;
    tc_slow "approx: statistical guarantee over seeds" test_approx_statistical;
    tc "exact: leader election in the bill" test_exact_cost_breakdown_has_leader;
  ]
  @ qcheck_tests
