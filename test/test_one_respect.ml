open Test_helpers
module One_respect = Mincut_core.One_respect
module One_respect_seq = Mincut_core.One_respect_seq
module Params = Mincut_core.Params
module Cost = Mincut_congest.Cost

let trees_of g =
  (* a few structurally different spanning trees of g *)
  let bfs = Tree.bfs_tree g ~root:0 in
  let kruskal = Tree.of_edge_ids g ~root:0 (Mincut_graph.Mst_seq.kruskal g) in
  let last_root = Tree.bfs_tree g ~root:(Graph.n g - 1) in
  [ ("bfs", bfs); ("mst", kruskal); ("bfs-from-last", last_root) ]

let test_seq_matches_naive () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (tname, tree) ->
          let r = One_respect_seq.run g tree in
          let naive = One_respect_seq.naive_cuts g tree in
          check_bool (Printf.sprintf "%s/%s cuts" name tname) true (r.One_respect_seq.cuts = naive))
        (trees_of g))
    (small_connected_graphs ())

let test_seq_root_cut_zero () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let r = One_respect_seq.run g tree in
      check_int (name ^ " C(root↓)=0") 0 r.One_respect_seq.cuts.(0))
    (small_connected_graphs ())

let test_seq_best_is_min () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let r = One_respect_seq.run g tree in
      let min_nonroot = ref max_int in
      Array.iteri
        (fun v c -> if v <> 0 then min_nonroot := min !min_nonroot c)
        r.One_respect_seq.cuts;
      check_int (name ^ " best") !min_nonroot r.One_respect_seq.best_value)
    (small_connected_graphs ())

let test_seq_side_consistent () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let r = One_respect_seq.run g tree in
      let side = One_respect_seq.side_of tree r.One_respect_seq.best_node in
      check_int (name ^ " side value") r.One_respect_seq.best_value
        (Graph.cut_of_bitset g side))
    (small_connected_graphs ())

let test_seq_karger_identity () =
  (* δ↓ − 2ρ↓ decomposition is internally consistent *)
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let r = One_respect_seq.run g tree in
      (* at the root: δ↓ = 2W and ρ↓ = W *)
      let w = Graph.total_weight g in
      check_int (name ^ " δ↓(root)=2W") (2 * w) r.One_respect_seq.delta_down.(0);
      check_int (name ^ " ρ↓(root)=W") w r.One_respect_seq.rho_down.(0);
      (* ρ sums to W *)
      check_int (name ^ " Σρ=W") w (Array.fold_left ( + ) 0 r.One_respect_seq.rho))
    (small_connected_graphs ())

let test_distributed_matches_seq () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (tname, tree) ->
          let seq = One_respect_seq.run g tree in
          let dist = One_respect.run g tree in
          check_bool
            (Printf.sprintf "%s/%s dist cuts = seq cuts" name tname)
            true
            (dist.One_respect.cuts = seq.One_respect_seq.cuts);
          check_int (name ^ " best value") seq.One_respect_seq.best_value
            dist.One_respect.best_value)
        (trees_of g))
    (small_connected_graphs ())

let test_lca_by_fragments_matches_oracle () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (tname, tree) ->
          let oracle = Tree.Lca.build tree in
          let results = One_respect.lca_by_fragments g tree in
          Array.iteri
            (fun i (z, case, items) ->
              let e = Graph.edge g i in
              check_int
                (Printf.sprintf "%s/%s edge %d lca (case %d)" name tname i case)
                (Tree.Lca.query oracle e.Graph.u e.Graph.v)
                z;
              check_bool "items non-negative" true (items >= 0))
            results)
        (trees_of g))
    (small_connected_graphs ())

let test_lca_cases_all_exercised () =
  (* a deep grid: its BFS tree splits into several fragments, so edges
     land in all three LCA cases *)
  let g = Generators.grid 16 16 in
  let tree = Tree.bfs_tree g ~root:0 in
  let results = One_respect.lca_by_fragments g tree in
  let count c = Array.fold_left (fun a (_, c', _) -> if c' = c then a + 1 else a) 0 results in
  check_bool "case1 seen" true (count 1 > 0);
  check_bool "case2 or case3 seen" true (count 2 + count 3 > 0)

let test_stats_sqrt_bounds () =
  let rng = Mincut_util.Rng.create 23 in
  List.iter
    (fun n ->
      let g = Generators.gnp_connected ~rng n (8.0 *. log (float_of_int n) /. float_of_int n) in
      let tree = Tree.bfs_tree g ~root:0 in
      let r = One_respect.run g tree in
      let s = r.One_respect.stats in
      let sqrt_n = int_of_float (ceil (sqrt (float_of_int n))) in
      check_bool
        (Printf.sprintf "n=%d fragments %d <= sqrt + 1" n s.One_respect.fragment_count)
        true
        (s.One_respect.fragment_count <= sqrt_n + 1);
      check_bool "fragment height" true (s.One_respect.max_fragment_height <= sqrt_n);
      check_bool
        (Printf.sprintf "merging %d < fragments" s.One_respect.merging_count)
        true
        (s.One_respect.merging_count <= s.One_respect.fragment_count);
      check_bool "tf_prime O(sqrt n)" true
        (s.One_respect.tf_prime_size <= (2 * sqrt_n) + 2))
    [ 64; 100; 196 ]

let has_prefix prefix l =
  String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

let test_cost_has_all_steps () =
  let g = Generators.grid 6 6 in
  let tree = Tree.bfs_tree g ~root:0 in
  let r = One_respect.run g tree in
  (* the span tree exposes the paper's five numbered phases at top level *)
  let spans = r.One_respect.cost.Cost.spans in
  check_int "five phase spans" 5 (List.length spans);
  List.iteri
    (fun i (s : Cost.span) ->
      let want = Printf.sprintf "Step %d:" (i + 1) in
      check_bool (want ^ " label") true (has_prefix want s.Cost.label);
      check_bool (want ^ " has children") true (s.Cost.children <> []);
      check_bool (want ^ " provenance named") true
        (List.exists
           (String.equal (Cost.provenance_name s.Cost.provenance))
           [ "executed"; "scheduled"; "charged" ]))
    spans;
  check_int "phase rounds sum to total" r.One_respect.cost.Cost.rounds
    (List.fold_left (fun acc (s : Cost.span) -> acc + s.Cost.rounds) 0 spans);
  (* the flat view still carries every pre-refactor leaf label *)
  let labels = List.map fst (Cost.breakdown r.One_respect.cost) in
  List.iter
    (fun prefix ->
      check_bool (prefix ^ " present") true (List.exists (has_prefix prefix) labels))
    [ "bfs-tree"; "step1"; "step2"; "step3"; "step4"; "step5"; "finish" ];
  check_bool "rounds positive" true (r.One_respect.cost.Cost.rounds > 0)

let test_fast_params_same_answer () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let a = One_respect.run ~params:Params.default g tree in
      let b = One_respect.run ~params:Params.fast g tree in
      check_bool (name ^ " fast = real answers") true
        (a.One_respect.cuts = b.One_respect.cuts))
    (small_connected_graphs ())

let test_rounds_scale_sublinearly () =
  (* the measured rounds must grow far slower than n on a low-diameter
     family: ratio rounds/n should drop as n quadruples *)
  let rng = Mincut_util.Rng.create 5 in
  let rounds n =
    let g = Generators.gnp_connected ~rng n (8.0 *. log (float_of_int n) /. float_of_int n) in
    let tree = Tree.bfs_tree g ~root:0 in
    (One_respect.run ~params:Params.fast g tree).One_respect.cost.Cost.rounds
  in
  let r64 = rounds 64 and r1024 = rounds 1024 in
  let ratio = float_of_int r1024 /. float_of_int r64 in
  check_bool
    (Printf.sprintf "rounds(1024)/rounds(64) = %.1f < 8 (vs 16 for linear)" ratio)
    true (ratio < 8.0)

let test_params_formulas () =
  check_int "log* 2" 1 (Params.log_star 2);
  check_int "log* 16" 3 (Params.log_star 16);
  check_int "log* 65536" 4 (Params.log_star 65536);
  check_bool "kp monotone in n" true
    (Params.kp_mst_rounds Params.default ~n:1024 ~diameter:10
    > Params.kp_mst_rounds Params.default ~n:256 ~diameter:10);
  check_bool "kp linear in D" true
    (Params.kp_mst_rounds Params.default ~n:256 ~diameter:100
     - Params.kp_mst_rounds Params.default ~n:256 ~diameter:0
    = 100);
  check_int "sqrt target" 32 (Params.sqrt_target ~n:1024)

let test_lca_cases_partition_edges () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let rs = One_respect.lca_by_fragments g tree in
      check_int (name ^ " one case per edge") (Graph.m g) (Array.length rs);
      Array.iter
        (fun (_, case, _) ->
          check_bool (name ^ " case in 1..3") true (case >= 1 && case <= 3))
        rs)
    (small_connected_graphs ())

let test_target_override_changes_structure () =
  let g = Generators.grid 8 8 in
  let tree = Tree.bfs_tree g ~root:0 in
  let small = One_respect.run ~params:Params.fast ~target:2 g tree in
  let large = One_respect.run ~params:Params.fast ~target:64 g tree in
  check_bool "more fragments at small target" true
    (small.One_respect.stats.One_respect.fragment_count
    > large.One_respect.stats.One_respect.fragment_count);
  check_bool "same cuts regardless" true
    (small.One_respect.cuts = large.One_respect.cuts)

let test_soak_larger_instances () =
  (* a heavier differential pass at sizes where the fragment machinery is
     non-trivial: distributed knowledge = sequential reference, fragment
     LCA = oracle, on 10 mixed instances up to n = 150 *)
  let rng = Mincut_util.Rng.create 20140715 in
  let instances =
    [
      Generators.grid 10 12;
      Generators.torus 11 11;
      Generators.path_of_cliques ~clique:6 ~length:20;
      Generators.spider ~legs:10 ~leg_length:12;
      Generators.gnp_connected ~rng 150 0.05;
      Generators.gnp_connected ~rng ~weights:{ Generators.wmin = 1; wmax = 9 } 120 0.07;
      Generators.random_regular ~rng 120 4;
      Generators.planted_cut ~rng ~n:140 ~cut_edges:4 ~p_in:0.2 ();
      Generators.random_tree ~rng 150;
      Generators.hypercube 7;
    ]
  in
  List.iteri
    (fun i g ->
      let tree = Tree.bfs_tree g ~root:(Graph.n g / 3) in
      let seq = One_respect_seq.run g tree in
      let dist = One_respect.run ~params:Params.default g tree in
      check_bool (Printf.sprintf "soak %d cuts agree" i) true
        (dist.One_respect.cuts = seq.One_respect_seq.cuts);
      let oracle = Tree.Lca.build tree in
      Array.iteri
        (fun j (z, _, _) ->
          let e = Graph.edge g j in
          if Tree.Lca.query oracle e.Graph.u e.Graph.v <> z then
            Alcotest.failf "soak %d: lca mismatch on edge %d" i j)
        (One_respect.lca_by_fragments g tree))
    instances

let qcheck_tests =
  [
    qtest ~count:60 "dist = seq on random graphs and trees" (arbitrary_connected ())
      (fun g ->
        let tree = Tree.bfs_tree g ~root:(Graph.n g / 2) in
        let seq = One_respect_seq.run g tree in
        let dist = One_respect.run ~params:Params.fast g tree in
        dist.One_respect.cuts = seq.One_respect_seq.cuts);
    qtest ~count:60 "paper lca = oracle lca" (arbitrary_connected ())
      (fun g ->
        let tree = Tree.bfs_tree g ~root:0 in
        let oracle = Tree.Lca.build tree in
        let rs = One_respect.lca_by_fragments g tree in
        let ok = ref true in
        Array.iteri
          (fun i (z, _, _) ->
            let e = Graph.edge g i in
            if Tree.Lca.query oracle e.Graph.u e.Graph.v <> z then ok := false)
          rs;
        !ok);
    qtest ~count:60 "1-respecting min >= true min cut" (arbitrary_connected ())
      (fun g ->
        let tree = Tree.bfs_tree g ~root:0 in
        let r = One_respect_seq.run g tree in
        let lambda = (Mincut_graph.Stoer_wagner.run g).Mincut_graph.Stoer_wagner.value in
        r.One_respect_seq.best_value >= lambda);
  ]

let suite =
  [
    tc "seq: matches naive cut evaluation" test_seq_matches_naive;
    tc "seq: root cut is zero" test_seq_root_cut_zero;
    tc "seq: best is the min" test_seq_best_is_min;
    tc "seq: side consistent" test_seq_side_consistent;
    tc "seq: Karger identity sanity" test_seq_karger_identity;
    tc "dist: matches sequential reference" test_distributed_matches_seq;
    tc "dist: fragment LCA matches oracle" test_lca_by_fragments_matches_oracle;
    tc "dist: all LCA cases exercised" test_lca_cases_all_exercised;
    tc "dist: O(sqrt n) structure bounds" test_stats_sqrt_bounds;
    tc "dist: cost breakdown covers all steps" test_cost_has_all_steps;
    tc "dist: fast params give same answers" test_fast_params_same_answer;
    tc_slow "dist: rounds scale sublinearly" test_rounds_scale_sublinearly;
    tc "params: formulas" test_params_formulas;
    tc "dist: lca cases partition the edges" test_lca_cases_partition_edges;
    tc "dist: target override" test_target_override_changes_structure;
    tc_slow "dist: soak on larger mixed instances" test_soak_larger_instances;
  ]
  @ qcheck_tests
