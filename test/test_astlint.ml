(* AST analysis tier: parsing, call graph, effect lattice, allocation
   budgets, static races, and token/AST agreement. *)

open Test_helpers
module Lint = Mincut_analysis.Lint
module Srcread = Mincut_analysis.Srcread
module Callgraph = Mincut_analysis.Callgraph
module Effects = Mincut_analysis.Effects
module Allocheck = Mincut_analysis.Allocheck
module Exnflow = Mincut_analysis.Exnflow
module Resguard = Mincut_analysis.Resguard
module Astlint = Mincut_analysis.Astlint
module Stats = Mincut_util.Stats

let parse ?(file = "fixture.ml") src =
  match Srcread.parse_string ~file src with
  | Ok s -> s
  | Error e -> Alcotest.failf "fixture does not parse: %s (%d:%d)" e.Srcread.reason e.Srcread.eline e.Srcread.ecol

let hazard_rules src =
  List.map (fun f -> f.Lint.rule) (Astlint.hazards (parse src))

(* ---- hazards: scope-aware ports of the token rules --------------------- *)

let test_hazards_fire () =
  check_bool "hashtbl-hash" true
    (hazard_rules "let f x = Hashtbl.hash x" = [ "hashtbl-hash" ]);
  check_bool "poly-compare" true
    (hazard_rules "let c = compare 1 2" = [ "poly-compare" ]);
  check_bool "qualified poly-compare" true
    (hazard_rules "let c = Stdlib.compare 1 2" = [ "poly-compare" ]);
  check_bool "poly-equal section" true
    (hazard_rules "let mem xs x = List.exists (( = ) x) xs" = [ "poly-equal" ]);
  check_bool "unseeded random" true
    (hazard_rules "let r = Random.int 5" = [ "unseeded-random" ]);
  check_bool "obj magic" true
    (hazard_rules "let x = Obj.magic 0" = [ "obj-magic" ]);
  check_bool "catch-all" true
    (hazard_rules "let x = try f () with _ -> 0" = [ "catchall-exn" ]);
  check_bool "bare mutex" true
    (hazard_rules "let m = Mutex.create ()" = [ "bare-mutex" ]);
  check_bool "list-nth" true
    (hazard_rules "let x xs = List.nth xs 3" = [ "list-nth" ]);
  check_bool "float comparison" true
    (hazard_rules "let b x = x = 2.5" = [ "float-equal" ])

let test_hazards_scope_aware () =
  (* the binding shapes the token tier needs lookbehind heuristics for
     are simply not applications in the Parsetree *)
  check_bool "float binding" true (hazard_rules "let x = 2.5" = []);
  check_bool "float binding with params" true
    (hazard_rules "let f () = 2.5" = []);
  check_bool "rec float binding" true
    (hazard_rules "let rec scale x = 0.5" = []);
  check_bool "record field float" true
    (hazard_rules "let r = { slack = 2.5 }" = []);
  check_bool "optional default float" true
    (hazard_rules "let f ?(eps = 1e-9) () = eps" = []);
  check_bool "comparison still fires" true
    (hazard_rules "let b x = if x = 2.5 then 1 else 0" = [ "float-equal" ]);
  check_bool "defining compare is fine" true
    (hazard_rules "let compare a b = Int.compare a b" = []);
  check_bool "punned ~compare label is fine" true
    (hazard_rules "let s compare xs = sort ~compare xs" = []);
  check_bool "typed comparator ascription is fine" true
    (hazard_rules "let c = (compare : int -> int -> int)" = []);
  check_bool "strings don't trip" true
    (hazard_rules {|let s = "Obj.magic compare Random.bool"|} = []);
  check_bool "match wildcard is fine" true
    (hazard_rules "let f x = match x with _ -> 0" = [])

(* ---- token/AST agreement ----------------------------------------------- *)

let agreement_fixtures =
  [
    "let f x = Hashtbl.hash x";
    "let c = compare 1 2";
    "let mem xs x = List.exists (( = ) x) xs";
    "let r = Random.int 5";
    "let x = Obj.magic 0";
    "let x = try f () with _ -> 0";
    "let m = Mutex.create ()";
    "let x xs = List.nth xs 3";
    "let b x = x = 2.5";
    "let b x = if x = 2.5 then 1 else 0";
    "let x = 2.5";
    "let f () = 2.5";
    "let rec scale x = 0.5";
    "let r = { slack = 2.5 }";
    "let f ?(eps = 1e-9) () = eps";
    "let compare a b = Int.compare a b";
    "let xs ys = List.sort Int.compare ys";
    "let m xs = sort ~compare:Int.compare xs";
    "let f x = match x with _ -> 0";
    "let x = try f () with Not_found -> 0";
    "(* Random.int in a comment *) let x = 1";
    "let pi = 4.0 *. atan 1.0\nlet area r = pi *. r *. r";
  ]

let test_agreement_fixtures () =
  List.iter
    (fun src ->
      match Astlint.agreement ~file:"fixture.ml" src with
      | [] -> ()
      | ds ->
          Alcotest.failf "tiers disagree on %S: %s" src
            (String.concat ", "
               (List.map
                  (fun (d : Astlint.disagreement) ->
                    Printf.sprintf "%s-only %s:%d" d.Astlint.tier
                      d.Astlint.drule d.Astlint.dline)
                  ds)))
    agreement_fixtures

let repo_sources () =
  (* tests run in _build/default/test; dune stages the sources one
     level up.  Absent staging (odd sandboxes), make no claim. *)
  let roots = List.filter Sys.file_exists [ "../lib"; "../bin" ] in
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry ->
          if String.length entry > 0 && entry.[0] = '.' then acc
          else walk acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.fold_left walk [] roots |> List.sort String.compare

let test_agreement_on_repo () =
  match repo_sources () with
  | [] -> ()
  | files ->
      List.iter
        (fun file ->
          let src =
            In_channel.with_open_text file In_channel.input_all
          in
          match Astlint.agreement ~file src with
          | [] -> ()
          | ds ->
              Alcotest.failf "tiers disagree on %s: %s" file
                (String.concat ", "
                   (List.map
                      (fun (d : Astlint.disagreement) ->
                        Printf.sprintf "%s-only %s:%d" d.Astlint.tier
                          d.Astlint.drule d.Astlint.dline)
                      ds)))
        files

let test_repo_is_clean () =
  match repo_sources () with
  | [] -> ()
  | _ ->
      let r = Astlint.run [ "../lib"; "../bin" ] in
      check_bool "repo parses" true (r.Astlint.parse_errors = []);
      (* the only accepted findings are bare-mutex inside Lockcheck
         itself (the ranked-lock mechanism) and inside the parallel
         pool (below the analysis layer, so it cannot use Lockcheck;
         its runtime/deque mutexes are justified in DESIGN.md §14) —
         both allowlisted in .mincut-ast-allow *)
      List.iter
        (fun (f : Lint.finding) ->
          let basename = Filename.basename f.Lint.file in
          let in_parallel =
            Filename.basename (Filename.dirname f.Lint.file) = "parallel"
          in
          if
            not
              (f.Lint.rule = "bare-mutex"
              && (basename = "lockcheck.ml"
                 || (basename = "pool.ml" && in_parallel)))
          then
            Alcotest.failf "unexpected finding %s:%d %s: %s" f.Lint.file
              f.Lint.line f.Lint.rule f.Lint.message)
        (Astlint.findings r)

(* ---- effects ----------------------------------------------------------- *)

let classify_fixture src =
  let cg = Callgraph.build [ parse src ] in
  let info = Effects.classify cg in
  List.map
    (fun (d : Callgraph.def) ->
      ( d.Callgraph.id,
        match Hashtbl.find_opt info d.Callgraph.id with
        | Some (i : Effects.info) -> Effects.cls_name i.Effects.cls
        | None -> "?" ))
    (Callgraph.defs_in_order cg)

let test_effect_lattice () =
  let classes =
    classify_fixture
      {|
let pure_add a b = a + b
let counter = ref 0
let bump () = counter := !counter + 1
let clocky () = Unix.gettimeofday ()
let seeded st = Random.State.int st 5
let calls_pure x = pure_add x 1
let calls_bump x = bump (); x
let calls_clock x = x +. clocky ()
|}
  in
  let cls id = List.assoc ("Fixture." ^ id) classes in
  check_bool "pure" true (cls "pure_add" = "pure");
  check_bool "global access is global-mutable" true
    (cls "bump" = "global-mutable");
  check_bool "clock is clock-random-io" true (cls "clocky" = "clock-random-io");
  check_bool "seeded Random.State is deterministic-stateful" true
    (cls "seeded" = "deterministic-stateful");
  check_bool "pure propagates" true (cls "calls_pure" = "pure");
  check_bool "global propagates" true (cls "calls_bump" = "global-mutable");
  check_bool "clock propagates" true (cls "calls_clock" = "clock-random-io")

let test_effect_annotation_pins () =
  let classes =
    classify_fixture
      {|
let noisy_debug x = (Printf.eprintf "dbg"; x) [@@mincut.effect "pure"]
let caller x = noisy_debug x
|}
  in
  check_bool "annotation pins the def" true
    (List.assoc "Fixture.noisy_debug" classes = "pure");
  check_bool "callers inherit the pinned class" true
    (List.assoc "Fixture.caller" classes = "pure")

(* classification is a function of the syntax, not of the concrete
   layout: pretty-printing the Parsetree and re-parsing must classify
   every def identically *)
let effect_pool =
  [|
    "let pure_add a b = a + b";
    "let shared = ref 0";
    "let bump () = shared := !shared + 1";
    "let clocky () = Unix.gettimeofday ()";
    "let seeded st = Random.State.int st 5";
    "let table = Hashtbl.create 8";
    "let touch k = Hashtbl.replace table k k";
    "let compose x = pure_add x (pure_add x 1)";
    "let noisy () = print_endline \"x\"";
    "let maybe_bump b = if b then bump () else ()";
  |]

let test_effects_stable_under_reparse =
  qtest ~count:60 "effects: classification stable under re-parse"
    QCheck2.Gen.(
      list_size (int_range 1 (Array.length effect_pool))
        (int_range 0 (Array.length effect_pool - 1)))
    (fun picks ->
      let src =
        String.concat "\n"
          (List.map (fun i -> effect_pool.(i)) (List.sort_uniq Int.compare picks))
      in
      let parsed = parse src in
      let printed = Pprintast.string_of_structure parsed.Srcread.ast in
      classify_fixture src = classify_fixture printed)

(* ---- allocation budgets ------------------------------------------------ *)

let test_allocheck_counts () =
  let cg =
    Callgraph.build
      [
        parse
          {|
let p =
  {
    initial = (fun _ -> 0);
    step = (fun s _ -> let t = (s, s) in [ fst t ]);
  }
|};
      ]
  in
  match Allocheck.targets cg with
  | [ t ] ->
      check_bool "target id" true (t.Allocheck.tid = "Fixture.p.step");
      (* tuple + cons; the handler's own lambda is not a per-round
         site, and the cons-cell pair is one block *)
      check_int "sites" 2 (List.length t.Allocheck.sites)
  | ts -> Alcotest.failf "expected 1 target, got %d" (List.length ts)

let test_allocheck_error_path_free () =
  let cg =
    Callgraph.build
      [
        parse
          {|
let p =
  {
    initial = (fun _ -> 0);
    step = (fun s _ -> if s < 0 then failwith (Printf.sprintf "bad %d" s) else s);
  }
|};
      ]
  in
  match Allocheck.targets cg with
  | [ t ] -> check_int "error-path printf is free" 0 (List.length t.Allocheck.sites)
  | ts -> Alcotest.failf "expected 1 target, got %d" (List.length ts)

(* ---- exception flow ----------------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let exn_check src = Exnflow.check (Callgraph.build [ parse src ])

let test_exnflow_boundary_leak () =
  let _, findings =
    exn_check
      {|
let risky table key = Hashtbl.find table key

let dispatch table key = risky table key [@@mincut.boundary "serve-total"]
|}
  in
  match findings with
  | [ f ] ->
      check_bool "rule" true (f.Lint.rule = "exn-escape");
      check_bool "file" true (f.Lint.file = "fixture.ml");
      (* the finding lands on the intrinsic Hashtbl.find, not the boundary *)
      check_int "line" 2 f.Lint.line;
      check_bool "names the exception" true
        (contains ~sub:"Not_found" f.Lint.message);
      check_bool "witness chain root-to-leaf" true
        (contains ~sub:"Fixture.dispatch -> Fixture.risky" f.Lint.message)
  | fs -> Alcotest.failf "expected 1 exn finding, got %d" (List.length fs)

let test_exnflow_handlers_subtract () =
  let _, by_try =
    exn_check
      {|
let risky table key = try Hashtbl.find table key with Not_found -> 0

let dispatch table key = risky table key [@@mincut.boundary "serve-total"]
|}
  in
  check_int "try subtracts" 0 (List.length by_try);
  let _, by_match =
    exn_check
      {|
let risky table key =
  match Hashtbl.find table key with
  | v -> v
  | exception Not_found -> 0

let dispatch table key = risky table key [@@mincut.boundary "serve-total"]
|}
  in
  check_int "match-exception subtracts" 0 (List.length by_match);
  (* a guarded handler proves nothing: the guard may decline *)
  let _, guarded =
    exn_check
      {|
let risky table key =
  try Hashtbl.find table key with Not_found when key > 0 -> 0

let dispatch table key = risky table key [@@mincut.boundary "serve-total"]
|}
  in
  check_int "guarded handler does not subtract" 1 (List.length guarded)

let test_exnflow_pins () =
  (* an empty pin discharges the inferred raise *)
  let _, silenced =
    exn_check
      {|
let risky table key = Hashtbl.find table key [@@mincut.raises ""]

let dispatch table key = risky table key [@@mincut.boundary "serve-total"]
|}
  in
  check_int "empty pin silences" 0 (List.length silenced);
  (* a non-empty pin propagates even when the body raises nothing *)
  let _, propagated =
    exn_check
      {|
let wait_for_peer () = 0 [@@mincut.raises "Timeout"]

let dispatch () = wait_for_peer () [@@mincut.boundary "serve-total"]
|}
  in
  match propagated with
  | [ f ] ->
      check_bool "pinned exn surfaces" true
        (contains ~sub:"Timeout" f.Lint.message);
      check_bool "pin provenance" true
        (contains ~sub:"pinned [@mincut.raises]" f.Lint.message)
  | fs -> Alcotest.failf "expected 1 pin finding, got %d" (List.length fs)

let test_exnflow_unknown_boundary () =
  let _, findings =
    exn_check {|
let dispatch () = 0 [@@mincut.boundary "serve-partial"]
|}
  in
  match findings with
  | [ f ] ->
      check_bool "unknown policy is loud" true
        (contains ~sub:"unknown [@mincut.boundary" f.Lint.message)
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

let test_exnflow_external_table () =
  check_bool "Hashtbl.find raises Not_found" true
    (Exnflow.external_raises "Hashtbl.find" = [ "Not_found" ]);
  check_bool "gettimeofday is safe" true
    (Exnflow.external_raises "Unix.gettimeofday" = []);
  check_bool "openfile raises Unix_error" true
    (Exnflow.external_raises "Unix.openfile" = [ "Unix_error" ])

(* ---- resource brackets -------------------------------------------------- *)

let res_check src = Resguard.check (Callgraph.build [ parse src ])

let test_resguard_leak () =
  let _, findings =
    res_check
      {|
let slurp path =
  let ic = open_in_bin path in
  really_input_string ic (in_channel_length ic)
|}
  in
  match findings with
  | [ f ] ->
      check_bool "rule" true (f.Lint.rule = "resource-leak");
      check_int "acquisition line" 3 f.Lint.line;
      check_bool "names the acquisition" true
        (contains ~sub:"open_in_bin" f.Lint.message)
  | fs -> Alcotest.failf "expected 1 leak, got %d" (List.length fs)

let test_resguard_unbound_acquisition () =
  let _, findings = res_check {|
let peek path = input_line (open_in path)
|} in
  check_int "unbound acquisition is a finding" 1 (List.length findings)

let test_resguard_bracket_negative () =
  let summary, findings =
    res_check
      {|
let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
|}
  in
  check_int "bracketed acquisition is clean" 0 (List.length findings);
  check_int "checked" 1 summary.Resguard.acquisitions_checked;
  check_int "bracketed" 1 summary.Resguard.bracketed

let test_resguard_transfer_negative () =
  let _, findings =
    res_check
      {|
let register tbl path =
  let ic = open_in_bin path in
  Hashtbl.replace tbl path ic
|}
  in
  check_int "ownership transfer is clean" 0 (List.length findings)

(* ---- seeded defects ---------------------------------------------------- *)

let test_inject_seeds_fire () =
  List.iter
    (fun (seed, (file, src, rule)) ->
      let r = Astlint.analyze ([ parse ~file src ], []) in
      match
        List.filter (fun (f : Lint.finding) -> f.Lint.rule = rule)
          (Astlint.findings r)
      with
      | [] -> Alcotest.failf "seed %s did not trigger %s" seed rule
      | f :: _ ->
          check_bool
            (Printf.sprintf "%s provenance file" seed)
            true (f.Lint.file = file);
          check_bool
            (Printf.sprintf "%s provenance line" seed)
            true (f.Lint.line > 1))
    Astlint.inject_seeds

let test_inject_provenance_lines () =
  (* pin the exact defect lines so provenance regressions are loud:
     nondet's clock call is on seed line 5, alloc's program record opens
     on line 3, race's unguarded write is on line 4, exnleak's
     Hashtbl.find is on line 2, fdleak's open_in_bin is on line 3 *)
  let line_of seed =
    let file, src, rule =
      List.assoc seed Astlint.inject_seeds
    in
    let r = Astlint.analyze ([ parse ~file src ], []) in
    match
      List.filter (fun (f : Lint.finding) -> f.Lint.rule = rule)
        (Astlint.findings r)
    with
    | f :: _ -> f.Lint.line
    | [] -> Alcotest.failf "seed %s silent" seed
  in
  check_int "nondet line" 5 (line_of "nondet");
  check_int "alloc line" 3 (line_of "alloc");
  check_int "race line" 4 (line_of "race");
  check_int "exnleak line" 2 (line_of "exnleak");
  check_int "fdleak line" 3 (line_of "fdleak")

let test_domcheck_respects_guards () =
  let guarded =
    {|
let hits = ref 0
let lock = Lockcheck.create ~name:"t" ~order:1
let record_hit x = Lockcheck.with_lock lock (fun () -> hits := !hits + x)
let tally xs = Mincut_parallel.Pool.map (fun x -> record_hit x) xs
|}
  in
  let r = Astlint.analyze ([ parse ~file:"guarded.ml" guarded ], []) in
  check_bool "with_lock silences the race" true
    (List.for_all
       (fun (f : Lint.finding) -> f.Lint.rule <> "domain-race")
       (Astlint.findings r));
  let atomic =
    {|
let hits = Atomic.make 0
let record_hit x = Atomic.set hits (Atomic.get hits + x)
let tally xs = Mincut_parallel.Pool.map (fun x -> record_hit x) xs
|}
  in
  let r = Astlint.analyze ([ parse ~file:"atomic.ml" atomic ], []) in
  check_bool "atomics are safe" true
    (List.for_all
       (fun (f : Lint.finding) -> f.Lint.rule <> "domain-race")
       (Astlint.findings r))

(* ---- plumbing ---------------------------------------------------------- *)

let test_parse_error_finding () =
  let r = Astlint.analyze (Srcread.load_paths []) in
  check_bool "no phantom errors" true (r.Astlint.parse_errors = []);
  match Srcread.parse_string ~file:"broken.ml" "let x = (" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      let r = Astlint.analyze ([], [ e ]) in
      (match Astlint.findings r with
      | [ f ] ->
          check_bool "rule" true (f.Lint.rule = "parse-error");
          check_bool "file" true (f.Lint.file = "broken.ml")
      | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs))

let test_ast_allow_knows_new_rules () =
  check_bool "ast rules accepted" true
    (match
       Lint.Allow.of_lines ~known:Astlint.known_rule
         [ "step-effect lib/foo.ml:3"; "domain-race lib/bar.ml" ]
     with
    | Ok _ -> true
    | Error _ -> false);
  check_bool "token tier still rejects them" true
    (match Lint.Allow.of_lines [ "step-effect lib/foo.ml:3" ] with
    | Ok _ -> false
    | Error _ -> true)

let test_ast_allow_stale_entries () =
  (* the stale-suppression report (`note: unused allowlist entry ...` /
     JSON [allow_unused]) quotes [Allow.unused]'s raw lines verbatim:
     prove a matching new-family entry suppresses and a stale one
     surfaces exactly as written *)
  let _, findings =
    exn_check
      {|
let risky table key = Hashtbl.find table key

let dispatch table key = risky table key [@@mincut.boundary "serve-total"]
|}
  in
  check_bool "fixture leaks" true (findings <> []);
  match
    Lint.Allow.of_lines ~known:Astlint.known_rule
      [ "exn-escape fixture.ml:2"; "resource-leak lib/gone.ml:9" ]
  with
  | Error e -> Alcotest.fail e
  | Ok allow -> (
      check_int "matching entry suppresses" 0
        (List.length (Lint.Allow.filter allow findings));
      match Lint.Allow.unused allow findings with
      | [ raw ] ->
          check_bool "stale entry quoted verbatim" true
            (raw = "resource-leak lib/gone.ml:9")
      | l -> Alcotest.failf "expected 1 stale entry, got %d" (List.length l))

let test_peak_rss () =
  match Stats.peak_rss_kb () with
  | None -> () (* non-procfs platform: the bench records null *)
  | Some kb -> check_bool "peak rss positive" true (kb > 0)

let suite =
  [
    tc "hazards: every token rule has an AST port" test_hazards_fire;
    tc "hazards: binding contexts don't trip the AST tier"
      test_hazards_scope_aware;
    tc "agreement: fixtures" test_agreement_fixtures;
    tc "agreement: whole repo" test_agreement_on_repo;
    tc "repo analyzes clean" test_repo_is_clean;
    tc "effects: lattice and propagation" test_effect_lattice;
    tc "effects: annotations pin classes" test_effect_annotation_pins;
    test_effects_stable_under_reparse;
    tc "allocheck: counts sites, skips handler lambda" test_allocheck_counts;
    tc "allocheck: error paths are free" test_allocheck_error_path_free;
    tc "exnflow: boundary leak carries its witness" test_exnflow_boundary_leak;
    tc "exnflow: try and match-exception subtract" test_exnflow_handlers_subtract;
    tc "exnflow: raises pins discharge and propagate" test_exnflow_pins;
    tc "exnflow: unknown boundary policy is a finding"
      test_exnflow_unknown_boundary;
    tc "exnflow: curated externals table" test_exnflow_external_table;
    tc "resguard: unbracketed open leaks" test_resguard_leak;
    tc "resguard: unbound acquisition leaks" test_resguard_unbound_acquisition;
    tc "resguard: Fun.protect brackets" test_resguard_bracket_negative;
    tc "resguard: ownership transfer releases" test_resguard_transfer_negative;
    tc "inject: every seed fires its analyzer" test_inject_seeds_fire;
    tc "inject: provenance lands on the defect line"
      test_inject_provenance_lines;
    tc "domcheck: with_lock and Atomic silence the race"
      test_domcheck_respects_guards;
    tc "parse errors become findings" test_parse_error_finding;
    tc "allowlist: ast rule vocabulary" test_ast_allow_knows_new_rules;
    tc "allowlist: stale entries surface for deletion"
      test_ast_allow_stale_entries;
    tc "stats: peak rss readable" test_peak_rss;
  ]
