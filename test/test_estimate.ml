(* The sampling-ladder λ-estimator (Sample_estimate): the bracket must
   contain the exact minimum cut, the same seed must reproduce the same
   ladder bit-for-bit, and feeding the bracket back into the exact
   pipeline as a packing hint must prune the budget without ever
   changing the answer. *)

open Test_helpers
module E = Mincut_core.Sample_estimate
module Api = Mincut_core.Api
module Exact = Mincut_core.Exact
module Params = Mincut_core.Params
module Cost = Mincut_congest.Cost
module Graph = Mincut_graph.Graph

let bracket_holds ~seed g =
  let est = Api.estimate ~seed g in
  let exact = (Api.min_cut ~params:Params.fast g).Api.value in
  est.E.lower <= exact && exact <= est.E.upper

let test_bracket_torus () =
  List.iter
    (fun k ->
      List.iter
        (fun seed ->
          check_bool
            (Printf.sprintf "torus %dx%d seed %d inside bracket" k k seed)
            true
            (bracket_holds ~seed (Generators.torus k k)))
        [ 0; 1; 2 ])
    [ 4; 6; 8 ]

let test_bracket_gnp () =
  List.iter
    (fun gseed ->
      let g = Generators.gnp_connected ~rng:(Rng.create gseed) 32 0.2 in
      List.iter
        (fun seed ->
          check_bool
            (Printf.sprintf "gnp gseed %d seed %d inside bracket" gseed seed)
            true
            (bracket_holds ~seed g))
        [ 0; 5 ])
    [ 3; 12; 77 ]

let test_deterministic () =
  let g = Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3 in
  let a = Api.estimate ~seed:9 g and b = Api.estimate ~seed:9 g in
  check_bool "same seed, same ladder" true
    (a.E.estimate = b.E.estimate && a.E.lower = b.E.lower
    && a.E.upper = b.E.upper && a.E.level = b.E.level
    && a.E.levels_tried = b.E.levels_tried
    && a.E.saturated = b.E.saturated && Cost.equal a.E.cost b.E.cost)

let test_disconnected () =
  let g = Graph.of_array ~n:4 [| (0, 1, 1); (2, 3, 1) |] in
  let est = Api.estimate g in
  check_int "disconnected estimate is 0" 0 est.E.estimate;
  check_int "disconnected upper is 0" 0 est.E.upper;
  check_bool "no budget hint from a 0-cut" true (E.tree_budget_hint est = None)

let test_cost_grouped () =
  let est = Api.estimate (Generators.torus 6 6) in
  check_bool "positive simulated rounds" true (est.E.cost.Cost.rounds > 0);
  match est.E.cost.Cost.spans with
  | [ sp ] ->
      Alcotest.(check string)
        "one ladder span" "sampling λ-estimate ladder" sp.Cost.label;
      check_int "one child per level tried" est.E.levels_tried
        (List.length sp.Cost.children)
  | spans ->
      Alcotest.fail
        (Printf.sprintf "expected one top-level span, got %d" (List.length spans))

let test_budget_hint_prunes () =
  (* heavy weighted degrees around a λ=1 bottleneck: the degree bound
     (100) is loose, the sampling upper is tight enough to shrink the
     packing budget — and the answer must not move *)
  let g = Graph.of_array ~n:4 [| (0, 1, 100); (1, 2, 1); (2, 3, 100) |] in
  let est = Api.estimate g in
  check_bool "sampling bound beats the degree bound" true
    (est.E.upper < Exact.min_weighted_degree g);
  let full = Exact.run ~params:Params.fast g in
  let hinted = Exact.run ~params:Params.fast ~lambda_upper:est.E.upper g in
  check_int "hinted value unchanged" full.Exact.value hinted.Exact.value;
  check_int "exact value is the bottleneck" 1 hinted.Exact.value;
  check_bool "packing budget pruned" true
    (hinted.Exact.trees_used < full.Exact.trees_used)

let prop_bracket =
  qtest ~count:40 "estimator brackets the exact min cut"
    QCheck2.Gen.(pair (arbitrary_connected ~max_n:16 ()) (int_range 0 1_000))
    (fun (g, seed) -> bracket_holds ~seed g)

let prop_hint_preserves_answer =
  qtest ~count:25 "lambda_upper hint never changes the answer"
    QCheck2.Gen.(pair (arbitrary_connected ~max_n:12 ()) (int_range 0 1_000))
    (fun (g, seed) ->
      let est = Api.estimate ~seed g in
      let s = Api.min_cut ~params:Params.fast g in
      let h =
        match E.tree_budget_hint est with
        | Some upper -> Api.min_cut ~params:Params.fast ~lambda_upper:upper g
        | None -> Api.min_cut ~params:Params.fast g
      in
      s.Api.value = h.Api.value && Api.verify g h)

let suite =
  [
    tc "estimate: torus brackets hold" test_bracket_torus;
    tc "estimate: gnp brackets hold" test_bracket_gnp;
    tc "estimate: deterministic per seed" test_deterministic;
    tc "estimate: disconnected graph" test_disconnected;
    tc "estimate: cost grouped under one ladder span" test_cost_grouped;
    tc "estimate: budget hint prunes without changing answers" test_budget_hint_prunes;
    prop_bracket;
    prop_hint_preserves_answer;
  ]
