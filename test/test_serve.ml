(* The serving layer: LRU cache bounds and eviction order, structural
   hashing, cache-hit bit-identity with fresh solves, scheduler
   coalescing, the worker pool, metrics accounting and the line
   protocol. *)

open Test_helpers
module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Delta = Mincut_graph.Delta
module Handle = Mincut_graph.Handle
module Rng = Mincut_util.Rng
module Bitset = Mincut_util.Bitset
module Hash = Mincut_util.Hash
module Api = Mincut_core.Api
module Params = Mincut_core.Params
module Cost = Mincut_congest.Cost
module Cache = Mincut_serve.Cache
module Graph_key = Mincut_serve.Graph_key
module Json = Mincut_serve.Json
module Metrics = Mincut_serve.Metrics
module Pool = Mincut_serve.Pool
module Request = Mincut_serve.Request
module Scheduler = Mincut_serve.Scheduler
module Service = Mincut_serve.Service
module Server = Mincut_serve.Server
module Protocol = Mincut_serve.Protocol

let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* ---- cache ----------------------------------------------------------- *)

let unit_cost_cache ?(max_entries = 4096) ?max_cost () =
  Cache.create ~max_entries ?max_cost ~cost:(fun (_ : string) -> 1) ()

let test_lru_eviction_order () =
  let c = unit_cost_cache ~max_entries:3 () in
  Cache.add c "a" "va";
  Cache.add c "b" "vb";
  Cache.add c "c" "vc";
  (* touch "a": it becomes most recent, "b" is now least recent *)
  check_bool "hit a" true (Cache.find c "a" = Some "va");
  Alcotest.(check (list string))
    "recency after touch" [ "a"; "c"; "b" ] (Cache.keys_mru_first c);
  Cache.add c "d" "vd";
  check_bool "b evicted (LRU)" false (Cache.mem c "b");
  check_bool "a kept" true (Cache.mem c "a");
  check_bool "c kept" true (Cache.mem c "c");
  Alcotest.(check (list string))
    "recency after eviction" [ "d"; "a"; "c" ] (Cache.keys_mru_first c);
  check_int "one eviction" 1 (Cache.evictions c)

let test_lru_entry_bound () =
  let c = unit_cost_cache ~max_entries:10 () in
  for i = 1 to 100 do
    Cache.add c (string_of_int i) "v"
  done;
  check_int "length bounded" 10 (Cache.length c);
  check_int "evictions counted" 90 (Cache.evictions c);
  (* survivors are exactly the 10 most recent inserts *)
  for i = 91 to 100 do
    check_bool (Printf.sprintf "%d resident" i) true (Cache.mem c (string_of_int i))
  done

let test_lru_cost_bound () =
  let c = Cache.create ~max_cost:10 ~cost:String.length () in
  Cache.add c "a" "xxxx";
  Cache.add c "b" "xxxx";
  check_int "cost 8 resident" 8 (Cache.total_cost c);
  Cache.add c "c" "xxxx";
  (* 12 > 10: evict from the LRU end down to the bound *)
  check_bool "within cost bound" true (Cache.total_cost c <= 10);
  check_bool "a evicted first" false (Cache.mem c "a");
  (* a lone over-cost value is still admitted *)
  let big = String.make 50 'x' in
  Cache.add c "big" big;
  Cache.add c "big2" big;
  check_int "over-cost values never coexist" 1 (Cache.length c);
  check_bool "newest survives" true (Cache.mem c "big2")

let test_cache_replace_and_counters () =
  let c = unit_cost_cache () in
  check_bool "miss" true (Cache.find c "k" = None);
  Cache.add c "k" "v1";
  Cache.add c "k" "v2";
  check_int "replace keeps one entry" 1 (Cache.length c);
  check_bool "hit sees newest" true (Cache.find c "k" = Some "v2");
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c)

(* ---- structural hashing ---------------------------------------------- *)

let shuffled_copy ~seed g =
  let triples =
    Array.map (fun e -> (e.Graph.u, e.Graph.v, e.Graph.w)) (Graph.edges g)
  in
  Rng.shuffle (Rng.create seed) triples;
  Graph.of_array ~n:(Graph.n g) triples

let test_hash_sensitivity () =
  let g = Generators.ring 6 in
  let h = Graph_key.structural_hash g in
  let heavier = Graph.reweight g ~f:(fun e -> e.Graph.w + 1) in
  check_bool "weights change the hash" false
    (h = Graph_key.structural_hash heavier);
  let bigger = Generators.ring 7 in
  check_bool "node count changes the hash" false
    (h = Graph_key.structural_hash bigger);
  (* parallel edges are a multiset, not a set *)
  let doubled = Graph.create ~n:3 [ (0, 1, 1); (0, 1, 1); (1, 2, 1); (0, 2, 1) ] in
  let single = Graph.create ~n:3 [ (0, 1, 1); (1, 2, 1); (0, 2, 1) ] in
  check_bool "multiplicity matters" false
    (Graph_key.structural_hash doubled = Graph_key.structural_hash single)

let test_canonicalize_idempotent () =
  let g = shuffled_copy ~seed:5 (Generators.grid 3 4) in
  let c1 = Graph_key.canonicalize g in
  let c2 = Graph_key.canonicalize c1 in
  check_bool "same structure" true (Graph.equal_structure g c1);
  check_bool "canonical edge order is a fixpoint" true
    (Array.for_all2
       (fun a b -> (a.Graph.u, a.Graph.v, a.Graph.w) = (b.Graph.u, b.Graph.v, b.Graph.w))
       (Graph.edges c1) (Graph.edges c2))

(* ---- metrics --------------------------------------------------------- *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "reqs" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter accumulates" 5 (Metrics.counter_value c);
  check_int "same name, same instrument" 5
    (Metrics.counter_value (Metrics.counter m "reqs"));
  let g = Metrics.gauge m "depth" in
  Metrics.set g 3.5;
  check_float "gauge holds last value" 3.5 (Metrics.gauge_value g)

let test_metrics_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let snap = Metrics.snapshot m in
  match List.assoc_opt "lat" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
      check_int "count" 100 s.Metrics.count;
      check_float "mean" 50.5 s.Metrics.mean;
      check_float "max" 100.0 s.Metrics.max;
      check_bool "p50 in the middle" true (s.Metrics.p50 >= 49.0 && s.Metrics.p50 <= 52.0);
      check_bool "p90 near the top" true (s.Metrics.p90 >= 89.0 && s.Metrics.p90 <= 92.0);
      check_bool "quantiles ordered" true
        (s.Metrics.p50 <= s.Metrics.p90 && s.Metrics.p90 <= s.Metrics.p99
       && s.Metrics.p99 <= s.Metrics.max)

let test_metrics_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter m "a");
  Metrics.set (Metrics.gauge m "g") 2.25;
  Metrics.observe (Metrics.histogram m "h") 1.5;
  Metrics.observe (Metrics.histogram m "h") 2.5;
  let snap = Metrics.snapshot m in
  match Metrics.snapshot_of_json_line (Json.to_string (Metrics.to_json snap)) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      check_bool "counters round-trip" true (back.Metrics.counters = snap.Metrics.counters);
      check_bool "gauges round-trip" true (back.Metrics.gauges = snap.Metrics.gauges);
      check_bool "histograms round-trip" true
        (back.Metrics.histograms = snap.Metrics.histograms)

let test_json_parser () =
  let roundtrip v = Json.of_string (Json.to_string v) = Ok v in
  check_bool "nested value round-trips" true
    (roundtrip
       (Json.Obj
          [
            ("s", Json.String "a \"quoted\"\nline");
            ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Bool false; Json.Null ]);
            ("o", Json.Obj []);
          ]));
  check_bool "trailing garbage rejected" true
    (match Json.of_string "{} x" with Error _ -> true | Ok _ -> false);
  check_bool "unterminated string rejected" true
    (match Json.of_string "\"abc" with Error _ -> true | Ok _ -> false)

(* ---- scheduler ------------------------------------------------------- *)

let test_scheduler_priority_and_coalescing () =
  let ring = Generators.ring 8 in
  let grid = Generators.grid 3 3 in
  let key r = Graph_key.key ~algorithm:r.Request.algorithm ~seed:r.Request.seed
      ~trees:r.Request.trees ~params:Params.fast r.Request.graph
  in
  let s = Scheduler.create ~key () in
  let t0 = Scheduler.submit s (Request.make ring) in
  let t1 = Scheduler.submit s (Request.make grid ~priority:3) in
  let t2 = Scheduler.submit s (Request.make (shuffled_copy ~seed:1 ring)) in
  check_int "pending" 3 (Scheduler.pending s);
  check_int "two distinct batches" 2 (Scheduler.depth s);
  match Scheduler.drain s with
  | [ (tks_grid, r_grid); (tks_ring, _) ] ->
      check_bool "high priority first" true (r_grid.Request.priority = 3);
      Alcotest.(check (list int)) "grid batch" [ t1 ] (List.map fst tks_grid);
      Alcotest.(check (list int))
        "permuted ring coalesced with ring" [ t0; t2 ] (List.map fst tks_ring);
      check_int "drained" 0 (Scheduler.pending s)
  | batches -> Alcotest.fail (Printf.sprintf "expected 2 batches, got %d" (List.length batches))

let test_scheduler_deadline_order () =
  let g = Generators.ring 6 in
  let key _ = "k" in
  (* same key: the batch representative must be the urgent one *)
  let s = Scheduler.create ~key:(fun r -> key r) () in
  let _ = Scheduler.submit s (Request.make g ~deadline:9999.0) in
  let _ = Scheduler.submit s (Request.make g ~deadline:1.0) in
  (match Scheduler.drain s with
  | [ (tickets, rep) ] ->
      check_int "coalesced into one batch" 2 (List.length tickets);
      check_bool "earliest deadline represents" true (rep.Request.deadline = Some 1.0)
  | _ -> Alcotest.fail "expected a single batch");
  (* distinct keys: earlier deadline drains first within a priority class *)
  let s2 = Scheduler.create ~key:(fun r -> string_of_int r.Request.seed) () in
  let _ = Scheduler.submit s2 (Request.make g ~seed:1 ~deadline:50.0) in
  let _ = Scheduler.submit s2 (Request.make g ~seed:2 ~deadline:5.0) in
  match Scheduler.drain s2 with
  | [ (_, first); (_, second) ] ->
      check_bool "deadline ascending" true
        (first.Request.deadline = Some 5.0 && second.Request.deadline = Some 50.0)
  | _ -> Alcotest.fail "expected two batches"

(* ---- worker pool ----------------------------------------------------- *)

let test_pool_matches_sequential () =
  let jobs = Array.init 64 (fun i -> i) in
  let f i = Array.fold_left ( + ) 0 (Array.init (100 + i) (fun j -> i * j)) in
  let seq = Array.map f jobs in
  let par = Pool.map (Pool.create ~workers:4 ()) f jobs in
  check_bool "parallel map preserves order and values" true (seq = par)

let test_pool_exception_propagates () =
  let pool = Pool.create ~workers:3 () in
  check_bool "raises" true
    (match Pool.map pool (fun i -> if i = 5 then failwith "boom" else i) (Array.init 8 Fun.id) with
    | _ -> false
    | exception Failure msg -> msg = "boom")

(* ---- service --------------------------------------------------------- *)

let service ?(workers = 1) () =
  Service.create
    ~config:{ Service.default_config with Service.workers }
    ()

let check_summaries_identical msg (a : Api.summary) (b : Api.summary) =
  check_int (msg ^ ": value") a.Api.value b.Api.value;
  check_int (msg ^ ": rounds") a.Api.rounds b.Api.rounds;
  check_bool (msg ^ ": side") true (Bitset.equal a.Api.side b.Api.side);
  check_bool (msg ^ ": breakdown") true (a.Api.breakdown = b.Api.breakdown);
  check_bool (msg ^ ": span tree") true (Cost.equal a.Api.cost b.Api.cost);
  check_bool (msg ^ ": algorithm") true (a.Api.algorithm = b.Api.algorithm)

(* Bit-identity of a cache hit must extend to the serialized span tree:
   a warm answer re-encodes to the exact bytes of the cold one, span for
   span (value, side, rounds and per-span provenance all equal). *)
let test_service_cache_hit_span_tree () =
  let t = service () in
  let g = Generators.grid 5 5 in
  let cold = Service.solve t (Request.make g) in
  let warm = Service.solve t (Request.make g) in
  check_bool "second is a hit" true warm.Request.cached;
  let a = cold.Request.summary and b = warm.Request.summary in
  check_summaries_identical "cold vs warm" a b;
  let rec provenances (sp : Cost.span) =
    Cost.provenance_name sp.Cost.provenance
    :: List.concat_map provenances sp.Cost.children
  in
  Alcotest.(check (list string))
    "per-span provenance"
    (List.concat_map provenances a.Api.cost.Cost.spans)
    (List.concat_map provenances b.Api.cost.Cost.spans);
  check_string "serialized span tree bytes"
    (Json.to_string (Cost.to_json a.Api.cost))
    (Json.to_string (Cost.to_json b.Api.cost))

let test_service_cache_hit_identical () =
  let t = service () in
  let g = Generators.torus 4 4 in
  let r1 = Service.solve t (Request.make g) in
  let r2 = Service.solve t (Request.make g) in
  check_bool "first is a miss" false r1.Request.cached;
  check_bool "second is a hit" true r2.Request.cached;
  check_string "same key" r1.Request.key r2.Request.key;
  check_summaries_identical "hit vs miss" r1.Request.summary r2.Request.summary;
  (* and both match a fresh Api solve of the canonical graph *)
  let fresh =
    Api.min_cut ~params:(Service.config t).Service.params
      (Graph_key.canonicalize g)
  in
  check_summaries_identical "cache vs fresh" fresh r1.Request.summary

let test_service_flush_batches () =
  let t = service ~workers:2 () in
  let ring = Generators.ring 10 in
  let t0 = Service.submit t (Request.make ring) in
  let t1 = Service.submit t (Request.make (shuffled_copy ~seed:3 ring)) in
  let t2 = Service.submit t (Request.make (Generators.grid 3 3)) in
  check_int "pending" 3 (Service.pending t);
  let { Service.answered = responses; shed } = Service.flush t in
  check_int "all answered" 3 (List.length responses);
  check_int "nothing shed" 0 (List.length shed);
  check_int "drained" 0 (Service.pending t);
  Alcotest.(check (list int))
    "ticket order" [ t0; t1; t2 ]
    (List.map fst responses);
  let r0 = List.assoc t0 responses and r1 = List.assoc t1 responses in
  check_summaries_identical "coalesced duplicates identical"
    r0.Request.summary r1.Request.summary;
  (* a second flush of the same work is all cache hits *)
  let _ = Service.submit t (Request.make ring) in
  (match (Service.flush t).Service.answered with
  | [ (_, r) ] -> check_bool "warm flush hits" true r.Request.cached
  | _ -> Alcotest.fail "expected one response");
  let m = Service.metrics t in
  check_int "coalesced counted" 1
    (Metrics.counter_value (Metrics.counter m "requests_coalesced"))

let test_service_metrics_accounting () =
  let t = service () in
  let g = Generators.complete 6 in
  let _ = Service.solve t (Request.make g) in
  let _ = Service.solve t (Request.make g) in
  let _ = Service.solve t (Request.make g ~seed:7) in
  let snap = Service.snapshot t in
  let counter name = List.assoc name snap.Metrics.counters in
  check_int "submitted" 3 (counter "requests_submitted");
  check_int "completed" 3 (counter "requests_completed");
  check_int "hits" 1 (counter "cache_hits");
  check_int "misses" 2 (counter "cache_misses");
  check_bool "rounds charged only for real solves" true (counter "rounds_charged" > 0);
  check_bool "cache gauge" true (List.assoc "cache_entries" snap.Metrics.gauges = 2.0);
  let hist name = List.assoc name snap.Metrics.histograms in
  check_int "cold latencies observed" 2 (hist "solve_cold_ms").Metrics.count;
  check_int "warm latencies observed" 1 (hist "solve_warm_ms").Metrics.count

(* A request completing after its absolute deadline must bump the
   deadlines_missed counter; on-time and deadline-free requests must
   not. *)
let test_service_deadline_missed () =
  let t = service () in
  let g = Generators.ring 8 in
  (* epoch + 1s is decades in the past, so the solve always "misses" *)
  let late = Service.solve t (Request.make g ~deadline:1.0) in
  check_bool "late request still answered" true (late.Request.summary.Api.value > 0);
  let counter name = List.assoc name (Service.snapshot t).Metrics.counters in
  check_int "miss counted" 1 (counter "deadlines_missed");
  let _ = Service.solve t (Request.make g ~seed:1) in
  let _ = Service.solve t (Request.make g ~seed:2 ~deadline:(Unix.gettimeofday () +. 3600.0)) in
  check_int "no-deadline and on-time requests do not count" 1
    (counter "deadlines_missed")

(* ---- line protocol / server ------------------------------------------ *)

let scripted_io lines =
  let input = ref lines in
  let output = ref [] in
  ( {
      Server.read_line =
        (fun () ->
          match !input with
          | [] -> None
          | l :: rest ->
              input := rest;
              Some l);
      write_line = (fun s -> output := s :: !output);
    },
    fun () -> List.rev !output )

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length sub and len = String.length s in
  let rec at i = i + n <= len && (String.sub s i n = sub || at (i + 1)) in
  at 0

let test_server_session () =
  let io, collected =
    scripted_io
      [
        "PING";
        "# a comment line";
        "GRAPH tri 3 3";
        "0 1 1";
        "1 2 1";
        "0 2 1";
        "SOLVE graph=tri";
        "SOLVE graph=tri";
        "ESTIMATE graph=tri";
        "ESTIMATE graph=nope";
        "SOLVE graph=nope";
        "BOGUS";
        "STATS";
        "QUIT";
      ]
  in
  let reason = Server.run (service ()) io in
  check_bool "quit reason" true (reason = Server.Quit);
  match collected () with
  | [ pong; graph_ok; ok1; ok2; est; err_est; err_graph; err_verb; stats; bye ] ->
      check_string "pong" "PONG" pong;
      check_bool "graph registered" true (has_prefix ~prefix:"OK graph tri n=3 m=3" graph_ok);
      check_bool "solve ok and cold" true
        (has_prefix ~prefix:"OK value=2" ok1 && contains ~sub:"cached=false" ok1);
      check_bool "warm repeat hits" true
        (has_prefix ~prefix:"OK value=2" ok2 && contains ~sub:"cached=true" ok2);
      check_bool "estimate answers with a bracket" true
        (has_prefix ~prefix:"OK estimate=" est
        && contains ~sub:"lower=" est && contains ~sub:"upper=" est);
      check_bool "estimate on unknown graph is ERR" true
        (has_prefix ~prefix:"ERR" err_est);
      check_bool "unknown graph is ERR" true (has_prefix ~prefix:"ERR" err_graph);
      check_bool "unknown verb is ERR" true (has_prefix ~prefix:"ERR" err_verb);
      check_bool "stats line is JSON" true (has_prefix ~prefix:"STATS {" stats);
      check_string "bye" "BYE" bye
  | lines ->
      Alcotest.fail
        (Printf.sprintf "unexpected response count %d: %s" (List.length lines)
           (String.concat " | " lines))

let test_server_submit_flush () =
  let io, collected =
    scripted_io
      [
        "SUBMIT family=ring size=12";
        "SUBMIT family=ring size=12 priority=2";
        "SUBMIT family=complete size=5 priority=9";
        "FLUSH";
      ]
  in
  let reason = Server.run (service ~workers:2 ()) io in
  check_bool "eof ends session" true (reason = Server.Eof);
  let lines = collected () in
  (match lines with
  | [ q0; q1; q2; r0; r1; r2; done_line ] ->
      check_string "ticket 0" "QUEUED 0" q0;
      check_string "ticket 1" "QUEUED 1" q1;
      check_string "ticket 2" "QUEUED 2" q2;
      (* RESULT lines come back in ticket order regardless of batch order *)
      check_bool "result 0" true (has_prefix ~prefix:"RESULT 0 value=2" r0);
      check_bool "result 1" true (has_prefix ~prefix:"RESULT 1 value=2" r1);
      check_bool "result 2" true (has_prefix ~prefix:"RESULT 2 value=4" r2);
      check_string "done" "DONE 3" done_line
  | _ ->
      Alcotest.fail
        (Printf.sprintf "unexpected response shape: %s" (String.concat " | " lines)))

let test_server_graph_payload_drained () =
  (* a malformed edge must not desync the stream: the remaining
     announced edge lines are consumed, not parsed as commands *)
  let io, collected =
    scripted_io [ "GRAPH x 4 3"; "0 1 1"; "not an edge"; "2 3 1"; "PING"; "QUIT" ]
  in
  let _ = Server.run (service ()) io in
  match collected () with
  | [ err; pong; bye ] ->
      check_bool "edge error reported" true (has_prefix ~prefix:"ERR" err);
      check_string "stream stays in sync" "PONG" pong;
      check_string "bye" "BYE" bye
  | lines ->
      Alcotest.fail
        (Printf.sprintf "unexpected responses: %s" (String.concat " | " lines))

let test_protocol_parse_errors () =
  let is_err s = match Protocol.parse s with Error _ -> true | Ok _ -> false in
  check_bool "missing source" true (is_err "SOLVE algo=exact");
  check_bool "both sources" true (is_err "SOLVE graph=a family=ring");
  check_bool "bad int" true (is_err "SOLVE family=ring size=abc");
  check_bool "bad algo" true (is_err "SOLVE family=ring algo=magic");
  check_bool "graph usage" true (is_err "GRAPH only-a-name");
  check_bool "estimate needs a source" true (is_err "ESTIMATE seed=3");
  check_bool "estimate rejects trials=0" true
    (is_err "ESTIMATE family=ring trials=0");
  check_bool "estimate parses" true
    (Protocol.parse "ESTIMATE family=torus size=8 seed=3 trials=6"
    = Ok
        (Protocol.Estimate
           {
             Protocol.esource =
               Protocol.Family
                 { family = "torus"; size = 8; gseed = 0; weight_max = 1 };
             eseed = 3;
             etrials = Some 6;
           }));
  check_bool "blank is nop" true (Protocol.parse "   " = Ok Protocol.Nop);
  check_bool "comment is nop" true (Protocol.parse "# hi" = Ok Protocol.Nop)

(* ---- deadline shedding ------------------------------------------------ *)

(* An uncached request whose deadline has passed by drain time is shed,
   not solved; a cached one is answered anyway (hits are free). *)
let test_service_flush_sheds_expired () =
  let t = service () in
  let dead = Service.submit t (Request.make (Generators.grid 4 4) ~deadline:1.0) in
  let live = Service.submit t (Request.make (Generators.ring 9)) in
  let { Service.answered; shed } = Service.flush t in
  check_bool "expired ticket shed" true (List.mem dead shed);
  check_int "only the live request answered" 1 (List.length answered);
  check_bool "live ticket answered" true (List.mem_assoc live answered);
  let counter name = List.assoc name (Service.snapshot t).Metrics.counters in
  check_int "requests_shed counted" 1 (counter "requests_shed");
  (* warm the key, then submit the same expired request again: a cache
     hit costs nothing, so it is answered despite the deadline *)
  let _ = Service.solve t (Request.make (Generators.grid 4 4)) in
  let again = Service.submit t (Request.make (Generators.grid 4 4) ~deadline:1.0) in
  let { Service.answered = a2; shed = s2 } = Service.flush t in
  check_int "nothing shed on a hit" 0 (List.length s2);
  check_bool "expired-but-cached still answered" true (List.mem_assoc again a2);
  check_int "shed counter unchanged" 1 (counter "requests_shed")

let test_server_flush_shed_line () =
  let io, collected =
    scripted_io
      [
        "SUBMIT family=ring size=16 deadline-ms=-1000000";
        "SUBMIT family=complete size=5";
        "FLUSH";
      ]
  in
  let _ = Server.run (service ()) io in
  match collected () with
  | [ q0; q1; shed0; r1; done_line ] ->
      check_string "ticket 0" "QUEUED 0" q0;
      check_string "ticket 1" "QUEUED 1" q1;
      check_string "shed line precedes results" "SHED 0" shed0;
      check_bool "live result" true (has_prefix ~prefix:"RESULT 1 value=4" r1);
      check_string "done counts answered only" "DONE 1" done_line
  | lines ->
      Alcotest.fail
        (Printf.sprintf "unexpected responses: %s" (String.concat " | " lines))

(* ---- incremental sessions --------------------------------------------- *)

let test_service_session_metrics () =
  let t = service () in
  let _ = Service.session_open t "s" (Generators.torus 4 4) in
  let counter name = List.assoc name (Service.snapshot t).Metrics.counters in
  check_bool "session gauge" true
    (List.assoc "sessions_open" (Service.snapshot t).Metrics.gauges = 1.0);
  (* a weight increase answers incrementally; a removal forces a full
     re-solve — both count as applied deltas *)
  (match Service.session_delta t "s" (Delta.Add_edge { u = 0; v = 1; w = 2 }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Service.session_delta t "s" (Delta.Remove_edge { u = 0; v = 1 }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_int "deltas applied" 2 (counter "deltas_applied");
  check_int "one incremental answer" 1 (counter "incremental_hits");
  check_int "one full resolve" 1 (counter "full_resolves");
  check_bool "unknown session is Error" true
    (Result.is_error
       (Service.session_delta t "nope" (Delta.Add_edge { u = 0; v = 1; w = 1 })));
  check_int "failed delta not counted" 2 (counter "deltas_applied")

(* A delta chain that returns to a previously-solved structure re-derives
   the same versioned key, so the solve is served from cache without
   running — the version-chain hit. *)
let test_service_version_chain_cache () =
  let t = service () in
  let s = Service.session_open t "s" (Generators.grid 4 4) in
  let solve () =
    match
      Service.session_solve t "s" ~algorithm:Api.Exact_small_lambda ~seed:0
        ~trees:None
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let r0 = solve () in
  check_bool "cold" false r0.Request.cached;
  let d = Handle.digest (Api.session_handle s) in
  (match Service.session_delta t "s" (Delta.Add_edge { u = 0; v = 5; w = 3 }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Service.session_delta t "s" (Delta.Remove_edge { u = 0; v = 5 }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_bool "digest restored" true
    (Int64.equal d (Handle.digest (Api.session_handle s)));
  let r1 = solve () in
  check_bool "version-chain warm hit" true r1.Request.cached;
  check_string "same versioned key" r0.Request.key r1.Request.key;
  check_summaries_identical "chain hit bit-identical" r0.Request.summary
    r1.Request.summary

let test_protocol_parse_sessions () =
  let is_err s = match Protocol.parse s with Error _ -> true | Ok _ -> false in
  check_bool "session parses" true
    (Protocol.parse "SESSION s family=ring size=8"
    = Ok
        (Protocol.Session_open
           {
             sname = "s";
             ssource =
               Protocol.Family
                 { family = "ring"; size = 8; gseed = 0; weight_max = 1 };
           }));
  check_bool "session needs a source" true (is_err "SESSION s");
  check_bool "session rejects two sources" true
    (is_err "SESSION s graph=a family=ring");
  check_bool "delta parses" true
    (Protocol.parse "DELTA s add 0 1 2"
    = Ok
        (Protocol.Delta_op
           { sname = "s"; dop = Delta.Add_edge { u = 0; v = 1; w = 2 } }));
  check_bool "delta split parses" true
    (Protocol.parse "DELTA s split 3 2 1,4"
    = Ok
        (Protocol.Delta_op
           { sname = "s"; dop = Delta.Split_node { v = 3; w = 2; moved = [ 1; 4 ] } }));
  check_bool "delta rejects a bad verb" true (is_err "DELTA s frobnicate 1 2");
  check_bool "delta needs an op" true (is_err "DELTA s");
  check_bool "compact parses" true
    (Protocol.parse "COMPACT s" = Ok (Protocol.Compact "s"));
  check_bool "compact wants exactly one name" true (is_err "COMPACT a b");
  check_bool "solve takes session= as a source" true
    (match Protocol.parse "SOLVE session=s" with
    | Ok (Protocol.Solve { source = Protocol.Session "s"; _ }) -> true
    | _ -> false);
  check_bool "solve rejects session+graph" true (is_err "SOLVE session=s graph=a")

let hash_field line =
  match List.find_opt (has_prefix ~prefix:"hash=") (String.split_on_char ' ' line) with
  | Some tok -> tok
  | None -> Alcotest.fail ("no hash= field in: " ^ line)

let test_server_incremental_session () =
  let io, collected =
    scripted_io
      [
        "GRAPH tri 3 3";
        "0 1 1";
        "1 2 1";
        "0 2 1";
        "SESSION s graph=tri";
        "DELTA s add 0 1 1";
        "SOLVE session=s";
        "SOLVE session=s";
        "DELTA s remove 0 2";
        "SOLVE session=s";
        "COMPACT s";
        "SOLVE session=s";
        "DELTA nope add 0 1 1";
        "QUIT";
      ]
  in
  let reason = Server.run (service ()) io in
  check_bool "quit reason" true (reason = Server.Quit);
  match collected () with
  | [ graph_ok; session_ok; d1; s1; s2; d2; s3; compact_ok; s4; err; bye ] ->
      check_bool "graph registered" true (has_prefix ~prefix:"OK graph tri" graph_ok);
      check_bool "session opened at the snapshot" true
        (has_prefix ~prefix:"OK session s n=3 channels=3 lambda=2" session_ok);
      (* a weight increase keeps λ=2 and answers incrementally *)
      check_bool "delta answers λ" true
        (has_prefix ~prefix:"OK delta s version=1 lambda=2" d1
        && contains ~sub:"mode=" d1);
      check_bool "cold session solve" true
        (has_prefix ~prefix:"OK value=2" s1 && contains ~sub:"cached=false" s1);
      check_bool "anchored repeat is warm" true
        (has_prefix ~prefix:"OK value=2" s2 && contains ~sub:"cached=true" s2);
      (* a removal drops λ to 1 and forces the full-re-solve tier *)
      check_bool "removal resolves from scratch" true
        (has_prefix ~prefix:"OK delta s version=2 lambda=1 mode=resolved" d2);
      check_bool "post-removal solve is fresh" true
        (has_prefix ~prefix:"OK value=1" s3 && contains ~sub:"cached=false" s3);
      check_bool "compact reports the surviving version" true
        (has_prefix ~prefix:"OK compact s version=2" compact_ok);
      check_string "compaction preserves the digest" (hash_field d2)
        (hash_field compact_ok);
      check_bool "solve after compact still cached" true
        (has_prefix ~prefix:"OK value=1" s4 && contains ~sub:"cached=true" s4);
      check_bool "unknown session is ERR" true (has_prefix ~prefix:"ERR" err);
      check_string "bye" "BYE" bye
  | lines ->
      Alcotest.fail
        (Printf.sprintf "unexpected response count %d: %s" (List.length lines)
           (String.concat " | " lines))

(* ---- qcheck properties ----------------------------------------------- *)

let qcheck_tests =
  [
    qtest ~count:60 "structural hash invariant under edge permutation"
      QCheck2.Gen.(pair (arbitrary_connected ~max_n:12 ()) (int_range 0 1_000_000))
      (fun (g, seed) ->
        Graph_key.structural_hash g
        = Graph_key.structural_hash (shuffled_copy ~seed g));
    qtest ~count:25 "cached solve is bit-identical to a fresh solve"
      QCheck2.Gen.(pair (arbitrary_connected ~max_n:10 ()) (int_range 0 3))
      (fun (g, algo_pick) ->
        let algorithm =
          match algo_pick with
          | 0 -> Api.Exact_small_lambda
          | 1 -> Api.Exact_two_respect
          | 2 -> Api.Approx 0.5
          | _ -> Api.Ghaffari_kuhn 0.5
        in
        let t = service () in
        let r1 = Service.solve t (Request.make ~algorithm ~seed:11 g) in
        (* same structure, permuted presentation: must hit and answer
           identically *)
        let r2 =
          Service.solve t (Request.make ~algorithm ~seed:11 (shuffled_copy ~seed:99 g))
        in
        let fresh =
          Api.min_cut ~params:(Service.config t).Service.params ~algorithm
            ~seed:11
            (Graph_key.canonicalize g)
        in
        (not r1.Request.cached) && r2.Request.cached
        && r1.Request.summary.Api.value = fresh.Api.value
        && r1.Request.summary.Api.rounds = fresh.Api.rounds
        && Bitset.equal r1.Request.summary.Api.side fresh.Api.side
        && r1.Request.summary.Api.breakdown = fresh.Api.breakdown
        && r2.Request.summary.Api.value = fresh.Api.value
        && r2.Request.summary.Api.rounds = fresh.Api.rounds
        && Bitset.equal r2.Request.summary.Api.side fresh.Api.side);
    qtest ~count:40 "canonicalize preserves structure"
      (arbitrary_connected ~max_n:12 ())
      (fun g -> Graph.equal_structure g (Graph_key.canonicalize g));
    (* the static exception-boundary proof (Exnflow's serve-total policy)
       starts at [handle_command]; this is the dynamic complement for the
       layer below it: [parse] must be total on arbitrary bytes, junk
       after a real verb included, answering Ok or Error but never
       raising *)
    qtest ~count:500 "protocol parse is total on random bytes"
      QCheck2.Gen.(pair (string_size ~gen:char (int_range 0 80)) (int_range 0 6))
      (fun (junk, pick) ->
        let line =
          match pick with
          | 0 -> junk
          | 1 -> "SOLVE " ^ junk
          | 2 -> "GRAPH " ^ junk
          | 3 -> "SESSION " ^ junk
          | 4 -> "DELTA " ^ junk
          | 5 -> "ESTIMATE " ^ junk
          | _ -> "SUBMIT " ^ junk
        in
        match Protocol.parse line with Ok _ | Error _ -> true);
  ]

let suite =
  [
    tc "cache: LRU eviction order" test_lru_eviction_order;
    tc "cache: entry bound" test_lru_entry_bound;
    tc "cache: cost bound" test_lru_cost_bound;
    tc "cache: replace and hit/miss counters" test_cache_replace_and_counters;
    tc "hash: sensitive to weights, size, multiplicity" test_hash_sensitivity;
    tc "hash: canonicalize idempotent" test_canonicalize_idempotent;
    tc "metrics: counters and gauges" test_metrics_counters_gauges;
    tc "metrics: latency quantiles" test_metrics_quantiles;
    tc "metrics: JSON line round-trip" test_metrics_json_roundtrip;
    tc "json: parser round-trip and rejections" test_json_parser;
    tc "scheduler: priority order and coalescing" test_scheduler_priority_and_coalescing;
    tc "scheduler: deadline ordering" test_scheduler_deadline_order;
    tc "pool: parallel map matches sequential" test_pool_matches_sequential;
    tc "pool: exceptions propagate" test_pool_exception_propagates;
    tc "service: cache hit bit-identical" test_service_cache_hit_identical;
    tc "service: cache hit span tree bit-identical" test_service_cache_hit_span_tree;
    tc "service: flush coalesces and answers in order" test_service_flush_batches;
    tc "service: metrics accounting" test_service_metrics_accounting;
    tc "service: deadline misses counted" test_service_deadline_missed;
    tc "server: scripted session" test_server_session;
    tc "server: submit/flush protocol" test_server_submit_flush;
    tc "server: malformed GRAPH payload drained" test_server_graph_payload_drained;
    tc "protocol: parse errors" test_protocol_parse_errors;
    tc "service: expired requests shed at flush" test_service_flush_sheds_expired;
    tc "server: SHED lines in FLUSH" test_server_flush_shed_line;
    tc "service: session metrics accounting" test_service_session_metrics;
    tc "service: version-chain cache hit" test_service_version_chain_cache;
    tc "protocol: SESSION/DELTA/COMPACT parse" test_protocol_parse_sessions;
    tc "server: scripted incremental session" test_server_incremental_session;
  ]
  @ qcheck_tests
