(* The certifier: shadow sanitizers, span-tree invariant verification,
   asymptotic envelope fits, and the seeded-defect liveness proofs. *)

open Test_helpers
module Sanitize = Mincut_analysis.Sanitize
module Costcheck = Mincut_analysis.Costcheck
module Scaling = Mincut_analysis.Scaling
module Certify = Mincut_analysis.Certify
module Config = Mincut_congest.Config
module Network = Mincut_congest.Network
module Cost = Mincut_congest.Cost
module Primitives = Mincut_congest.Primitives
module One_respect = Mincut_core.One_respect
module Params = Mincut_core.Params
module Json = Mincut_util.Json

let workloads () =
  [
    ("torus4", Generators.torus 4 4);
    ("grid5", Generators.grid 5 5);
    ("gnp24", Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3);
  ]

(* ---- sanitize --------------------------------------------------------- *)

(* Deliberately inbox-order-dependent: round-1 state is the sender
   sequence verbatim.  Sorted delivery masks it; the sanitizer must not. *)
let order_dependent_program g =
  Network.
    {
      initial = (fun _ -> []);
      step =
        (fun ~node ~round ~inbox st ->
          if round = 0 then
            ( st,
              Array.to_list
                (Array.map (fun (u, _) -> (u, node)) (Graph.adj g node)) )
          else (List.map fst inbox, []));
      halted = (fun st -> st <> []);
    }

let test_sanitize_catches_order_dependence () =
  let g = Generators.torus 4 4 in
  let r = Sanitize.run ~words:(fun _ -> 1) g (order_dependent_program g) in
  check_bool "not ok" false r.Sanitize.ok;
  match r.Sanitize.order_dependence with
  | None -> Alcotest.fail "order dependence not caught"
  | Some (node, round) ->
      check_bool "node in range" true (node >= 0 && node < 16);
      check_int "caught in the permuted round" 1 round

let test_sanitize_plain_engine_masks_it () =
  (* the same program runs clean without sanitize mode: that masking is
     exactly why the shadow harness exists *)
  let g = Generators.torus 4 4 in
  let states, _ = Network.run ~words:(fun _ -> 1) g (order_dependent_program g) in
  check_int "ran to completion" 16 (Array.length states)

let test_shipped_primitives_sanitize_clean () =
  let cfg = Config.sanitized Config.default in
  List.iter
    (fun (wname, g) ->
      let n = Graph.n g in
      let tree = Tree.bfs_tree g ~root:0 in
      let values = Array.init n (fun v -> (v * 7 mod 31) + 1) in
      let items = Array.init (n / 3) (fun i -> 3 * i) in
      let initial = Array.init n (fun v -> if v mod 4 = 0 then [ v ] else []) in
      let run name f =
        match f () with
        | () -> ()
        | exception Network.Model_violation v ->
            Alcotest.failf "%s on %s: %s" name wname
              (Network.violation_message v)
      in
      run "bfs_tree" (fun () -> ignore (Primitives.bfs_tree ~cfg g ~root:0));
      run "convergecast_sum" (fun () ->
          ignore (Primitives.convergecast_sum ~cfg g ~tree ~values));
      run "broadcast_items" (fun () ->
          ignore (Primitives.broadcast_items ~cfg g ~tree ~items));
      run "upcast_distinct" (fun () ->
          ignore (Primitives.upcast_distinct ~cfg g ~tree ~initial));
      run "flood_max" (fun () -> ignore (Primitives.flood_max ~cfg g ~values));
      run "flood_echo" (fun () -> ignore (Primitives.flood_echo ~cfg g ~root:0)))
    (workloads ())

let test_sanitize_flags_fat_payloads () =
  let g = Generators.gnp_connected ~rng:(Rng.create 7) 64 0.2 in
  let payload = List.init 8 (fun i -> i) in
  let prog =
    Network.
      {
        initial = (fun _ -> false);
        step =
          (fun ~node ~round:_ ~inbox:_ sent ->
            if sent then (sent, [])
            else
              ( true,
                Array.to_list
                  (Array.map (fun (u, _) -> (u, payload)) (Graph.adj g node)) ));
        halted = (fun sent -> sent);
      }
  in
  let r =
    Sanitize.run ~cfg:(Config.with_budget 64)
      ~limit:(Sanitize.ceil_log2 64)
      ~words:List.length g prog
  in
  check_bool "not ok" false r.Sanitize.ok;
  check_bool "flags raised" true (r.Sanitize.flags <> []);
  check_int "measured words" 8 r.Sanitize.max_payload_words;
  check_int "limit is log2 n" 6 r.Sanitize.payload_limit

(* ---- costcheck -------------------------------------------------------- *)

let dummy_audit ~rounds ~messages =
  let profile = Array.make (max rounds 1) 0 in
  if messages > 0 then profile.(0) <- messages;
  Network.
    {
      rounds;
      total_messages = messages;
      total_words = messages;
      max_words = 1;
      max_edge_load = 1;
      max_edge_words = 1;
      messages_per_round = profile;
    }

let laws_of errors = List.map (fun (e : Costcheck.error) -> e.Costcheck.law) errors

let test_costcheck_laws () =
  (* executed leaf without an audit *)
  let t = Cost.executed "x (real)" 3 in
  check_bool "missing audit" true
    (List.mem "executed-audit" (laws_of (Costcheck.check_tree t)));
  (* executed leaf disagreeing with its audit *)
  let t = Cost.executed ~audit:(dummy_audit ~rounds:2 ~messages:4) "x (real)" 3 in
  check_bool "rounds mismatch" true
    (List.mem "executed-audit" (laws_of (Costcheck.check_tree t)));
  (* scheduled leaf must not carry an audit — unrepresentable through
     the Cost constructors, so covered via the span record directly *)
  let bad =
    {
      Cost.label = "s";
      rounds = 2;
      provenance = Cost.Scheduled;
      children = [];
      audit = Some (dummy_audit ~rounds:2 ~messages:0);
    }
  in
  let t = { Cost.rounds = 2; spans = [ bad ] } in
  check_bool "audit on scheduled leaf" true
    (List.mem "audit-provenance" (laws_of (Costcheck.check_tree t)));
  (* group whose children don't sum *)
  let kid = Cost.scheduled "a" 2 in
  let g = Cost.group "phase" kid in
  let tampered =
    match g.Cost.spans with
    | [ s ] -> { Cost.rounds = 5; spans = [ { s with Cost.rounds = 5 } ] }
    | _ -> assert false
  in
  check_bool "leaf-sum" true
    (List.mem "leaf-sum" (laws_of (Costcheck.check_tree tampered)));
  (* clean executed leaf passes *)
  let t = Cost.executed ~audit:(dummy_audit ~rounds:3 ~messages:2) "x (real)" 3 in
  check_bool "clean leaf" true (Costcheck.check_tree t = [])

let test_costcheck_accepts_shipped_trees () =
  List.iter
    (fun (wname, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      List.iter
        (fun (pname, params) ->
          let r = One_respect.run ~params g tree in
          match Costcheck.check_one_respect ~params r with
          | [] -> ()
          | e :: _ ->
              Alcotest.failf "%s (%s): %s" wname pname (Costcheck.describe e))
        [ ("real", Params.default); ("fast", Params.fast) ])
    (workloads ())

let rec bump_first_executed (s : Cost.span) =
  match s.Cost.children with
  | [] ->
      if Cost.provenance_equal s.Cost.provenance Cost.Executed then
        Some { s with Cost.rounds = s.Cost.rounds + 1 }
      else None
  | kids -> (
      match bump_in_list kids with
      | None -> None
      | Some kids' -> Some { s with Cost.children = kids' })

and bump_in_list = function
  | [] -> None
  | s :: rest -> (
      match bump_first_executed s with
      | Some s' -> Some (s' :: rest)
      | None -> (
          match bump_in_list rest with
          | Some rest' -> Some (s :: rest')
          | None -> None))

let test_costcheck_rejects_mistagged_span () =
  let g = Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3 in
  let tree = Tree.bfs_tree g ~root:0 in
  let r = One_respect.run ~params:Params.default g tree in
  match bump_in_list r.One_respect.cost.Cost.spans with
  | None -> Alcotest.fail "no executed leaf in a real-primitives run"
  | Some spans ->
      let tampered = { r.One_respect.cost with Cost.spans } in
      let laws = laws_of (Costcheck.check_tree tampered) in
      check_bool "executed-audit law fires" true
        (List.mem "executed-audit" laws)

let test_costcheck_rejects_formula_drift () =
  let g = Generators.grid 5 5 in
  let tree = Tree.bfs_tree g ~root:0 in
  let r = One_respect.run ~params:Params.fast g tree in
  (* tamper with one scheduled formula leaf *)
  let target = "step4: local merging-node detection" in
  let rec tamper (s : Cost.span) =
    if s.Cost.children = [] && String.equal s.Cost.label target then
      { s with Cost.rounds = s.Cost.rounds + 1 }
    else { s with Cost.children = List.map tamper s.Cost.children }
  in
  let tampered =
    { r.One_respect.cost with Cost.spans = List.map tamper r.One_respect.cost.Cost.spans }
  in
  let r = { r with One_respect.cost = tampered } in
  let laws =
    laws_of (Costcheck.check_one_respect ~params:Params.fast r)
  in
  check_bool "formula law fires" true (List.mem "formula" laws)

(* ---- scaling ---------------------------------------------------------- *)

let test_scaling_fits_shipped_primitives () =
  let r = Scaling.run ~quick:true () in
  if not r.Scaling.ok then
    Alcotest.failf "scaling failed:\n%s"
      (String.concat "\n" (Scaling.describe r));
  check_int "four quantities fitted" 4 (List.length r.Scaling.fits)

let test_scaling_gate_is_live () =
  (* slack < 1 is unsatisfiable (max ratio >= min ratio), so every fit
     must fail — proving the comparison actually gates *)
  let r = Scaling.run ~quick:true ~slack:0.5 () in
  check_bool "impossible slack fails" false r.Scaling.ok;
  check_bool "every fit reported" true
    (List.for_all (fun (f : Scaling.fit) -> not f.Scaling.ok) r.Scaling.fits)

(* ---- certify driver --------------------------------------------------- *)

let test_certify_shipped_tree_clean () =
  let r = Certify.run ~quick:true () in
  if not r.Certify.ok then
    Alcotest.failf "certify failed: %s"
      (String.concat "; "
         (List.concat_map
            (fun (c : Certify.check) ->
              if c.Certify.ok then [] else c.Certify.name :: c.Certify.details)
            r.Certify.checks))

let test_certify_injections_fail () =
  List.iter
    (fun d ->
      let r = Certify.run ~quick:true ~inject:d () in
      check_bool (Certify.defect_name d ^ " injection fails the run") false
        r.Certify.ok;
      check_int "only the injected check runs" 1 (List.length r.Certify.checks))
    [ Certify.Order; Certify.Span; Certify.Payload ]

(* ---- JSON round-trips ------------------------------------------------- *)

let roundtrips j =
  let s = Json.to_string j in
  match Json.of_string s with
  | Error e -> Alcotest.failf "unparseable JSON: %s\n%s" e s
  | Ok j' -> check_bool "round-trip" true (String.equal s (Json.to_string j'))

let test_reports_roundtrip () =
  let g = Generators.torus 4 4 in
  roundtrips
    (Sanitize.to_json
       (Sanitize.run ~words:(fun _ -> 1) g (Primitives.bfs_program g ~root:0)));
  roundtrips (Scaling.to_json (Scaling.run ~quick:true ()));
  roundtrips (Certify.to_json (Certify.run ~quick:true ()));
  roundtrips (Certify.to_json (Certify.run ~inject:Certify.Payload ()));
  let tree = Tree.bfs_tree g ~root:0 in
  let r = One_respect.run ~params:Params.fast g tree in
  (* a tampered run so the error list is non-empty *)
  let r =
    {
      r with
      One_respect.cost =
        { r.One_respect.cost with Cost.rounds = r.One_respect.cost.Cost.rounds + 1 };
    }
  in
  let errors = Costcheck.check_one_respect ~params:Params.fast r in
  check_bool "tampered total caught" true (errors <> []);
  roundtrips (Costcheck.to_json errors)

let suite =
  [
    tc "sanitize: order-dependent program caught with provenance"
      test_sanitize_catches_order_dependence;
    tc "sanitize: plain engine masks the same defect"
      test_sanitize_plain_engine_masks_it;
    tc "sanitize: all six shipped primitives pass permuted delivery"
      test_shipped_primitives_sanitize_clean;
    tc "sanitize: sqrt(n)-word payloads flagged against log n limit"
      test_sanitize_flags_fat_payloads;
    tc "costcheck: structural laws on hand-built trees" test_costcheck_laws;
    tc "costcheck: shipped one-respect trees pass both modes"
      test_costcheck_accepts_shipped_trees;
    tc "costcheck: mis-tagged executed span rejected"
      test_costcheck_rejects_mistagged_span;
    tc "costcheck: scheduled formula drift rejected"
      test_costcheck_rejects_formula_drift;
    tc "scaling: shipped primitives fit their envelopes"
      test_scaling_fits_shipped_primitives;
    tc "scaling: the gate itself is live" test_scaling_gate_is_live;
    tc "certify: shipped tree certifies clean" test_certify_shipped_tree_clean;
    tc "certify: all three seeded defects fail the run"
      test_certify_injections_fail;
    tc "certify: JSON reports round-trip" test_reports_roundtrip;
  ]
