(* Entry point aggregating all suites.  Each module exposes a [suite]
   value; add new modules here as the library grows. *)

let () =
  Alcotest.run "mincut"
    [
      ("util", Test_util.suite);
      ("graph", Test_graph.suite);
      ("tree", Test_tree.suite);
      ("mincut-seq", Test_mincut_seq.suite);
      ("flow", Test_flow.suite);
      ("congest", Test_congest.suite);
      ("cost", Test_cost.suite);
      ("mst-dist", Test_mst_dist.suite);
      ("treepack", Test_treepack.suite);
      ("one-respect", Test_one_respect.suite);
      ("algorithms", Test_algorithms.suite);
      ("two-respect", Test_two_respect.suite);
      ("small-cuts", Test_small_cuts.suite);
      ("extensions", Test_extensions.suite);
      ("parallel", Test_parallel.suite);
      ("estimate", Test_estimate.suite);
      ("store", Test_store.suite);
      ("incremental", Test_incremental.suite);
      ("serve", Test_serve.suite);
      ("analysis", Test_analysis.suite);
      ("astlint", Test_astlint.suite);
      ("certify", Test_certify.suite);
    ]
