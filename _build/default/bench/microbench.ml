(* Bechamel wall-clock microbenchmarks: one Test.make per table/figure,
   timing the computational kernel that regenerates it.  The simulated
   round counts (the paper's metric) come from the experiment tables;
   these benches track the simulator's own cost so regressions in the
   implementation are visible. *)

open Bechamel
open Toolkit
module Tree = Mincut_graph.Tree
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Tree_packing = Mincut_treepack.Tree_packing
module One_respect = Mincut_core.One_respect
module Exact = Mincut_core.Exact
module Approx = Mincut_core.Approx
module Ghaffari_kuhn = Mincut_core.Ghaffari_kuhn
module Su = Mincut_core.Su
module Params = Mincut_core.Params
module Rng = Mincut_util.Rng

let fast = Params.fast

let tests () =
  let g256 = Workloads.gnp_supercritical ~seed:1 256 in
  let g_deep = Workloads.cliques_path ~length:16 in
  let g_planted = Workloads.planted ~seed:1 ~n:128 ~lambda:4 in
  let tree256 = Tree.bfs_tree g256 ~root:0 in
  Test.make_grouped ~name:"mincut"
    [
      Test.make ~name:"t1-ground-truth:stoer-wagner-128"
        (Staged.stage (fun () -> ignore (Stoer_wagner.run g_planted)));
      Test.make ~name:"t2-theorem21:one-respect-256"
        (Staged.stage (fun () -> ignore (One_respect.run ~params:fast g256 tree256)));
      Test.make ~name:"t3-diameter:one-respect-cliques-path"
        (Staged.stage (fun () ->
             let tree = Tree.bfs_tree g_deep ~root:0 in
             ignore (One_respect.run ~params:fast g_deep tree)));
      Test.make ~name:"t4-lambda:exact-planted-128"
        (Staged.stage (fun () -> ignore (Exact.run ~params:fast ~trees:16 g_planted)));
      Test.make ~name:"f1-comparison:gk-256"
        (Staged.stage (fun () -> ignore (Ghaffari_kuhn.run ~params:fast ~epsilon:0.5 g256)));
      Test.make ~name:"f1-comparison:su-128"
        (Staged.stage (fun () ->
             ignore (Su.run ~params:fast ~rng:(Rng.create 7) ~epsilon:0.5 g_planted)));
      Test.make ~name:"f2-quality:approx-128"
        (Staged.stage (fun () ->
             ignore
               (Approx.run ~params:fast ~trees:8 ~rng:(Rng.create 5) ~epsilon:0.5 g_planted)));
      Test.make ~name:"f3-packing:greedy-16-trees-128"
        (Staged.stage (fun () -> ignore (Tree_packing.greedy g_planted ~trees:16)));
      Test.make ~name:"f5-anatomy:fragment-partition-256"
        (Staged.stage (fun () ->
             ignore
               (Mincut_mst.Fragments.partition tree256
                  ~target:(Mincut_core.Params.sqrt_target ~n:256))));
      Test.make ~name:"t5-audit:boruvka-dist-128"
        (Staged.stage (fun () -> ignore (Mincut_mst.Boruvka_dist.run g_planted)));
      Test.make ~name:"a3-extension:two-respect-128"
        (Staged.stage (fun () ->
             let tree = Tree.bfs_tree g_planted ~root:0 in
             ignore (Mincut_core.Two_respect.run g_planted tree)));
      Test.make ~name:"a4-frontier:pritchard-grid-256"
        (Staged.stage
           (let g = Mincut_graph.Generators.grid 16 16 in
            fun () -> ignore (Mincut_core.Pritchard.run g)));
      Test.make ~name:"w0-zoo:gomory-hu-64"
        (Staged.stage
           (let g = Workloads.gnp_supercritical ~seed:3 64 in
            fun () -> ignore (Mincut_graph.Gomory_hu.build g)));
      Test.make ~name:"certificate-torus-256"
        (Staged.stage
           (let g = Mincut_graph.Generators.torus 16 16 in
            let s = Mincut_core.Api.min_cut ~params:fast g in
            fun () -> ignore (Mincut_core.Certificate.certify_summary g s)));
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]) instance raw)
      instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]) instances results in
  print_endline "### Bechamel microbenchmarks (monotonic clock, ns/run)";
  Hashtbl.iter
    (fun name tbl ->
      ignore name;
      Hashtbl.iter
        (fun test result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %12.0f ns/run\n" test est
          | _ -> Printf.printf "%-45s (no estimate)\n" test)
        tbl)
    results;
  print_newline ()
