(* Workload definitions shared by the experiments.  Each experiment of
   EXPERIMENTS.md names one of these families with its parameters. *)

module Rng = Mincut_util.Rng
module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Tree = Mincut_graph.Tree

(* Supercritical Erdős–Rényi: connected w.h.p., diameter O(log n) — the
   family for n-sweeps where D must stay small. *)
let gnp_supercritical ~seed n =
  let rng = Rng.create seed in
  let p = 8.0 *. log (float_of_int n) /. float_of_int n in
  Generators.gnp_connected ~rng n (Float.min 1.0 p)

(* Diameter-controlled family: λ = 2 stays fixed, D grows linearly. *)
let cliques_path ~length = Generators.path_of_cliques ~clique:8 ~length

(* λ-controlled family. *)
let planted ~seed ~n ~lambda =
  let rng = Rng.create seed in
  Generators.planted_cut ~rng ~n ~cut_edges:lambda ~p_in:0.7 ()

(* Planted family with shuffled edge ids: the deterministic packing's
   id-based tie-breaking must not be allowed to see the construction
   order, or the first MST trivially 1-respects the planted cut. *)
let shuffled_planted ~seed ~n ~lambda =
  let g = 
    let rng = Rng.create seed in
    Generators.planted_cut ~rng ~n ~cut_edges:lambda ~p_in:0.7 ()
  in
  let triples =
    Array.of_list (Graph.fold_edges (fun acc e -> (e.Graph.u, e.Graph.v, e.Graph.w) :: acc) [] g)
  in
  let rng = Rng.create (seed * 31 + 7) in
  Rng.shuffle rng triples;
  Graph.of_array ~n triples

let diameter_of g = Tree.height (Tree.bfs_tree g ~root:0)

let sqrt_n_plus_d g =
  let n = Graph.n g in
  let d = diameter_of g in
  ceil (sqrt (float_of_int n)) +. float_of_int d

(* The correctness suite for T1: every deterministic family with its
   known λ plus seeded random ones checked against Stoer–Wagner. *)
let t1_suite () =
  let rng = Rng.create 0xBEEF in
  [
    ("ring-32", Generators.ring 32);
    ("complete-16", Generators.complete 16);
    ("grid-8x8", Generators.grid 8 8);
    ("torus-6x6", Generators.torus 6 6);
    ("hypercube-6", Generators.hypercube 6);
    ("wheel-24", Generators.wheel 24);
    ("barbell-10", Generators.barbell 10);
    ("dumbbell-8-6", Generators.dumbbell 8 6);
    ("cliques-path-8x6", Generators.path_of_cliques ~clique:8 ~length:6);
    ("gnp-48", Generators.gnp_connected ~rng 48 0.2);
    ("gnp-64-weighted",
     Generators.gnp_connected ~rng ~weights:{ Generators.wmin = 1; wmax = 6 } 64 0.15);
    ("planted-64-3", Generators.planted_cut ~rng ~n:64 ~cut_edges:3 ~p_in:0.5 ());
    ("regular-40-4", Generators.random_regular ~rng 40 4);
  ]
