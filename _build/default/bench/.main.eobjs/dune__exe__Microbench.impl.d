bench/microbench.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Mincut_core Mincut_graph Mincut_mst Mincut_treepack Mincut_util Printf Staged Test Time Toolkit Workloads
