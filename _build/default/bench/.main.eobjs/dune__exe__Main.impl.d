bench/main.ml: Array Experiments List Microbench Mincut_util Printf Sys Unix
