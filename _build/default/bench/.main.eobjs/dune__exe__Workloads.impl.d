bench/workloads.ml: Array Float Mincut_graph Mincut_util
