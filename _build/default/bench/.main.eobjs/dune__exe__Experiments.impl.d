bench/experiments.ml: Array List Mincut_congest Mincut_core Mincut_graph Mincut_mst Mincut_treepack Mincut_util Printf Workloads
