bench/main.mli:
