open Test_helpers
module Rng = Mincut_util.Rng
module Stats = Mincut_util.Stats
module Heap = Mincut_util.Heap
module Bitset = Mincut_util.Bitset
module Table = Mincut_util.Table

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    check_bool "in range" true (x >= 0 && x < 10)
  done

let test_rng_int_covers () =
  let rng = Rng.create 3 in
  let seen = Array.make 6 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 6) <- true
  done;
  check_bool "all values hit" true (Array.for_all (fun b -> b) seen)

let test_rng_int_in () =
  let rng = Rng.create 9 in
  for _ = 1 to 200 do
    let x = Rng.int_in rng 5 8 in
    check_bool "in closed range" true (x >= 5 && x <= 8)
  done

let test_rng_bernoulli_bias () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  check_bool "close to 0.3" true (abs_float (freq -. 0.3) < 0.02)

let test_rng_binomial_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 500 do
    let x = Rng.binomial rng 20 0.4 in
    check_bool "within [0,n]" true (x >= 0 && x <= 20)
  done

let test_rng_binomial_mean () =
  let rng = Rng.create 17 in
  let total = ref 0 in
  let trials = 5000 in
  for _ = 1 to trials do
    total := !total + Rng.binomial rng 50 0.5
  done;
  let mean = float_of_int !total /. float_of_int trials in
  check_bool "mean near np=25" true (abs_float (mean -. 25.0) < 0.5)

let test_rng_binomial_extremes () =
  let rng = Rng.create 19 in
  check_int "p=0" 0 (Rng.binomial rng 10 0.0);
  check_int "p=1" 10 (Rng.binomial rng 10 1.0);
  check_int "n=0" 0 (Rng.binomial rng 0 0.5)

let test_rng_geometric () =
  let rng = Rng.create 23 in
  check_int "p=1 never skips" 0 (Rng.geometric rng 1.0);
  for _ = 1 to 100 do
    check_bool "non-negative" true (Rng.geometric rng 0.3 >= 0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 29 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "still a permutation" true (sorted = Array.init 20 (fun i -> i))

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  check_bool "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_bool "mean" true (abs_float (s.Stats.mean -. 3.0) < 1e-9);
  check_bool "median" true (abs_float (s.Stats.median -. 3.0) < 1e-9);
  check_bool "min" true (s.Stats.min = 1.0);
  check_bool "max" true (s.Stats.max = 5.0);
  check_int "count" 5 s.Stats.count

let test_stats_stddev () =
  let s = Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_bool "sample stddev" true (abs_float (s -. 2.13809) < 1e-3)

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_bool "p0" true (Stats.percentile xs 0.0 = 10.0);
  check_bool "p100" true (Stats.percentile xs 1.0 = 40.0);
  check_bool "p50 interpolates" true (abs_float (Stats.percentile xs 0.5 -. 25.0) < 1e-9)

let test_stats_linear_fit () =
  let slope, intercept = Stats.linear_fit [| (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) |] in
  check_bool "slope 2" true (abs_float (slope -. 2.0) < 1e-9);
  check_bool "intercept 1" true (abs_float (intercept -. 1.0) < 1e-9)

let test_stats_growth_exponent () =
  (* y = 4 x^1.5 *)
  let pts = Array.map (fun x -> (x, 4.0 *. (x ** 1.5))) [| 1.0; 2.0; 4.0; 8.0; 16.0 |] in
  check_bool "exponent 1.5" true (abs_float (Stats.growth_exponent pts -. 1.5) < 1e-6)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  check_bool "heap sort" true (drain [] = [ 1; 1; 2; 3; 4; 5; 9 ])

let test_heap_of_array () =
  let h = Heap.of_array ~cmp:compare [| 3; 1; 2 |] in
  check_bool "peek min" true (Heap.peek h = Some 1);
  check_int "size" 3 (Heap.size h)

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  check_bool "empty pop" true (Heap.pop h = None);
  check_bool "is_empty" true (Heap.is_empty h)

let test_heap_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.push h) [ 1; 5; 3 ];
  check_bool "max-heap via flipped cmp" true (Heap.pop h = Some 5)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  check_bool "mem 0" true (Bitset.mem s 0);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 99" true (Bitset.mem s 99);
  check_bool "not mem 50" false (Bitset.mem s 50);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  check_bool "removed" false (Bitset.mem s 63);
  check_int "cardinal after remove" 2 (Bitset.cardinal s)

let test_bitset_iteration () =
  let s = Bitset.create 10 in
  List.iter (Bitset.add s) [ 2; 5; 7 ];
  check_bool "to_list ordered" true (Bitset.to_list s = [ 2; 5; 7 ])

let test_bitset_complement () =
  let s = Bitset.create 5 in
  Bitset.add s 1;
  Bitset.add s 3;
  Bitset.complement_inplace s;
  check_bool "complement" true (Bitset.to_list s = [ 0; 2; 4 ])

let test_bitset_copy_independent () =
  let s = Bitset.create 5 in
  Bitset.add s 1;
  let c = Bitset.copy s in
  Bitset.add c 2;
  check_bool "original unchanged" false (Bitset.mem s 2);
  check_bool "equal detects" false (Bitset.equal s c)

let test_bitset_bounds () =
  let s = Bitset.create 5 in
  Alcotest.check_raises "oob add" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 5)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  check_bool "has title" true
    (String.length s > 0 && String.sub s 0 8 = "### demo");
  check_bool "row count" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 5)

let test_table_arity_check () =
  let t = Table.create ~title:"x" ~columns:[ "a" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_formats () =
  check_bool "int-like" true (Table.fmt_float 3.0 = "3");
  check_bool "decimal" true (Table.fmt_float 3.25 = "3.25");
  check_bool "ratio" true (Table.fmt_ratio 1.0 = "1.000")

let qcheck_tests =
  [
    qtest "percentile within [min,max]"
      QCheck2.Gen.(list_size (int_range 1 30) (float_bound_inclusive 100.0))
      (fun xs ->
        let a = Array.of_list xs in
        let p = Stats.percentile a 0.7 in
        p >= Array.fold_left Float.min a.(0) a && p <= Array.fold_left Float.max a.(0) a);
    qtest "heap pop is sorted"
      QCheck2.Gen.(list_size (int_range 0 50) (int_range (-100) 100))
      (fun xs ->
        let h = Heap.create ~cmp:compare in
        List.iter (Heap.push h) xs;
        let rec drain acc =
          match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        drain [] = List.sort compare xs);
    qtest "bitset add/mem roundtrip"
      QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 63))
      (fun xs ->
        let s = Bitset.create 64 in
        List.iter (Bitset.add s) xs;
        List.for_all (Bitset.mem s) xs
        && Bitset.cardinal s = List.length (List.sort_uniq compare xs));
  ]

let suite =
  [
    tc "rng: deterministic" test_rng_deterministic;
    tc "rng: seeds differ" test_rng_different_seeds;
    tc "rng: int range" test_rng_int_range;
    tc "rng: int covers all values" test_rng_int_covers;
    tc "rng: int_in closed range" test_rng_int_in;
    tc "rng: bernoulli bias" test_rng_bernoulli_bias;
    tc "rng: binomial bounds" test_rng_binomial_bounds;
    tc "rng: binomial mean" test_rng_binomial_mean;
    tc "rng: binomial extremes" test_rng_binomial_extremes;
    tc "rng: geometric" test_rng_geometric;
    tc "rng: shuffle is a permutation" test_rng_shuffle_permutation;
    tc "rng: split independence" test_rng_split_independent;
    tc "stats: summary" test_stats_summary;
    tc "stats: stddev" test_stats_stddev;
    tc "stats: percentile" test_stats_percentile;
    tc "stats: linear fit" test_stats_linear_fit;
    tc "stats: growth exponent" test_stats_growth_exponent;
    tc "heap: sorts" test_heap_sorts;
    tc "heap: of_array" test_heap_of_array;
    tc "heap: empty" test_heap_empty;
    tc "heap: custom order" test_heap_custom_order;
    tc "bitset: basic ops" test_bitset_basic;
    tc "bitset: iteration order" test_bitset_iteration;
    tc "bitset: complement" test_bitset_complement;
    tc "bitset: copy independence" test_bitset_copy_independent;
    tc "bitset: bounds check" test_bitset_bounds;
    tc "table: render" test_table_render;
    tc "table: arity check" test_table_arity_check;
    tc "table: number formats" test_table_formats;
  ]
  @ qcheck_tests
