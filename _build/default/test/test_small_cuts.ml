open Test_helpers
module Small_cuts = Mincut_graph.Small_cuts
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Pritchard = Mincut_core.Pritchard
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost

let test_bridges_weight_aware () =
  (* a weight-2 "bridge" is a parallel bundle, not a cut edge *)
  let g = Graph.create ~n:4 [ (0, 1, 1); (1, 2, 2); (2, 3, 1) ] in
  let bs = Small_cuts.bridges g in
  check_bool "heavy edge excluded" true (not (List.mem 1 bs));
  check_int "two unit bridges" 2 (List.length bs)

let test_cut_pairs_ring () =
  let g = Generators.ring 5 in
  let pairs = Small_cuts.cut_pairs g in
  (* every pair of ring edges is a 2-cut: C(5,2) = 10 *)
  check_int "all pairs cut" 10 (List.length pairs)

let test_cut_pairs_none_on_torus () =
  check_int "torus has no 2-cuts" 0 (List.length (Small_cuts.cut_pairs (Generators.torus 3 3)))

let test_cut_pairs_exclude_bridge_combos () =
  (* barbell: the bridge makes 1-cuts, not 2-cuts; pairs containing it
     must be filtered *)
  let g = Generators.barbell 4 in
  let bs = Small_cuts.bridges g in
  let pairs = Small_cuts.cut_pairs g in
  check_int "one bridge" 1 (List.length bs);
  List.iter
    (fun (e, f) ->
      check_bool "no bridge in pair" true
        (not (List.mem e bs) && not (List.mem f bs)))
    pairs

let test_le2_classification () =
  check_bool "path -> 1" true (Small_cuts.edge_connectivity_le2 (Generators.path 4) = Some 1);
  check_bool "ring -> 2" true (Small_cuts.edge_connectivity_le2 (Generators.ring 5) = Some 2);
  check_bool "torus -> none" true (Small_cuts.edge_connectivity_le2 (Generators.torus 3 3) = None);
  let disconnected = Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  check_bool "disconnected -> 0" true (Small_cuts.edge_connectivity_le2 disconnected = Some 0)

let test_cut_pair_side_value () =
  let g = Generators.ring 6 in
  match Small_cuts.cut_pairs g with
  | [] -> Alcotest.fail "expected pairs"
  | pair :: _ ->
      let side = Small_cuts.cut_pair_side g pair in
      check_int "side cuts exactly 2" 2 (Graph.cut_of_bitset g side)

let test_pritchard_lambda1 () =
  List.iter
    (fun (name, g) ->
      match (Pritchard.run g).Pritchard.verdict with
      | Pritchard.Cut_found { value = 1; side } ->
          check_int (name ^ " side") 1 (Graph.cut_of_bitset g side)
      | _ -> Alcotest.failf "%s: expected a 1-cut" name)
    [ ("barbell5", Generators.barbell 5); ("path6", Generators.path 6);
      ("spider", Generators.spider ~legs:3 ~leg_length:4) ]

let test_pritchard_lambda2 () =
  List.iter
    (fun (name, g) ->
      match (Pritchard.run g).Pritchard.verdict with
      | Pritchard.Cut_found { value = 2; side } ->
          check_int (name ^ " side") 2 (Graph.cut_of_bitset g side)
      | _ -> Alcotest.failf "%s: expected a 2-cut" name)
    [ ("ring8", Generators.ring 8); ("grid4x4", Generators.grid 4 4);
      ("cliques-path", Generators.path_of_cliques ~clique:4 ~length:3) ]

let test_pritchard_inconclusive () =
  List.iter
    (fun (name, g) ->
      match (Pritchard.run g).Pritchard.verdict with
      | Pritchard.Lambda_at_least_3 -> ()
      | Pritchard.Cut_found { value; _ } ->
          Alcotest.failf "%s: expected inconclusive, got cut %d" name value)
    [ ("torus4x4", Generators.torus 4 4); ("complete5", Generators.complete 5);
      ("hypercube3", Generators.hypercube 3) ]

let test_pritchard_cheaper_than_general () =
  (* the point of the specialization: O(D)-ish, far below sqrt n + D *)
  let g = Generators.path_of_cliques ~clique:8 ~length:16 in
  let p = Pritchard.run g in
  let general = Mincut_core.Exact.run ~params:Mincut_core.Params.fast ~trees:8 g in
  check_bool "small-cut detector much cheaper" true
    (p.Pritchard.cost.Cost.rounds * 10 < general.Mincut_core.Exact.cost.Cost.rounds)

let qcheck_tests =
  [
    qtest ~count:40 "le2 classification matches stoer-wagner"
      (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let lambda = (Stoer_wagner.run g).Mincut_graph.Stoer_wagner.value in
        match Small_cuts.edge_connectivity_le2 g with
        | Some v -> lambda <= 2 && v = lambda
        | None -> lambda >= 3);
    qtest ~count:40 "pritchard verdict consistent with λ"
      (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let lambda = (Stoer_wagner.run g).Mincut_graph.Stoer_wagner.value in
        match (Pritchard.run g).Pritchard.verdict with
        | Pritchard.Cut_found { value; side } ->
            value = lambda && lambda <= 2 && Graph.cut_of_bitset g side = value
        | Pritchard.Lambda_at_least_3 -> lambda >= 3);
  ]

let suite =
  [
    tc "small-cuts: weight-aware bridges" test_bridges_weight_aware;
    tc "small-cuts: ring pairs" test_cut_pairs_ring;
    tc "small-cuts: torus has none" test_cut_pairs_none_on_torus;
    tc "small-cuts: bridge combos excluded" test_cut_pairs_exclude_bridge_combos;
    tc "small-cuts: le2 classification" test_le2_classification;
    tc "small-cuts: pair side value" test_cut_pair_side_value;
    tc "pritchard: finds 1-cuts" test_pritchard_lambda1;
    tc "pritchard: finds 2-cuts" test_pritchard_lambda2;
    tc "pritchard: inconclusive for λ>=3" test_pritchard_inconclusive;
    tc "pritchard: cheaper than the general algorithm" test_pritchard_cheaper_than_general;
  ]
  @ qcheck_tests
