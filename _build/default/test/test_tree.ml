open Test_helpers
module Mst_seq = Mincut_graph.Mst_seq

(* a fixed tree:        0
                       / \
                      1   2
                     / \   \
                    3   4   5
                        |
                        6            *)
let fixed_tree () =
  let parent = [| -1; 0; 0; 1; 1; 2; 4 |] in
  let parent_edge = [| -1; 0; 1; 2; 3; 4; 5 |] in
  Tree.of_parents ~graph_n:7 ~root:0 ~parent ~parent_edge

let test_of_parents_basic () =
  let t = fixed_tree () in
  check_int "root" 0 t.Tree.root;
  check_int "depth 6" 3 t.Tree.depth.(6);
  check_int "height" 3 (Tree.height t);
  check_int "size root" 7 t.Tree.size.(0);
  check_int "size 1" 4 t.Tree.size.(1);
  check_int "size 4" 2 t.Tree.size.(4)

let test_of_parents_rejects_cycle () =
  let parent = [| -1; 2; 1 |] in
  let pe = [| -1; 0; 1 |] in
  check_bool "cycle rejected" true
    (try
       ignore (Tree.of_parents ~graph_n:3 ~root:0 ~parent ~parent_edge:pe);
       false
     with Invalid_argument _ -> true)

let test_of_parents_rejects_bad_root () =
  let parent = [| 1; -1 |] in
  check_bool "root must have parent -1" true
    (try
       ignore (Tree.of_parents ~graph_n:2 ~root:0 ~parent ~parent_edge:[| -1; -1 |]);
       false
     with Invalid_argument _ -> true)

let test_preorder_property () =
  let t = fixed_tree () in
  let pos = Array.make 7 0 in
  Array.iteri (fun i v -> pos.(v) <- i) t.Tree.preorder;
  Array.iteri
    (fun v p -> if p >= 0 then check_bool "parent before child" true (pos.(p) < pos.(v)))
    t.Tree.parent

let test_is_ancestor () =
  let t = fixed_tree () in
  check_bool "root ancestor of all" true (Tree.is_ancestor t 0 6);
  check_bool "reflexive" true (Tree.is_ancestor t 4 4);
  check_bool "1 anc 6" true (Tree.is_ancestor t 1 6);
  check_bool "2 not anc 6" false (Tree.is_ancestor t 2 6);
  check_bool "child not anc of parent" false (Tree.is_ancestor t 6 4)

let test_ancestors_list () =
  let t = fixed_tree () in
  check_bool "ancestors of 6" true (Tree.ancestors t 6 = [ 6; 4; 1; 0 ]);
  check_bool "ancestors of root" true (Tree.ancestors t 0 = [ 0 ])

let test_accumulate_up () =
  let t = fixed_tree () in
  let ones = Array.make 7 1 in
  let sums = Tree.accumulate_up t ones in
  check_bool "subtree sums equal sizes" true (sums = t.Tree.size);
  let x = [| 1; 10; 100; 1000; 10000; 100000; 1000000 |] in
  let s = Tree.accumulate_up t x in
  check_int "leaf keeps own" 1000 s.(3);
  check_int "node 4 = 4 + 6" 1010000 s.(4);
  check_int "node 1" 1011010 s.(1);
  check_int "root totals" 1111111 s.(0)

let test_subtree_members () =
  let t = fixed_tree () in
  check_bool "members of 1" true (List.sort compare (Tree.subtree_members t 1) = [ 1; 3; 4; 6 ]);
  check_bool "members of leaf" true (Tree.subtree_members t 5 = [ 5 ])

let test_tree_edges () =
  let t = fixed_tree () in
  check_int "n-1 edges" 6 (List.length (Tree.tree_edges t))

let test_of_edge_ids () =
  let g = Generators.ring 6 in
  (* drop edge 5 (between 5 and 0): path spanning tree *)
  let ids = [ 0; 1; 2; 3; 4 ] in
  let t = Tree.of_edge_ids g ~root:0 ids in
  check_int "height is 5" 5 (Tree.height t);
  check_int "parent of 5" 4 t.Tree.parent.(5)

let test_of_edge_ids_rejects_nonspanning () =
  let g = Generators.ring 6 in
  check_bool "too few edges" true
    (try
       ignore (Tree.of_edge_ids g ~root:0 [ 0; 1 ]);
       false
     with Invalid_argument _ -> true)

let test_bfs_tree_depth_matches_dist () =
  List.iter
    (fun (name, g) ->
      let t = Tree.bfs_tree g ~root:0 in
      let r = Bfs.run g ~source:0 in
      check_bool (name ^ " depths = bfs dists") true (t.Tree.depth = r.Bfs.dist))
    (small_connected_graphs ())

let test_lca_fixed () =
  let t = fixed_tree () in
  let lca = Tree.Lca.build t in
  check_int "lca(3,6)" 1 (Tree.Lca.query lca 3 6);
  check_int "lca(3,5)" 0 (Tree.Lca.query lca 3 5);
  check_int "lca(4,6)" 4 (Tree.Lca.query lca 4 6);
  check_int "lca(v,v)" 3 (Tree.Lca.query lca 3 3);
  check_int "lca with root" 0 (Tree.Lca.query lca 0 6)

(* reference LCA by walking ancestor lists *)
let naive_lca t a b =
  let anc_a = Tree.ancestors t a in
  let rec go b = if List.mem b anc_a then b else go t.Tree.parent.(b) in
  go b

let test_lca_matches_naive_random () =
  let rng = Mincut_util.Rng.create 31 in
  for _ = 1 to 10 do
    let g = Generators.random_tree ~rng 40 in
    let t = Tree.bfs_tree g ~root:0 in
    let lca = Tree.Lca.build t in
    for _ = 1 to 50 do
      let a = Mincut_util.Rng.int rng 40 and b = Mincut_util.Rng.int rng 40 in
      check_int "lca vs naive" (naive_lca t a b) (Tree.Lca.query lca a b)
    done
  done

let test_mst_known_weights () =
  (* square with diagonal: MST must take the three lightest edges *)
  let g = Graph.create ~n:4 [ (0, 1, 1); (1, 2, 2); (2, 3, 5); (0, 3, 4); (0, 2, 3) ] in
  let w ids = Mst_seq.tree_weight g ids in
  check_int "kruskal weight" 7 (w (Mst_seq.kruskal g));
  check_int "prim weight" 7 (w (Mst_seq.prim g));
  check_int "boruvka weight" 7 (w (Mst_seq.boruvka g))

let test_mst_algorithms_agree () =
  List.iter
    (fun (name, g) ->
      let wk = Mst_seq.tree_weight g (Mst_seq.kruskal g) in
      let wp = Mst_seq.tree_weight g (Mst_seq.prim g) in
      let wb = Mst_seq.tree_weight g (Mst_seq.boruvka g) in
      check_int (name ^ " kruskal=prim") wk wp;
      check_int (name ^ " kruskal=boruvka") wk wb)
    (small_connected_graphs ())

let test_mst_is_spanning_tree () =
  List.iter
    (fun (name, g) ->
      check_bool (name ^ " kruskal spans") true (Mst_seq.is_spanning_tree g (Mst_seq.kruskal g));
      check_bool (name ^ " boruvka spans") true (Mst_seq.is_spanning_tree g (Mst_seq.boruvka g)))
    (small_connected_graphs ())

let test_kruskal_by_custom_order () =
  (* maximize instead of minimize by flipping the comparison *)
  let g = Graph.create ~n:3 [ (0, 1, 1); (1, 2, 2); (0, 2, 3) ] in
  let ids =
    Mst_seq.kruskal_by g ~cmp:(fun a b ->
        match compare b.Graph.w a.Graph.w with 0 -> compare a.Graph.id b.Graph.id | c -> c)
  in
  check_int "max spanning tree weight" 5 (Mst_seq.tree_weight g ids)

let test_boruvka_forest_on_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  check_int "forest has 2 edges" 2 (List.length (Mst_seq.boruvka g))

let qcheck_tests =
  [
    qtest "bfs tree: sizes sum bounded and root spans all" (arbitrary_connected ())
      (fun g ->
        let t = Tree.bfs_tree g ~root:0 in
        t.Tree.size.(0) = Graph.n g);
    qtest "lca of edge endpoints is an ancestor of both" (arbitrary_connected ())
      (fun g ->
        let t = Tree.bfs_tree g ~root:0 in
        let lca = Tree.Lca.build t in
        Array.for_all
          (fun e ->
            let l = Tree.Lca.query lca e.Graph.u e.Graph.v in
            Tree.is_ancestor t l e.Graph.u && Tree.is_ancestor t l e.Graph.v)
          (Graph.edges g));
    qtest "mst weight minimal vs 50 random spanning trees" (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let opt = Mst_seq.tree_weight g (Mst_seq.kruskal g) in
        let rng = Mincut_util.Rng.create (Graph.n g + Graph.m g) in
        let random_spanning_weight () =
          (* random order kruskal = a uniform-ish spanning tree *)
          let perm = Array.init (Graph.m g) (fun i -> i) in
          Mincut_util.Rng.shuffle rng perm;
          let order = Array.make (Graph.m g) 0 in
          Array.iteri (fun pos id -> order.(id) <- pos) perm;
          let ids =
            Mst_seq.kruskal_by g ~cmp:(fun a b ->
                compare order.(a.Graph.id) order.(b.Graph.id))
          in
          Mst_seq.tree_weight g ids
        in
        let ok = ref true in
        for _ = 1 to 50 do
          if random_spanning_weight () < opt then ok := false
        done;
        !ok);
  ]

let suite =
  [
    tc "tree: of_parents basic" test_of_parents_basic;
    tc "tree: rejects cycles" test_of_parents_rejects_cycle;
    tc "tree: rejects bad root" test_of_parents_rejects_bad_root;
    tc "tree: preorder property" test_preorder_property;
    tc "tree: is_ancestor" test_is_ancestor;
    tc "tree: ancestors list" test_ancestors_list;
    tc "tree: accumulate_up" test_accumulate_up;
    tc "tree: subtree members" test_subtree_members;
    tc "tree: tree_edges count" test_tree_edges;
    tc "tree: of_edge_ids" test_of_edge_ids;
    tc "tree: of_edge_ids rejects non-spanning" test_of_edge_ids_rejects_nonspanning;
    tc "tree: bfs tree depths" test_bfs_tree_depth_matches_dist;
    tc "lca: fixed cases" test_lca_fixed;
    tc "lca: matches naive on random trees" test_lca_matches_naive_random;
    tc "mst: known weights" test_mst_known_weights;
    tc "mst: algorithms agree" test_mst_algorithms_agree;
    tc "mst: spanning property" test_mst_is_spanning_tree;
    tc "mst: custom order (max tree)" test_kruskal_by_custom_order;
    tc "mst: boruvka forest when disconnected" test_boruvka_forest_on_disconnected;
  ]
  @ qcheck_tests
