open Test_helpers
module All_min_cuts = Mincut_graph.All_min_cuts
module Metrics = Mincut_graph.Metrics
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Tree_packing = Mincut_treepack.Tree_packing
module Certificate = Mincut_core.Certificate
module Api = Mincut_core.Api
module Params = Mincut_core.Params
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng

(* ---- all min cuts -------------------------------------------------- *)

let test_all_min_cuts_ring () =
  (* ring of n: min cut = 2, realized by every pair of edges: C(n,2) cuts *)
  let r = All_min_cuts.exhaustive (Generators.ring 6) in
  check_int "value" 2 r.All_min_cuts.value;
  check_int "count C(6,2)" 15 (List.length r.All_min_cuts.sides)

let test_all_min_cuts_path () =
  let r = All_min_cuts.exhaustive (Generators.path 5) in
  check_int "value" 1 r.All_min_cuts.value;
  check_int "one cut per edge" 4 (List.length r.All_min_cuts.sides)

let test_all_min_cuts_barbell () =
  let r = All_min_cuts.exhaustive (Generators.barbell 4) in
  check_int "unique min cut" 1 (List.length r.All_min_cuts.sides)

let test_all_min_cuts_sides_valid () =
  List.iter
    (fun (name, g) ->
      if Graph.n g <= 14 then begin
        let r = All_min_cuts.exhaustive g in
        List.iter
          (fun side ->
            check_int (name ^ " side achieves λ") r.All_min_cuts.value
              (Graph.cut_of_bitset g side);
            check_bool (name ^ " canonical (0 outside)") false (Bitset.mem side 0))
          r.All_min_cuts.sides
      end)
    (small_connected_graphs ())

let test_randomized_subset_of_exhaustive () =
  let rng = Rng.create 15 in
  for _ = 1 to 5 do
    let g = Generators.gnp_connected ~rng 10 0.5 in
    let ex = All_min_cuts.exhaustive g in
    let rand = All_min_cuts.randomized ~rng g in
    check_int "same value" ex.All_min_cuts.value rand.All_min_cuts.value;
    let keys l = List.sort compare (List.map Bitset.to_list l) in
    let ex_keys = keys ex.All_min_cuts.sides in
    List.iter
      (fun k -> check_bool "randomized side is a true min cut" true (List.mem k ex_keys))
      (keys rand.All_min_cuts.sides)
  done

let test_randomized_finds_all_on_ring () =
  let rng = Rng.create 16 in
  let r = All_min_cuts.randomized ~rng ~trials:2000 (Generators.ring 6) in
  check_int "all 15 ring cuts found" 15 (List.length r.All_min_cuts.sides)

(* ---- metrics -------------------------------------------------------- *)

let test_metrics_complete () =
  let m = Metrics.compute (Generators.complete 6) in
  check_int "min deg" 5 m.Metrics.min_degree;
  check_int "max deg" 5 m.Metrics.max_degree;
  check_int "diameter" 1 m.Metrics.diameter;
  check_bool "fully clustered" true (m.Metrics.triangle_density = 1.0)

let test_metrics_tree_no_triangles () =
  let rng = Rng.create 9 in
  let m = Metrics.compute (Generators.random_tree ~rng 20) in
  check_bool "no triangles in trees" true (m.Metrics.triangle_density = 0.0)

let test_metrics_row_arity () =
  let m = Metrics.compute (Generators.grid 3 3) in
  check_int "row matches columns" (List.length Metrics.columns)
    (List.length (Metrics.pp_row m))

(* ---- disjoint packing ------------------------------------------------ *)

let test_disjoint_trees_are_disjoint () =
  List.iter
    (fun (name, g) ->
      let trees = Tree_packing.disjoint_greedy g in
      let use = Array.make (Graph.m g) 0 in
      List.iter (List.iter (fun id -> use.(id) <- use.(id) + 1)) trees;
      Array.iteri
        (fun id u ->
          check_bool (name ^ " within capacity") true (u <= Graph.weight g id))
        use;
      List.iter
        (fun ids ->
          check_bool (name ^ " spans") true (Mincut_graph.Mst_seq.is_spanning_tree g ids))
        trees)
    (small_connected_graphs ())

let test_disjoint_count_bounds () =
  List.iter
    (fun (name, g, lambda) ->
      let c = Tree_packing.disjoint_count g in
      check_bool
        (Printf.sprintf "%s: %d trees <= λ=%d" name c lambda)
        true (c <= lambda);
      check_bool (name ^ " at least one") true (c >= 1))
    [
      ("ring8", Generators.ring 8, 2);
      ("complete6", Generators.complete 6, 5);
      ("torus4x4", Generators.torus 4 4, 4);
      ("hypercube4", Generators.hypercube 4, 4);
      ("path5", Generators.path 5, 1);
    ]

let test_disjoint_weighted_multiplicity () =
  (* doubled ring: weight 2 everywhere → two edge-disjoint spanning trees *)
  let g = Generators.ring ~weights:{ Generators.wmin = 2; wmax = 2 }
            ~rng:(Rng.create 1) 6 in
  check_bool "at least 2 trees" true (Tree_packing.disjoint_count g >= 2)

(* ---- certification ---------------------------------------------------- *)

let test_certificate_accepts_truth () =
  List.iter
    (fun (name, g) ->
      let s = Api.min_cut ~params:Params.fast g in
      let report = Certificate.certify_summary g s in
      check_bool (name ^ " accepted") true report.Certificate.accepted;
      check_int (name ^ " recomputed") s.Api.value report.Certificate.recomputed;
      check_bool (name ^ " certification is cheap") true
        (report.Certificate.rounds < 6 * (Graph.n g + 5)))
    (small_connected_graphs ())

let test_certificate_rejects_wrong_value () =
  let g = Generators.torus 4 4 in
  let s = Api.min_cut ~params:Params.fast g in
  let report = Certificate.certify g ~value:(s.Api.value + 1) ~side:s.Api.side in
  check_bool "rejected" false report.Certificate.accepted

let test_certificate_rejects_trivial_side () =
  let g = Generators.ring 6 in
  let full = Bitset.create 6 in
  Bitset.complement_inplace full;
  let report = Certificate.certify g ~value:0 ~side:full in
  check_bool "full side rejected" false report.Certificate.accepted;
  let empty = Bitset.create 6 in
  let report = Certificate.certify g ~value:0 ~side:empty in
  check_bool "empty side rejected" false report.Certificate.accepted

let test_certificate_outputs () =
  let g = Generators.barbell 4 in
  let s = Api.min_cut ~params:Params.fast g in
  let bits = Certificate.outputs g s.Api.side in
  let members = Bitset.cardinal s.Api.side in
  check_int "bit count matches side" members
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 bits)

let qcheck_tests =
  [
    qtest ~count:30 "exhaustive enumeration: count >= 1, all achieve λ"
      (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let r = All_min_cuts.exhaustive g in
        r.All_min_cuts.sides <> []
        && List.for_all
             (fun s -> Graph.cut_of_bitset g s = r.All_min_cuts.value)
             r.All_min_cuts.sides
        && r.All_min_cuts.value = (Stoer_wagner.run g).Mincut_graph.Stoer_wagner.value);
    qtest ~count:30 "disjoint packing bounded by λ" (arbitrary_connected ~max_n:12 ())
      (fun g ->
        Tree_packing.disjoint_count g
        <= (Stoer_wagner.run g).Mincut_graph.Stoer_wagner.value);
    qtest ~count:30 "certificate sound and complete on claims"
      (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let s = Api.min_cut ~params:Params.fast g in
        let good = Certificate.certify_summary g s in
        let bad = Certificate.certify g ~value:(s.Api.value + 1) ~side:s.Api.side in
        good.Certificate.accepted && not bad.Certificate.accepted);
  ]

let suite =
  [
    tc "all-cuts: ring enumeration" test_all_min_cuts_ring;
    tc "all-cuts: path enumeration" test_all_min_cuts_path;
    tc "all-cuts: unique barbell cut" test_all_min_cuts_barbell;
    tc "all-cuts: sides valid and canonical" test_all_min_cuts_sides_valid;
    tc "all-cuts: randomized subset of exhaustive" test_randomized_subset_of_exhaustive;
    tc_slow "all-cuts: randomized completeness on ring" test_randomized_finds_all_on_ring;
    tc "metrics: complete graph" test_metrics_complete;
    tc "metrics: trees have no triangles" test_metrics_tree_no_triangles;
    tc "metrics: row arity" test_metrics_row_arity;
    tc "disjoint packing: trees are edge-disjoint" test_disjoint_trees_are_disjoint;
    tc "disjoint packing: bounded by λ" test_disjoint_count_bounds;
    tc "disjoint packing: weighted multiplicity" test_disjoint_weighted_multiplicity;
    tc "certificate: accepts the truth" test_certificate_accepts_truth;
    tc "certificate: rejects wrong values" test_certificate_rejects_wrong_value;
    tc "certificate: rejects trivial sides" test_certificate_rejects_trivial_side;
    tc "certificate: per-node outputs" test_certificate_outputs;
  ]
  @ qcheck_tests
