open Test_helpers
module Bitset = Mincut_util.Bitset
module Union_find = Mincut_graph.Union_find
module Diameter = Mincut_graph.Diameter
module Dimacs = Mincut_graph.Dimacs

let test_create_basic () =
  let g = Graph.create ~n:3 [ (0, 1, 2); (1, 2, 3) ] in
  check_int "n" 3 (Graph.n g);
  check_int "m" 2 (Graph.m g);
  check_int "weight" 2 (Graph.weight g 0);
  check_int "total weight" 5 (Graph.total_weight g)

let test_create_normalizes_endpoints () =
  let g = Graph.create ~n:3 [ (2, 0, 1) ] in
  check_bool "u < v" true (Graph.endpoints g 0 = (0, 2))

let test_create_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self loop")
    (fun () -> ignore (Graph.create ~n:2 [ (1, 1, 1) ]))

let test_create_rejects_bad_weight () =
  Alcotest.check_raises "weight" (Invalid_argument "Graph.create: non-positive weight")
    (fun () -> ignore (Graph.create ~n:2 [ (0, 1, 0) ]))

let test_create_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.create: endpoint out of range (0,5), n=3") (fun () ->
      ignore (Graph.create ~n:3 [ (0, 5, 1) ]))

let test_parallel_edges_kept () =
  let g = Graph.create ~n:2 [ (0, 1, 1); (0, 1, 2) ] in
  check_int "multigraph m" 2 (Graph.m g);
  check_int "weighted degree sums parallels" 3 (Graph.weighted_degree g 0)

let test_degrees () =
  let g = Graph.create ~n:4 [ (0, 1, 5); (0, 2, 1); (0, 3, 2) ] in
  check_int "star center degree" 3 (Graph.degree g 0);
  check_int "star center wdeg" 8 (Graph.weighted_degree g 0);
  check_int "leaf degree" 1 (Graph.degree g 1);
  check_int "leaf wdeg" 5 (Graph.weighted_degree g 1)

let test_other_endpoint () =
  let g = Graph.create ~n:3 [ (0, 2, 1) ] in
  check_int "other of 0" 2 (Graph.other_endpoint g 0 0);
  check_int "other of 2" 0 (Graph.other_endpoint g 0 2)

let test_cut_value_manual () =
  (* triangle with weights 1,2,3: cutting off node 0 counts edges 0-1, 0-2 *)
  let g = Graph.create ~n:3 [ (0, 1, 1); (0, 2, 2); (1, 2, 3) ] in
  check_int "C({0})" 3 (Graph.cut_value g ~in_cut:(fun v -> v = 0));
  check_int "C({1})" 4 (Graph.cut_value g ~in_cut:(fun v -> v = 1));
  check_int "C({2})" 5 (Graph.cut_value g ~in_cut:(fun v -> v = 2));
  check_int "C(V) = 0" 0 (Graph.cut_value g ~in_cut:(fun _ -> true))

let test_cut_symmetry () =
  List.iter
    (fun (_, g) ->
      let side = Bitset.create (Graph.n g) in
      Bitset.add side 0;
      let c1 = Graph.cut_of_bitset g side in
      Bitset.complement_inplace side;
      check_int "C(X) = C(V-X)" c1 (Graph.cut_of_bitset g side))
    (small_connected_graphs ())

let test_sub_by_edges () =
  let g = Graph.create ~n:3 [ (0, 1, 1); (1, 2, 2); (0, 2, 3) ] in
  let h = Graph.sub_by_edges g ~keep:(fun e -> e.Graph.w >= 2) in
  check_int "kept 2" 2 (Graph.m h);
  check_int "same n" 3 (Graph.n h)

let test_reweight_drops_nonpositive () =
  let g = Graph.create ~n:3 [ (0, 1, 1); (1, 2, 2) ] in
  let h = Graph.reweight g ~f:(fun e -> e.Graph.w - 1) in
  check_int "dropped zero-weight" 1 (Graph.m h);
  check_int "reweighted" 1 (Graph.weight h 0)

let test_equal_structure () =
  let a = Graph.create ~n:3 [ (0, 1, 1); (1, 2, 2) ] in
  let b = Graph.create ~n:3 [ (2, 1, 2); (1, 0, 1) ] in
  let c = Graph.create ~n:3 [ (0, 1, 1); (1, 2, 3) ] in
  check_bool "order-insensitive equal" true (Graph.equal_structure a b);
  check_bool "weight-sensitive" false (Graph.equal_structure a c)

let test_union_find_basics () =
  let uf = Union_find.create 5 in
  check_int "initial count" 5 (Union_find.count uf);
  check_bool "union works" true (Union_find.union uf 0 1);
  check_bool "re-union is false" false (Union_find.union uf 0 1);
  check_bool "same" true (Union_find.same uf 0 1);
  check_bool "not same" false (Union_find.same uf 0 2);
  check_int "count after union" 4 (Union_find.count uf)

let test_union_find_transitivity () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  check_bool "transitive" true (Union_find.same uf 0 2);
  check_bool "separate" false (Union_find.same uf 2 3);
  let groups = Union_find.groups uf in
  let sizes =
    Array.to_list groups |> List.map List.length |> List.filter (fun l -> l > 0)
    |> List.sort compare
  in
  check_bool "group sizes" true (sizes = [ 1; 2; 3 ])

let test_bfs_path () =
  let g = Generators.path 5 in
  let r = Bfs.run g ~source:0 in
  check_int "dist to end" 4 r.Bfs.dist.(4);
  check_int "parent chain" 3 r.Bfs.parent.(4);
  check_int "source parent" (-1) r.Bfs.parent.(0)

let test_bfs_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  let r = Bfs.run g ~source:0 in
  check_int "unreachable" (-1) r.Bfs.dist.(2);
  check_bool "not connected" false (Bfs.is_connected g);
  let labels = Bfs.components g in
  check_bool "two components" true (labels.(0) = labels.(1) && labels.(2) = labels.(3));
  check_bool "distinct" true (labels.(0) <> labels.(2))

let test_bfs_multi_source () =
  let g = Generators.path 7 in
  let r = Bfs.run_multi g ~sources:[ 0; 6 ] in
  check_int "middle distance" 3 r.Bfs.dist.(3);
  check_int "near right source" 1 r.Bfs.dist.(5)

let test_bfs_order_is_level_order () =
  let g = Generators.path 4 in
  let r = Bfs.run g ~source:0 in
  check_bool "order" true (r.Bfs.order = [ 0; 1; 2; 3 ])

let test_diameter_known () =
  check_int "path" 9 (Diameter.exact (Generators.path 10));
  check_int "ring even" 4 (Diameter.exact (Generators.ring 8));
  check_int "ring odd" 4 (Diameter.exact (Generators.ring 9));
  check_int "complete" 1 (Diameter.exact (Generators.complete 6));
  check_int "grid" 5 (Diameter.exact (Generators.grid 3 4));
  check_int "hypercube" 4 (Diameter.exact (Generators.hypercube 4));
  check_int "wheel" 2 (Diameter.exact (Generators.wheel 8))

let test_diameter_double_sweep_tree_exact () =
  let rng = Mincut_util.Rng.create 77 in
  for _ = 1 to 20 do
    let g = Generators.random_tree ~rng 30 in
    check_int "double sweep exact on trees" (Diameter.exact g) (Diameter.double_sweep g)
  done

let test_diameter_double_sweep_lower_bound () =
  List.iter
    (fun (name, g) ->
      check_bool name true (Diameter.double_sweep g <= Diameter.exact g))
    (small_connected_graphs ())

let test_generator_sizes () =
  check_int "grid n" 12 (Graph.n (Generators.grid 3 4));
  check_int "torus m" 18 (Graph.m (Generators.torus 3 3));
  check_int "complete m" 15 (Graph.m (Generators.complete 6));
  check_int "hypercube m" 32 (Graph.m (Generators.hypercube 4));
  check_int "barbell n" 8 (Graph.n (Generators.barbell 4));
  check_int "barbell m" 13 (Graph.m (Generators.barbell 4));
  check_int "caterpillar n" 9 (Graph.n (Generators.caterpillar 3 2));
  check_int "path-of-cliques n" 12 (Graph.n (Generators.path_of_cliques ~clique:4 ~length:3))

let test_generator_connectivity () =
  List.iter
    (fun (name, g) -> check_bool (name ^ " connected") true (Bfs.is_connected g))
    (small_connected_graphs ())

let test_random_regular_degrees () =
  let rng = Mincut_util.Rng.create 123 in
  let g = Generators.random_regular ~rng 12 3 in
  for v = 0 to 11 do
    check_int "regular degree" 3 (Graph.degree g v)
  done

let test_random_tree_edge_count () =
  let rng = Mincut_util.Rng.create 5 in
  let g = Generators.random_tree ~rng 40 in
  check_int "tree edges" 39 (Graph.m g);
  check_bool "tree connected" true (Bfs.is_connected g)

let test_gnp_extreme_p () =
  let rng = Mincut_util.Rng.create 6 in
  check_int "p=0 empty" 0 (Graph.m (Generators.gnp ~rng 10 0.0));
  check_int "p=1 complete" 45 (Graph.m (Generators.gnp ~rng 10 1.0))

let test_gnp_density () =
  let rng = Mincut_util.Rng.create 8 in
  let g = Generators.gnp ~rng 60 0.3 in
  let expected = 0.3 *. float_of_int (60 * 59 / 2) in
  let got = float_of_int (Graph.m g) in
  check_bool "within 25% of expectation" true
    (abs_float (got -. expected) < 0.25 *. expected)

let test_dimacs_roundtrip () =
  List.iter
    (fun (name, g) ->
      let g' = Dimacs.of_string (Dimacs.to_string g) in
      check_bool (name ^ " roundtrip") true (Graph.equal_structure g g'))
    (small_connected_graphs ())

let test_dimacs_rejects_garbage () =
  check_bool "missing header" true
    (try
       ignore (Dimacs.of_string "e 0 1 2\n");
       false
     with Failure _ -> true);
  check_bool "bad integer" true
    (try
       ignore (Dimacs.of_string "p 2 1\ne 0 x 1\n");
       false
     with Failure _ -> true);
  check_bool "edge count mismatch" true
    (try
       ignore (Dimacs.of_string "p 2 2\ne 0 1 1\n");
       false
     with Failure _ -> true)

let test_spider_shape () =
  let g = Generators.spider ~legs:4 ~leg_length:3 in
  check_int "n" 13 (Graph.n g);
  check_int "m = n-1 (tree)" 12 (Graph.m g);
  check_int "hub degree" 4 (Graph.degree g 0);
  check_bool "connected" true (Bfs.is_connected g);
  check_int "diameter = 2 legs" 6 (Mincut_graph.Diameter.exact g)

let test_spider_single_leg () =
  let g = Generators.spider ~legs:1 ~leg_length:5 in
  check_int "path-like" 6 (Graph.n g);
  check_int "diameter" 5 (Mincut_graph.Diameter.exact g)

let test_family_factory_all () =
  let rng = Mincut_util.Rng.create 1 in
  List.iter
    (fun name ->
      match Generators.by_name ~rng ~name ~size:8 () with
      | Ok g ->
          check_bool (name ^ " nonempty") true (Graph.n g >= 2);
          check_bool (name ^ " connected") true (Bfs.is_connected g)
      | Error e -> Alcotest.fail e)
    Generators.family_names

let test_family_factory_unknown () =
  let rng = Mincut_util.Rng.create 1 in
  check_bool "unknown family" true
    (match Generators.by_name ~rng ~name:"nonsense" ~size:8 () with
     | Error _ -> true
     | Ok _ -> false)

let test_dot_export () =
  let g = Generators.ring 4 in
  let side = Bitset.create 4 in
  Bitset.add side 0;
  Bitset.add side 1;
  let dot = Mincut_graph.Dot.to_dot ~side g in
  let count_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (if String.sub hay i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check_bool "has header" true (String.length dot > 10 && String.sub dot 0 5 = "graph");
  check_int "paints both side nodes" 2 (count_sub "lightblue" dot);
  (* 2 crossing edges -> two dashed-red edges *)
  check_int "crossing edges dashed" 2 (count_sub "style=dashed" dot)

let test_dimacs_comments_ignored () =
  let g = Dimacs.of_string "c hello\np 2 1\nc mid\ne 0 1 7\n" in
  check_int "n" 2 (Graph.n g);
  check_int "w" 7 (Graph.weight g 0)

let qcheck_tests =
  [
    qtest "cut(singleton v) = weighted degree v" (arbitrary_connected ())
      (fun g ->
        let v = Graph.n g - 1 in
        Graph.cut_value g ~in_cut:(fun u -> u = v) = Graph.weighted_degree g v);
    qtest "sum of weighted degrees = 2 * total weight" (arbitrary_connected ())
      (fun g ->
        let sum = ref 0 in
        for v = 0 to Graph.n g - 1 do
          sum := !sum + Graph.weighted_degree g v
        done;
        !sum = 2 * Graph.total_weight g);
    qtest "dimacs roundtrip" (arbitrary_connected ()) (fun g ->
        Graph.equal_structure g (Dimacs.of_string (Dimacs.to_string g)));
    qtest "bfs distances obey triangle along edges" (arbitrary_connected ())
      (fun g ->
        let r = Bfs.run g ~source:0 in
        Array.for_all
          (fun e ->
            abs (r.Bfs.dist.(e.Graph.u) - r.Bfs.dist.(e.Graph.v)) <= 1)
          (Graph.edges g));
  ]

let suite =
  [
    tc "graph: create basic" test_create_basic;
    tc "graph: normalizes endpoints" test_create_normalizes_endpoints;
    tc "graph: rejects self loops" test_create_rejects_self_loop;
    tc "graph: rejects bad weights" test_create_rejects_bad_weight;
    tc "graph: rejects out-of-range" test_create_rejects_out_of_range;
    tc "graph: parallel edges kept" test_parallel_edges_kept;
    tc "graph: degrees" test_degrees;
    tc "graph: other_endpoint" test_other_endpoint;
    tc "graph: cut value manual" test_cut_value_manual;
    tc "graph: cut symmetry" test_cut_symmetry;
    tc "graph: sub_by_edges" test_sub_by_edges;
    tc "graph: reweight drops non-positive" test_reweight_drops_nonpositive;
    tc "graph: equal_structure" test_equal_structure;
    tc "union-find: basics" test_union_find_basics;
    tc "union-find: transitivity and groups" test_union_find_transitivity;
    tc "bfs: path distances" test_bfs_path;
    tc "bfs: disconnected" test_bfs_disconnected;
    tc "bfs: multi-source" test_bfs_multi_source;
    tc "bfs: level order" test_bfs_order_is_level_order;
    tc "diameter: known families" test_diameter_known;
    tc "diameter: double sweep exact on trees" test_diameter_double_sweep_tree_exact;
    tc "diameter: double sweep lower bounds" test_diameter_double_sweep_lower_bound;
    tc "generators: sizes" test_generator_sizes;
    tc "generators: connectivity" test_generator_connectivity;
    tc "generators: regular degrees" test_random_regular_degrees;
    tc "generators: random tree" test_random_tree_edge_count;
    tc "generators: gnp extremes" test_gnp_extreme_p;
    tc "generators: gnp density" test_gnp_density;
    tc "generators: spider shape" test_spider_shape;
    tc "generators: spider single leg" test_spider_single_leg;
    tc "generators: family factory" test_family_factory_all;
    tc "generators: factory rejects unknown" test_family_factory_unknown;
    tc "dot: export paints cuts" test_dot_export;
    tc "dimacs: roundtrip" test_dimacs_roundtrip;
    tc "dimacs: rejects garbage" test_dimacs_rejects_garbage;
    tc "dimacs: comments ignored" test_dimacs_comments_ignored;
  ]
  @ qcheck_tests
