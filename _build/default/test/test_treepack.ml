open Test_helpers
module Tree_packing = Mincut_treepack.Tree_packing
module Mst_seq = Mincut_graph.Mst_seq
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Bitset = Mincut_util.Bitset

let test_load_invariant_families () =
  List.iter
    (fun (name, g) ->
      let p = Tree_packing.greedy g ~trees:5 in
      check_bool (name ^ " load invariant") true (Tree_packing.load_invariant g p))
    (small_connected_graphs ())

let test_first_tree_is_mst () =
  (* with all loads zero the packing order degenerates to (weight, id),
     so the first packed tree is exactly the deterministic Kruskal MST *)
  List.iter
    (fun (name, g) ->
      let p = Tree_packing.greedy g ~trees:1 in
      check_bool (name ^ " first tree = kruskal") true
        (List.sort compare p.Tree_packing.trees.(0)
        = List.sort compare (Mst_seq.kruskal g)))
    (small_connected_graphs ())

let test_deterministic () =
  let rng = Mincut_util.Rng.create 3 in
  let g = Generators.gnp_connected ~rng 20 0.4 in
  let a = Tree_packing.greedy g ~trees:6 in
  let b = Tree_packing.greedy g ~trees:6 in
  check_bool "same packing" true (a.Tree_packing.trees = b.Tree_packing.trees)

let test_loads_spread () =
  (* on a ring, consecutive MSTs must rotate which edge is left out, so
     after n trees loads are balanced *)
  let n = 6 in
  let g = Generators.ring n in
  let p = Tree_packing.greedy g ~trees:n in
  Array.iter
    (fun l -> check_bool "balanced ring loads" true (l = n - 1))
    p.Tree_packing.loads

let test_crossings () =
  let g = Generators.ring 6 in
  let p = Tree_packing.greedy g ~trees:1 in
  (* cut {0,1,2} of the ring crosses 2 edges; a spanning tree crosses it
     1 or 2 times *)
  let in_cut v = v <= 2 in
  let c = Tree_packing.crossings g p.Tree_packing.trees.(0) ~in_cut in
  check_bool "crossings in {1,2}" true (c = 1 || c = 2)

let test_one_respecting_found_on_known_cuts () =
  (* planted cut: some packed tree must 1-respect the (unique, small)
     min cut quickly *)
  let rng = Mincut_util.Rng.create 11 in
  List.iter
    (fun cut_edges ->
      let g = Generators.planted_cut ~rng ~n:24 ~cut_edges ~p_in:0.8 () in
      let sw = Stoer_wagner.run g in
      let in_cut = Bitset.mem sw.Stoer_wagner.side in
      let p = Tree_packing.greedy g ~trees:24 in
      match Tree_packing.first_one_respecting g p ~in_cut with
      | Some i -> check_bool (Printf.sprintf "k=%d found at %d" cut_edges i) true (i < 24)
      | None -> Alcotest.failf "no 1-respecting tree found for k=%d" cut_edges)
    [ 1; 2; 3 ]

let test_bridge_always_one_respected () =
  (* λ=1: every spanning tree contains the bridge and crosses the cut once *)
  let g = Generators.barbell 5 in
  let p = Tree_packing.greedy g ~trees:3 in
  let in_cut v = v < 5 in
  Array.iter
    (fun ids -> check_int "bridge crossed once" 1 (Tree_packing.crossings g ids ~in_cut))
    p.Tree_packing.trees

let test_recommended_trees_bounds () =
  check_bool "min 8" true (Tree_packing.recommended_trees ~n:4 ~lambda_hint:1 >= 8);
  check_bool "capped" true (Tree_packing.recommended_trees ~n:100000 ~lambda_hint:1000 <= 96)

let test_theory_trees_growth () =
  check_bool "monotone in lambda" true
    (Tree_packing.theory_trees ~n:100 ~lambda:3 > Tree_packing.theory_trees ~n:100 ~lambda:2);
  check_bool "theory bound is galactic" true (Tree_packing.theory_trees ~n:1024 ~lambda:10 > 1e9)

let test_rejects_bad_input () =
  check_bool "rejects 0 trees" true
    (try
       ignore (Tree_packing.greedy (Generators.path 3) ~trees:0);
       false
     with Invalid_argument _ -> true);
  check_bool "rejects disconnected" true
    (try
       ignore (Tree_packing.greedy (Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ]) ~trees:1);
       false
     with Invalid_argument _ -> true)

let test_first_tree_matches_distributed_mst () =
  (* the trees the packing charges at the KP bound are exactly what the
     real distributed MST computes under the same (weight, id) order *)
  List.iter
    (fun (name, g) ->
      let p = Tree_packing.greedy g ~trees:1 in
      let d = Mincut_mst.Boruvka_dist.run g in
      check_bool (name ^ " packing tree 1 = distributed MST") true
        (List.sort compare p.Tree_packing.trees.(0)
        = List.sort compare d.Mincut_mst.Boruvka_dist.edge_ids))
    (small_connected_graphs ())

let qcheck_tests =
  [
    qtest ~count:50 "packing load invariant" (arbitrary_connected ()) (fun g ->
        Tree_packing.load_invariant g (Tree_packing.greedy g ~trees:4));
    qtest ~count:40 "some tree 1-respects some min cut within 4λ log n trees"
      (arbitrary_connected ~max_n:12 ())
      (fun g ->
        let sw = Mincut_graph.Stoer_wagner.run g in
        let lambda = sw.Mincut_graph.Stoer_wagner.value in
        let trees = max 8 (4 * lambda * 4) in
        let p = Tree_packing.greedy g ~trees in
        (* the test checks the *algorithmic* property we rely on: the min
           over trees of the best 1-respecting cut equals λ *)
        let best = ref max_int in
        Array.iter
          (fun ids ->
            let tree = Tree.of_edge_ids g ~root:0 ids in
            let r = Mincut_core.One_respect_seq.run g tree in
            best := min !best r.Mincut_core.One_respect_seq.best_value)
          p.Tree_packing.trees;
        !best = lambda);
  ]

let suite =
  [
    tc "packing: load invariant on families" test_load_invariant_families;
    tc "packing: first tree spans" test_first_tree_is_mst;
    tc "packing: deterministic" test_deterministic;
    tc "packing: ring loads balance" test_loads_spread;
    tc "packing: crossings" test_crossings;
    tc "packing: finds 1-respecting tree on planted cuts" test_one_respecting_found_on_known_cuts;
    tc "packing: bridges always 1-respected" test_bridge_always_one_respected;
    tc "packing: recommended trees bounds" test_recommended_trees_bounds;
    tc "packing: theory bound shape" test_theory_trees_growth;
    tc "packing: input validation" test_rejects_bad_input;
    tc "packing: first tree = real distributed MST" test_first_tree_matches_distributed_mst;
  ]
  @ qcheck_tests
