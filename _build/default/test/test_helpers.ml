(* Shared helpers for the test suites. *)

module Rng = Mincut_util.Rng
module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Bfs = Mincut_graph.Bfs
module Tree = Mincut_graph.Tree

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let tc name f = Alcotest.test_case name `Quick f

let tc_slow name f = Alcotest.test_case name `Slow f

(* A deterministic bag of small connected test graphs covering the edge
   cases (trees, cycles, cliques, multigraph-ish planted cuts, weighted). *)
let small_connected_graphs () =
  let rng = Rng.create 0xC0FFEE in
  let weights = { Generators.wmin = 1; wmax = 5 } in
  [
    ("path4", Generators.path 4);
    ("path2", Generators.path 2);
    ("ring5", Generators.ring 5);
    ("ring3-weighted", Generators.ring ~weights ~rng 3);
    ("complete5", Generators.complete 5);
    ("complete6-weighted", Generators.complete ~weights ~rng 6);
    ("grid3x4", Generators.grid 3 4);
    ("torus3x3", Generators.torus 3 3);
    ("hypercube3", Generators.hypercube 3);
    ("wheel7", Generators.wheel 7);
    ("barbell4", Generators.barbell 4);
    ("dumbbell3-2", Generators.dumbbell 3 2);
    ("caterpillar3x2", Generators.caterpillar 3 2);
    ("random-tree12", Generators.random_tree ~rng 12);
    ("gnp12", Generators.gnp_connected ~rng 12 0.5);
    ("gnp14-weighted", Generators.gnp_connected ~rng ~weights 14 0.5);
    ( "planted10",
      Generators.planted_cut ~rng ~n:10 ~cut_edges:2 ~p_in:0.9 () );
    ("regular8-3", Generators.random_regular ~rng 8 3);
  ]

(* qcheck generator: connected random graph with 2..max_n nodes, drawn
   from structurally diverse families (trees, dense gnp, weighted gnp,
   rings with chords, small planted cuts). *)
let arbitrary_connected ?(max_n = 14) () =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* n = int_range 2 max_n in
    let* style = int_range 0 4 in
    return
      (let rng = Rng.create seed in
       match style with
       | 0 -> Generators.random_tree ~rng n
       | 1 -> Generators.gnp_connected ~rng n 0.6
       | 2 ->
           Generators.gnp_connected ~rng
             ~weights:{ Generators.wmin = 1; wmax = 4 }
             n 0.6
       | 3 ->
           if n < 3 then Generators.path n
           else
             (* ring plus a few random chords *)
             let base = Generators.ring n in
             let chords =
               List.init (max 1 (n / 4)) (fun _ ->
                   let u = Rng.int rng n and v = Rng.int rng n in
                   if u = v then None else Some (min u v, max u v, 1 + Rng.int rng 3))
               |> List.filter_map Fun.id
             in
             Graph.create ~n
               (Graph.fold_edges
                  (fun acc e -> (e.Graph.u, e.Graph.v, e.Graph.w) :: acc)
                  chords base)
       | _ ->
           if n < 4 then Generators.path n
           else Generators.planted_cut ~rng ~n ~cut_edges:(1 + Rng.int rng 3) ~p_in:0.7 ()))

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
