open Test_helpers
module Maxflow = Mincut_graph.Maxflow
module Gomory_hu = Mincut_graph.Gomory_hu
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng

let test_maxflow_path () =
  let g = Generators.path ~weights:{ Generators.wmin = 3; wmax = 3 } 5 in
  let r = Maxflow.max_flow g ~s:0 ~t:4 in
  check_int "path bottleneck" 3 r.Maxflow.value

let test_maxflow_bottleneck () =
  (* two wide roads joined by one narrow bridge *)
  let g =
    Graph.create ~n:4 [ (0, 1, 10); (1, 2, 1); (2, 3, 10) ]
  in
  check_int "narrow bridge" 1 (Maxflow.max_flow g ~s:0 ~t:3).Maxflow.value

let test_maxflow_parallel_paths () =
  (* K4 minus one edge: flow 0->3 via 1 and 2 *)
  let g = Graph.create ~n:4 [ (0, 1, 1); (0, 2, 1); (1, 3, 1); (2, 3, 1); (1, 2, 5) ] in
  check_int "two disjoint paths" 2 (Maxflow.max_flow g ~s:0 ~t:3).Maxflow.value

let test_maxflow_complete () =
  let g = Generators.complete 6 in
  check_int "K6 s-t flow" 5 (Maxflow.max_flow g ~s:0 ~t:5).Maxflow.value

let test_maxflow_disconnected_pair () =
  let g = Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  check_int "no path" 0 (Maxflow.max_flow g ~s:0 ~t:3).Maxflow.value

let test_maxflow_source_side_is_cut () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let r = Maxflow.max_flow g ~s:0 ~t:(n - 1) in
      check_bool (name ^ " s in side") true (Bitset.mem r.Maxflow.source_side 0);
      check_bool (name ^ " t not in side") false (Bitset.mem r.Maxflow.source_side (n - 1));
      check_int (name ^ " side value = flow") r.Maxflow.value
        (Graph.cut_of_bitset g r.Maxflow.source_side))
    (small_connected_graphs ())

let test_maxflow_rejects_s_eq_t () =
  check_bool "s=t" true
    (try
       ignore (Maxflow.max_flow (Generators.path 3) ~s:1 ~t:1);
       false
     with Invalid_argument _ -> true)

let test_min_cut_via_flow_matches_sw () =
  List.iter
    (fun (name, g) ->
      check_int (name ^ " flow oracle") (Stoer_wagner.min_cut_value g)
        (Maxflow.min_cut_via_flow g))
    (small_connected_graphs ())

let test_gomory_hu_structure () =
  List.iter
    (fun (name, g) ->
      let t = Gomory_hu.build g in
      check_int (name ^ " root parent") (-1) t.Gomory_hu.parent.(0);
      (* all flows are genuine positive cuts *)
      for v = 1 to Graph.n g - 1 do
        check_bool (name ^ " flow positive") true (t.Gomory_hu.flow.(v) > 0)
      done)
    (small_connected_graphs ())

let test_gomory_hu_global_min () =
  List.iter
    (fun (name, g) ->
      let t = Gomory_hu.build g in
      check_int (name ^ " GH global = SW") (Stoer_wagner.min_cut_value g)
        (Gomory_hu.global_min_cut t))
    (small_connected_graphs ())

let test_gomory_hu_pairwise_matches_flow () =
  let rng = Rng.create 71 in
  for _ = 1 to 5 do
    let g = Generators.gnp_connected ~rng 10 0.5 in
    let t = Gomory_hu.build g in
    for u = 0 to 9 do
      for v = u + 1 to 9 do
        check_int
          (Printf.sprintf "pair (%d,%d)" u v)
          (Maxflow.max_flow g ~s:u ~t:v).Maxflow.value
          (Gomory_hu.min_cut_between t u v)
      done
    done
  done

let test_gomory_hu_known () =
  (* barbell: every cross-clique pair bottlenecks at the bridge *)
  let g = Generators.barbell 4 in
  let t = Gomory_hu.build g in
  check_int "cross-pair" 1 (Gomory_hu.min_cut_between t 0 7);
  check_int "in-clique pair" 3 (Gomory_hu.min_cut_between t 0 1);
  check_int "global" 1 (Gomory_hu.global_min_cut t);
  check_int "widest" 3 (Gomory_hu.widest_bottleneck_pairs t)

let qcheck_tests =
  [
    qtest ~count:30 "maxflow symmetric" (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let n = Graph.n g in
        (Maxflow.max_flow g ~s:0 ~t:(n - 1)).Maxflow.value
        = (Maxflow.max_flow g ~s:(n - 1) ~t:0).Maxflow.value);
    qtest ~count:30 "flow oracle = stoer-wagner" (arbitrary_connected ~max_n:10 ())
      (fun g -> Maxflow.min_cut_via_flow g = Stoer_wagner.min_cut_value g);
    qtest ~count:20 "GH bottleneck <= any concrete cut separating the pair"
      (arbitrary_connected ~max_n:9 ())
      (fun g ->
        let t = Gomory_hu.build g in
        let n = Graph.n g in
        (* cut {u} separates u from everything: GH pair cut <= deg(u) *)
        let ok = ref true in
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if u <> v then
              if Gomory_hu.min_cut_between t u v > Graph.weighted_degree g u then
                ok := false
          done
        done;
        !ok);
  ]

let suite =
  [
    tc "maxflow: path" test_maxflow_path;
    tc "maxflow: bottleneck" test_maxflow_bottleneck;
    tc "maxflow: parallel paths" test_maxflow_parallel_paths;
    tc "maxflow: complete" test_maxflow_complete;
    tc "maxflow: disconnected pair" test_maxflow_disconnected_pair;
    tc "maxflow: source side is a min cut" test_maxflow_source_side_is_cut;
    tc "maxflow: rejects s=t" test_maxflow_rejects_s_eq_t;
    tc "maxflow: global oracle = stoer-wagner" test_min_cut_via_flow_matches_sw;
    tc "gomory-hu: structure" test_gomory_hu_structure;
    tc "gomory-hu: global min" test_gomory_hu_global_min;
    tc "gomory-hu: pairwise = maxflow" test_gomory_hu_pairwise_matches_flow;
    tc "gomory-hu: barbell known values" test_gomory_hu_known;
  ]
  @ qcheck_tests
