open Test_helpers
module Two_respect = Mincut_core.Two_respect
module One_respect_seq = Mincut_core.One_respect_seq
module Params = Mincut_core.Params
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Mst_seq = Mincut_graph.Mst_seq
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng

let lambda_of g = (Stoer_wagner.run g).Stoer_wagner.value

let test_never_worse_than_one_respect () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let one = One_respect_seq.run g tree in
      let two = Two_respect.run g tree in
      check_bool (name ^ " two <= one") true
        (two.Two_respect.value <= one.One_respect_seq.best_value))
    (small_connected_graphs ())

let test_side_consistency () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let two = Two_respect.run g tree in
      check_int (name ^ " side value") two.Two_respect.value
        (Graph.cut_of_bitset g two.Two_respect.side);
      let c = Bitset.cardinal two.Two_respect.side in
      check_bool (name ^ " proper side") true (c >= 1 && c <= Graph.n g - 1))
    (small_connected_graphs ())

let test_lower_bounded_by_lambda () =
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let two = Two_respect.run g tree in
      check_bool (name ^ " >= λ") true (two.Two_respect.value >= lambda_of g))
    (small_connected_graphs ())

(* brute-force reference: min over all 1- and 2-node candidates evaluated
   from the cut definition *)
let brute_two_respect g tree =
  let n = Graph.n g in
  let root = tree.Tree.root in
  let best = ref max_int in
  for v = 0 to n - 1 do
    if v <> root then begin
      let side1 u = Tree.is_ancestor tree v u in
      best := min !best (Graph.cut_value g ~in_cut:side1);
      for w = v + 1 to n - 1 do
        if w <> root then begin
          let in_cut u =
            if Tree.is_ancestor tree v w then
              Tree.is_ancestor tree v u && not (Tree.is_ancestor tree w u)
            else if Tree.is_ancestor tree w v then
              Tree.is_ancestor tree w u && not (Tree.is_ancestor tree v u)
            else Tree.is_ancestor tree v u || Tree.is_ancestor tree w u
          in
          (* skip empty/full sides *)
          let size = ref 0 in
          for u = 0 to n - 1 do
            if in_cut u then incr size
          done;
          if !size >= 1 && !size <= n - 1 then
            best := min !best (Graph.cut_value g ~in_cut)
        end
      done
    end
  done;
  !best

let test_matches_brute_force () =
  List.iter
    (fun (name, g) ->
      if Graph.n g <= 16 then begin
        let tree = Tree.bfs_tree g ~root:0 in
        let two = Two_respect.run g tree in
        check_int (name ^ " = brute 2-respect") (brute_two_respect g tree)
          two.Two_respect.value
      end)
    (small_connected_graphs ())

let test_ring_needs_two () =
  (* on a ring, a min cut (2 edges) can never 1-respect a spanning tree
     rooted anywhere: the 2-respecting machinery is necessary *)
  let g = Generators.ring 8 in
  let tree = Tree.of_edge_ids g ~root:0 [ 0; 1; 2; 3; 4; 5; 6 ] (* path tree *) in
  let one = One_respect_seq.run g tree in
  let two = Two_respect.run g tree in
  check_int "1-respect misses" 2 one.One_respect_seq.best_value;
  (* actually cutting one path edge gives cut 2 here; use weighted ring
     to force a gap *)
  ignore two;
  let g =
    Graph.create ~n:6
      [ (0, 1, 1); (1, 2, 5); (2, 3, 1); (3, 4, 5); (4, 5, 5); (0, 5, 5) ]
  in
  let tree = Tree.of_edge_ids g ~root:0 [ 0; 1; 2; 3; 4 ] in
  let one = One_respect_seq.run g tree in
  let two = Two_respect.run g tree in
  (* λ = 2: cut the two weight-1 edges {1-2 side}; the best 1-respecting
     cut must cut the cycle twice... via subtree cuts it pays more *)
  check_int "λ" 2 (lambda_of g);
  check_int "2-respect finds λ" 2 two.Two_respect.value;
  check_bool "1-respect cannot" true (one.One_respect_seq.best_value > 2);
  match two.Two_respect.kind with
  | Two_respect.Two _ -> ()
  | Two_respect.One _ -> Alcotest.fail "expected a 2-respecting winner"

let test_min_cut_exact_small_budget () =
  List.iter
    (fun (name, g) ->
      let r = Two_respect.min_cut ~params:Params.fast g in
      check_int (name ^ " exact with log-trees budget") (lambda_of g)
        r.Two_respect.value)
    (small_connected_graphs ())

let test_min_cut_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  check_int "zero" 0 (Two_respect.min_cut g).Two_respect.value

let test_uses_fewer_trees_than_one_respect () =
  (* the headline benefit: λ-independent tree budget *)
  let rng = Rng.create 3 in
  let g = Generators.complete ~weights:{ Generators.wmin = 2; wmax = 6 } ~rng 14 in
  let r = Two_respect.min_cut ~params:Params.fast g in
  check_int "exact on dense weighted" (lambda_of g) r.Two_respect.value

let qcheck_tests =
  [
    qtest ~count:40 "2-respect = brute on random" (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let tree = Tree.bfs_tree g ~root:0 in
        (Two_respect.run g tree).Two_respect.value = brute_two_respect g tree);
    qtest ~count:40 "packing + 2-respect = λ with 8 trees"
      (arbitrary_connected ~max_n:12 ())
      (fun g ->
        (Two_respect.min_cut ~params:Params.fast ~trees:8 g).Two_respect.value
        = lambda_of g);
    qtest ~count:40 "mst tree: 2-respect within the tree's possibilities"
      (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let tree = Tree.of_edge_ids g ~root:0 (Mst_seq.kruskal g) in
        let r = Two_respect.run g tree in
        Graph.cut_of_bitset g r.Two_respect.side = r.Two_respect.value);
  ]

let suite =
  [
    tc "2-respect: never worse than 1-respect" test_never_worse_than_one_respect;
    tc "2-respect: side consistency" test_side_consistency;
    tc "2-respect: lower bounded by λ" test_lower_bounded_by_lambda;
    tc "2-respect: matches brute force" test_matches_brute_force;
    tc "2-respect: ring needs two crossings" test_ring_needs_two;
    tc "2-respect: exact with log-sized packings" test_min_cut_exact_small_budget;
    tc "2-respect: disconnected" test_min_cut_disconnected;
    tc "2-respect: dense weighted exactness" test_uses_fewer_trees_than_one_respect;
  ]
  @ qcheck_tests
