open Test_helpers
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Karger = Mincut_graph.Karger
module Mincut_seq = Mincut_graph.Mincut_seq
module Bridge = Mincut_graph.Bridge
module Nagamochi = Mincut_graph.Nagamochi
module Sampling = Mincut_graph.Sampling

(* families with known λ *)
let known_lambda =
  [
    ("path", Generators.path 8, 1);
    ("ring", Generators.ring 9, 2);
    ("complete6", Generators.complete 6, 5);
    ("grid4x5", Generators.grid 4 5, 2);
    ("torus4x4", Generators.torus 4 4, 4);
    ("hypercube4", Generators.hypercube 4, 4);
    ("wheel8", Generators.wheel 8, 3);
    ("barbell5", Generators.barbell 5, 1);
    ("dumbbell4-3", Generators.dumbbell 4 3, 1);
    ("path-of-cliques", Generators.path_of_cliques ~clique:5 ~length:4, 2);
  ]

let test_stoer_wagner_known () =
  List.iter
    (fun (name, g, lambda) ->
      let r = Stoer_wagner.run g in
      check_int (name ^ " λ") lambda r.Stoer_wagner.value;
      check_int (name ^ " side consistent") lambda (Graph.cut_of_bitset g r.Stoer_wagner.side);
      check_bool (name ^ " proper side") true
        (Mincut_seq.is_valid_side g r.Stoer_wagner.side))
    known_lambda

let test_stoer_wagner_weighted () =
  (* two triangles joined by a weight-2 and a weight-3 edge: λ = 5 *)
  let g =
    Graph.create ~n:6
      [
        (0, 1, 10); (1, 2, 10); (0, 2, 10);
        (3, 4, 10); (4, 5, 10); (3, 5, 10);
        (0, 3, 2); (2, 5, 3);
      ]
  in
  check_int "weighted λ" 5 (Stoer_wagner.run g).Stoer_wagner.value

let test_stoer_wagner_two_nodes () =
  let g = Graph.create ~n:2 [ (0, 1, 7) ] in
  check_int "K2" 7 (Stoer_wagner.run g).Stoer_wagner.value

let test_stoer_wagner_parallel_edges () =
  let g = Graph.create ~n:2 [ (0, 1, 3); (0, 1, 4) ] in
  check_int "parallel sum" 7 (Stoer_wagner.run g).Stoer_wagner.value

let test_stoer_wagner_rejects_single () =
  check_bool "n=1 rejected" true
    (try
       ignore (Stoer_wagner.run (Graph.create ~n:1 []));
       false
     with Invalid_argument _ -> true)

let test_brute_force_matches_sw () =
  List.iter
    (fun (name, g) ->
      if Graph.n g >= 2 && Graph.n g <= 14 then
        check_int (name ^ " brute=sw") (Mincut_seq.brute_force g).Mincut_seq.value
          (Stoer_wagner.run g).Stoer_wagner.value)
    (small_connected_graphs ())

let test_min_cut_disconnected () =
  let g = Graph.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  let r = Mincut_seq.min_cut g in
  check_int "disconnected λ=0" 0 r.Mincut_seq.value;
  check_bool "side valid" true (Mincut_seq.is_valid_side g r.Mincut_seq.side)

let test_karger_contraction_known () =
  let rng = Rng.create 99 in
  List.iter
    (fun (name, g, lambda) ->
      let r = Karger.contraction ~rng ~trials:200 g in
      check_bool (name ^ " karger >= λ") true (r.Karger.value >= lambda);
      check_int (name ^ " karger side consistent") r.Karger.value
        (Graph.cut_of_bitset g r.Karger.side))
    known_lambda

let test_karger_stein_exact_often () =
  let rng = Rng.create 7 in
  (* Karger–Stein should nail these small cuts with default trials *)
  List.iter
    (fun (name, g, lambda) ->
      let r = Karger.karger_stein ~rng g in
      check_int (name ^ " ks exact") lambda r.Karger.value)
    [
      ("barbell4", Generators.barbell 4, 1);
      ("ring7", Generators.ring 7, 2);
      ("grid3x3", Generators.grid 3 3, 2);
    ]

let test_karger_single_run_valid () =
  let rng = Rng.create 55 in
  List.iter
    (fun (name, g) ->
      let r = Karger.contract_once ~rng g in
      check_bool (name ^ " valid side") true (Mincut_seq.is_valid_side g r.Karger.side);
      check_int (name ^ " value consistent") r.Karger.value
        (Graph.cut_of_bitset g r.Karger.side))
    (small_connected_graphs ())

let test_bridges_path () =
  let g = Generators.path 5 in
  check_int "all path edges are bridges" 4 (List.length (Bridge.bridges g))

let test_bridges_ring () =
  check_int "ring has no bridges" 0 (List.length (Bridge.bridges (Generators.ring 6)))

let test_bridges_barbell () =
  let g = Generators.barbell 4 in
  let bs = Bridge.bridges g in
  check_int "single bridge" 1 (List.length bs);
  let u, v = Graph.endpoints g (List.hd bs) in
  check_bool "it is the middle edge" true ((u, v) = (3, 4))

let test_bridges_parallel_edges_not_bridges () =
  let g = Graph.create ~n:3 [ (0, 1, 1); (0, 1, 1); (1, 2, 1) ] in
  let bs = Bridge.bridges g in
  check_int "only the single edge" 1 (List.length bs);
  check_bool "it is edge 2" true (List.hd bs = 2)

let test_bridges_disconnected () =
  let g = Graph.create ~n:5 [ (0, 1, 1); (2, 3, 1); (3, 4, 1); (2, 4, 1) ] in
  check_int "bridge in first component only" 1 (List.length (Bridge.bridges g))

let test_two_edge_connected () =
  check_bool "ring" true (Bridge.two_edge_connected (Generators.ring 5));
  check_bool "path" false (Bridge.two_edge_connected (Generators.path 5))

let test_bridges_match_cut_definition () =
  (* an edge is a bridge iff removing it disconnects the graph *)
  List.iter
    (fun (name, g) ->
      let bs = Bridge.bridges g in
      Graph.iter_edges
        (fun e ->
          let without = Graph.sub_by_edges g ~keep:(fun e' -> e'.Graph.id <> e.Graph.id) in
          let disconnects = not (Bfs.is_connected without) in
          check_bool
            (Printf.sprintf "%s edge %d bridge-iff-disconnects" name e.Graph.id)
            disconnects (List.mem e.Graph.id bs))
        g)
    (small_connected_graphs ())

let test_ni_scan_shape () =
  List.iter
    (fun (name, g) ->
      let s = Nagamochi.scan g in
      check_int (name ^ " order covers nodes") (Graph.n g) (Array.length s.Nagamochi.order);
      Array.iter
        (fun low -> check_bool (name ^ " low >= 1") true (low >= 1))
        s.Nagamochi.edge_low)
    (small_connected_graphs ())

let test_ni_certificate_preserves_small_cuts () =
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let g = Generators.gnp_connected ~rng 12 0.6 in
    let lambda = Stoer_wagner.min_cut_value g in
    let cert = Nagamochi.certificate g ~k:lambda in
    check_int "certificate keeps λ" lambda (Stoer_wagner.min_cut_value cert)
  done

let test_ni_certificate_sparse () =
  let g = Generators.complete 12 in
  let cert = Nagamochi.certificate g ~k:3 in
  check_bool "certificate weight <= k(n-1)" true (Graph.total_weight cert <= 3 * 11)

let test_ni_contract_above_safe () =
  let rng = Rng.create 4 in
  for _ = 1 to 10 do
    let g = Generators.gnp_connected ~rng 12 0.6 in
    let lambda = Stoer_wagner.min_cut_value g in
    let contracted, _map = Nagamochi.contract_above g ~k:lambda in
    if Graph.n contracted >= 2 then
      check_int "contraction preserves λ when k >= λ" lambda
        (Stoer_wagner.min_cut_value contracted)
  done

let test_sampling_p_one_identity () =
  let rng = Rng.create 8 in
  List.iter
    (fun (name, g) ->
      let sk = Sampling.sample ~rng g ~p:1.0 in
      check_bool (name ^ " identity at p=1") true (Graph.equal_structure g sk.Sampling.graph))
    (small_connected_graphs ())

let test_sampling_p_zero_empty () =
  let rng = Rng.create 9 in
  let g = Generators.complete 6 in
  let sk = Sampling.sample ~rng g ~p:0.0 in
  check_int "empty skeleton" 0 (Graph.m sk.Sampling.graph)

let test_sampling_weight_concentration () =
  let rng = Rng.create 10 in
  let g = Generators.complete ~weights:{ Generators.wmin = 4; wmax = 4 } ~rng 20 in
  let sk = Sampling.sample ~rng g ~p:0.5 in
  let expected = 0.5 *. float_of_int (Graph.total_weight g) in
  let got = float_of_int (Graph.total_weight sk.Sampling.graph) in
  check_bool "total weight near p*W" true (abs_float (got -. expected) < 0.2 *. expected)

let test_recommended_p_clamped () =
  check_bool "p <= 1" true (Sampling.recommended_p ~n:4 ~epsilon:0.1 ~lambda_estimate:1 <= 1.0);
  check_bool "p positive" true (Sampling.recommended_p ~n:1000 ~epsilon:0.5 ~lambda_estimate:100 > 0.0)

let test_estimate_from_skeleton () =
  let sk = { Sampling.graph = Generators.path 2; p = 0.25 } in
  check_int "rescale" 8 (Sampling.estimate_from_skeleton sk 2)

let qcheck_tests =
  [
    qtest ~count:60 "stoer-wagner = brute force" (arbitrary_connected ~max_n:9 ())
      (fun g ->
        (Stoer_wagner.run g).Stoer_wagner.value = (Mincut_seq.brute_force g).Mincut_seq.value);
    qtest ~count:60 "λ <= min weighted degree" (arbitrary_connected ())
      (fun g ->
        let lambda = (Stoer_wagner.run g).Stoer_wagner.value in
        let mindeg = ref max_int in
        for v = 0 to Graph.n g - 1 do
          mindeg := min !mindeg (Graph.weighted_degree g v)
        done;
        lambda <= !mindeg);
    qtest ~count:40 "karger-stein >= λ and side consistent" (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let rng = Rng.create 1234 in
        let r = Karger.karger_stein ~rng g in
        let sw = (Stoer_wagner.run g).Stoer_wagner.value in
        r.Karger.value >= sw && Graph.cut_of_bitset g r.Karger.side = r.Karger.value);
    qtest ~count:40 "bridges <=> λ-after-removal drops to 0" (arbitrary_connected ~max_n:10 ())
      (fun g ->
        let bs = Bridge.bridges g in
        List.for_all
          (fun id ->
            not (Bfs.is_connected (Graph.sub_by_edges g ~keep:(fun e -> e.Graph.id <> id))))
          bs);
  ]

let suite =
  [
    tc "stoer-wagner: known families" test_stoer_wagner_known;
    tc "stoer-wagner: weighted" test_stoer_wagner_weighted;
    tc "stoer-wagner: two nodes" test_stoer_wagner_two_nodes;
    tc "stoer-wagner: parallel edges" test_stoer_wagner_parallel_edges;
    tc "stoer-wagner: rejects n=1" test_stoer_wagner_rejects_single;
    tc "brute force matches stoer-wagner" test_brute_force_matches_sw;
    tc "min_cut: disconnected graphs" test_min_cut_disconnected;
    tc "karger: contraction lower-bounded by λ" test_karger_contraction_known;
    tc "karger-stein: exact on easy cuts" test_karger_stein_exact_often;
    tc "karger: single run validity" test_karger_single_run_valid;
    tc "bridges: path" test_bridges_path;
    tc "bridges: ring" test_bridges_ring;
    tc "bridges: barbell" test_bridges_barbell;
    tc "bridges: parallel edges" test_bridges_parallel_edges_not_bridges;
    tc "bridges: disconnected input" test_bridges_disconnected;
    tc "bridges: two-edge-connectivity" test_two_edge_connected;
    tc_slow "bridges: match removal definition" test_bridges_match_cut_definition;
    tc "ni: scan shape" test_ni_scan_shape;
    tc "ni: certificate preserves small cuts" test_ni_certificate_preserves_small_cuts;
    tc "ni: certificate is sparse" test_ni_certificate_sparse;
    tc "ni: contraction above λ is safe" test_ni_contract_above_safe;
    tc "sampling: p=1 identity" test_sampling_p_one_identity;
    tc "sampling: p=0 empty" test_sampling_p_zero_empty;
    tc "sampling: concentration" test_sampling_weight_concentration;
    tc "sampling: recommended p clamped" test_recommended_p_clamped;
    tc "sampling: estimator rescales" test_estimate_from_skeleton;
  ]
  @ qcheck_tests
