test/test_small_cuts.ml: Alcotest Generators Graph List Mincut_congest Mincut_core Mincut_graph Mincut_util Test_helpers
