test/test_util.ml: Alcotest Array Float List Mincut_util QCheck2 String Test_helpers
