test/test_two_respect.ml: Alcotest Generators Graph List Mincut_core Mincut_graph Mincut_util Test_helpers Tree
