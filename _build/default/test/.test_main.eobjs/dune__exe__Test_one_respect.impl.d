test/test_one_respect.ml: Alcotest Array Generators Graph List Mincut_congest Mincut_core Mincut_graph Mincut_util Printf String Test_helpers Tree
