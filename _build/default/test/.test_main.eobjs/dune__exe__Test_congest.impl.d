test/test_congest.ml: Array Bfs Generators Graph List Mincut_congest Mincut_graph Mincut_util Printf Test_helpers Tree
