test/test_mincut_seq.ml: Array Bfs Generators Graph List Mincut_graph Mincut_util Printf Test_helpers
