test/test_extensions.ml: Array Generators Graph List Mincut_core Mincut_graph Mincut_treepack Mincut_util Printf Test_helpers
