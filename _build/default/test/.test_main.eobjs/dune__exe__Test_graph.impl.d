test/test_graph.ml: Alcotest Array Bfs Generators Graph List Mincut_graph Mincut_util String Test_helpers
