test/test_tree.ml: Array Bfs Generators Graph List Mincut_graph Mincut_util Test_helpers Tree
