test/test_treepack.ml: Alcotest Array Generators Graph List Mincut_core Mincut_graph Mincut_mst Mincut_treepack Mincut_util Printf Test_helpers Tree
