test/test_mst_dist.ml: Alcotest Array Generators Graph List Mincut_congest Mincut_graph Mincut_mst Mincut_util Printf Test_helpers Tree
