test/test_helpers.ml: Alcotest Fun List Mincut_graph Mincut_util QCheck2 QCheck_alcotest
