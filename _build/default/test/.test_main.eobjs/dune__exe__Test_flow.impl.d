test/test_flow.ml: Array Generators Graph List Mincut_graph Mincut_util Printf Test_helpers
