lib/core/su.ml: Float List Mincut_congest Mincut_graph Mincut_util Params
