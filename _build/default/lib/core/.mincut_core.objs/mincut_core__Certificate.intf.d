lib/core/certificate.mli: Api Mincut_graph Mincut_util Params
