lib/core/approx.mli: Mincut_congest Mincut_graph Mincut_util Params
