lib/core/one_respect.ml: Array Hashtbl Int List Mincut_congest Mincut_graph Mincut_mst Params Set
