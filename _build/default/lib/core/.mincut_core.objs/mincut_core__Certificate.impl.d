lib/core/certificate.ml: Api Array List Mincut_congest Mincut_graph Mincut_util Params
