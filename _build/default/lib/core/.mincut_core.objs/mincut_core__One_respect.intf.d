lib/core/one_respect.mli: Mincut_congest Mincut_graph Params
