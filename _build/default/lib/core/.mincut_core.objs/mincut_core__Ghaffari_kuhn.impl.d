lib/core/ghaffari_kuhn.ml: Array Mincut_congest Mincut_graph Mincut_util Params Printf
