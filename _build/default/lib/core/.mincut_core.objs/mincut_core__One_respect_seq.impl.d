lib/core/one_respect_seq.ml: Array List Mincut_graph Mincut_util
