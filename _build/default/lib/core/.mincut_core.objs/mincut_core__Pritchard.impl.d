lib/core/pritchard.ml: Mincut_congest Mincut_graph Mincut_util
