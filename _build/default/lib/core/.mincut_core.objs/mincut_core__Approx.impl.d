lib/core/approx.ml: Exact Mincut_congest Mincut_graph Mincut_util Params
