lib/core/api.ml: Approx Exact Ghaffari_kuhn Mincut_congest Mincut_graph Mincut_util One_respect Params Printf Su Two_respect
