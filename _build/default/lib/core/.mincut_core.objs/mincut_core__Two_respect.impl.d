lib/core/two_respect.ml: Array List Mincut_congest Mincut_graph Mincut_treepack Mincut_util One_respect_seq Params
