lib/core/api.mli: Mincut_graph Mincut_util One_respect Params
