lib/core/params.ml: Mincut_congest
