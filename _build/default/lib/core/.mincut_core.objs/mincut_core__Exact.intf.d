lib/core/exact.mli: Mincut_congest Mincut_graph Mincut_util One_respect Params
