lib/core/two_respect.mli: Mincut_congest Mincut_graph Mincut_util Params
