lib/core/exact.ml: Array List Mincut_congest Mincut_graph Mincut_mst Mincut_treepack Mincut_util One_respect One_respect_seq Params
