lib/core/ghaffari_kuhn.mli: Mincut_congest Mincut_graph Mincut_util Params
