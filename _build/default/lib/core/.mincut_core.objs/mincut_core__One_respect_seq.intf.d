lib/core/one_respect_seq.mli: Mincut_graph Mincut_util
