lib/core/params.mli: Mincut_congest
