(** (1+ε)-approximate minimum cut in Õ((√n + D)/poly ε) rounds — the
    paper's "standard reduction" from the exact algorithm.

    Karger's sampling lemma ([Tho07, Lemma 7]): sample every unit of
    weight with probability [p = Θ(log n / (ε²·λ))]; w.h.p. every cut of
    the skeleton is within (1±ε/3) of [p] times its value in [G], and in
    particular the skeleton's min cut is [O(log n/ε²)] — small enough
    for the exact poly(λ) algorithm.  The subtree side found in the
    skeleton is then {e evaluated as a cut of the original graph}, so
    the returned value is always a genuine cut value ≥ λ.

    Since [λ] is unknown, the sampling probability is found by downward
    exponential search on a guess [λ̂] (starting from the min-degree
    upper bound): if the skeleton's min cut comes out below the
    concentration threshold the guess was too high and is halved; once
    [p] reaches 1 the algorithm degenerates to the exact one. *)

type result = {
  value : int;                  (** C_G(side) — a real cut of G *)
  side : Mincut_util.Bitset.t;
  p : float;                    (** final sampling probability *)
  skeleton_value : int;         (** min cut found in the skeleton *)
  guesses : int;                (** λ̂ halvings performed *)
  cost : Mincut_congest.Cost.t;
}

val run :
  ?params:Params.t ->
  ?trees:int ->
  rng:Mincut_util.Rng.t ->
  epsilon:float ->
  Mincut_graph.Graph.t ->
  result
(** [trees] is the packing budget used on the skeleton (default 32).
    Requires a connected graph with n ≥ 2 and [epsilon > 0]. *)
