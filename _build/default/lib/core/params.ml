type t = {
  kp_constant : int;
  congest : Mincut_congest.Config.t;
  run_real_primitives : bool;
}

let default =
  { kp_constant = 1; congest = Mincut_congest.Config.default; run_real_primitives = true }

let fast = { default with run_real_primitives = false }

let log_star n =
  let rec go acc x = if x <= 2 then max 1 acc else go (acc + 1) (int_of_float (log (float_of_int x) /. log 2.0)) in
  go 1 n

let isqrt_ceil n = int_of_float (ceil (sqrt (float_of_int (max 1 n))))

let kp_mst_rounds t ~n ~diameter =
  t.kp_constant * ((isqrt_ceil n * log_star n) + diameter)

let kp_partition_rounds = kp_mst_rounds

let sqrt_target ~n = isqrt_ceil n
