(** Sequential reference for "minimum cut that 1-respects a tree".

    Implements Karger's Lemma 5.9 directly with a binary-lifting LCA
    oracle and two subtree accumulations:
    [C(v↓) = δ↓(v) − 2ρ↓(v)], minimized over [v ≠ root].

    This module is deliberately independent of the distributed
    implementation ({!One_respect}) — different LCA algorithm, different
    aggregation order — so the two act as cross-checking oracles in the
    differential tests. *)

type result = {
  cuts : int array;      (** C(v↓) per node; the root's entry is 0 (cut of V) *)
  best_value : int;      (** min over v ≠ root *)
  best_node : int;       (** argmin; the cut side is best_node↓ *)
  rho : int array;       (** ρ(v): weight of edges whose endpoint-LCA is v *)
  delta_down : int array; (** δ↓(v) *)
  rho_down : int array;  (** ρ↓(v) *)
}

val run : Mincut_graph.Graph.t -> Mincut_graph.Tree.t -> result
(** Requires [n >= 2] and a spanning tree of the (connected) graph. *)

val side_of : Mincut_graph.Tree.t -> int -> Mincut_util.Bitset.t
(** [side_of tree v] — the node set [v↓] as a bitset. *)

val naive_cuts : Mincut_graph.Graph.t -> Mincut_graph.Tree.t -> int array
(** O(n·m) direct evaluation of every [C(v↓)] from the cut definition —
    a third, dumbest oracle used by the property tests. *)
