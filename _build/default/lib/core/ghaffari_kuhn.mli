(** The Ghaffari–Kuhn (2+ε)-approximation baseline [DISC 2013].

    GK's distributed algorithm is, at its core, a distributed Matula
    (2+ε) edge-connectivity approximation; this module reproduces the
    {e approximation behaviour} — the quantity the paper's comparison is
    about — by implementing Matula's algorithm for real on
    Nagamochi–Ibaraki sparse certificates, while charging each iteration
    at the published Õ((√n + D)) round bound (see DESIGN.md,
    substitution table).

    Matula's invariant: the minimum weighted degree δ of the current
    contracted graph is always a genuine cut of [G] (so the answer is
    ≥ λ), and if a contraction ever destroys every minimum cut it does
    so only when δ < (2+ε)·λ already — so the final answer lies in
    [λ, (2+ε)λ]. *)

type result = {
  value : int;                   (** a cut value in [λ, (2+ε)λ] *)
  side : Mincut_util.Bitset.t;   (** the achieving side in G *)
  iterations : int;              (** contraction phases performed *)
  cost : Mincut_congest.Cost.t;
}

val run : ?params:Params.t -> epsilon:float -> Mincut_graph.Graph.t -> result
(** Requires a connected graph with n ≥ 2 and [epsilon > 0]. *)
