(** Per-node outputs and distributed self-verification.

    The paper's problem statement requires that "every node outputs
    whether it is in X in the end of the process".  This module turns an
    {!Api.summary} into exactly those per-node outputs, and implements
    the cheap distributed certification that makes any claimed cut
    self-checking:

    - every node exchanges its membership bit with each neighbor
      (1 round) and sums the weight of its incident cut-crossing edges;
    - a convergecast adds these local contributions over the BFS tree
      (each crossing edge is counted at both endpoints, so the root
      compares the total against twice the claimed value);
    - nodes also verify non-triviality (both sides inhabited) via two
      more aggregate bits.

    The check is sound for any claimed (value, side): it accepts iff the
    side truly cuts exactly [value], in O(D) rounds — this is the
    distributed analogue of {!Api.verify}, and the costed path the CLI's
    [--check] would take on a real network. *)

type report = {
  accepted : bool;
  claimed : int;
  recomputed : int;    (** Σ_v local crossing weight / 2 *)
  rounds : int;        (** simulated rounds of the certification itself *)
}

val outputs : Mincut_graph.Graph.t -> Mincut_util.Bitset.t -> bool array
(** [outputs g side] — the per-node bit "I am in X". *)

val certify :
  ?params:Params.t -> Mincut_graph.Graph.t -> value:int -> side:Mincut_util.Bitset.t -> report
(** Run the distributed certification on the engine (real messages).
    Requires a connected graph with n ≥ 2. *)

val certify_summary : ?params:Params.t -> Mincut_graph.Graph.t -> Api.summary -> report
(** [certify] applied to a summary's claim. *)
