module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Bitset = Mincut_util.Bitset

type result = {
  cuts : int array;
  best_value : int;
  best_node : int;
  rho : int array;
  delta_down : int array;
  rho_down : int array;
}

let run g tree =
  let n = Graph.n g in
  if n < 2 then invalid_arg "One_respect_seq.run: need n >= 2";
  let delta = Array.init n (Graph.weighted_degree g) in
  let rho = Array.make n 0 in
  let lca = Tree.Lca.build tree in
  Graph.iter_edges
    (fun e ->
      let z = Tree.Lca.query lca e.u e.v in
      rho.(z) <- rho.(z) + e.w)
    g;
  let delta_down = Tree.accumulate_up tree delta in
  let rho_down = Tree.accumulate_up tree rho in
  let cuts = Array.init n (fun v -> delta_down.(v) - (2 * rho_down.(v))) in
  let best = ref (-1) in
  for v = 0 to n - 1 do
    if v <> tree.Tree.root && (!best = -1 || cuts.(v) < cuts.(!best)) then best := v
  done;
  { cuts; best_value = cuts.(!best); best_node = !best; rho; delta_down; rho_down }

let side_of tree v =
  let side = Bitset.create tree.Tree.graph_n in
  List.iter (Bitset.add side) (Tree.subtree_members tree v);
  side

let naive_cuts g tree =
  let n = Graph.n g in
  Array.init n (fun v -> Graph.cut_value g ~in_cut:(fun u -> Tree.is_ancestor tree v u))
