(** The concurrent result of Su [SPAA 2014] as a baseline.

    Su starts from the same Thorup packing but finds the cut that
    1-respects a tree differently: sample edges so that the minimum cut
    of the sampled graph drops to one, then locate a {e bridge} with
    Thurimella's algorithm — the bridge's side is a candidate cut.  As
    the paper notes, the drawback is that the minimum cut can no longer
    be computed exactly, even when it is small.

    This module reproduces that behaviour: downward exponential search
    over the guess λ̂ chooses a sampling probability aiming the skeleton
    min cut at Θ(1); bridges of the skeleton are found (sequentially by
    Tarjan's algorithm, charged at Thurimella's Õ(√n + D) bound) and
    each bridge side — a connected component of the skeleton minus the
    bridge — is evaluated as a cut of [G].  Several samples per guess
    reduce the variance. *)

type result = {
  value : int;                   (** best candidate cut value found *)
  side : Mincut_util.Bitset.t;
  samples : int;                 (** skeletons examined *)
  cost : Mincut_congest.Cost.t;
}

val run :
  ?params:Params.t ->
  ?samples_per_guess:int ->
  rng:Mincut_util.Rng.t ->
  epsilon:float ->
  Mincut_graph.Graph.t ->
  result
(** Requires a connected graph with n ≥ 2 and [epsilon > 0];
    [samples_per_guess] defaults to 3. *)
