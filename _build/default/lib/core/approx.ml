module Graph = Mincut_graph.Graph
module Bfs = Mincut_graph.Bfs
module Sampling = Mincut_graph.Sampling
module Bitset = Mincut_util.Bitset
module Cost = Mincut_congest.Cost

type result = {
  value : int;
  side : Bitset.t;
  p : float;
  skeleton_value : int;
  guesses : int;
  cost : Cost.t;
}

let run ?(params = Params.default) ?(trees = 32) ~rng ~epsilon g =
  if epsilon <= 0.0 then invalid_arg "Approx.run: epsilon must be positive";
  let n = Graph.n g in
  if n < 2 then invalid_arg "Approx.run: need n >= 2";
  if not (Bfs.is_connected g) then invalid_arg "Approx.run: disconnected graph";
  (* skeleton min cut concentrates around p·λ = c·ln n / ε²; treat a
     result below half of that as evidence the guess λ̂ was too high *)
  let threshold =
    0.5 *. 3.0 *. log (float_of_int (max 2 n)) /. (epsilon *. epsilon)
  in
  let rec search lambda_hat guesses cost_acc =
    let p = Sampling.recommended_p ~n ~epsilon ~lambda_estimate:lambda_hat in
    if p >= 1.0 then begin
      (* small min cut: the exact algorithm runs on G itself *)
      let r = Exact.run ~params ~trees g in
      {
        value = r.Exact.value;
        side = r.Exact.side;
        p = 1.0;
        skeleton_value = r.Exact.value;
        guesses;
        cost = Cost.( ++ ) cost_acc r.Exact.cost;
      }
    end
    else begin
      (* sampling is a zero-round local step: each node flips coins for
         its incident edges *)
      let sk = Sampling.sample ~rng g ~p in
      let skeleton_ok =
        Graph.m sk.Sampling.graph > 0 && Bfs.is_connected sk.Sampling.graph
      in
      if not skeleton_ok then
        (* guess way too high — the skeleton fell apart *)
        search (max 1 (lambda_hat / 2)) (guesses + 1)
          (Cost.( ++ ) cost_acc (Cost.step "skeleton connectivity check" 1))
      else begin
        let r = Exact.run ~params ~trees sk.Sampling.graph in
        let cost_acc = Cost.( ++ ) cost_acc r.Exact.cost in
        if float_of_int r.Exact.value < threshold && lambda_hat > 1 then
          search (max 1 (lambda_hat / 2)) (guesses + 1) cost_acc
        else
          (* evaluate the skeleton's best side on the original graph:
             one exchange along each edge + a global sum, all within the
             machinery already charged *)
          let value = Graph.cut_of_bitset g r.Exact.side in
          {
            value;
            side = r.Exact.side;
            p;
            skeleton_value = r.Exact.value;
            guesses;
            cost = cost_acc;
          }
      end
    end
  in
  search (max 1 (Exact.min_weighted_degree g)) 0 Cost.zero
