(** Pritchard–Thurimella small-cut baseline.

    Before the Õ(√n + D) generation, distributed min-cut results
    targeted λ ∈ {1, 2} directly: Pritchard and Thurimella (ICALP 2008 /
    TALG 2011) find all cut edges in O(D) rounds and all cut pairs in
    Õ(D) rounds using skew-symmetric labelings.  This module models that
    baseline: the sequential cut detection is computed for real
    ({!Mincut_graph.Small_cuts}), the round cost is charged at their published
    bounds, and the answer is only conclusive when λ ≤ 2 — the
    specialization the paper's poly(λ) algorithm generalizes.

    Used by the benchmark's A4 experiment: for λ ≤ 2 this baseline is
    much cheaper than the general algorithm (O(D) vs Õ(√n + D)); from
    λ ≥ 3 it can only answer "λ ≥ 3". *)

type verdict =
  | Cut_found of { value : int; side : Mincut_util.Bitset.t }
  | Lambda_at_least_3

type result = { verdict : verdict; cost : Mincut_congest.Cost.t }

val run : ?params:Params.t -> Mincut_graph.Graph.t -> result
(** Requires n ≥ 2.  Disconnected graphs yield [Cut_found] with value 0. *)
