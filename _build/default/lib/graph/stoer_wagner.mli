(** Stoer–Wagner deterministic global minimum cut.

    This is the ground-truth oracle of the test suite and the benchmark
    harness: every distributed result is compared against it.  O(n³)
    time, O(n²) space — fine for the n ≤ a-few-thousand graphs the
    simulator handles. *)

type result = {
  value : int;                     (** λ(G) *)
  side : Mincut_util.Bitset.t;     (** one side X of an optimal cut *)
}

val run : Graph.t -> result
(** Minimum cut of a connected graph with n >= 2.  Raises
    [Invalid_argument] on smaller or disconnected inputs (the min cut of
    a disconnected graph is 0 with an obvious side; callers handle that
    case explicitly — see {!Mincut_seq.min_cut}). *)

val min_cut_value : Graph.t -> int
(** [run] then project; 0 for disconnected graphs, raises on n < 2. *)
