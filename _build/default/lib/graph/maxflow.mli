(** Maximum s–t flow / minimum s–t cut (Dinic's algorithm).

    Two roles in this repository:
    - substrate for the {!Gomory_hu} all-pairs min-cut tree;
    - a third independent oracle for the global min cut
      (λ = min over t ≠ s of maxflow(s, t), by max-flow/min-cut), used in
      property tests against Stoer–Wagner and the distributed algorithm.

    Undirected edges are modeled as a pair of directed arcs sharing
    capacity, the standard reduction. *)

type result = {
  value : int;                     (** the max flow = min s-t cut value *)
  source_side : Mincut_util.Bitset.t;
      (** nodes reachable from [s] in the residual graph — a minimum
          s-t cut side *)
}

val max_flow : Graph.t -> s:int -> t:int -> result
(** Requires [s <> t].  O(n²·m) worst case (Dinic), far better in
    practice on the sparse graphs used here. *)

val min_cut_via_flow : Graph.t -> int
(** Global min cut as [min_{t ≠ 0} maxflow(0, t)]; requires n ≥ 2.
    Returns 0 for disconnected graphs.  O(n) flow computations — slow,
    used as an oracle on small graphs. *)
