(** Randomized contraction algorithms (Karger; Karger–Stein).

    Used as a second, independent ground-truth check against
    Stoer–Wagner, and to sanity-check the sampling-based reductions: the
    paper's (1+ε) algorithm rests on Karger's sampling lemma, and these
    are the classic algorithms from the same toolbox. *)

type result = { value : int; side : Mincut_util.Bitset.t }

val contract_once : rng:Mincut_util.Rng.t -> Graph.t -> result
(** One run of Karger's contraction down to two supernodes.  Succeeds
    (returns the true min cut) with probability Ω(1/n²). *)

val contraction : rng:Mincut_util.Rng.t -> ?trials:int -> Graph.t -> result
(** Best of [trials] (default [n² ln n / 2], capped at 3000) independent
    contractions. *)

val karger_stein : rng:Mincut_util.Rng.t -> ?trials:int -> Graph.t -> result
(** Recursive contraction; each of the [trials] (default [ln² n], at
    least 6) runs succeeds with probability Ω(1/log n). *)
