module Bitset = Mincut_util.Bitset

let to_dot ?side ?labels g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph mincut {\n  node [shape=circle, fontsize=10];\n";
  let in_side v = match side with Some s -> Bitset.mem s v | None -> false in
  for v = 0 to Graph.n g - 1 do
    let label = match labels with Some f -> f v | None -> string_of_int v in
    let fill = if in_side v then ", style=filled, fillcolor=lightblue" else "" in
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"%s];\n" v label fill)
  done;
  Graph.iter_edges
    (fun e ->
      let crossing = in_side e.Graph.u <> in_side e.Graph.v in
      let attrs =
        (if e.Graph.w > 1 then Printf.sprintf "label=\"%d\"" e.Graph.w else "")
        ^ (if crossing then (if e.Graph.w > 1 then ", " else "") ^ "color=red, style=dashed"
           else "")
      in
      if attrs = "" then Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" e.Graph.u e.Graph.v)
      else Buffer.add_string buf (Printf.sprintf "  %d -- %d [%s];\n" e.Graph.u e.Graph.v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path ?side ?labels g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_dot ?side ?labels g))
