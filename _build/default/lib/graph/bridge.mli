(** Bridges (cut edges) by Tarjan's low-link algorithm.

    Su's concurrent algorithm [SPAA 2014] reduces min cut to bridge
    finding in a sampled subgraph (distributedly via Thurimella's
    algorithm); this module is the sequential computation behind our
    behavioural model of that baseline, and an independent oracle for
    λ = 1 detection in tests. *)

val bridges : Graph.t -> int list
(** Edge ids of all bridges.  A parallel pair is never a bridge
    (multigraph semantics). *)

val is_bridge : Graph.t -> int -> bool

val two_edge_connected : Graph.t -> bool
(** Connected and bridgeless. *)
