type t = {
  graph_n : int;
  root : int;
  parent : int array;
  parent_edge : int array;
  children : int array array;
  depth : int array;
  preorder : int array;
  tin : int array;
  tout : int array;
  size : int array;
}

let of_parents ~graph_n ~root ~parent ~parent_edge =
  if Array.length parent <> graph_n || Array.length parent_edge <> graph_n then
    invalid_arg "Tree.of_parents: array length mismatch";
  if root < 0 || root >= graph_n || parent.(root) <> -1 then
    invalid_arg "Tree.of_parents: bad root";
  let child_count = Array.make graph_n 0 in
  Array.iteri
    (fun v p ->
      if v <> root then begin
        if p < 0 || p >= graph_n then invalid_arg "Tree.of_parents: bad parent";
        child_count.(p) <- child_count.(p) + 1
      end)
    parent;
  let children = Array.init graph_n (fun v -> Array.make child_count.(v) 0) in
  let fill = Array.make graph_n 0 in
  for v = 0 to graph_n - 1 do
    if v <> root then begin
      let p = parent.(v) in
      children.(p).(fill.(p)) <- v;
      fill.(p) <- fill.(p) + 1
    end
  done;
  (* Iterative preorder DFS; also detects cycles / disconnection because a
     valid tree visits exactly graph_n nodes. *)
  let depth = Array.make graph_n 0 in
  let preorder = Array.make graph_n (-1) in
  let tin = Array.make graph_n (-1) in
  let tout = Array.make graph_n (-1) in
  let size = Array.make graph_n 1 in
  let clock = ref 0 in
  let idx = ref 0 in
  (* stack entries: (node, next child index) *)
  let stack = Stack.create () in
  Stack.push (root, 0) stack;
  tin.(root) <- !clock;
  incr clock;
  preorder.(!idx) <- root;
  incr idx;
  while not (Stack.is_empty stack) do
    let v, ci = Stack.pop stack in
    if ci < Array.length children.(v) then begin
      Stack.push (v, ci + 1) stack;
      let c = children.(v).(ci) in
      depth.(c) <- depth.(v) + 1;
      tin.(c) <- !clock;
      incr clock;
      if !idx >= graph_n then invalid_arg "Tree.of_parents: not a tree";
      preorder.(!idx) <- c;
      incr idx;
      Stack.push (c, 0) stack
    end
    else begin
      tout.(v) <- !clock;
      incr clock
    end
  done;
  if !idx <> graph_n then invalid_arg "Tree.of_parents: does not span all nodes";
  (* subtree sizes bottom-up via reverse preorder *)
  for i = graph_n - 1 downto 1 do
    let v = preorder.(i) in
    size.(parent.(v)) <- size.(parent.(v)) + size.(v)
  done;
  { graph_n; root; parent; parent_edge; children; depth; preorder; tin; tout; size }

let of_edge_ids g ~root ids =
  let n = Graph.n g in
  let adj = Array.make n [] in
  List.iter
    (fun id ->
      let u, v = Graph.endpoints g id in
      adj.(u) <- (v, id) :: adj.(u);
      adj.(v) <- (u, id) :: adj.(v))
    ids;
  if List.length ids <> n - 1 then invalid_arg "Tree.of_edge_ids: wrong edge count";
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let seen = Array.make n false in
  let q = Queue.create () in
  Queue.add root q;
  seen.(root) <- true;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (u, id) ->
        if not seen.(u) then begin
          seen.(u) <- true;
          parent.(u) <- v;
          parent_edge.(u) <- id;
          Queue.add u q
        end)
      adj.(v)
  done;
  if not (Array.for_all (fun b -> b) seen) then
    invalid_arg "Tree.of_edge_ids: edges do not span the graph";
  of_parents ~graph_n:n ~root ~parent ~parent_edge

let bfs_tree g ~root =
  let r = Bfs.run g ~source:root in
  if not (Array.for_all (fun d -> d >= 0) r.dist) then
    invalid_arg "Tree.bfs_tree: disconnected graph";
  of_parents ~graph_n:(Graph.n g) ~root ~parent:r.parent ~parent_edge:r.parent_edge

let is_ancestor t a v = t.tin.(a) <= t.tin.(v) && t.tout.(v) <= t.tout.(a)

let ancestors t v =
  let rec go acc v = if v = -1 then List.rev acc else go (v :: acc) t.parent.(v) in
  go [] v

let height t = Array.fold_left max 0 t.depth

let n_nodes t = t.graph_n

let tree_edges t =
  let acc = ref [] in
  Array.iteri (fun v p -> if p <> -1 then acc := (v, p) :: !acc) t.parent;
  !acc

let accumulate_up t x =
  if Array.length x <> t.graph_n then invalid_arg "Tree.accumulate_up: length mismatch";
  let y = Array.copy x in
  for i = t.graph_n - 1 downto 1 do
    let v = t.preorder.(i) in
    y.(t.parent.(v)) <- y.(t.parent.(v)) + y.(v)
  done;
  y

let subtree_members t v =
  (* preorder indices of v↓ are contiguous: locate v then scan by tin/tout *)
  let acc = ref [] in
  Array.iter (fun u -> if is_ancestor t v u then acc := u :: !acc) t.preorder;
  List.rev !acc

module Lca = struct
  type tree = t

  type t = { up : int array array; depth : int array }

  let build (tr : tree) =
    let n = tr.graph_n in
    let levels =
      let rec go k = if 1 lsl k >= max 1 n then k + 1 else go (k + 1) in
      go 0
    in
    let up = Array.make_matrix levels n tr.root in
    Array.iteri (fun v p -> up.(0).(v) <- (if p = -1 then v else p)) tr.parent;
    for k = 1 to levels - 1 do
      for v = 0 to n - 1 do
        up.(k).(v) <- up.(k - 1).(up.(k - 1).(v))
      done
    done;
    { up; depth = tr.depth }

  let query t a b =
    let levels = Array.length t.up in
    let a = ref a and b = ref b in
    if t.depth.(!a) < t.depth.(!b) then begin
      let tmp = !a in
      a := !b;
      b := tmp
    end;
    let diff = t.depth.(!a) - t.depth.(!b) in
    for k = 0 to levels - 1 do
      if diff land (1 lsl k) <> 0 then a := t.up.(k).(!a)
    done;
    if !a = !b then !a
    else begin
      for k = levels - 1 downto 0 do
        if t.up.(k).(!a) <> t.up.(k).(!b) then begin
          a := t.up.(k).(!a);
          b := t.up.(k).(!b)
        end
      done;
      t.up.(0).(!a)
    end
end
