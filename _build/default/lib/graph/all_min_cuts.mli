(** Enumerating {e all} minimum cuts.

    A graph has at most C(n,2) minimum cuts (Karger), and knowing all of
    them matters for reliability analysis (every one is a failure mode).
    Two enumerators:
    - [exhaustive]: all 2^(n-1) sides, for n ≤ 24 — the oracle;
    - [randomized]: repeated Karger–Stein runs collecting every distinct
      optimal side found; with enough trials this finds all min cuts
      w.h.p. (each is produced with probability Ω(1/log n) per run).

    Sides are canonicalized to exclude node 0, so each cut appears
    once. *)

type t = {
  value : int;                            (** λ *)
  sides : Mincut_util.Bitset.t list;      (** all optimal sides, canonical *)
}

val exhaustive : Graph.t -> t
(** Requires 2 ≤ n ≤ 24 and connectivity. *)

val randomized : rng:Mincut_util.Rng.t -> ?trials:int -> Graph.t -> t
(** Monte-Carlo enumeration ([trials] defaults to [30·log² n]); the
    result's [sides] is a subset of all min cuts that is complete w.h.p.
    Requires n ≥ 2 and connectivity. *)

val count_exhaustive : Graph.t -> int
(** [List.length (exhaustive g).sides]. *)

val canonical : Graph.t -> Mincut_util.Bitset.t -> Mincut_util.Bitset.t
(** The representative of {X, V∖X} that does not contain node 0. *)
