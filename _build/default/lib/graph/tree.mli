(** Rooted spanning trees and subtree computations.

    The paper's Section 2 is entirely about a spanning tree [T] of the
    network rooted at [r]: the candidate cuts are the subtree cuts
    [C(v↓)], and Karger's lemma evaluates them from the subtree
    aggregates [δ↓] and [ρ↓].  This module provides the rooted-tree
    representation shared by the sequential reference implementation and
    the distributed algorithm, including an LCA oracle (binary lifting)
    used by the sequential reference and by tests. *)

type t = private {
  graph_n : int;           (** number of nodes of the underlying graph *)
  root : int;
  parent : int array;      (** [-1] at the root *)
  parent_edge : int array; (** underlying graph edge id, [-1] at the root *)
  children : int array array;
  depth : int array;       (** hop depth from the root *)
  preorder : int array;    (** all nodes, parents before children *)
  tin : int array;
  tout : int array;        (** Euler interval: u ancestor-of v iff
                               [tin u <= tin v && tout v <= tout u] *)
  size : int array;        (** subtree sizes |v↓| *)
}

val of_parents : graph_n:int -> root:int -> parent:int array -> parent_edge:int array -> t
(** Build from a parent map.  Raises [Invalid_argument] if the parent map
    is not a tree spanning all [graph_n] nodes rooted at [root]. *)

val of_edge_ids : Graph.t -> root:int -> int list -> t
(** Build from the edge ids of a spanning tree of [g], oriented away from
    [root].  Raises [Invalid_argument] if the edges do not form a
    spanning tree. *)

val bfs_tree : Graph.t -> root:int -> t
(** The BFS tree of a connected graph. *)

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor t a v] — true when [v ∈ a↓] (reflexive). *)

val ancestors : t -> int -> int list
(** Path from a node up to the root, inclusive, nearest first. *)

val height : t -> int
(** Maximum depth. *)

val n_nodes : t -> int

val tree_edges : t -> (int * int) list
(** [(child, parent)] pairs. *)

val accumulate_up : t -> int array -> int array
(** [accumulate_up t x] returns [y] with [y.(v) = Σ_{u ∈ v↓} x.(u)] — the
    subtree-sum operator that turns [δ] into [δ↓] and [ρ] into [ρ↓]. *)

val subtree_members : t -> int -> int list
(** Nodes of [v↓] (via the Euler interval; O(|v↓|) after O(n) setup). *)

(** LCA oracle by binary lifting: O(n log n) preprocessing, O(log n)
    queries. *)
module Lca : sig
  type tree = t

  type t

  val build : tree -> t

  val query : t -> int -> int -> int
  (** Least common ancestor of the two nodes. *)
end
