module Rng = Mincut_util.Rng
module Bitset = Mincut_util.Bitset

type result = { value : int; side : Bitset.t }

(* Contraction state: union-find for supernodes plus the surviving edge
   multiset (edges internal to a supernode are dropped lazily). *)
type state = {
  g : Graph.t;
  uf : Union_find.t;
  mutable live : int array;  (* edge ids with endpoints in distinct supernodes *)
  mutable n_super : int;
}

let init g =
  {
    g;
    uf = Union_find.create (Graph.n g);
    live = Array.init (Graph.m g) (fun i -> i);
    n_super = Graph.n g;
  }

let clone st =
  {
    g = st.g;
    uf =
      (let n = Graph.n st.g in
       let uf = Union_find.create n in
       for v = 0 to n - 1 do
         ignore (Union_find.union uf (Union_find.find st.uf v) v)
       done;
       uf);
    live = Array.copy st.live;
    n_super = st.n_super;
  }

let compact st =
  st.live <-
    Array.of_list
      (List.filter
         (fun id ->
           let u, v = Graph.endpoints st.g id in
           not (Union_find.same st.uf u v))
         (Array.to_list st.live))

(* Pick a live edge with probability proportional to weight. *)
let pick_weighted ~rng st =
  let total =
    Array.fold_left (fun acc id -> acc + Graph.weight st.g id) 0 st.live
  in
  assert (total > 0);
  let target = Rng.int rng total in
  let rec go i acc =
    let acc = acc + Graph.weight st.g st.live.(i) in
    if acc > target then st.live.(i) else go (i + 1) acc
  in
  go 0 0

let contract_edge st id =
  let u, v = Graph.endpoints st.g id in
  if Union_find.union st.uf u v then st.n_super <- st.n_super - 1

let rec contract_to ~rng st target =
  if st.n_super > target then begin
    compact st;
    if Array.length st.live = 0 then () (* disconnected: stop *)
    else begin
      let id = pick_weighted ~rng st in
      contract_edge st id;
      contract_to ~rng st target
    end
  end

let result_of_state st =
  let n = Graph.n st.g in
  let side = Bitset.create n in
  let rep = Union_find.find st.uf 0 in
  for v = 0 to n - 1 do
    if Union_find.find st.uf v = rep then Bitset.add side v
  done;
  { value = Graph.cut_of_bitset st.g side; side }

let contract_once ~rng g =
  if Graph.n g < 2 then invalid_arg "Karger: need n >= 2";
  let st = init g in
  contract_to ~rng st 2;
  result_of_state st

let better a b = if a.value <= b.value then a else b

let contraction ~rng ?trials g =
  let n = Graph.n g in
  let trials =
    match trials with
    | Some t -> t
    | None ->
        let nn = float_of_int n in
        min 3000 (max 1 (int_of_float (nn *. nn *. log nn /. 2.0)))
  in
  let best = ref (contract_once ~rng g) in
  for _ = 2 to trials do
    best := better !best (contract_once ~rng g)
  done;
  !best

let karger_stein ~rng ?trials g =
  if Graph.n g < 2 then invalid_arg "Karger: need n >= 2";
  let rec recurse st =
    if st.n_super <= 6 then begin
      contract_to ~rng st 2;
      result_of_state st
    end
    else begin
      let target =
        int_of_float (ceil (float_of_int st.n_super /. sqrt 2.0)) + 1
      in
      let st2 = clone st in
      contract_to ~rng st target;
      contract_to ~rng st2 target;
      better (recurse st) (recurse st2)
    end
  in
  let trials =
    match trials with
    | Some t -> t
    | None ->
        let l = log (float_of_int (Graph.n g)) in
        max 6 (int_of_float (l *. l))
  in
  let best = ref (recurse (init g)) in
  for _ = 2 to trials do
    best := better !best (recurse (init g))
  done;
  !best
