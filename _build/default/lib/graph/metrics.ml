type t = {
  n : int;
  m : int;
  total_weight : int;
  min_degree : int;
  max_degree : int;
  avg_degree : float;
  min_weighted_degree : int;
  diameter : int;
  triangle_density : float;
}

let triangle_density g =
  let n = Graph.n g in
  (* adjacency membership for closure tests *)
  let tbl = Hashtbl.create (2 * Graph.m g) in
  Graph.iter_edges (fun e -> Hashtbl.replace tbl (e.Graph.u, e.Graph.v) ()) g;
  let connected u v = Hashtbl.mem tbl (min u v, max u v) in
  let paths = ref 0 and closed = ref 0 in
  for v = 0 to n - 1 do
    let adj = Graph.adj g v in
    let d = Array.length adj in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        let a = fst adj.(i) and b = fst adj.(j) in
        if a <> b then begin
          incr paths;
          if connected a b then incr closed
        end
      done
    done
  done;
  if !paths = 0 then 0.0 else float_of_int !closed /. float_of_int !paths

let compute g =
  let n = Graph.n g in
  let degs = Array.init n (Graph.degree g) in
  let wdegs = Array.init n (Graph.weighted_degree g) in
  {
    n;
    m = Graph.m g;
    total_weight = Graph.total_weight g;
    min_degree = Array.fold_left min max_int degs;
    max_degree = Array.fold_left max 0 degs;
    avg_degree = 2.0 *. float_of_int (Graph.m g) /. float_of_int n;
    min_weighted_degree = Array.fold_left min max_int wdegs;
    diameter = Diameter.estimate g;
    triangle_density = triangle_density g;
  }

let columns =
  [ "n"; "m"; "W"; "deg min/avg/max"; "min wdeg"; "D"; "clustering" ]

let pp_row t =
  [
    string_of_int t.n;
    string_of_int t.m;
    string_of_int t.total_weight;
    Printf.sprintf "%d/%.1f/%d" t.min_degree t.avg_degree t.max_degree;
    string_of_int t.min_weighted_degree;
    string_of_int t.diameter;
    Printf.sprintf "%.3f" t.triangle_density;
  ]
