(** Graphviz export, for eyeballing cuts and fragments.

    [to_dot g] renders the graph; optional [side] paints one cut side
    and draws crossing edges dashed red; optional [labels] annotates
    nodes (e.g. fragment ids).  Paste into `dot -Tsvg`. *)

val to_dot :
  ?side:Mincut_util.Bitset.t ->
  ?labels:(int -> string) ->
  Graph.t ->
  string

val save : string -> ?side:Mincut_util.Bitset.t -> ?labels:(int -> string) -> Graph.t -> unit
