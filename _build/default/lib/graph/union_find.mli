(** Disjoint-set forest with union by rank and path compression.

    Used by Kruskal's MST, Borůvka merging, Karger contraction, and the
    connectivity checks of the sampling-based algorithms. *)

type t

val create : int -> t
(** [create n] puts each of [0 .. n-1] in its own set. *)

val find : t -> int -> int
(** Canonical representative (with path compression). *)

val union : t -> int -> int -> bool
(** Merge the two sets; [true] iff they were previously distinct. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets remaining. *)

val groups : t -> int list array
(** [groups t] indexed by representative; non-representative entries are
    empty lists. *)
