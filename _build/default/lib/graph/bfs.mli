(** Breadth-first search (unweighted distances).

    BFS is the workhorse of the CONGEST layer: the global communication
    structure of the paper's algorithm is a BFS tree of the network, and
    the diameter [D] appearing in every bound is a BFS quantity. *)

type result = {
  dist : int array;    (** hop distance from the source set; [-1] if unreachable *)
  parent : int array;  (** BFS-tree parent; [-1] for sources / unreachable *)
  parent_edge : int array;
      (** graph edge id connecting a node to its parent; [-1] at sources *)
  order : int list;    (** visited nodes in dequeue order (sources first) *)
}

val run : Graph.t -> source:int -> result
(** Single-source BFS. *)

val run_multi : Graph.t -> sources:int list -> result
(** Multi-source BFS (distance to the nearest source). *)

val eccentricity : Graph.t -> int -> int
(** Max hop distance from a node to any reachable node. *)

val is_connected : Graph.t -> bool
(** Whether every node is reachable from node 0 (true for n <= 1). *)

val component_of : Graph.t -> int -> Mincut_util.Bitset.t
(** Set of nodes reachable from the given node. *)

val components : Graph.t -> int array
(** Component label per node (labels are arbitrary but consistent). *)
