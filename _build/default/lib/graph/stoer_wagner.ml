type result = { value : int; side : Mincut_util.Bitset.t }

(* Classic Stoer–Wagner on a dense weight matrix.  Vertices are merged
   into "supernodes"; [members.(i)] tracks which original nodes a live
   supernode stands for, so the best cut-of-the-phase can be reported as
   a node set of the original graph. *)
let run g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Stoer_wagner.run: need n >= 2";
  let w = Array.make_matrix n n 0 in
  Graph.iter_edges
    (fun e ->
      w.(e.u).(e.v) <- w.(e.u).(e.v) + e.w;
      w.(e.v).(e.u) <- w.(e.v).(e.u) + e.w)
    g;
  let members = Array.init n (fun i -> [ i ]) in
  let alive = Array.make n true in
  let best_value = ref max_int in
  let best_members = ref [] in
  let n_alive = ref n in
  while !n_alive > 1 do
    (* maximum-adjacency order over live supernodes *)
    let added = Array.make n false in
    let conn = Array.make n 0 in
    let prev = ref (-1) in
    let last = ref (-1) in
    for _ = 1 to !n_alive do
      (* pick the unadded live node with maximum connectivity *)
      let pick = ref (-1) in
      for v = 0 to n - 1 do
        if alive.(v) && (not added.(v)) && (!pick = -1 || conn.(v) > conn.(!pick)) then
          pick := v
      done;
      let v = !pick in
      added.(v) <- true;
      prev := !last;
      last := v;
      for u = 0 to n - 1 do
        if alive.(u) && not added.(u) then conn.(u) <- conn.(u) + w.(v).(u)
      done
    done;
    (* cut of the phase: the last node alone *)
    if conn.(!last) < !best_value then begin
      best_value := conn.(!last);
      best_members := members.(!last)
    end;
    (* merge last into prev *)
    let s = !prev and t = !last in
    alive.(t) <- false;
    decr n_alive;
    members.(s) <- members.(t) @ members.(s);
    for v = 0 to n - 1 do
      if alive.(v) && v <> s then begin
        w.(s).(v) <- w.(s).(v) + w.(t).(v);
        w.(v).(s) <- w.(s).(v)
      end
    done
  done;
  if !best_value = max_int then invalid_arg "Stoer_wagner.run: empty graph";
  let side = Mincut_util.Bitset.create n in
  List.iter (Mincut_util.Bitset.add side) !best_members;
  (* A disconnected graph yields value 0 with a valid side, which is the
     correct answer; but we promise connectivity to keep semantics clear. *)
  if !best_value > 0 && not (Bfs.is_connected g) then
    invalid_arg "Stoer_wagner.run: disconnected graph";
  { value = !best_value; side }

let min_cut_value g =
  if not (Bfs.is_connected g) then 0 else (run g).value
