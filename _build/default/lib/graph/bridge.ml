(* Iterative Tarjan bridge finding.  A tree edge (v, child) is a bridge
   iff low(child) > tin(v), where low ignores the specific edge used to
   reach the child (not just the parent node — this is what makes
   parallel edges non-bridges). *)
let bridges g =
  let n = Graph.n g in
  let tin = Array.make n (-1) in
  let low = Array.make n max_int in
  let timer = ref 0 in
  let out = ref [] in
  let parent_edge = Array.make n (-1) in
  for start = 0 to n - 1 do
    if tin.(start) = -1 then begin
      let stack = Stack.create () in
      Stack.push (start, 0) stack;
      tin.(start) <- !timer;
      low.(start) <- !timer;
      incr timer;
      while not (Stack.is_empty stack) do
        let v, i = Stack.pop stack in
        let adj = Graph.adj g v in
        if i < Array.length adj then begin
          Stack.push (v, i + 1) stack;
          let u, id = adj.(i) in
          if id <> parent_edge.(v) then begin
            if tin.(u) = -1 then begin
              parent_edge.(u) <- id;
              tin.(u) <- !timer;
              low.(u) <- !timer;
              incr timer;
              Stack.push (u, 0) stack
            end
            else low.(v) <- min low.(v) tin.(u)
          end
        end
        else if v <> start then begin
          (* retreat: propagate low to the parent, test the tree edge *)
          let id = parent_edge.(v) in
          let p = Graph.other_endpoint g id v in
          low.(p) <- min low.(p) low.(v);
          if low.(v) > tin.(p) then out := id :: !out
        end
      done
    end
  done;
  List.rev !out

let is_bridge g id = List.mem id (bridges g)

let two_edge_connected g = Bfs.is_connected g && bridges g = []
