module Bitset = Mincut_util.Bitset

type result = { value : int; source_side : Bitset.t }

(* Residual network in the usual arc-pair layout: arc [a] and its
   reverse [a lxor 1] are stored adjacently.  An undirected edge of
   capacity [w] becomes two arcs of capacity [w] each (flow pushed one
   way consumes the shared capacity through the residual update). *)
type network = {
  n : int;
  head : int array;          (* arc -> destination *)
  cap : int array;           (* arc -> residual capacity *)
  out : int list array;      (* node -> incident arc ids *)
}

let build g =
  let n = Graph.n g in
  let m = Graph.m g in
  let head = Array.make (2 * m) 0 in
  let cap = Array.make (2 * m) 0 in
  let out = Array.make n [] in
  Graph.iter_edges
    (fun e ->
      let a = 2 * e.Graph.id in
      head.(a) <- e.Graph.v;
      head.(a + 1) <- e.Graph.u;
      cap.(a) <- e.Graph.w;
      cap.(a + 1) <- e.Graph.w;
      out.(e.Graph.u) <- a :: out.(e.Graph.u);
      out.(e.Graph.v) <- (a + 1) :: out.(e.Graph.v))
    g;
  { n; head; cap; out }

(* BFS level graph; [-1] = unreachable *)
let levels nw ~s =
  let level = Array.make nw.n (-1) in
  let q = Queue.create () in
  level.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun a ->
        let u = nw.head.(a) in
        if nw.cap.(a) > 0 && level.(u) = -1 then begin
          level.(u) <- level.(v) + 1;
          Queue.add u q
        end)
      nw.out.(v)
  done;
  level

(* blocking flow by DFS with an arc iterator per node *)
let blocking_flow nw ~s ~t level =
  let iter = Array.map (fun l -> ref l) nw.out in
  let rec push v limit =
    if v = t then limit
    else begin
      let sent = ref 0 in
      let continue = ref true in
      while !continue && !sent < limit do
        match !(iter.(v)) with
        | [] -> continue := false
        | a :: rest ->
            let u = nw.head.(a) in
            if nw.cap.(a) > 0 && level.(u) = level.(v) + 1 then begin
              let pushed = push u (min nw.cap.(a) (limit - !sent)) in
              if pushed = 0 then iter.(v) := rest
              else begin
                nw.cap.(a) <- nw.cap.(a) - pushed;
                nw.cap.(a lxor 1) <- nw.cap.(a lxor 1) + pushed;
                sent := !sent + pushed
              end
            end
            else iter.(v) := rest
      done;
      !sent
    end
  in
  push s max_int

let max_flow g ~s ~t =
  if s = t then invalid_arg "Maxflow.max_flow: s = t";
  let nw = build g in
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let level = levels nw ~s in
    if level.(t) = -1 then continue := false
    else begin
      let pushed = blocking_flow nw ~s ~t level in
      if pushed = 0 then continue := false else total := !total + pushed
    end
  done;
  (* source side = residual-reachable set *)
  let level = levels nw ~s in
  let side = Bitset.create nw.n in
  Array.iteri (fun v l -> if l >= 0 then Bitset.add side v) level;
  { value = !total; source_side = side }

let min_cut_via_flow g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Maxflow.min_cut_via_flow: need n >= 2";
  if not (Bfs.is_connected g) then 0
  else begin
    let best = ref max_int in
    for t = 1 to n - 1 do
      best := min !best (max_flow g ~s:0 ~t).value
    done;
    !best
  end
