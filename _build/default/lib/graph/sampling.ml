type skeleton = { graph : Graph.t; p : float }

let sample ~rng g ~p =
  assert (p >= 0.0 && p <= 1.0);
  let graph =
    Graph.reweight g ~f:(fun e ->
        if p >= 1.0 then e.w else Mincut_util.Rng.binomial rng e.w p)
  in
  { graph; p }

let recommended_p ~n ~epsilon ~lambda_estimate =
  assert (epsilon > 0.0 && lambda_estimate >= 1);
  let c = 3.0 in
  Float.min 1.0
    (c *. log (float_of_int (max 2 n))
    /. (epsilon *. epsilon *. float_of_int lambda_estimate))

let estimate_from_skeleton sk cut_value =
  int_of_float (Float.round (float_of_int cut_value /. sk.p))
