(** Nagamochi–Ibaraki maximum-adjacency scan and sparse certificates.

    The Ghaffari–Kuhn (2+ε) baseline is, at heart, a distributed Matula
    approximation, and Matula's algorithm is built on the NI forest
    decomposition: scanning vertices in maximum-adjacency order assigns
    every edge a forest index [q(e)] such that
    - the subgraph of edges with index ≤ k (the k-certificate) preserves
      every cut of value ≤ k, and
    - the endpoints of an edge with index q are at least q-edge-connected,
      so such an edge is safe to contract when hunting for cuts < q.

    Weighted edges occupy the index interval
    [\[low(e), low(e) + w(e) - 1\]] (weight = multiplicity view). *)

type scan = {
  order : int array;     (** vertices in maximum-adjacency order *)
  edge_low : int array;  (** per edge id: lowest forest index, >= 1 *)
}

val scan : Graph.t -> scan
(** One MA scan from vertex 0.  O((n + m) log n). *)

val certificate : Graph.t -> k:int -> Graph.t
(** Sparse k-certificate: each edge keeps weight
    [min w (k - low + 1)] (dropped if non-positive).  Preserves all cuts
    of value ≤ k and has total weight ≤ k·(n-1). *)

val contract_above : Graph.t -> k:int -> Graph.t * int array
(** Contract every edge with [low > k]; returns the contracted graph and
    the node map (original node -> contracted node).  Safe when λ ≤ k:
    no minimum cut separates the endpoints of a contracted edge. *)
