lib/graph/gomory_hu.mli: Graph
