lib/graph/generators.ml: Array Bfs Float Graph Hashtbl List Mincut_util Printf
