lib/graph/sampling.ml: Float Graph Mincut_util
