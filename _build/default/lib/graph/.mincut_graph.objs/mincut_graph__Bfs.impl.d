lib/graph/bfs.ml: Array Graph List Mincut_util Queue
