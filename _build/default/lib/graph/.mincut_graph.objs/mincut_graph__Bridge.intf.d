lib/graph/bridge.mli: Graph
