lib/graph/karger.ml: Array Graph List Mincut_util Union_find
