lib/graph/mst_seq.mli: Graph
