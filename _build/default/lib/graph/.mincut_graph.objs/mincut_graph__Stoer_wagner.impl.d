lib/graph/stoer_wagner.ml: Array Bfs Graph List Mincut_util
