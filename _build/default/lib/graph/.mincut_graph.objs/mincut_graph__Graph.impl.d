lib/graph/graph.ml: Array Format List Mincut_util Printf
