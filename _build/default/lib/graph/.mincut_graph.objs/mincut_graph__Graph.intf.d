lib/graph/graph.mli: Format Mincut_util
