lib/graph/small_cuts.mli: Graph Mincut_util
