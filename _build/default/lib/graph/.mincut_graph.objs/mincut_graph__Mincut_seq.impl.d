lib/graph/mincut_seq.ml: Bfs Graph Mincut_util Stoer_wagner
