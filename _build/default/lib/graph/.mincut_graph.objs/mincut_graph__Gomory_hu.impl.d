lib/graph/gomory_hu.ml: Array Bfs Graph Maxflow Mincut_util
