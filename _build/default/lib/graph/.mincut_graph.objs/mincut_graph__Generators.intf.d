lib/graph/generators.mli: Graph Mincut_util
