lib/graph/small_cuts.ml: Array Bfs Bridge Graph List Mincut_util Mst_seq
