lib/graph/mst_seq.ml: Array Graph Hashtbl List Mincut_util Union_find
