lib/graph/karger.mli: Graph Mincut_util
