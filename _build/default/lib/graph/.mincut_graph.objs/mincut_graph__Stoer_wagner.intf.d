lib/graph/stoer_wagner.mli: Graph Mincut_util
