lib/graph/all_min_cuts.ml: Bfs Graph Hashtbl Karger List Mincut_util
