lib/graph/maxflow.ml: Array Bfs Graph List Mincut_util Queue
