lib/graph/mincut_seq.mli: Graph Mincut_util
