lib/graph/sampling.mli: Graph Mincut_util
