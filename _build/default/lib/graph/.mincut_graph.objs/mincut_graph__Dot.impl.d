lib/graph/dot.ml: Buffer Fun Graph Mincut_util Printf
