lib/graph/dimacs.ml: Buffer Fun Graph List Printf String
