lib/graph/nagamochi.ml: Array Graph Mincut_util Union_find
