lib/graph/all_min_cuts.mli: Graph Mincut_util
