lib/graph/dot.mli: Graph Mincut_util
