lib/graph/metrics.ml: Array Diameter Graph Hashtbl Printf
