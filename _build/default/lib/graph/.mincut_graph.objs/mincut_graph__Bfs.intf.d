lib/graph/bfs.mli: Graph Mincut_util
