lib/graph/diameter.ml: Array Bfs Graph
