lib/graph/nagamochi.mli: Graph
