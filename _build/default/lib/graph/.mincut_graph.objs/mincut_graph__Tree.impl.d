lib/graph/tree.ml: Array Bfs Graph List Queue Stack
