lib/graph/bridge.ml: Array Bfs Graph List Stack
