lib/graph/maxflow.mli: Graph Mincut_util
