let write oc g =
  Printf.fprintf oc "p %d %d\n" (Graph.n g) (Graph.m g);
  Graph.iter_edges (fun e -> Printf.fprintf oc "e %d %d %d\n" e.u e.v e.w) g

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p %d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges
    (fun e -> Buffer.add_string buf (Printf.sprintf "e %d %d %d\n" e.u e.v e.w))
    g;
  Buffer.contents buf

let parse_lines lines =
  let header = ref None in
  let edges = ref [] in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let fail msg =
        failwith (Printf.sprintf "Dimacs.read: line %d: %s" lineno msg)
      in
      let int_of s = try int_of_string s with Failure _ -> fail "bad integer" in
      let line = String.trim raw in
      if line = "" || line.[0] = 'c' then ()
      else
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "p"; n; m ] -> (
            match !header with
            | Some _ -> fail "duplicate header"
            | None -> header := Some (int_of n, int_of m))
        | [ "e"; u; v; w ] -> edges := (int_of u, int_of v, int_of w) :: !edges
        | _ -> fail "unrecognized line")
    lines;
  match !header with
  | None -> failwith "Dimacs.read: missing header"
  | Some (n, m) ->
      if List.length !edges <> m then
        failwith
          (Printf.sprintf "Dimacs.read: header says %d edges, found %d" m
             (List.length !edges));
      Graph.create ~n (List.rev !edges)

let read ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  parse_lines (List.rev !lines)

let of_string s = parse_lines (String.split_on_char '\n' s)

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc g)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
