(** Gomory–Hu tree: all-pairs minimum cuts in n−1 max-flow computations.

    The Gomory–Hu tree of a connected weighted graph is a tree on the
    same nodes such that for every pair (u, v) the minimum u–v cut in
    the graph equals the smallest edge weight on the tree path between
    them (and the corresponding tree edge's sides realize the cut).

    Used here as (a) a richer all-pairs oracle for the test suite — the
    global min cut must equal the lightest Gomory–Hu edge — and (b) the
    engine behind the [network_reliability] example's per-pair bottleneck
    report.  Implementation: the classic Gusfield simplification (no node
    contraction), which yields a valid equivalent-flow tree with the same
    guarantee. *)

type t = {
  parent : int array;        (** tree structure; node 0 is the root, parent.(0) = -1 *)
  flow : int array;          (** flow.(v) = min cut between v and parent.(v) *)
}

val build : Graph.t -> t
(** Requires a connected graph with n ≥ 1. *)

val min_cut_between : t -> int -> int -> int
(** Minimum u–v cut value: the bottleneck on the tree path. *)

val global_min_cut : t -> int
(** The lightest tree edge = λ(G).  Requires n ≥ 2. *)

val widest_bottleneck_pairs : t -> int
(** The {e largest} pairwise min cut — how well-connected the best pair
    is (reliability reporting). *)
