(** Sequential minimum spanning trees.

    Thorup's tree packing generates each tree as the MST with respect to
    the loads induced by the previous trees, so the packing layer needs an
    MST routine parameterized by an arbitrary total order on edges
    ([kruskal_by]).  Plain weight-ordered variants ([kruskal], [prim],
    [boruvka]) serve as cross-checking references for each other and for
    the distributed MST. *)

val kruskal_by : Graph.t -> cmp:(Graph.edge -> Graph.edge -> int) -> int list
(** Minimum spanning forest under the given total order; returns edge
    ids.  For a connected graph this is a spanning tree.  Ties must be
    broken consistently by [cmp] for deterministic packings (compare ids
    last). *)

val kruskal : Graph.t -> int list
(** [kruskal_by] ordered by weight then id. *)

val prim : Graph.t -> int list
(** Prim's algorithm from node 0; raises [Invalid_argument] when the
    graph is disconnected. *)

val boruvka : Graph.t -> int list
(** Borůvka phases (the sequential mirror of the distributed MST);
    minimum spanning forest. *)

val tree_weight : Graph.t -> int list -> int
(** Total weight of the given edge ids. *)

val is_spanning_tree : Graph.t -> int list -> bool
(** Whether the ids form a spanning tree of a connected graph. *)
