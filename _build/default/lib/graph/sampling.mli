(** Karger's edge sampling (skeletons).

    The paper converts its exact-for-small-λ algorithm into a
    (1+ε)-approximation through Karger's sampling theorem (as packaged in
    [Tho07, Lemma 7]): sampling each unit of weight independently with
    probability [p = Θ(log n / (ε² λ))] gives a skeleton graph whose cuts
    are all within (1 ± ε) of [p] times their original value, w.h.p.; in
    particular its min cut is O(log n / ε²) — small enough for the
    poly(λ)-time exact algorithm.

    Weighted edges are treated as bundles of parallel unit edges, so the
    skeleton weight of an edge is Binomial(w, p). *)

type skeleton = {
  graph : Graph.t;  (** the sampled skeleton H *)
  p : float;        (** sampling probability used *)
}

val sample : rng:Mincut_util.Rng.t -> Graph.t -> p:float -> skeleton
(** Independent Binomial(w, p) thinning of every edge. *)

val recommended_p : n:int -> epsilon:float -> lambda_estimate:int -> float
(** [min 1 (c·ln n / (ε²·λ̂))] with the constant used throughout the
    repo (c = 3). *)

val estimate_from_skeleton : skeleton -> int -> int
(** [estimate_from_skeleton sk cut_value] rescales a cut value measured
    in the skeleton back to the original graph: [round (cut / p)]. *)
