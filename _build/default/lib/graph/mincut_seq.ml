module Bitset = Mincut_util.Bitset

type result = { value : int; side : Bitset.t }

let brute_force g =
  let n = Graph.n g in
  if n < 2 || n > 24 then invalid_arg "Mincut_seq.brute_force: need 2 <= n <= 24";
  (* fix node 0 out of X to halve the space *)
  let best_value = ref max_int in
  let best_mask = ref 0 in
  let masks = 1 lsl (n - 1) in
  for mask = 1 to masks - 1 do
    let in_cut v = v > 0 && (mask lsr (v - 1)) land 1 = 1 in
    let value = Graph.cut_value g ~in_cut in
    if value < !best_value then begin
      best_value := value;
      best_mask := mask
    end
  done;
  let side = Bitset.create n in
  for v = 1 to n - 1 do
    if (!best_mask lsr (v - 1)) land 1 = 1 then Bitset.add side v
  done;
  { value = !best_value; side }

let min_cut g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Mincut_seq.min_cut: need n >= 2";
  if not (Bfs.is_connected g) then
    { value = 0; side = Bfs.component_of g 0 }
  else
    let r = Stoer_wagner.run g in
    { value = r.Stoer_wagner.value; side = r.Stoer_wagner.side }

let is_valid_side g side =
  let n = Graph.n g in
  Bitset.capacity side = n
  &&
  let c = Bitset.cardinal side in
  c >= 1 && c <= n - 1
