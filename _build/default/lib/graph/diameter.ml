let check_connected g =
  if not (Bfs.is_connected g) then invalid_arg "Diameter: disconnected graph"

let exact g =
  check_connected g;
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    best := max !best (Bfs.eccentricity g v)
  done;
  !best

let double_sweep g =
  check_connected g;
  if Graph.n g <= 1 then 0
  else begin
    let r0 = Bfs.run g ~source:0 in
    let far = ref 0 in
    Array.iteri (fun v d -> if d > r0.dist.(!far) then far := v) r0.dist;
    Bfs.eccentricity g !far
  end

let estimate g = if Graph.n g <= 1024 then exact g else double_sweep g
