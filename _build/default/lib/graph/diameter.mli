(** Hop diameter of a connected graph.

    [D] appears in every round bound of the paper, so the benchmark
    harness needs it both exactly (small graphs) and cheaply (large
    sweeps, where the double-sweep lower bound is within a factor 2 and
    in practice almost always exact on the generator families we use). *)

val exact : Graph.t -> int
(** All-pairs BFS; O(n·m).  Raises [Invalid_argument] on disconnected
    graphs. *)

val double_sweep : Graph.t -> int
(** Lower bound by two BFS sweeps (eccentricity of a farthest node from
    an arbitrary start).  Exact on trees. *)

val estimate : Graph.t -> int
(** [exact] for n <= 1024, otherwise [double_sweep]. *)
