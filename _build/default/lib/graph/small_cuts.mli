(** Cuts of size one and two (bridges and cut pairs).

    Before the Õ(√n + D) era, distributed min-cut results targeted tiny
    cuts directly: Pritchard–Thurimella give O(D)-round algorithms for
    cut edges and Õ(D)-round for cut pairs.  This module provides the
    sequential computation behind that specialized baseline
    ({!Mincut_core.Pritchard}) and an oracle for λ ≤ 2 questions in
    tests.

    Weights count as multiplicities: a weight-2 edge is never a bridge,
    and a cut pair must consist of two weight-1 edges. *)

val bridges : Graph.t -> int list
(** Weight-aware bridges: edge ids whose removal disconnects the graph
    and whose weight is 1 (a heavier edge is a parallel bundle). *)

val heavy_bridges : Graph.t -> int list
(** Topological bridges of weight exactly 2 — single-edge cuts of value
    2 in the multiplicity view. *)

val cut_pairs : Graph.t -> (int * int) list
(** All unordered pairs of weight-1 edges {e, f} whose joint removal
    disconnects a bridgeless connected graph — the 2-cuts.  O(m·(n+m));
    an oracle, not a fast algorithm. *)

val edge_connectivity_le2 : Graph.t -> int option
(** [Some 0] if disconnected, [Some 1] if a bridge exists, [Some 2] if a
    cut pair exists, [None] when λ ≥ 3. *)

val cut_pair_side : Graph.t -> int * int -> Mincut_util.Bitset.t
(** One side of the cut defined by removing the pair. *)
