module Bitset = Mincut_util.Bitset

type t = { parent : int array; flow : int array }

(* Gusfield's algorithm: process nodes 1..n-1; compute maxflow(v, parent v)
   on the ORIGINAL graph; re-hang nodes that fall on v's side. *)
let build g =
  let n = Graph.n g in
  if n >= 2 && not (Bfs.is_connected g) then
    invalid_arg "Gomory_hu.build: disconnected graph";
  let parent = Array.make n 0 in
  parent.(0) <- -1;
  let flow = Array.make n max_int in
  for v = 1 to n - 1 do
    let p = parent.(v) in
    let r = Maxflow.max_flow g ~s:v ~t:p in
    flow.(v) <- r.Maxflow.value;
    for u = v + 1 to n - 1 do
      if parent.(u) = p && Bitset.mem r.Maxflow.source_side u then parent.(u) <- v
    done
  done;
  { parent; flow }

let min_cut_between t u v =
  if u = v then invalid_arg "Gomory_hu.min_cut_between: u = v";
  let n = Array.length t.parent in
  let depth x =
    let rec go d x = if x = -1 then d else go (d + 1) t.parent.(x) in
    go 0 x
  in
  ignore n;
  let rec walk u du v dv best =
    if u = v then best
    else if du >= dv then walk t.parent.(u) (du - 1) v dv (min best t.flow.(u))
    else walk u du t.parent.(v) (dv - 1) (min best t.flow.(v))
  in
  walk u (depth u) v (depth v) max_int

let global_min_cut t =
  let n = Array.length t.parent in
  if n < 2 then invalid_arg "Gomory_hu.global_min_cut: need n >= 2";
  let best = ref max_int in
  for v = 1 to n - 1 do
    best := min !best t.flow.(v)
  done;
  !best

let widest_bottleneck_pairs t =
  let n = Array.length t.parent in
  if n < 2 then invalid_arg "Gomory_hu.widest_bottleneck_pairs: need n >= 2";
  let best = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      best := max !best (min_cut_between t u v)
    done
  done;
  !best
