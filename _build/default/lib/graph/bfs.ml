type result = {
  dist : int array;
  parent : int array;
  parent_edge : int array;
  order : int list;
}

let run_multi g ~sources =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = -1 then begin
        dist.(s) <- 0;
        Queue.add s q
      end)
    sources;
  let order = ref [] in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order := v :: !order;
    Array.iter
      (fun (u, eid) ->
        if dist.(u) = -1 then begin
          dist.(u) <- dist.(v) + 1;
          parent.(u) <- v;
          parent_edge.(u) <- eid;
          Queue.add u q
        end)
      (Graph.adj g v)
  done;
  { dist; parent; parent_edge; order = List.rev !order }

let run g ~source = run_multi g ~sources:[ source ]

let eccentricity g v =
  let r = run g ~source:v in
  Array.fold_left max 0 r.dist

let is_connected g =
  let n = Graph.n g in
  n <= 1
  ||
  let r = run g ~source:0 in
  Array.for_all (fun d -> d >= 0) r.dist

let component_of g v =
  let r = run g ~source:v in
  let set = Mincut_util.Bitset.create (Graph.n g) in
  Array.iteri (fun u d -> if d >= 0 then Mincut_util.Bitset.add set u) r.dist;
  set

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if label.(v) = -1 then begin
      let r = run g ~source:v in
      Array.iteri (fun u d -> if d >= 0 && label.(u) = -1 then label.(u) <- !next) r.dist;
      incr next
    end
  done;
  label
