(** Workload characterization metrics.

    The benchmark harness prints a "workload zoo" table describing every
    graph family it uses, so readers can judge which structural regime
    each experiment exercises (the paper's bounds interact with density,
    diameter, and degree spread). *)

type t = {
  n : int;
  m : int;
  total_weight : int;
  min_degree : int;          (** unweighted *)
  max_degree : int;
  avg_degree : float;
  min_weighted_degree : int; (** the λ upper bound *)
  diameter : int;
  triangle_density : float;
      (** fraction of sampled length-2 paths that close into a triangle
          (global clustering estimate; exact for small graphs) *)
}

val compute : Graph.t -> t
(** Requires a connected graph. *)

val pp_row : t -> string list
(** Cells in the order of {!columns}. *)

val columns : string list
