(** Sequential minimum-cut front end and brute force reference.

    [brute_force] enumerates all 2^(n-1) sides and is the base oracle for
    property tests on tiny graphs; [min_cut] dispatches to Stoer–Wagner
    and handles the degenerate cases uniformly. *)

type result = { value : int; side : Mincut_util.Bitset.t }

val brute_force : Graph.t -> result
(** Exact by enumeration; requires 2 <= n <= 24. *)

val min_cut : Graph.t -> result
(** Exact minimum cut: 0 with a component side when disconnected,
    Stoer–Wagner otherwise.  Requires n >= 2. *)

val is_valid_side : Graph.t -> Mincut_util.Bitset.t -> bool
(** A side is valid when it is a proper non-empty subset of V. *)
