(** Plain-text graph serialization.

    Format (a light DIMACS dialect):
    {v
    c optional comment lines
    p <n> <m>
    e <u> <v> <w>     (m lines, 0-based endpoints)
    v}
    Used by the CLI so experiments can be re-run on saved workloads. *)

val write : out_channel -> Graph.t -> unit

val read : in_channel -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t

val save : string -> Graph.t -> unit
(** Write to a file path. *)

val load : string -> Graph.t
(** Read from a file path. *)
