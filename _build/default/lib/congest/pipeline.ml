let broadcast ~depth ~items = if items = 0 then 0 else depth + items

let upcast ~depth ~items = if items = 0 then 0 else depth + items

let convergecast ~depth ~max_edge_load =
  if max_edge_load = 0 then 0 else depth + max_edge_load

let exchange ~items = items

let local r = r
