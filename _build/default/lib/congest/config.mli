(** CONGEST model parameters.

    In the CONGEST model [Pel00] every node sends, per synchronous round,
    at most one message of O(log n) bits along each incident edge.  We
    count message payloads in {e words}, where one word holds one node
    id / weight / counter (i.e., Θ(log n) bits), and enforce a per-message
    word budget.  The default budget of 4 words is the usual constant
    slack that CONGEST algorithm descriptions assume when they say a
    message carries "an edge and two fragment IDs". *)

type t = {
  words_per_message : int;  (** payload budget per message *)
  max_rounds : int;         (** engine watchdog; exceeded = failure *)
}

val default : t
(** 4 words, 2_000_000 rounds. *)

val with_budget : int -> t

val bits_per_word : n:int -> int
(** ⌈log₂ n⌉ + 1, the "O(log n) bits" a word stands for; used by the
    audit report (experiment T5). *)
