module Graph = Mincut_graph.Graph

exception Model_violation of string

type ('state, 'msg) program = {
  initial : int -> 'state;
  step :
    node:int -> round:int -> inbox:(int * 'msg) list -> 'state -> 'state * (int * 'msg) list;
  halted : 'state -> bool;
}

type audit = {
  rounds : int;
  total_messages : int;
  total_words : int;
  max_words : int;
  max_edge_load : int;
  messages_per_round : int array;
}

let violation fmt = Printf.ksprintf (fun s -> raise (Model_violation s)) fmt

type 'msg mailbox = (int * 'msg) list array

let neighbor_sets g =
  Array.init (Graph.n g) (fun v ->
      let tbl = Hashtbl.create (Graph.degree g v) in
      Array.iter (fun (u, _) -> Hashtbl.replace tbl u ()) (Graph.adj g v);
      tbl)

(* Shared driver.  [stop] decides termination given (round, all_halted,
   traffic_pending). *)
let drive ?(cfg = Config.default) ~words ~stop g prog =
  let n = Graph.n g in
  let neighbors = neighbor_sets g in
  let states = Array.init n prog.initial in
  let inboxes : _ mailbox = Array.make n [] in
  let pending = ref false in
  let total_messages = ref 0 in
  let total_words = ref 0 in
  let per_round = ref [] in
  let max_words = ref 0 in
  let last_traffic_round = ref (-1) in
  let round = ref 0 in
  let all_halted () =
    let rec go v = v >= n || (prog.halted states.(v) && go (v + 1)) in
    go 0
  in
  while not (stop ~round:!round ~all_halted:(all_halted () && not !pending)) do
    if !round >= cfg.Config.max_rounds then
      violation "watchdog: exceeded %d rounds" cfg.Config.max_rounds;
    let next : _ mailbox = Array.make n [] in
    let sent_this_round = Hashtbl.create 64 in
    let sent_count = ref 0 in
    pending := false;
    for v = 0 to n - 1 do
      if not (prog.halted states.(v)) then begin
        let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(v) in
        let state', outs = prog.step ~node:v ~round:!round ~inbox states.(v) in
        states.(v) <- state';
        List.iter
          (fun (dst, payload) ->
            if not (Hashtbl.mem neighbors.(v) dst) then
              violation "round %d: node %d sent to non-neighbor %d" !round v dst;
            if Hashtbl.mem sent_this_round (v, dst) then
              violation "round %d: node %d sent twice to %d" !round v dst;
            Hashtbl.add sent_this_round (v, dst) ();
            let w = words payload in
            if w > cfg.Config.words_per_message then
              violation "round %d: node %d message of %d words exceeds budget %d"
                !round v w cfg.Config.words_per_message;
            incr total_messages;
            incr sent_count;
            total_words := !total_words + w;
            max_words := max !max_words w;
            last_traffic_round := !round;
            next.(dst) <- (v, payload) :: next.(dst);
            pending := true)
          outs
      end
    done;
    Array.blit next 0 inboxes 0 n;
    per_round := !sent_count :: !per_round;
    incr round
  done;
  let audit =
    {
      rounds = !round;
      total_messages = !total_messages;
      total_words = !total_words;
      max_words = !max_words;
      max_edge_load = (if !total_messages > 0 then 1 else 0);
      messages_per_round = Array.of_list (List.rev !per_round);
    }
  in
  (states, audit, !last_traffic_round)

let run ?cfg ~words g prog =
  let states, audit, _ =
    drive ?cfg ~words ~stop:(fun ~round:_ ~all_halted -> all_halted) g prog
  in
  (states, audit)

let run_bounded ?cfg ~words ~rounds g prog =
  let states, audit, last_traffic =
    drive ?cfg ~words ~stop:(fun ~round ~all_halted:_ -> round >= rounds) g prog
  in
  (* effective completion time: the delivery round of the last message *)
  (states, { audit with rounds = (if last_traffic < 0 then 0 else last_traffic + 2) })
