type t = { words_per_message : int; max_rounds : int }

let default = { words_per_message = 4; max_rounds = 2_000_000 }

let with_budget words = { default with words_per_message = words }

let bits_per_word ~n =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 (max 1 (n - 1)) + 1
