type t = { rounds : int; breakdown : (string * int) list }

let zero = { rounds = 0; breakdown = [] }

let step name rounds =
  assert (rounds >= 0);
  { rounds; breakdown = [ (name, rounds) ] }

let ( ++ ) a b = { rounds = a.rounds + b.rounds; breakdown = a.breakdown @ b.breakdown }

let par a b =
  let winner, loser = if a.rounds >= b.rounds then (a, b) else (b, a) in
  {
    rounds = winner.rounds;
    breakdown =
      winner.breakdown
      @ List.map (fun (name, r) -> ("(overlapped) " ^ name, r)) loser.breakdown;
  }

let sum = List.fold_left ( ++ ) zero

let pp fmt t =
  Format.fprintf fmt "@[<v>total rounds: %d" t.rounds;
  List.iter (fun (name, r) -> Format.fprintf fmt "@ %6d  %s" r name) t.breakdown;
  Format.fprintf fmt "@]"

let to_table_rows t = t.breakdown @ [ ("total", t.rounds) ]
