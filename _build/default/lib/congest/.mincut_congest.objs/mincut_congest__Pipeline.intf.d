lib/congest/pipeline.mli:
