lib/congest/primitives.mli: Config Cost Mincut_graph Network
