lib/congest/network.ml: Array Config Hashtbl List Mincut_graph Printf
