lib/congest/cost.mli: Format
