lib/congest/cost.ml: Format List
