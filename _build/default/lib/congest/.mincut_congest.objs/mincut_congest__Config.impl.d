lib/congest/config.ml:
