lib/congest/primitives.ml: Array Cost Int List Mincut_graph Network Set
