lib/congest/pipeline.ml:
