lib/congest/network.mli: Config Mincut_graph
