lib/congest/config.mli:
