lib/treepack/tree_packing.ml: Array List Mincut_congest Mincut_graph Mincut_util Printf
