lib/treepack/tree_packing.mli: Mincut_congest Mincut_graph
