(** Kutten–Peleg tree partition — Step 1 of the paper's algorithm.

    Partitions a rooted spanning tree [T] into [O(√n)] vertex-disjoint
    subtrees ("fragments") of height [O(√n)] — the [(√n+1, O(√n))]
    spanning forest of [KP98, Section 3.2].  The paper's footnote notes
    that this forest falls out of the Kutten–Peleg MST computation
    itself; accordingly the decomposition here is computed directly
    (one bottom-up pass) and the distributed round cost of this step is
    charged at the KP bound by the caller (see
    {!Mincut_core.Params}).

    Beyond the partition itself, this module precomputes the structures
    the rest of Section 2 keeps referring to:
    - the fragment tree [T_F] (contract each fragment to one node);
    - each fragment's root [rᵢ] (member closest to the root of [T]);
    - each fragment's id ([id(Fᵢ) = min member id], as in the paper);
    - per-node depth within its fragment (drives all "O(√n) because the
      fragment has O(√n) diameter" schedules). *)

type t = {
  tree : Mincut_graph.Tree.t;        (** the underlying rooted tree T *)
  target : int;                       (** height threshold used (≈ ⌈√n⌉) *)
  frag_of : int array;                (** node → fragment index *)
  roots : int array;                  (** fragment index → root node rᵢ *)
  members : int list array;           (** fragment index → member nodes *)
  ids : int array;                    (** fragment index → id(Fᵢ) *)
  frag_parent : int array;            (** T_F parent fragment; -1 at the top *)
  frag_children : int list array;     (** T_F children *)
  depth_in_frag : int array;          (** node → depth below its fragment root *)
  heights : int array;                (** fragment index → height of its subtree *)
}

val partition : Mincut_graph.Tree.t -> target:int -> t
(** Bottom-up partition closing a fragment whenever the pending subtree
    reaches height [target >= 1]. *)

val default_target : n:int -> int
(** [⌈√n⌉]. *)

val count : t -> int
(** Number of fragments (≤ n/target + 1). *)

val max_height : t -> int
(** Max fragment height (≤ target). *)

val inter_fragment_edges : t -> (int * int) list
(** Tree edges [(child_node, parent_node)] crossing fragment boundaries
    — the edges of [T_F]; there are [count - 1] of them. *)

val frag_tree_depth : t -> int array
(** Depth of each fragment in [T_F] (root fragment at 0). *)

val check_invariants : t -> (string, string) result
(** Verifies the [(√n+1, O(√n))] contract and internal consistency;
    [Error] carries a description of the violated invariant.  Used by
    tests and by the F5 experiment. *)
