module Tree = Mincut_graph.Tree

type t = {
  tree : Tree.t;
  target : int;
  frag_of : int array;
  roots : int array;
  members : int list array;
  ids : int array;
  frag_parent : int array;
  frag_children : int list array;
  depth_in_frag : int array;
  heights : int array;
}

let default_target ~n = int_of_float (ceil (sqrt (float_of_int n)))

let partition (tree : Tree.t) ~target =
  if target < 1 then invalid_arg "Fragments.partition: target must be >= 1";
  let n = tree.Tree.graph_n in
  (* Bottom-up: pending height of the not-yet-assigned subtree hanging at
     each node; close a fragment when it reaches [target]. *)
  let pending = Array.make n 0 in
  let is_root = Array.make n false in
  for i = n - 1 downto 0 do
    let v = tree.Tree.preorder.(i) in
    let h =
      Array.fold_left
        (fun acc c -> if is_root.(c) then acc else max acc (pending.(c) + 1))
        0 tree.Tree.children.(v)
    in
    pending.(v) <- h;
    if h >= target then is_root.(v) <- true
  done;
  is_root.(tree.Tree.root) <- true;
  (* fragment index assignment in preorder of fragment roots *)
  let frag_of = Array.make n (-1) in
  let index_of_root = Hashtbl.create 64 in
  let roots_rev = ref [] in
  let k = ref 0 in
  Array.iter
    (fun v ->
      if is_root.(v) then begin
        Hashtbl.add index_of_root v !k;
        roots_rev := v :: !roots_rev;
        incr k
      end)
    tree.Tree.preorder;
  let roots = Array.of_list (List.rev !roots_rev) in
  let depth_in_frag = Array.make n 0 in
  Array.iter
    (fun v ->
      if is_root.(v) then begin
        frag_of.(v) <- Hashtbl.find index_of_root v;
        depth_in_frag.(v) <- 0
      end
      else begin
        let p = tree.Tree.parent.(v) in
        frag_of.(v) <- frag_of.(p);
        depth_in_frag.(v) <- depth_in_frag.(p) + 1
      end)
    tree.Tree.preorder;
  let members = Array.make !k [] in
  for v = n - 1 downto 0 do
    members.(frag_of.(v)) <- v :: members.(frag_of.(v))
  done;
  let ids = Array.map (fun ms -> List.fold_left min max_int ms) members in
  let frag_parent =
    Array.map
      (fun r ->
        let p = tree.Tree.parent.(r) in
        if p = -1 then -1 else frag_of.(p))
      roots
  in
  let frag_children = Array.make !k [] in
  Array.iteri
    (fun i p -> if p <> -1 then frag_children.(p) <- i :: frag_children.(p))
    frag_parent;
  let heights = Array.make !k 0 in
  Array.iteri (fun v d -> heights.(frag_of.(v)) <- max heights.(frag_of.(v)) d) depth_in_frag;
  {
    tree;
    target;
    frag_of;
    roots;
    members;
    ids;
    frag_parent;
    frag_children;
    depth_in_frag;
    heights;
  }

let count t = Array.length t.roots

let max_height t = Array.fold_left max 0 t.heights

let inter_fragment_edges t =
  Array.to_list t.roots
  |> List.filter_map (fun r ->
         let p = t.tree.Tree.parent.(r) in
         if p = -1 then None else Some (r, p))

let frag_tree_depth t =
  let k = count t in
  let depth = Array.make k 0 in
  (* frag_parent always points to an earlier preorder fragment, so one
     forward pass suffices *)
  for i = 0 to k - 1 do
    let p = t.frag_parent.(i) in
    if p <> -1 then depth.(i) <- depth.(p) + 1
  done;
  depth

let check_invariants t =
  let n = t.tree.Tree.graph_n in
  let k = count t in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.exists (fun f -> f < 0 || f >= k) t.frag_of then fail "unassigned node"
  else if List.length (List.concat (Array.to_list t.members)) <> n then
    fail "members do not partition V"
  else if max_height t > t.target then
    fail "fragment height %d exceeds target %d" (max_height t) t.target
  else if k > (n / t.target) + 1 then
    fail "too many fragments: %d > n/target + 1 = %d" k ((n / t.target) + 1)
  else begin
    (* each fragment must be a connected subtree: every non-root member's
       parent is in the same fragment *)
    let ok = ref (Ok ()) in
    Array.iteri
      (fun i ms ->
        List.iter
          (fun v ->
            if v <> t.roots.(i) then begin
              let p = t.tree.Tree.parent.(v) in
              if p = -1 || t.frag_of.(p) <> i then
                ok := Error (Printf.sprintf "fragment %d is not a subtree at node %d" i v)
            end)
          ms)
      t.members;
    match !ok with
    | Error _ as e -> e
    | Ok () ->
        (* fragment ids are the min member ids *)
        if
          Array.for_all
            (fun i -> t.ids.(i) = List.fold_left min max_int t.members.(i))
            (Array.init k (fun i -> i))
        then Ok "fragments valid"
        else fail "bad fragment id"
  end
