lib/mst/fragments.ml: Array Hashtbl List Mincut_graph Printf
