lib/mst/fragments.mli: Mincut_graph
