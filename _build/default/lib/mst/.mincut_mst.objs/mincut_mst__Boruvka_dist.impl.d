lib/mst/boruvka_dist.ml: Array Hashtbl Int List Mincut_congest Mincut_graph Set
