lib/mst/boruvka_dist.mli: Mincut_congest Mincut_graph
