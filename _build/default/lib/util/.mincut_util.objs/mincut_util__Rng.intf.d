lib/util/rng.mli:
