lib/util/stats.mli:
