lib/util/heap.mli:
