lib/util/table.mli:
