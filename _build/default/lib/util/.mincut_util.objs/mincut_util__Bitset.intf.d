lib/util/bitset.mli:
