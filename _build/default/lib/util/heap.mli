(** Binary min-heap keyed by a client-supplied comparison.

    Used by Prim's MST and by the diameter double-sweep; intentionally
    minimal and allocation-light. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element on top). *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum, or [None] when empty. *)

val peek : 'a t -> 'a option

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify in O(n). *)
