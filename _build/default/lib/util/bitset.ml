let bits_per_word = 62

type t = { n : int; words : int array }

let create n =
  assert (n >= 0);
  { n; words = Array.make (((n + bits_per_word) - 1) / bits_per_word + 1) 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let copy t = { n = t.n; words = Array.copy t.words }

let complement_inplace t =
  for i = 0 to t.n - 1 do
    let w = i / bits_per_word in
    t.words.(w) <- t.words.(w) lxor (1 lsl (i mod bits_per_word))
  done

let equal a b =
  a.n = b.n
  &&
  let rec go i = i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1)) in
  go 0
