(** Fixed-capacity bitset over [0 .. n-1].

    Backed by an int array (62 useful bits per word).  Used for visited
    sets, cut sides, and sampled-edge masks where a [bool array] would be
    8x larger and cut comparison needs fast popcount. *)

type t

val create : int -> t
(** All-zero set with capacity [n]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Visit members in increasing order. *)

val to_list : t -> int list

val copy : t -> t

val complement_inplace : t -> unit
(** Flip membership of every element in [0 .. capacity-1]. *)

val equal : t -> t -> bool
