(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables similar to the way systems
    papers print evaluation tables, so the bench output can be diffed
    against EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Rows must have as many cells as there are columns. *)

val render : t -> string
(** Render with aligned columns, header rule, and the caption on top. *)

val print : t -> unit
(** [render] to stdout followed by a blank line; additionally writes a
    CSV copy when a sink directory is set. *)

val to_csv : t -> string
(** Comma-separated rendering (header row first; cells with commas are
    quoted). *)

val set_csv_dir : string option -> unit
(** When set, every [print] also writes [<dir>/<slug-of-title>.csv] so
    benchmark runs leave machine-readable artifacts for plotting. *)

val fmt_float : float -> string
(** Compact numeric formatting: integers without decimals, otherwise two
    significant decimals. *)

val fmt_ratio : float -> string
(** Ratio formatting with three decimals ("1.000"). *)
