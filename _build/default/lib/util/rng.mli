(** Deterministic pseudo-random number generation.

    Every randomized component of the library threads an explicit [Rng.t]
    so that experiments and tests are reproducible from a single integer
    seed.  The generator is SplitMix64, which is small, fast, and passes
    BigCrush; it is more than adequate for simulation workloads. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    subsequently produce independent-looking streams.  Used to give each
    trial / node / tree its own stream without correlation. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val binomial : t -> int -> float -> int
(** [binomial t n p] samples the number of successes among [n] independent
    [p]-coins.  Exact (inversion / direct simulation), intended for the
    modest [n] used by skeleton sampling. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of
    a [p]-coin; used to skip over non-sampled edges in sparse sampling.
    Requires [0 < p <= 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
