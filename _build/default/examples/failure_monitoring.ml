(* Operating a network over time: links fail, the distributed min cut is
   recomputed, and the certified answer drives alerts.  This is the
   "downstream user" loop a monitoring daemon would run with this
   library.

     dune exec examples/failure_monitoring.exe *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Api = Mincut_core.Api
module Certificate = Mincut_core.Certificate
module Params = Mincut_core.Params
module Table = Mincut_util.Table

(* remove [k] random surviving links (by id) from [g] *)
let fail_links ~rng g k =
  let m = Graph.m g in
  let doomed = Hashtbl.create k in
  let attempts = ref 0 in
  while Hashtbl.length doomed < min k m && !attempts < 10 * k do
    incr attempts;
    Hashtbl.replace doomed (Rng.int rng m) ()
  done;
  Graph.sub_by_edges g ~keep:(fun e -> not (Hashtbl.mem doomed e.Graph.id))

let () =
  let rng = Rng.create 20260705 in
  (* a healthy 4-regular-ish fabric *)
  let initial = Generators.torus 8 8 in
  let t =
    Table.create ~title:"rolling link failures: capacity margin over time"
      ~columns:[ "epoch"; "links alive"; "min cut"; "certified"; "alert" ]
  in
  let alerting = ref false in
  let g = ref initial in
  let epoch = ref 0 in
  let continue = ref true in
  while !continue do
    let s = Api.min_cut ~params:Params.fast ~algorithm:Api.Exact_two_respect !g in
    let report = Certificate.certify_summary !g s in
    let alert =
      if s.Api.value = 0 then "PARTITIONED"
      else if s.Api.value <= 1 then "CRITICAL: single link from partition"
      else if s.Api.value <= 2 then "warning: thin margin"
      else "ok"
    in
    if s.Api.value <= 1 then alerting := true;
    Table.add_row t
      [
        string_of_int !epoch;
        string_of_int (Graph.m !g);
        string_of_int s.Api.value;
        string_of_bool report.Certificate.accepted;
        alert;
      ];
    if s.Api.value = 0 || !epoch >= 10 then continue := false
    else begin
      (* an epoch passes; a few links fail *)
      g := fail_links ~rng !g 6;
      incr epoch;
      (* a partition means the next measurement runs per component; the
         monitoring loop stops at the first full partition here *)
      if not (Mincut_graph.Bfs.is_connected !g) then begin
        Table.add_row t
          [ string_of_int !epoch; string_of_int (Graph.m !g); "0"; "-"; "PARTITIONED" ];
        continue := false
      end
    end
  done;
  Table.print t;
  print_endline
    "The margin decays as links fail; the CRITICAL row is the operator's last\n\
     chance before a partition.  Every reading is certified by the O(D)-round\n\
     distributed check (Certificate), so a buggy or lying solver cannot raise\n\
     a false all-clear."
