(* All four algorithms side by side on the same networks: the paper's
   exact algorithm, its (1+eps) reduction, and the two published
   baselines it compares against.

     dune exec examples/algorithm_race.exe *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Rng = Mincut_util.Rng
module Api = Mincut_core.Api
module Params = Mincut_core.Params
module Table = Mincut_util.Table
module Stoer_wagner = Mincut_graph.Stoer_wagner

let () =
  let rng = Rng.create 99 in
  let graphs =
    [
      ("torus-8x8", Generators.torus 8 8);
      ("gnp-128", Generators.gnp_connected ~rng 128 0.08);
      ("planted-96-3", Generators.planted_cut ~rng ~n:96 ~cut_edges:3 ~p_in:0.4 ());
      ("cliques-path-8x12", Generators.path_of_cliques ~clique:8 ~length:12);
    ]
  in
  let algorithms =
    [
      Api.Exact_small_lambda; Api.Approx 0.5; Api.Ghaffari_kuhn 0.5; Api.Su 0.5;
    ]
  in
  let t =
    Table.create ~title:"algorithm race (value @ simulated rounds; truth = Stoer-Wagner)"
      ~columns:
        ("graph" :: "truth"
        :: List.map (fun a -> Api.algorithm_name a) algorithms)
  in
  List.iter
    (fun (name, g) ->
      let truth = (Stoer_wagner.run g).Stoer_wagner.value in
      let cells =
        List.map
          (fun alg ->
            let s = Api.min_cut ~params:Params.fast ~algorithm:alg ~seed:42 g in
            assert (Api.verify g s);
            Printf.sprintf "%d @ %d" s.Api.value s.Api.rounds)
          algorithms
      in
      Table.add_row t (name :: string_of_int truth :: cells))
    graphs;
  Table.print t;
  print_endline
    "Every cell is value @ rounds.  The exact algorithm matches the truth\n\
     column; the (1+eps) stays within eps of it; Ghaffari-Kuhn guarantees only\n\
     2+eps (though it is usually better in practice); Su trades exactness for\n\
     simplicity even at small cuts."
