(* Bottleneck analysis of network topologies: the minimum cut is the
   weakest point of a network -- the smallest total link capacity whose
   failure partitions it.  This example compares classic datacenter /
   HPC topologies at similar size and finds each one's bottleneck.

     dune exec examples/network_reliability.exe *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Api = Mincut_core.Api
module Table = Mincut_util.Table

let describe_side g side =
  let c = Bitset.cardinal side in
  let n = Graph.n g in
  let size = min c (n - c) in
  if size = 1 then "single node isolated"
  else Printf.sprintf "%d-node group separated" size

let () =
  let t =
    Table.create
      ~title:"topology bottlenecks (min cut = capacity that must fail to split the network)"
      ~columns:[ "topology"; "n"; "links"; "min cut"; "bottleneck"; "rounds" ]
  in
  let rng = Rng.create 7 in
  let topologies =
    [
      ("ring-64", Generators.ring 64);
      ("grid-8x8", Generators.grid 8 8);
      ("torus-8x8", Generators.torus 8 8);
      ("hypercube-6", Generators.hypercube 6);
      ("random-regular-64-3", Generators.random_regular ~rng 64 3);
      ("random-regular-64-5", Generators.random_regular ~rng 64 5);
      ("two-pods-thin-spine", Generators.planted_cut ~rng ~n:64 ~cut_edges:3 ~p_in:0.3 ());
      ("dumbbell-24-16", Generators.dumbbell 24 16);
    ]
  in
  List.iter
    (fun (name, g) ->
      let r = Api.min_cut ~params:Mincut_core.Params.fast g in
      Table.add_row t
        [
          name;
          string_of_int (Graph.n g);
          string_of_int (Graph.m g);
          string_of_int r.Api.value;
          describe_side g r.Api.side;
          string_of_int r.Api.rounds;
        ])
    topologies;
  Table.print t;
  print_endline
    "Reading the table: the torus doubles the grid's bottleneck by closing the\n\
     edges; the hypercube and the d-regular expanders push it to their degree;\n\
     the thin-spine and dumbbell networks are one cable-bundle away from a\n\
     partition regardless of how dense the pods are.\n";

  (* Per-pair view: the Gomory-Hu tree answers every pairwise bottleneck
     question with n-1 max-flow computations. *)
  let t2 =
    Table.create
      ~title:"pairwise bottlenecks (Gomory-Hu tree): worst pair vs best pair"
      ~columns:[ "topology"; "global min cut"; "best-connected pair" ]
  in
  List.iter
    (fun (name, g) ->
      let gh = Mincut_graph.Gomory_hu.build g in
      Table.add_row t2
        [
          name;
          string_of_int (Mincut_graph.Gomory_hu.global_min_cut gh);
          string_of_int (Mincut_graph.Gomory_hu.widest_bottleneck_pairs gh);
        ])
    [
      ("torus-8x8", Generators.torus 8 8);
      ("dumbbell-12-8", Generators.dumbbell 12 8);
      ("wheel-32", Generators.wheel 32);
    ];
  Table.print t2;
  print_endline
    "The dumbbell's pods are internally 11-connected even though the network as a\n\
     whole splits after one failure -- exactly the situation where a global min\n\
     cut (this paper) plus a Gomory-Hu drill-down locates the fragile span."
