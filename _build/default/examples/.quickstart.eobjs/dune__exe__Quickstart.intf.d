examples/quickstart.mli:
