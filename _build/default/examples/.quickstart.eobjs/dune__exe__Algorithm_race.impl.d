examples/algorithm_race.ml: List Mincut_core Mincut_graph Mincut_util Printf
