examples/fragment_anatomy.mli:
