examples/sampling_lemma.ml: Array Float List Mincut_graph Mincut_util Printf
