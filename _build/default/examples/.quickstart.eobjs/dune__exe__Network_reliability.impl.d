examples/network_reliability.ml: List Mincut_core Mincut_graph Mincut_util Printf
