examples/failure_monitoring.ml: Hashtbl Mincut_core Mincut_graph Mincut_util
