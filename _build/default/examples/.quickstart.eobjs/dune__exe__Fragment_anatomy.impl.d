examples/fragment_anatomy.ml: Array List Mincut_core Mincut_graph Mincut_mst Printf String
