examples/sampling_lemma.mli:
