examples/planted_partition.ml: Float List Mincut_core Mincut_graph Mincut_util Printf
