examples/failure_monitoring.mli:
