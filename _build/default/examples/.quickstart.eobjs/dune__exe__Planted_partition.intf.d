examples/planted_partition.mli:
