examples/algorithm_race.mli:
