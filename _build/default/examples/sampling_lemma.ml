(* Karger's sampling lemma, observed: sample every unit of capacity with
   probability p and every cut of the skeleton lands within (1 ± eps) of
   p times its original value -- the engine behind the paper's (1+eps)
   reduction.  This example measures the concentration directly.

     dune exec examples/sampling_lemma.exe *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Sampling = Mincut_graph.Sampling
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Stats = Mincut_util.Stats
module Table = Mincut_util.Table

let () =
  let rng = Rng.create 4242 in
  (* a weighted planted graph with a fat min cut so sampling has room *)
  let g =
    Generators.planted_cut ~rng
      ~weights:{ Generators.wmin = 3; wmax = 6 }
      ~n:96 ~cut_edges:24 ~p_in:0.5 ()
  in
  let sw = Stoer_wagner.run g in
  let lambda = sw.Stoer_wagner.value in
  Printf.printf "graph: n=%d, m=%d, total capacity %d, min cut %d\n\n" (Graph.n g)
    (Graph.m g) (Graph.total_weight g) lambda;

  let t =
    Table.create
      ~title:
        "skeleton concentration: rescaled min-cut estimate lambda_hat = C_H(side)/p \
         over 20 skeletons per p"
      ~columns:[ "p"; "mean lambda_hat"; "stddev"; "worst rel. error"; "skeleton m" ]
  in
  List.iter
    (fun p ->
      let estimates = ref [] in
      let sizes = ref [] in
      for _ = 1 to 20 do
        let sk = Sampling.sample ~rng g ~p in
        (* evaluate the TRUE min cut side in the skeleton: the lemma is a
           statement about every fixed cut *)
        let c_h = Graph.cut_of_bitset sk.Sampling.graph sw.Stoer_wagner.side in
        estimates := (float_of_int c_h /. p) :: !estimates;
        sizes := float_of_int (Graph.m sk.Sampling.graph) :: !sizes
      done;
      let s = Stats.summarize (Array.of_list !estimates) in
      let worst =
        List.fold_left
          (fun acc e -> Float.max acc (abs_float (e -. float_of_int lambda) /. float_of_int lambda))
          0.0 !estimates
      in
      Table.add_row t
        [
          Printf.sprintf "%.2f" p;
          Table.fmt_float s.Stats.mean;
          Table.fmt_float s.Stats.stddev;
          Printf.sprintf "%.0f%%" (100.0 *. worst);
          Table.fmt_float (Stats.mean (Array.of_list !sizes));
        ])
    [ 0.8; 0.6; 0.4; 0.2; 0.1; 0.05 ];
  Table.print t;
  print_endline
    "Unbiased at every p (mean tracks the true cut), variance growing as p\n\
     shrinks -- the lemma's p = Theta(log n / (eps^2 lambda)) is the smallest p\n\
     keeping the worst error under eps, and that is exactly the probability the\n\
     paper's reduction uses before running the exact algorithm on the skeleton."
