(* Community splitting: when a network consists of two dense groups
   joined by a few links, the minimum cut recovers the groups exactly --
   the workload the paper's introduction motivates (cuts as bottlenecks
   / community boundaries).

     dune exec examples/planted_partition.exe *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Api = Mincut_core.Api
module Table = Mincut_util.Table

(* fraction of nodes whose recovered side matches the planted side
   (up to complementation) *)
let recovery_accuracy n side =
  let half = n / 2 in
  let agree = ref 0 in
  for v = 0 to n - 1 do
    let planted_left = v < half in
    let recovered_left = Bitset.mem side v in
    if planted_left = recovered_left then incr agree
  done;
  let a = float_of_int !agree /. float_of_int n in
  Float.max a (1.0 -. a)

let () =
  let t =
    Table.create ~title:"planted 2-community recovery by distributed min cut"
      ~columns:[ "n"; "cross links"; "p_in"; "cut found"; "accuracy"; "rounds" ]
  in
  let rng = Rng.create 2024 in
  List.iter
    (fun (n, cut_edges, p_in) ->
      let g = Generators.planted_cut ~rng ~n ~cut_edges ~p_in () in
      let r = Api.min_cut ~params:Mincut_core.Params.fast g in
      Table.add_row t
        [
          string_of_int n;
          string_of_int cut_edges;
          Printf.sprintf "%.2f" p_in;
          string_of_int r.Api.value;
          Printf.sprintf "%.0f%%" (100.0 *. recovery_accuracy n r.Api.side);
          string_of_int r.Api.rounds;
        ])
    [
      (32, 1, 0.6); (32, 3, 0.6); (64, 2, 0.4); (64, 4, 0.4);
      (128, 3, 0.3); (128, 6, 0.3); (256, 4, 0.2);
    ];
  Table.print t;
  print_endline
    "A 100% accuracy row means the min cut is exactly the planted community\n\
     boundary; the cut value equals the number of planted cross links as long\n\
     as the communities are internally denser than the boundary."
